// Package recolor implements the one-round recoloring step that underlies
// Linial's O(Delta^2)-coloring, Kuhn's defective coloring (Lemma 2.1), and
// the paper's arbdefective Arb-Kuhn algorithm (Section 5, Algorithm 3,
// Appendix B).
//
// One step: a vertex with color x in [M] and conflict-neighbor colors
// y_1..y_delta picks a point alpha of a function family {phi_c : A -> B}
// minimizing the number of conflict neighbors whose function agrees with
// phi_x at alpha, and adopts the new color (alpha, phi_x(alpha)) in
// [|A| * |B|]. With a polynomial family of degree D over F_q (pairwise
// agreement <= D), the pigeonhole argument of Appendix B guarantees: if the
// input coloring has defect dIn and q*(dOut-dIn+1) > D*(degBound-dIn), the
// output coloring has defect at most dOut. "Defect" counts same-colored
// conflict neighbors: all neighbors for the defective variant, parents
// under an acyclic orientation for the arbdefective variant.
//
// A Schedule is the full deterministic iteration plan from an initial
// M0-coloring down to the terminal color count; every node derives the same
// schedule locally from (M0, degBound, targetDefect), so no communication
// is spent on coordination. The number of steps is O(log* M0).
package recolor

import (
	"fmt"
	"sync"

	"repro/internal/field"
)

// maxDegreeSearch bounds the polynomial-degree search per step.
const maxDegreeSearch = 64

// maxScheduleSteps bounds the number of steps a schedule may contain.
// Real schedules are O(log* m0) and never approach it; hitting the cap
// means the planner failed to converge, and the resulting schedule is
// marked Truncated (its defect guarantee is void, and Validate rejects
// it) instead of being silently cut short.
const maxScheduleSteps = 64

// Step is one recoloring round: use the polynomial family over F_q with
// degree bound D; after the step the cumulative defect bound is DefectOut
// and the color count is Q*Q.
type Step struct {
	Q         int
	D         int
	DefectOut int
}

// Schedule is the deterministic plan for a recoloring run.
type Schedule struct {
	// M0 is the initial number of colors (n when starting from IDs).
	M0 int
	// DegBound is the bound on the number of conflict neighbors
	// (Delta for the defective variant, max out-degree for arbdefective).
	DegBound int
	// TargetDefect is the final allowed defect d.
	TargetDefect int
	// Steps is the per-round plan; empty when the input already suffices.
	Steps []Step
	// Truncated reports that planning hit maxScheduleSteps before
	// converging: the schedule's defect guarantee does not hold, and
	// Validate returns an error for it.
	Truncated bool
}

// FinalColors returns the number of colors after executing the schedule.
func (s Schedule) FinalColors() int {
	if len(s.Steps) == 0 {
		if s.TargetDefect >= s.DegBound {
			return 1
		}
		return s.M0
	}
	q := s.Steps[len(s.Steps)-1].Q
	return q * q
}

// Rounds returns the number of communication rounds the schedule costs.
func (s Schedule) Rounds() int { return len(s.Steps) }

// Validate checks the per-step pigeonhole preconditions; it is used by
// tests and by callers composing schedules.
func (s Schedule) Validate() error {
	if s.Truncated {
		return fmt.Errorf("recolor: schedule for (m0=%d, degBound=%d, target=%d) truncated at %d steps; defect guarantee void",
			s.M0, s.DegBound, s.TargetDefect, len(s.Steps))
	}
	m := s.M0
	dIn := 0
	for i, st := range s.Steps {
		if !field.IsPrime(st.Q) {
			return fmt.Errorf("recolor: step %d modulus %d not prime", i, st.Q)
		}
		if st.DefectOut < dIn || st.DefectOut > s.TargetDefect {
			return fmt.Errorf("recolor: step %d defect %d outside [%d,%d]", i, st.DefectOut, dIn, s.TargetDefect)
		}
		// Family must index all current colors.
		if !powAtLeast(st.Q, st.D+1, m) {
			return fmt.Errorf("recolor: step %d family size q^%d < M=%d", i, st.D+1, m)
		}
		// Pigeonhole condition q*(dOut-dIn+1) > D*(degBound-dIn).
		if st.Q*(st.DefectOut-dIn+1) <= st.D*(s.DegBound-dIn) {
			return fmt.Errorf("recolor: step %d violates pigeonhole condition", i)
		}
		m = st.Q * st.Q
		dIn = st.DefectOut
	}
	return nil
}

// powAtLeast reports whether q^e >= m without overflow.
func powAtLeast(q, e, m int) bool {
	acc := 1
	for i := 0; i < e; i++ {
		if acc >= (m+q-1)/q+1 || acc > (1<<62)/q {
			return true
		}
		acc *= q
		if acc >= m {
			return true
		}
	}
	return acc >= m
}

// intRootCeil returns the smallest q >= 2 with q^e >= m.
func intRootCeil(m, e int) int {
	if m <= 1 {
		return 2
	}
	lo, hi := 2, 2
	for !powAtLeast(hi, e, m) {
		hi *= 2
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if powAtLeast(mid, e, m) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// minDeltaForQ returns the smallest defect increment delta >= 0 such that
// q*(delta+1) > d*(degBound-dIn), or -1 if none is needed (q already large).
func minDeltaForQ(q, d, degBound, dIn int) int {
	need := d * (degBound - dIn)
	if need < 0 {
		need = 0
	}
	// smallest delta with q*(delta+1) > need  <=>  delta+1 > need/q.
	delta := need / q
	if q*(delta+1) <= need {
		delta++
	}
	return delta
}

// Plan computes the recoloring schedule for an initial legal m0-coloring on
// a graph whose conflict-neighborhood size is at most degBound, targeting
// final defect targetDefect.
//
// Strategy (see DESIGN.md substitution 2): while the color count is large,
// the family-size constraint q^(D+1) >= M dominates, so greedy steps spend
// the minimum defect budget compatible with the q forced by M; once no
// cheap step makes progress, a final step spends the entire remaining
// budget, reaching ~( (degBound-dIn) / (remaining+1) )^2 colors. For
// targetDefect = 0 this degenerates to Linial's algorithm with terminal
// color count ~NextPrime(degBound+1)^2 = O(degBound^2); for targetDefect =
// floor(degBound/p) it gives O(p^2) colors. Steps number O(log* m0).
func Plan(m0, degBound, targetDefect int) Schedule {
	key := planKey{m0, degBound, targetDefect}
	planMu.RLock()
	s, ok := planCache[key]
	planMu.RUnlock()
	if ok {
		return s
	}
	s = planCapped(m0, degBound, targetDefect, maxScheduleSteps)
	planMu.Lock()
	planCache[key] = s
	planMu.Unlock()
	return s
}

// planKey identifies a schedule by the parameters every node derives it
// from; all nodes of a run share one memoized (immutable) plan.
type planKey struct{ m0, degBound, targetDefect int }

var (
	planMu    sync.RWMutex
	planCache = map[planKey]Schedule{}
)

// planCapped computes the schedule with an explicit step cap (tests use a
// small cap to exercise the truncation path).
func planCapped(m0, degBound, targetDefect, maxSteps int) Schedule {
	s := Schedule{M0: m0, DegBound: degBound, TargetDefect: targetDefect}
	if degBound < 0 || m0 < 1 {
		return s
	}
	if targetDefect >= degBound {
		// Every vertex may conflict with all conflict neighbors: a single
		// color suffices, zero rounds (handled by the runner).
		return s
	}
	m := m0
	dCur := 0
	for {
		best := Step{}
		bestDelta := -1
		// Greedy: minimal-budget step at the q forced by the family-size
		// constraint, spending at most half the remaining budget.
		remaining := targetDefect - dCur
		for d := 1; d <= maxDegreeSearch; d++ {
			q := field.NextPrime(intRootCeil(m, d+1))
			if q*q >= m {
				continue // no progress at this degree
			}
			delta := minDeltaForQ(q, d, degBound, dCur)
			if delta > remaining/2 {
				continue
			}
			if bestDelta < 0 || delta < bestDelta || (delta == bestDelta && q < best.Q) {
				best = Step{Q: q, D: d, DefectOut: dCur + delta}
				bestDelta = delta
			}
		}
		if bestDelta < 0 {
			// Final rule: spend the entire remaining budget.
			found := false
			for d := 1; d <= maxDegreeSearch; d++ {
				qDefect := (d*(degBound-dCur))/(targetDefect-dCur+1) + 1
				qSize := intRootCeil(m, d+1)
				q := field.NextPrime(max(qDefect, qSize))
				if q*q >= m {
					continue
				}
				if !found || q < best.Q {
					best = Step{Q: q, D: d, DefectOut: targetDefect}
					found = true
				}
			}
			if !found {
				break // terminal: no step reduces the color count
			}
		}
		if len(s.Steps) >= maxSteps {
			// Cap BEFORE appending: a truncated schedule must not carry a
			// step past the cap, and the truncation must be surfaced
			// (Validate rejects it) rather than silently voiding the
			// defect guarantee.
			s.Truncated = true
			break
		}
		s.Steps = append(s.Steps, best)
		m = best.Q * best.Q
		dCur = best.DefectOut
	}
	return s
}
