package recolor

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
)

// shadowRunUniform runs RunUniform over both planes - the typed word
// path on the batch transport versus the boxed []any fallback - and
// fails unless colors, rounds and messages are bit-for-bit identical.
func shadowRunUniform(t *testing.T, g *graph.Graph, rng *rand.Rand, p Params, parentPorts [][]bool, labels []int, active []bool) []int {
	t.Helper()
	run := func(d dist.Delivery) ([]int, dist.RunStats) {
		net := dist.NewNetworkPermuted(g, rand.New(rand.NewSource(42))).WithDelivery(d)
		dst := make([]int, g.N())
		st, err := RunUniform(net, p, parentPorts, labels, active, dst)
		if err != nil {
			t.Fatalf("delivery=%v: %v", d, err)
		}
		return dst, st
	}
	word, ws := run(dist.DeliveryBatch)
	boxed, bs := run(dist.DeliveryBoxed)
	if ws.Rounds != bs.Rounds || ws.Messages != bs.Messages {
		t.Fatalf("planes diverged: word rounds=%d messages=%d, boxed rounds=%d messages=%d", ws.Rounds, ws.Messages, bs.Rounds, bs.Messages)
	}
	if !reflect.DeepEqual(word, boxed) {
		t.Fatal("word and boxed colorings diverge")
	}
	_ = rng
	return word
}

func TestRunUniformWordShadowsBoxed(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	g := graph.Gnp(250, 0.03, rng)
	n := g.N()
	delta := g.MaxDegree()

	// Linial (legal) and defective variants, whole graph.
	shadowRunUniform(t, g, rng, Params{Color: -1, M0: n, DegBound: delta, TargetDefect: 0}, nil, nil, nil)
	shadowRunUniform(t, g, rng, Params{Color: -1, M0: n, DegBound: delta, TargetDefect: delta / 2}, nil, nil, nil)

	// Label/active-filtered run.
	labels := make([]int, n)
	active := make([]bool, n)
	for v := range labels {
		labels[v] = rng.Intn(2)
		active[v] = rng.Intn(8) > 0
	}
	shadowRunUniform(t, g, rng, Params{Color: -1, M0: n, DegBound: delta, TargetDefect: 0}, nil, labels, active)
}

func TestRunUniformArbShadowsBoxed(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	g := graph.ForestUnion(300, 3, rng)

	// Acyclic orientation: every edge towards the larger endpoint.
	sigma := graph.NewOrientation(g)
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			if u > v {
				if err := sigma.Orient(v, u); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	flags := ParentPortFlags(g, sigma)
	p := Params{Color: -1, M0: g.N(), DegBound: sigma.MaxOutDegree(), TargetDefect: 1}
	colors := shadowRunUniform(t, g, rng, p, flags, nil, nil)
	if len(colors) != g.N() {
		t.Fatal("missing colors")
	}
}
