package recolor

import (
	"math/rand"
	"slices"
	"sync"
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
)

// TestHotRowCacheConcurrentRuns hammers the session hot-row cache from
// many goroutines on one network (run under -race): concurrent
// bindSession calls racing on the session value store, all consumers
// recoloring through the shared RowBlock snapshots they adopt, and
// worker-pool runs on the warm cache. Nothing may race and every color
// must match the cold sequential run. (Whole word-I/O runs are not
// overlapped here: Result.OutputWords is engine-owned and reclaimed by
// the next run, a documented transport caveat unrelated to the cache.)
func TestHotRowCacheConcurrentRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	g := graph.RandomRegularish(600, 4, rng)
	n := g.N()
	p := Params{Color: -1, M0: n, DegBound: g.MaxDegree(), TargetDefect: 0}
	net := dist.NewNetworkPermuted(g, rand.New(rand.NewSource(5)))

	want := make([]int, n)
	if _, err := RunUniform(net, p, nil, nil, nil, want); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			algo, err := NewAlgo(p, false)
			if err != nil {
				t.Error(err)
				return
			}
			algo.bindSession(net)
			rng := rand.New(rand.NewSource(seed))
			var sc stepScratch
			sc.grow(algo.rt.maxQ)
			conflicts := make([]int, 8)
			for iter := 0; iter < 50; iter++ {
				step := rng.Intn(len(algo.rt.blocks))
				b := &algo.rt.blocks[step]
				m := min(b.Family().Size(), 1<<20)
				x := rng.Intn(m)
				for i := range conflicts {
					conflicts[i] = rng.Intn(m)
				}
				want := recolorOnceRef(Plan(p.M0, p.DegBound, p.TargetDefect).Steps[step], x, conflicts)
				if got := sc.recolorOnce(b, x, append([]int(nil), conflicts...), nil); got != want {
					t.Errorf("step %d x=%d: cached-block recolor %d, ref %d", step, x, got, want)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()

	// Worker-pool runs on the warm cache: same colors as the cold run.
	for _, workers := range []int{2, 4} {
		dst := make([]int, n)
		if _, err := RunUniform(net.WithWorkers(workers), p, nil, nil, nil, dst); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !slices.Equal(dst, want) {
			t.Fatalf("workers=%d: colors diverge from sequential run", workers)
		}
	}
}

// TestHotRowCacheReusesSnapshots pins the cache's contract: a second run
// with the same parameters on the same network adopts the session's
// resolved snapshots (same underlying rows array), and the adopted
// blocks always cover at least as many rows as a fresh resolve
// (monotone growth), so classification and colors cannot change.
func TestHotRowCacheReusesSnapshots(t *testing.T) {
	p := Params{Color: -1, M0: 500, DegBound: 8, TargetDefect: 0}
	g := graph.Grid(10, 10)
	net := dist.NewNetwork(g)

	first, err := NewAlgo(p, false)
	if err != nil {
		t.Fatal(err)
	}
	first.bindSession(net)
	second, err := NewAlgo(p, false)
	if err != nil {
		t.Fatal(err)
	}
	second.bindSession(net)
	if len(first.rt.blocks) == 0 || len(first.rt.blocks) != len(second.rt.blocks) {
		t.Fatalf("block counts diverge: %d vs %d", len(first.rt.blocks), len(second.rt.blocks))
	}
	for i := range first.rt.blocks {
		a, b := &first.rt.blocks[i], &second.rt.blocks[i]
		if a.Cached() != b.Cached() || a.Q() != b.Q() || a.Degree() != b.Degree() {
			t.Fatalf("step %d: adopted block (q=%d d=%d cached=%d) differs from first resolve (q=%d d=%d cached=%d)",
				i, b.Q(), b.Degree(), b.Cached(), a.Q(), a.Degree(), a.Cached())
		}
	}

	// A fresh network has its own session: binding there must not
	// observe this session's entries, only rebuild equivalent ones.
	other, err := NewAlgo(p, false)
	if err != nil {
		t.Fatal(err)
	}
	other.bindSession(dist.NewNetwork(g))
	for i := range first.rt.blocks {
		if other.rt.blocks[i].Cached() < first.rt.blocks[i].Cached() {
			t.Fatalf("step %d: fresh-session block covers fewer rows than cached one", i)
		}
	}
}
