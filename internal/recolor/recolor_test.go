package recolor

import (
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
)

func TestLinialOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 5; trial++ {
		g := graph.Gnp(200, 0.05, rng)
		net := dist.NewNetworkPermuted(g, rng)
		res, err := Linial(net)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.CheckLegalColoring(res.Colors); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		delta := g.MaxDegree()
		if mc := graph.MaxColor(res.Colors); mc >= 8*delta*delta+1 {
			t.Errorf("trial %d: max color %d vs Delta=%d", trial, mc, delta)
		}
		if limit := graph.LogStar(g.N()) + 2; res.Rounds > limit {
			t.Errorf("trial %d: %d rounds > %d", trial, res.Rounds, limit)
		}
	}
}

func TestLinialOnStructuredGraphs(t *testing.T) {
	cyc, err := graph.Cycle(101)
	if err != nil {
		t.Fatal(err)
	}
	graphs := map[string]*graph.Graph{
		"path":      graph.Path(64),
		"cycle":     cyc,
		"star":      graph.Star(50),
		"complete":  graph.Complete(12),
		"grid":      graph.Grid(8, 8),
		"singleton": graph.NewBuilder(1).Build(),
		"empty":     graph.NewBuilder(10).Build(),
	}
	for name, g := range graphs {
		net := dist.NewNetwork(g)
		res, err := Linial(net)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := g.CheckLegalColoring(res.Colors); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestDefectiveColoring(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, p := range []int{2, 4, 8} {
		for trial := 0; trial < 3; trial++ {
			g := graph.RandomRegularish(300, 24, rng)
			net := dist.NewNetworkPermuted(g, rng)
			res, err := Defective(net, p)
			if err != nil {
				t.Fatal(err)
			}
			delta := g.MaxDegree()
			if err := g.CheckDefectiveColoring(res.Colors, delta/p); err != nil {
				t.Errorf("p=%d trial %d: %v", p, trial, err)
			}
			if nc := graph.NumColors(res.Colors); nc > 16*p*p+26 {
				t.Errorf("p=%d trial %d: %d colors", p, trial, nc)
			}
			if limit := graph.LogStar(g.N()) + 2; res.Rounds > limit {
				t.Errorf("p=%d trial %d: %d rounds > %d", p, trial, res.Rounds, limit)
			}
		}
	}
}

func TestDefectiveRejectsBadP(t *testing.T) {
	net := dist.NewNetwork(graph.Path(4))
	if _, err := Defective(net, 0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := Defective(net, -3); err == nil {
		t.Error("p=-3 accepted")
	}
}

// orientTowardsLarger orients every edge towards its larger endpoint
// (always acyclic).
func orientTowardsLarger(g *graph.Graph) *graph.Orientation {
	o := graph.NewOrientation(g)
	for _, e := range g.Edges() {
		_ = o.Orient(e[0], e[1])
	}
	return o
}

func TestArbKuhnProducesWitnessedArbdefect(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	g := graph.ForestUnion(300, 6, rng)
	sigma := orientTowardsLarger(g)
	net := dist.NewNetworkPermuted(g, rng)
	a := sigma.MaxOutDegree()
	for _, d := range []int{1, 2, a / 2} {
		res, err := ArbKuhn(net, sigma, d)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.CheckArbdefectWitness(res.Colors, sigma, d); err != nil {
			t.Errorf("d=%d: %v", d, err)
		}
		// Rough color bound: O((A/d)^2).
		ratio := (a + d) / (d + 1)
		if nc := graph.NumColors(res.Colors); nc > 16*(ratio+2)*(ratio+2)+26 {
			t.Errorf("d=%d: %d colors, A=%d", d, nc, a)
		}
	}
}

func TestArbKuhnZeroDefectIsLegal(t *testing.T) {
	// With d=0 on a complete acyclic orientation, every edge has a
	// parent/child endpoint pair, so the coloring is fully legal.
	rng := rand.New(rand.NewSource(103))
	g := graph.ForestUnion(200, 3, rng)
	sigma := orientTowardsLarger(g)
	net := dist.NewNetworkPermuted(g, rng)
	res, err := ArbKuhn(net, sigma, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckLegalColoring(res.Colors); err != nil {
		t.Error(err)
	}
}

func TestArbKuhnValidation(t *testing.T) {
	g := graph.Path(5)
	other := graph.Path(5)
	net := dist.NewNetwork(g)
	if _, err := ArbKuhn(net, graph.NewOrientation(other), 1); err == nil {
		t.Error("mismatched orientation accepted")
	}
	if _, err := ArbKuhn(net, graph.NewOrientation(g), -1); err == nil {
		t.Error("negative defect accepted")
	}
}

func TestRecolorOnceDeterministicAndInRange(t *testing.T) {
	step := Step{Q: 11, D: 2, DefectOut: 0}
	x := 42
	conflicts := []int{3, 17, 99, 3}
	a := recolorOnce(step, x, conflicts)
	b := recolorOnce(step, x, conflicts)
	if a != b {
		t.Error("recolorOnce not deterministic")
	}
	if a < 0 || a >= step.Q*step.Q {
		t.Errorf("new color %d outside [0,%d)", a, step.Q*step.Q)
	}
}

func TestParentPortFlags(t *testing.T) {
	g := graph.Path(3)
	o := graph.NewOrientation(g)
	_ = o.Orient(0, 1)
	_ = o.Orient(2, 1)
	flags := ParentPortFlags(g, o)
	if !flags[0][0] { // 0's only neighbor 1 is its parent
		t.Error("vertex 0 should see port 0 as parent")
	}
	if flags[1][0] || flags[1][1] { // 1 has no parents
		t.Error("vertex 1 should have no parent ports")
	}
	if !flags[2][0] {
		t.Error("vertex 2 should see port 0 as parent")
	}
}

func TestDefectiveOnLabelledSubgraphs(t *testing.T) {
	// Two disjoint-label halves of a graph run simultaneously with their
	// own degree bounds; defects must hold within each label class.
	rng := rand.New(rand.NewSource(104))
	g := graph.RandomRegularish(200, 10, rng)
	labels := make([]int, g.N())
	for v := range labels {
		labels[v] = v % 2
	}
	// Per-label max visible degree.
	degBound := [2]int{}
	for v := 0; v < g.N(); v++ {
		d := 0
		for _, u := range g.Neighbors(v) {
			if labels[u] == labels[v] {
				d++
			}
		}
		if d > degBound[labels[v]] {
			degBound[labels[v]] = d
		}
	}
	inputs := make([]any, g.N())
	for v := 0; v < g.N(); v++ {
		db := degBound[labels[v]]
		inputs[v] = Input{Color: -1, M0: g.N(), DegBound: db, TargetDefect: db / 2}
	}
	// Heterogeneous per-vertex scalar inputs (a different DegBound per
	// label class) only exist on the boxed plane; the word plane carries
	// vertex-uniform Params in the algorithm value.
	net := dist.NewNetwork(g)
	res, err := net.Run(Algo{}, dist.RunOptions{Inputs: inputs, Labels: labels, Delivery: dist.DeliveryBoxed})
	if err != nil {
		t.Fatal(err)
	}
	colors, err := dist.IntOutputs(res, -1)
	if err != nil {
		t.Fatal(err)
	}
	// Check defect within each label class only.
	for v := 0; v < g.N(); v++ {
		same := 0
		for _, u := range g.Neighbors(v) {
			if labels[u] == labels[v] && colors[u] == colors[v] {
				same++
			}
		}
		if same > degBound[labels[v]]/2 {
			t.Fatalf("vertex %d: defect %d > %d within label %d", v, same, degBound[labels[v]]/2, labels[v])
		}
	}
}
