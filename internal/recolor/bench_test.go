package recolor

import (
	"testing"

	"repro/internal/field"
	"repro/internal/graph"
)

// Shared benchmark shape: a realistic terminal recoloring step (q=23, d=1
// family of a Linial-style schedule) with 16 conflict neighbors, colors in
// [0, 23*23). BenchmarkRecolorOnce is the steady-state hot path
// (memoized family, warm per-node scratch, reused conflict buffer);
// BenchmarkRecolorOnceRef is the seed implementation it replaced.

var benchStep = Step{Q: 23, D: 1, DefectOut: 0}

func benchConflicts() []int {
	return []int{3, 88, 121, 40, 501, 3, 77, 250, 311, 40, 90, 17, 404, 228, 69, 145}
}

const benchColor = 333

func BenchmarkRecolorOnce(b *testing.B) {
	fam, err := field.Families(benchStep.Q, benchStep.D)
	if err != nil {
		b.Fatal(err)
	}
	var sc stepScratch
	sc.grow(benchStep.Q)
	conflicts := benchConflicts()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.recolorOnce(fam, benchColor, conflicts, nil)
	}
}

func BenchmarkRecolorOnceRef(b *testing.B) {
	conflicts := benchConflicts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		recolorOnceRef(benchStep, benchColor, conflicts)
	}
}

// BenchmarkRecolorOnceFirstStep measures the first step of a large
// schedule, where the family exceeds the cached row table and rows are
// materialized into scratch on the fly.
func BenchmarkRecolorOnceFirstStep(b *testing.B) {
	plan := Plan(100000, 16, 0)
	step := plan.Steps[0]
	fam, err := field.Families(step.Q, step.D)
	if err != nil {
		b.Fatal(err)
	}
	var sc stepScratch
	sc.grow(step.Q)
	conflicts := []int{31337, 500, 99999, 1234, 500, 88, 4242, 31337}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.recolorOnce(fam, 54321, conflicts, nil)
	}
}

func BenchmarkRecolorOnceFirstStepRef(b *testing.B) {
	plan := Plan(100000, 16, 0)
	step := plan.Steps[0]
	conflicts := []int{31337, 500, 99999, 1234, 500, 88, 4242, 31337}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recolorOnceRef(step, 54321, conflicts)
	}
}

// BenchmarkParentPortFlags measures the orientation-to-port-flags
// translation every Arb-Kuhn run performs, dominated by orientation
// queries.
func BenchmarkParentPortFlags(b *testing.B) {
	g := graph.Grid(40, 40)
	o := graph.NewOrientation(g)
	for _, e := range g.Edges() {
		_ = o.Orient(e[0], e[1])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ParentPortFlags(g, o)
	}
}
