package recolor

import (
	"slices"
	"testing"

	"repro/internal/field"
	"repro/internal/graph"
)

// Shared benchmark shape: a realistic terminal recoloring step (q=23, d=1
// family of a Linial-style schedule) with 16 conflict neighbors, colors in
// [0, 23*23). BenchmarkRecolorOnce is the steady-state hot path (batch
// kernel over a resolved RowBlock, warm per-node scratch, reused
// conflict buffer); BenchmarkRecolorOncePerCandidate is the per-candidate
// RowView walk it replaced, and BenchmarkRecolorOnceRef the seed
// implementation before that.

var benchStep = Step{Q: 23, D: 1, DefectOut: 0}

func benchConflicts() []int {
	return []int{3, 88, 121, 40, 501, 3, 77, 250, 311, 40, 90, 17, 404, 228, 69, 145}
}

const benchColor = 333

func BenchmarkRecolorOnce(b *testing.B) {
	fam, err := field.Families(benchStep.Q, benchStep.D)
	if err != nil {
		b.Fatal(err)
	}
	blk := fam.Block(-1)
	var sc stepScratch
	sc.grow(benchStep.Q)
	conflicts := benchConflicts()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.recolorOnce(&blk, benchColor, conflicts, nil)
	}
}

// recolorOncePerCandidate is the pre-kernel hot path kept as a
// benchmark comparator: one atomic table load and one branchy
// compare-and-count loop per candidate (scalar Family.Eval beyond the
// cached table). It must stay bit-for-bit identical to the kernel path.
func (sc *stepScratch) recolorOncePerCandidate(fam *field.Family, x int, conflictColors []int) int {
	q := fam.Q()
	myRow := fam.RowView(x, sc.myRow)
	agrees := sc.agrees[:q]
	clear(agrees)
	slices.Sort(conflictColors)
	for i := 0; i < len(conflictColors); {
		y := conflictColors[i]
		j := i + 1
		for j < len(conflictColors) && conflictColors[j] == y {
			j++
		}
		mult := j - i
		i = j
		if y == x {
			continue
		}
		row := fam.RowView(y, sc.nbrRow)
		for alpha := 0; alpha < q; alpha++ {
			if row[alpha] == myRow[alpha] {
				agrees[alpha] += mult
			}
		}
	}
	bestAlpha := 0
	for alpha := 1; alpha < q; alpha++ {
		if agrees[alpha] < agrees[bestAlpha] {
			bestAlpha = alpha
		}
	}
	return bestAlpha*q + myRow[bestAlpha]
}

func BenchmarkRecolorOncePerCandidate(b *testing.B) {
	fam, err := field.Families(benchStep.Q, benchStep.D)
	if err != nil {
		b.Fatal(err)
	}
	var sc stepScratch
	sc.grow(benchStep.Q)
	conflicts := benchConflicts()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.recolorOncePerCandidate(fam, benchColor, conflicts)
	}
}

func BenchmarkRecolorOnceRef(b *testing.B) {
	conflicts := benchConflicts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		recolorOnceRef(benchStep, benchColor, conflicts)
	}
}

// BenchmarkRecolorOnceFirstStep measures the first step of a large
// schedule, where the family exceeds the cached row table and rows are
// batch-evaluated into scratch on the fly.
func BenchmarkRecolorOnceFirstStep(b *testing.B) {
	plan := Plan(100000, 16, 0)
	step := plan.Steps[0]
	fam, err := field.Families(step.Q, step.D)
	if err != nil {
		b.Fatal(err)
	}
	blk := fam.Block(-1)
	var sc stepScratch
	sc.grow(step.Q)
	conflicts := []int{31337, 500, 99999, 1234, 500, 88, 4242, 31337}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.recolorOnce(&blk, 54321, conflicts, nil)
	}
}

// BenchmarkRecolorOnceFirstStepPerCandidate is the pre-kernel walk on
// the same beyond-table shape: every uncached row costs a scalar Horner
// loop with a division per digit per point.
func BenchmarkRecolorOnceFirstStepPerCandidate(b *testing.B) {
	plan := Plan(100000, 16, 0)
	step := plan.Steps[0]
	fam, err := field.Families(step.Q, step.D)
	if err != nil {
		b.Fatal(err)
	}
	var sc stepScratch
	sc.grow(step.Q)
	conflicts := []int{31337, 500, 99999, 1234, 500, 88, 4242, 31337}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.recolorOncePerCandidate(fam, 54321, conflicts)
	}
}

func BenchmarkRecolorOnceFirstStepRef(b *testing.B) {
	plan := Plan(100000, 16, 0)
	step := plan.Steps[0]
	conflicts := []int{31337, 500, 99999, 1234, 500, 88, 4242, 31337}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recolorOnceRef(step, 54321, conflicts)
	}
}

// BenchmarkParentPortFlags measures the orientation-to-port-flags
// translation every Arb-Kuhn run performs, dominated by orientation
// queries.
func BenchmarkParentPortFlags(b *testing.B) {
	g := graph.Grid(40, 40)
	o := graph.NewOrientation(g)
	for _, e := range g.Edges() {
		_ = o.Orient(e[0], e[1])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ParentPortFlags(g, o)
	}
}
