package recolor

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dist"
	"repro/internal/field"
	"repro/internal/graph"
)

// TestRecolorOnceCountsExactly pins the per-call accounting of the eval
// counters against the step's arithmetic: one evaluation for the node's
// own color plus one per conflict entry that differs from it (same-color
// entries skip the neighbor row entirely).
func TestRecolorOnceCountsExactly(t *testing.T) {
	step := Step{Q: 23, D: 1}
	fam, err := field.Families(step.Q, step.D)
	if err != nil {
		t.Fatal(err)
	}
	b := fam.Block(-1)
	var sc stepScratch
	sc.grow(step.Q)
	x := 333
	conflicts := []int{3, 88, x, 40, x, 77}
	var c field.EvalCounters
	sc.recolorOnce(&b, x, conflicts, &c)
	want := int64(1 + 4) // own row + the 4 conflicts differing from x
	if got := c.Hits() + c.Batched(); got != want {
		t.Fatalf("counted %d evaluations, want %d", got, want)
	}
	if c.Fallbacks() != 0 || c.Batched() != 0 {
		t.Fatalf("batched=%d fallbacks=%d on a fully cached family, want 0/0", c.Batched(), c.Fallbacks())
	}
}

// TestRecolorOnceCountsBatched forces the beyond-table path: function
// indices at or past the cached row table must land in the batched
// bucket - the kernel materializes them division-free - and the scalar
// fallback bucket must stay empty on every input.
func TestRecolorOnceCountsBatched(t *testing.T) {
	plan := Plan(100000, 16, 0)
	step := plan.Steps[0]
	fam, err := field.Families(step.Q, step.D)
	if err != nil {
		t.Fatal(err)
	}
	if fam.RowsCached() >= fam.Size() {
		t.Skipf("step %+v fully cached; beyond-table path not exercised", step)
	}
	b := fam.Block(-1)
	var sc stepScratch
	sc.grow(step.Q)
	x := b.Cached() + 41 // own row: beyond the table, batch-evaluated
	conflicts := []int{12, b.Cached() + 7, fam.Size() - 1}
	var c field.EvalCounters
	sc.recolorOnce(&b, x, conflicts, &c)
	if c.Hits() != 1 || c.Batched() != 3 {
		t.Fatalf("hits=%d batched=%d, want 1/3", c.Hits(), c.Batched())
	}
	if c.Fallbacks() != 0 {
		t.Fatalf("%d scalar fallbacks; the kernel path must never take one", c.Fallbacks())
	}
}

// TestEvalStatsWordMatchesBoxed runs the same RunUniform workload on
// both delivery planes with counting enabled: the hit/fallback totals
// per (step, q, d) must be identical - evaluation counts are part of
// the algorithm, not the transport - and exact under -race (atomic
// counters across the worker pool).
func TestEvalStatsWordMatchesBoxed(t *testing.T) {
	defer func() {
		field.SetEvalStats(false)
		field.ResetEvalStats()
	}()
	// Low degree relative to n, so the Linial schedule is non-trivial
	// (Plan is empty once M0 is already within the target space).
	rng := rand.New(rand.NewSource(61))
	g := graph.RandomRegularish(1000, 4, rng)
	n := g.N()
	p := Params{Color: -1, M0: n, DegBound: g.MaxDegree(), TargetDefect: 0}
	if len(Plan(p.M0, p.DegBound, p.TargetDefect).Steps) == 0 {
		t.Fatal("schedule degenerate; pick a sparser test graph")
	}

	snapshot := func(d dist.Delivery) []field.EvalStat {
		field.SetEvalStats(true)
		field.ResetEvalStats()
		net := dist.NewNetworkPermuted(g, rand.New(rand.NewSource(7))).WithDelivery(d)
		dst := make([]int, n)
		if _, err := RunUniform(net, p, nil, nil, nil, dst); err != nil {
			t.Fatalf("delivery=%v: %v", d, err)
		}
		return field.EvalStatsSnapshot()
	}
	word := snapshot(dist.DeliveryBatch)
	boxed := snapshot(dist.DeliveryBoxed)
	if len(word) == 0 {
		t.Fatal("no counters registered on a counted run")
	}
	if !reflect.DeepEqual(word, boxed) {
		t.Fatalf("eval stats diverge across planes:\nword  %+v\nboxed %+v", word, boxed)
	}
	var total int64
	for _, s := range word {
		total += s.Total()
	}
	if total == 0 {
		t.Fatal("counted run recorded zero evaluations")
	}
}

// TestStepFamiliesPaletteHitRate pins the palette-sized row tables end
// to end: stepFamilies sizes every step's table to its actual palette
// bound (m_0 = M0, m_i = Q_{i-1}^2), so a full run whose bounds fit
// under the growth ceiling evaluates with zero Horner fallbacks - hit
// rate 1 on every step counter.
func TestStepFamiliesPaletteHitRate(t *testing.T) {
	defer func() {
		field.SetEvalStats(false)
		field.ResetEvalStats()
	}()
	rng := rand.New(rand.NewSource(71))
	g := graph.RandomRegularish(2000, 4, rng)
	n := g.N()
	p := Params{Color: -1, M0: n, DegBound: g.MaxDegree(), TargetDefect: 0}
	plan := Plan(p.M0, p.DegBound, p.TargetDefect)
	if len(plan.Steps) == 0 {
		t.Fatal("schedule degenerate; pick a sparser test graph")
	}

	fams := stepFamilies(plan)
	palette := plan.M0
	for i, fam := range fams {
		if want := min(palette, fam.Size()); fam.RowsCached() < want {
			t.Fatalf("step %d table covers %d rows, palette bound is %d", i, fam.RowsCached(), want)
		}
		palette = plan.Steps[i].Q * plan.Steps[i].Q
	}

	field.SetEvalStats(true)
	field.ResetEvalStats()
	net := dist.NewNetworkPermuted(g, rand.New(rand.NewSource(9)))
	dst := make([]int, n)
	if _, err := RunUniform(net, p, nil, nil, nil, dst); err != nil {
		t.Fatal(err)
	}
	snap := field.EvalStatsSnapshot()
	if len(snap) == 0 {
		t.Fatal("counted run registered no counters")
	}
	for _, s := range snap {
		if s.Total() == 0 {
			continue
		}
		if s.Fallbacks != 0 || s.HitRate() != 1 {
			t.Fatalf("step %d (q=%d d=%d): %d fallbacks, hit rate %v; want 0 / 1",
				s.Step, s.Q, s.D, s.Fallbacks, s.HitRate())
		}
	}
}

// TestEvalStatsDisabledCostsNothing pins the opt-out: with stats
// disabled the algorithm resolves no counters and a run registers
// nothing.
func TestEvalStatsDisabledCostsNothing(t *testing.T) {
	field.SetEvalStats(false)
	field.ResetEvalStats()
	rng := rand.New(rand.NewSource(62))
	g := graph.Gnp(100, 0.05, rng)
	p := Params{Color: -1, M0: g.N(), DegBound: g.MaxDegree(), TargetDefect: 0}
	net := dist.NewNetworkPermuted(g, rand.New(rand.NewSource(8)))
	dst := make([]int, g.N())
	if _, err := RunUniform(net, p, nil, nil, nil, dst); err != nil {
		t.Fatal(err)
	}
	if snap := field.EvalStatsSnapshot(); len(snap) != 0 {
		t.Fatalf("disabled run registered counters: %+v", snap)
	}
}
