package recolor

// This file preserves the seed implementation of the recoloring step,
// verbatim in behavior, as a reference: the equivalence tests prove the
// memoized zero-alloc path produces bit-for-bit identical colors, and
// BenchmarkRecolorOnceRef keeps the pre-change baseline measurable.

// refFamily mirrors the seed field.Family: per-call construction, power
// accumulation instead of Horner, freshly allocated rows.
type refFamily struct {
	q      int
	degree int
}

func newRefFamily(q, d int) refFamily { return refFamily{q: q, degree: d} }

func (f refFamily) eval(x, alpha int) int {
	acc := 0
	powAlpha := 1
	for i := 0; i <= f.degree; i++ {
		c := x % f.q
		x /= f.q
		acc = (acc + c*powAlpha) % f.q
		powAlpha = (powAlpha * alpha) % f.q
	}
	return acc
}

func (f refFamily) row(x int) []int {
	row := make([]int, f.q)
	for alpha := 0; alpha < f.q; alpha++ {
		row[alpha] = f.eval(x, alpha)
	}
	return row
}

// recolorOnceRef is the seed recolorOnce: re-derives the family and
// re-materializes rows per call, deduplicating conflict colors in a map.
func recolorOnceRef(step Step, x int, conflictColors []int) int {
	fam := newRefFamily(step.Q, step.D)
	q := step.Q
	myRow := fam.row(x)
	agrees := make([]int, q)
	rows := make(map[int][]int, len(conflictColors))
	for _, y := range conflictColors {
		if y == x {
			continue
		}
		row, ok := rows[y]
		if !ok {
			row = fam.row(y)
			rows[y] = row
		}
		for alpha := 0; alpha < q; alpha++ {
			if row[alpha] == myRow[alpha] {
				agrees[alpha]++
			}
		}
	}
	bestAlpha := 0
	for alpha := 1; alpha < q; alpha++ {
		if agrees[alpha] < agrees[bestAlpha] {
			bestAlpha = alpha
		}
	}
	return bestAlpha*q + myRow[bestAlpha]
}
