package recolor

import (
	"math/rand"
	"testing"

	"repro/internal/field"
)

// TestRecolorOnceMatchesReference proves the memoized zero-alloc step is
// bit-for-bit identical to the seed implementation across realistic and
// adversarial (step, color, conflicts) combinations.
func TestRecolorOnceMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	steps := []Step{
		{Q: 5, D: 1}, {Q: 11, D: 2}, {Q: 23, D: 1}, {Q: 29, D: 3},
		{Q: 101, D: 2}, {Q: 127, D: 1},
	}
	// Include the actual steps of a few planned schedules.
	for _, plan := range []Schedule{
		Plan(2000, 24, 0), Plan(100000, 16, 0), Plan(1000, 24, 12),
	} {
		steps = append(steps, plan.Steps...)
	}
	for _, step := range steps {
		fam, err := field.Families(step.Q, step.D)
		if err != nil {
			t.Fatal(err)
		}
		m := fam.Size()
		if m > 1<<20 {
			m = 1 << 20
		}
		for trial := 0; trial < 50; trial++ {
			x := rng.Intn(m)
			conflicts := make([]int, rng.Intn(24))
			for i := range conflicts {
				if rng.Intn(4) == 0 {
					conflicts[i] = x // same-colored neighbors carry over
				} else {
					conflicts[i] = rng.Intn(m)
				}
			}
			want := recolorOnceRef(step, x, conflicts)
			got := recolorOnce(step, x, conflicts)
			if got != want {
				t.Fatalf("step %+v x=%d conflicts=%v: got %d, ref %d", step, x, conflicts, got, want)
			}
			var sc stepScratch
			sc.grow(step.Q)
			if old := sc.recolorOncePerCandidate(fam, x, append([]int(nil), conflicts...)); old != want {
				t.Fatalf("step %+v x=%d conflicts=%v: per-candidate comparator %d, ref %d", step, x, conflicts, old, want)
			}
		}
	}
}

// TestRecolorOnceZeroAllocs asserts the steady-state step loop performs
// zero allocations: warm scratch + memoized family + reused conflict
// buffer is the exact shape of Algo.Step after the first round.
func TestRecolorOnceZeroAllocs(t *testing.T) {
	for _, step := range []Step{{Q: 23, D: 1}, {Q: 11, D: 2}, {Q: 101, D: 2}} {
		fam, err := field.Families(step.Q, step.D)
		if err != nil {
			t.Fatal(err)
		}
		b := fam.Block(-1)
		var sc stepScratch
		sc.grow(step.Q)
		conflicts := []int{3, 88, 121, 40, 501 % fam.Size(), 3, 77, 250, 311, 40}
		x := 333 % fam.Size()
		sc.recolorOnce(&b, x, conflicts, nil) // warm up
		allocs := testing.AllocsPerRun(100, func() {
			sc.recolorOnce(&b, x, conflicts, nil)
		})
		if allocs != 0 {
			t.Errorf("step %+v: %v allocs/op in steady state, want 0", step, allocs)
		}
	}
}

// TestRecolorOnceZeroAllocsBeyondRowTable covers the beyond-table path:
// a first-step family too large for a full row table must still run the
// step without allocating (rows are batch-evaluated into scratch).
func TestRecolorOnceZeroAllocsBeyondRowTable(t *testing.T) {
	plan := Plan(100000, 16, 0)
	step := plan.Steps[0]
	fam, err := field.Families(step.Q, step.D)
	if err != nil {
		t.Fatal(err)
	}
	if fam.RowsCached() >= fam.Size() {
		t.Skipf("step %+v fully cached; beyond-table path not exercised", step)
	}
	b := fam.Block(-1)
	var sc stepScratch
	sc.grow(step.Q)
	x := fam.RowsCached() + 41
	conflicts := []int{fam.RowsCached() + 7, 12, fam.Size() - 1, fam.RowsCached() + 7}
	sc.recolorOnce(&b, x, conflicts, nil)
	allocs := testing.AllocsPerRun(100, func() {
		sc.recolorOnce(&b, x, conflicts, nil)
	})
	if allocs != 0 {
		t.Errorf("beyond-table path: %v allocs/op, want 0", allocs)
	}
}

// TestPlanCapBeforeAppend is the regression test for the seed safety
// net, which appended a 65th step before breaking and silently truncated
// the schedule: with a cap of c, a truncated plan must hold exactly c
// steps, be flagged, and fail Validate.
func TestPlanCapBeforeAppend(t *testing.T) {
	full := planCapped(1<<60, 1000, 500, maxScheduleSteps)
	if full.Truncated {
		t.Fatalf("real schedule truncated: %d steps", len(full.Steps))
	}
	if len(full.Steps) < 3 {
		t.Fatalf("want a multi-step schedule to truncate, got %d steps", len(full.Steps))
	}
	for c := 1; c < len(full.Steps); c++ {
		s := planCapped(1<<60, 1000, 500, c)
		if !s.Truncated {
			t.Fatalf("cap=%d: schedule not marked truncated", c)
		}
		if len(s.Steps) != c {
			t.Fatalf("cap=%d: %d steps; the cap must apply before append", c, len(s.Steps))
		}
		if err := s.Validate(); err == nil {
			t.Fatalf("cap=%d: truncated schedule passed Validate", c)
		}
	}
}

// TestPlanNeverTruncatesInPractice sweeps adversarial parameters and
// checks the O(log* m0) bound keeps every real schedule far below the cap.
func TestPlanNeverTruncatesInPractice(t *testing.T) {
	for _, m0 := range []int{2, 1000, 1 << 30, 1 << 62} {
		for _, deg := range []int{1, 10, 1000, 1 << 20} {
			for _, d := range []int{0, 1, deg / 2} {
				s := Plan(m0, deg, d)
				if s.Truncated {
					t.Errorf("Plan(%d,%d,%d) truncated", m0, deg, d)
				}
				if len(s.Steps) > maxScheduleSteps {
					t.Errorf("Plan(%d,%d,%d) has %d steps > cap", m0, deg, d, len(s.Steps))
				}
			}
		}
	}
}

// TestPlanMemoizationIsStable checks the memoized plan is identical to a
// fresh computation (same steps, same flags).
func TestPlanMemoizationIsStable(t *testing.T) {
	for _, tc := range []struct{ m0, deg, d int }{
		{2000, 24, 0}, {100000, 16, 0}, {1000, 24, 12},
	} {
		cached := Plan(tc.m0, tc.deg, tc.d)
		again := Plan(tc.m0, tc.deg, tc.d)
		fresh := planCapped(tc.m0, tc.deg, tc.d, maxScheduleSteps)
		if len(cached.Steps) != len(fresh.Steps) || cached.Truncated != fresh.Truncated {
			t.Fatalf("Plan(%d,%d,%d): cached %+v != fresh %+v", tc.m0, tc.deg, tc.d, cached, fresh)
		}
		for i := range cached.Steps {
			if cached.Steps[i] != fresh.Steps[i] || cached.Steps[i] != again.Steps[i] {
				t.Fatalf("Plan(%d,%d,%d) step %d differs", tc.m0, tc.deg, tc.d, i)
			}
		}
	}
}
