package recolor

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/field"
	"repro/internal/graph"
)

// Input is the per-node input for the recoloring algorithm. All nodes of
// the same (sub)graph must receive identical M0, DegBound and TargetDefect
// so they derive identical schedules and run in lockstep.
type Input struct {
	// Color is the node's initial color in [0, M0); a negative value means
	// "use ID-1" (the trivial legal n-coloring from identifiers).
	Color int
	// M0 is the size of the initial color space (n when starting from IDs).
	M0 int
	// DegBound bounds the number of conflict neighbors of every node:
	// the maximum degree for the defective variant, the maximum out-degree
	// of the orientation for the arbdefective variant.
	DegBound int
	// TargetDefect is the final defect d (0 for a legal coloring).
	TargetDefect int
	// ParentPort, when non-nil, flags which visible ports lead to parents;
	// only parents then count as conflict neighbors (Arb-Kuhn, Section 5).
	// When nil, every neighbor is a conflict neighbor (Linial/Kuhn).
	ParentPort []bool
}

// Algo is the dist.Algorithm executing a recoloring schedule. The zero
// value is ready to use; it is stateless (per-node state lives in the Node).
type Algo struct{}

type nodeState struct {
	plan  Schedule
	color int
	step  int
}

// Init derives the node's schedule from its Input and sends the initial
// color when at least one step is required.
func (Algo) Init(n *dist.Node) {
	in, ok := n.Input.(Input)
	if !ok {
		// Defensive default: trivial ID coloring with no recoloring.
		n.Output = n.ID() - 1
		n.Halt()
		return
	}
	color := in.Color
	if color < 0 {
		color = n.ID() - 1
	}
	st := &nodeState{
		plan:  Plan(in.M0, in.DegBound, in.TargetDefect),
		color: color,
	}
	if in.TargetDefect >= in.DegBound {
		// A single color class already satisfies the defect bound.
		n.Output = 0
		n.Halt()
		return
	}
	n.State = st
	if len(st.plan.Steps) == 0 {
		n.Output = color
		n.Halt()
		return
	}
	n.SendAll(color)
}

// Step executes one recoloring round.
func (Algo) Step(n *dist.Node, inbox []dist.Message) {
	st := n.State.(*nodeState)
	in := n.Input.(Input)
	plan := st.plan.Steps[st.step]

	// Gather conflict-neighbor colors.
	conflicts := make([]int, 0, len(inbox))
	for p, m := range inbox {
		if m == nil {
			continue
		}
		if in.ParentPort != nil && (p >= len(in.ParentPort) || !in.ParentPort[p]) {
			continue
		}
		conflicts = append(conflicts, m.(int))
	}

	st.color = recolorOnce(plan, st.color, conflicts)
	st.step++
	if st.step < len(st.plan.Steps) {
		n.SendAll(st.color)
		return
	}
	n.Output = st.color
	n.Halt()
}

// recolorOnce applies one Step: pick alpha minimizing agreements with
// differently-colored conflict neighbors and return alpha*q + phi_x(alpha).
func recolorOnce(step Step, x int, conflictColors []int) int {
	fam, err := field.NewFamily(step.Q, step.D)
	if err != nil {
		// Unreachable: schedules only contain prime moduli (Validate).
		panic(fmt.Sprintf("recolor: invalid step %+v: %v", step, err))
	}
	q := step.Q
	myRow := fam.Row(x)
	agrees := make([]int, q)
	// Deduplicate conflict colors: agreement counts are per neighbor, so we
	// must weight by multiplicity; cache rows per distinct color.
	rows := make(map[int][]int, len(conflictColors))
	for _, y := range conflictColors {
		if y == x {
			continue // same-colored neighbors carry over (Appendix B)
		}
		row, ok := rows[y]
		if !ok {
			row = fam.Row(y)
			rows[y] = row
		}
		for alpha := 0; alpha < q; alpha++ {
			if row[alpha] == myRow[alpha] {
				agrees[alpha]++
			}
		}
	}
	bestAlpha := 0
	for alpha := 1; alpha < q; alpha++ {
		if agrees[alpha] < agrees[bestAlpha] {
			bestAlpha = alpha
		}
	}
	return bestAlpha*q + myRow[bestAlpha]
}

// Result reports a whole-graph recoloring run.
type Result struct {
	Colors   []int
	Schedule Schedule
	Rounds   int
	Messages int64
}

// run executes the algorithm with uniform inputs on all (active) vertices.
func run(net *dist.Network, in Input, parentPorts [][]bool) (Result, error) {
	n := net.Graph().N()
	inputs := make([]any, n)
	for v := 0; v < n; v++ {
		iv := in
		if parentPorts != nil {
			iv.ParentPort = parentPorts[v]
		}
		inputs[v] = iv
	}
	res, err := net.Run(Algo{}, dist.RunOptions{Inputs: inputs})
	if err != nil {
		return Result{}, err
	}
	colors, err := dist.IntOutputs(res, 0)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Colors:   colors,
		Schedule: Plan(in.M0, in.DegBound, in.TargetDefect),
		Rounds:   res.Rounds,
		Messages: res.Messages,
	}, nil
}

// Linial computes a legal O(Delta^2)-coloring in O(log* n) rounds
// (Linial FOCS'87, the paper's baseline and Lemma 2.1 ancestor).
func Linial(net *dist.Network) (Result, error) {
	g := net.Graph()
	return run(net, Input{
		Color:        -1,
		M0:           g.N(),
		DegBound:     g.MaxDegree(),
		TargetDefect: 0,
	}, nil)
}

// Defective computes a floor(Delta/p)-defective O(p^2)-coloring in
// O(log* n) rounds (Lemma 2.1 / Kuhn SPAA'09). p must be positive.
func Defective(net *dist.Network, p int) (Result, error) {
	if p <= 0 {
		return Result{}, fmt.Errorf("recolor: p must be positive, got %d", p)
	}
	g := net.Graph()
	delta := g.MaxDegree()
	return run(net, Input{
		Color:        -1,
		M0:           g.N(),
		DegBound:     delta,
		TargetDefect: delta / p,
	}, nil)
}

// ArbKuhn computes a d-arbdefective O((A/d)^2)-coloring, where A is the
// maximum out-degree of the given complete acyclic orientation (Section 5,
// Algorithm Arb-Kuhn). Each color class, with edges oriented as in sigma,
// has out-degree at most d, certifying arboricity at most d (Lemma 2.5).
// The orientation itself is typically produced by Lemma 2.4 in O(log n)
// rounds; this routine adds only O(log* n) rounds.
func ArbKuhn(net *dist.Network, sigma *graph.Orientation, d int) (Result, error) {
	if d < 0 {
		return Result{}, fmt.Errorf("recolor: negative arbdefect target %d", d)
	}
	g := net.Graph()
	if sigma.Graph() != g {
		return Result{}, fmt.Errorf("recolor: orientation is over a different graph")
	}
	parentPorts := ParentPortFlags(g, sigma)
	return run(net, Input{
		Color:        -1,
		M0:           g.N(),
		DegBound:     sigma.MaxOutDegree(),
		TargetDefect: d,
	}, parentPorts)
}

// ParentPortFlags encodes, for each vertex, which of its ports lead to
// parents under sigma. This is the distributed knowledge each node holds
// after an orientation has been computed.
func ParentPortFlags(g *graph.Graph, sigma *graph.Orientation) [][]bool {
	out := make([][]bool, g.N())
	for v := 0; v < g.N(); v++ {
		nbrs := g.Neighbors(v)
		flags := make([]bool, len(nbrs))
		for p, u := range nbrs {
			flags[p] = sigma.IsParent(v, u)
		}
		out[v] = flags
	}
	return out
}
