package recolor

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/field"
	"repro/internal/graph"
)

// Input is the per-node input for the recoloring algorithm. All nodes of
// the same (sub)graph must receive identical M0, DegBound and TargetDefect
// so they derive identical schedules and run in lockstep.
type Input struct {
	// Color is the node's initial color in [0, M0); a negative value means
	// "use ID-1" (the trivial legal n-coloring from identifiers).
	Color int
	// M0 is the size of the initial color space (n when starting from IDs).
	M0 int
	// DegBound bounds the number of conflict neighbors of every node:
	// the maximum degree for the defective variant, the maximum out-degree
	// of the orientation for the arbdefective variant.
	DegBound int
	// TargetDefect is the final defect d (0 for a legal coloring).
	TargetDefect int
	// ParentPort, when non-nil, flags which visible ports lead to parents;
	// only parents then count as conflict neighbors (Arb-Kuhn, Section 5).
	// When nil, every neighbor is a conflict neighbor (Linial/Kuhn).
	ParentPort []bool
}

// Params are the globally known, vertex-uniform parameters of a
// word-I/O recoloring run - the quantities every node of the (sub)graph
// derives its schedule from. They mirror the scalar fields of Input,
// which remains the per-vertex form of the boxed fallback plane.
type Params struct {
	// Color is the uniform initial color; negative means "use ID-1".
	Color int
	// M0, DegBound and TargetDefect are as in Input.
	M0, DegBound, TargetDefect int
}

// Algo is the vertex program executing a recoloring schedule.
//
// On the boxed []any plane the zero value is ready to use and reads a
// per-vertex Input struct (the reference fallback). On the typed
// word-I/O plane (dist.WordIOAlgorithm), construct it with NewAlgo: the
// schedule, per-step row-table snapshots and step scratch are resolved
// once per run and shared by all nodes, so the word path performs no
// per-vertex allocation at all. The shared state hangs off one pointer
// (rt), keeping the Algo value the engine copies per node call small.
// Word layout: the input column is one parent-flag word per visible
// port (present only for the arbdefective variant); the output column
// is one word per vertex holding the node's current - and finally
// legal/defective - color.
type Algo struct {
	// P holds the uniform parameters of the word-I/O plane; the boxed
	// fallback ignores it and reads per-vertex Input structs instead.
	P Params

	// arb flags the arbdefective variant: conflict neighbors are the
	// ports flagged nonzero in the per-port input column.
	arb bool
	// rt is the shared read-only runtime of the word plane, resolved
	// once by NewAlgo; nil on the zero-value boxed fallback.
	rt *algoRT
}

// algoRT is the run-shared runtime state of the word plane: everything
// every node of the run reads but never writes. One pointer per Algo
// copy keeps the per-node interface-call receiver at three words of
// parameters plus this pointer.
type algoRT struct {
	// blocks is the per-step row-table snapshot (palette-sized via the
	// kernel resolve in stepBlocks, or the session hot-row cache when
	// the run came through RunUniform); the step loop never touches the
	// family's atomic table pointer.
	blocks []field.RowBlock
	// stats holds the shared per-step eval counters when process-wide
	// stats are on (field.SetEvalStats); nil otherwise, so the hot path
	// pays only a nil check.
	stats []*field.EvalCounters
	// maxQ sizes the per-worker step scratch.
	maxQ int
	// pool recycles step scratch across Step calls; sync.Pool keeps the
	// steady state allocation-free without per-node buffers.
	pool sync.Pool
}

// NewAlgo prepares the word-I/O form of the recoloring program for the
// given uniform parameters. arb selects the arbdefective variant, whose
// runs take a per-port parent-flag input column.
func NewAlgo(p Params, arb bool) (Algo, error) {
	plan := Plan(p.M0, p.DegBound, p.TargetDefect)
	if err := plan.Validate(); err != nil {
		return Algo{}, err
	}
	maxQ := 0
	for _, step := range plan.Steps {
		if step.Q > maxQ {
			maxQ = step.Q
		}
	}
	rt := &algoRT{
		blocks: stepBlocks(plan),
		stats:  stepEvalCounters(plan),
		maxQ:   maxQ,
	}
	rt.pool.New = func() any { return new(wordScratch) }
	return Algo{P: p, arb: arb, rt: rt}, nil
}

// MessageWords implements dist.FixedWidthAlgorithm: every message is one
// color word.
func (Algo) MessageWords() int { return 1 }

// InputWidth implements dist.WordIOAlgorithm: the arbdefective variant
// takes one parent-flag word per visible port, the plain variant no
// input column at all.
func (a Algo) InputWidth() int {
	if a.arb {
		return dist.PerPort
	}
	return 0
}

// OutputWidth implements dist.WordIOAlgorithm: one color word per vertex.
func (Algo) OutputWidth() int { return 1 }

type nodeState struct {
	plan      Schedule
	blocks    []field.RowBlock      // per-step row-table snapshot, shared tables
	stats     []*field.EvalCounters // shared per-step eval counters; nil when off
	color     int
	step      int
	conflicts []int // reused inbox filter buffer
	scratch   stepScratch
}

// counter returns the shared eval counter of the given step, or nil when
// stats are off - the stats slice is only built when counting is
// enabled, so the common case is a single nil check.
func counter(stats []*field.EvalCounters, step int) *field.EvalCounters {
	if stats == nil {
		return nil
	}
	return stats[step]
}

// stepScratch holds the per-node reusable buffers of the recoloring step
// loop; after Init has sized them, a step performs no allocations.
type stepScratch struct {
	myRow  []int // fallback row buffer for indices beyond the cached table
	nbrRow []int
	agrees []int
}

func (sc *stepScratch) grow(q int) {
	if cap(sc.agrees) < q {
		sc.myRow = make([]int, q)
		sc.nbrRow = make([]int, q)
		sc.agrees = make([]int, q)
	}
}

// Init derives the node's schedule from its Input and sends the initial
// color when at least one step is required.
func (Algo) Init(n *dist.Node) {
	if c, announce := initNode(n); announce {
		n.SendAll(c)
	}
}

// InitWords is Init on the typed word plane: the schedule is shared via
// the receiver (NewAlgo), the node's evolving color lives in its output
// word, and the step index is the round number - so no per-node state
// object exists at all.
//
//distvet:noalloc
func (a Algo) InitWords(n *dist.Node) {
	if a.rt == nil && a.P == (Params{}) {
		// Zero-value Algo on the word plane mirrors the boxed defensive
		// default: the trivial legal n-coloring from identifiers.
		n.SetOutputWord(int64(n.ID() - 1))
		n.Halt()
		return
	}
	if a.P.TargetDefect >= a.P.DegBound {
		// A single color class already satisfies the defect bound; the
		// zeroed output word is the color 0.
		n.Halt()
		return
	}
	color := a.P.Color
	if color < 0 {
		color = n.ID() - 1
	}
	n.SetOutputWord(int64(color))
	if a.rt == nil || len(a.rt.blocks) == 0 {
		n.Halt()
		return
	}
	n.SendAllWord(int64(color))
}

// initNode is the transport-independent part of Init: it derives the
// schedule and either finishes the node (announce=false) or returns the
// initial color the caller must broadcast.
func initNode(n *dist.Node) (int, bool) {
	in, ok := n.Input.(Input)
	if !ok {
		// Defensive default: trivial ID coloring with no recoloring.
		n.Output = n.ID() - 1
		n.Halt()
		return 0, false
	}
	color := in.Color
	if color < 0 {
		color = n.ID() - 1
	}
	plan := Plan(in.M0, in.DegBound, in.TargetDefect)
	if plan.Truncated {
		panic(fmt.Sprintf("recolor: schedule for (m0=%d, degBound=%d, target=%d) exceeds %d steps; defect guarantee void",
			in.M0, in.DegBound, in.TargetDefect, maxScheduleSteps))
	}
	st := &nodeState{
		plan:   plan,
		blocks: stepBlocks(plan),
		stats:  stepEvalCounters(plan),
		color:  color,
	}
	if in.TargetDefect >= in.DegBound {
		// A single color class already satisfies the defect bound.
		n.Output = 0
		n.Halt()
		return 0, false
	}
	maxQ := 0
	for _, step := range plan.Steps {
		if step.Q > maxQ {
			maxQ = step.Q
		}
	}
	st.scratch.grow(maxQ)
	n.State = st
	if len(st.plan.Steps) == 0 {
		n.Output = color
		n.Halt()
		return 0, false
	}
	return color, true
}

// stepBlocks resolves one row-table snapshot per schedule step: the
// memoized family (stepFamilies), grown to the step's palette bound and
// snapshotted once, so the step loop indexes a slice and never touches
// the family's atomic table pointer. Both the boxed and the word plane
// resolve their blocks through here, so their eval-counter
// classifications match exactly.
func stepBlocks(plan Schedule) []field.RowBlock {
	fams := stepFamilies(plan)
	if fams == nil {
		return nil
	}
	blocks := make([]field.RowBlock, len(fams))
	palette := plan.M0
	for i, step := range plan.Steps {
		blocks[i] = fams[i].Block(palette)
		palette = step.Q * step.Q
	}
	return blocks
}

// stepFamilies resolves the memoized family of every step once, at Init,
// so the step loop only indexes a slice. Each family's row table is
// sized to the step's actual palette bound (field.FamiliesFor): step 0
// evaluates colors in [0, M0), step i colors in [0, Q_{i-1}^2), so the
// shared cache grows exactly to what the schedule's evaluation loop
// will index instead of the fixed construction cap. Both the boxed and
// the word plane resolve families through here, so their hit rates
// match.
func stepFamilies(plan Schedule) []*field.Family {
	if len(plan.Steps) == 0 {
		return nil
	}
	fams := make([]*field.Family, len(plan.Steps))
	palette := plan.M0
	for i, step := range plan.Steps {
		fam, err := field.FamiliesFor(step.Q, step.D, palette)
		if err != nil {
			// Unreachable: schedules only contain prime moduli (Validate).
			panic(fmt.Sprintf("recolor: invalid step %+v: %v", step, err))
		}
		fams[i] = fam
		palette = step.Q * step.Q
	}
	return fams
}

// stepEvalCounters resolves the shared per-step eval counters of the
// schedule when process-wide stats are enabled (field.SetEvalStats);
// nil otherwise. Resolving once per algorithm construction keeps the
// registry lock out of the step loop.
func stepEvalCounters(plan Schedule) []*field.EvalCounters {
	if len(plan.Steps) == 0 || !field.EvalStatsEnabled() {
		return nil
	}
	cs := make([]*field.EvalCounters, len(plan.Steps))
	for i, step := range plan.Steps {
		cs[i] = field.StepCounters(i, step.Q, step.D)
	}
	return cs
}

// hotRowsKey keys the per-session hot-row cache in the network's
// session value store (dist.Network.SessionValue).
type hotRowsKey struct{}

// hotKey identifies one schedule step's resolved row surface: the step
// index plus the family parameters and palette bound that sized its
// table.
type hotKey struct{ step, q, d, palette int }

// hotRows is the session-scratch hot-row cache: per (step, family) the
// row-table snapshot the session's runs share. Families and their
// tables are process-wide already; what the cache pins is the resolved
// RowBlock value itself, so repeated runs over the same network reuse
// one snapshot (one rows slice) instead of re-touching the family's
// atomic table pointer per run. Entries only ever advance to snapshots
// covering at least as many rows (EnsureRows growth is monotone), so a
// cached block is always interchangeable with a fresh resolve.
type hotRows struct {
	mu     sync.Mutex
	blocks map[hotKey]field.RowBlock
}

// bindSession swaps the algorithm's per-step snapshots against the
// network session's hot-row cache: a cached snapshot covering as many
// rows as the fresh resolve replaces it (slice reuse across runs);
// otherwise the fresh, larger snapshot becomes the cached one. The
// exchange never changes any evaluated value - blocks of the same
// (q, d) family view the same monotone table - so colors and counter
// classifications are identical with or without the cache.
func (a Algo) bindSession(net *dist.Network) {
	if a.rt == nil || len(a.rt.blocks) == 0 {
		return
	}
	hot := net.SessionValue(hotRowsKey{}, func() any {
		return &hotRows{blocks: make(map[hotKey]field.RowBlock)}
	}).(*hotRows)
	hot.mu.Lock()
	defer hot.mu.Unlock()
	palette := a.P.M0
	for i := range a.rt.blocks {
		b := &a.rt.blocks[i]
		k := hotKey{step: i, q: b.Q(), d: b.Degree(), palette: palette}
		if cached, ok := hot.blocks[k]; ok && cached.Cached() >= b.Cached() {
			*b = cached
		} else {
			hot.blocks[k] = *b
		}
		palette = k.q * k.q
	}
}

// Step executes one recoloring round.
func (Algo) Step(n *dist.Node, inbox []dist.Message) {
	st := n.State.(*nodeState)
	in := n.Input.(Input)

	// Gather conflict-neighbor colors into the reused buffer.
	st.conflicts = st.conflicts[:0]
	for p, m := range inbox {
		if m == nil {
			continue
		}
		if in.ParentPort != nil && (p >= len(in.ParentPort) || !in.ParentPort[p]) {
			continue
		}
		st.conflicts = append(st.conflicts, m.(int))
	}

	if c, announce := advance(n, st); announce {
		n.SendAll(c)
	}
}

// wordScratch is the transient per-Step buffer set of the word plane,
// recycled through Algo.pool: the scratch is only live within one
// StepWords call, so a handful of pooled instances serve all workers.
type wordScratch struct {
	stepScratch
	conflicts []int
}

// StepWords is Step on the typed word plane. The step index is
// Round()-1 (all nodes run the schedule in lockstep) and the current
// color is the node's own output word, so the call touches no per-node
// state.
//
//distvet:noalloc
func (a Algo) StepWords(n *dist.Node, inbox dist.WordInbox) {
	rt := a.rt
	sc := rt.pool.Get().(*wordScratch)
	sc.grow(rt.maxQ)
	conflicts := sc.conflicts[:0]
	var flags []int64
	if a.arb {
		flags = n.InputWords()
	}
	for p := 0; p < inbox.Ports(); p++ {
		if !inbox.Has(p) {
			continue
		}
		if flags != nil && flags[p] == 0 {
			continue
		}
		conflicts = append(conflicts, int(inbox.Word(p))) //distvet:alloc-ok amortized growth of the pooled scratch's conflicts buffer
	}
	step := n.Round() - 1
	color := sc.recolorOnce(&rt.blocks[step], int(n.OutputWords()[0]), conflicts, counter(rt.stats, step))
	sc.conflicts = conflicts
	rt.pool.Put(sc)
	n.SetOutputWord(int64(color))
	if step+1 < len(rt.blocks) {
		n.SendAllWord(int64(color))
		return
	}
	n.Halt()
}

// advance applies one recoloring step to the gathered conflicts and
// either finishes the node (announce=false) or returns the new color the
// caller must broadcast.
func advance(n *dist.Node, st *nodeState) (int, bool) {
	st.color = st.scratch.recolorOnce(&st.blocks[st.step], st.color, st.conflicts, counter(st.stats, st.step))
	st.step++
	if st.step < len(st.plan.Steps) {
		return st.color, true
	}
	n.Output = st.color
	n.Halt()
	return 0, false
}

// recolorOnce applies one Step: pick alpha minimizing agreements with
// differently-colored conflict neighbors and return alpha*q + phi_x(alpha).
// It sorts conflictColors in place into one contiguous run and hands the
// run to the batch kernel (field.RowBlock.AgreeRun): each distinct color
// is weighted by its multiplicity (agreement counts are per neighbor)
// and its row materialized at most once - a view into the block's table
// snapshot, or the division-free finite-difference kernel into scratch.
// No allocations, no atomic table loads, and no scalar Eval fallbacks on
// any input. ec, when non-nil, classifies every row materialization as
// a table hit or a batched kernel evaluation - exactly one count per
// distinct row.
//
//distvet:noalloc
func (sc *stepScratch) recolorOnce(b *field.RowBlock, x int, conflictColors []int, ec *field.EvalCounters) int {
	q := b.Q()
	ec.CountRow(b.Cached(), x)
	myRow := b.Row(x, sc.myRow)
	agrees := sc.agrees[:q]
	clear(agrees)
	slices.Sort(conflictColors)
	b.AgreeRun(agrees, myRow, conflictColors, x, sc.nbrRow, ec)
	bestAlpha := 0
	for alpha := 1; alpha < q; alpha++ {
		if agrees[alpha] < agrees[bestAlpha] {
			bestAlpha = alpha
		}
	}
	return bestAlpha*q + myRow[bestAlpha]
}

// recolorOnce is the convenience form used by tests: it resolves the
// memoized family for the step and runs the zero-alloc core on fresh
// scratch. The caller's conflictColors slice is not modified.
func recolorOnce(step Step, x int, conflictColors []int) int {
	fam, err := field.Families(step.Q, step.D)
	if err != nil {
		panic(fmt.Sprintf("recolor: invalid step %+v: %v", step, err))
	}
	b := fam.Block(-1)
	var sc stepScratch
	sc.grow(step.Q)
	conflicts := append([]int(nil), conflictColors...)
	return sc.recolorOnce(&b, x, conflicts, nil)
}

// Result reports a whole-graph recoloring run.
type Result struct {
	Colors   []int
	Schedule Schedule
	Rounds   int
	Messages int64
	// Wall and PeakLive attribute the engine run host-side (see
	// dist.Result); Wall is not deterministic.
	Wall     time.Duration
	PeakLive int
}

// RunUniform executes the recoloring program with the uniform
// parameters p on the label/active-filtered subgraphs, writing each
// vertex's final color into dst (length n; inactive vertices report 0).
// parentPorts - per vertex, aligned with its visible ports under the
// same filters - selects the arbdefective variant when non-nil. It
// takes the typed word path when the network resolves to the batch
// transport and the boxed []any fallback otherwise, so forcing
// dist.DeliveryBoxed on the network shadows the whole phase. The
// returned RunStats carries the LOCAL cost plus the engine run's wall
// time and peak live-set size for phase attribution.
func RunUniform(net *dist.Network, p Params, parentPorts [][]bool, labels []int, active []bool, dst []int) (dist.RunStats, error) {
	g := net.Graph()
	n := g.N()
	if len(dst) != n {
		return dist.RunStats{}, fmt.Errorf("recolor: %d color slots for %d vertices", len(dst), n)
	}
	algo, err := NewAlgo(p, parentPorts != nil)
	if err != nil {
		return dist.RunStats{}, err
	}
	algo.bindSession(net)
	if net.WordIO(algo) {
		var inWords []int64
		if parentPorts != nil {
			// Parent flags in the engine's per-port layout, filled in
			// parallel against the session's cached topology.
			inWords = net.PortColumn(labels, active, func(v int, ports []int, out []int64) {
				flags := parentPorts[v]
				for i := range ports {
					if i < len(flags) && flags[i] {
						out[i] = 1
					}
				}
			})
		}
		res, err := net.RunWords(algo, dist.RunOptions{InputWords: inWords, Labels: labels, Active: active})
		if err != nil {
			return dist.RunStats{}, err
		}
		if err := dist.IntsFromWords(res, dst); err != nil {
			return dist.RunStats{}, err
		}
		return res.Stats(), nil
	}
	inputs := make([]any, n)
	for v := 0; v < n; v++ {
		iv := Input{Color: p.Color, M0: p.M0, DegBound: p.DegBound, TargetDefect: p.TargetDefect}
		if parentPorts != nil {
			iv.ParentPort = parentPorts[v]
		}
		inputs[v] = iv
	}
	res, err := net.Run(algo, dist.RunOptions{Inputs: inputs, Labels: labels, Active: active})
	if err != nil {
		return dist.RunStats{}, err
	}
	colors, err := dist.IntOutputs(res, 0)
	if err != nil {
		return dist.RunStats{}, err
	}
	copy(dst, colors)
	return res.Stats(), nil
}

// run executes the algorithm with uniform inputs on all (active) vertices.
func run(net *dist.Network, in Input, parentPorts [][]bool) (Result, error) {
	plan := Plan(in.M0, in.DegBound, in.TargetDefect)
	if err := plan.Validate(); err != nil {
		return Result{}, err
	}
	colors := make([]int, net.Graph().N())
	p := Params{Color: in.Color, M0: in.M0, DegBound: in.DegBound, TargetDefect: in.TargetDefect}
	st, err := RunUniform(net, p, parentPorts, nil, nil, colors)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Colors:   colors,
		Schedule: plan,
		Rounds:   st.Rounds,
		Messages: st.Messages,
		Wall:     st.Wall,
		PeakLive: st.PeakLive,
	}, nil
}

// Linial computes a legal O(Delta^2)-coloring in O(log* n) rounds
// (Linial FOCS'87, the paper's baseline and Lemma 2.1 ancestor).
func Linial(net *dist.Network) (Result, error) {
	g := net.Graph()
	return run(net, Input{
		Color:        -1,
		M0:           g.N(),
		DegBound:     g.MaxDegree(),
		TargetDefect: 0,
	}, nil)
}

// Defective computes a floor(Delta/p)-defective O(p^2)-coloring in
// O(log* n) rounds (Lemma 2.1 / Kuhn SPAA'09). p must be positive.
func Defective(net *dist.Network, p int) (Result, error) {
	if p <= 0 {
		return Result{}, fmt.Errorf("recolor: p must be positive, got %d", p)
	}
	g := net.Graph()
	delta := g.MaxDegree()
	return run(net, Input{
		Color:        -1,
		M0:           g.N(),
		DegBound:     delta,
		TargetDefect: delta / p,
	}, nil)
}

// ArbKuhn computes a d-arbdefective O((A/d)^2)-coloring, where A is the
// maximum out-degree of the given complete acyclic orientation (Section 5,
// Algorithm Arb-Kuhn). Each color class, with edges oriented as in sigma,
// has out-degree at most d, certifying arboricity at most d (Lemma 2.5).
// The orientation itself is typically produced by Lemma 2.4 in O(log n)
// rounds; this routine adds only O(log* n) rounds.
func ArbKuhn(net *dist.Network, sigma *graph.Orientation, d int) (Result, error) {
	if d < 0 {
		return Result{}, fmt.Errorf("recolor: negative arbdefect target %d", d)
	}
	g := net.Graph()
	if sigma.Graph() != g {
		return Result{}, fmt.Errorf("recolor: orientation is over a different graph")
	}
	parentPorts := ParentPortFlags(g, sigma)
	return run(net, Input{
		Color:        -1,
		M0:           g.N(),
		DegBound:     sigma.MaxOutDegree(),
		TargetDefect: d,
	}, parentPorts)
}

// ParentPortFlags encodes, for each vertex, which of its ports lead to
// parents under sigma. This is the distributed knowledge each node holds
// after an orientation has been computed.
func ParentPortFlags(g *graph.Graph, sigma *graph.Orientation) [][]bool {
	out := make([][]bool, g.N())
	for v := 0; v < g.N(); v++ {
		flags := make([]bool, len(g.Neighbors(v)))
		for p := range flags {
			flags[p] = sigma.IsParentPort(v, p)
		}
		out[v] = flags
	}
	return out
}
