package recolor

import (
	"fmt"
	"slices"

	"repro/internal/dist"
	"repro/internal/field"
	"repro/internal/graph"
)

// Input is the per-node input for the recoloring algorithm. All nodes of
// the same (sub)graph must receive identical M0, DegBound and TargetDefect
// so they derive identical schedules and run in lockstep.
type Input struct {
	// Color is the node's initial color in [0, M0); a negative value means
	// "use ID-1" (the trivial legal n-coloring from identifiers).
	Color int
	// M0 is the size of the initial color space (n when starting from IDs).
	M0 int
	// DegBound bounds the number of conflict neighbors of every node:
	// the maximum degree for the defective variant, the maximum out-degree
	// of the orientation for the arbdefective variant.
	DegBound int
	// TargetDefect is the final defect d (0 for a legal coloring).
	TargetDefect int
	// ParentPort, when non-nil, flags which visible ports lead to parents;
	// only parents then count as conflict neighbors (Arb-Kuhn, Section 5).
	// When nil, every neighbor is a conflict neighbor (Linial/Kuhn).
	ParentPort []bool
}

// Algo is the dist.Algorithm executing a recoloring schedule. The zero
// value is ready to use; it is stateless (per-node state lives in the
// Node). It also implements dist.FixedWidthAlgorithm (messages are single
// colors), so runs use the columnar batch transport by default.
type Algo struct{}

// MessageWords implements dist.FixedWidthAlgorithm: every message is one
// color word.
func (Algo) MessageWords() int { return 1 }

type nodeState struct {
	plan      Schedule
	fams      []*field.Family // memoized family per step, shared process-wide
	color     int
	step      int
	conflicts []int // reused inbox filter buffer
	scratch   stepScratch
}

// stepScratch holds the per-node reusable buffers of the recoloring step
// loop; after Init has sized them, a step performs no allocations.
type stepScratch struct {
	myRow  []int // fallback row buffer for indices beyond the cached table
	nbrRow []int
	agrees []int
}

func (sc *stepScratch) grow(q int) {
	if cap(sc.agrees) < q {
		sc.myRow = make([]int, q)
		sc.nbrRow = make([]int, q)
		sc.agrees = make([]int, q)
	}
}

// Init derives the node's schedule from its Input and sends the initial
// color when at least one step is required.
func (Algo) Init(n *dist.Node) {
	if c, announce := initNode(n); announce {
		n.SendAll(c)
	}
}

// InitWords is Init on the batch transport.
func (Algo) InitWords(n *dist.Node) {
	if c, announce := initNode(n); announce {
		n.SendAllWord(int64(c))
	}
}

// initNode is the transport-independent part of Init: it derives the
// schedule and either finishes the node (announce=false) or returns the
// initial color the caller must broadcast.
func initNode(n *dist.Node) (int, bool) {
	in, ok := n.Input.(Input)
	if !ok {
		// Defensive default: trivial ID coloring with no recoloring.
		n.Output = n.ID() - 1
		n.Halt()
		return 0, false
	}
	color := in.Color
	if color < 0 {
		color = n.ID() - 1
	}
	plan := Plan(in.M0, in.DegBound, in.TargetDefect)
	if plan.Truncated {
		panic(fmt.Sprintf("recolor: schedule for (m0=%d, degBound=%d, target=%d) exceeds %d steps; defect guarantee void",
			in.M0, in.DegBound, in.TargetDefect, maxScheduleSteps))
	}
	st := &nodeState{
		plan:  plan,
		fams:  stepFamilies(plan),
		color: color,
	}
	if in.TargetDefect >= in.DegBound {
		// A single color class already satisfies the defect bound.
		n.Output = 0
		n.Halt()
		return 0, false
	}
	maxQ := 0
	for _, step := range plan.Steps {
		if step.Q > maxQ {
			maxQ = step.Q
		}
	}
	st.scratch.grow(maxQ)
	n.State = st
	if len(st.plan.Steps) == 0 {
		n.Output = color
		n.Halt()
		return 0, false
	}
	return color, true
}

// stepFamilies resolves the memoized family of every step once, at Init,
// so the step loop only indexes a slice.
func stepFamilies(plan Schedule) []*field.Family {
	if len(plan.Steps) == 0 {
		return nil
	}
	fams := make([]*field.Family, len(plan.Steps))
	for i, step := range plan.Steps {
		fam, err := field.Families(step.Q, step.D)
		if err != nil {
			// Unreachable: schedules only contain prime moduli (Validate).
			panic(fmt.Sprintf("recolor: invalid step %+v: %v", step, err))
		}
		fams[i] = fam
	}
	return fams
}

// Step executes one recoloring round.
func (Algo) Step(n *dist.Node, inbox []dist.Message) {
	st := n.State.(*nodeState)
	in := n.Input.(Input)

	// Gather conflict-neighbor colors into the reused buffer.
	st.conflicts = st.conflicts[:0]
	for p, m := range inbox {
		if m == nil {
			continue
		}
		if in.ParentPort != nil && (p >= len(in.ParentPort) || !in.ParentPort[p]) {
			continue
		}
		st.conflicts = append(st.conflicts, m.(int))
	}

	if c, announce := advance(n, st); announce {
		n.SendAll(c)
	}
}

// StepWords is Step on the batch transport.
func (Algo) StepWords(n *dist.Node, inbox dist.WordInbox) {
	st := n.State.(*nodeState)
	in := n.Input.(Input)

	st.conflicts = st.conflicts[:0]
	for p := 0; p < inbox.Ports(); p++ {
		if !inbox.Has(p) {
			continue
		}
		if in.ParentPort != nil && (p >= len(in.ParentPort) || !in.ParentPort[p]) {
			continue
		}
		st.conflicts = append(st.conflicts, int(inbox.Word(p)))
	}

	if c, announce := advance(n, st); announce {
		n.SendAllWord(int64(c))
	}
}

// advance applies one recoloring step to the gathered conflicts and
// either finishes the node (announce=false) or returns the new color the
// caller must broadcast.
func advance(n *dist.Node, st *nodeState) (int, bool) {
	st.color = st.scratch.recolorOnce(st.fams[st.step], st.color, st.conflicts)
	st.step++
	if st.step < len(st.plan.Steps) {
		return st.color, true
	}
	n.Output = st.color
	n.Halt()
	return 0, false
}

// recolorOnce applies one Step: pick alpha minimizing agreements with
// differently-colored conflict neighbors and return alpha*q + phi_x(alpha).
// It sorts conflictColors in place to weight each distinct color by its
// multiplicity (agreement counts are per neighbor) while materializing
// every row at most once, and performs no allocations: rows are views
// into the family's precomputed table or the scratch buffers.
func (sc *stepScratch) recolorOnce(fam *field.Family, x int, conflictColors []int) int {
	q := fam.Q()
	myRow := fam.RowView(x, sc.myRow)
	agrees := sc.agrees[:q]
	clear(agrees)
	slices.Sort(conflictColors)
	for i := 0; i < len(conflictColors); {
		y := conflictColors[i]
		j := i + 1
		for j < len(conflictColors) && conflictColors[j] == y {
			j++
		}
		mult := j - i
		i = j
		if y == x {
			continue // same-colored neighbors carry over (Appendix B)
		}
		row := fam.RowView(y, sc.nbrRow)
		for alpha := 0; alpha < q; alpha++ {
			if row[alpha] == myRow[alpha] {
				agrees[alpha] += mult
			}
		}
	}
	bestAlpha := 0
	for alpha := 1; alpha < q; alpha++ {
		if agrees[alpha] < agrees[bestAlpha] {
			bestAlpha = alpha
		}
	}
	return bestAlpha*q + myRow[bestAlpha]
}

// recolorOnce is the convenience form used by tests: it resolves the
// memoized family for the step and runs the zero-alloc core on fresh
// scratch. The caller's conflictColors slice is not modified.
func recolorOnce(step Step, x int, conflictColors []int) int {
	fam, err := field.Families(step.Q, step.D)
	if err != nil {
		panic(fmt.Sprintf("recolor: invalid step %+v: %v", step, err))
	}
	var sc stepScratch
	sc.grow(step.Q)
	conflicts := append([]int(nil), conflictColors...)
	return sc.recolorOnce(fam, x, conflicts)
}

// Result reports a whole-graph recoloring run.
type Result struct {
	Colors   []int
	Schedule Schedule
	Rounds   int
	Messages int64
}

// run executes the algorithm with uniform inputs on all (active) vertices.
func run(net *dist.Network, in Input, parentPorts [][]bool) (Result, error) {
	plan := Plan(in.M0, in.DegBound, in.TargetDefect)
	if err := plan.Validate(); err != nil {
		return Result{}, err
	}
	n := net.Graph().N()
	inputs := make([]any, n)
	for v := 0; v < n; v++ {
		iv := in
		if parentPorts != nil {
			iv.ParentPort = parentPorts[v]
		}
		inputs[v] = iv
	}
	res, err := net.Run(Algo{}, dist.RunOptions{Inputs: inputs})
	if err != nil {
		return Result{}, err
	}
	colors, err := dist.IntOutputs(res, 0)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Colors:   colors,
		Schedule: plan,
		Rounds:   res.Rounds,
		Messages: res.Messages,
	}, nil
}

// Linial computes a legal O(Delta^2)-coloring in O(log* n) rounds
// (Linial FOCS'87, the paper's baseline and Lemma 2.1 ancestor).
func Linial(net *dist.Network) (Result, error) {
	g := net.Graph()
	return run(net, Input{
		Color:        -1,
		M0:           g.N(),
		DegBound:     g.MaxDegree(),
		TargetDefect: 0,
	}, nil)
}

// Defective computes a floor(Delta/p)-defective O(p^2)-coloring in
// O(log* n) rounds (Lemma 2.1 / Kuhn SPAA'09). p must be positive.
func Defective(net *dist.Network, p int) (Result, error) {
	if p <= 0 {
		return Result{}, fmt.Errorf("recolor: p must be positive, got %d", p)
	}
	g := net.Graph()
	delta := g.MaxDegree()
	return run(net, Input{
		Color:        -1,
		M0:           g.N(),
		DegBound:     delta,
		TargetDefect: delta / p,
	}, nil)
}

// ArbKuhn computes a d-arbdefective O((A/d)^2)-coloring, where A is the
// maximum out-degree of the given complete acyclic orientation (Section 5,
// Algorithm Arb-Kuhn). Each color class, with edges oriented as in sigma,
// has out-degree at most d, certifying arboricity at most d (Lemma 2.5).
// The orientation itself is typically produced by Lemma 2.4 in O(log n)
// rounds; this routine adds only O(log* n) rounds.
func ArbKuhn(net *dist.Network, sigma *graph.Orientation, d int) (Result, error) {
	if d < 0 {
		return Result{}, fmt.Errorf("recolor: negative arbdefect target %d", d)
	}
	g := net.Graph()
	if sigma.Graph() != g {
		return Result{}, fmt.Errorf("recolor: orientation is over a different graph")
	}
	parentPorts := ParentPortFlags(g, sigma)
	return run(net, Input{
		Color:        -1,
		M0:           g.N(),
		DegBound:     sigma.MaxOutDegree(),
		TargetDefect: d,
	}, parentPorts)
}

// ParentPortFlags encodes, for each vertex, which of its ports lead to
// parents under sigma. This is the distributed knowledge each node holds
// after an orientation has been computed.
func ParentPortFlags(g *graph.Graph, sigma *graph.Orientation) [][]bool {
	out := make([][]bool, g.N())
	for v := 0; v < g.N(); v++ {
		flags := make([]bool, len(g.Neighbors(v)))
		for p := range flags {
			flags[p] = sigma.IsParentPort(v, p)
		}
		out[v] = flags
	}
	return out
}
