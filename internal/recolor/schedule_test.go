package recolor

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestPlanValidatesAcrossSweep(t *testing.T) {
	for _, m0 := range []int{1, 2, 10, 100, 1000, 100000, 10000000} {
		for _, deg := range []int{0, 1, 2, 5, 17, 100, 999} {
			for _, d := range []int{0, 1, 2, deg / 4, deg / 2, deg, deg + 5} {
				if d < 0 {
					continue
				}
				s := Plan(m0, deg, d)
				if err := s.Validate(); err != nil {
					t.Errorf("Plan(%d,%d,%d) invalid: %v", m0, deg, d, err)
				}
			}
		}
	}
}

func TestPlanLinialColorBound(t *testing.T) {
	// Target defect 0: terminal colors must be O(Delta^2); empirically the
	// planner stays below 8*Delta^2 + 1 across the measured range.
	for _, m0 := range []int{100, 10000, 1000000, 1 << 40} {
		for _, deg := range []int{1, 2, 3, 5, 10, 31, 100, 500} {
			s := Plan(m0, deg, 0)
			fc := s.FinalColors()
			bound := 8*deg*deg + 1
			if m0 < bound {
				bound = m0 // cannot do worse than the input coloring
			}
			if fc > bound {
				t.Errorf("Plan(%d,%d,0) final colors %d > %d", m0, deg, fc, bound)
			}
		}
	}
}

func TestPlanLinialRoundBound(t *testing.T) {
	for _, m0 := range []int{16, 1024, 1 << 20, 1 << 40, 1 << 60} {
		for _, deg := range []int{2, 10, 100} {
			s := Plan(m0, deg, 0)
			if got, limit := s.Rounds(), graph.LogStar(m0)+2; got > limit {
				t.Errorf("Plan(%d,%d,0) rounds %d > log*+2 = %d", m0, deg, got, limit)
			}
		}
	}
}

func TestPlanDefectiveColorBound(t *testing.T) {
	// Lemma 2.1 shape: floor(Delta/p)-defective coloring with O(p^2)
	// colors; the planner stays below 16*p^2 + 26 empirically.
	for _, m0 := range []int{1000, 1000000} {
		for _, deg := range []int{16, 100, 1000} {
			for _, p := range []int{1, 2, 3, 5, 8, 16, 32} {
				s := Plan(m0, deg, deg/p)
				fc := s.FinalColors()
				if bound := 16*p*p + 26; fc > bound {
					t.Errorf("Plan(%d,%d,%d/%d) final colors %d > %d", m0, deg, deg, p, fc, bound)
				}
				if limit := graph.LogStar(m0) + 2; s.Rounds() > limit {
					t.Errorf("Plan(%d,%d,%d/%d) rounds %d > %d", m0, deg, deg, p, s.Rounds(), limit)
				}
			}
		}
	}
}

func TestPlanTrivialCases(t *testing.T) {
	// Defect budget >= degree bound: a single color suffices, zero rounds.
	s := Plan(1000, 10, 10)
	if s.Rounds() != 0 || s.FinalColors() != 1 {
		t.Errorf("saturating budget: rounds=%d colors=%d, want 0/1", s.Rounds(), s.FinalColors())
	}
	// Degenerate graph (degree bound 0).
	s = Plan(1000, 0, 0)
	if s.FinalColors() != 1 {
		t.Errorf("isolated vertices: colors=%d, want 1", s.FinalColors())
	}
	// Tiny color space: nothing to do.
	s = Plan(2, 5, 0)
	if s.Rounds() != 0 || s.FinalColors() != 2 {
		t.Errorf("m0=2: rounds=%d colors=%d, want 0/2", s.Rounds(), s.FinalColors())
	}
}

func TestPlanMonotoneProgress(t *testing.T) {
	// Every step strictly decreases the color count and never decreases
	// the cumulative defect.
	s := Plan(1<<40, 200, 40)
	m := s.M0
	d := 0
	for i, st := range s.Steps {
		if st.Q*st.Q >= m {
			t.Fatalf("step %d does not reduce colors: %d -> %d", i, m, st.Q*st.Q)
		}
		if st.DefectOut < d {
			t.Fatalf("step %d decreases defect: %d -> %d", i, d, st.DefectOut)
		}
		m = st.Q * st.Q
		d = st.DefectOut
	}
	if d > s.TargetDefect {
		t.Fatalf("final defect %d exceeds target %d", d, s.TargetDefect)
	}
}

func TestPlanQuickValidity(t *testing.T) {
	prop := func(m0u, degu, du uint16) bool {
		m0 := int(m0u)%100000 + 1
		deg := int(degu) % 2000
		d := 0
		if deg > 0 {
			d = int(du) % (deg + 1)
		}
		s := Plan(m0, deg, d)
		return s.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIntRootCeil(t *testing.T) {
	tests := []struct{ m, e, want int }{
		{8, 3, 2}, {9, 3, 3}, {27, 3, 3}, {28, 3, 4}, {1, 5, 2},
		{1000000, 2, 1000}, {1000001, 2, 1001}, {1 << 40, 4, 1 << 10},
	}
	for _, tc := range tests {
		if got := intRootCeil(tc.m, tc.e); got != tc.want {
			t.Errorf("intRootCeil(%d,%d) = %d, want %d", tc.m, tc.e, got, tc.want)
		}
	}
}

func TestPowAtLeast(t *testing.T) {
	if !powAtLeast(2, 10, 1024) {
		t.Error("2^10 >= 1024 should hold")
	}
	if powAtLeast(2, 10, 1025) {
		t.Error("2^10 >= 1025 should not hold")
	}
	if !powAtLeast(3, 40, 1<<61) {
		t.Error("3^40 overflow-safe comparison failed")
	}
}
