package field

import (
	"sync"
	"testing"
)

// TestFamiliesForPaletteSizing pins the palette-driven row-table sizing:
// the table covers exactly the requested bound (not the fixed
// construction cap), never shrinks, and saturates at the growth ceiling.
func TestFamiliesForPaletteSizing(t *testing.T) {
	const q = 2003 // fresh (q, d) key; the cache is process-wide
	fam, err := FamiliesFor(q, 1, 500)
	if err != nil {
		t.Fatal(err)
	}
	if fam.RowsCached() != 500 {
		t.Fatalf("palette 500 sized table to %d rows", fam.RowsCached())
	}
	snapshot := fam.EvalTable()

	// A smaller palette never shrinks the table.
	again, err := FamiliesFor(q, 1, 200)
	if err != nil {
		t.Fatal(err)
	}
	if again != fam {
		t.Fatal("FamiliesFor returned a distinct instance for the same key")
	}
	if fam.RowsCached() != 500 {
		t.Fatalf("palette 200 shrank table to %d rows", fam.RowsCached())
	}

	// Growth extends the table and the new rows match Eval.
	if got := fam.EnsureRows(700); got != 700 {
		t.Fatalf("EnsureRows(700) = %d", got)
	}
	scratch := make([]int, q)
	for _, x := range []int{499, 500, 699} {
		view := fam.RowView(x, scratch)
		for alpha := 0; alpha < q; alpha++ {
			if view[alpha] != fam.Eval(x, alpha) {
				t.Fatalf("grown RowView(%d)[%d] mismatch", x, alpha)
			}
		}
	}
	// The pre-growth snapshot stays a valid (smaller) table.
	if len(snapshot) != 500*q {
		t.Fatalf("pre-growth snapshot length %d, want %d", len(snapshot), 500*q)
	}

	// An over-large palette saturates at the growth ceiling, which beats
	// the default construction cap.
	if got := fam.EnsureRows(1 << 30); got != maxRowTableGrowInts/q {
		t.Fatalf("EnsureRows(1<<30) = %d, want ceiling %d", got, maxRowTableGrowInts/q)
	}
	if fam.RowsCached() <= maxRowTableInts/q {
		t.Fatalf("growth ceiling %d does not exceed the construction cap %d",
			fam.RowsCached(), maxRowTableInts/q)
	}
}

// TestNewFamilySizedBounds pins the construction-time sizing: the palette
// bound wins below the ceiling, the family size wins below the palette,
// and m < 0 falls back to the default cap.
func TestNewFamilySizedBounds(t *testing.T) {
	small, err := NewFamilySized(7, 1, 1000) // size 49 < palette
	if err != nil {
		t.Fatal(err)
	}
	if small.RowsCached() != small.Size() {
		t.Fatalf("small family cached %d of %d", small.RowsCached(), small.Size())
	}
	sized, err := NewFamilySized(1009, 1, 300)
	if err != nil {
		t.Fatal(err)
	}
	if sized.RowsCached() != 300 {
		t.Fatalf("palette 300 sized table to %d rows", sized.RowsCached())
	}
	def, err := NewFamilySized(1009, 1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if def.RowsCached() != maxRowTableInts/1009 {
		t.Fatalf("default sizing gave %d rows, want %d", def.RowsCached(), maxRowTableInts/1009)
	}
}

// TestEnsureRowsConcurrent hammers growth and reads together (run with
// -race): every reader must see a consistent snapshot and the final
// table must cover the largest requested palette.
func TestEnsureRowsConcurrent(t *testing.T) {
	const q = 307
	fam, err := NewFamilySized(q, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for m := 32; m <= 4096; m *= 2 {
				fam.EnsureRows(m + i)
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := make([]int, q)
			for x := 0; x < 5000; x += 7 {
				view := fam.RowView(x, scratch)
				if view[1] != fam.Eval(x, 1) {
					t.Errorf("RowView(%d) inconsistent during growth", x)
					return
				}
			}
		}()
	}
	wg.Wait()
	if fam.RowsCached() < 4099 {
		t.Fatalf("final table covers %d rows, want >= 4099", fam.RowsCached())
	}
}
