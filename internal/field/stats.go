package field

import (
	"sort"
	"sync"
	"sync/atomic"
)

// This file implements process-wide evaluation statistics for the
// row-table fast path vs. the Horner fallback of Family.RowView/Eval -
// the pipeline's one known hot spot (~55% of single-core wall per
// ROADMAP). Counting is opt-in: with stats disabled (the default),
// callers hold nil *EvalCounters and the hot path pays nothing beyond a
// nil check. With stats enabled, counters are shared per (step, q, d)
// key and incremented atomically, so they are exact under any worker
// count (including -race runs).

// EvalCounters tallies row evaluations at one call site family: hits
// are evaluations answered by the precomputed row table, batched are
// rows materialized by the division-free batch kernel (batch.go), and
// fallbacks recompute the row with the scalar Horner loop of
// Family.Eval. The recoloring pipeline's kernel path only ever counts
// hits and batched evaluations - a nonzero fallback count means some
// caller still drops to the scalar walk, which the CI eval gate treats
// as a regression. All methods are safe for concurrent use and no-ops
// on a nil receiver.
type EvalCounters struct {
	hits      atomic.Int64
	batched   atomic.Int64
	fallbacks atomic.Int64
}

// Count records one row evaluation of family f at function index x,
// classifying it exactly as RowView does (table hit iff x < RowsCached,
// scalar fallback otherwise).
func (c *EvalCounters) Count(f *Family, x int) {
	if c == nil {
		return
	}
	if x < f.tab.Load().rowsFor {
		c.hits.Add(1)
	} else {
		c.fallbacks.Add(1)
	}
}

// CountRow records one row evaluation through a RowBlock whose snapshot
// covers cached rows, classifying it exactly as RowBlock.Row does:
// table hit iff x < cached, batched kernel evaluation otherwise. The
// kernel path never produces a scalar fallback.
//
//distvet:noalloc
func (c *EvalCounters) CountRow(cached, x int) {
	if c == nil {
		return
	}
	if x < cached {
		c.hits.Add(1)
	} else {
		c.batched.Add(1)
	}
}

// Hits returns the row-table hit count.
func (c *EvalCounters) Hits() int64 {
	if c == nil {
		return 0
	}
	return c.hits.Load()
}

// Batched returns the batch-kernel evaluation count.
func (c *EvalCounters) Batched() int64 {
	if c == nil {
		return 0
	}
	return c.batched.Load()
}

// Fallbacks returns the Horner-fallback count.
func (c *EvalCounters) Fallbacks() int64 {
	if c == nil {
		return 0
	}
	return c.fallbacks.Load()
}

// EvalStat is one row of the process-wide snapshot: the counter key
// (recoloring step index plus the family's field size and degree) and
// its totals.
type EvalStat struct {
	Step      int   `json:"step"`
	Q         int   `json:"q"`
	D         int   `json:"d"`
	Hits      int64 `json:"hits"`
	Batched   int64 `json:"batched,omitempty"`
	Fallbacks int64 `json:"fallbacks"`
}

// Total returns hits + batched + fallbacks.
func (s EvalStat) Total() int64 { return s.Hits + s.Batched + s.Fallbacks }

// HitRate returns hits / Total(), or 1 when nothing was counted (an
// untouched family has no fallbacks to report). Batched kernel
// evaluations count against the rate - they are cheaper than scalar
// fallbacks but still cost arithmetic the table answers for free.
func (s EvalStat) HitRate() float64 {
	t := s.Total()
	if t == 0 {
		return 1
	}
	return float64(s.Hits) / float64(t)
}

type evalKey struct{ step, q, d int }

var evalStats struct {
	mu       sync.Mutex
	enabled  bool
	counters map[evalKey]*EvalCounters
}

// SetEvalStats enables or disables evaluation counting process-wide.
// Disabling does not clear existing counters (use ResetEvalStats); it
// only makes subsequent StepCounters lookups return nil, so algorithm
// values constructed afterwards stop counting.
func SetEvalStats(on bool) {
	evalStats.mu.Lock()
	evalStats.enabled = on
	evalStats.mu.Unlock()
}

// EvalStatsEnabled reports whether evaluation counting is enabled.
func EvalStatsEnabled() bool {
	evalStats.mu.Lock()
	defer evalStats.mu.Unlock()
	return evalStats.enabled
}

// ResetEvalStats drops all counters. Counters already resolved by live
// algorithm values keep counting into the dropped (now private)
// instances, so reset between pipelines, not mid-run.
func ResetEvalStats() {
	evalStats.mu.Lock()
	evalStats.counters = nil
	evalStats.mu.Unlock()
}

// StepCounters returns the shared counter for the (step, q, d) key, or
// nil when stats are disabled. Callers resolve counters once per
// algorithm construction and pass them into the hot path, keeping the
// registry lock off every evaluation.
func StepCounters(step, q, d int) *EvalCounters {
	evalStats.mu.Lock()
	defer evalStats.mu.Unlock()
	if !evalStats.enabled {
		return nil
	}
	if evalStats.counters == nil {
		evalStats.counters = make(map[evalKey]*EvalCounters)
	}
	k := evalKey{step, q, d}
	c := evalStats.counters[k]
	if c == nil {
		c = new(EvalCounters)
		evalStats.counters[k] = c
	}
	return c
}

// EvalStatsSnapshot returns the current totals of every registered
// counter, sorted by (step, q, d). The snapshot is a copy; counters keep
// running.
func EvalStatsSnapshot() []EvalStat {
	evalStats.mu.Lock()
	out := make([]EvalStat, 0, len(evalStats.counters))
	//distvet:unordered the snapshot is sorted by (step, q, d) below; map order never reaches the caller
	for k, c := range evalStats.counters {
		out = append(out, EvalStat{
			Step: k.step, Q: k.q, D: k.d,
			Hits: c.hits.Load(), Batched: c.batched.Load(), Fallbacks: c.fallbacks.Load(),
		})
	}
	evalStats.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Step != b.Step {
			return a.Step < b.Step
		}
		if a.Q != b.Q {
			return a.Q < b.Q
		}
		return a.D < b.D
	})
	return out
}
