package field

import "sync"

// famKey identifies a family by its construction parameters.
type famKey struct{ q, d int }

var (
	famMu    sync.RWMutex
	famCache = map[famKey]*Family{}
)

// Families returns the memoized family for (q, d), constructing and
// caching it on first use. The cache is process-wide: every recoloring
// step of every node of every network shares one immutable *Family per
// parameter pair, so the q x q row table and the base-q decoding work
// are paid once instead of once per node per round. Safe for concurrent
// use; construction errors are not cached.
func Families(q, d int) (*Family, error) {
	key := famKey{q, d}
	famMu.RLock()
	f := famCache[key]
	famMu.RUnlock()
	if f != nil {
		return f, nil
	}
	f, err := NewFamily(q, d)
	if err != nil {
		return nil, err
	}
	famMu.Lock()
	if prev, ok := famCache[key]; ok {
		f = prev // another goroutine won the race; keep one canonical copy
	} else {
		famCache[key] = f
	}
	famMu.Unlock()
	return f, nil
}
