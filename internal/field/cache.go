package field

import "sync"

// famKey identifies a family by its construction parameters.
type famKey struct{ q, d int }

var (
	famMu    sync.RWMutex
	famCache = map[famKey]*Family{}
)

// Families returns the memoized family for (q, d), constructing and
// caching it on first use. The cache is process-wide: every recoloring
// step of every node of every network shares one immutable *Family per
// parameter pair, so the row table and the base-q decoding work are
// paid once instead of once per node per round. Safe for concurrent
// use; construction errors are not cached.
//
// Families sizes a freshly constructed row table by the default cap;
// callers that know the palette bound of the step using the family
// should prefer FamiliesFor, which sizes (and grows) the table to the
// actual bound.
func Families(q, d int) (*Family, error) {
	return familiesSized(q, d, -1)
}

// FamiliesFor is Families with a palette bound: the returned family's
// row table covers min(m, Size, maxRowTableGrowInts/q) function
// indices, so a recoloring step whose input colors all lie in [0, m)
// evaluates entirely off the table whenever the bound fits under the
// growth ceiling. The cache entry is shared across palette bounds and
// the table only ever grows, so concurrent callers with different m
// converge on the largest requested size.
func FamiliesFor(q, d, m int) (*Family, error) {
	return familiesSized(q, d, m)
}

// familiesSized resolves the cache entry, constructing it sized to the
// palette bound m (m < 0 = default cap) and growing an existing entry
// when m asks for more rows than it has.
func familiesSized(q, d, m int) (*Family, error) {
	key := famKey{q, d}
	famMu.RLock()
	f := famCache[key]
	famMu.RUnlock()
	if f != nil {
		if m >= 0 {
			f.EnsureRows(m)
		}
		return f, nil
	}
	f, err := NewFamilySized(q, d, m)
	if err != nil {
		return nil, err
	}
	famMu.Lock()
	if prev, ok := famCache[key]; ok {
		f = prev // another goroutine won the race; keep one canonical copy
	} else {
		famCache[key] = f
	}
	famMu.Unlock()
	if m >= 0 {
		f.EnsureRows(m) // covers the race-loser path: prev may be smaller
	}
	return f, nil
}
