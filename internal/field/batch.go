package field

import "fmt"

// This file implements the batched polynomial-evaluation kernel: the
// allocation-free, division-free primitives the recoloring hot path is
// built on. The scalar Family.Eval walks one (x, alpha) pair with a
// division per digit per point; the kernels below amortize the digit
// decoding over a whole row (one x against the contiguous run of alphas
// 0..q-1) or a whole block of rows (a contiguous run of x-values), and
// replace every inner-loop `% q` with a branch-free conditional
// subtraction, so the steady-state cost per evaluated point is a couple
// of ALU ops. RowBlock packages an immutable row-table snapshot with
// the family parameters so hot paths resolve the atomic table pointer
// once per step instead of once per candidate.
//
// Working sets are L2-resident by construction: a row is q ints (<= 8
// KiB at the schedule cap), and the agreement walker materializes each
// candidate row immediately before consuming it, so at most three rows
// (reference, candidate, agreement counts) are live at a time.

// maxBatchDegree bounds the stack-resident finite-difference state of
// the batch kernels. It matches the schedule planner's degree search
// bound; polynomials of higher degree fall back to a scalar per-point
// loop (still allocation-free, just slower).
const maxBatchDegree = 64

// RowBlock is a resolved snapshot of a family's evaluation surface: the
// row-major precomputed table (rows[x*q+alpha] = phi_x(alpha) for
// x < Cached()) plus the (q, d) parameters needed to batch-evaluate any
// row beyond it. The zero value is unusable; obtain one from
// Family.Block. A RowBlock is immutable and safe for concurrent use;
// later EnsureRows growth is not reflected in it (re-Block to observe
// growth).
type RowBlock struct {
	rows   []int
	cached int
	q, d   int
	fam    *Family
}

// Block returns a snapshot of the family's row table after growing it
// to cover the palette bound m (EnsureRows; m < 0 skips growth). The
// snapshot's Row never falls back to the scalar Eval path: indices
// beyond Cached() are materialized by the batch kernel.
func (f *Family) Block(m int) RowBlock {
	if m >= 0 {
		f.EnsureRows(m)
	}
	t := f.tab.Load()
	return RowBlock{rows: t.rows, cached: t.rowsFor, q: f.fp.Q(), d: f.degree, fam: f}
}

// Q returns the family's field size (the row length).
func (b *RowBlock) Q() int { return b.q }

// Degree returns the family's polynomial degree bound.
func (b *RowBlock) Degree() int { return b.d }

// Cached returns the number of rows the snapshot answers from the
// precomputed table; Row materializes anything beyond it with BatchEval.
func (b *RowBlock) Cached() int { return b.cached }

// Family returns the family the snapshot was taken from.
func (b *RowBlock) Family() *Family { return b.fam }

// Row returns the value vector (phi_x(0), ..., phi_x(q-1)): a read-only
// view into the table snapshot when x < Cached(), otherwise the row is
// batch-evaluated into scratch (which must have length >= Q()) and
// scratch[:Q()] is returned. Callers must not write through a returned
// table view. Unlike Family.RowView, the beyond-table path never runs
// the scalar Eval loop.
//
//distvet:noalloc
func (b *RowBlock) Row(x int, scratch []int) []int {
	if x < b.cached {
		s := x * b.q
		return b.rows[s : s+b.q : s+b.q]
	}
	row := scratch[:b.q]
	BatchEval(b.q, b.d, x, row)
	return row
}

// BatchEval evaluates the one polynomial indexed by x against the
// contiguous run of points alpha = 0..len(dst)-1, writing phi_x(alpha)
// into dst. It is exactly equivalent to Family.Eval at every point
// (same index contract: x must be non-negative and is read modulo
// q^(d+1)), but decodes the base-q digits of x once and advances a
// finite-difference ladder with d branch-free conditional-subtraction
// additions per point, so the inner loop performs no division at all.
// len(dst) must not exceed q (alpha is a field point).
//
//distvet:noalloc
func BatchEval(q, d, x int, dst []int) {
	if x < 0 {
		panic(fmt.Sprintf("field: negative function index %d", x))
	}
	if len(dst) > q {
		panic(fmt.Sprintf("field: %d evaluation points over F_%d", len(dst), q))
	}
	if d > maxBatchDegree {
		batchEvalScalar(q, d, x, dst)
		return
	}
	var digs [maxBatchDegree + 1]int
	decodeDigits(q, d, x, digs[:d+1])
	batchEvalDigits(q, d, digs[:d+1], dst)
}

// decodeDigits writes the low d+1 base-q digits of x (the coefficient
// vector c_0..c_d) into digs.
//
//distvet:noalloc
func decodeDigits(q, d, x int, digs []int) {
	for i := 0; i <= d; i++ {
		digs[i] = x % q
		x /= q
	}
}

// batchEvalDigits is the finite-difference core of BatchEval: given the
// decoded coefficient vector, it seeds the ladder with the polynomial's
// values at 0..d (Horner on the digits - the only remaining `% q`
// sites, O(d^2) of them per row) and then emits each further point with
// d additions mod q, reduced by branch-free conditional subtraction.
//
//distvet:noalloc
func batchEvalDigits(q, d int, digs []int, dst []int) {
	var w [maxBatchDegree + 1]int
	k := d + 1
	if k > len(dst) {
		k = len(dst)
	}
	// Seed: w[j] = phi(j) for j = 0..d (clamped to the requested run).
	for j := 0; j < k; j++ {
		acc := 0
		for i := d; i >= 0; i-- {
			acc = (acc*j + digs[i]) % q
		}
		w[j] = acc
		dst[j] = acc
	}
	if k <= d {
		return // the run ends inside the seed
	}
	// Forward differences in place: w[j] becomes Delta^j phi(0).
	for lvl := 1; lvl <= d; lvl++ {
		for j := d; j >= lvl; j-- {
			t := w[j] - w[j-1]
			t += q & (t >> 63) // t in (-q, q): add q back when negative
			w[j] = t
		}
	}
	// Advance: each fold moves the ladder one point right
	// (Delta^j phi(a+1) = Delta^j phi(a) + Delta^(j+1) phi(a)), with one
	// conditional-subtraction addition per level. The first d folds
	// rewrite the seeded prefix with identical values, keeping the loop
	// branch-free.
	for alpha := 1; alpha < len(dst); alpha++ {
		for j := 0; j < d; j++ {
			t := w[j] + w[j+1] - q
			t += q & (t >> 63) // t in (-q, q): fold back into [0, q)
			w[j] = t
		}
		dst[alpha] = w[0]
	}
}

// batchEvalScalar is the degree-overflow fallback of BatchEval: a plain
// per-point Horner loop, allocation-free but with the scalar division
// cost. Unreachable from recoloring schedules (their degree search is
// bounded by maxBatchDegree).
//
//distvet:noalloc
func batchEvalScalar(q, d, x int, dst []int) {
	for alpha := range dst {
		p := 1
		for i := 0; i < d && p <= x/q; i++ {
			p *= q
		}
		acc := 0
		for ; p > 0; p /= q {
			acc = (acc*alpha + (x/p)%q) % q
		}
		dst[alpha] = acc
	}
}

// FillRows evaluates the whole family against a contiguous run of
// x-values: rows[r*q : (r+1)*q] receives the value vector of function
// index x0+r, for r = 0..len(rows)/q-1. The digit odometer is advanced
// incrementally across rows (amortized O(1) divisions per row), so
// bulk table construction - EnsureRows growth - pays the batch-kernel
// rate instead of the scalar Eval rate. len(rows) must be a multiple of
// q; x0 must be non-negative and is read modulo q^(d+1) like every
// function index.
func FillRows(q, d, x0 int, rows []int) {
	if x0 < 0 {
		panic(fmt.Sprintf("field: negative function index %d", x0))
	}
	if len(rows)%q != 0 {
		panic(fmt.Sprintf("field: row run of %d ints is not a multiple of q=%d", len(rows), q))
	}
	if d > maxBatchDegree {
		for s, x := 0, x0; s < len(rows); s, x = s+q, x+1 {
			batchEvalScalar(q, d, x, rows[s:s+q])
		}
		return
	}
	var digs [maxBatchDegree + 1]int
	decodeDigits(q, d, x0, digs[:d+1])
	for s := 0; s < len(rows); s += q {
		batchEvalDigits(q, d, digs[:d+1], rows[s:s+q])
		// Increment the base-q odometer; wrapping past q^(d+1) matches
		// the index contract (digits above d are discarded).
		for i := 0; i <= d; i++ {
			digs[i]++
			if digs[i] < q {
				break
			}
			digs[i] = 0
		}
	}
}

// AgreeAdd accumulates one candidate row into the agreement counts:
// agrees[alpha] += mult at every alpha where row[alpha] == ref[alpha].
// The loop is branch-free (an equality mask folds mult in), so its cost
// is independent of how often the rows agree. All three slices must
// have length >= len(agrees); only agrees[:len(agrees)] is written.
//
//distvet:noalloc
func AgreeAdd(agrees, ref, row []int, mult int) {
	n := len(agrees)
	ref = ref[:n]
	row = row[:n]
	for i := 0; i < n; i++ {
		d := row[i] ^ ref[i]
		// (d | -d) >> 63 is -1 exactly when d != 0: keep mult only on
		// agreement, with no data-dependent branch.
		agrees[i] += mult &^ ((d | -d) >> 63)
	}
}

// AgreeRun counts, for every point alpha, how many entries of the
// sorted candidate run ys collide with the reference row at alpha:
// agrees[alpha] accumulates the multiplicity of every y != skip whose
// row agrees with ref there. This is the one-call-per-node form of the
// recoloring agreement loop: the run is walked once, equal candidates
// are grouped so each distinct row is materialized at most once (a
// table view when y < Cached(), the batch kernel into rowScratch -
// length >= Q() - otherwise), and each row is consumed immediately
// after materialization so the working set stays at three rows. ec,
// when non-nil, records one classified count per distinct candidate
// (table hit or batched evaluation - never a scalar fallback).
//
//distvet:noalloc
func (b *RowBlock) AgreeRun(agrees, ref []int, ys []int, skip int, rowScratch []int, ec *EvalCounters) {
	for i := 0; i < len(ys); {
		y := ys[i]
		j := i + 1
		for j < len(ys) && ys[j] == y {
			j++
		}
		mult := j - i
		i = j
		if y == skip {
			continue
		}
		ec.CountRow(b.cached, y)
		// Open-coded agreement accumulation (the AgreeAdd call overhead
		// is measurable at sixteen candidates per node per round), and
		// branchy on purpose: two distinct degree-d polynomials agree on
		// at most d of q points, so the branch is almost always not
		// taken and predicts nearly perfectly - cheaper than AgreeAdd's
		// data-independent mask on every recoloring workload.
		row := b.Row(y, rowScratch)[:len(agrees)]
		r := ref[:len(agrees)]
		for i := range agrees {
			if row[i] == r[i] {
				agrees[i] += mult
			}
		}
	}
}
