package field

import (
	"sync"
	"testing"
)

// evalPowerSum is the seed Eval, preserved verbatim as the reference for
// the Horner rewrite: it accumulates powers of alpha term by term over
// the base-q digits of x.
func evalPowerSum(q, degree, x, alpha int) int {
	acc := 0
	powAlpha := 1
	for i := 0; i <= degree; i++ {
		c := x % q
		x /= q
		acc = (acc + c*powAlpha) % q
		powAlpha = (powAlpha * alpha) % q
	}
	return acc
}

// TestEvalHornerMatchesPowerSum proves the Horner evaluation is
// bit-for-bit identical to the seed power accumulation, including for
// indices beyond Size() (both reduce x modulo q^(D+1) per the documented
// index contract).
func TestEvalHornerMatchesPowerSum(t *testing.T) {
	for _, tc := range []struct{ q, d int }{
		{2, 0}, {2, 3}, {5, 1}, {5, 2}, {7, 2}, {11, 3}, {23, 1}, {101, 2},
	} {
		fam, err := NewFamily(tc.q, tc.d)
		if err != nil {
			t.Fatal(err)
		}
		size := fam.Size()
		xs := []int{0, 1, tc.q - 1, tc.q, size / 2, size - 1,
			size, size + 1, 3*size + 7, 1 << 40}
		for _, x := range xs {
			for alpha := 0; alpha < tc.q; alpha++ {
				want := evalPowerSum(tc.q, tc.d, x, alpha)
				if got := fam.Eval(x, alpha); got != want {
					t.Fatalf("q=%d d=%d Eval(%d,%d) = %d, power-sum says %d",
						tc.q, tc.d, x, alpha, got, want)
				}
			}
		}
	}
}

func TestEvalNegativeIndexPanics(t *testing.T) {
	fam, err := NewFamily(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Eval(-1, 0) did not panic")
		}
	}()
	fam.Eval(-1, 0)
}

// TestRowViewMatchesRow checks both RowView paths (table hit and scratch
// fallback) against Row, and that table hits allocate nothing.
func TestRowViewMatchesRow(t *testing.T) {
	fam, err := NewFamily(5, 2) // size 125, fully cached
	if err != nil {
		t.Fatal(err)
	}
	if fam.RowsCached() != fam.Size() {
		t.Fatalf("small family not fully cached: %d of %d", fam.RowsCached(), fam.Size())
	}
	scratch := make([]int, fam.Q())
	for x := 0; x < fam.Size(); x++ {
		row := fam.Row(x)
		view := fam.RowView(x, scratch)
		for alpha, want := range row {
			if view[alpha] != want {
				t.Fatalf("RowView(%d)[%d] = %d, Row says %d", x, alpha, view[alpha], want)
			}
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		fam.RowView(7, scratch)
	})
	if allocs != 0 {
		t.Errorf("RowView table hit allocates %v per run", allocs)
	}
	allocs = testing.AllocsPerRun(100, func() {
		fam.RowView(fam.Size()+3, scratch) // out-of-table: scratch fallback
	})
	if allocs != 0 {
		t.Errorf("RowView fallback allocates %v per run", allocs)
	}
}

// TestEvalTableLayout checks the flattened x*q+alpha layout.
func TestEvalTableLayout(t *testing.T) {
	fam, err := NewFamily(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	table := fam.EvalTable()
	if len(table) != fam.RowsCached()*fam.Q() {
		t.Fatalf("table length %d, want %d", len(table), fam.RowsCached()*fam.Q())
	}
	for x := 0; x < fam.RowsCached(); x++ {
		for alpha := 0; alpha < fam.Q(); alpha++ {
			if table[x*fam.Q()+alpha] != fam.Eval(x, alpha) {
				t.Fatalf("table[%d*q+%d] != Eval", x, alpha)
			}
		}
	}
}

// TestRowTableCapped checks large families keep a partial table and fall
// back correctly past it.
func TestRowTableCapped(t *testing.T) {
	fam, err := NewFamily(1009, 1) // size 1009^2 ~ 1M; table must be capped
	if err != nil {
		t.Fatal(err)
	}
	if fam.RowsCached() >= fam.Size() {
		t.Fatalf("expected capped table, got %d of %d", fam.RowsCached(), fam.Size())
	}
	if got, want := len(fam.EvalTable()), fam.RowsCached()*fam.Q(); got != want {
		t.Fatalf("table length %d, want %d", got, want)
	}
	scratch := make([]int, fam.Q())
	x := fam.RowsCached() + 12345
	view := fam.RowView(x, scratch)
	for alpha := 0; alpha < fam.Q(); alpha++ {
		if view[alpha] != fam.Eval(x, alpha) {
			t.Fatalf("fallback RowView(%d)[%d] mismatch", x, alpha)
		}
	}
}

// TestFamiliesMemoized checks the process-wide cache returns one
// canonical instance per parameter pair, also under concurrency.
func TestFamiliesMemoized(t *testing.T) {
	a, err := Families(13, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Families(13, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Families(13,2) returned distinct instances")
	}
	if _, err := Families(10, 1); err == nil {
		t.Error("Families(10,1) accepted a composite modulus")
	}

	const workers = 8
	got := make([]*Family, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, err := Families(9973, 1)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = f
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent Families calls returned distinct instances")
		}
	}
}
