package field

import (
	"testing"
	"testing/quick"
)

func TestIsPrimeSmall(t *testing.T) {
	primes := map[int]bool{
		2: true, 3: true, 5: true, 7: true, 11: true, 13: true,
		17: true, 19: true, 23: true, 97: true, 101: true, 7919: true,
	}
	composites := []int{-7, -1, 0, 1, 4, 6, 8, 9, 10, 12, 15, 21, 25, 49, 91, 7917, 7921}
	for p := range primes {
		if !IsPrime(p) {
			t.Errorf("IsPrime(%d) = false, want true", p)
		}
	}
	for _, c := range composites {
		if IsPrime(c) {
			t.Errorf("IsPrime(%d) = true, want false", c)
		}
	}
}

func TestIsPrimeAgainstSieve(t *testing.T) {
	const limit = 5000
	sieve := make([]bool, limit)
	for i := range sieve {
		sieve[i] = i >= 2
	}
	for i := 2; i*i < limit; i++ {
		if sieve[i] {
			for j := i * i; j < limit; j += i {
				sieve[j] = false
			}
		}
	}
	for n := 0; n < limit; n++ {
		if IsPrime(n) != sieve[n] {
			t.Fatalf("IsPrime(%d) = %v, sieve says %v", n, IsPrime(n), sieve[n])
		}
	}
}

func TestNextPrime(t *testing.T) {
	tests := []struct{ in, want int }{
		{-5, 2}, {0, 2}, {2, 2}, {3, 3}, {4, 5}, {8, 11}, {14, 17},
		{7907, 7907}, {7908, 7919},
	}
	for _, tc := range tests {
		if got := NextPrime(tc.in); got != tc.want {
			t.Errorf("NextPrime(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestNewFpRejectsComposite(t *testing.T) {
	if _, err := NewFp(10); err == nil {
		t.Fatal("NewFp(10) succeeded, want error")
	}
	if _, err := NewFp(1); err == nil {
		t.Fatal("NewFp(1) succeeded, want error")
	}
}

func TestFpArithmetic(t *testing.T) {
	fp, err := NewFp(7)
	if err != nil {
		t.Fatal(err)
	}
	if got := fp.Add(5, 4); got != 2 {
		t.Errorf("Add(5,4) mod 7 = %d, want 2", got)
	}
	if got := fp.Mul(5, 4); got != 6 {
		t.Errorf("Mul(5,4) mod 7 = %d, want 6", got)
	}
	// Eval of p(x) = 3 + 2x + x^2 at x=4 mod 7: 3+8+16 = 27 mod 7 = 6.
	if got := fp.Eval([]int{3, 2, 1}, 4); got != 6 {
		t.Errorf("Eval = %d, want 6", got)
	}
}

func TestFamilySizeAndEvalDecoding(t *testing.T) {
	fam, err := NewFamily(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fam.Size() != 125 {
		t.Fatalf("Size = %d, want 125", fam.Size())
	}
	// Index x = c0 + 5*c1 + 25*c2. For x = 1 + 5*2 + 25*3 = 86,
	// phi(alpha) = 1 + 2 alpha + 3 alpha^2 mod 5. At alpha = 2: 1+4+12=17 mod 5 = 2.
	if got := fam.Eval(86, 2); got != 2 {
		t.Errorf("Eval(86, 2) = %d, want 2", got)
	}
}

func TestFamilyPairwiseAgreement(t *testing.T) {
	// Exhaustively verify the agreement bound on a small family.
	fam, err := NewFamily(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := fam.Size() // 343
	rows := make([][]int, n)
	for x := 0; x < n; x++ {
		rows[x] = fam.Row(x)
	}
	for x := 0; x < n; x++ {
		for y := x + 1; y < n; y++ {
			agree := 0
			for alpha := 0; alpha < fam.Q(); alpha++ {
				if rows[x][alpha] == rows[y][alpha] {
					agree++
				}
			}
			if agree > fam.Agreement() {
				t.Fatalf("functions %d,%d agree on %d points, bound %d", x, y, agree, fam.Agreement())
			}
		}
	}
}

func TestFamilyDistinctFunctions(t *testing.T) {
	fam, err := NewFamily(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[[5]int]int, fam.Size())
	for x := 0; x < fam.Size(); x++ {
		var key [5]int
		copy(key[:], fam.Row(x))
		if prev, dup := seen[key]; dup {
			t.Fatalf("indices %d and %d map to the same function", prev, x)
		}
		seen[key] = x
	}
}

func TestMinimalFamilyCoversM(t *testing.T) {
	for _, tc := range []struct{ qMin, m int }{
		{2, 1}, {2, 100}, {10, 1000}, {50, 7}, {3, 1 << 20}, {1000, 10},
	} {
		fam, err := MinimalFamily(tc.qMin, tc.m)
		if err != nil {
			t.Fatalf("MinimalFamily(%d,%d): %v", tc.qMin, tc.m, err)
		}
		if fam.Size() < tc.m {
			t.Errorf("MinimalFamily(%d,%d).Size() = %d < m", tc.qMin, tc.m, fam.Size())
		}
		if fam.Q() < tc.qMin {
			t.Errorf("MinimalFamily(%d,%d).Q() = %d < qMin", tc.qMin, tc.m, fam.Q())
		}
	}
}

func TestMinimalFamilyRejectsBadM(t *testing.T) {
	if _, err := MinimalFamily(5, 0); err == nil {
		t.Fatal("MinimalFamily(5, 0) succeeded, want error")
	}
}

func TestFamilyEvalInRangeQuick(t *testing.T) {
	fam, err := NewFamily(11, 3)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(x, alpha uint16) bool {
		xi := int(x) % fam.Size()
		ai := int(alpha) % fam.Q()
		v := fam.Eval(xi, ai)
		return v >= 0 && v < fam.Q()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFamilyAgreementQuick(t *testing.T) {
	// Randomized agreement check on a larger family than the exhaustive test.
	fam, err := NewFamily(31, 3)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(a, b uint32) bool {
		x := int(a) % fam.Size()
		y := int(b) % fam.Size()
		if x == y {
			return true
		}
		agree := 0
		for alpha := 0; alpha < fam.Q(); alpha++ {
			if fam.Eval(x, alpha) == fam.Eval(y, alpha) {
				agree++
			}
		}
		return agree <= fam.Agreement()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
