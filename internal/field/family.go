package field

import "fmt"

// Family is a family of functions phi_x : [0,Q) -> [0,Q), indexed by
// x in [0, Size()), such that any two distinct functions agree on at most
// Agreement() points. It is realized by polynomials of degree <= D over F_q:
// the index x is interpreted in base q as the coefficient vector.
//
// Family satisfies the hypotheses of Lemma 5.1 in the paper (and Lemma 4.3
// of Kuhn SPAA'09): |A| = |B| = q, k = D, and |F| = q^(D+1) >= M functions.
type Family struct {
	fp     Fp
	degree int // D: maximum polynomial degree
	size   int // q^(D+1), clamped to avoid overflow
}

// NewFamily constructs a polynomial family over F_q with degree bound d.
// q must be prime and d >= 0. The family contains q^(d+1) functions
// (saturating at MaxInt-ish sizes; callers only need size >= their M).
func NewFamily(q, d int) (*Family, error) {
	fp, err := NewFp(q)
	if err != nil {
		return nil, err
	}
	if d < 0 {
		return nil, fmt.Errorf("field: negative degree %d", d)
	}
	size := 1
	for i := 0; i <= d; i++ {
		if size > (1<<62)/q {
			size = 1 << 62 // effectively unbounded for our purposes
			break
		}
		size *= q
	}
	return &Family{fp: fp, degree: d, size: size}, nil
}

// MinimalFamily returns the polynomial family over the smallest prime
// q >= qMin whose size is at least m, keeping the degree (and hence the
// pairwise agreement) as small as possible for that q.
//
// This is the parameter selection used by every recoloring schedule:
// the caller knows a lower bound qMin on the field size it needs for the
// pigeonhole argument, and the number m of input colors it must index.
func MinimalFamily(qMin, m int) (*Family, error) {
	if qMin < 2 {
		qMin = 2
	}
	if m < 1 {
		return nil, fmt.Errorf("field: family must index m >= 1 colors, got %d", m)
	}
	q := NextPrime(qMin)
	// Smallest d with q^(d+1) >= m.
	d := 0
	pow := q
	for pow < m {
		if pow > (1<<62)/q {
			break
		}
		pow *= q
		d++
	}
	return NewFamily(q, d)
}

// Q returns the common domain/range size |A| = |B| = q.
func (f *Family) Q() int { return f.fp.Q() }

// Degree returns the polynomial degree bound D.
func (f *Family) Degree() int { return f.degree }

// Agreement returns the maximum number of points on which two distinct
// functions of the family can agree (= Degree()).
func (f *Family) Agreement() int { return f.degree }

// Size returns the number of functions in the family, q^(D+1).
func (f *Family) Size() int { return f.size }

// Eval returns phi_x(alpha), for function index x in [0, Size()) and
// point alpha in [0, Q()). The index is decoded in base q into the
// coefficient vector of a degree-<=D polynomial.
func (f *Family) Eval(x, alpha int) int {
	q := f.fp.Q()
	// Horner's rule over the base-q digits of x, most significant first.
	// Digits of x in base q are the coefficients c_0..c_D.
	// phi_x(alpha) = sum c_i alpha^i.
	acc := 0
	powAlpha := 1
	for i := 0; i <= f.degree; i++ {
		c := x % q
		x /= q
		acc = (acc + c*powAlpha) % q
		powAlpha = (powAlpha * alpha) % q
	}
	return acc
}

// Row materializes the value vector (phi_x(0), ..., phi_x(q-1)).
// Convenient for tests and for nodes that evaluate all points anyway.
func (f *Family) Row(x int) []int {
	q := f.fp.Q()
	row := make([]int, q)
	for alpha := 0; alpha < q; alpha++ {
		row[alpha] = f.Eval(x, alpha)
	}
	return row
}
