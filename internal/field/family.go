package field

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// maxRowTableInts caps the memory a family's precomputed row table gets
// at construction when no palette bound is known (ints, i.e. 8 MiB at
// 1<<20). Terminal recoloring families (q up to ~100) are cached in
// full; larger families keep a partial table and fall back to on-the-fly
// Horner evaluation.
const maxRowTableInts = 1 << 20

// maxRowTableGrowInts is the hard ceiling for palette-driven growth
// (EnsureRows): 1<<23 ints = 64 MiB. A first-step family whose palette
// bound exceeds this keeps a partial table; everything below it is
// cached exactly to the palette, so the steady-state hit rate of a
// recoloring schedule is 1 whenever the bound fits.
const maxRowTableGrowInts = 1 << 23

// rowTable is one immutable snapshot of a family's precomputed rows:
// rows[x*q+alpha] = phi_x(alpha) for all x < rowsFor. Growth replaces
// the whole snapshot (copy + extend) behind Family.tab, so readers
// never observe a partially filled table.
type rowTable struct {
	rows    []int
	rowsFor int
}

// Family is a family of functions phi_x : [0,Q) -> [0,Q), indexed by
// x in [0, Size()), such that any two distinct functions agree on at most
// Agreement() points. It is realized by polynomials of degree <= D over F_q:
// the index x is interpreted in base q as the coefficient vector.
//
// Family satisfies the hypotheses of Lemma 5.1 in the paper (and Lemma 4.3
// of Kuhn SPAA'09): |A| = |B| = q, k = D, and |F| = q^(D+1) >= M functions.
//
// The function family itself is immutable; the precomputed row table
// grows monotonically (EnsureRows) and is published atomically, so a
// Family is safe for concurrent use throughout. Hot paths should obtain
// one from the process-wide Families/FamiliesFor cache rather than
// re-deriving it with NewFamily.
type Family struct {
	fp     Fp
	degree int // D: maximum polynomial degree
	size   int // q^(D+1), clamped to avoid overflow
	// tab is the current row-table snapshot; RowView, EvalTable and the
	// EvalCounters classification all read through one atomic load.
	tab    atomic.Pointer[rowTable]
	growMu sync.Mutex // serializes EnsureRows growth
}

// NewFamily constructs a polynomial family over F_q with degree bound d.
// q must be prime and d >= 0. The family contains q^(d+1) functions
// (saturating at MaxInt-ish sizes; callers only need size >= their M).
// The row table is sized by the default construction cap; callers that
// know their palette bound should use NewFamilySized or FamiliesFor.
func NewFamily(q, d int) (*Family, error) {
	return NewFamilySized(q, d, -1)
}

// NewFamilySized constructs the family with its row table sized to the
// palette bound m - the number of distinct input colors the caller will
// evaluate, i.e. the m_i of the recoloring step using the family. The
// table covers min(m, Size(), maxRowTableGrowInts/q) indices; m < 0
// means "palette unknown" and falls back to the default construction
// cap. The table can still grow later via EnsureRows.
func NewFamilySized(q, d, m int) (*Family, error) {
	fp, err := NewFp(q)
	if err != nil {
		return nil, err
	}
	if d < 0 {
		return nil, fmt.Errorf("field: negative degree %d", d)
	}
	size := 1
	for i := 0; i <= d; i++ {
		if size > (1<<62)/q {
			size = 1 << 62 // effectively unbounded for our purposes
			break
		}
		size *= q
	}
	f := &Family{fp: fp, degree: d, size: size}
	rows := size
	if m >= 0 {
		if m < rows {
			rows = m
		}
		if c := maxRowTableGrowInts / q; rows > c {
			rows = c
		}
	} else if c := maxRowTableInts / q; rows > c {
		rows = c
	}
	f.tab.Store(f.extendRows(&rowTable{}, rows))
	return f, nil
}

// extendRows builds a new snapshot covering rowsFor indices, copying the
// already computed prefix of t and batch-evaluating the remainder: the
// appended rows are one contiguous run of function indices, which is
// exactly FillRows' shape, so table growth pays the division-free
// kernel rate instead of one scalar Eval per entry.
func (f *Family) extendRows(t *rowTable, rowsFor int) *rowTable {
	q := f.fp.Q()
	rows := make([]int, rowsFor*q)
	copy(rows, t.rows)
	if rowsFor > t.rowsFor {
		FillRows(q, f.degree, t.rowsFor, rows[t.rowsFor*q:])
	}
	return &rowTable{rows: rows, rowsFor: rowsFor}
}

// EnsureRows grows the precomputed row table to cover the palette bound
// m - min(m, Size(), maxRowTableGrowInts/q) indices - and returns the
// resulting RowsCached. Growth is monotone (a smaller m never shrinks
// the table) and safe for concurrent use; readers keep the snapshot
// they loaded, so rows handed out by RowView remain valid.
func (f *Family) EnsureRows(m int) int {
	q := f.fp.Q()
	target := m
	if target > f.size {
		target = f.size
	}
	if c := maxRowTableGrowInts / q; target > c {
		target = c
	}
	if t := f.tab.Load(); t.rowsFor >= target {
		return t.rowsFor
	}
	f.growMu.Lock()
	defer f.growMu.Unlock()
	t := f.tab.Load()
	if t.rowsFor >= target {
		return t.rowsFor
	}
	t = f.extendRows(t, target)
	f.tab.Store(t)
	return t.rowsFor
}

// MinimalFamily returns the polynomial family over the smallest prime
// q >= qMin whose size is at least m, keeping the degree (and hence the
// pairwise agreement) as small as possible for that q.
//
// This is the parameter selection used by every recoloring schedule:
// the caller knows a lower bound qMin on the field size it needs for the
// pigeonhole argument, and the number m of input colors it must index.
func MinimalFamily(qMin, m int) (*Family, error) {
	if qMin < 2 {
		qMin = 2
	}
	if m < 1 {
		return nil, fmt.Errorf("field: family must index m >= 1 colors, got %d", m)
	}
	q := NextPrime(qMin)
	// Smallest d with q^(d+1) >= m.
	d := 0
	pow := q
	for pow < m {
		if pow > (1<<62)/q {
			break
		}
		pow *= q
		d++
	}
	return NewFamily(q, d)
}

// Q returns the common domain/range size |A| = |B| = q.
func (f *Family) Q() int { return f.fp.Q() }

// Degree returns the polynomial degree bound D.
func (f *Family) Degree() int { return f.degree }

// Agreement returns the maximum number of points on which two distinct
// functions of the family can agree (= Degree()).
func (f *Family) Agreement() int { return f.degree }

// Size returns the number of functions in the family, q^(D+1).
func (f *Family) Size() int { return f.size }

// RowsCached returns the number of function indices covered by the
// precomputed row table (RowView answers those without computing). It
// only ever grows (EnsureRows).
func (f *Family) RowsCached() int { return f.tab.Load().rowsFor }

// Eval returns phi_x(alpha), for function index x and point alpha.
//
// Index contract: x must be non-negative (Eval panics otherwise) and is
// interpreted modulo q^(D+1) — only the D+1 low-order base-q digits of x
// are read as the coefficient vector c_0..c_D, so Eval(x, alpha) ==
// Eval(x mod q^(D+1), alpha) for every x >= 0. alpha must lie in
// [0, Q()). Evaluation is Horner's rule: one multiplication per term.
func (f *Family) Eval(x, alpha int) int {
	if x < 0 {
		panic(fmt.Sprintf("field: negative function index %d", x))
	}
	q := f.fp.Q()
	// p = q^k for the largest k <= D with q^k <= x; digits above k are
	// zero (or discarded by the index contract when x >= q^(D+1)), and
	// leading zeros do not change Horner's accumulation.
	p := 1
	for i := 0; i < f.degree && p <= x/q; i++ {
		p *= q
	}
	// Horner, most significant digit first: acc = acc*alpha + c_i.
	acc := 0
	for ; p > 0; p /= q {
		acc = (acc*alpha + (x/p)%q) % q
	}
	return acc
}

// RowView returns the value vector (phi_x(0), ..., phi_x(q-1)) without
// allocating: a read-only view into the precomputed row table when
// x < RowsCached(), otherwise the row is written into scratch (which must
// have length >= Q()) and scratch[:Q()] is returned. Callers must not
// write through the returned slice.
func (f *Family) RowView(x int, scratch []int) []int {
	q := f.fp.Q()
	if t := f.tab.Load(); x < t.rowsFor {
		return t.rows[x*q : x*q+q : x*q+q]
	}
	row := scratch[:q]
	for alpha := 0; alpha < q; alpha++ {
		row[alpha] = f.Eval(x, alpha)
	}
	return row
}

// EvalTable exposes the precomputed row table: a flattened
// RowsCached() x Q() matrix with phi_x(alpha) at index x*Q()+alpha.
// The returned slice is an immutable snapshot (later EnsureRows growth
// is not reflected in it) and must not be modified.
func (f *Family) EvalTable() []int { return f.tab.Load().rows }

// Row materializes the value vector (phi_x(0), ..., phi_x(q-1)).
// Convenient for tests and for nodes that evaluate all points anyway.
// Unlike RowView, the returned slice is freshly allocated and owned by
// the caller.
func (f *Family) Row(x int) []int {
	q := f.fp.Q()
	row := make([]int, q)
	copy(row, f.RowView(x, row))
	return row
}
