package field

import "fmt"

// maxRowTableInts caps the memory spent on a family's precomputed row
// table (ints, i.e. 8 MiB at 1<<20). Terminal recoloring families
// (q up to ~100) are cached in full; larger first-step families keep a
// partial table and fall back to on-the-fly Horner evaluation.
const maxRowTableInts = 1 << 20

// Family is a family of functions phi_x : [0,Q) -> [0,Q), indexed by
// x in [0, Size()), such that any two distinct functions agree on at most
// Agreement() points. It is realized by polynomials of degree <= D over F_q:
// the index x is interpreted in base q as the coefficient vector.
//
// Family satisfies the hypotheses of Lemma 5.1 in the paper (and Lemma 4.3
// of Kuhn SPAA'09): |A| = |B| = q, k = D, and |F| = q^(D+1) >= M functions.
//
// A Family is immutable after construction and safe for concurrent use;
// hot paths should obtain one from the process-wide Families cache rather
// than re-deriving it with NewFamily.
type Family struct {
	fp     Fp
	degree int // D: maximum polynomial degree
	size   int // q^(D+1), clamped to avoid overflow
	// rows is the precomputed row table: rows[x*q+alpha] = phi_x(alpha)
	// for all x < rowsFor. rowsFor covers the whole family whenever
	// Size()*Q() fits in maxRowTableInts (in particular every q*q-sized
	// terminal family of a recoloring schedule).
	rows    []int
	rowsFor int
}

// NewFamily constructs a polynomial family over F_q with degree bound d.
// q must be prime and d >= 0. The family contains q^(d+1) functions
// (saturating at MaxInt-ish sizes; callers only need size >= their M).
func NewFamily(q, d int) (*Family, error) {
	fp, err := NewFp(q)
	if err != nil {
		return nil, err
	}
	if d < 0 {
		return nil, fmt.Errorf("field: negative degree %d", d)
	}
	size := 1
	for i := 0; i <= d; i++ {
		if size > (1<<62)/q {
			size = 1 << 62 // effectively unbounded for our purposes
			break
		}
		size *= q
	}
	f := &Family{fp: fp, degree: d, size: size}
	f.rowsFor = size
	if f.rowsFor > maxRowTableInts/q {
		f.rowsFor = maxRowTableInts / q
	}
	f.rows = make([]int, f.rowsFor*q)
	for x := 0; x < f.rowsFor; x++ {
		for alpha := 0; alpha < q; alpha++ {
			f.rows[x*q+alpha] = f.Eval(x, alpha)
		}
	}
	return f, nil
}

// MinimalFamily returns the polynomial family over the smallest prime
// q >= qMin whose size is at least m, keeping the degree (and hence the
// pairwise agreement) as small as possible for that q.
//
// This is the parameter selection used by every recoloring schedule:
// the caller knows a lower bound qMin on the field size it needs for the
// pigeonhole argument, and the number m of input colors it must index.
func MinimalFamily(qMin, m int) (*Family, error) {
	if qMin < 2 {
		qMin = 2
	}
	if m < 1 {
		return nil, fmt.Errorf("field: family must index m >= 1 colors, got %d", m)
	}
	q := NextPrime(qMin)
	// Smallest d with q^(d+1) >= m.
	d := 0
	pow := q
	for pow < m {
		if pow > (1<<62)/q {
			break
		}
		pow *= q
		d++
	}
	return NewFamily(q, d)
}

// Q returns the common domain/range size |A| = |B| = q.
func (f *Family) Q() int { return f.fp.Q() }

// Degree returns the polynomial degree bound D.
func (f *Family) Degree() int { return f.degree }

// Agreement returns the maximum number of points on which two distinct
// functions of the family can agree (= Degree()).
func (f *Family) Agreement() int { return f.degree }

// Size returns the number of functions in the family, q^(D+1).
func (f *Family) Size() int { return f.size }

// RowsCached returns the number of function indices covered by the
// precomputed row table (RowView answers those without computing).
func (f *Family) RowsCached() int { return f.rowsFor }

// Eval returns phi_x(alpha), for function index x and point alpha.
//
// Index contract: x must be non-negative (Eval panics otherwise) and is
// interpreted modulo q^(D+1) — only the D+1 low-order base-q digits of x
// are read as the coefficient vector c_0..c_D, so Eval(x, alpha) ==
// Eval(x mod q^(D+1), alpha) for every x >= 0. alpha must lie in
// [0, Q()). Evaluation is Horner's rule: one multiplication per term.
func (f *Family) Eval(x, alpha int) int {
	if x < 0 {
		panic(fmt.Sprintf("field: negative function index %d", x))
	}
	q := f.fp.Q()
	// p = q^k for the largest k <= D with q^k <= x; digits above k are
	// zero (or discarded by the index contract when x >= q^(D+1)), and
	// leading zeros do not change Horner's accumulation.
	p := 1
	for i := 0; i < f.degree && p <= x/q; i++ {
		p *= q
	}
	// Horner, most significant digit first: acc = acc*alpha + c_i.
	acc := 0
	for ; p > 0; p /= q {
		acc = (acc*alpha + (x/p)%q) % q
	}
	return acc
}

// RowView returns the value vector (phi_x(0), ..., phi_x(q-1)) without
// allocating: a read-only view into the precomputed row table when
// x < RowsCached(), otherwise the row is written into scratch (which must
// have length >= Q()) and scratch[:Q()] is returned. Callers must not
// write through the returned slice.
func (f *Family) RowView(x int, scratch []int) []int {
	q := f.fp.Q()
	if x < f.rowsFor {
		return f.rows[x*q : x*q+q : x*q+q]
	}
	row := scratch[:q]
	for alpha := 0; alpha < q; alpha++ {
		row[alpha] = f.Eval(x, alpha)
	}
	return row
}

// EvalTable exposes the precomputed row table: a flattened
// RowsCached() x Q() matrix with phi_x(alpha) at index x*Q()+alpha.
// The returned slice is shared and must not be modified.
func (f *Family) EvalTable() []int { return f.rows }

// Row materializes the value vector (phi_x(0), ..., phi_x(q-1)).
// Convenient for tests and for nodes that evaluate all points anyway.
// Unlike RowView, the returned slice is freshly allocated and owned by
// the caller.
func (f *Family) Row(x int) []int {
	q := f.fp.Q()
	row := make([]int, q)
	copy(row, f.RowView(x, row))
	return row
}
