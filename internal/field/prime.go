// Package field provides small prime-field arithmetic and polynomial
// function families with bounded pairwise agreement.
//
// These families are the combinatorial engine behind Linial-style color
// reduction and Kuhn-style defective/arbdefective recoloring: a family
// {phi_x : A -> B} indexed by colors x such that any two distinct functions
// agree on at most k points of A. Polynomials of degree <= D over a prime
// field F_q agree on at most D points, and there are q^(D+1) of them, which
// realizes exactly the parameters required by Lemma 4.3 of Kuhn (SPAA'09)
// and Lemma 5.1 of Barenboim-Elkin (PODC'10).
package field

import "fmt"

// IsPrime reports whether n is prime. It uses deterministic trial division,
// which is ample for the field sizes used by recoloring schedules (q is at
// most a small polynomial in the maximum degree of the graph).
func IsPrime(n int) bool {
	if n < 2 {
		return false
	}
	if n%2 == 0 {
		return n == 2
	}
	if n%3 == 0 {
		return n == 3
	}
	for d := 5; d*d <= n; d += 6 {
		if n%d == 0 || n%(d+2) == 0 {
			return false
		}
	}
	return true
}

// NextPrime returns the smallest prime >= n. For n <= 2 it returns 2.
func NextPrime(n int) int {
	if n <= 2 {
		return 2
	}
	if n%2 == 0 {
		n++
	}
	for !IsPrime(n) {
		n += 2
	}
	return n
}

// Fp is the prime field Z/qZ for a prime modulus q.
// The zero value is unusable; construct with NewFp.
type Fp struct {
	q int
}

// NewFp returns the prime field with modulus q.
// It returns an error if q is not prime.
func NewFp(q int) (Fp, error) {
	if !IsPrime(q) {
		return Fp{}, fmt.Errorf("field: modulus %d is not prime", q)
	}
	return Fp{q: q}, nil
}

// Q returns the field modulus.
func (f Fp) Q() int { return f.q }

// Add returns a+b mod q.
func (f Fp) Add(a, b int) int { return (a + b) % f.q }

// Mul returns a*b mod q. Operands must lie in [0, q).
func (f Fp) Mul(a, b int) int { return (a * b) % f.q }

// Eval evaluates the polynomial with coefficient slice coeffs
// (coeffs[i] is the coefficient of x^i) at point x, all mod q.
func (f Fp) Eval(coeffs []int, x int) int {
	// Horner's rule.
	acc := 0
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = (acc*x + coeffs[i]) % f.q
	}
	return acc
}
