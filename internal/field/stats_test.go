package field

import (
	"sync"
	"testing"
)

// TestEvalCountersClassification pins Count against RowView's own
// criterion: x < RowsCached is a table hit, anything else a Horner
// fallback. A nil counter must be a safe no-op.
func TestEvalCountersClassification(t *testing.T) {
	// A first-step-sized family whose row table is partial.
	fam, err := Families(101, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fam.RowsCached() >= fam.Size() {
		t.Skipf("family q=101 d=2 fully cached; fallback unreachable")
	}
	var c EvalCounters
	c.Count(fam, 0)
	c.Count(fam, fam.RowsCached()-1)
	c.Count(fam, fam.RowsCached())
	c.Count(fam, fam.Size()-1)
	if c.Hits() != 2 || c.Fallbacks() != 2 {
		t.Fatalf("hits=%d fallbacks=%d, want 2/2", c.Hits(), c.Fallbacks())
	}
	var nilC *EvalCounters
	nilC.Count(fam, 0) // must not panic
	if nilC.Hits() != 0 || nilC.Fallbacks() != 0 {
		t.Fatal("nil counter reported counts")
	}
}

// TestEvalCountersPaletteHitRate pins the payoff of palette-sized row
// tables: counting every index a step with palette bound m can evaluate
// yields hit rate 1 on a FamiliesFor-sized family, while the same
// workload on a default-cap family of comparable size falls back past
// its fixed table.
func TestEvalCountersPaletteHitRate(t *testing.T) {
	const palette = 5000
	sized, err := FamiliesFor(1013, 1, palette) // fresh key, palette-sized
	if err != nil {
		t.Fatal(err)
	}
	if sized.RowsCached() != palette {
		t.Fatalf("palette-sized table covers %d rows, want %d", sized.RowsCached(), palette)
	}
	var c EvalCounters
	for x := 0; x < palette; x++ {
		c.Count(sized, x)
	}
	stat := EvalStat{Hits: c.Hits(), Fallbacks: c.Fallbacks()}
	if stat.Fallbacks != 0 || stat.HitRate() != 1 {
		t.Fatalf("palette-sized family: %d fallbacks, hit rate %v; want 0 / 1",
			stat.Fallbacks, stat.HitRate())
	}

	def, err := Families(1019, 1) // fresh key, default construction cap
	if err != nil {
		t.Fatal(err)
	}
	if def.RowsCached() >= palette {
		t.Fatalf("default table covers %d rows; fallback regime unreachable", def.RowsCached())
	}
	var d EvalCounters
	for x := 0; x < palette; x++ {
		d.Count(def, x)
	}
	if d.Hits() != int64(def.RowsCached()) || d.Fallbacks() != int64(palette-def.RowsCached()) {
		t.Fatalf("default-cap family hits=%d fallbacks=%d, want %d/%d",
			d.Hits(), d.Fallbacks(), def.RowsCached(), palette-def.RowsCached())
	}
}

// TestEvalCountersConcurrent pins exactness under concurrency (run with
// -race): N goroutines of K counts each must sum to exactly N*K.
func TestEvalCountersConcurrent(t *testing.T) {
	fam, err := Families(23, 1)
	if err != nil {
		t.Fatal(err)
	}
	var c EvalCounters
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Count(fam, (seed*per+j)%fam.Size())
			}
		}(i)
	}
	wg.Wait()
	if total := c.Hits() + c.Fallbacks(); total != goroutines*per {
		t.Fatalf("total %d, want %d", total, goroutines*per)
	}
}

// TestEvalStatsRegistry pins the process-wide registry: disabled lookups
// return nil, enabled lookups share per-key counters, snapshots sort by
// (step, q, d), reset drops everything.
func TestEvalStatsRegistry(t *testing.T) {
	defer func() {
		SetEvalStats(false)
		ResetEvalStats()
	}()
	SetEvalStats(false)
	ResetEvalStats()
	if c := StepCounters(0, 23, 1); c != nil {
		t.Fatal("disabled StepCounters returned a counter")
	}
	SetEvalStats(true)
	if !EvalStatsEnabled() {
		t.Fatal("enable did not stick")
	}
	a := StepCounters(1, 23, 1)
	b := StepCounters(1, 23, 1)
	if a == nil || a != b {
		t.Fatal("same key resolved to different counters")
	}
	other := StepCounters(0, 29, 2)
	fam, err := Families(23, 1)
	if err != nil {
		t.Fatal(err)
	}
	a.Count(fam, 0)
	a.Count(fam, 1)
	snap := EvalStatsSnapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries, want 2", len(snap))
	}
	if snap[0].Step != 0 || snap[0].Q != 29 || snap[1].Step != 1 || snap[1].Q != 23 {
		t.Fatalf("snapshot not sorted by (step, q, d): %+v", snap)
	}
	if snap[1].Hits != 2 || snap[1].Total() != 2 {
		t.Fatalf("counted entry %+v, want 2 hits", snap[1])
	}
	if snap[0].Total() != 0 || snap[0].HitRate() != 1 {
		t.Fatalf("untouched entry %+v, want total 0 / hit-rate 1", snap[0])
	}
	_ = other
	ResetEvalStats()
	if len(EvalStatsSnapshot()) != 0 {
		t.Fatal("reset left counters behind")
	}
}
