package field

import (
	"math/rand"
	"sync"
	"testing"
)

// TestBatchEvalMatchesScalarEval is the property test pinning the batch
// kernel to the scalar reference: over randomized (q, d, x) - primes
// across the schedule range, degrees through the finite-difference
// ladder, indices inside and far beyond q^(d+1) - BatchEval must equal
// Family.Eval at every point, for full rows and clamped prefixes.
func TestBatchEvalMatchesScalarEval(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	primes := []int{2, 3, 5, 7, 11, 23, 59, 101, 127, 1009}
	for _, q := range primes {
		for d := 0; d <= 6; d++ {
			fam, err := NewFamilySized(q, d, 0) // empty table: Eval only
			if err != nil {
				t.Fatal(err)
			}
			dst := make([]int, q)
			for trial := 0; trial < 30; trial++ {
				var x int
				switch trial % 3 {
				case 0:
					x = rng.Intn(q * q) // small indices
				case 1:
					x = rng.Intn(1 << 30) // far past q^(d+1): digit-wrap contract
				default:
					x = fam.Size() - 1 - rng.Intn(min(fam.Size(), 64))
				}
				if x < 0 {
					x = 0
				}
				run := dst[:1+rng.Intn(q)]
				BatchEval(q, d, x, run)
				for alpha, got := range run {
					if want := fam.Eval(x, alpha); got != want {
						t.Fatalf("BatchEval(q=%d,d=%d,x=%d)[%d] = %d, Eval = %d", q, d, x, alpha, got, want)
					}
				}
			}
		}
	}
}

// TestBatchEvalScalarDegreeFallback covers the degree-overflow path
// (d > maxBatchDegree): the scalar per-point loop must still match Eval.
func TestBatchEvalScalarDegreeFallback(t *testing.T) {
	q, d := 5, maxBatchDegree+3
	fam, err := NewFamilySized(q, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]int, q)
	for _, x := range []int{0, 1, 42, 1 << 40} {
		BatchEval(q, d, x, dst)
		for alpha, got := range dst {
			if want := fam.Eval(x, alpha); got != want {
				t.Fatalf("BatchEval(q=%d,d=%d,x=%d)[%d] = %d, Eval = %d", q, d, x, alpha, got, want)
			}
		}
	}
}

// TestFillRowsMatchesScalarEval pins the contiguous-run kernel,
// including odometer carries across digit boundaries (x0 straddling
// powers of q) and wrap past q^(d+1).
func TestFillRowsMatchesScalarEval(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, q := range []int{2, 3, 7, 23, 101} {
		for d := 0; d <= 4; d++ {
			fam, err := NewFamilySized(q, d, 0)
			if err != nil {
				t.Fatal(err)
			}
			starts := []int{0, q - 1, q*q - 2, fam.Size() - 2, rng.Intn(1 << 20)}
			for _, x0 := range starts {
				if x0 < 0 {
					x0 = 0
				}
				k := 1 + rng.Intn(5)
				rows := make([]int, k*q)
				FillRows(q, d, x0, rows)
				for r := 0; r < k; r++ {
					for alpha := 0; alpha < q; alpha++ {
						if got, want := rows[r*q+alpha], fam.Eval(x0+r, alpha); got != want {
							t.Fatalf("FillRows(q=%d,d=%d,x0=%d) row %d alpha %d: got %d, want %d", q, d, x0, r, alpha, got, want)
						}
					}
				}
			}
		}
	}
}

// TestRowBlockGrowthBoundaries walks a family through EnsureRows growth
// and checks, at every boundary, that Row answers indices below Cached
// from the table and above it via the kernel - both equal to Eval - and
// that earlier snapshots stay valid after later growth.
func TestRowBlockGrowthBoundaries(t *testing.T) {
	q, d := 23, 2
	fam, err := NewFamilySized(q, d, 4)
	if err != nil {
		t.Fatal(err)
	}
	scratch := make([]int, q)
	var snaps []RowBlock
	for _, m := range []int{4, 9, 10, 100, 1000, fam.Size() + 5} {
		b := fam.Block(m)
		snaps = append(snaps, b)
		wantCached := min(m, fam.Size())
		if c := maxRowTableGrowInts / q; wantCached > c {
			wantCached = c
		}
		if b.Cached() < wantCached {
			t.Fatalf("Block(%d).Cached() = %d, want >= %d", m, b.Cached(), wantCached)
		}
		for _, x := range []int{0, b.Cached() - 1, b.Cached(), b.Cached() + 7, fam.Size() - 1} {
			if x < 0 {
				continue
			}
			row := b.Row(x, scratch)
			for alpha := 0; alpha < q; alpha++ {
				if want := fam.Eval(x, alpha); row[alpha] != want {
					t.Fatalf("Block(%d).Row(%d)[%d] = %d, want %d", m, x, alpha, row[alpha], want)
				}
			}
		}
	}
	// Growth must never invalidate an earlier snapshot.
	for _, b := range snaps {
		row := b.Row(1, scratch)
		for alpha := 0; alpha < q; alpha++ {
			if want := fam.Eval(1, alpha); row[alpha] != want {
				t.Fatalf("stale snapshot Row(1)[%d] = %d, want %d", alpha, row[alpha], want)
			}
		}
	}
}

// TestAgreeAddMatchesNaive pins the branch-free accumulation against
// the obvious loop.
func TestAgreeAddMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		q := 2 + rng.Intn(120)
		ref := make([]int, q)
		row := make([]int, q)
		for i := range ref {
			ref[i] = rng.Intn(q)
			if rng.Intn(3) == 0 {
				row[i] = ref[i]
			} else {
				row[i] = rng.Intn(q)
			}
		}
		mult := 1 + rng.Intn(5)
		got := make([]int, q)
		want := make([]int, q)
		for i := range want {
			want[i] = rng.Intn(10)
			got[i] = want[i]
		}
		AgreeAdd(got, ref, row, mult)
		for i := range want {
			if row[i] == ref[i] {
				want[i] += mult
			}
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("q=%d mult=%d: agrees[%d] = %d, want %d", q, mult, i, got[i], want[i])
			}
		}
	}
}

// TestAgreeRunMatchesNaive pins the grouped run walker (multiplicity
// grouping, skip color, mixed table/kernel rows) against a per-entry
// reference.
func TestAgreeRunMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	q, d := 23, 2
	fam, err := NewFamilySized(q, d, 40) // partial table: mixed hit/batched
	if err != nil {
		t.Fatal(err)
	}
	b := fam.Block(-1)
	scratch := make([]int, q)
	rowScratch := make([]int, q)
	for trial := 0; trial < 100; trial++ {
		x := rng.Intn(fam.Size())
		ys := make([]int, rng.Intn(20))
		for i := range ys {
			if rng.Intn(4) == 0 {
				ys[i] = x
			} else {
				ys[i] = rng.Intn(fam.Size())
			}
		}
		sortInts(ys)
		ref := b.Row(x, scratch)
		got := make([]int, q)
		var ec EvalCounters
		b.AgreeRun(got, ref, ys, x, rowScratch, &ec)
		want := make([]int, q)
		for _, y := range ys {
			if y == x {
				continue
			}
			for alpha := 0; alpha < q; alpha++ {
				if fam.Eval(y, alpha) == fam.Eval(x, alpha) {
					want[alpha]++
				}
			}
		}
		for alpha := range want {
			if got[alpha] != want[alpha] {
				t.Fatalf("x=%d ys=%v: agrees[%d] = %d, want %d", x, ys, alpha, got[alpha], want[alpha])
			}
		}
		if ec.Fallbacks() != 0 {
			t.Fatalf("AgreeRun recorded %d scalar fallbacks; kernel path must not have any", ec.Fallbacks())
		}
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// TestBatchKernelZeroAllocs asserts the kernel path allocates nothing:
// Row (both sides of the cache boundary), BatchEval and AgreeRun run on
// caller scratch only.
func TestBatchKernelZeroAllocs(t *testing.T) {
	q, d := 59, 2
	fam, err := NewFamilySized(q, d, 100)
	if err != nil {
		t.Fatal(err)
	}
	b := fam.Block(-1)
	scratch := make([]int, q)
	rowScratch := make([]int, q)
	agrees := make([]int, q)
	ys := []int{3, 3, 57, 140, 3000, 3000, 40000}
	ref := b.Row(7, scratch)
	allocs := testing.AllocsPerRun(100, func() {
		BatchEval(q, d, 123456, rowScratch)
		_ = b.Row(99, rowScratch)
		_ = b.Row(50000, rowScratch)
		b.AgreeRun(agrees, ref, ys, 3, rowScratch, nil)
	})
	if allocs != 0 {
		t.Errorf("batch kernel: %v allocs/op, want 0", allocs)
	}
}

// TestRowBlockConcurrentGrowth hammers Block/EnsureRows/Row from many
// goroutines (run under -race): snapshots must stay internally
// consistent while the shared table grows underneath them.
func TestRowBlockConcurrentGrowth(t *testing.T) {
	q, d := 31, 2
	fam, err := NewFamilySized(q, d, 2)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			scratch := make([]int, q)
			for i := 0; i < 200; i++ {
				b := fam.Block(rng.Intn(fam.Size()))
				x := rng.Intn(fam.Size())
				row := b.Row(x, scratch)
				for alpha := 0; alpha < q; alpha++ {
					if want := fam.Eval(x, alpha); row[alpha] != want {
						t.Errorf("concurrent Row(%d)[%d] = %d, want %d", x, alpha, row[alpha], want)
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
}
