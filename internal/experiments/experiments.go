// Package experiments implements the reproduction harness: one function
// per experiment of DESIGN.md Section 5 (E01-E19), each regenerating the
// quantity a theorem or comparison claim of the paper bounds. Rows report
// measured values side by side with the paper's predicted bound so that
// EXPERIMENTS.md can be generated mechanically (cmd/colorbench) and each
// experiment can run as a Go benchmark (bench_test.go).
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/arbdefect"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/forest"
	"repro/internal/graph"
	"repro/internal/orient"
	"repro/internal/recolor"
)

// Row is one measurement of an experiment.
type Row struct {
	Exp      string  // experiment id, e.g. "E07"
	Workload string  // workload description
	Params   string  // swept parameters
	Colors   int     // colors used (0 when not applicable)
	Rounds   int     // simulated LOCAL rounds
	Messages int64   // messages sent across the run
	Measured float64 // the quantity the claim bounds (see Metric)
	Bound    float64 // the claim's bound on Measured (0 = n/a)
	Metric   string  // name of the Measured quantity
	OK       bool    // Measured <= Bound (when Bound > 0), plus validity checks
	Note     string
}

// Table renders rows as an aligned text table (markdown-compatible).
func Table(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "| %-4s | %-26s | %-22s | %7s | %7s | %9s | %10s | %10s | %-16s | %-4s |\n",
		"exp", "workload", "params", "colors", "rounds", "messages", "measured", "bound", "metric", "ok")
	fmt.Fprintf(&b, "|------|----------------------------|------------------------|---------|---------|-----------|------------|------------|------------------|------|\n")
	for _, r := range rows {
		ok := "yes"
		if !r.OK {
			ok = "NO"
		}
		bound := "-"
		if r.Bound > 0 {
			bound = fmt.Sprintf("%.1f", r.Bound)
		}
		fmt.Fprintf(&b, "| %-4s | %-26s | %-22s | %7d | %7d | %9d | %10.1f | %10s | %-16s | %-4s |\n",
			r.Exp, r.Workload, r.Params, r.Colors, r.Rounds, r.Messages, r.Measured, bound, r.Metric, ok)
	}
	return b.String()
}

// Sizes configures the scale of the whole suite.
type Sizes struct {
	N    int   // default vertex count
	Seed int64 // base RNG seed
}

// DefaultSizes are laptop-scale defaults used by cmd/colorbench.
var DefaultSizes = Sizes{N: 2000, Seed: 1}

func (s Sizes) rng(off int64) *rand.Rand {
	return rand.New(rand.NewSource(s.Seed + off))
}

func (s Sizes) forestNet(a int, off int64) (*graph.Graph, *dist.Network) {
	rng := s.rng(off)
	g := graph.ForestUnion(s.N, a, rng)
	return g, dist.NewNetworkPermuted(g, rng)
}

func logN(n int) float64 { return math.Log2(float64(n)) }

// E01HPartition verifies Lemma 2.3: levels = O(log n), degree bound
// floor((2+eps)a).
func E01HPartition(s Sizes) ([]Row, error) {
	var rows []Row
	for _, a := range []int{2, 4, 8, 16} {
		g, net := s.forestNet(a, int64(a))
		hp, err := forest.ComputeHPartition(net, a, forest.DefaultEps, nil, nil)
		if err != nil {
			return nil, err
		}
		maxUp := 0
		for v := 0; v < g.N(); v++ {
			cnt := 0
			for _, u := range g.Neighbors(v) {
				if hp.Level[u] >= hp.Level[v] {
					cnt++
				}
			}
			if cnt > maxUp {
				maxUp = cnt
			}
		}
		rows = append(rows, Row{
			Exp: "E01", Workload: fmt.Sprintf("forest-union n=%d", g.N()),
			Params: fmt.Sprintf("a=%d", a), Rounds: hp.Rounds, Messages: hp.Messages,
			Measured: float64(maxUp), Bound: float64(hp.Degree),
			Metric: "up-degree", OK: maxUp <= hp.Degree,
			Note: fmt.Sprintf("levels=%d (log n=%.0f)", hp.NumLevels, logN(g.N())),
		})
	}
	return rows, nil
}

// E02Forests verifies Lemma 2.2(2): <= floor((2+eps)a) forests, each
// acyclic, covering all edges, in O(log n) rounds.
func E02Forests(s Sizes) ([]Row, error) {
	var rows []Row
	for _, a := range []int{2, 4, 8} {
		g, net := s.forestNet(a, 100+int64(a))
		fd, err := forest.Decompose(net, a, forest.DefaultEps)
		if err != nil {
			return nil, err
		}
		ok := fd.Validate() == nil
		rows = append(rows, Row{
			Exp: "E02", Workload: fmt.Sprintf("forest-union n=%d", g.N()),
			Params: fmt.Sprintf("a=%d", a), Rounds: fd.Rounds, Messages: fd.Messages,
			Measured: float64(fd.NumForests), Bound: float64(forest.DefaultEps.Threshold(a)),
			Metric: "num-forests", OK: ok && fd.NumForests <= forest.DefaultEps.Threshold(a),
		})
	}
	return rows, nil
}

// E03BE08 verifies Lemma 2.2(1) as a baseline: legal
// (floor((2+eps)a)+1)-coloring in O(a log n) rounds.
func E03BE08(s Sizes) ([]Row, error) {
	var rows []Row
	for _, a := range []int{2, 4, 8} {
		g, net := s.forestNet(a, 200+int64(a))
		res, err := baseline.BE08Coloring(net, a, forest.DefaultEps)
		if err != nil {
			return nil, err
		}
		ok := g.CheckLegalColoring(res.Colors) == nil
		rows = append(rows, Row{
			Exp: "E03", Workload: fmt.Sprintf("forest-union n=%d", g.N()),
			Params: fmt.Sprintf("a=%d", a), Colors: graph.NumColors(res.Colors),
			Rounds:   res.Tally.Rounds(),
			Messages: res.Tally.Messages(),
			Measured: float64(graph.MaxColor(res.Colors) + 1), Bound: float64(res.Palette),
			Metric: "palette", OK: ok && graph.MaxColor(res.Colors) < res.Palette,
			Note: fmt.Sprintf("a*log n=%.0f", float64(a)*logN(g.N())),
		})
	}
	return rows, nil
}

// E04Linial verifies the Linial baseline: O(Delta^2) colors in
// <= log* n + O(1) rounds.
func E04Linial(s Sizes) ([]Row, error) {
	var rows []Row
	for _, d := range []int{4, 8, 16} {
		rng := s.rng(300 + int64(d))
		g := graph.RandomRegularish(s.N, d, rng)
		net := dist.NewNetworkPermuted(g, rng)
		res, err := recolor.Linial(net)
		if err != nil {
			return nil, err
		}
		delta := g.MaxDegree()
		ok := g.CheckLegalColoring(res.Colors) == nil
		bound := math.Min(float64(8*delta*delta+1), float64(g.N()))
		rows = append(rows, Row{
			Exp: "E04", Workload: fmt.Sprintf("regular n=%d", g.N()),
			Params: fmt.Sprintf("Delta=%d", delta), Colors: graph.NumColors(res.Colors),
			Rounds:   res.Rounds,
			Messages: res.Messages,
			Measured: float64(graph.MaxColor(res.Colors) + 1), Bound: bound,
			Metric: "colors vs 8D^2", OK: ok && float64(graph.MaxColor(res.Colors)+1) <= bound,
			Note: fmt.Sprintf("log* n=%d", graph.LogStar(g.N())),
		})
	}
	return rows, nil
}

// E05Defective verifies Lemma 2.1: floor(Delta/p)-defective O(p^2) colors
// in O(log* n) rounds.
func E05Defective(s Sizes) ([]Row, error) {
	var rows []Row
	for _, p := range []int{2, 4, 8} {
		rng := s.rng(400 + int64(p))
		g := graph.RandomRegularish(s.N, 24, rng)
		net := dist.NewNetworkPermuted(g, rng)
		res, err := recolor.Defective(net, p)
		if err != nil {
			return nil, err
		}
		delta := g.MaxDegree()
		def := g.Defect(res.Colors)
		rows = append(rows, Row{
			Exp: "E05", Workload: fmt.Sprintf("regular n=%d Delta=%d", g.N(), delta),
			Params: fmt.Sprintf("p=%d", p), Colors: graph.NumColors(res.Colors),
			Rounds:   res.Rounds,
			Messages: res.Messages,
			Measured: float64(def), Bound: float64(delta / p),
			Metric: "defect", OK: def <= delta/p && graph.NumColors(res.Colors) <= 16*p*p+26,
			Note: fmt.Sprintf("colors<=16p^2+26=%d", 16*p*p+26),
		})
	}
	return rows, nil
}

// E06CompleteOrientation verifies Lemma 3.3: complete acyclic orientation,
// out-degree floor((2+eps)a), length O(a log n) with (Delta+1) levels.
func E06CompleteOrientation(s Sizes) ([]Row, error) {
	var rows []Row
	for _, a := range []int{2, 4, 8} {
		g, net := s.forestNet(a, 500+int64(a))
		res, err := orient.Complete(net, a, forest.DefaultEps, orient.LevelDeltaPlusOne, nil, nil)
		if err != nil {
			return nil, err
		}
		st := orient.MeasureWithin(res.Sigma, nil, nil)
		lengthBound := float64(res.HP.NumLevels * (res.LevelPalette + 1))
		rows = append(rows, Row{
			Exp: "E06", Workload: fmt.Sprintf("forest-union n=%d", g.N()),
			Params: fmt.Sprintf("a=%d", a), Rounds: res.Tally.Rounds(), Messages: res.Tally.Messages(),
			Measured: float64(st.Length), Bound: lengthBound,
			Metric: "orient-length",
			OK:     st.Acyclic && st.Deficit == 0 && st.OutDegree <= forest.DefaultEps.Threshold(a) && float64(st.Length) <= lengthBound,
			Note:   fmt.Sprintf("outdeg=%d<=%d", st.OutDegree, forest.DefaultEps.Threshold(a)),
		})
	}
	return rows, nil
}

// E07PartialOrientation verifies Theorem 3.5 (and Figure 1's structure):
// out-degree floor((2+eps)a), deficit <= floor(a/t), length O(t^2 log n).
func E07PartialOrientation(s Sizes) ([]Row, error) {
	var rows []Row
	a := 8
	for _, t := range []int{1, 2, 4, 8} {
		g, net := s.forestNet(a, 600+int64(t))
		res, err := orient.Partial(net, a, t, forest.DefaultEps, nil, nil)
		if err != nil {
			return nil, err
		}
		st := orient.MeasureWithin(res.Sigma, nil, nil)
		rows = append(rows, Row{
			Exp: "E07", Workload: fmt.Sprintf("forest-union n=%d a=%d", g.N(), a),
			Params: fmt.Sprintf("t=%d", t), Rounds: res.Tally.Rounds(), Messages: res.Tally.Messages(),
			Measured: float64(st.Deficit), Bound: math.Max(float64(a/t), 0.5),
			Metric: "deficit",
			OK:     st.Acyclic && st.Deficit <= a/t && st.OutDegree <= forest.DefaultEps.Threshold(a),
			Note:   fmt.Sprintf("len=%d<=levels*colors=%d", st.Length, res.HP.NumLevels*(res.LevelPalette+1)),
		})
	}
	return rows, nil
}

// E08SimpleArbdefective verifies Theorem 3.2: (tau+floor(m/k))-arbdefective
// k-coloring in len+1 rounds.
func E08SimpleArbdefective(s Sizes) ([]Row, error) {
	var rows []Row
	a := 8
	g, net := s.forestNet(a, 700)
	po, err := orient.Partial(net, a, 2, forest.DefaultEps, nil, nil)
	if err != nil {
		return nil, err
	}
	st := orient.MeasureWithin(po.Sigma, nil, nil)
	for _, k := range []int{2, 4, 8} {
		sr, err := arbdefect.Simple(net, po.Sigma, k, nil, nil)
		if err != nil {
			return nil, err
		}
		witnessOK := g.CheckArbdefectWitness(sr.Colors, po.Sigma, sr.Bound) == nil
		rows = append(rows, Row{
			Exp: "E08", Workload: fmt.Sprintf("forest-union n=%d a=%d", g.N(), a),
			Params: fmt.Sprintf("k=%d", k), Colors: graph.NumColors(sr.Colors),
			Rounds:   sr.Rounds,
			Messages: sr.Messages,
			Measured: float64(sr.Rounds), Bound: float64(st.Length + 1),
			Metric: "rounds vs len+1", OK: witnessOK && sr.Rounds <= st.Length+1,
			Note: fmt.Sprintf("arbdefect<=%d", sr.Bound),
		})
	}
	return rows, nil
}

// E09ArbdefectiveColoring verifies Corollary 3.6.
func E09ArbdefectiveColoring(s Sizes) ([]Row, error) {
	var rows []Row
	a := 8
	for _, kt := range []int{2, 4, 8} {
		g, net := s.forestNet(a, 800+int64(kt))
		res, err := arbdefect.Coloring(net, a, kt, kt, forest.DefaultEps, nil, nil)
		if err != nil {
			return nil, err
		}
		arbOK := g.CheckArbdefectWitness(res.Colors, res.Sigma, res.Bound) == nil
		rows = append(rows, Row{
			Exp: "E09", Workload: fmt.Sprintf("forest-union n=%d a=%d", g.N(), a),
			Params: fmt.Sprintf("k=t=%d", kt), Colors: graph.NumColors(res.Colors),
			Rounds:   res.Tally.Rounds(),
			Messages: res.Tally.Messages(),
			Measured: float64(res.Bound), Bound: float64(a/kt + forest.DefaultEps.Threshold(a)/kt),
			Metric: "arbdefect", OK: arbOK,
			Note: fmt.Sprintf("t^2*log n=%.0f", float64(kt*kt)*logN(g.N())),
		})
	}
	return rows, nil
}

// E10OneShot verifies Lemma 4.1.
func E10OneShot(s Sizes) ([]Row, error) {
	var rows []Row
	for _, a := range []int{8, 16, 32} {
		g, net := s.forestNet(a, 900+int64(a))
		res, err := core.OneShot(net, a, forest.DefaultEps)
		if err != nil {
			return nil, err
		}
		ok := g.CheckLegalColoring(res.Colors) == nil
		rows = append(rows, Row{
			Exp: "E10", Workload: fmt.Sprintf("forest-union n=%d", g.N()),
			Params: fmt.Sprintf("a=%d", a), Colors: graph.NumColors(res.Colors),
			Rounds:   res.Tally.Rounds(),
			Messages: res.Tally.Messages(),
			Measured: float64(res.Palette), Bound: 30*float64(a) + 60,
			Metric: "palette vs O(a)", OK: ok && float64(res.Palette) <= 30*float64(a)+60,
			Note: fmt.Sprintf("a^(2/3)*log n=%.0f", math.Pow(float64(a), 2.0/3.0)*logN(g.N())),
		})
	}
	return rows, nil
}

// E11LegalColoring verifies Theorem 4.3 / Corollary 4.4: O(a) colors,
// rounds tracking a^mu log n.
func E11LegalColoring(s Sizes) ([]Row, error) {
	var rows []Row
	for _, a := range []int{8, 16, 32} {
		g, net := s.forestNet(a, 1000+int64(a))
		res, err := core.LegalColoring(net, core.Config{Arboricity: a, P: core.PForTheorem43(a, 2.0/3.0)})
		if err != nil {
			return nil, err
		}
		ok := g.CheckLegalColoring(res.Colors) == nil
		// Lemma 4.2(3) bound: (3+eps)^(iters+1) * a + slack.
		bound := float64(a)
		for i := 0; i <= res.Iterations; i++ {
			bound *= 3.25
		}
		rows = append(rows, Row{
			Exp: "E11", Workload: fmt.Sprintf("forest-union n=%d", g.N()),
			Params: fmt.Sprintf("a=%d mu=2/3", a), Colors: graph.NumColors(res.Colors),
			Rounds:   res.Tally.Rounds(),
			Messages: res.Tally.Messages(),
			Measured: float64(res.Palette), Bound: bound + 100,
			Metric: "palette vs O(a)", OK: ok && float64(res.Palette) <= bound+100,
			Note: fmt.Sprintf("iters=%d a^(2/3)logn=%.0f", res.Iterations, math.Pow(float64(a), 2.0/3.0)*logN(g.N())),
		})
	}
	return rows, nil
}

// E12Tradeoff sweeps p (Theorem 4.5 / Corollary 4.6).
func E12Tradeoff(s Sizes) ([]Row, error) {
	var rows []Row
	a := 16
	for _, p := range []int{4, 8, 16} {
		g, net := s.forestNet(a, 1100+int64(p))
		res, err := core.LegalColoring(net, core.Config{Arboricity: a, P: p})
		if err != nil {
			return nil, err
		}
		ok := g.CheckLegalColoring(res.Colors) == nil
		rows = append(rows, Row{
			Exp: "E12", Workload: fmt.Sprintf("forest-union n=%d a=%d", g.N(), a),
			Params: fmt.Sprintf("p=%d", p), Colors: graph.NumColors(res.Colors),
			Rounds:   res.Tally.Rounds(),
			Messages: res.Tally.Messages(),
			Measured: float64(res.Iterations), Bound: math.Ceil(math.Log(float64(a))/math.Log(float64(p)/3.25)) + 1,
			Metric: "iterations", OK: ok,
		})
	}
	return rows, nil
}

// E13DeltaPlusOne verifies Corollary 4.7: in the a << Delta regime, fewer
// than Delta+1 colors.
func E13DeltaPlusOne(s Sizes) ([]Row, error) {
	var rows []Row
	for _, hubDeg := range []int{100, 300, 600} {
		rng := s.rng(1200 + int64(hubDeg))
		g := graph.StarForest(s.N, 2, 4, hubDeg, rng)
		net := dist.NewNetworkPermuted(g, rng)
		a := g.ArboricityUpperBound()
		res, err := core.LegalColoring(net, core.Config{Arboricity: a, P: 4})
		if err != nil {
			return nil, err
		}
		nc := graph.NumColors(res.Colors)
		ok := g.CheckLegalColoring(res.Colors) == nil && nc <= g.MaxDegree()
		rows = append(rows, Row{
			Exp: "E13", Workload: fmt.Sprintf("star-forest n=%d", g.N()),
			Params: fmt.Sprintf("a=%d Delta=%d", a, g.MaxDegree()), Colors: nc,
			Rounds:   res.Tally.Rounds(),
			Messages: res.Tally.Messages(),
			Measured: float64(nc), Bound: float64(g.MaxDegree() + 1),
			Metric: "colors vs Delta+1", OK: ok,
		})
	}
	return rows, nil
}

// E14ArbKuhn verifies the Section 5 Arb-Kuhn algorithm.
func E14ArbKuhn(s Sizes) ([]Row, error) {
	var rows []Row
	a := 16
	for _, t := range []int{2, 4, 8} {
		g, net := s.forestNet(a, 1300+int64(t))
		res, err := arbdefect.Kuhn(net, a, t, forest.DefaultEps)
		if err != nil {
			return nil, err
		}
		witnessOK := g.CheckArbdefectWitness(res.Colors, res.Sigma, res.Defect) == nil
		rows = append(rows, Row{
			Exp: "E14", Workload: fmt.Sprintf("forest-union n=%d a=%d", g.N(), a),
			Params: fmt.Sprintf("t=%d", t), Colors: graph.NumColors(res.Colors),
			Rounds:   res.Tally.Rounds(),
			Messages: res.Tally.Messages(),
			Measured: float64(res.Defect), Bound: float64(a / t),
			Metric: "arbdefect", OK: witnessOK && res.Defect <= a/t,
			Note: fmt.Sprintf("O(log n)=%.0f", logN(g.N())),
		})
	}
	return rows, nil
}

// E15FastColoring verifies Theorem 5.2.
func E15FastColoring(s Sizes) ([]Row, error) {
	var rows []Row
	a := 16
	for _, gb := range []int{2, 4, 8} {
		g, net := s.forestNet(a, 1400+int64(gb))
		res, err := core.FastColoring(net, a, gb, forest.DefaultEps)
		if err != nil {
			return nil, err
		}
		ok := g.CheckLegalColoring(res.Colors) == nil
		rows = append(rows, Row{
			Exp: "E15", Workload: fmt.Sprintf("forest-union n=%d a=%d", g.N(), a),
			Params: fmt.Sprintf("g=%d", gb), Colors: graph.NumColors(res.Colors),
			Rounds:   res.Tally.Rounds(),
			Messages: res.Tally.Messages(),
			Measured: float64(graph.NumColors(res.Colors)),
			Metric:   "colors (O(a^2/g))", OK: ok,
		})
	}
	return rows, nil
}

// E16ColorAT verifies Theorem 5.3.
func E16ColorAT(s Sizes) ([]Row, error) {
	var rows []Row
	a := 16
	for _, t := range []int{1, 2, 4} {
		g, net := s.forestNet(a, 1500+int64(t))
		res, err := core.ColorAT(net, a, t, 0.5, forest.DefaultEps)
		if err != nil {
			return nil, err
		}
		ok := g.CheckLegalColoring(res.Colors) == nil
		rows = append(rows, Row{
			Exp: "E16", Workload: fmt.Sprintf("forest-union n=%d a=%d", g.N(), a),
			Params: fmt.Sprintf("t=%d", t), Colors: graph.NumColors(res.Colors),
			Rounds:   res.Tally.Rounds(),
			Messages: res.Tally.Messages(),
			Measured: float64(graph.NumColors(res.Colors)),
			Metric:   "colors (O(a*t))", OK: ok,
		})
	}
	return rows, nil
}

// E17MIS compares the deterministic MIS (Section 1.2) with Luby's.
func E17MIS(s Sizes) ([]Row, error) {
	var rows []Row
	for _, a := range []int{4, 16} {
		g, net := s.forestNet(a, 1600+int64(a))
		// Paper's small-a rule: p >= 16 keeps the sweep palette near
		// theta(a)+1 (see Theorem 4.3's "wlog p >= 16").
		mres, tally, err := core.MIS(net, core.Config{Arboricity: a, P: max(16, core.PForTheorem43(a, 1.0))})
		if err != nil {
			return nil, err
		}
		ok := g.CheckMIS(mres.InMIS) == nil
		rows = append(rows, Row{
			Exp: "E17", Workload: fmt.Sprintf("forest-union n=%d", g.N()),
			Params: fmt.Sprintf("a=%d ours", a), Rounds: tally.Rounds(), Messages: tally.Messages(),
			Measured: float64(tally.Rounds()),
			Metric:   "rounds (O(a+a^mu logn))", OK: ok,
		})
		lres, err := baseline.LubyMIS(net, s.Seed)
		if err != nil {
			return nil, err
		}
		ok = g.CheckMIS(lres.InMIS) == nil
		rows = append(rows, Row{
			Exp: "E17", Workload: fmt.Sprintf("forest-union n=%d", g.N()),
			Params: fmt.Sprintf("a=%d luby", a), Rounds: lres.Rounds, Messages: lres.Messages,
			Measured: float64(lres.Rounds),
			Metric:   "rounds (O(log n) rand)", OK: ok,
		})
	}
	return rows, nil
}

// E18StateOfTheArt regenerates the Section 1.2 comparison: fixed small a,
// growing Delta; ours stays O(a) colors while Linial pays Delta^2.
func E18StateOfTheArt(s Sizes) ([]Row, error) {
	var rows []Row
	for _, hubDeg := range []int{8, 16, 32} {
		rng := s.rng(1700 + int64(hubDeg))
		g := graph.StarForest(s.N, 2, 6, hubDeg, rng)
		net := dist.NewNetworkPermuted(g, rng)
		a := g.ArboricityUpperBound()
		delta := g.MaxDegree()

		ours, err := core.LegalColoring(net, core.Config{Arboricity: a, P: 4})
		if err != nil {
			return nil, err
		}
		lin, err := recolor.Linial(net)
		if err != nil {
			return nil, err
		}
		be, err := baseline.BE08Coloring(net, a, forest.DefaultEps)
		if err != nil {
			return nil, err
		}
		okAll := g.CheckLegalColoring(ours.Colors) == nil &&
			g.CheckLegalColoring(lin.Colors) == nil &&
			g.CheckLegalColoring(be.Colors) == nil
		rows = append(rows, Row{
			Exp: "E18", Workload: fmt.Sprintf("star-forest n=%d a=%d", g.N(), a),
			Params: fmt.Sprintf("Delta=%d", delta),
			Colors: graph.NumColors(ours.Colors), Rounds: ours.Tally.Rounds(), Messages: ours.Tally.Messages(),
			Measured: float64(graph.NumColors(lin.Colors)),
			Bound:    float64(8*delta*delta + 1),
			Metric:   "linial-colors",
			OK:       okAll,
			Note: fmt.Sprintf("ours=%d lin=%d be08=%d(r=%d)",
				graph.NumColors(ours.Colors), graph.NumColors(lin.Colors),
				graph.NumColors(be.Colors), be.Tally.Rounds()),
		})
	}
	return rows, nil
}

// E19OrientationColoring verifies Appendix A: an (l+1)-coloring from a
// length-l complete acyclic orientation in l+1 rounds.
func E19OrientationColoring(s Sizes) ([]Row, error) {
	var rows []Row
	for _, a := range []int{2, 4} {
		g, net := s.forestNet(a, 1800+int64(a))
		or, hp, err := forest.CompleteAcyclicOrientation(net, a, forest.DefaultEps)
		if err != nil {
			return nil, err
		}
		_ = hp
		length, err := or.Sigma.Length()
		if err != nil {
			return nil, err
		}
		wc, err := forest.WaitColor(net, or.Sigma, length+1, forest.RuleFirstFree, nil, nil)
		if err != nil {
			return nil, err
		}
		ok := g.CheckLegalColoring(wc.Colors) == nil
		rows = append(rows, Row{
			Exp: "E19", Workload: fmt.Sprintf("forest-union n=%d a=%d", g.N(), a),
			Params: fmt.Sprintf("len=%d", length), Colors: graph.NumColors(wc.Colors),
			Rounds:   wc.Rounds,
			Messages: wc.Messages,
			Measured: float64(wc.Rounds), Bound: float64(length + 1),
			Metric: "rounds vs len+1", OK: ok && wc.Rounds <= length+1,
		})
	}
	return rows, nil
}

// coreLegal is a small shared wrapper used by the ablations.
type legalOut struct {
	colors   []int
	rounds   int
	messages int64
}

func coreLegal(net *dist.Network, a int) (legalOut, error) {
	res, err := core.LegalColoring(net, core.Config{Arboricity: a, P: 4})
	if err != nil {
		return legalOut{}, err
	}
	return legalOut{colors: res.Colors, rounds: res.Tally.Rounds(), messages: res.Tally.Messages()}, nil
}

// All runs every experiment in List order.
func All(s Sizes) ([]Row, error) {
	var all []Row
	for _, exp := range List() {
		rows, err := exp.Fn(s)
		if err != nil {
			return all, err
		}
		all = append(all, rows...)
	}
	return all, nil
}
