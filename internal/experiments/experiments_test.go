package experiments

import (
	"strings"
	"testing"
)

// smallSizes keeps the full-suite test fast.
var smallSizes = Sizes{N: 500, Seed: 3}

func TestAllExperimentsPassBounds(t *testing.T) {
	rows, err := All(smallSizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 50 {
		t.Fatalf("only %d rows; expected the full suite", len(rows))
	}
	for _, r := range rows {
		if !r.OK {
			t.Errorf("experiment %s %s failed: measured %.1f bound %.1f (%s)",
				r.Exp, r.Params, r.Measured, r.Bound, r.Metric)
		}
		if r.Bound > 0 && r.Measured > r.Bound {
			t.Errorf("experiment %s %s exceeds bound: %.1f > %.1f",
				r.Exp, r.Params, r.Measured, r.Bound)
		}
	}
}

func TestTableRendering(t *testing.T) {
	rows := []Row{
		{Exp: "E01", Workload: "w", Params: "p", Colors: 3, Rounds: 7,
			Measured: 1.5, Bound: 2, Metric: "m", OK: true},
		{Exp: "E02", Workload: "w2", Params: "p2", Measured: 9, Metric: "m2", OK: false},
	}
	out := Table(rows)
	if !strings.Contains(out, "E01") || !strings.Contains(out, "E02") {
		t.Error("rows missing from table")
	}
	if !strings.Contains(out, "NO") {
		t.Error("failed row not flagged")
	}
	if !strings.Contains(out, "2.0") {
		t.Error("bound not rendered")
	}
	if !strings.Contains(out, " - ") && !strings.Contains(out, "| -") && !strings.Contains(out, "-          ") {
		t.Error("missing bound not rendered as '-'")
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	// Deterministic algorithms + seeded RNG: identical rows across runs.
	a, err := E11LegalColoring(smallSizes)
	if err != nil {
		t.Fatal(err)
	}
	b, err := E11LegalColoring(smallSizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("row count differs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestAblationShowsPartialFaster(t *testing.T) {
	rows, err := E20AblationOrientation(Sizes{N: 1000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 variants, got %d", len(rows))
	}
	complete, partial := rows[0], rows[1]
	if partial.Rounds >= complete.Rounds {
		t.Errorf("partial orientation (%d rounds) not faster than complete (%d rounds) - the Section 3 speedup is missing",
			partial.Rounds, complete.Rounds)
	}
}
