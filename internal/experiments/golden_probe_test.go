package experiments

import (
	"sync"
	"testing"

	"repro/internal/arbdefect"
	"repro/internal/dist"
	"repro/internal/forest"
	"repro/internal/graph"
	"repro/internal/recolor"
)

// The probed golden suite re-runs the E04/E05/E14 goldens with a
// dist.Probe attached: tracing must be purely observational, so the
// colors (hashed), rounds and message counts must still match the seed
// captures bit for bit, and the per-round message deltas must sum to
// exactly the run totals.

// countSink tallies flushed records without retaining them.
type countSink struct {
	mu       sync.Mutex
	rounds   int
	runs     int
	messages int64
}

func (s *countSink) FlushRounds(recs []dist.RoundRecord) error {
	s.mu.Lock()
	s.rounds += len(recs)
	for _, r := range recs {
		s.messages += r.Messages
	}
	s.mu.Unlock()
	return nil
}

func (s *countSink) FlushRuns(recs []dist.RunRecord) error {
	s.mu.Lock()
	s.runs += len(recs)
	s.mu.Unlock()
	return nil
}

func TestGoldenE04LinialProbed(t *testing.T) {
	s := Sizes{N: 1000, Seed: 1}
	for _, want := range goldenE04 {
		rng := s.rng(300 + int64(want.param))
		g := graph.RandomRegularish(s.N, want.param, rng)
		sink := &countSink{}
		p := dist.NewProbe(sink)
		net := dist.NewNetworkPermuted(g, rng).WithProbe(p)
		res, err := recolor.Linial(net)
		if err != nil {
			t.Fatal(err)
		}
		p.Close()
		checkGolden(t, "E04+probe", want, res.Colors, res.Rounds, res.Messages)
		if sink.rounds != want.rounds {
			t.Errorf("E04 param=%d: %d round records, want %d", want.param, sink.rounds, want.rounds)
		}
		// Rounds==0 runs emit no round records; their Init messages appear
		// only in the run record (the documented contract).
		if want.rounds > 0 && sink.messages != want.messages {
			t.Errorf("E04 param=%d: traced messages %d, want %d", want.param, sink.messages, want.messages)
		}
	}
}

func TestGoldenE05DefectiveProbed(t *testing.T) {
	s := Sizes{N: 1000, Seed: 1}
	for _, want := range goldenE05 {
		rng := s.rng(400 + int64(want.param))
		g := graph.RandomRegularish(s.N, 24, rng)
		sink := &countSink{}
		p := dist.NewProbe(sink)
		net := dist.NewNetworkPermuted(g, rng).WithProbe(p)
		res, err := recolor.Defective(net, want.param)
		if err != nil {
			t.Fatal(err)
		}
		p.Close()
		checkGolden(t, "E05+probe", want, res.Colors, res.Rounds, res.Messages)
		if sink.rounds != want.rounds || sink.messages != want.messages {
			t.Errorf("E05 param=%d: traced %d rounds / %d messages, want %d / %d",
				want.param, sink.rounds, sink.messages, want.rounds, want.messages)
		}
	}
}

func TestGoldenE14ArbKuhnProbed(t *testing.T) {
	s := Sizes{N: 1000, Seed: 1}
	for _, want := range goldenE14 {
		_, net := s.forestNet(16, 1300+int64(want.param))
		sink := &countSink{}
		p := dist.NewProbe(sink)
		res, err := arbdefect.Kuhn(net.WithProbe(p), 16, want.param, forest.DefaultEps)
		if err != nil {
			t.Fatal(err)
		}
		p.Close()
		checkGolden(t, "E14+probe", want, res.Colors, res.Tally.Rounds(), res.Tally.Messages())
		if sink.runs == 0 {
			t.Errorf("E14 param=%d: pipeline emitted no run records", want.param)
		}
		// The trace covers every engine run of the pipeline, including the
		// H-partition probe runs the tally's complete-orientation phase
		// does not fold in (seed accounting), so traced >= tallied.
		if sink.messages < want.messages {
			t.Errorf("E14 param=%d: traced messages %d below the tallied %d", want.param, sink.messages, want.messages)
		}
	}
}
