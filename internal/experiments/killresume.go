package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"slices"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
)

// The kill/resume harness (colorbench -scale-kill-resume) is the
// checkpoint path's end-to-end gate: run Legal-Coloring uninterrupted,
// run it again but persist the pipeline checkpoint at iteration k and
// kill the run there, then resume from the decoded checkpoint on a
// completely fresh network and require the resumed coloring - and the
// merged rounds/messages totals - to match the uninterrupted run bit
// for bit. Every checkpoint crosses a real encode/decode round trip, so
// the serialized form is what is verified, not the in-memory struct.

// checkpointVersion frames the serialized pipeline checkpoint; decoders
// reject other versions instead of guessing.
const checkpointVersion = 1

// checkpointFile is the serialized form of a core.Checkpoint: a small
// versioned JSON document (the z-slice dominates; at n=10^6 the blob is
// a few MB, written once per refinement iteration - noise next to the
// run itself).
type checkpointFile struct {
	Version   int              `json:"version"`
	Iteration int              `json:"iteration"`
	Alpha     int              `json:"alpha"`
	Z         []int            `json:"z"`
	Phases    []dist.PhaseStat `json:"phases,omitempty"`
}

// EncodeCheckpoint serializes a pipeline checkpoint to w.
func EncodeCheckpoint(w io.Writer, ck core.Checkpoint) error {
	enc := json.NewEncoder(w)
	return enc.Encode(checkpointFile{
		Version:   checkpointVersion,
		Iteration: ck.Iteration,
		Alpha:     ck.Alpha,
		Z:         ck.Z,
		Phases:    ck.Phases,
	})
}

// DecodeCheckpoint reads a checkpoint written by EncodeCheckpoint.
func DecodeCheckpoint(r io.Reader) (*core.Checkpoint, error) {
	var f checkpointFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("experiments: decode checkpoint: %w", err)
	}
	if f.Version != checkpointVersion {
		return nil, fmt.Errorf("experiments: checkpoint version %d, want %d", f.Version, checkpointVersion)
	}
	return &core.Checkpoint{
		Iteration: f.Iteration,
		Alpha:     f.Alpha,
		Z:         f.Z,
		Phases:    f.Phases,
	}, nil
}

// errDeliberateKill is the harness's in-band crash: the OnIteration
// callback returns it after persisting the checkpoint, and the pipeline
// must surface it wrapped.
var errDeliberateKill = errors.New("experiments: deliberate kill after checkpoint")

// KillResumeReport summarizes one ScaleKillResume exercise.
type KillResumeReport struct {
	// Colors/Rounds/Messages are the uninterrupted run's totals, which
	// every resumed run matched bit for bit.
	Colors   int
	Rounds   int
	Messages int64
	// Iterations is the pipeline's refinement-iteration count; the run
	// was killed and resumed at every one of them.
	Iterations int
	// Bytes is the size of the largest serialized checkpoint.
	Bytes int
}

// ScaleKillResume runs the kill/resume gate on the scale instance
// described by opt. The instance and identifier permutation are
// prepared once; the reference run, every killed run and every resumed
// run each color the same network through a fresh dist.Network, so a
// resumed run shares no engine state with the run that was killed.
func ScaleKillResume(opt ScaleOptions) (*KillResumeReport, error) {
	opt.normalize()
	if opt.Arboricity <= opt.P {
		return nil, fmt.Errorf(
			"experiments: kill/resume needs at least one refinement iteration (a=%d <= p=%d)",
			opt.Arboricity, opt.P)
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	g, _, err := scaleGraph(opt, rng)
	if err != nil {
		return nil, err
	}
	ids := dist.NewNetworkPermuted(g, rng).IDs()
	newNet := func() (*dist.Network, error) {
		net, err := dist.NewNetworkWithIDs(g, ids)
		if err != nil {
			return nil, err
		}
		net = net.WithDelivery(opt.Delivery)
		if opt.Workers > 0 {
			net = net.WithWorkers(opt.Workers)
		}
		return shardNet(net, g, opt.Shards)
	}
	cfg := core.Config{Arboricity: opt.Arboricity, P: opt.P}

	// The uninterrupted reference.
	net, err := newNet()
	if err != nil {
		return nil, err
	}
	ref, err := core.LegalColoring(net, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: kill/resume reference run: %w", err)
	}

	report := &KillResumeReport{
		Colors:     graph.NumColors(ref.Colors),
		Rounds:     ref.Tally.Rounds(),
		Messages:   ref.Tally.Messages(),
		Iterations: ref.Iterations,
	}
	for k := 1; k <= ref.Iterations; k++ {
		// The killed run: persist the iteration-k checkpoint through the
		// real serializer, then crash the pipeline.
		var blob bytes.Buffer
		kcfg := cfg
		kcfg.OnIteration = func(ck core.Checkpoint) error {
			if ck.Iteration != k {
				return nil
			}
			if err := EncodeCheckpoint(&blob, ck); err != nil {
				return err
			}
			return errDeliberateKill
		}
		if net, err = newNet(); err != nil {
			return nil, err
		}
		if _, err := core.LegalColoring(net, kcfg); !errors.Is(err, errDeliberateKill) {
			return nil, fmt.Errorf("experiments: killed run at iteration %d: want deliberate kill, got %v", k, err)
		}
		if blob.Len() == 0 {
			return nil, fmt.Errorf("experiments: killed run at iteration %d captured no checkpoint", k)
		}
		if blob.Len() > report.Bytes {
			report.Bytes = blob.Len()
		}

		// The resumed run, on a fresh network, from the decoded blob.
		ck, err := DecodeCheckpoint(bytes.NewReader(blob.Bytes()))
		if err != nil {
			return nil, err
		}
		rcfg := cfg
		rcfg.Checkpoint = ck
		if net, err = newNet(); err != nil {
			return nil, err
		}
		res, err := core.LegalColoring(net, rcfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: resumed run from iteration %d: %w", k, err)
		}
		if !slices.Equal(res.Colors, ref.Colors) {
			return nil, fmt.Errorf("experiments: resume from iteration %d: colors diverge from uninterrupted run", k)
		}
		if res.Palette != ref.Palette || res.Iterations != ref.Iterations {
			return nil, fmt.Errorf(
				"experiments: resume from iteration %d: palette/iterations %d/%d, want %d/%d",
				k, res.Palette, res.Iterations, ref.Palette, ref.Iterations)
		}
		if res.Tally.Rounds() != ref.Tally.Rounds() || res.Tally.Messages() != ref.Tally.Messages() {
			return nil, fmt.Errorf(
				"experiments: resume from iteration %d: rounds/messages %d/%d, want %d/%d",
				k, res.Tally.Rounds(), res.Tally.Messages(), ref.Tally.Rounds(), ref.Tally.Messages())
		}
	}
	return report, nil
}
