package experiments

import (
	"encoding/json"
	"fmt"
	"io"
)

// Experiment couples a suite id with its runner, in suite order.
type Experiment struct {
	ID string
	Fn func(Sizes) ([]Row, error)
}

// List returns the full suite in canonical order. cmd/colorbench and the
// benchmark harness both iterate it, so adding an experiment in one place
// registers it everywhere.
func List() []Experiment {
	return []Experiment{
		{"E01", E01HPartition}, {"E02", E02Forests}, {"E03", E03BE08},
		{"E04", E04Linial}, {"E05", E05Defective},
		{"E06", E06CompleteOrientation}, {"E07", E07PartialOrientation},
		{"E08", E08SimpleArbdefective}, {"E09", E09ArbdefectiveColoring},
		{"E10", E10OneShot}, {"E11", E11LegalColoring}, {"E12", E12Tradeoff},
		{"E13", E13DeltaPlusOne}, {"E14", E14ArbKuhn}, {"E15", E15FastColoring},
		{"E16", E16ColorAT}, {"E17", E17MIS}, {"E18", E18StateOfTheArt},
		{"E19", E19OrientationColoring}, {"E20", E20AblationOrientation},
		{"E21", E21LinialReduction}, {"E22", E22IDRobustness},
	}
}

// Record is the machine-readable form of one experiment row, emitted by
// `colorbench -json` (one JSON object per line) so CI can archive runs
// and track rounds / messages / colors / wall-time trends across commits.
type Record struct {
	Exp      string  `json:"exp"`
	Workload string  `json:"workload"`
	Params   string  `json:"params"`
	Colors   int     `json:"colors"`
	Rounds   int     `json:"rounds"`
	Messages int64   `json:"messages"`
	Measured float64 `json:"measured"`
	Bound    float64 `json:"bound,omitempty"`
	Metric   string  `json:"metric"`
	OK       bool    `json:"ok"`
	Note     string  `json:"note,omitempty"`
	// WallMS is the wall-clock milliseconds of the whole experiment the
	// row belongs to (rows of one experiment share the measurement).
	WallMS float64 `json:"wall_ms"`
	N      int     `json:"n"`
	Seed   int64   `json:"seed"`
	// Delivery, Mallocs, AllocMB and AllocsPerVertex are set on
	// scale-run records (exp "SCALE"): the message transport used, the
	// heap allocation count / bytes (MB) of the coloring run they
	// bracket, and the normalized mallocs/n - the figure the typed
	// word-I/O plumbing exists to keep in the single digits, gated in CI
	// against a checked-in budget.
	Delivery        string  `json:"delivery,omitempty"`
	Mallocs         uint64  `json:"mallocs,omitempty"`
	AllocMB         float64 `json:"alloc_mb,omitempty"`
	AllocsPerVertex float64 `json:"allocs_per_vertex,omitempty"`
	// GoMaxProcs and Workers pin the parallelism of a scale-run record:
	// the process's GOMAXPROCS at run time and the engine worker count
	// the run resolved to (RunOptions.Workers / Network.WithWorkers).
	// Together with WallMS they are the speedup curve the nightly
	// -scale-procs sweep archives; colors/rounds/messages must be
	// bit-for-bit identical at every point.
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	Workers    int `json:"workers,omitempty"`
	// Shards is the shard count of a shard-structured scale run
	// (ScaleOptions.Shards / dist.Network.Sharded); omitted on plain flat
	// runs, 1 on the flat baseline point of a -scale-shards sweep. The
	// shard-count curve the nightly sweep archives sits next to the
	// Workers curve; colors/rounds/messages are bit-for-bit identical at
	// every point of both.
	Shards int `json:"shards,omitempty"`
	// GoVersion is runtime.Version() of the process that produced the
	// record; Timestamp is an RFC3339 stamp the harness passes in
	// (ScaleOptions.Timestamp - the engine never reads the clock for
	// record content, keeping runs replayable); TracePath points at the
	// round-level JSONL trace when one was recorded alongside.
	GoVersion string `json:"go_version,omitempty"`
	Timestamp string `json:"timestamp,omitempty"`
	TracePath string `json:"trace_path,omitempty"`
}

// NewRecord converts a row into its machine-readable form.
func NewRecord(r Row, wallMS float64, s Sizes) Record {
	return Record{
		Exp: r.Exp, Workload: r.Workload, Params: r.Params,
		Colors: r.Colors, Rounds: r.Rounds, Messages: r.Messages,
		Measured: r.Measured, Bound: r.Bound, Metric: r.Metric,
		OK: r.OK, Note: r.Note,
		WallMS: wallMS, N: s.N, Seed: s.Seed,
	}
}

// WriteJSON emits records as JSON Lines: one self-contained object per
// row, append-friendly for artifact archives.
func WriteJSON(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("experiments: encoding record %s/%s: %w", rec.Exp, rec.Params, err)
		}
	}
	return nil
}
