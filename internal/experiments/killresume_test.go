package experiments

import "testing"

func TestScaleKillResumeSmall(t *testing.T) {
	rep, err := ScaleKillResume(ScaleOptions{N: 4000, Arboricity: 8, P: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("report: %+v", rep)
	if rep.Iterations < 1 {
		t.Fatalf("no iterations exercised")
	}
}
