package experiments

import (
	"hash/fnv"
	"testing"

	"repro/internal/arbdefect"
	"repro/internal/dist"
	"repro/internal/forest"
	"repro/internal/graph"
	"repro/internal/recolor"
)

// The goldens below were captured from the seed implementations (per-call
// field.NewFamily in recolorOnce, map-backed graph.Orientation) at
// n=1000, seed=1, before the memoized-family / dense-orientation rewrite.
// The rewrite must stay bit-for-bit identical: same colors (hashed), same
// rounds, same message counts, on the E04 (Linial), E05 (defective) and
// E14 (Arb-Kuhn, orientation-heavy) workloads.

type golden struct {
	param    int
	hash     uint64
	rounds   int
	messages int64
}

var (
	goldenE04 = []golden{
		{4, 0xa738aafcfc410ced, 1, 3996},
		{8, 0xb11e02a4ad0b6814, 1, 7970},
		{16, 0xaa80fd8abd429555, 0, 0},
	}
	goldenE05 = []golden{
		{2, 0x84a9deb63d24f286, 2, 47428},
		{4, 0x70eeb95deb96ea49, 1, 23700},
		{8, 0x53e8bb790a29950b, 1, 23690},
	}
	goldenE14 = []golden{
		{2, 0x08a8138fda136272, 4, 63000},
		{4, 0xb920dc1b2e572329, 4, 63004},
		{8, 0x5d637de75b70df5a, 4, 62960},
	}
)

func hashColors(colors []int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, c := range colors {
		v := uint64(c)
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

func checkGolden(t *testing.T, exp string, want golden, colors []int, rounds int, messages int64) {
	t.Helper()
	if got := hashColors(colors); got != want.hash {
		t.Errorf("%s param=%d: colors hash %#x, seed implementation had %#x", exp, want.param, got, want.hash)
	}
	if rounds != want.rounds {
		t.Errorf("%s param=%d: rounds %d, seed had %d", exp, want.param, rounds, want.rounds)
	}
	if messages != want.messages {
		t.Errorf("%s param=%d: messages %d, seed had %d", exp, want.param, messages, want.messages)
	}
}

func TestGoldenE04LinialBitForBit(t *testing.T) {
	s := Sizes{N: 1000, Seed: 1}
	for _, want := range goldenE04 {
		rng := s.rng(300 + int64(want.param))
		g := graph.RandomRegularish(s.N, want.param, rng)
		net := dist.NewNetworkPermuted(g, rng)
		res, err := recolor.Linial(net)
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "E04", want, res.Colors, res.Rounds, res.Messages)
	}
}

func TestGoldenE05DefectiveBitForBit(t *testing.T) {
	s := Sizes{N: 1000, Seed: 1}
	for _, want := range goldenE05 {
		rng := s.rng(400 + int64(want.param))
		g := graph.RandomRegularish(s.N, 24, rng)
		net := dist.NewNetworkPermuted(g, rng)
		res, err := recolor.Defective(net, want.param)
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "E05", want, res.Colors, res.Rounds, res.Messages)
	}
}

func TestGoldenE14ArbKuhnBitForBit(t *testing.T) {
	s := Sizes{N: 1000, Seed: 1}
	for _, want := range goldenE14 {
		_, net := s.forestNet(16, 1300+int64(want.param))
		res, err := arbdefect.Kuhn(net, 16, want.param, forest.DefaultEps)
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "E14", want, res.Colors, res.Tally.Rounds(), res.Tally.Messages())
	}
}
