//go:build !race

package experiments

// raceEnabled is false outside race-detector builds; see the race-tagged
// twin for why allocation assertions care.
const raceEnabled = false
