package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
)

// The scale experiment (exp id "SCALE") is the ROADMAP's million-vertex
// target: load an n=10^6-class instance through the streaming binary
// graph format and run Procedure Legal-Coloring end to end on the
// columnar batch transport, recording wall time and heap allocations
// next to the usual colors/rounds/messages. Forcing dist.DeliveryBatch
// doubles as an end-to-end assertion that every phase of the pipeline
// (H-partition, per-level recoloring, orientation exchange,
// wait-for-parents) is fixed-width; the boxed transport remains
// selectable for shadow comparisons.

// ScaleOptions configures one scale run.
type ScaleOptions struct {
	// N and Arboricity shape the generated forest union (ignored when
	// GraphPath is set); Arboricity is also the bound handed to
	// Legal-Coloring. Zero values mean n=10^6, a=8.
	N          int
	Arboricity int
	// P is Legal-Coloring's refinement parameter (>= 4; default 4, so an
	// a=8 instance exercises one Arbdefective-Coloring iteration).
	P    int
	Seed int64
	// GraphPath loads a prebuilt graph file (DCG1 binary or text edge
	// list, e.g. from graphgen -binary) instead of generating one.
	GraphPath string
	// Dir is the scratch directory for the generate->WriteBinary->
	// OpenBinary round trip; empty means a temporary directory.
	Dir string
	// Delivery selects the transport; DeliveryAuto is recorded (and
	// enforced) as DeliveryBatch.
	Delivery dist.Delivery
	// Workers pins the engine worker count for every phase of the run
	// (dist.Network.WithWorkers); 0 keeps the auto heuristic. The
	// coloring is bit-for-bit identical at every setting - the knob only
	// paces the worker pool, which is what the -scale-procs speedup
	// sweep measures.
	Workers int
	// Shards runs the shard-structured engine with this many vertex
	// shards (dist.Network.Sharded); 0 or 1 keeps the flat engine. When
	// the instance comes from a DCG1 binary the graph is loaded through
	// the streaming per-shard reader (graph.OpenBinaryShards), bounding
	// peak load RSS to one shard's CSR slice plus the degree pass. Like
	// Workers, the knob never changes colors, rounds or messages.
	Shards int
	// Probe, when non-nil, is attached to the measured coloring run
	// (dist.Network.WithProbe), tracing every engine round of every
	// phase. The caller owns the probe's lifecycle (Close after the run).
	Probe *dist.Probe
	// TracePath and Timestamp annotate the emitted Record: where the
	// probe's JSONL trace went, and the harness-supplied RFC3339 run
	// stamp. Neither affects the computation.
	TracePath string
	Timestamp string
}

func (o *ScaleOptions) normalize() {
	if o.N <= 0 {
		o.N = 1_000_000
	}
	if o.Arboricity < 1 {
		o.Arboricity = 8
	}
	if o.P < 4 {
		o.P = 4
	}
	if o.Delivery == dist.DeliveryAuto {
		o.Delivery = dist.DeliveryBatch
	}
}

// ScaleResult is one scale run: the JSON-Lines record plus the raw
// coloring, which shadow comparisons check bit for bit across transports.
type ScaleResult struct {
	Record Record
	Colors []int
}

// ScaleRun executes the scale experiment.
func ScaleRun(opt ScaleOptions) (*ScaleResult, error) {
	opt.normalize()
	// One rng drives generation and then the ID permutation (the
	// forestNet convention): reseeding for the permutation would replay
	// the exact stream that shaped the edges, correlating IDs with
	// structure.
	rng := rand.New(rand.NewSource(opt.Seed))
	g, source, err := scaleGraph(opt, rng)
	if err != nil {
		return nil, err
	}
	net := dist.NewNetworkPermuted(g, rng).WithDelivery(opt.Delivery)
	if opt.Workers > 0 {
		net = net.WithWorkers(opt.Workers)
	}
	if net, err = shardNet(net, g, opt.Shards); err != nil {
		return nil, err
	}
	return scaleMeasure(net, g, source, opt)
}

// shardNet applies the shard-structured engine view for k > 1 shards;
// k <= 1 returns the flat network unchanged.
func shardNet(net *dist.Network, g *graph.Graph, k int) (*dist.Network, error) {
	if k <= 1 {
		return net, nil
	}
	sh, err := graph.NewSharding(g.N(), k)
	if err != nil {
		return nil, fmt.Errorf("experiments: scale sharding: %w", err)
	}
	return net.Sharded(sh)
}

// ScaleSweep is the speedup-curve harness: it prepares the instance ONCE
// (generation, binary round trip, identifier permutation - so every
// point colors the exact same network a plain ScaleRun with the same
// options would), then measures one coloring run per worker count with
// GOMAXPROCS and the engine worker pool pinned together and a fresh,
// cold session per point. It fails unless colors, rounds and message
// counts are bit-for-bit identical at every point; on error the results
// measured so far are still returned so harnesses can archive them.
func ScaleSweep(opt ScaleOptions, workers []int) ([]*ScaleResult, error) {
	opt.normalize()
	rng := rand.New(rand.NewSource(opt.Seed))
	g, source, err := scaleGraph(opt, rng)
	if err != nil {
		return nil, err
	}
	ids := dist.NewNetworkPermuted(g, rng).IDs()
	var results []*ScaleResult
	for _, w := range workers {
		if w < 1 {
			return results, fmt.Errorf("experiments: scale sweep worker count %d < 1", w)
		}
		net, err := dist.NewNetworkWithIDs(g, ids)
		if err != nil {
			return results, err
		}
		o := opt
		o.Workers = w
		prev := runtime.GOMAXPROCS(w)
		res, err := scaleMeasure(net.WithDelivery(o.Delivery).WithWorkers(w), g, source, o)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			return results, fmt.Errorf("experiments: scale sweep (workers=%d): %w", w, err)
		}
		results = append(results, res)
		first := results[0]
		if !slices.Equal(res.Colors, first.Colors) ||
			res.Record.Rounds != first.Record.Rounds ||
			res.Record.Messages != first.Record.Messages {
			return results, fmt.Errorf(
				"experiments: scale sweep: workers=%d diverges from workers=%d (colors/rounds/messages %d/%d/%d vs %d/%d/%d)",
				res.Record.Workers, first.Record.Workers,
				res.Record.Colors, res.Record.Rounds, res.Record.Messages,
				first.Record.Colors, first.Record.Rounds, first.Record.Messages)
		}
	}
	return results, nil
}

// ScaleShardSweep is the shard-count curve harness, the sharded sibling
// of ScaleSweep: the instance and the identifier permutation are
// prepared ONCE, then each listed shard count colors the exact same
// network through a fresh session - the flat engine at count 1, the
// shard-structured engine above it. It fails unless colors, rounds and
// message counts are bit-for-bit identical at every count (sharding
// only moves message words between columns, it never reorders the
// computation); on error the results measured so far are still
// returned so harnesses can archive them. A sweep that includes a
// sharded point loads a DCG1 instance through the streaming per-shard
// reader (using the largest requested count), so the load-time RSS
// bound comes for free on sharded sweeps.
func ScaleShardSweep(opt ScaleOptions, shardCounts []int) ([]*ScaleResult, error) {
	opt.normalize()
	rng := rand.New(rand.NewSource(opt.Seed))
	load := opt
	for _, k := range shardCounts {
		if k > load.Shards {
			load.Shards = k
		}
	}
	g, source, err := scaleGraph(load, rng)
	if err != nil {
		return nil, err
	}
	ids := dist.NewNetworkPermuted(g, rng).IDs()
	var results []*ScaleResult
	for _, k := range shardCounts {
		if k < 1 {
			return results, fmt.Errorf("experiments: scale shard sweep: shard count %d < 1", k)
		}
		net, err := dist.NewNetworkWithIDs(g, ids)
		if err != nil {
			return results, err
		}
		o := opt
		o.Shards = k
		net = net.WithDelivery(o.Delivery)
		if o.Workers > 0 {
			net = net.WithWorkers(o.Workers)
		}
		if net, err = shardNet(net, g, k); err != nil {
			return results, err
		}
		res, err := scaleMeasure(net, g, source, o)
		if err != nil {
			return results, fmt.Errorf("experiments: scale shard sweep (shards=%d): %w", k, err)
		}
		results = append(results, res)
		first := results[0]
		if !slices.Equal(res.Colors, first.Colors) ||
			res.Record.Rounds != first.Record.Rounds ||
			res.Record.Messages != first.Record.Messages {
			return results, fmt.Errorf(
				"experiments: scale shard sweep: shards=%d diverges from shards=%d (colors/rounds/messages %d/%d/%d vs %d/%d/%d)",
				res.Record.Shards, first.Record.Shards,
				res.Record.Colors, res.Record.Rounds, res.Record.Messages,
				first.Record.Colors, first.Record.Rounds, first.Record.Messages)
		}
	}
	return results, nil
}

// scaleMeasure runs the measured coloring section on a prepared network.
func scaleMeasure(net *dist.Network, g *graph.Graph, source string, opt ScaleOptions) (*ScaleResult, error) {
	if opt.Probe != nil {
		net = net.WithProbe(opt.Probe)
	}
	// Allocation accounting brackets only the coloring run: graph
	// generation and I/O are measured by their own benchmarks.
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := core.LegalColoring(net, core.Config{Arboricity: opt.Arboricity, P: opt.P})
	if err != nil {
		return nil, fmt.Errorf("experiments: scale run (n=%d a=%d p=%d): %w", g.N(), opt.Arboricity, opt.P, err)
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	legalErr := g.CheckLegalColoring(res.Colors)
	workers := opt.Workers
	if workers == 0 {
		workers = net.Workers() // the resolved auto default
	}
	rec := Record{
		Exp:        "SCALE",
		Workload:   fmt.Sprintf("%s n=%d m=%d", source, g.N(), g.M()),
		Params:     fmt.Sprintf("a=%d p=%d", opt.Arboricity, opt.P),
		Colors:     graph.NumColors(res.Colors),
		Rounds:     res.Tally.Rounds(),
		Messages:   res.Tally.Messages(),
		Measured:   float64(res.Palette),
		Metric:     "palette",
		OK:         legalErr == nil,
		WallMS:     float64(wall.Microseconds()) / 1000.0,
		N:          g.N(),
		Seed:       opt.Seed,
		Delivery:   opt.Delivery.String(),
		Mallocs:    after.Mallocs - before.Mallocs,
		AllocMB:    float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    workers,
		Shards:     recordShards(opt, net),
		GoVersion:  runtime.Version(),
		Timestamp:  opt.Timestamp,
		TracePath:  opt.TracePath,
	}
	rec.AllocsPerVertex = float64(rec.Mallocs) / float64(g.N())
	if legalErr != nil {
		rec.Note = legalErr.Error()
	}
	return &ScaleResult{Record: rec, Colors: res.Colors}, nil
}

// recordShards resolves the Shards field of a scale record: the engine's
// resolved shard count when sharding was requested, omitted (0) on plain
// flat runs so pre-shard records keep their shape.
func recordShards(opt ScaleOptions, net *dist.Network) int {
	if opt.Shards > 0 {
		return net.Shards()
	}
	return 0
}

// scaleGraph resolves the instance: a prebuilt file, or a generated
// forest union pushed through the binary writer and streamed back in, so
// a default scale run exercises WriteBinary/OpenBinary end to end. With
// Shards > 1 a DCG1 binary instance is loaded through the streaming
// per-shard reader instead of the flat one - same graph bit for bit,
// peak load RSS bounded by one shard (plus the n-sized degree pass).
func scaleGraph(opt ScaleOptions, rng *rand.Rand) (*graph.Graph, string, error) {
	if opt.GraphPath != "" {
		if opt.Shards > 1 {
			if _, err := graph.StatBinaryFile(opt.GraphPath); err == nil {
				g, _, err := graph.OpenBinaryShards(opt.GraphPath, opt.Shards)
				if err != nil {
					return nil, "", err
				}
				return g, filepath.Base(opt.GraphPath), nil
			}
			// Not a DCG1 binary: fall through to the flat loader.
		}
		g, err := graph.LoadFile(opt.GraphPath)
		if err != nil {
			return nil, "", err
		}
		return g, filepath.Base(opt.GraphPath), nil
	}
	gen := graph.ForestUnion(opt.N, opt.Arboricity, rng)
	dir := opt.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "colorbench-scale")
		if err != nil {
			return nil, "", err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	path := filepath.Join(dir, fmt.Sprintf("forest-union-n%d-a%d-s%d.bin", opt.N, opt.Arboricity, opt.Seed))
	f, err := os.Create(path)
	if err != nil {
		return nil, "", err
	}
	if err := gen.WriteBinary(f); err != nil {
		f.Close()
		return nil, "", err
	}
	if err := f.Close(); err != nil {
		return nil, "", err
	}
	if opt.Shards > 1 {
		g, _, err := graph.OpenBinaryShards(path, opt.Shards)
		if err != nil {
			return nil, "", err
		}
		return g, "forest-union", nil
	}
	g, err := graph.OpenBinary(path)
	if err != nil {
		return nil, "", err
	}
	return g, "forest-union", nil
}
