package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
)

// TestLegalColoringBatchShadowsBoxed is the pipeline-level shadow test:
// the full Legal-Coloring stack (H-partition, partial orientation with
// per-level defective recoloring, Simple-Arbdefective, final complete
// orientation and wait-for-parents sweep) must produce bit-for-bit
// identical colors, palettes, rounds and message counts on the columnar
// batch transport and on the []any fallback.
func TestLegalColoringBatchShadowsBoxed(t *testing.T) {
	for _, a := range []int{2, 8, 16} {
		s := Sizes{N: 1500, Seed: 1}
		run := func(d dist.Delivery) *core.Result {
			t.Helper()
			g, net := s.forestNet(a, 9000+int64(a))
			res, err := core.LegalColoring(net.WithDelivery(d), core.Config{Arboricity: a, P: 4})
			if err != nil {
				t.Fatalf("a=%d delivery=%v: %v", a, d, err)
			}
			if err := g.CheckLegalColoring(res.Colors); err != nil {
				t.Fatalf("a=%d delivery=%v: %v", a, d, err)
			}
			return res
		}
		boxed := run(dist.DeliveryBoxed)
		batch := run(dist.DeliveryBatch)
		if !reflect.DeepEqual(boxed.Colors, batch.Colors) {
			t.Errorf("a=%d: colors diverge between transports", a)
		}
		if boxed.Palette != batch.Palette || boxed.Iterations != batch.Iterations {
			t.Errorf("a=%d: palette/iterations diverge: %d/%d vs %d/%d",
				a, boxed.Palette, boxed.Iterations, batch.Palette, batch.Iterations)
		}
		if boxed.Tally.Rounds() != batch.Tally.Rounds() || boxed.Tally.Messages() != batch.Tally.Messages() {
			t.Errorf("a=%d: rounds/messages diverge: %d/%d vs %d/%d", a,
				boxed.Tally.Rounds(), boxed.Tally.Messages(), batch.Tally.Rounds(), batch.Tally.Messages())
		}
	}
}

// TestScaleRunShadow runs the scale harness at test size under both
// transports and requires identical colorings and counters; it also
// covers the generate -> WriteBinary -> OpenBinary round trip inside
// scaleGraph.
func TestScaleRunShadow(t *testing.T) {
	base := ScaleOptions{N: 4000, Arboricity: 8, P: 4, Seed: 3, Dir: t.TempDir()}

	batchOpt := base
	batchOpt.Delivery = dist.DeliveryBatch
	batch, err := ScaleRun(batchOpt)
	if err != nil {
		t.Fatal(err)
	}
	boxedOpt := base
	boxedOpt.Delivery = dist.DeliveryBoxed
	boxed, err := ScaleRun(boxedOpt)
	if err != nil {
		t.Fatal(err)
	}

	if !batch.Record.OK || !boxed.Record.OK {
		t.Fatalf("scale runs not legal: batch=%v boxed=%v", batch.Record.OK, boxed.Record.OK)
	}
	if !reflect.DeepEqual(batch.Colors, boxed.Colors) {
		t.Error("scale colors diverge between transports")
	}
	for _, f := range []struct {
		name string
		a, b any
	}{
		{"colors", batch.Record.Colors, boxed.Record.Colors},
		{"rounds", batch.Record.Rounds, boxed.Record.Rounds},
		{"messages", batch.Record.Messages, boxed.Record.Messages},
		{"palette", batch.Record.Measured, boxed.Record.Measured},
		{"workload", batch.Record.Workload, boxed.Record.Workload},
	} {
		if !reflect.DeepEqual(f.a, f.b) {
			t.Errorf("scale record %s diverges: %v vs %v", f.name, f.a, f.b)
		}
	}
	if batch.Record.Delivery != "batch" || boxed.Record.Delivery != "boxed" {
		t.Errorf("deliveries recorded as %q/%q", batch.Record.Delivery, boxed.Record.Delivery)
	}
	if batch.Record.Mallocs == 0 || boxed.Record.Mallocs == 0 {
		t.Error("scale records missing allocation accounting")
	}
	// The typed word-I/O plane must keep the batch run GC-quiet: even at
	// this small n (where fixed per-run costs are amortized over few
	// vertices) the word path stays ~2 orders of magnitude below the
	// boxed plane's ~70 allocs/vertex. A loose factor-10 bound catches
	// any reintroduced per-vertex boxing without flaking on runtime
	// noise.
	if batch.Record.AllocsPerVertex <= 0 || boxed.Record.AllocsPerVertex <= 0 {
		t.Error("scale records missing allocs_per_vertex")
	}
	budget := boxed.Record.AllocsPerVertex / 10
	if raceEnabled {
		// The race runtime deliberately drops sync.Pool puts, so the
		// pooled per-step scratch of the word plane re-allocates a few
		// times per vertex regardless of boxing; bound it absolutely.
		budget = 10
	}
	if batch.Record.AllocsPerVertex > budget {
		t.Errorf("typed plane allocates %.2f allocs/vertex (budget %.2f, boxed %.2f) - word I/O regressed",
			batch.Record.AllocsPerVertex, budget, boxed.Record.AllocsPerVertex)
	}
}

// TestScaleRunWorkerCountsAgree pins the determinism contract of the
// worker knob: the same scale instance run sequentially, with a pinned
// 4-worker pool, and with the auto heuristic must produce bit-for-bit
// identical colorings and counters - the property the -scale-procs
// speedup sweep relies on to make its curve comparable point to point.
func TestScaleRunWorkerCountsAgree(t *testing.T) {
	base := ScaleOptions{N: 3000, Arboricity: 6, P: 4, Seed: 11, Dir: t.TempDir()}
	var first *ScaleResult
	for _, w := range []int{1, 4, 0} {
		opt := base
		opt.Workers = w
		res, err := ScaleRun(opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !res.Record.OK {
			t.Fatalf("workers=%d: illegal coloring: %s", w, res.Record.Note)
		}
		if w > 0 && res.Record.Workers != w {
			t.Errorf("workers=%d recorded as %d", w, res.Record.Workers)
		}
		if res.Record.GoMaxProcs < 1 {
			t.Errorf("workers=%d: gomaxprocs %d not recorded", w, res.Record.GoMaxProcs)
		}
		if first == nil {
			first = res
			continue
		}
		if !reflect.DeepEqual(res.Colors, first.Colors) {
			t.Errorf("workers=%d: colors diverge from workers=1", w)
		}
		if res.Record.Rounds != first.Record.Rounds || res.Record.Messages != first.Record.Messages {
			t.Errorf("workers=%d: rounds/messages diverge: %d/%d vs %d/%d",
				w, res.Record.Rounds, res.Record.Messages, first.Record.Rounds, first.Record.Messages)
		}
	}
}

// TestScaleSweepMatchesScaleRun pins the sweep harness to the plain
// run: ScaleSweep prepares the instance once and reuses it across
// points, which must not change the instance - every point has to
// reproduce a plain ScaleRun with the same options bit for bit.
func TestScaleSweepMatchesScaleRun(t *testing.T) {
	base := ScaleOptions{N: 2500, Arboricity: 6, P: 4, Seed: 21, Dir: t.TempDir()}
	plain, err := ScaleRun(base)
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := ScaleSweep(base, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 2 {
		t.Fatalf("sweep returned %d results, want 2", len(sweep))
	}
	for _, res := range sweep {
		if !reflect.DeepEqual(res.Colors, plain.Colors) {
			t.Errorf("workers=%d: sweep coloring diverges from plain ScaleRun", res.Record.Workers)
		}
		if res.Record.Rounds != plain.Record.Rounds || res.Record.Messages != plain.Record.Messages {
			t.Errorf("workers=%d: rounds/messages diverge: %d/%d vs %d/%d", res.Record.Workers,
				res.Record.Rounds, res.Record.Messages, plain.Record.Rounds, plain.Record.Messages)
		}
	}
	if sweep[0].Record.GoMaxProcs != 1 || sweep[1].Record.GoMaxProcs != 2 {
		t.Errorf("sweep gomaxprocs recorded as %d,%d, want 1,2",
			sweep[0].Record.GoMaxProcs, sweep[1].Record.GoMaxProcs)
	}
}

// TestScaleShardSweepMatchesScaleRun pins the shard-count curve to the
// flat harness: every point of a ScaleShardSweep (flat baseline at
// count 1, shard-structured engine above it, including a sharded run
// through ScaleRun's streaming-load path) must reproduce the plain
// flat ScaleRun bit for bit, and records must carry the shard count.
func TestScaleShardSweepMatchesScaleRun(t *testing.T) {
	base := ScaleOptions{N: 2500, Arboricity: 6, P: 4, Seed: 21, Dir: t.TempDir()}
	plain, err := ScaleRun(base)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Record.Shards != 0 {
		t.Errorf("flat run recorded shards=%d, want omitted (0)", plain.Record.Shards)
	}
	counts := []int{1, 2, 4, graph.AutoSharding(base.N).NumShards()}
	sweep, err := ScaleShardSweep(base, counts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != len(counts) {
		t.Fatalf("sweep returned %d results, want %d", len(sweep), len(counts))
	}
	for i, res := range sweep {
		if res.Record.Shards != counts[i] {
			t.Errorf("point %d recorded shards=%d, want %d", i, res.Record.Shards, counts[i])
		}
		if !reflect.DeepEqual(res.Colors, plain.Colors) {
			t.Errorf("shards=%d: sweep coloring diverges from plain ScaleRun", counts[i])
		}
		if res.Record.Rounds != plain.Record.Rounds || res.Record.Messages != plain.Record.Messages {
			t.Errorf("shards=%d: rounds/messages diverge: %d/%d vs %d/%d", counts[i],
				res.Record.Rounds, res.Record.Messages, plain.Record.Rounds, plain.Record.Messages)
		}
	}

	// A sharded ScaleRun takes the streaming per-shard load path for the
	// generated binary and must still match the flat run exactly.
	shardedOpt := base
	shardedOpt.Shards = 3
	sharded, err := ScaleRun(shardedOpt)
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Record.Shards != 3 {
		t.Errorf("sharded run recorded shards=%d, want 3", sharded.Record.Shards)
	}
	if !reflect.DeepEqual(sharded.Colors, plain.Colors) ||
		sharded.Record.Rounds != plain.Record.Rounds ||
		sharded.Record.Messages != plain.Record.Messages {
		t.Errorf("sharded ScaleRun diverges from flat (rounds/messages %d/%d vs %d/%d)",
			sharded.Record.Rounds, sharded.Record.Messages, plain.Record.Rounds, plain.Record.Messages)
	}
}

// TestScaleRunFromPrebuiltGraph exercises the -graph path of the scale
// harness against a graphgen-style binary file.
func TestScaleRunFromPrebuiltGraph(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pre.bin")
	s := Sizes{N: 2500, Seed: 5}
	g, _ := s.forestNet(4, 77)
	writeBinaryFile(t, g, path)

	res, err := ScaleRun(ScaleOptions{GraphPath: path, Arboricity: 4, P: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Record.OK {
		t.Errorf("prebuilt scale run not legal: %+v", res.Record)
	}
	if res.Record.N != g.N() {
		t.Errorf("recorded n=%d, want %d", res.Record.N, g.N())
	}
}

func writeBinaryFile(t *testing.T, g *graph.Graph, path string) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
