package experiments

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
)

func TestListCoversSuiteInOrder(t *testing.T) {
	suite := List()
	if len(suite) != 22 {
		t.Fatalf("suite has %d experiments, want 22", len(suite))
	}
	for i, e := range suite {
		want := "E" + string(rune('0'+(i+1)/10)) + string(rune('0'+(i+1)%10))
		if e.ID != want {
			t.Errorf("suite[%d].ID = %s, want %s", i, e.ID, want)
		}
		if e.Fn == nil {
			t.Errorf("suite[%d] (%s) has nil runner", i, e.ID)
		}
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	s := Sizes{N: 300, Seed: 9}
	rows, err := E04Linial(s)
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	for _, r := range rows {
		recs = append(recs, NewRecord(r, 12.5, s))
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, recs); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	i := 0
	for sc.Scan() {
		var got Record
		if err := json.Unmarshal(sc.Bytes(), &got); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if got != recs[i] {
			t.Errorf("line %d: %+v round-tripped to %+v", i, recs[i], got)
		}
		if got.Exp != "E04" || got.N != 300 || got.Seed != 9 || got.WallMS != 12.5 {
			t.Errorf("line %d: unexpected envelope fields %+v", i, got)
		}
		if got.Messages <= 0 && got.Rounds > 0 {
			t.Errorf("line %d: rounds %d with no messages recorded", i, got.Rounds)
		}
		i++
	}
	if i != len(recs) {
		t.Fatalf("decoded %d records, want %d (one JSON object per line)", i, len(recs))
	}
}
