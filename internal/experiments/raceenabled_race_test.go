//go:build race

package experiments

// raceEnabled reports that this test binary runs under the race
// detector, whose runtime deliberately drops sync.Pool puts - putting an
// allocation floor under the pooled word-plane scratch that has nothing
// to do with per-vertex boxing. Allocation-ratio assertions switch to
// absolute budgets when it is set.
const raceEnabled = true
