package experiments

import (
	"fmt"

	"repro/internal/arbdefect"
	"repro/internal/baseline"
	"repro/internal/dist"
	"repro/internal/forest"
	"repro/internal/graph"
	"repro/internal/orient"
)

// Ablation experiments for the design choices DESIGN.md calls out.

// E20AblationOrientation isolates the paper's Section 3 design choice:
// Corollary 3.4 (Simple-Arbdefective on a COMPLETE orientation, O(a log n)
// rounds because the orientation is long) versus Corollary 3.6 (the same
// coloring on Theorem 3.5's PARTIAL orientation, O(t^2 log n) rounds).
// The partial orientation trades a small deficit for a much shorter
// longest directed path - the heart of the paper's speedup.
func E20AblationOrientation(s Sizes) ([]Row, error) {
	var rows []Row
	a, k := 8, 4
	for _, variant := range []string{"complete(Cor3.4)", "partial(Cor3.6)"} {
		g, net := s.forestNet(a, 1900)
		var (
			sigma  *graph.Orientation
			rounds int
			msgs   int64
		)
		if variant == "complete(Cor3.4)" {
			co, err := orient.Complete(net, a, forest.DefaultEps, orient.LevelDeltaPlusOne, nil, nil)
			if err != nil {
				return nil, err
			}
			sigma, rounds, msgs = co.Sigma, co.Tally.Rounds(), co.Tally.Messages()
		} else {
			po, err := orient.Partial(net, a, k, forest.DefaultEps, nil, nil)
			if err != nil {
				return nil, err
			}
			sigma, rounds, msgs = po.Sigma, po.Tally.Rounds(), po.Tally.Messages()
		}
		sr, err := arbdefect.Simple(net, sigma, k, nil, nil)
		if err != nil {
			return nil, err
		}
		witnessOK := g.CheckArbdefectWitness(sr.Colors, sigma, sr.Bound) == nil
		st := orient.MeasureWithin(sigma, nil, nil)
		rows = append(rows, Row{
			Exp: "E20", Workload: fmt.Sprintf("forest-union n=%d a=%d", g.N(), a),
			Params: variant, Colors: graph.NumColors(sr.Colors),
			Rounds:   rounds + sr.Rounds,
			Messages: msgs + sr.Messages,
			Measured: float64(st.Length),
			Metric:   "orient-length", OK: witnessOK,
			Note: fmt.Sprintf("arbdefect<=%d deficit=%d", sr.Bound, st.Deficit),
		})
	}
	return rows, nil
}

// E21LinialReduction demonstrates the classical reduction of Section 1.1:
// an MIS algorithm yields a (Delta+1)-coloring on the product graph
// G x K_{Delta+1} within the MIS running time.
func E21LinialReduction(s Sizes) ([]Row, error) {
	var rows []Row
	rng := s.rng(2000)
	g := graph.RandomRegularish(s.N/4, 6, rng)
	res, err := baseline.LinialReductionColoring(g, s.Seed)
	if err != nil {
		return nil, err
	}
	delta := g.MaxDegree()
	ok := g.CheckLegalColoring(res.Colors) == nil && graph.MaxColor(res.Colors) <= delta
	rows = append(rows, Row{
		Exp: "E21", Workload: fmt.Sprintf("regular n=%d Delta=%d", g.N(), delta),
		Params: "MIS->(D+1) via product", Colors: graph.NumColors(res.Colors),
		Rounds:   res.Rounds,
		Messages: res.Messages,
		Measured: float64(graph.MaxColor(res.Colors) + 1), Bound: float64(delta + 1),
		Metric: "colors vs Delta+1", OK: ok,
		Note: fmt.Sprintf("product size=%d", g.N()*(delta+1)),
	})
	return rows, nil
}

// E22IDRobustness checks that the deterministic pipeline's guarantees are
// independent of the identifier assignment: canonical versus adversarially
// permuted IDs must both satisfy every bound (colors may differ; bounds
// may not).
func E22IDRobustness(s Sizes) ([]Row, error) {
	var rows []Row
	a := 8
	for _, perm := range []bool{false, true} {
		rng := s.rng(2100)
		g := graph.ForestUnion(s.N, a, rng)
		var net *dist.Network
		name := "canonical-ids"
		if perm {
			net = dist.NewNetworkPermuted(g, rng)
			name = "permuted-ids"
		} else {
			net = dist.NewNetwork(g)
		}
		res, err := coreLegal(net, a)
		if err != nil {
			return nil, err
		}
		ok := g.CheckLegalColoring(res.colors) == nil
		rows = append(rows, Row{
			Exp: "E22", Workload: fmt.Sprintf("forest-union n=%d a=%d", g.N(), a),
			Params: name, Colors: graph.NumColors(res.colors), Rounds: res.rounds, Messages: res.messages,
			Measured: float64(graph.NumColors(res.colors)), Bound: float64(20 * a),
			Metric: "colors vs 20a", OK: ok && graph.NumColors(res.colors) <= 20*a,
		})
	}
	return rows, nil
}
