package experiments

import (
	"testing"

	"repro/internal/arbdefect"
	"repro/internal/dist"
	"repro/internal/forest"
	"repro/internal/graph"
	"repro/internal/recolor"
)

// The shard-structured engine must reproduce the seed goldens bit for
// bit at every shard count: sharding only relocates message words into
// shard-local columns, it never changes what is delivered. Each golden
// workload below reruns under 2, 4 and the auto shard count and is
// checked against the exact same hashes/rounds/messages as the flat
// golden tests.

// shardGoldenCounts returns the shard counts every golden workload is
// replayed under.
func shardGoldenCounts(t *testing.T, n int) []graph.Sharding {
	t.Helper()
	var out []graph.Sharding
	for _, k := range []int{2, 4} {
		sh, err := graph.NewSharding(n, k)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, sh)
	}
	return append(out, graph.AutoSharding(n))
}

func TestGoldenE04LinialShardedBitForBit(t *testing.T) {
	s := Sizes{N: 1000, Seed: 1}
	for _, want := range goldenE04 {
		for _, sh := range shardGoldenCounts(t, s.N) {
			// Re-deriving graph and permutation per shard count replays the
			// exact rng stream of the flat golden test.
			rng := s.rng(300 + int64(want.param))
			g := graph.RandomRegularish(s.N, want.param, rng)
			net, err := dist.NewNetworkPermuted(g, rng).Sharded(sh)
			if err != nil {
				t.Fatal(err)
			}
			res, err := recolor.Linial(net)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, "E04/sharded", want, res.Colors, res.Rounds, res.Messages)
		}
	}
}

func TestGoldenE05DefectiveShardedBitForBit(t *testing.T) {
	s := Sizes{N: 1000, Seed: 1}
	for _, want := range goldenE05 {
		for _, sh := range shardGoldenCounts(t, s.N) {
			rng := s.rng(400 + int64(want.param))
			g := graph.RandomRegularish(s.N, 24, rng)
			net, err := dist.NewNetworkPermuted(g, rng).Sharded(sh)
			if err != nil {
				t.Fatal(err)
			}
			res, err := recolor.Defective(net, want.param)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, "E05/sharded", want, res.Colors, res.Rounds, res.Messages)
		}
	}
}

func TestGoldenE14ArbKuhnShardedBitForBit(t *testing.T) {
	s := Sizes{N: 1000, Seed: 1}
	for _, want := range goldenE14 {
		for _, sh := range shardGoldenCounts(t, s.N) {
			_, net := s.forestNet(16, 1300+int64(want.param))
			net, err := net.Sharded(sh)
			if err != nil {
				t.Fatal(err)
			}
			res, err := arbdefect.Kuhn(net, 16, want.param, forest.DefaultEps)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, "E14/sharded", want, res.Colors, res.Tally.Rounds(), res.Tally.Messages())
		}
	}
}
