// Package deltacolor implements deterministic (Delta+1)-coloring in time
// linear in Delta (plus polylog terms), reproducing the algorithms of
// Barenboim-Elkin STOC'09 [5] and Kuhn SPAA'09 [17] that the paper uses as
// a subroutine (Procedure Complete-Orientation, Lemma 3.3) and as a
// baseline.
//
// Structure (the defective-coloring recursion of [5, 17]):
//
//  1. Top-down: repeatedly split every current class with a
//     floor(d/2)-defective O(1)-coloring (Lemma 2.1); after each split the
//     intra-class degree bound halves. Stop at degree <= 3.
//  2. Base: color the final classes legally with Linial and reduce each to
//     (d_base+1) colors with the Kuhn-Wattenhofer reduction.
//  3. Bottom-up: merge sibling classes with disjoint palettes and reduce
//     the merged coloring back to (d+1) colors at each level.
//
// Total rounds: O(Delta) for the reductions (geometric series) plus
// O(log* n * log Delta) for the defective splits - the paper's
// O(Delta + log* n) up to the documented log-factor (DESIGN.md,
// substitution 1).
//
// The recursion runs "in parallel on all classes" via label-filtered views;
// labels are compacted centrally between phases, which is pure simulation
// bookkeeping (nodes would compare label vectors locally; see DESIGN.md).
package deltacolor

import (
	"fmt"
	"time"

	"repro/internal/dist"
	"repro/internal/recolor"
	"repro/internal/reduce"
)

// baseDegree is the degree bound at which the top-down recursion stops and
// Linial takes over.
const baseDegree = 3

// Result reports a (Delta+1)-coloring run.
type Result struct {
	Colors []int
	// Palette is the number of colors used (= degBound+1).
	Palette int
	Tally   *dist.Tally
}

// ColorDeltaPlusOne colors the graph legally with maxDegree+1 colors.
func ColorDeltaPlusOne(net *dist.Network) (*Result, error) {
	return ColorWithin(net, nil, nil, net.Graph().MaxDegree())
}

// NumLevels returns the number of top-down defective refinement levels
// of a ColorWithin run with the given degree bound - the halvings of d
// until the Linial base takes over.
func NumLevels(degBound int) int {
	levels := 0
	for d := degBound; d > baseDegree; d /= 2 {
		levels++
	}
	return levels
}

// ColorWithin colors every class of baseLabels (restricted to active
// vertices, both may be nil) legally with degBound+1 colors, where
// degBound bounds the visible degree of every vertex within its class.
// All classes run in parallel; color values lie in [0, degBound+1).
//
// The central bookkeeping between phases - label compaction, palette
// merges, reduction scratch - runs on buffers reused across all levels
// (one backing allocation holds every per-level snapshot), so the
// orchestration cost is O(levels * n) work with O(1) allocations per
// level; BenchmarkDeltaColorBookkeeping quantifies it.
func ColorWithin(net *dist.Network, baseLabels []int, active []bool, degBound int) (*Result, error) {
	g := net.Graph()
	n := g.N()
	if degBound < 0 {
		return nil, fmt.Errorf("deltacolor: negative degree bound %d", degBound)
	}
	var tally dist.Tally

	labels := make([]int, n)
	if baseLabels != nil {
		copy(labels, baseLabels)
	}

	// Top-down defective refinement. The per-level snapshots (the split
	// coloring and the labels it refined) are retained until the
	// bottom-up merges, so they cannot be reused across levels - but they
	// can share one backing array sized by the known level count.
	type level struct {
		classColor []int // per-vertex defective color at this level
		numClasses int   // S_i: classes each parent class splits into
		dBefore    int   // intra-class degree bound before the split
		dAfter     int   // intra-class degree bound after the split
		labels     []int // compacted labels BEFORE this split
	}
	numLevels := NumLevels(degBound)
	backing := make([]int, 2*numLevels*n)
	takeSnapshot := func() []int {
		s := backing[:n:n]
		backing = backing[n:]
		return s
	}
	levels := make([]level, 0, numLevels)
	composeIDs := make(map[[2]int]int, n)
	d := degBound
	for d > baseDegree {
		target := d / 2
		plan := recolor.Plan(n, d, target)
		classColor := takeSnapshot()
		p := recolor.Params{Color: -1, M0: n, DegBound: d, TargetDefect: target}
		net.Probe().SetPhase(fmt.Sprintf("deltacolor/defective(d=%d)", d))
		st, err := recolor.RunUniform(net, p, nil, labels, active, classColor)
		if err != nil {
			return nil, fmt.Errorf("deltacolor: defective split at d=%d: %w", d, err)
		}
		tally.AddStats(fmt.Sprintf("defective(d=%d)", d), st)
		lvLabels := takeSnapshot()
		copy(lvLabels, labels)
		levels = append(levels, level{
			classColor: classColor,
			numClasses: plan.FinalColors(),
			dBefore:    d,
			dAfter:     target,
			labels:     lvLabels,
		})
		dist.ComposeLabelsInto(labels, labels, classColor, composeIDs)
		d = target
	}

	// Base: Linial within the finest classes, then reduce to d+1 colors.
	basePlan := recolor.Plan(n, d, 0)
	colors := make([]int, n)
	p := recolor.Params{Color: -1, M0: n, DegBound: d, TargetDefect: 0}
	net.Probe().SetPhase("deltacolor/base-linial")
	st, err := recolor.RunUniform(net, p, nil, labels, active, colors)
	if err != nil {
		return nil, fmt.Errorf("deltacolor: base Linial: %w", err)
	}
	tally.AddStats("base-linial", st)

	var rpool reduce.Pool
	m := basePlan.FinalColors()
	net.Probe().SetPhase("deltacolor/base-reduce")
	st, err = reduce.KWPooled(net, colors, m, d+1, labels, active, &rpool, colors)
	if err != nil {
		return nil, fmt.Errorf("deltacolor: base reduction: %w", err)
	}
	tally.AddStats("base-reduce", st)
	palette := d + 1

	// Bottom-up merges: disjoint palettes per sibling class, then reduce
	// within the parent class. merged and the reduction pool are reused
	// across levels; the palette-merge sweep runs on the network's
	// worker pool.
	merged := make([]int, n)
	workers := net.SweepWorkers(n)
	for i := len(levels) - 1; i >= 0; i-- {
		lv := levels[i]
		net.Probe().SetPhase(fmt.Sprintf("deltacolor/merge(d=%d)", lv.dBefore))
		mergeStart := time.Now() //distvet:wallclock merge-phase wall attribution for the tally; wall figures are documented non-deterministic
		dist.ParallelFor(n, workers, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				merged[v] = lv.classColor[v]*palette + colors[v]
			}
		})
		m := lv.numClasses * palette
		target := lv.dBefore + 1
		st, err := reduce.KWPooled(net, merged, m, target, lv.labels, active, &rpool, colors)
		if err != nil {
			return nil, fmt.Errorf("deltacolor: merge at d=%d: %w", lv.dBefore, err)
		}
		palette = target
		// The merge phase's wall includes the central palette-merge sweep,
		// which precedes the reduction but belongs to this phase.
		st.Wall = time.Since(mergeStart) //distvet:wallclock same merge-phase wall attribution
		tally.AddStats(fmt.Sprintf("merge(d=%d)", lv.dBefore), st)
	}

	return &Result{Colors: colors, Palette: palette, Tally: &tally}, nil
}

// RoundsUpperBound estimates the round cost of ColorWithin for reporting:
// the defective splits cost O(log* n) each, the reductions a geometric
// series in degBound.
func RoundsUpperBound(n, degBound int) int {
	total := 0
	d := degBound
	for d > baseDegree {
		target := d / 2
		plan := recolor.Plan(n, d, target)
		total += plan.Rounds()
		total += reduce.Rounds(plan.FinalColors()*(target+1), d+1)
		d = target
	}
	base := recolor.Plan(n, d, 0)
	total += base.Rounds() + reduce.Rounds(base.FinalColors(), d+1)
	return total
}
