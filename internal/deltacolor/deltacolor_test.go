package deltacolor

import (
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
)

func TestColorDeltaPlusOneRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(400))
	for _, tc := range []struct {
		n int
		p float64
	}{
		{120, 0.03}, {120, 0.1}, {200, 0.05},
	} {
		g := graph.Gnp(tc.n, tc.p, rng)
		net := dist.NewNetworkPermuted(g, rng)
		res, err := ColorDeltaPlusOne(net)
		if err != nil {
			t.Fatalf("n=%d p=%v: %v", tc.n, tc.p, err)
		}
		if err := g.CheckLegalColoring(res.Colors); err != nil {
			t.Fatalf("n=%d p=%v: %v", tc.n, tc.p, err)
		}
		delta := g.MaxDegree()
		if mc := graph.MaxColor(res.Colors); mc > delta {
			t.Errorf("n=%d p=%v: max color %d > Delta=%d", tc.n, tc.p, mc, delta)
		}
		if res.Palette != delta+1 {
			t.Errorf("palette %d != Delta+1 = %d", res.Palette, delta+1)
		}
	}
}

func TestColorDeltaPlusOneStructured(t *testing.T) {
	cyc, err := graph.Cycle(33)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]*graph.Graph{
		"path":     graph.Path(50),
		"cycle":    cyc,
		"star":     graph.Star(40),
		"complete": graph.Complete(10),
		"grid":     graph.Grid(7, 9),
		"empty":    graph.NewBuilder(8).Build(),
		"single":   graph.NewBuilder(1).Build(),
	}
	for name, g := range cases {
		net := dist.NewNetwork(g)
		res, err := ColorDeltaPlusOne(net)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := g.CheckLegalColoring(res.Colors); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if mc := graph.MaxColor(res.Colors); mc > g.MaxDegree() {
			t.Errorf("%s: max color %d > Delta=%d", name, mc, g.MaxDegree())
		}
	}
}

func TestColorDeltaPlusOneRoundsLinearInDelta(t *testing.T) {
	// The round count must scale roughly linearly with Delta, not with n:
	// measure at fixed n with growing Delta and compare against the
	// estimate; also ensure it stays far below n.
	rng := rand.New(rand.NewSource(401))
	n := 400
	for _, d := range []int{4, 8, 16, 32} {
		g := graph.RandomRegularish(n, d, rng)
		net := dist.NewNetworkPermuted(g, rng)
		res, err := ColorDeltaPlusOne(net)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.CheckLegalColoring(res.Colors); err != nil {
			t.Fatal(err)
		}
		delta := g.MaxDegree()
		est := RoundsUpperBound(n, delta)
		got := res.Tally.Rounds()
		if got > est+4 {
			t.Errorf("d=%d: rounds %d > estimate %d", d, got, est)
		}
	}
}

func TestColorDeltaPlusOneRoundsIndependentOfN(t *testing.T) {
	// At fixed Delta, doubling n must leave the round count essentially
	// unchanged (the dependence on n is only through log* n).
	rng := rand.New(rand.NewSource(403))
	rounds := make(map[int]int)
	for _, n := range []int{200, 800} {
		g := graph.RandomRegularish(n, 12, rng)
		net := dist.NewNetworkPermuted(g, rng)
		res, err := ColorDeltaPlusOne(net)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.CheckLegalColoring(res.Colors); err != nil {
			t.Fatal(err)
		}
		rounds[n] = res.Tally.Rounds()
	}
	if rounds[800] > rounds[200]+rounds[200]/2+8 {
		t.Errorf("rounds grew with n: %v", rounds)
	}
}

func TestColorWithinLabels(t *testing.T) {
	// Color two label classes in parallel; each class legal with its own
	// degree bound, cross-class edges unconstrained.
	rng := rand.New(rand.NewSource(402))
	g := graph.Gnp(150, 0.06, rng)
	labels := make([]int, g.N())
	for v := range labels {
		labels[v] = v % 3
	}
	degBound := 0
	for v := 0; v < g.N(); v++ {
		if d := len(dist.VisiblePorts(g, labels, nil, v)); d > degBound {
			degBound = d
		}
	}
	net := dist.NewNetwork(g)
	res, err := ColorWithin(net, labels, nil, degBound)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if res.Colors[v] < 0 || res.Colors[v] > degBound {
			t.Fatalf("vertex %d color %d outside palette", v, res.Colors[v])
		}
		for _, u := range g.Neighbors(v) {
			if labels[u] == labels[v] && res.Colors[u] == res.Colors[v] {
				t.Fatalf("intra-label edge (%d,%d) monochromatic", v, u)
			}
		}
	}
}

func TestColorWithinRejectsNegativeBound(t *testing.T) {
	net := dist.NewNetwork(graph.Path(3))
	if _, err := ColorWithin(net, nil, nil, -1); err == nil {
		t.Error("negative degree bound accepted")
	}
}

func TestCompactLabels(t *testing.T) {
	labels := []int{0, 0, 1, 1, 0}
	refine := []int{5, 5, 5, 7, 9}
	out := dist.ComposeLabels(labels, refine)
	// (0,5)->(0,5) same; (1,5) differs; (1,7) differs; (0,9) differs.
	if out[0] != out[1] {
		t.Error("identical pairs mapped differently")
	}
	distinct := map[int]bool{}
	for _, x := range out {
		distinct[x] = true
	}
	if len(distinct) != 4 {
		t.Errorf("expected 4 classes, got %d", len(distinct))
	}
}

func TestRoundsUpperBoundMonotone(t *testing.T) {
	prev := 0
	for _, d := range []int{4, 8, 16, 32, 64, 128} {
		est := RoundsUpperBound(10000, d)
		if est < prev/2 {
			t.Errorf("estimate dropped sharply at d=%d: %d after %d", d, est, prev)
		}
		prev = est
	}
}
