package deltacolor

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
)

// TestColorWithinWordShadowsBoxed pins the whole (Delta+1)-coloring
// recursion - defective splits, label compaction, base reduction,
// bottom-up merges - bit-for-bit across the typed word plane and the
// boxed fallback, including under base labels and an active mask.
func TestColorWithinWordShadowsBoxed(t *testing.T) {
	rng := rand.New(rand.NewSource(420))
	g := graph.Gnp(220, 0.06, rng)
	base := dist.NewNetworkPermuted(g, rand.New(rand.NewSource(421)))
	labels := make([]int, g.N())
	active := make([]bool, g.N())
	for v := range labels {
		labels[v] = rng.Intn(2)
		active[v] = rng.Intn(9) > 0
	}
	degBound := 0
	for v := 0; v < g.N(); v++ {
		if !active[v] {
			continue
		}
		d := 0
		for _, u := range g.Neighbors(v) {
			if labels[u] == labels[v] && active[u] {
				d++
			}
		}
		if d > degBound {
			degBound = d
		}
	}
	run := func(d dist.Delivery) *Result {
		res, err := ColorWithin(base.WithDelivery(d), labels, active, degBound)
		if err != nil {
			t.Fatalf("delivery=%v: %v", d, err)
		}
		return res
	}
	word := run(dist.DeliveryBatch)
	boxed := run(dist.DeliveryBoxed)
	if !reflect.DeepEqual(word.Colors, boxed.Colors) || word.Palette != boxed.Palette {
		t.Fatal("word and boxed (Delta+1)-colorings diverge")
	}
	if word.Tally.Rounds() != boxed.Tally.Rounds() || word.Tally.Messages() != boxed.Tally.Messages() {
		t.Fatalf("tallies diverged: word %d/%d boxed %d/%d",
			word.Tally.Rounds(), word.Tally.Messages(), boxed.Tally.Rounds(), boxed.Tally.Messages())
	}
}

// BenchmarkDeltaColorBookkeeping measures the central simulation
// bookkeeping of ColorWithin at large n in isolation: the per-level
// label compaction (ComposeLabelsInto), the palette-merge arithmetic and
// the reduction-scratch layout pass - everything the orchestrator does
// between vertex-program runs, as it is actually executed (reused
// buffers, one backing allocation for the snapshots). This closes the
// ROADMAP question of whether the documented central compaction
// dominates at scale: the reported ns/op spans all NumLevels(degBound)
// levels of an n-vertex instance, so ns/op / n / levels is the per-
// vertex-level bookkeeping cost to compare against the vertex-program
// cost of the same levels.
func BenchmarkDeltaColorBookkeeping(b *testing.B) {
	const (
		n        = 1 << 20
		degBound = 64
	)
	rng := rand.New(rand.NewSource(430))
	numLevels := NumLevels(degBound)
	// Synthetic per-level split colorings with realistic class counts
	// (a defective split produces O(1) classes per parent class).
	splits := make([][]int, numLevels)
	for i := range splits {
		splits[i] = make([]int, n)
		for v := range splits[i] {
			splits[i][v] = rng.Intn(9)
		}
	}
	colors := make([]int, n)
	for v := range colors {
		colors[v] = rng.Intn(degBound + 1)
	}

	labels := make([]int, n)
	merged := make([]int, n)
	composeIDs := make(map[[2]int]int, n)
	backing := make([]int, 2*numLevels*n)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clear(labels)
		spare := backing
		palette := degBound + 1
		// Top-down: snapshot labels, compose with the split coloring.
		for _, classColor := range splits {
			snap := spare[:n:n]
			spare = spare[n:]
			copy(snap, labels)
			dist.ComposeLabelsInto(labels, labels, classColor, composeIDs)
		}
		// Bottom-up: the palette-merge arithmetic before each reduction.
		for lv := numLevels - 1; lv >= 0; lv-- {
			classColor := splits[lv]
			for v := 0; v < n; v++ {
				merged[v] = classColor[v]*palette + colors[v]
			}
			palette += 2
		}
	}
}
