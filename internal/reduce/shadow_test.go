package reduce

import (
	"reflect"
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
)

// TestKWBatchShadowsBoxed pins transport equivalence for the reduction:
// the fold/renumber schedule is round-sensitive (a message received one
// round late recolors against a stale table), so identical Results across
// transports exercise delivery timing, silence and halting sends.
func TestKWBatchShadowsBoxed(t *testing.T) {
	g := graph.Grid(12, 9)
	colors := make([]int, g.N())
	for v := range colors {
		colors[v] = v // trivial legal n-coloring
	}
	run := func(d dist.Delivery) *Result {
		t.Helper()
		net := dist.NewNetwork(g).WithDelivery(d)
		res, err := KW(net, colors, g.N(), 5, nil, nil)
		if err != nil {
			t.Fatalf("delivery=%v: %v", d, err)
		}
		if err := g.CheckLegalColoring(res.Colors); err != nil {
			t.Fatalf("delivery=%v: %v", d, err)
		}
		return res
	}
	boxed := run(dist.DeliveryBoxed)
	batch := run(dist.DeliveryBatch)
	boxed.Wall, batch.Wall = 0, 0 // host wall time, not deterministic
	if !reflect.DeepEqual(boxed, batch) {
		t.Fatalf("transports diverged: boxed rounds=%d messages=%d, batch rounds=%d messages=%d",
			boxed.Rounds, boxed.Messages, batch.Rounds, batch.Messages)
	}
}
