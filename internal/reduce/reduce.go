// Package reduce implements batched color reduction in the style of
// Kuhn-Wattenhofer: a legal m-coloring of a graph with maximum degree
// Delta < t is transformed into a legal t-coloring in O(t * log(m/t))
// rounds, by splitting the color space into groups of 2t colors, folding
// the upper half of each group into the lower half one color class at a
// time (a color class is an independent set, so it recolors in a single
// round), and renumbering between phases. This is the standard reduction
// used by the linear-in-Delta coloring algorithms [5, 17] that the paper
// builds on.
package reduce

import (
	"fmt"

	"repro/internal/dist"
)

// Input is the per-node input: the node's current color and the globally
// known parameters (m, t). All nodes of a labelled class must agree on m
// and t so the phase plan is derived identically everywhere.
type Input struct {
	Color  int
	M      int // current number of colors (color values lie in [0, M))
	Target int // t: final palette size; must exceed every visible degree
}

// makePlan returns the number of fold rounds per phase derived from (m, t):
// each phase folds offsets [t, t+folds) of every 2t-sized group into the
// low half, then renumbers, roughly halving m.
func makePlan(m, t int) []int {
	var phases []int
	for m > t {
		span := 2 * t
		if m < span {
			span = m
		}
		phases = append(phases, span-t)
		m = (m + 2*t - 1) / (2 * t) * t
	}
	return phases
}

// Rounds returns the total communication rounds the reduction costs,
// including the initial neighbor-color exchange.
func Rounds(m, t int) int {
	if m <= t {
		return 0
	}
	total := 1
	for _, f := range makePlan(m, t) {
		total += f
	}
	return total
}

type state struct {
	color     int
	nbrColors []int // current neighbor colors by port (-1 unknown)
	phases    []int
	phase     int
	fold      int // folds completed within the current phase
}

// Algo is the dist.Algorithm performing the reduction. It also
// implements dist.FixedWidthAlgorithm (messages are single colors), so
// runs use the columnar batch transport by default.
type Algo struct{}

// MessageWords implements dist.FixedWidthAlgorithm.
func (Algo) MessageWords() int { return 1 }

func (Algo) Init(n *dist.Node) {
	if c, announce := reduceInit(n); announce {
		n.SendAll(c)
	}
}

// InitWords is Init on the batch transport.
func (Algo) InitWords(n *dist.Node) {
	if c, announce := reduceInit(n); announce {
		n.SendAllWord(int64(c))
	}
}

func reduceInit(n *dist.Node) (int, bool) {
	in, ok := n.Input.(Input)
	if !ok {
		n.Output = fmt.Errorf("reduce: bad input %T", n.Input)
		n.Halt()
		return 0, false
	}
	if in.M <= in.Target {
		n.Output = in.Color
		n.Halt()
		return 0, false
	}
	st := &state{
		color:     in.Color,
		nbrColors: make([]int, n.Degree()),
		phases:    makePlan(in.M, in.Target),
	}
	for i := range st.nbrColors {
		st.nbrColors[i] = -1
	}
	n.State = st
	return st.color, true
}

func (Algo) Step(n *dist.Node, inbox []dist.Message) {
	in := n.Input.(Input)
	st := n.State.(*state)

	// Record neighbor color announcements (always in the numbering of the
	// current phase; see the send ordering below).
	for p, m := range inbox {
		if m != nil {
			st.nbrColors[p] = m.(int)
		}
	}
	if c, announce := reduceAdvance(n, in, st); announce {
		n.SendAll(c)
	}
}

// StepWords is Step on the batch transport.
func (Algo) StepWords(n *dist.Node, inbox dist.WordInbox) {
	in := n.Input.(Input)
	st := n.State.(*state)

	for p := 0; p < inbox.Ports(); p++ {
		if inbox.Has(p) {
			st.nbrColors[p] = int(inbox.Word(p))
		}
	}
	if c, announce := reduceAdvance(n, in, st); announce {
		n.SendAllWord(int64(c))
	}
}

// reduceAdvance runs the transport-independent fold/renumber round; when
// announce is true the caller broadcasts the node's recolored value.
func reduceAdvance(n *dist.Node, in Input, st *state) (int, bool) {
	t := in.Target
	if n.Round() == 1 {
		return 0, false // initial exchange round; folding starts next round
	}

	// Fold round: recolor the color class with in-group offset j.
	folds := st.phases[st.phase]
	j := t + folds - 1 - st.fold
	recolored := false
	if st.color%(2*t) == j {
		lo := st.color / (2 * t) * (2 * t)
		taken := make([]bool, t)
		for _, c := range st.nbrColors {
			if c >= lo && c < lo+t {
				taken[c-lo] = true
			}
		}
		newColor := -1
		for c := 0; c < t; c++ {
			if !taken[c] {
				newColor = lo + c
				break
			}
		}
		if newColor < 0 {
			n.Output = fmt.Errorf("reduce: no free color (visible degree exceeds target-1)")
			n.Halt()
			return 0, false
		}
		st.color = newColor
		recolored = true
	}

	st.fold++
	if st.fold == st.phases[st.phase] {
		// Phase complete: renumber c -> (c/2t)*t + (c mod 2t). All in-group
		// offsets are now < t, so the mapping is injective and every node
		// applies it locally to its own color and its neighbor table.
		renumber := func(c int) int {
			if c < 0 {
				return c
			}
			return c/(2*t)*t + c%(2*t)
		}
		st.color = renumber(st.color)
		for i, c := range st.nbrColors {
			st.nbrColors[i] = renumber(c)
		}
		st.phase++
		st.fold = 0
	}
	if st.phase == len(st.phases) {
		n.Output = st.color
		n.Halt()
	}
	// Announce (in the caller's transport) after any renumbering so
	// receivers, who renumber their tables in the same round, record a
	// consistently-numbered value. Halting sends are still delivered.
	return st.color, recolored
}

// Result reports a reduction run.
type Result struct {
	Colors   []int
	Rounds   int
	Messages int64
}

// KW reduces a legal m-coloring to a legal target-coloring within each
// label class (labels/active may be nil for the whole graph). target must
// exceed the maximum visible degree. Costs O(target * log(m/target))
// rounds.
func KW(net *dist.Network, colors []int, m, target int, labels []int, active []bool) (*Result, error) {
	g := net.Graph()
	n := g.N()
	if len(colors) != n {
		return nil, fmt.Errorf("reduce: %d colors for %d vertices", len(colors), n)
	}
	if target < 1 {
		return nil, fmt.Errorf("reduce: target %d < 1", target)
	}
	inputs := make([]any, n)
	for v := 0; v < n; v++ {
		inputs[v] = Input{Color: colors[v], M: m, Target: target}
	}
	res, err := net.Run(Algo{}, dist.RunOptions{Inputs: inputs, Labels: labels, Active: active})
	if err != nil {
		return nil, err
	}
	out := make([]int, n)
	for v, o := range res.Outputs {
		switch x := o.(type) {
		case int:
			out[v] = x
		case error:
			return nil, fmt.Errorf("reduce: vertex %d: %w", v, x)
		case nil:
			out[v] = 0
		default:
			return nil, fmt.Errorf("reduce: vertex %d unexpected output %T", v, o)
		}
	}
	return &Result{Colors: out, Rounds: res.Rounds, Messages: res.Messages}, nil
}
