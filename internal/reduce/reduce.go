// Package reduce implements batched color reduction in the style of
// Kuhn-Wattenhofer: a legal m-coloring of a graph with maximum degree
// Delta < t is transformed into a legal t-coloring in O(t * log(m/t))
// rounds, by splitting the color space into groups of 2t colors, folding
// the upper half of each group into the lower half one color class at a
// time (a color class is an independent set, so it recolors in a single
// round), and renumbering between phases. This is the standard reduction
// used by the linear-in-Delta coloring algorithms [5, 17] that the paper
// builds on.
package reduce

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/dist"
)

// Input is the per-node input of the boxed fallback plane: the node's
// current color and the globally known parameters (m, t). All nodes of a
// labelled class must agree on m and t so the phase plan is derived
// identically everywhere. The typed word plane carries (m, t) in the
// algorithm value instead and reads the color from the input column.
type Input struct {
	Color  int
	M      int // current number of colors (color values lie in [0, M))
	Target int // t: final palette size; must exceed every visible degree
}

// makePlan returns the number of fold rounds per phase derived from (m, t):
// each phase folds offsets [t, t+folds) of every 2t-sized group into the
// low half, then renumbers, roughly halving m.
func makePlan(m, t int) []int {
	var phases []int
	for m > t {
		span := 2 * t
		if m < span {
			span = m
		}
		phases = append(phases, span-t)
		m = (m + 2*t - 1) / (2 * t) * t
	}
	return phases
}

// Rounds returns the total communication rounds the reduction costs,
// including the initial neighbor-color exchange.
func Rounds(m, t int) int {
	if m <= t {
		return 0
	}
	total := 1
	for _, f := range makePlan(m, t) {
		total += f
	}
	return total
}

type state struct {
	color     int
	nbrColors []int // current neighbor colors by port (-1 unknown)
	phases    []int
	phase     int
	fold      int // folds completed within the current phase
}

// Algo is the vertex program performing the reduction.
//
// On the boxed []any plane the zero value is ready to use and reads
// per-vertex Input structs (the reference fallback). On the typed
// word-I/O plane, construct it with newWordAlgo: the phase plan is
// derived once and shared, each node's neighbor-color table is a slice
// of one flat caller-owned arena, and the fold/phase position is derived
// from the round number (all nodes run the plan in lockstep) - so the
// word path performs no per-vertex allocation. Word layout: the input
// column is one word per vertex (the initial color), the output column
// one word per vertex (the node's current - and finally legal - color).
type Algo struct {
	// M and Target are the uniform globally known parameters of the word
	// plane; the boxed fallback ignores them and reads Input structs.
	M, Target int

	// plan is makePlan(M, Target), shared read-only by all nodes.
	plan []int
	// nbrs is the flat neighbor-color arena; node v owns
	// nbrs[off[v]:off[v]+deg(v)], initialized to -1 by the orchestrator.
	nbrs []int
	off  []int32
	// pool recycles the transient taken-color scan buffer.
	pool *sync.Pool
}

// newWordAlgo prepares the word-I/O form for one run. nbrs/off is the
// per-port arena laid out by KWPooled.
func newWordAlgo(m, target int, nbrs []int, off []int32) Algo {
	return Algo{
		M: m, Target: target,
		plan: makePlan(m, target),
		nbrs: nbrs, off: off,
		pool: &sync.Pool{New: func() any { return new(takenScratch) }},
	}
}

type takenScratch struct{ taken []bool }

// MessageWords implements dist.FixedWidthAlgorithm.
func (Algo) MessageWords() int { return 1 }

// InputWidth implements dist.WordIOAlgorithm: one initial-color word
// per vertex.
func (Algo) InputWidth() int { return 1 }

// OutputWidth implements dist.WordIOAlgorithm: one color word per vertex.
func (Algo) OutputWidth() int { return 1 }

func (Algo) Init(n *dist.Node) {
	if c, announce := reduceInit(n); announce {
		n.SendAll(c)
	}
}

// InitWords is Init on the typed word plane.
//
//distvet:noalloc
func (a Algo) InitWords(n *dist.Node) {
	color := n.InputWords()[0]
	n.SetOutputWord(color)
	if a.M <= a.Target {
		n.Halt()
		return
	}
	n.SendAllWord(color)
}

func reduceInit(n *dist.Node) (int, bool) {
	in, ok := n.Input.(Input)
	if !ok {
		n.Failf("reduce: bad input %T", n.Input)
		return 0, false
	}
	if in.M <= in.Target {
		n.Output = in.Color
		n.Halt()
		return 0, false
	}
	st := &state{
		color:     in.Color,
		nbrColors: make([]int, n.Degree()),
		phases:    makePlan(in.M, in.Target),
	}
	for i := range st.nbrColors {
		st.nbrColors[i] = -1
	}
	n.State = st
	return st.color, true
}

func (Algo) Step(n *dist.Node, inbox []dist.Message) {
	in := n.Input.(Input)
	st := n.State.(*state)

	// Record neighbor color announcements (always in the numbering of the
	// current phase; see the send ordering below).
	for p, m := range inbox {
		if m != nil {
			st.nbrColors[p] = m.(int)
		}
	}
	if c, announce := reduceAdvance(n, in, st); announce {
		n.SendAll(c)
	}
}

// StepWords is Step on the typed word plane: the same fold/renumber
// schedule against the flat arena, with the (phase, fold) position
// derived from the round number instead of per-node counters.
//
//distvet:noalloc
func (a Algo) StepWords(n *dist.Node, inbox dist.WordInbox) {
	deg := n.Degree()
	o := int(a.off[n.Vertex()])
	nbr := a.nbrs[o : o+deg : o+deg]
	for p := 0; p < inbox.Ports(); p++ {
		if inbox.Has(p) {
			nbr[p] = int(inbox.Word(p))
		}
	}
	t := a.Target
	if n.Round() == 1 {
		return // initial exchange round; folding starts next round
	}
	phase, fold := a.position(n.Round())

	// Fold round: recolor the color class with in-group offset j.
	folds := a.plan[phase]
	j := t + folds - 1 - fold
	color := int(n.OutputWords()[0])
	recolored := false
	if color%(2*t) == j {
		lo := color / (2 * t) * (2 * t)
		sc := a.pool.Get().(*takenScratch)
		if cap(sc.taken) < t {
			sc.taken = make([]bool, t) //distvet:alloc-ok one-time growth of the pooled taken buffer to the phase's target
		}
		taken := sc.taken[:t]
		clear(taken)
		for _, c := range nbr {
			if c >= lo && c < lo+t {
				taken[c-lo] = true
			}
		}
		newColor := -1
		for c := 0; c < t; c++ {
			if !taken[c] {
				newColor = lo + c
				break
			}
		}
		a.pool.Put(sc)
		if newColor < 0 {
			n.Failf("reduce: no free color (visible degree exceeds target-1)")
			return
		}
		color = newColor
		recolored = true
	}

	if fold == folds-1 {
		// Phase complete: renumber c -> (c/2t)*t + (c mod 2t); see
		// reduceAdvance for why this is applied locally everywhere.
		color = color/(2*t)*t + color%(2*t)
		for i, c := range nbr {
			if c >= 0 {
				nbr[i] = c/(2*t)*t + c%(2*t)
			}
		}
		if phase == len(a.plan)-1 {
			n.Halt()
		}
	}
	n.SetOutputWord(int64(color))
	// Announce after any renumbering so receivers, who renumber their
	// tables in the same round, record a consistently-numbered value.
	// Halting sends are still delivered.
	if recolored {
		n.SendAllWord(int64(color))
	}
}

// position derives the (phase, fold-within-phase) of the given round
// from the shared plan: round 2 executes the first fold, and every node
// advances one fold per round in lockstep.
func (a Algo) position(round int) (phase, fold int) {
	k := round - 2
	for p, folds := range a.plan {
		if k < folds {
			return p, k
		}
		k -= folds
	}
	// Unreachable: every node halts on the last fold of the last phase.
	panic(fmt.Sprintf("reduce: round %d beyond the %d-phase plan", round, len(a.plan)))
}

// reduceAdvance runs the boxed-plane fold/renumber round; when announce
// is true the caller broadcasts the node's recolored value.
func reduceAdvance(n *dist.Node, in Input, st *state) (int, bool) {
	t := in.Target
	if n.Round() == 1 {
		return 0, false // initial exchange round; folding starts next round
	}

	// Fold round: recolor the color class with in-group offset j.
	folds := st.phases[st.phase]
	j := t + folds - 1 - st.fold
	recolored := false
	if st.color%(2*t) == j {
		lo := st.color / (2 * t) * (2 * t)
		taken := make([]bool, t)
		for _, c := range st.nbrColors {
			if c >= lo && c < lo+t {
				taken[c-lo] = true
			}
		}
		newColor := -1
		for c := 0; c < t; c++ {
			if !taken[c] {
				newColor = lo + c
				break
			}
		}
		if newColor < 0 {
			n.Failf("reduce: no free color (visible degree exceeds target-1)")
			return 0, false
		}
		st.color = newColor
		recolored = true
	}

	st.fold++
	if st.fold == st.phases[st.phase] {
		// Phase complete: renumber c -> (c/2t)*t + (c mod 2t). All in-group
		// offsets are now < t, so the mapping is injective and every node
		// applies it locally to its own color and its neighbor table.
		renumber := func(c int) int {
			if c < 0 {
				return c
			}
			return c/(2*t)*t + c%(2*t)
		}
		st.color = renumber(st.color)
		for i, c := range st.nbrColors {
			st.nbrColors[i] = renumber(c)
		}
		st.phase++
		st.fold = 0
	}
	if st.phase == len(st.phases) {
		n.Output = st.color
		n.Halt()
	}
	// Announce (in the caller's transport) after any renumbering so
	// receivers, who renumber their tables in the same round, record a
	// consistently-numbered value. Halting sends are still delivered.
	return st.color, recolored
}

// Result reports a reduction run.
type Result struct {
	Colors   []int
	Rounds   int
	Messages int64
	// Wall and PeakLive attribute the engine run host-side (see
	// dist.Result); Wall is not deterministic.
	Wall     time.Duration
	PeakLive int
}

// Pool holds the reusable scratch of KWPooled - the per-port
// neighbor-color arena, its offsets and the input column - so
// orchestrators that reduce once per recursion level stop reallocating
// them. The zero value is ready; it grows to the largest run it serves.
type Pool struct {
	nbrs []int
	off  []int32
	col  []int64
}

// KW reduces a legal m-coloring to a legal target-coloring within each
// label class (labels/active may be nil for the whole graph). target must
// exceed the maximum visible degree. Costs O(target * log(m/target))
// rounds.
func KW(net *dist.Network, colors []int, m, target int, labels []int, active []bool) (*Result, error) {
	out := make([]int, len(colors))
	var pool Pool
	st, err := KWPooled(net, colors, m, target, labels, active, &pool, out)
	if err != nil {
		return nil, err
	}
	return &Result{
		Colors: out, Rounds: st.Rounds, Messages: st.Messages,
		Wall: st.Wall, PeakLive: st.PeakLive,
	}, nil
}

// KWPooled is KW threading caller-owned scratch: dst (length n) receives
// the reduced coloring and pool is reused across calls. dst may alias
// colors - the input column is filled before the run and decoded after.
// It takes the typed word path when the network resolves to the batch
// transport and the boxed []any fallback otherwise. The returned
// RunStats carries the LOCAL cost plus the engine run's wall time and
// peak live-set size for phase attribution.
func KWPooled(net *dist.Network, colors []int, m, target int, labels []int, active []bool, pool *Pool, dst []int) (dist.RunStats, error) {
	g := net.Graph()
	n := g.N()
	if len(colors) != n {
		return dist.RunStats{}, fmt.Errorf("reduce: %d colors for %d vertices", len(colors), n)
	}
	if len(dst) != n {
		return dist.RunStats{}, fmt.Errorf("reduce: %d color slots for %d vertices", len(dst), n)
	}
	if target < 1 {
		return dist.RunStats{}, fmt.Errorf("reduce: target %d < 1", target)
	}
	if net.WordIO(Algo{}) {
		// Lay out the per-port arena in the engine's column order (served
		// from the session's cached topology), then fill the arena and
		// the input column in parallel.
		if cap(pool.off) < n {
			pool.off = make([]int32, n)
		}
		off := pool.off[:n]
		total := 0
		net.ForEachVisible(labels, active, func(v int, ports []int) {
			off[v] = int32(total)
			total += len(ports)
		})
		if cap(pool.nbrs) < total {
			pool.nbrs = make([]int, total)
		}
		nbrs := pool.nbrs[:total]
		dist.ParallelFor(total, net.SweepWorkers(total), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				nbrs[i] = -1
			}
		})
		if cap(pool.col) < n {
			pool.col = make([]int64, n)
		}
		col := pool.col[:n]
		dist.ParallelFor(n, net.SweepWorkers(n), func(lo, hi int) {
			for v := lo; v < hi; v++ {
				col[v] = int64(colors[v])
			}
		})
		res, err := net.RunWords(newWordAlgo(m, target, nbrs, off), dist.RunOptions{
			InputWords: col, Labels: labels, Active: active,
		})
		if err != nil {
			return dist.RunStats{}, err
		}
		if err := dist.IntsFromWords(res, dst); err != nil {
			return dist.RunStats{}, err
		}
		return res.Stats(), nil
	}
	inputs := make([]any, n)
	for v := 0; v < n; v++ {
		inputs[v] = Input{Color: colors[v], M: m, Target: target}
	}
	res, err := net.Run(Algo{}, dist.RunOptions{Inputs: inputs, Labels: labels, Active: active})
	if err != nil {
		return dist.RunStats{}, err
	}
	for v, o := range res.Outputs {
		switch x := o.(type) {
		case int:
			dst[v] = x
		case error:
			// Legacy boxed-plane error smuggling; kept defensively for the
			// fallback only (the engine's Fail path reports errors now).
			return dist.RunStats{}, fmt.Errorf("reduce: vertex %d: %w", v, x)
		case nil:
			dst[v] = 0
		default:
			return dist.RunStats{}, fmt.Errorf("reduce: vertex %d unexpected output %T", v, o)
		}
	}
	return res.Stats(), nil
}
