package reduce

import (
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
)

// legalStartingColoring returns a legal coloring with inflated color values
// to exercise the reduction: greedy colors scaled and shifted.
func legalStartingColoring(g *graph.Graph, spread int) ([]int, int) {
	_, order := g.Degeneracy()
	rev := make([]int, len(order))
	for i, v := range order {
		rev[len(order)-1-i] = v
	}
	base := g.GreedyColorByOrder(rev)
	colors := make([]int, g.N())
	maxc := 0
	for v, c := range base {
		colors[v] = c*spread + (v % spread)
		if colors[v] > maxc {
			maxc = colors[v]
		}
	}
	return colors, maxc + 1
}

func TestMakePlanProgress(t *testing.T) {
	for _, tc := range []struct{ m, t int }{
		{100, 4}, {5, 4}, {1000, 7}, {8, 4}, {9, 4}, {1 << 20, 10},
	} {
		phases := makePlan(tc.m, tc.t)
		if len(phases) == 0 {
			t.Errorf("makePlan(%d,%d) empty", tc.m, tc.t)
		}
		if len(phases) > 64 {
			t.Errorf("makePlan(%d,%d) has %d phases", tc.m, tc.t, len(phases))
		}
		for _, f := range phases {
			if f < 1 || f > tc.t {
				t.Errorf("makePlan(%d,%d) fold count %d out of range", tc.m, tc.t, f)
			}
		}
	}
}

func TestRoundsFormula(t *testing.T) {
	if Rounds(10, 20) != 0 {
		t.Error("m <= t should cost 0 rounds")
	}
	if r := Rounds(1<<20, 8); r > 8*25+1 {
		t.Errorf("Rounds(2^20, 8) = %d, unexpectedly large", r)
	}
}

func TestKWReducesToMaxDegreePlusOne(t *testing.T) {
	rng := rand.New(rand.NewSource(300))
	for trial := 0; trial < 5; trial++ {
		g := graph.Gnp(150, 0.05, rng)
		colors, m := legalStartingColoring(g, 17)
		if err := g.CheckLegalColoring(colors); err != nil {
			t.Fatal(err)
		}
		target := g.MaxDegree() + 1
		net := dist.NewNetworkPermuted(g, rng)
		res, err := KW(net, colors, m, target, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.CheckLegalColoring(res.Colors); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if mc := graph.MaxColor(res.Colors); mc >= target {
			t.Fatalf("trial %d: max color %d >= target %d", trial, mc, target)
		}
		if res.Rounds > Rounds(m, target)+1 {
			t.Errorf("trial %d: rounds %d > planned %d", trial, res.Rounds, Rounds(m, target))
		}
	}
}

func TestKWNoOpWhenAlreadySmall(t *testing.T) {
	g := graph.Path(6)
	net := dist.NewNetwork(g)
	colors := []int{0, 1, 0, 1, 0, 1}
	res, err := KW(net, colors, 2, 3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 {
		t.Errorf("no-op reduction cost %d rounds", res.Rounds)
	}
	for v, c := range colors {
		if res.Colors[v] != c {
			t.Error("colors changed in no-op")
		}
	}
}

func TestKWWithinLabels(t *testing.T) {
	// Two label classes reduce independently; cross-label edges may end
	// monochromatic, intra-label edges must stay legal.
	rng := rand.New(rand.NewSource(301))
	g := graph.Gnp(120, 0.08, rng)
	labels := make([]int, g.N())
	for v := range labels {
		labels[v] = v % 2
	}
	// Legal coloring overall is legal within labels too.
	colors, m := legalStartingColoring(g, 5)
	// Per-label max visible degree.
	maxVis := 0
	for v := 0; v < g.N(); v++ {
		d := len(dist.VisiblePorts(g, labels, nil, v))
		if d > maxVis {
			maxVis = d
		}
	}
	target := maxVis + 1
	net := dist.NewNetwork(g)
	res, err := KW(net, colors, m, target, labels, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if res.Colors[v] >= target {
			t.Fatalf("vertex %d color %d >= %d", v, res.Colors[v], target)
		}
		for _, u := range g.Neighbors(v) {
			if labels[u] == labels[v] && res.Colors[u] == res.Colors[v] {
				t.Fatalf("intra-label edge (%d,%d) monochromatic", v, u)
			}
		}
	}
}

func TestKWOnCompleteGraph(t *testing.T) {
	// Tight case: K_n needs exactly n colors; reduce from a padded coloring.
	g := graph.Complete(9)
	colors := make([]int, 9)
	for v := range colors {
		colors[v] = v * 3
	}
	net := dist.NewNetwork(g)
	res, err := KW(net, colors, 25, 9, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckLegalColoring(res.Colors); err != nil {
		t.Fatal(err)
	}
	if mc := graph.MaxColor(res.Colors); mc >= 9 {
		t.Errorf("max color %d >= 9", mc)
	}
}

func TestKWValidation(t *testing.T) {
	g := graph.Path(3)
	net := dist.NewNetwork(g)
	if _, err := KW(net, []int{0, 1}, 2, 2, nil, nil); err == nil {
		t.Error("short colors accepted")
	}
	if _, err := KW(net, []int{0, 1, 0}, 2, 0, nil, nil); err == nil {
		t.Error("target 0 accepted")
	}
	// Target below degree+1: must surface the no-free-color error.
	k := graph.Complete(5)
	knet := dist.NewNetwork(k)
	if _, err := KW(knet, []int{0, 2, 4, 6, 8}, 10, 3, nil, nil); err == nil {
		t.Error("infeasible target accepted")
	}
}
