package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/graph"
)

// Property: MISFromColoring yields a maximal independent set for ANY legal
// input coloring on ANY graph.
func TestMISFromColoringPropertyQuick(t *testing.T) {
	prop := func(seed uint32, nRaw, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 10 + int(nRaw)%120
		p := 0.01 + float64(pRaw%50)/200.0
		g := graph.Gnp(n, p, rng)
		// A legal coloring with arbitrary (shuffled, gappy) color values.
		_, order := g.Degeneracy()
		rev := make([]int, len(order))
		for i, v := range order {
			rev[len(order)-1-i] = v
		}
		base := g.GreedyColorByOrder(rev)
		spread := 1 + int(pRaw%3)
		colors := make([]int, n)
		for v, c := range base {
			colors[v] = c * spread
		}
		net := dist.NewNetworkPermuted(g, rng)
		res, err := MISFromColoring(net, colors)
		if err != nil {
			return false
		}
		return g.CheckMIS(res.InMIS) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Legal-Coloring output is legal and within its declared palette
// for random forest-union workloads and random (a, p) parameters.
func TestLegalColoringPropertyQuick(t *testing.T) {
	prop := func(seed uint32, aRaw, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		a := 2 + int(aRaw)%10
		p := 4 + int(pRaw)%12
		g := graph.ForestUnion(150, a, rng)
		net := dist.NewNetworkPermuted(g, rng)
		res, err := LegalColoring(net, Config{Arboricity: a, P: p})
		if err != nil {
			return false
		}
		if g.CheckLegalColoring(res.Colors) != nil {
			return false
		}
		return graph.MaxColor(res.Colors) < res.Palette
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: the MIS sweep size is at least n/(Delta+1) (any MIS is), and
// joining vertices always span every color class that is locally first.
func TestMISSizeLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(424))
	for trial := 0; trial < 5; trial++ {
		g := graph.Gnp(200, 0.05, rng)
		_, order := g.Degeneracy()
		rev := make([]int, len(order))
		for i, v := range order {
			rev[len(order)-1-i] = v
		}
		colors := g.GreedyColorByOrder(rev)
		net := dist.NewNetworkPermuted(g, rng)
		res, err := MISFromColoring(net, colors)
		if err != nil {
			t.Fatal(err)
		}
		size := 0
		for _, in := range res.InMIS {
			if in {
				size++
			}
		}
		if min := g.N() / (g.MaxDegree() + 1); size < min {
			t.Errorf("trial %d: MIS size %d < n/(Delta+1) = %d", trial, size, min)
		}
	}
}
