package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/forest"
	"repro/internal/graph"
	"repro/internal/orient"
)

func TestLegalColoringTheorem43(t *testing.T) {
	rng := rand.New(rand.NewSource(700))
	for _, a := range []int{4, 8, 16} {
		g := graph.ForestUnion(500, a, rng)
		net := dist.NewNetworkPermuted(g, rng)
		res, err := ColorOA(net, a, 2.0/3.0)
		if err != nil {
			t.Fatalf("a=%d: %v", a, err)
		}
		if err := g.CheckLegalColoring(res.Colors); err != nil {
			t.Fatalf("a=%d: %v", a, err)
		}
		// O(a) colors: Lemma 4.2(3) bounds the palette by
		// (3+eps)^(iters+1) * a; verify against that explicit bound.
		bound := a
		for i := 0; i <= res.Iterations; i++ {
			bound = bound * 13 / 4 // (3+eps) with eps=1/4
		}
		bound += PForTheorem43(a, 2.0/3.0) // slack for ceil effects at small a
		if res.Palette > 2*bound {
			t.Errorf("a=%d: palette %d > 2*%d (iterations=%d)", a, res.Palette, bound, res.Iterations)
		}
		// Rounds: polylog in n for fixed a; sanity bound.
		logn := int(math.Log2(float64(g.N())))
		p := PForTheorem43(a, 2.0/3.0)
		if lim := (p*p + 60) * (logn + 10) * (res.Iterations + 2); res.Tally.Rounds() > lim {
			t.Errorf("a=%d: %d rounds > %d", a, res.Tally.Rounds(), lim)
		}
	}
}

func TestLegalColoringIterationsConstant(t *testing.T) {
	// Lemma 4.2(2): with p = ceil(a^(mu/2)) the loop runs O(1/mu) times.
	rng := rand.New(rand.NewSource(701))
	g := graph.ForestUnion(600, 32, rng)
	net := dist.NewNetworkPermuted(g, rng)
	res, err := ColorOA(net, 32, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 8 {
		t.Errorf("iterations = %d, want O(1/mu) = O(1)", res.Iterations)
	}
}

func TestLegalColoringSmallP(t *testing.T) {
	// Theorem 4.5 regime: small constant p, more iterations, more colors.
	rng := rand.New(rand.NewSource(702))
	a := 16
	g := graph.ForestUnion(500, a, rng)
	net := dist.NewNetworkPermuted(g, rng)
	res, err := LegalColoring(net, Config{Arboricity: a, P: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckLegalColoring(res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 1 {
		t.Error("expected at least one iteration for a=16, p=4")
	}
}

func TestLegalColoringValidation(t *testing.T) {
	net := dist.NewNetwork(graph.Path(4))
	if _, err := LegalColoring(net, Config{Arboricity: 0, P: 4}); err == nil {
		t.Error("a=0 accepted")
	}
	if _, err := LegalColoring(net, Config{Arboricity: 1, P: 3}); err == nil {
		t.Error("p=3 accepted (cannot converge)")
	}
}

func TestLegalColoringTrivialWhenALeP(t *testing.T) {
	// a <= p: zero iterations, straight to the Lemma 2.2 coloring.
	rng := rand.New(rand.NewSource(703))
	g := graph.ForestUnion(200, 3, rng)
	net := dist.NewNetworkPermuted(g, rng)
	res, err := LegalColoring(net, Config{Arboricity: 3, P: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 {
		t.Errorf("iterations = %d, want 0", res.Iterations)
	}
	if err := g.CheckLegalColoring(res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.Palette != forest.DefaultEps.Threshold(3)+1 {
		t.Errorf("palette %d != theta(3)+1", res.Palette)
	}
}

func TestLegalColoringWithBaseLabels(t *testing.T) {
	// Base subgraphs get disjoint palettes; legality must hold globally.
	rng := rand.New(rand.NewSource(704))
	a := 8
	g := graph.ForestUnion(400, a, rng)
	labels := make([]int, g.N())
	for v := range labels {
		labels[v] = v % 3
	}
	net := dist.NewNetworkPermuted(g, rng)
	res, err := LegalColoring(net, Config{Arboricity: a, P: 4, Labels: labels})
	if err != nil {
		t.Fatal(err)
	}
	// Within-label edges legal by construction; cross-label edges get
	// disjoint palettes, so the whole coloring must be legal.
	if err := g.CheckLegalColoring(res.Colors); err != nil {
		t.Fatal(err)
	}
}

func TestLegalColoringDeltaPlusOneFinal(t *testing.T) {
	rng := rand.New(rand.NewSource(705))
	a := 8
	g := graph.ForestUnion(300, a, rng)
	net := dist.NewNetworkPermuted(g, rng)
	res, err := LegalColoring(net, Config{
		Arboricity:    a,
		P:             4,
		LevelColoring: orient.LevelDeltaPlusOne,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckLegalColoring(res.Colors); err != nil {
		t.Fatal(err)
	}
}

func TestOneShotLemma41(t *testing.T) {
	rng := rand.New(rand.NewSource(706))
	for _, a := range []int{8, 27} {
		g := graph.ForestUnion(400, a, rng)
		net := dist.NewNetworkPermuted(g, rng)
		res, err := OneShot(net, a, forest.DefaultEps)
		if err != nil {
			t.Fatalf("a=%d: %v", a, err)
		}
		if err := g.CheckLegalColoring(res.Colors); err != nil {
			t.Fatalf("a=%d: %v", a, err)
		}
		// O(a) colors: k*gamma with k = a^(1/3), gamma = O(a^(2/3)).
		if res.Palette > 30*a+60 {
			t.Errorf("a=%d: palette %d", a, res.Palette)
		}
	}
}

func TestOneShotRejectsBadA(t *testing.T) {
	net := dist.NewNetwork(graph.Path(4))
	if _, err := OneShot(net, 0, forest.DefaultEps); err == nil {
		t.Error("a=0 accepted")
	}
}

func TestCorollary47DeltaPlusOneRegime(t *testing.T) {
	// a << Delta: the coloring must use fewer than Delta+1 colors.
	rng := rand.New(rand.NewSource(707))
	g := graph.StarForest(1500, 2, 3, 400, rng)
	a := g.ArboricityUpperBound() // small
	delta := g.MaxDegree()        // huge
	if delta < 10*a {
		t.Skipf("workload not in the a << Delta regime: a=%d Delta=%d", a, delta)
	}
	net := dist.NewNetworkPermuted(g, rng)
	res, err := LegalColoring(net, Config{Arboricity: a, P: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckLegalColoring(res.Colors); err != nil {
		t.Fatal(err)
	}
	if nc := graph.NumColors(res.Colors); nc > delta {
		t.Errorf("used %d colors >= Delta+1 = %d (Corollary 4.7 violated)", nc, delta+1)
	}
}

func TestMISFromColoring(t *testing.T) {
	rng := rand.New(rand.NewSource(708))
	g := graph.Gnp(200, 0.05, rng)
	// Greedy legal coloring as input.
	_, order := g.Degeneracy()
	rev := make([]int, len(order))
	for i, v := range order {
		rev[len(order)-1-i] = v
	}
	colors := g.GreedyColorByOrder(rev)
	net := dist.NewNetworkPermuted(g, rng)
	res, err := MISFromColoring(net, colors)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckMIS(res.InMIS); err != nil {
		t.Fatal(err)
	}
	if res.Rounds > graph.MaxColor(colors) {
		t.Errorf("rounds %d > max color %d", res.Rounds, graph.MaxColor(colors))
	}
}

func TestMISEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(709))
	for _, a := range []int{2, 8} {
		g := graph.ForestUnion(300, a, rng)
		net := dist.NewNetworkPermuted(g, rng)
		mis, tally, err := MIS(net, Config{Arboricity: a, P: 4})
		if err != nil {
			t.Fatalf("a=%d: %v", a, err)
		}
		if err := g.CheckMIS(mis.InMIS); err != nil {
			t.Fatalf("a=%d: %v", a, err)
		}
		if tally.Rounds() <= 0 {
			t.Error("missing tally")
		}
	}
}

func TestMISValidation(t *testing.T) {
	net := dist.NewNetwork(graph.Path(3))
	if _, err := MISFromColoring(net, []int{0, 1}); err == nil {
		t.Error("short coloring accepted")
	}
	if _, err := MISFromColoring(net, []int{0, -1, 0}); err == nil {
		t.Error("negative color accepted")
	}
}

func TestFastColoringTheorem52(t *testing.T) {
	rng := rand.New(rand.NewSource(710))
	a := 16
	g := graph.ForestUnion(500, a, rng)
	net := dist.NewNetworkPermuted(g, rng)
	for _, gval := range []int{2, 4, 8} {
		res, err := FastColoring(net, a, gval, forest.DefaultEps)
		if err != nil {
			t.Fatalf("g=%d: %v", gval, err)
		}
		if err := g.CheckLegalColoring(res.Colors); err != nil {
			t.Fatalf("g=%d: %v", gval, err)
		}
	}
	if _, err := FastColoring(net, a, 0, forest.DefaultEps); err == nil {
		t.Error("g=0 accepted")
	}
	if _, err := FastColoring(net, a, a+1, forest.DefaultEps); err == nil {
		t.Error("g>a accepted")
	}
}

func TestColorATTheorem53(t *testing.T) {
	rng := rand.New(rand.NewSource(711))
	a := 16
	g := graph.ForestUnion(500, a, rng)
	net := dist.NewNetworkPermuted(g, rng)
	var prevColors int
	for _, tt := range []int{1, 2, 4} {
		res, err := ColorAT(net, a, tt, 0.5, forest.DefaultEps)
		if err != nil {
			t.Fatalf("t=%d: %v", tt, err)
		}
		if err := g.CheckLegalColoring(res.Colors); err != nil {
			t.Fatalf("t=%d: %v", tt, err)
		}
		nc := graph.NumColors(res.Colors)
		if prevColors > 0 && nc > 4*prevColors {
			t.Errorf("t=%d: colors %d grew sharply from %d", tt, nc, prevColors)
		}
		prevColors = nc
	}
	if _, err := ColorAT(net, a, 0, 0.5, forest.DefaultEps); err == nil {
		t.Error("t=0 accepted")
	}
}

func TestPParameterHelpers(t *testing.T) {
	if p := PForTheorem43(64, 2.0/3.0); p < 4 || p > 9 {
		t.Errorf("PForTheorem43(64, 2/3) = %d", p)
	}
	if p := PForCorollary46(0.5); p != 4 {
		t.Errorf("PForCorollary46(0.5) = %d, want 4", p)
	}
	if p := PForCorollary46(0.1); p != 1024 {
		t.Errorf("PForCorollary46(0.1) = %d, want 1024", p)
	}
	if p := PForCorollary46(-1); p != 4 {
		t.Errorf("PForCorollary46(-1) = %d, want 4", p)
	}
	if p := PForTheorem45(16); p != 4 {
		t.Errorf("PForTheorem45(16) = %d, want 4", p)
	}
	if p := PForTheorem45(100); p != 10 {
		t.Errorf("PForTheorem45(100) = %d, want 10", p)
	}
}
