// Package core implements the paper's primary contribution: Procedure
// Legal-Coloring (Algorithm 2) and the results built on it.
//
//   - Theorem 4.3:  O(a)-coloring in O(a^mu log n) rounds (p = ceil(a^(mu/2))).
//   - Theorem 4.5:  a^(1+o(1))-coloring in O(f(a) log a log n) rounds
//     (p = f(a)^(1/2) for slow-growing f).
//   - Corollary 4.6: O(a^(1+eta))-coloring in O(log a log n) rounds
//     (p = 2^O(1/eta)).
//   - Corollary 4.7: (Delta+1)-coloring (indeed o(Delta)) when a <= Delta^(1-nu).
//   - Lemma 4.1:    one-shot O(a)-coloring in O(a^(2/3) log n) rounds.
//   - Theorem 5.2:  O(a^2/g(a))-coloring in O(log g(a) log n) rounds.
//   - Theorem 5.3:  O(a*t)-coloring in O((a/t)^mu log n) rounds.
//   - Section 1.2:  MIS in O(a + a^mu log n) rounds.
//
// Algorithm 2 refines the graph into subgraphs of geometrically shrinking
// arboricity via repeated Arbdefective-Coloring invocations (all subgraphs
// in parallel), then legally colors all final subgraphs with disjoint
// palettes. Subgraph identities are the paper's z-indices (line 9 of
// Algorithm 2): z = z_parent * p + j, which keeps palettes disjoint without
// any coordination.
package core

import (
	"fmt"

	"repro/internal/arbdefect"
	"repro/internal/dist"
	"repro/internal/forest"
	"repro/internal/orient"
)

// Config parameterizes Procedure Legal-Coloring.
type Config struct {
	// Arboricity is the bound a on the arboricity of the graph (or of each
	// base-labelled subgraph).
	Arboricity int
	// P is the refinement parameter p of Algorithm 2. Must be at least 4
	// so that the arboricity shrinks by a factor p/(3+eps) > 1 per
	// iteration (the paper assumes wlog p >= 16).
	P int
	// Eps is the H-partition slack; zero value means forest.DefaultEps.
	Eps forest.Eps
	// LevelColoring selects the level-coloring method of the final
	// Complete-Orientation (Lemma 2.2(1) step, line 19). Zero value means
	// orient.LevelLinial, which preserves every theorem's round bound (see
	// DESIGN.md) and is much faster at small scales.
	LevelColoring orient.LevelColoring
	// Labels/Active optionally restrict to base subgraphs, each of
	// arboricity at most Arboricity. Labels must be dense non-negative
	// ints; the output coloring is then legal within every base subgraph
	// AND across subgraph boundaries (disjoint palettes per base label).
	Labels []int
	Active []bool
	// Checkpoint resumes the refinement loop from a state captured by an
	// earlier run's OnIteration callback instead of starting at iteration
	// zero. The checkpoint must come from a run on the same instance with
	// the same Config (Arboricity, P, Eps, Labels); the pipeline cannot
	// verify that and a mismatched checkpoint produces garbage, not an
	// error. The resumed run is bit-for-bit identical to the uninterrupted
	// one: z and alpha fully determine the remaining iterations.
	Checkpoint *Checkpoint
	// OnIteration, when non-nil, is called after every completed while-loop
	// iteration with a self-contained Checkpoint (the callback owns the
	// slices). A non-nil error aborts the pipeline and is returned wrapped;
	// callbacks that persist the checkpoint and then signal a deliberate
	// kill use this to model crash/resume in tests and harnesses.
	OnIteration func(Checkpoint) error
}

// Checkpoint is the pipeline-level state of Legal-Coloring at a
// while-loop iteration boundary: everything the refinement loop carries
// between iterations. It is plain exported data so harness code can
// serialize it (the engine-level dist.Snapshot covers in-round state;
// this covers between-run state).
type Checkpoint struct {
	// Iteration is the number of completed while-loop iterations.
	Iteration int
	// Alpha is the current arboricity bound of every subgraph.
	Alpha int
	// Z holds the z-indices (subgraph identities, line 9) after
	// Iteration refinements.
	Z []int
	// Phases is the phase tally recorded so far, in recording order
	// (rebuild with dist.TallyFromPhases on resume).
	Phases []dist.PhaseStat
}

func (c *Config) normalize() error {
	if c.Arboricity < 1 {
		return fmt.Errorf("core: arboricity bound must be >= 1, got %d", c.Arboricity)
	}
	if c.P < 4 {
		return fmt.Errorf("core: p must be >= 4 for the recursion to converge, got %d", c.P)
	}
	if c.Eps == (forest.Eps{}) {
		c.Eps = forest.DefaultEps
	}
	if c.LevelColoring == 0 {
		c.LevelColoring = orient.LevelLinial
	}
	return nil
}

// Result reports a Legal-Coloring run.
type Result struct {
	// Colors is a legal coloring with values in [0, Palette).
	Colors []int
	// Palette bounds the color values: (zMax+1) * A in the paper's
	// notation. The number of *distinct* colors used is at most
	// min(Palette, n); both are O(a) for constant iteration counts
	// (Lemma 4.2(3)).
	Palette int
	// Iterations is the number of while-loop iterations executed.
	Iterations int
	// FinalArboricity is the arboricity bound of the final subgraphs.
	FinalArboricity int
	Tally           *dist.Tally
}

// LegalColoring runs Procedure Legal-Coloring (Algorithm 2).
func LegalColoring(net *dist.Network, cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	g := net.Graph()
	n := g.N()
	var tally dist.Tally

	// The subgraph collection G, identified by z-indices (line 9).
	z := make([]int, n)
	if cfg.Labels != nil {
		copy(z, cfg.Labels)
	}
	alpha := cfg.Arboricity
	p := cfg.P

	iterations := 0
	if ck := cfg.Checkpoint; ck != nil {
		if len(ck.Z) != n {
			return nil, fmt.Errorf("core: checkpoint has %d z-indices for an n=%d instance", len(ck.Z), n)
		}
		if ck.Alpha < 1 || ck.Iteration < 0 {
			return nil, fmt.Errorf("core: malformed checkpoint (alpha=%d, iteration=%d)", ck.Alpha, ck.Iteration)
		}
		copy(z, ck.Z)
		alpha = ck.Alpha
		iterations = ck.Iteration
		tally.Merge(dist.TallyFromPhases(ck.Phases))
	}
	for alpha > p {
		ad, err := arbdefect.Coloring(net, alpha, p, p, cfg.Eps, z, cfg.Active)
		if err != nil {
			return nil, fmt.Errorf("core: iteration %d (alpha=%d): %w", iterations+1, alpha, err)
		}
		tally.Merge(ad.Tally)
		for v := 0; v < n; v++ {
			z[v] = z[v]*p + ad.Colors[v]
		}
		if ad.Bound >= alpha {
			return nil, fmt.Errorf("core: arboricity failed to shrink (%d -> %d); p too small", alpha, ad.Bound)
		}
		alpha = ad.Bound
		iterations++
		if iterations > 64 {
			return nil, fmt.Errorf("core: iteration budget exceeded")
		}
		if cfg.OnIteration != nil {
			ck := Checkpoint{
				Iteration: iterations,
				Alpha:     alpha,
				Z:         append([]int(nil), z...),
				Phases:    tally.Phases(),
			}
			if err := cfg.OnIteration(ck); err != nil {
				return nil, fmt.Errorf("core: checkpoint callback after iteration %d: %w", iterations, err)
			}
		}
	}

	// Lines 17-19: legally color every subgraph with palette A using the
	// Lemma 2.2(1) pipeline (Complete-Orientation + wait-for-parents).
	alphaBound := alpha
	if alphaBound < 1 {
		alphaBound = 1
	}
	paletteA := cfg.Eps.Threshold(alphaBound) + 1
	co, err := orient.Complete(net, alphaBound, cfg.Eps, cfg.LevelColoring, z, cfg.Active)
	if err != nil {
		return nil, fmt.Errorf("core: final orientation: %w", err)
	}
	tally.Merge(co.Tally)
	net.Probe().SetPhase("core/final-greedy")
	wc, err := forest.WaitColor(net, co.Sigma, paletteA, forest.RuleFirstFree, z, cfg.Active)
	if err != nil {
		return nil, fmt.Errorf("core: final coloring: %w", err)
	}
	tally.AddStats("final-greedy", wc.Stats())

	// Line 19's palette offset: color = z*A + psi (a free local step).
	colors := make([]int, n)
	zMax := 0
	for v := 0; v < n; v++ {
		colors[v] = z[v]*paletteA + wc.Colors[v]
		if z[v] > zMax {
			zMax = z[v]
		}
	}
	return &Result{
		Colors:          colors,
		Palette:         (zMax + 1) * paletteA,
		Iterations:      iterations,
		FinalArboricity: alpha,
		Tally:           &tally,
	}, nil
}
