package core

import (
	"fmt"
	"time"

	"repro/internal/dist"
)

// This file implements the MIS results of Section 1.2: a legal coloring is
// converted to a maximal independent set by processing color classes in
// increasing order - each class is an independent set, so all its undecided
// vertices join simultaneously. With an O(a)-coloring from Legal-Coloring
// the total time is O(a + a^mu log n).

// misAlgo processes color classes in rounds: a vertex of color c decides at
// round c (round 0 = Init): it joins the MIS unless a neighbor announced
// joining earlier.
type misAlgo struct{}

type misState struct {
	blocked bool
}

func (misAlgo) Init(n *dist.Node) {
	c, ok := n.Input.(int)
	if !ok || c < 0 {
		n.Failf("core: mis: bad color input %v", n.Input)
		return
	}
	n.State = &misState{}
	if c == 0 {
		// No neighbor shares color 0; no earlier class exists.
		n.Output = true
		n.SendAll(true)
		n.Halt()
	}
}

func (misAlgo) Step(n *dist.Node, inbox []dist.Message) {
	st := n.State.(*misState)
	for _, m := range inbox {
		if m != nil {
			st.blocked = true
		}
	}
	if n.Round() < n.Input.(int) {
		return
	}
	if st.blocked {
		n.Output = false
		n.Halt()
		return
	}
	n.Output = true
	n.SendAll(true)
	n.Halt()
}

// MISResult reports an MIS computation.
type MISResult struct {
	InMIS    []bool
	Rounds   int
	Messages int64
	// Wall and PeakLive are host-side observability figures; not
	// deterministic.
	Wall     time.Duration
	PeakLive int
}

// MISFromColoring converts a legal coloring into an MIS in maxColor rounds.
func MISFromColoring(net *dist.Network, colors []int) (*MISResult, error) {
	g := net.Graph()
	if len(colors) != g.N() {
		return nil, fmt.Errorf("core: mis: %d colors for %d vertices", len(colors), g.N())
	}
	res, err := net.Run(misAlgo{}, dist.RunOptions{Inputs: dist.IntInputs(colors)})
	if err != nil {
		return nil, err
	}
	inMIS := make([]bool, g.N())
	for v, o := range res.Outputs {
		switch x := o.(type) {
		case bool:
			inMIS[v] = x
		case error:
			return nil, fmt.Errorf("core: mis: vertex %d: %w", v, x)
		default:
			return nil, fmt.Errorf("core: mis: vertex %d unexpected output %T", v, o)
		}
	}
	return &MISResult{InMIS: inMIS, Rounds: res.Rounds, Messages: res.Messages, Wall: res.Wall, PeakLive: res.PeakLive}, nil
}

// MIS computes a maximal independent set on a graph of arboricity at most
// a: Legal-Coloring with parameter p, then class-by-class selection.
// Total time O(a + a^mu log n) per Section 1.2.
func MIS(net *dist.Network, cfg Config) (*MISResult, *dist.Tally, error) {
	lc, err := LegalColoring(net, cfg)
	if err != nil {
		return nil, nil, err
	}
	var tally dist.Tally
	tally.Merge(lc.Tally)
	net.Probe().SetPhase("core/mis-sweep")
	mr, err := MISFromColoring(net, lc.Colors)
	if err != nil {
		return nil, nil, err
	}
	tally.AddPhase("mis-sweep", mr.Rounds, mr.Messages, mr.Wall, mr.PeakLive)
	return mr, &tally, nil
}
