package core

import (
	"fmt"
	"math"

	"repro/internal/arbdefect"
	"repro/internal/dist"
	"repro/internal/forest"
	"repro/internal/orient"
	"repro/internal/recolor"
)

// PForTheorem43 returns p = ceil(a^(mu/2)) clamped to [4, inf): with this
// parameter Legal-Coloring produces an O(a)-coloring in O(a^mu log n)
// rounds (Theorem 4.3).
func PForTheorem43(a int, mu float64) int {
	p := int(math.Ceil(math.Pow(float64(a), mu/2)))
	if p < 4 {
		p = 4
	}
	return p
}

// PForCorollary46 returns p = 2^ceil(1/eta), the constant parameter giving
// an O(a^(1+eta))-coloring in O(log a log n) rounds (Corollary 4.6).
func PForCorollary46(eta float64) int {
	if eta <= 0 || eta >= 1 {
		return 4
	}
	e := int(math.Ceil(1 / eta))
	if e > 20 {
		e = 20
	}
	p := 1 << e
	if p < 4 {
		p = 4
	}
	return p
}

// PForTheorem45 returns p = ceil(sqrt(f)) clamped to [4, inf) for a
// slow-growing budget f = f(a): Legal-Coloring then runs in
// O(f log a log n) rounds with a^(1+O(1/log f)) colors (Theorem 4.5).
func PForTheorem45(f int) int {
	p := int(math.Ceil(math.Sqrt(float64(f))))
	if p < 4 {
		p = 4
	}
	return p
}

// ColorOA computes an O(a)-coloring of a graph with arboricity at most a
// in O(a^mu log n) rounds (Theorem 4.3).
func ColorOA(net *dist.Network, a int, mu float64) (*Result, error) {
	return LegalColoring(net, Config{Arboricity: a, P: PForTheorem43(a, mu)})
}

// OneShot implements Lemma 4.1: a single Arbdefective-Coloring invocation
// with k = t = ceil(a^(1/3)), followed by legal coloring of the classes
// with disjoint palettes. O(a)-coloring in O(a^(2/3) log n) rounds.
func OneShot(net *dist.Network, a int, eps forest.Eps) (*Result, error) {
	if a < 1 {
		return nil, fmt.Errorf("core: arboricity bound must be >= 1, got %d", a)
	}
	if eps == (forest.Eps{}) {
		eps = forest.DefaultEps
	}
	g := net.Graph()
	n := g.N()
	kt := int(math.Ceil(math.Cbrt(float64(a))))
	if kt < 1 {
		kt = 1
	}
	var tally dist.Tally
	ad, err := arbdefect.Coloring(net, a, kt, kt, eps, nil, nil)
	if err != nil {
		return nil, err
	}
	tally.Merge(ad.Tally)
	alpha := ad.Bound
	if alpha < 1 {
		alpha = 1
	}
	gamma := eps.Threshold(alpha) + 1
	co, err := orient.Complete(net, alpha, eps, orient.LevelLinial, ad.Colors, nil)
	if err != nil {
		return nil, err
	}
	tally.Merge(co.Tally)
	net.Probe().SetPhase("core/final-greedy")
	wc, err := forest.WaitColor(net, co.Sigma, gamma, forest.RuleFirstFree, ad.Colors, nil)
	if err != nil {
		return nil, err
	}
	tally.AddStats("final-greedy", wc.Stats())
	colors := make([]int, n)
	for v := 0; v < n; v++ {
		colors[v] = ad.Colors[v]*gamma + wc.Colors[v]
	}
	return &Result{
		Colors:          colors,
		Palette:         kt * gamma,
		Iterations:      1,
		FinalArboricity: ad.Bound,
		Tally:           &tally,
	}, nil
}

// FastResult reports a two-phase (Section 5) coloring.
type FastResult struct {
	Colors []int
	// Palette bounds color values: classes * per-class palette.
	Palette int
	Tally   *dist.Tally
}

// twoPhase runs Arb-Kuhn with arbdefect target d, then Legal-Coloring in
// parallel on the resulting classes (arboricity <= d each) with refinement
// parameter p and disjoint palettes.
func twoPhase(net *dist.Network, a, d, p int, eps forest.Eps) (*FastResult, error) {
	if eps == (forest.Eps{}) {
		eps = forest.DefaultEps
	}
	var tally dist.Tally
	net.Probe().SetPhase("core/complete-orientation")
	or, _, err := forest.CompleteAcyclicOrientation(net, a, eps)
	if err != nil {
		return nil, err
	}
	tally.AddStats("complete-orientation", or.Stats())
	net.Probe().SetPhase("core/arb-recolor")
	kres, err := recolor.ArbKuhn(net, or.Sigma, d)
	if err != nil {
		return nil, err
	}
	tally.AddPhase("arb-recolor", kres.Rounds, kres.Messages, kres.Wall, kres.PeakLive)

	alpha := d
	if alpha < 1 {
		alpha = 1
	}
	lc, err := LegalColoring(net, Config{
		Arboricity: alpha,
		P:          p,
		Eps:        eps,
		Labels:     kres.Colors,
	})
	if err != nil {
		return nil, err
	}
	tally.Merge(lc.Tally)
	return &FastResult{
		Colors:  lc.Colors,
		Palette: lc.Palette,
		Tally:   &tally,
	}, nil
}

// FastColoring implements Theorem 5.2: an O(a^2/g)-coloring in
// O(log g log n) rounds, for a defect budget g = g(a) in [1, a].
func FastColoring(net *dist.Network, a, g int, eps forest.Eps) (*FastResult, error) {
	if g < 1 || g > a {
		return nil, fmt.Errorf("core: g must be in [1, a], got %d (a=%d)", g, a)
	}
	// Arb-Kuhn splits into O((a/g)^-2... classes of arboricity <= g); the
	// per-class Legal-Coloring uses a constant p (Corollary 4.6 regime) so
	// each class gets O(g^(1+eta)) colors.
	return twoPhase(net, a, g, 16, eps)
}

// ColorAT implements Theorem 5.3: an O(a*t)-coloring in O((a/t)^mu log n)
// rounds, for t in [1, a].
func ColorAT(net *dist.Network, a, t int, mu float64, eps forest.Eps) (*FastResult, error) {
	if t < 1 || t > a {
		return nil, fmt.Errorf("core: t must be in [1, a], got %d (a=%d)", t, a)
	}
	d := a / t
	return twoPhase(net, a, d, PForTheorem43(max(d, 1), mu), eps)
}
