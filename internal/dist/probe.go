package dist

import (
	"fmt"
	"sync"
	"time"
)

// This file implements the engine's observability hook: an optional Probe
// a Network view carries into its Runs. When attached, the run loop emits
// one fixed-width RoundRecord per communication round and one RunRecord
// per Run, buffered in a preallocated ring and flushed to a ProbeSink off
// the round loop. With no probe attached the engine takes the plain run
// loop, whose only extra cost is a single nil check per Run - a benchmark
// pins the disabled-path overhead at ~0.
//
// Determinism. Everything in a record except the wall-clock and fan-out
// fields (WallNS, MaxChunkNS, MeanChunkNS, SetupNS, ComputeNS, Workers)
// is derived from the simulation state and is therefore bit-for-bit
// identical across worker counts and repeated runs; a test pins that.

// RoundRecord is the fixed-width per-round trace record. One record is
// emitted per Step round r = 1..Result.Rounds; the messages Init sends
// (round 0) are folded into the first record, so the Messages fields of a
// run's records sum exactly to Result.Messages. A run whose every node
// halts during Init (Result.Rounds == 0) emits no round records; its
// Init messages appear only in the RunRecord.
type RoundRecord struct {
	// Run is the probe-scoped sequence number tying the record to its
	// RunRecord.
	Run int64 `json:"run"`
	// Round is the Step round index, starting at 1.
	Round int `json:"round"`
	// Live is the number of live nodes stepping this round.
	Live int `json:"live"`
	// Messages is the number of messages sent this round (round 1
	// includes Init's sends; see above).
	Messages int64 `json:"messages"`
	// Workers is the fan-out the step sweep used this round.
	Workers int `json:"workers"`
	// Batch reports the delivery plane (true = columnar batch transport,
	// false = boxed []any fallback).
	Batch bool `json:"batch"`
	// WallNS is the wall time of the full round (step + delivery
	// housekeeping + halt collection).
	WallNS int64 `json:"wall_ns"`
	// MaxChunkNS / MeanChunkNS measure per-chunk imbalance of the step
	// sweep: with a single worker both equal the step time. On sharded
	// runs the chunks ARE the shard segments (see Shards).
	MaxChunkNS  int64 `json:"max_chunk_ns"`
	MeanChunkNS int64 `json:"mean_chunk_ns"`
	// Shards holds the per-shard slice of a sharded run's round - live
	// nodes, messages sent, and step wall per shard, summing (wall
	// aside) to the record's own fields. Nil on flat runs.
	Shards []ShardRoundStat `json:"shards,omitempty"`
}

// ShardRoundStat is one shard's slice of a sharded round: how many of
// the round's live nodes it held, how many messages they sent, and the
// wall time of its step segment. Live and Messages are deterministic;
// WallNS is not (it is a measurement, like the record's WallNS).
type ShardRoundStat struct {
	Live     int   `json:"live"`
	Messages int64 `json:"messages"`
	WallNS   int64 `json:"wall_ns"`
}

// RunRecord is the per-Run trace record: aggregates plus the run-level
// session events (topology cache hit, pooled-scratch reuse, setup vs.
// compute wall).
type RunRecord struct {
	// Run is the probe-scoped sequence number shared with the run's
	// RoundRecords.
	Run int64 `json:"run"`
	// Phase is the orchestrator-declared label current at the start of
	// the run (see Probe.SetPhase); empty when none was set.
	Phase string `json:"phase,omitempty"`
	// Rounds / Messages / PeakLive mirror Result.
	Rounds   int   `json:"rounds"`
	Messages int64 `json:"messages"`
	PeakLive int   `json:"peak_live"`
	// Workers is the resolved pool size of the run.
	Workers int `json:"workers"`
	// Batch reports the delivery plane.
	Batch bool `json:"batch"`
	// TopoCached reports a session topology-cache hit; ScratchPooled
	// reports reuse of the pooled per-run scratch bundle.
	TopoCached    bool `json:"topo_cached"`
	ScratchPooled bool `json:"scratch_pooled"`
	// Shards is the shard count of the run's engine view (0 on flat
	// runs, where no per-shard telemetry is emitted).
	Shards int `json:"shards,omitempty"`
	// SetupNS is the wall time of simulation assembly (topology resolve +
	// node wiring); ComputeNS is the wall time of the round loop and
	// result collection.
	SetupNS   int64 `json:"setup_ns"`
	ComputeNS int64 `json:"compute_ns"`
	// Err is the run's error text when it aborted (budget, Node.Fail,
	// cancellation); empty on success.
	Err string `json:"err,omitempty"`
	// SinkErr marks a record staged after the probe's sink had already
	// failed: earlier records of the trace may be missing from the
	// sink's backing store (the flusher keeps delivering every batch,
	// so a sink that recovers resumes with marked records; one that
	// stays down costs a cheap rejected call per chunk). The first sink
	// error itself is returned by Probe.Close.
	SinkErr bool `json:"sink_err,omitempty"`
}

// RunStats is the compact cost summary of one engine run, carried by
// orchestrator results so every pipeline phase can be attributed wall
// time and peak live-set size alongside the LOCAL measures.
type RunStats struct {
	Rounds   int
	Messages int64
	Wall     time.Duration
	PeakLive int
}

// Stats summarizes the run as a RunStats.
func (r *Result) Stats() RunStats {
	return RunStats{Rounds: r.Rounds, Messages: r.Messages, Wall: r.Wall, PeakLive: r.PeakLive}
}

// ProbeSink receives flushed trace records. Flushes happen on a single
// background goroutine per Probe, so a sink needs no locking against the
// probe itself (only against its own other readers). The record slices
// are reused after the call returns: a sink must consume or copy them
// before returning.
//
// Sink errors are first-error-sticky: the probe records the first
// non-nil return, marks subsequently staged RunRecords with SinkErr,
// and surfaces the error from Probe.Close. The sink keeps receiving
// every later batch (a recovered sink resumes with marked records; a
// dead one just rejects cheaply), and the ring keeps draining either
// way, so runs never block on a failed sink.
type ProbeSink interface {
	FlushRounds([]RoundRecord) error
	FlushRuns([]RunRecord) error
}

// probeChunk is the RoundRecord capacity of one ring chunk; probeChunks
// is the number of chunks in flight (one being written, the rest queued
// or free). A chunk flushes when full and at run end.
const (
	probeChunk  = 256
	probeChunks = 4
)

// probeBatch is one unit of work for the flusher: a filled round-record
// chunk, a run record, or both (run end flushes the partial chunk first).
type probeBatch struct {
	rounds []RoundRecord
	run    RunRecord
	hasRun bool
}

// ProbeTotals are the monotonically growing aggregates a live Probe
// exposes (e.g. through expvar on a -serve endpoint).
type ProbeTotals struct {
	Runs     int64 `json:"runs"`
	Rounds   int64 `json:"rounds"`
	Messages int64 `json:"messages"`
}

// Probe collects round- and run-level trace records from every Run of
// the Network views it is attached to (Network.WithProbe). Records are
// staged in a preallocated ring of chunks and handed to the sink on a
// background goroutine, so the round loop never blocks on I/O unless the
// sink falls more than the whole ring behind. Close flushes the
// remainder and stops the goroutine; the probe must not be used after.
//
// A Probe may be shared by overlapping runs (its staging is mutexed),
// but record interleaving across concurrent runs is then arbitrary;
// the Run sequence number ties each record to its run.
type Probe struct {
	mu     sync.Mutex
	phase  string
	seq    int64
	cur    []RoundRecord
	free   chan []RoundRecord
	full   chan probeBatch
	done   chan struct{}
	closed bool
	totals ProbeTotals
	// errMu guards sinkErr alone and is never held across a channel
	// operation: the staging path (which can block on the free ring
	// while holding mu) and the flusher both touch it only briefly, so
	// the sticky-error bookkeeping cannot deadlock the ring.
	errMu   sync.Mutex
	sinkErr error
}

// noteSinkErr records the first sink error; later ones are dropped.
func (p *Probe) noteSinkErr(err error) {
	p.errMu.Lock()
	if p.sinkErr == nil {
		p.sinkErr = err
	}
	p.errMu.Unlock()
}

// SinkErr returns the first error the sink reported, or nil. It is
// inherently racy against in-flight flushes (a flush may fail right
// after it returns nil); Close is the authoritative read.
func (p *Probe) SinkErr() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.sinkErr
}

// NewProbe returns a Probe flushing into sink. The caller owns the probe
// and must Close it to flush trailing records and release the flusher
// goroutine; see the ownership notes in doc.go.
func NewProbe(sink ProbeSink) *Probe {
	p := &Probe{
		cur:  make([]RoundRecord, 0, probeChunk),
		free: make(chan []RoundRecord, probeChunks),
		full: make(chan probeBatch, probeChunks),
		done: make(chan struct{}),
	}
	for i := 0; i < probeChunks-1; i++ {
		p.free <- make([]RoundRecord, 0, probeChunk)
	}
	go p.flush(sink)
	return p
}

// flush is the background drain: chunks return to the free ring after
// the sink consumed them. A sink error is sticky for reporting (the
// FIRST one surfaces from Probe.Close and marks later run records with
// SinkErr) but the sink keeps receiving every batch: a transient fault
// (disk briefly full) yields a trace with a marked hole rather than a
// silent stop, and a persistently failing sink costs one cheap rejected
// call per chunk. Chunks always cycle back to the free ring, so
// producers never block on a dead sink.
func (p *Probe) flush(sink ProbeSink) {
	defer close(p.done)
	var runBuf [1]RunRecord
	for b := range p.full {
		if b.rounds != nil {
			if err := sink.FlushRounds(b.rounds); err != nil {
				p.noteSinkErr(fmt.Errorf("dist: probe sink FlushRounds: %w", err))
			}
			p.free <- b.rounds[:0]
		}
		if b.hasRun {
			runBuf[0] = b.run
			if err := sink.FlushRuns(runBuf[:]); err != nil {
				p.noteSinkErr(fmt.Errorf("dist: probe sink FlushRuns: %w", err))
			}
		}
	}
}

// SetPhase labels subsequent runs with an orchestrator-level phase name
// (snapshotted per run into RunRecord.Phase). Safe on a nil probe, so
// orchestrators call net.Probe().SetPhase(...) unconditionally.
func (p *Probe) SetPhase(name string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.phase = name
	p.mu.Unlock()
}

// Totals returns the probe's running aggregates.
func (p *Probe) Totals() ProbeTotals {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.totals
}

// beginRun assigns the next run sequence number and snapshots the
// current phase label.
func (p *Probe) beginRun() (seq int64, phase string) {
	p.mu.Lock()
	p.seq++
	seq, phase = p.seq, p.phase
	p.mu.Unlock()
	return seq, phase
}

// round stages one round record, flushing the chunk when full.
func (p *Probe) round(rec RoundRecord) {
	p.mu.Lock()
	p.cur = append(p.cur, rec)
	p.totals.Rounds++
	p.totals.Messages += rec.Messages
	if len(p.cur) == cap(p.cur) {
		next := <-p.free
		p.full <- probeBatch{rounds: p.cur}
		p.cur = next
	}
	p.mu.Unlock()
}

// endRun flushes the staged rounds of the finished run together with its
// run record, preserving rounds-before-run ordering at the sink.
func (p *Probe) endRun(rec RunRecord) {
	rec.SinkErr = p.SinkErr() != nil
	p.mu.Lock()
	b := probeBatch{run: rec, hasRun: true}
	if len(p.cur) > 0 {
		next := <-p.free
		b.rounds = p.cur
		p.cur = next
	}
	p.totals.Runs++
	p.full <- b
	p.mu.Unlock()
}

// Close flushes any staged records and stops the flusher goroutine,
// returning once the sink has consumed everything. It returns the first
// error the sink reported over the probe's lifetime (nil when every
// flush succeeded). Close is idempotent - every call returns the same
// error - and attaching the probe to further runs after Close panics.
func (p *Probe) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.done
		return p.SinkErr()
	}
	p.closed = true
	if len(p.cur) > 0 {
		p.full <- probeBatch{rounds: p.cur}
		p.cur = nil
	}
	close(p.full)
	p.mu.Unlock()
	<-p.done
	return p.SinkErr()
}

// WithProbe returns a view of the network sharing the graph, identifier
// assignment and session whose Runs report to p (nil detaches). Like
// WithDelivery, orchestrator-internal runs on the view inherit the
// probe, so attaching one at the pipeline entry point traces every
// phase.
func (net *Network) WithProbe(p *Probe) *Network {
	c := *net
	c.probe = p
	return &c
}

// Probe returns the probe attached to this network view, or nil. Its
// nil-safe methods (SetPhase) let orchestrators label phases without
// checking.
func (net *Network) Probe() *Probe { return net.probe }

// runProbed is the traced twin of simulation.run: identical engine
// semantics (same step / flush / collect order), plus per-round timing
// and record emission. Keeping it separate leaves the disabled path
// untouched.
//
//distvet:wallclock the probed twin exists to measure rounds; every wall field it feeds is documented non-deterministic
func (s *simulation) runProbed() (*Result, error) {
	defer s.close()
	p := s.net.probe
	seq, phase := p.beginRun()
	s.phase = phase
	compute := time.Now()
	// fail ends the run early at a round boundary: vertex failures (and
	// recovered panics) report the partial Result alongside the error;
	// abort wraps the same path with the optional snapshot capture.
	fail := func(rounds int, err error) (*Result, error) {
		res := s.partial(rounds)
		s.emitRun(p, seq, phase, rounds, res.Messages, time.Since(compute), err)
		return res, err
	}
	abort := func(rounds int, err error) (*Result, error) {
		res, aerr := s.abortResult(rounds, err)
		s.emitRun(p, seq, phase, rounds, res.Messages, time.Since(compute), aerr)
		return res, aerr
	}
	rounds := s.startRound
	if rounds == 0 && !s.resumed {
		s.stepRound(0)
		s.collectHalted(0)
		if err := s.failSlot.take(); err != nil {
			return fail(0, err)
		}
		if s.hasAbort {
			if err := s.checkAbort(); err != nil {
				return abort(0, err)
			}
		}
	}
	budget := s.opts.MaxRounds
	if budget == 0 {
		budget = defaultMaxRounds
	}
	var prevSent int64
	// Sharded runs carry per-shard round telemetry: the step is timed
	// shard-segment by shard-segment (stepRoundShardTimed) and the send
	// counters are summed per shard, so every record's Shards slice
	// reports live/messages/wall per shard. The buffers come from the
	// pooled scratch; only the per-record slices allocate.
	st := s.topo.shard
	var segs []int
	var shardNS, shardCum, shardPrev []int64
	if st != nil {
		k := st.k()
		s.rs.shardSegs = grown(s.rs.shardSegs, k+1)
		s.rs.shardNS = grown(s.rs.shardNS, k)
		s.rs.shardCum = grown(s.rs.shardCum, k)
		s.rs.shardPrev = grown(s.rs.shardPrev, k)
		segs, shardNS = s.rs.shardSegs, s.rs.shardNS
		shardCum, shardPrev = s.rs.shardCum, s.rs.shardPrev
		clear(shardPrev)
	}
	if s.resumed {
		// Resumed run: the restored send counters include every pre-kill
		// send, so the per-round message deltas must start from them.
		if st != nil {
			prevSent = s.sentTotalShards(st, shardPrev)
		} else {
			prevSent = s.sentTotal()
		}
	}
	for r := rounds + 1; len(s.live) > 0; r++ {
		if r > budget {
			err := fmt.Errorf("dist: %d nodes still running after %d rounds: %w",
				len(s.live), budget, ErrMaxRounds)
			s.emitRun(p, seq, phase, 0, 0, time.Since(compute), err)
			return nil, err
		}
		live := len(s.live)
		roundStart := time.Now()
		var w int
		var maxNS, meanNS int64
		if st != nil {
			s.liveShardSegs(st, segs)
			w, maxNS, meanNS = s.stepRoundShardTimed(r, st, segs, shardNS)
		} else {
			w, maxNS, meanNS = s.stepRoundTimed(r)
		}
		if s.fw != nil {
			s.flushHaltClears()
		}
		rounds = r
		s.collectHalted(r)
		wall := time.Since(roundStart)
		var cum int64
		var shardStats []ShardRoundStat
		if st != nil {
			cum = s.sentTotalShards(st, shardCum)
			shardStats = make([]ShardRoundStat, st.k())
			for j := range shardStats {
				shardStats[j] = ShardRoundStat{
					Live:     segs[j+1] - segs[j],
					Messages: shardCum[j] - shardPrev[j],
					WallNS:   shardNS[j],
				}
			}
			copy(shardPrev, shardCum)
		} else {
			cum = s.sentTotal()
		}
		p.round(RoundRecord{
			Run:         seq,
			Round:       r,
			Live:        live,
			Messages:    cum - prevSent,
			Workers:     w,
			Batch:       s.fw != nil,
			WallNS:      wall.Nanoseconds(),
			MaxChunkNS:  maxNS,
			MeanChunkNS: meanNS,
			Shards:      shardStats,
		})
		prevSent = cum
		if err := s.failSlot.take(); err != nil {
			return fail(rounds, err)
		}
		if s.hasAbort {
			if err := s.checkAbort(); err != nil {
				return abort(rounds, err)
			}
		}
	}
	outs, msgs := s.collectResults()
	res := &Result{
		Outputs:     outs,
		OutputWords: s.outCol,
		Rounds:      rounds,
		Messages:    msgs,
		Wall:        time.Since(s.start),
		PeakLive:    len(s.topo.live),
	}
	s.emitRun(p, seq, phase, rounds, msgs, time.Since(compute), nil)
	return res, nil
}

// emitRun assembles and stages the run record.
func (s *simulation) emitRun(p *Probe, seq int64, phase string, rounds int, msgs int64, compute time.Duration, err error) {
	rec := RunRecord{
		Run:           seq,
		Phase:         phase,
		Rounds:        rounds,
		Messages:      msgs,
		PeakLive:      len(s.topo.live),
		Workers:       s.workers,
		Batch:         s.fw != nil,
		TopoCached:    s.topoCached,
		ScratchPooled: s.scratchPooled,
		SetupNS:       s.setupNS,
		ComputeNS:     compute.Nanoseconds(),
	}
	if st := s.topo.shard; st != nil {
		rec.Shards = st.k()
	}
	if err != nil {
		rec.Err = err.Error()
	}
	p.endRun(rec)
}

// stepRoundTimed is stepRound with per-chunk wall measurement; it
// reports the fan-out used and the max/mean per-chunk step time.
//
//distvet:wallclock per-chunk step timing is this function's purpose; only non-deterministic wall telemetry depends on it
func (s *simulation) stepRoundTimed(r int) (workers int, maxNS, meanNS int64) {
	m := len(s.live)
	w := s.sweepWorkers(m)
	if w <= 1 {
		s.rs.curV = grown(s.rs.curV, 1)
		t := time.Now()
		s.stepSliceGuarded(r, 0, m, &s.rs.curV[0])
		d := time.Since(t).Nanoseconds()
		return 1, d, d
	}
	chunk := (m + w - 1) / w
	chunks := (m + chunk - 1) / chunk
	s.rs.chunkNS = grown(s.rs.chunkNS, chunks)
	s.rs.curV = grown(s.rs.curV, chunks)
	ns := s.rs.chunkNS
	cur := s.rs.curV
	parfor(m, w, func(lo, hi int) {
		t := time.Now()
		s.stepSliceGuarded(r, lo, hi, &cur[lo/chunk])
		ns[lo/chunk] = time.Since(t).Nanoseconds()
	})
	var sum int64
	for _, d := range ns[:chunks] {
		if d > maxNS {
			maxNS = d
		}
		sum += d
	}
	return w, maxNS, sum / int64(chunks)
}

// sentTotal sums the cumulative per-node send counters. It runs once per
// round on the probed path only; the plain path keeps its single
// end-of-run collection sweep.
func (s *simulation) sentTotal() int64 {
	var total int64
	for _, nd := range s.nodes {
		if nd != nil {
			total += nd.sent
		}
	}
	return total
}
