package dist

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
)

// seedMix is the engine-level word-I/O shadow program: per-vertex typed
// inputs (a seed and a round budget word), one digest word of output,
// and one-word messages. The boxed plane reads seedMixInput structs and
// writes n.Output; the word plane reads InputWords and writes
// SetOutputWord. Any divergence between the planes - input decode,
// output slot, delivery, halting - shifts some digest.
type seedMix struct{}

type seedMixInput struct {
	Seed   int64
	Rounds int64
}

func (seedMix) MessageWords() int { return 1 }
func (seedMix) InputWidth() int   { return 2 }
func (seedMix) OutputWidth() int  { return 1 }

func (seedMix) open(n *Node, seed int64) int64 {
	acc := seed*1000003 + int64(n.ID())
	n.State = acc
	return acc
}

func (seedMix) mix(n *Node, read func(p int) (int64, bool)) int64 {
	acc := n.State.(int64)
	for p := 0; p < n.Degree(); p++ {
		if v, ok := read(p); ok {
			acc = acc*31 + v + int64(p)
		}
	}
	n.State = acc
	return acc
}

func (a seedMix) Init(n *Node) {
	in := n.Input.(seedMixInput)
	n.SendAll(int(a.open(n, in.Seed) % 99991))
}

func (a seedMix) InitWords(n *Node) {
	in := n.InputWords()
	n.SendAllWord(a.open(n, in[0]) % 99991)
}

func (a seedMix) Step(n *Node, inbox []Message) {
	in := n.Input.(seedMixInput)
	acc := a.mix(n, func(p int) (int64, bool) {
		if inbox[p] == nil {
			return 0, false
		}
		return int64(inbox[p].(int)), true
	})
	if int64(n.Round()) >= in.Rounds+int64(n.ID()%2) {
		n.Output = int(acc)
		n.Halt()
		return
	}
	n.SendAll(int(acc % 99991))
}

func (a seedMix) StepWords(n *Node, inbox WordInbox) {
	in := n.InputWords()
	acc := a.mix(n, func(p int) (int64, bool) {
		if !inbox.Has(p) {
			return 0, false
		}
		return inbox.Word(p), true
	})
	if int64(n.Round()) >= in[1]+int64(n.ID()%2) {
		n.SetOutputWord(acc)
		n.Halt()
		return
	}
	n.SendAllWord(acc % 99991)
}

// runWordShadow runs a word-I/O program on both planes - boxed structs
// versus typed columns - and fails unless rounds, messages and decoded
// outputs are identical.
func runWordShadow(t *testing.T, net *Network, algo WordIOAlgorithm, boxedInputs []any, words []int64, opts RunOptions, decode func(*Result) []int64) {
	t.Helper()
	boxedOpts := opts
	boxedOpts.Delivery = DeliveryBoxed
	boxedOpts.Inputs = boxedInputs
	boxed, err := net.Run(algo, boxedOpts)
	if err != nil {
		t.Fatalf("boxed run: %v", err)
	}
	boxedOut := decode(boxed)

	wordOpts := opts
	wordOpts.Delivery = DeliveryBatch
	wordOpts.InputWords = words
	word, err := net.Run(algo, wordOpts)
	if err != nil {
		t.Fatalf("word run: %v", err)
	}
	if word.Outputs != nil {
		t.Fatal("word-I/O run materialized []any outputs")
	}
	if boxed.Rounds != word.Rounds || boxed.Messages != word.Messages {
		t.Fatalf("planes diverged: boxed rounds=%d messages=%d, word rounds=%d messages=%d",
			boxed.Rounds, boxed.Messages, word.Rounds, word.Messages)
	}
	if !reflect.DeepEqual(boxedOut, word.OutputWords) {
		t.Fatalf("planes diverged on outputs:\nboxed %v\nword  %v", boxedOut, word.OutputWords)
	}
}

func seedMixCase(g *graph.Graph, rng *rand.Rand) ([]any, []int64) {
	n := g.N()
	boxed := make([]any, n)
	words := make([]int64, 2*n)
	for v := 0; v < n; v++ {
		in := seedMixInput{Seed: int64(rng.Intn(1000)), Rounds: int64(3 + rng.Intn(3))}
		boxed[v] = in
		words[2*v], words[2*v+1] = in.Seed, in.Rounds
	}
	return boxed, words
}

// decodeInts re-encodes a boxed []any int output as a word column so the
// shadow harness can DeepEqual it against OutputWords. Inactive (nil)
// outputs map to 0, the word plane's unset value.
func decodeInts(res *Result) []int64 {
	out := make([]int64, len(res.Outputs))
	for v, o := range res.Outputs {
		if o != nil {
			out[v] = int64(o.(int))
		}
	}
	return out
}

func TestWordIOShadowsBoxedOnRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(700 + seed))
		g := graph.Gnp(150, 0.05, rng)
		net := NewNetworkPermuted(g, rng)
		boxed, words := seedMixCase(g, rng)
		runWordShadow(t, net, seedMix{}, boxed, words, RunOptions{}, decodeInts)
	}
}

func TestWordIOShadowsBoxedUnderFilters(t *testing.T) {
	rng := rand.New(rand.NewSource(710))
	g := graph.ForestUnion(400, 3, rng)
	net := NewNetworkPermuted(g, rng)
	labels := make([]int, g.N())
	active := make([]bool, g.N())
	for v := range labels {
		labels[v] = rng.Intn(3)
		active[v] = rng.Intn(6) > 0
	}
	boxed, words := seedMixCase(g, rng)
	runWordShadow(t, net, seedMix{}, boxed, words, RunOptions{Labels: labels, Active: active}, decodeInts)
}

// portScale exercises the PerPort layouts on both ends: the input column
// carries one weight word per visible port, the output column one word
// per visible port (weight times the neighbor's opening message).
type portScale struct{}

type portScaleInput struct{ Weights []int64 }

func (portScale) MessageWords() int { return 1 }
func (portScale) InputWidth() int   { return PerPort }
func (portScale) OutputWidth() int  { return PerPort }

func (portScale) Init(n *Node)      { n.SendAll(n.ID() + 13) }
func (portScale) InitWords(n *Node) { n.SendAllWord(int64(n.ID() + 13)) }

func (portScale) Step(n *Node, inbox []Message) {
	in := n.Input.(portScaleInput)
	out := make([]int64, n.Degree())
	for p, m := range inbox {
		if m != nil {
			out[p] = in.Weights[p] * int64(m.(int))
		}
	}
	n.Output = out
	n.Halt()
}

func (portScale) StepWords(n *Node, inbox WordInbox) {
	in := n.InputWords()
	out := n.OutputWords()
	for p := range out {
		if inbox.Has(p) {
			out[p] = in[p] * inbox.Word(p)
		}
	}
	n.Halt()
}

func TestWordIOPerPortPlanes(t *testing.T) {
	rng := rand.New(rand.NewSource(720))
	g := graph.ForestUnion(300, 4, rng) // forest unions include isolated degree-0 vertices
	net := NewNetworkPermuted(g, rng)
	labels := make([]int, g.N())
	for v := range labels {
		labels[v] = rng.Intn(2)
	}

	boxed := make([]any, g.N())
	var words []int64
	ForEachVisible(g, labels, nil, func(v int, ports []int) {
		ws := make([]int64, len(ports))
		for p := range ports {
			ws[p] = int64(1 + (v+p)%7)
			words = append(words, ws[p])
		}
		boxed[v] = portScaleInput{Weights: ws}
	})

	decode := func(res *Result) []int64 {
		var out []int64
		ForEachVisible(g, labels, nil, func(v int, ports []int) {
			ws := res.Outputs[v].([]int64)
			out = append(out, ws...)
		})
		if out == nil {
			out = []int64{}
		}
		return out
	}
	runWordShadow(t, net, portScale{}, boxed, words, RunOptions{Labels: labels}, decode)
}

func TestWordIOColumnReusedAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(730))
	g := graph.Grid(10, 10)
	net := NewNetworkPermuted(g, rng)
	boxed, words := seedMixCase(g, rng)
	_ = boxed
	first, err := net.RunWords(seedMix{}, RunOptions{InputWords: words})
	if err != nil {
		t.Fatal(err)
	}
	firstCopy := append([]int64(nil), first.OutputWords...)
	second, err := net.RunWords(seedMix{}, RunOptions{InputWords: words})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(firstCopy, second.OutputWords) {
		t.Fatal("identical word runs diverged")
	}
	if &first.OutputWords[0] != &second.OutputWords[0] {
		t.Fatal("second run did not reuse the network-pooled output column")
	}
}

func TestWordIOValidation(t *testing.T) {
	g := graph.Path(3)
	net := NewNetwork(g)
	// Wrong input column length.
	if _, err := net.RunWords(seedMix{}, RunOptions{InputWords: make([]int64, 5)}); err == nil {
		t.Error("short input column accepted")
	}
	// Boxed inputs on the word plane.
	if _, err := net.Run(seedMix{}, RunOptions{Inputs: make([]any, 3), Delivery: DeliveryBatch}); err == nil {
		t.Error("boxed Inputs accepted on a word-I/O batch run")
	}
	// Word inputs without a word-I/O algorithm.
	if _, err := net.Run(wordGossip{rounds: 2}, RunOptions{InputWords: make([]int64, 3)}); err == nil {
		t.Error("InputWords accepted for a non-word-I/O algorithm")
	}
	// RunWords refuses the boxed transport rather than falling back.
	boxedNet := net.WithDelivery(DeliveryBoxed)
	if _, err := boxedNet.RunWords(seedMix{}, RunOptions{InputWords: make([]int64, 6)}); err == nil {
		t.Error("RunWords ran on a boxed-forced network")
	}
	if net.WordIO(seedMix{}) != true {
		t.Error("WordIO false for a word-I/O algorithm on an auto network")
	}
	if boxedNet.WordIO(seedMix{}) != false {
		t.Error("WordIO true on a boxed-forced network")
	}
	if net.WordIO(wordGossip{rounds: 1}) != false {
		t.Error("WordIO true for a fixed-width-only algorithm")
	}
}

// inputTouch calls InputWords from the boxed plane, which must panic.
type inputTouch struct{}

func (inputTouch) MessageWords() int              { return 1 }
func (inputTouch) InputWidth() int                { return 1 }
func (inputTouch) OutputWidth() int               { return 1 }
func (inputTouch) Init(n *Node)                   { n.InputWords() }
func (inputTouch) InitWords(n *Node)              { n.SetOutputWords(7) }
func (inputTouch) Step(n *Node, inbox []Message)  {}
func (inputTouch) StepWords(n *Node, i WordInbox) {}

func TestWordIOMisusePanics(t *testing.T) {
	net := NewNetwork(graph.Path(2))
	wantContained(t, "InputWords outside a word-I/O run", func() (*Result, error) {
		return net.Run(inputTouch{}, RunOptions{Delivery: DeliveryBoxed})
	})
	// SetOutputWord with a wider declared output.
	wantContained(t, "SetOutputWord with 2 output words", func() (*Result, error) {
		return net.Run(badSetter{}, RunOptions{Delivery: DeliveryBatch})
	})
	// SetOutputWords with the wrong word count.
	wantContained(t, "sets 1 of 2 output words", func() (*Result, error) {
		return net.Run(badSetter{short: true}, RunOptions{Delivery: DeliveryBatch})
	})
}

type badSetter struct{ short bool }

func (badSetter) MessageWords() int { return 1 }
func (badSetter) InputWidth() int   { return 0 }
func (badSetter) OutputWidth() int  { return 2 }
func (b badSetter) InitWords(n *Node) {
	if b.short {
		n.SetOutputWords(1)
	} else {
		n.SetOutputWord(1)
	}
}
func (badSetter) Init(n *Node)                   {}
func (badSetter) Step(n *Node, inbox []Message)  {}
func (badSetter) StepWords(n *Node, i WordInbox) {}

// failAt fails every vertex whose identifier is divisible by div, in
// round 1, on both planes.
type failAt struct{ div int }

var errFailAt = errors.New("synthetic vertex failure")

func (failAt) MessageWords() int { return 1 }
func (failAt) InputWidth() int   { return 0 }
func (failAt) OutputWidth() int  { return 1 }
func (failAt) Init(n *Node)      { n.SendAll(1) }
func (failAt) InitWords(n *Node) { n.SendAllWord(1) }
func (f failAt) step(n *Node) {
	if n.ID()%f.div == 0 {
		n.Fail(errFailAt)
		return
	}
	n.Halt()
}
func (f failAt) Step(n *Node, inbox []Message)  { f.step(n) }
func (f failAt) StepWords(n *Node, i WordInbox) { f.step(n) }

func TestFailReportsSmallestVertexDeterministically(t *testing.T) {
	rng := rand.New(rand.NewSource(740))
	g := graph.Gnp(900, 0.01, rng)
	net := NewNetworkPermuted(g, rng)

	want := ""
	for _, d := range []Delivery{DeliveryBoxed, DeliveryBatch} {
		for _, workers := range []int{4, 1} { // pinned worker pool and sequential
			_, err := net.Run(failAt{div: 7}, RunOptions{Delivery: d, Workers: workers})
			if !errors.Is(err, errFailAt) {
				t.Fatalf("delivery=%v workers=%d: got %v, want errFailAt", d, workers, err)
			}
			if want == "" {
				want = err.Error()
			} else if err.Error() != want {
				t.Fatalf("nondeterministic failure report:\n%q\n%q", err.Error(), want)
			}
		}
	}
	if !strings.Contains(want, "vertex ") {
		t.Fatalf("failure report %q does not name the vertex", want)
	}
}

func TestVertexAccessor(t *testing.T) {
	rng := rand.New(rand.NewSource(750))
	net := NewNetworkPermuted(graph.Path(5), rng)
	res, err := net.Run(vertexEcho{}, RunOptions{Delivery: DeliveryBatch})
	if err != nil {
		t.Fatal(err)
	}
	for v, w := range res.OutputWords {
		if int(w) != v {
			t.Fatalf("vertex %d reported Vertex()=%d", v, w)
		}
	}
}

type vertexEcho struct{}

func (vertexEcho) MessageWords() int { return 1 }
func (vertexEcho) InputWidth() int   { return 0 }
func (vertexEcho) OutputWidth() int  { return 1 }
func (vertexEcho) InitWords(n *Node) {
	n.SetOutputWord(int64(n.Vertex()))
	n.Halt()
}
func (vertexEcho) Init(n *Node)                   { n.Halt() }
func (vertexEcho) Step(n *Node, inbox []Message)  {}
func (vertexEcho) StepWords(n *Node, i WordInbox) {}
