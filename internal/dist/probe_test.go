package dist

import (
	"math/rand"
	"os"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/graph"
)

// memSink collects flushed records; the mutex makes it safe against the
// probe's flusher goroutine.
type memSink struct {
	mu     sync.Mutex
	rounds []RoundRecord
	runs   []RunRecord
}

func (s *memSink) FlushRounds(recs []RoundRecord) error {
	s.mu.Lock()
	s.rounds = append(s.rounds, recs...) // must copy: the slice is reused
	s.mu.Unlock()
	return nil
}

func (s *memSink) FlushRuns(recs []RunRecord) error {
	s.mu.Lock()
	s.runs = append(s.runs, recs...)
	s.mu.Unlock()
	return nil
}

func probedGossip(t *testing.T, workers int) (*Result, *memSink) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	g := graph.ForestUnion(600, 4, rng)
	net := NewNetworkPermuted(g, rng)
	sink := &memSink{}
	p := NewProbe(sink)
	res, err := net.WithProbe(p).Run(gossip{rounds: 8}, RunOptions{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	return res, sink
}

// TestProbeRoundAccounting pins the trace-record contract: one record
// per Step round, message deltas summing exactly to Result.Messages
// (Init's sends folded into record 1), live counts decreasing to the
// halting pattern, and a matching run record.
func TestProbeRoundAccounting(t *testing.T) {
	res, sink := probedGossip(t, 0)
	if len(sink.rounds) != res.Rounds {
		t.Fatalf("%d round records for %d rounds", len(sink.rounds), res.Rounds)
	}
	var sum int64
	for i, r := range sink.rounds {
		if r.Round != i+1 {
			t.Fatalf("record %d has round %d, want %d", i, r.Round, i+1)
		}
		sum += r.Messages
		if r.Live <= 0 || r.Live > res.PeakLive {
			t.Fatalf("round %d live=%d outside (0, %d]", r.Round, r.Live, res.PeakLive)
		}
	}
	if sum != res.Messages {
		t.Fatalf("round messages sum to %d, Result.Messages = %d", sum, res.Messages)
	}
	if len(sink.runs) != 1 {
		t.Fatalf("%d run records, want 1", len(sink.runs))
	}
	run := sink.runs[0]
	if run.Rounds != res.Rounds || run.Messages != res.Messages || run.PeakLive != res.PeakLive {
		t.Fatalf("run record %+v disagrees with result rounds=%d messages=%d peak=%d",
			run, res.Rounds, res.Messages, res.PeakLive)
	}
	if run.Err != "" {
		t.Fatalf("successful run recorded error %q", run.Err)
	}
}

// TestProbeOnMatchesProbeOff pins the zero-interference property: the
// probed twin of the run loop produces the identical Result.
func TestProbeOnMatchesProbeOff(t *testing.T) {
	plain := runGossip(t, 42, 0)
	probed, _ := probedGossip(t, 0)
	probed.Wall = 0 // host wall time, not deterministic
	if !reflect.DeepEqual(plain, probed) {
		t.Fatal("attaching a probe changed the run result")
	}
}

// TestProbeDeterministicAcrossWorkers pins that every record field
// except the wall-clock and fan-out ones is identical across worker
// counts.
func TestProbeDeterministicAcrossWorkers(t *testing.T) {
	scrub := func(rounds []RoundRecord, runs []RunRecord) {
		for i := range rounds {
			rounds[i].WallNS, rounds[i].MaxChunkNS, rounds[i].MeanChunkNS = 0, 0, 0
			rounds[i].Workers = 0
		}
		for i := range runs {
			runs[i].SetupNS, runs[i].ComputeNS = 0, 0
			runs[i].Workers = 0
		}
	}
	_, seq := probedGossip(t, 1)
	scrub(seq.rounds, seq.runs)
	for _, w := range []int{4, 0} {
		_, par := probedGossip(t, w)
		scrub(par.rounds, par.runs)
		if !reflect.DeepEqual(seq.rounds, par.rounds) {
			t.Fatalf("round records diverge between workers=1 and workers=%d", w)
		}
		if !reflect.DeepEqual(seq.runs, par.runs) {
			t.Fatalf("run records diverge between workers=1 and workers=%d", w)
		}
	}
}

// TestProbeSessionEvents pins the run-level session telemetry: a second
// run on the same network view hits the topology cache and reuses the
// pooled scratch; run sequence numbers grow; the probed rounds carry the
// delivery plane.
func TestProbeSessionEvents(t *testing.T) {
	net := NewNetworkPermuted(graph.Grid(8, 8), rand.New(rand.NewSource(5)))
	sink := &memSink{}
	p := NewProbe(sink)
	probed := net.WithProbe(p)
	for i := 0; i < 2; i++ {
		if _, err := probed.Run(gossip{rounds: 3}, RunOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	if len(sink.runs) != 2 {
		t.Fatalf("%d run records, want 2", len(sink.runs))
	}
	first, second := sink.runs[0], sink.runs[1]
	if first.Run >= second.Run {
		t.Fatalf("run sequence not increasing: %d then %d", first.Run, second.Run)
	}
	if first.TopoCached {
		t.Error("first run reported a topology cache hit")
	}
	if !second.TopoCached {
		t.Error("second run missed the topology cache")
	}
	if !second.ScratchPooled {
		t.Error("second run did not reuse the pooled scratch")
	}
	for _, r := range sink.rounds {
		if r.Batch {
			t.Error("boxed gossip round flagged as batch delivery")
		}
	}
}

// TestProbeMultiChunkFlush pushes more rounds through the probe than one
// ring chunk holds, checking nothing is lost or reordered.
func TestProbeMultiChunkFlush(t *testing.T) {
	sink := &memSink{}
	p := NewProbe(sink)
	net := NewNetwork(graph.Path(2)).WithProbe(p)
	const runs = 3
	for i := 0; i < runs; i++ {
		// A long path-free run: gossip on K2 for many rounds.
		if _, err := net.Run(gossip{rounds: probeChunk + 7}, RunOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	want := runs * (probeChunk + 7)
	if len(sink.rounds) != want {
		t.Fatalf("%d round records, want %d", len(sink.rounds), want)
	}
	for i := 1; i < len(sink.rounds); i++ {
		a, b := sink.rounds[i-1], sink.rounds[i]
		if a.Run == b.Run && b.Round != a.Round+1 {
			t.Fatalf("records reordered within run %d: round %d then %d", a.Run, a.Round, b.Round)
		}
		if a.Run != b.Run && b.Round != 1 {
			t.Fatalf("run %d does not start at round 1", b.Run)
		}
	}
	if len(sink.runs) != runs {
		t.Fatalf("%d run records, want %d", len(sink.runs), runs)
	}
}

// TestProbeRecordsFailedRun pins the error path: an over-budget run
// emits a run record carrying the error and its staged round records.
func TestProbeRecordsFailedRun(t *testing.T) {
	sink := &memSink{}
	p := NewProbe(sink)
	net := NewNetwork(graph.Path(9)).WithProbe(p)
	_, err := net.Run(chainColor{}, RunOptions{Inputs: pathInputs(9), MaxRounds: 4})
	if err == nil {
		t.Fatal("over-budget run succeeded")
	}
	p.Close()
	if len(sink.runs) != 1 {
		t.Fatalf("%d run records, want 1", len(sink.runs))
	}
	if sink.runs[0].Err == "" {
		t.Fatal("failed run recorded no error")
	}
	if len(sink.rounds) != 4 {
		t.Fatalf("%d round records before the abort, want 4", len(sink.rounds))
	}
}

// TestProbeInitOnlyRunEmitsNoRounds pins the documented Rounds==0 case:
// no round records, Init messages visible only in the run record.
func TestProbeInitOnlyRunEmitsNoRounds(t *testing.T) {
	sink := &memSink{}
	p := NewProbe(sink)
	algo := algoFuncs{
		init: func(n *Node) { n.Output = n.ID(); n.SendAll(0); n.Halt() },
	}
	net := NewNetwork(graph.Star(5)).WithProbe(p)
	res, err := net.Run(algo, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if res.Rounds != 0 {
		t.Fatalf("rounds = %d, want 0", res.Rounds)
	}
	if len(sink.rounds) != 0 {
		t.Fatalf("%d round records for a 0-round run", len(sink.rounds))
	}
	if len(sink.runs) != 1 || sink.runs[0].Messages != res.Messages {
		t.Fatalf("run record %+v, want 1 record with %d messages", sink.runs, res.Messages)
	}
}

// TestProbeTotals pins the live aggregate counters scraped by -serve.
func TestProbeTotals(t *testing.T) {
	res, _ := probedGossip(t, 0)
	sink := &memSink{}
	p := NewProbe(sink)
	rng := rand.New(rand.NewSource(42))
	g := graph.ForestUnion(600, 4, rng)
	net := NewNetworkPermuted(g, rng).WithProbe(p)
	if _, err := net.Run(gossip{rounds: 8}, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	tot := p.Totals()
	p.Close()
	if tot.Runs != 1 || tot.Rounds != int64(res.Rounds) || tot.Messages != res.Messages {
		t.Fatalf("totals %+v, want runs=1 rounds=%d messages=%d", tot, res.Rounds, res.Messages)
	}
}

// BenchmarkRunProbeOff / BenchmarkRunProbeOn quantify the probe's cost:
// the disabled path must stay within noise of the seed run loop (the CI
// microbenchmark gate), the enabled path shows the tracing overhead.
func benchGossipNet(b *testing.B) *Network {
	rng := rand.New(rand.NewSource(9))
	g := graph.ForestUnion(2000, 4, rng)
	return NewNetworkPermuted(g, rng)
}

func BenchmarkRunProbeOff(b *testing.B) {
	net := benchGossipNet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Run(gossip{rounds: 6}, RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

type nullSink struct{}

func (nullSink) FlushRounds([]RoundRecord) error { return nil }
func (nullSink) FlushRuns([]RunRecord) error     { return nil }

func BenchmarkRunProbeOn(b *testing.B) {
	net := benchGossipNet(b)
	p := NewProbe(nullSink{})
	defer p.Close()
	probed := net.WithProbe(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := probed.Run(gossip{rounds: 6}, RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestProbeDisabledOverheadGate is the CI gate on the cost of the probe
// plumbing for unprobed runs. The disabled path is the pre-probe round
// loop plus a single nil check (simulation.run), so the one exact,
// machine-independent assertion is on allocations: a steady-state run
// must allocate identically with and without a probe attached (the
// probe's ring is preallocated and its records are emitted off the
// round loop). Wall clock is measured on interleaved samples and the
// disabled-path median must not exceed the probed twin's - the probed
// twin does strictly more work per round, so on any sane machine the
// disabled overhead versus the pre-probe loop is bounded well under
// the probed delta. Opt-in via PROBE_OVERHEAD_GATE=1: wall medians on
// shared runners are too noisy for an always-on test.
func TestProbeDisabledOverheadGate(t *testing.T) {
	if os.Getenv("PROBE_OVERHEAD_GATE") == "" {
		t.Skip("set PROBE_OVERHEAD_GATE=1 to run the overhead gate")
	}
	rng := rand.New(rand.NewSource(9))
	g := graph.ForestUnion(2000, 4, rng)
	net := NewNetworkPermuted(g, rng)
	p := NewProbe(nullSink{})
	defer p.Close()
	probed := net.WithProbe(p)

	run := func(n *Network) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := n.Run(gossip{rounds: 6}, RunOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	// Warm the session caches so both sides measure the pooled steady
	// state, then interleave samples so drift hits both sides equally.
	testing.Benchmark(run(net))
	testing.Benchmark(run(probed))
	const samples = 5
	off := make([]float64, 0, samples)
	on := make([]float64, 0, samples)
	var offAllocs, onAllocs int64
	for i := 0; i < samples; i++ {
		ro := testing.Benchmark(run(net))
		rp := testing.Benchmark(run(probed))
		off = append(off, float64(ro.NsPerOp()))
		on = append(on, float64(rp.NsPerOp()))
		offAllocs, onAllocs = ro.AllocsPerOp(), rp.AllocsPerOp()
	}
	sort.Float64s(off)
	sort.Float64s(on)
	offMed, onMed := off[samples/2], on[samples/2]
	t.Logf("disabled %.0f ns/op (%d allocs), probed %.0f ns/op (%d allocs), enabled overhead %+.2f%%",
		offMed, offAllocs, onMed, onAllocs, 100*(onMed-offMed)/offMed)
	if offAllocs != onAllocs {
		t.Errorf("probe changed steady-state allocations: %d without vs %d with", offAllocs, onAllocs)
	}
	if offMed > onMed*1.01 {
		t.Errorf("disabled path (%.0f ns/op) slower than the probed twin (%.0f ns/op)", offMed, onMed)
	}
}
