package dist

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/graph"
)

func TestTallyAccounting(t *testing.T) {
	var a Tally
	if a.Rounds() != 0 || a.Messages() != 0 || len(a.Phases()) != 0 {
		t.Fatal("zero tally not empty")
	}
	a.AddRounds("one", 3, 10)
	a.AddRounds("two", 4, 0)

	var b Tally
	b.AddRounds("three", 5, 7)
	b.Merge(&a)
	b.Merge(nil) // nil-safe

	if got, want := b.Rounds(), 5+3+4; got != want {
		t.Errorf("rounds = %d, want %d", got, want)
	}
	if got, want := b.Messages(), int64(7+10); got != want {
		t.Errorf("messages = %d, want %d", got, want)
	}
	phases := b.Phases()
	names := []string{"three", "one", "two"}
	if len(phases) != len(names) {
		t.Fatalf("phases = %v", phases)
	}
	for i, p := range phases {
		if p.Name != names[i] {
			t.Errorf("phase %d = %q, want %q", i, p.Name, names[i])
		}
	}
	// Phases() must be a copy: mutating it must not corrupt the tally.
	phases[0].Rounds = 999
	if b.Rounds() != 12 {
		t.Error("Phases() exposed internal storage")
	}
	// Merge copies state, not aliasing: growing a later must not affect b.
	a.AddRounds("four", 100, 0)
	if b.Rounds() != 12 {
		t.Error("Merge aliased the source tally")
	}
}

func TestTallyWallAttribution(t *testing.T) {
	var a Tally
	a.AddPhase("timed", 2, 5, 3*time.Millisecond, 100)
	a.AddStats("stats", RunStats{Rounds: 1, Messages: 2, Wall: 2 * time.Millisecond, PeakLive: 250})
	a.AddRounds("legacy", 1, 1) // no wall attribution
	if got, want := a.Wall(), 5*time.Millisecond; got != want {
		t.Errorf("wall = %v, want %v", got, want)
	}
	if got := a.PeakLive(); got != 250 {
		t.Errorf("peak live = %d, want 250", got)
	}

	// Merge must preserve the wall and peak-live fields phase by phase.
	var b Tally
	b.Merge(&a)
	if b.Wall() != a.Wall() || b.PeakLive() != a.PeakLive() {
		t.Errorf("merge dropped attribution: wall %v/%v peak %d/%d",
			b.Wall(), a.Wall(), b.PeakLive(), a.PeakLive())
	}
	if b.NumPhases() != 3 {
		t.Fatalf("merged %d phases, want 3", b.NumPhases())
	}
	for i := 0; i < b.NumPhases(); i++ {
		if b.Phase(i) != a.Phase(i) {
			t.Errorf("phase %d changed across merge: %+v vs %+v", i, b.Phase(i), a.Phase(i))
		}
	}
	if b.Phase(2).Wall != 0 || b.Phase(2).PeakLive != 0 {
		t.Errorf("legacy AddRounds phase gained attribution: %+v", b.Phase(2))
	}
}

func TestIntInputsRoundTrip(t *testing.T) {
	in := IntInputs([]int{4, 5, 6})
	want := []any{4, 5, 6}
	if !reflect.DeepEqual(in, want) {
		t.Fatalf("IntInputs = %v, want %v", in, want)
	}
}

func TestIntOutputs(t *testing.T) {
	res := &Result{Outputs: []any{7, nil, 9}}
	got, err := IntOutputs(res, -5)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{7, -5, 9}; !reflect.DeepEqual(got, want) {
		t.Fatalf("IntOutputs = %v, want %v", got, want)
	}
	if _, err := IntOutputs(&Result{Outputs: []any{7, "oops"}}, 0); err == nil {
		t.Error("non-int output accepted")
	}
	if _, err := IntOutputs(&Result{Outputs: []any{errTest}}, 0); err == nil {
		t.Error("error output not propagated")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }

func TestComposeLabelsDenseAndDeterministic(t *testing.T) {
	a := []int{0, 0, 1, 1, 0}
	b := []int{5, 5, 5, 7, 9}
	out := ComposeLabels(a, b)
	// Pairs: (0,5)(0,5)(1,5)(1,7)(0,9) -> first-appearance ids 0,0,1,2,3.
	if want := []int{0, 0, 1, 2, 3}; !reflect.DeepEqual(out, want) {
		t.Fatalf("ComposeLabels = %v, want %v", out, want)
	}
	if again := ComposeLabels(a, b); !reflect.DeepEqual(out, again) {
		t.Fatal("ComposeLabels not deterministic")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch not rejected")
		}
	}()
	ComposeLabels([]int{1}, []int{1, 2})
}

func TestVisiblePortsFiltering(t *testing.T) {
	// K5, vertex 0: neighbors 1,2,3,4.
	g := graph.Complete(5)
	labels := []int{0, 0, 1, 0, 0}
	active := []bool{true, true, true, false, true}

	if got := VisiblePorts(g, nil, nil, 0); !reflect.DeepEqual(got, []int{1, 2, 3, 4}) {
		t.Errorf("unfiltered = %v", got)
	}
	if got := VisiblePorts(g, labels, nil, 0); !reflect.DeepEqual(got, []int{1, 3, 4}) {
		t.Errorf("label-filtered = %v", got)
	}
	if got := VisiblePorts(g, nil, active, 0); !reflect.DeepEqual(got, []int{1, 2, 4}) {
		t.Errorf("active-filtered = %v", got)
	}
	if got := VisiblePorts(g, labels, active, 0); !reflect.DeepEqual(got, []int{1, 4}) {
		t.Errorf("both-filtered = %v", got)
	}
	// Port order must match the sorted adjacency list positions.
	if got := VisiblePorts(g, labels, active, 2); len(got) != 0 {
		t.Errorf("vertex 2 (lone label) sees %v, want none", got)
	}
}

func TestComposeLabelsIntoInPlaceAndReused(t *testing.T) {
	a := []int{0, 0, 1, 1, 0}
	b := []int{5, 5, 5, 7, 9}
	want := ComposeLabels(a, b)

	// In-place refinement (dst aliases a) with a reused scratch map.
	ids := map[[2]int]int{{-1, -1}: 99} // stale entries must be cleared
	dst := append([]int(nil), a...)
	got := ComposeLabelsInto(dst, dst, b, ids)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("in-place compose = %v, want %v", got, want)
	}
	// Second use of the same map on fresh inputs.
	got2 := ComposeLabelsInto(make([]int, len(a)), a, b, ids)
	if !reflect.DeepEqual(got2, want) {
		t.Fatalf("reused-map compose = %v, want %v", got2, want)
	}
}

func TestForEachVisibleMatchesVisiblePorts(t *testing.T) {
	g := graph.Complete(5)
	labels := []int{0, 0, 1, 0, 0}
	active := []bool{true, true, true, false, true}
	for _, tc := range []struct {
		labels []int
		active []bool
	}{{nil, nil}, {labels, nil}, {nil, active}, {labels, active}} {
		visited := 0
		ForEachVisible(g, tc.labels, tc.active, func(v int, ports []int) {
			if tc.active != nil && !tc.active[v] {
				t.Fatalf("inactive vertex %d visited", v)
			}
			if want := VisiblePorts(g, tc.labels, tc.active, v); !reflect.DeepEqual(append([]int{}, ports...), append([]int{}, want...)) {
				t.Fatalf("vertex %d ports = %v, want %v", v, ports, want)
			}
			visited++
		})
		wantVisited := g.N()
		if tc.active != nil {
			wantVisited = 4
		}
		if visited != wantVisited {
			t.Fatalf("visited %d vertices, want %d", visited, wantVisited)
		}
	}
}

func TestIntsFromWordsAndWordResultGuards(t *testing.T) {
	wordRes := &Result{OutputWords: []int64{4, 5, 6}}
	dst := make([]int, 3)
	if err := IntsFromWords(wordRes, dst); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dst, []int{4, 5, 6}) {
		t.Fatalf("IntsFromWords = %v", dst)
	}
	if err := IntsFromWords(wordRes, make([]int, 2)); err == nil {
		t.Error("length mismatch not rejected")
	}
	if err := IntsFromWords(&Result{Outputs: []any{1}}, dst); err == nil {
		t.Error("boxed result accepted by IntsFromWords")
	}
	// The boxed decoder must refuse word-I/O results rather than
	// silently returning an empty slice.
	if _, err := IntOutputs(wordRes, 0); err == nil {
		t.Error("IntOutputs accepted a word-I/O result")
	}
}
