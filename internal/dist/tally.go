package dist

import "time"

// PhaseStat is the cost of one named phase of a multi-stage pipeline:
// the LOCAL measures (rounds, messages) plus the host-side attribution
// (wall time of the phase's engine runs, peak live-set size).
type PhaseStat struct {
	Name     string
	Rounds   int
	Messages int64
	// Wall is the wall time attributed to the phase - for phases that are
	// a single engine run, Result.Wall; for composite phases, the sum the
	// orchestrator recorded. Zero for phases recorded through the legacy
	// AddRounds (no wall attribution).
	Wall time.Duration
	// PeakLive is the largest live-vertex count any of the phase's runs
	// started with (0 when unattributed).
	PeakLive int
}

// Tally accumulates round and message counts across the phases of a
// pipeline (H-partition, level coloring, orientation, ...). The zero
// value is an empty tally ready for use.
type Tally struct {
	phases []PhaseStat
}

// AddRounds records a phase with the given LOCAL cost and no wall
// attribution. Phases with measured wall time use AddPhase.
func (t *Tally) AddRounds(name string, rounds int, messages int64) {
	t.phases = append(t.phases, PhaseStat{Name: name, Rounds: rounds, Messages: messages})
}

// AddPhase records a phase with full attribution: LOCAL cost plus wall
// time and peak live-set size.
func (t *Tally) AddPhase(name string, rounds int, messages int64, wall time.Duration, peakLive int) {
	t.phases = append(t.phases, PhaseStat{
		Name: name, Rounds: rounds, Messages: messages, Wall: wall, PeakLive: peakLive,
	})
}

// AddStats is AddPhase taking an engine RunStats, for phases that are
// exactly one engine run.
func (t *Tally) AddStats(name string, st RunStats) {
	t.AddPhase(name, st.Rounds, st.Messages, st.Wall, st.PeakLive)
}

// Merge appends every phase of other (nil-safe) to t. Phases are copied
// whole, so wall and peak-live attribution survives merging.
func (t *Tally) Merge(other *Tally) {
	if other == nil {
		return
	}
	t.phases = append(t.phases, other.phases...)
}

// Rounds returns the total rounds across all phases - the LOCAL running
// time of the whole pipeline.
func (t *Tally) Rounds() int {
	total := 0
	for _, p := range t.phases {
		total += p.Rounds
	}
	return total
}

// Messages returns the total messages across all phases.
func (t *Tally) Messages() int64 {
	var total int64
	for _, p := range t.phases {
		total += p.Messages
	}
	return total
}

// Wall returns the total attributed wall time across all phases. Phases
// recorded with AddRounds contribute zero.
func (t *Tally) Wall() time.Duration {
	var total time.Duration
	for _, p := range t.phases {
		total += p.Wall
	}
	return total
}

// PeakLive returns the largest per-phase peak live-set size.
func (t *Tally) PeakLive() int {
	peak := 0
	for _, p := range t.phases {
		if p.PeakLive > peak {
			peak = p.PeakLive
		}
	}
	return peak
}

// NumPhases returns the number of recorded phases.
func (t *Tally) NumPhases() int { return len(t.phases) }

// Phase returns the i'th recorded phase. Together with NumPhases it is
// the allocation-free iteration path; Phases allocates a fresh copy per
// call and belongs in one-shot reporting code, not hot summarizer loops.
func (t *Tally) Phase(i int) PhaseStat { return t.phases[i] }

// Phases returns a copy of the per-phase breakdown in recording order.
// Every call allocates a fresh slice (callers own and may mutate it);
// loops that only read should iterate NumPhases/Phase instead.
func (t *Tally) Phases() []PhaseStat {
	return append([]PhaseStat(nil), t.phases...)
}

// TallyFromPhases rebuilds a Tally from a recorded phase breakdown - the
// inverse of Phases, used by checkpoint decoders that serialized the
// per-phase stats (PhaseStat is plain exported data). The slice is
// copied; the caller keeps ownership.
func TallyFromPhases(phases []PhaseStat) *Tally {
	return &Tally{phases: append([]PhaseStat(nil), phases...)}
}
