package dist

// PhaseStat is the cost of one named phase of a multi-stage pipeline.
type PhaseStat struct {
	Name     string
	Rounds   int
	Messages int64
}

// Tally accumulates round and message counts across the phases of a
// pipeline (H-partition, level coloring, orientation, ...). The zero
// value is an empty tally ready for use.
type Tally struct {
	phases []PhaseStat
}

// AddRounds records a phase with the given cost.
func (t *Tally) AddRounds(name string, rounds int, messages int64) {
	t.phases = append(t.phases, PhaseStat{Name: name, Rounds: rounds, Messages: messages})
}

// Merge appends every phase of other (nil-safe) to t.
func (t *Tally) Merge(other *Tally) {
	if other == nil {
		return
	}
	t.phases = append(t.phases, other.phases...)
}

// Rounds returns the total rounds across all phases - the LOCAL running
// time of the whole pipeline.
func (t *Tally) Rounds() int {
	total := 0
	for _, p := range t.phases {
		total += p.Rounds
	}
	return total
}

// Messages returns the total messages across all phases.
func (t *Tally) Messages() int64 {
	var total int64
	for _, p := range t.phases {
		total += p.Messages
	}
	return total
}

// Phases returns a copy of the per-phase breakdown in recording order.
func (t *Tally) Phases() []PhaseStat {
	return append([]PhaseStat(nil), t.phases...)
}
