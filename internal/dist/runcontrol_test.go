package dist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
)

// This file tests the run-control plane: cancellation and deadlines at
// round boundaries, vertex-program panic containment, and engine
// checkpoint/resume. The invariant under test everywhere: aborting,
// panicking or resuming never perturbs the session - the next full run
// on the same Network is bit-for-bit the run a fresh Network produces.

// roundCtx is a context.Context whose Err trips after `after` calls.
// The engine polls ctx.Err() exactly once per round boundary (the
// boundary after completed round r is poll r+1 on unprobed runs), so
// roundCtx cancels a run at a chosen round deterministically - no
// timers, no goroutines.
type roundCtx struct {
	mu    sync.Mutex
	calls int
	after int
}

func cancelAtRound(k int) *roundCtx { return &roundCtx{after: k} }

func (c *roundCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *roundCtx) Done() <-chan struct{}       { return nil }
func (c *roundCtx) Value(any) any               { return nil }
func (c *roundCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.calls > c.after {
		return context.Canceled
	}
	return nil
}

// runFull runs wordGossip to completion with the given options and
// returns the result.
func runFull(t *testing.T, net *Network, opts RunOptions) *Result {
	t.Helper()
	res, err := net.Run(wordGossip{rounds: 6}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sameRun(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Rounds != want.Rounds || got.Messages != want.Messages {
		t.Fatalf("%s: rounds/messages %d/%d, want %d/%d", label, got.Rounds, got.Messages, want.Rounds, want.Messages)
	}
	if !reflect.DeepEqual(got.Outputs, want.Outputs) {
		t.Fatalf("%s: outputs diverge", label)
	}
	if !reflect.DeepEqual(got.OutputWords, want.OutputWords) {
		t.Fatalf("%s: output words diverge", label)
	}
}

// TestCancelAtEveryRound is the session-safety gate for round-boundary
// aborts: cancel a run at every round boundary k, in every delivery
// mode, at several worker counts and under sharding, and require (a) a
// partial Result wrapped in ErrCanceled and (b) that the SAME session's
// next full run matches a fresh network's bit for bit.
func TestCancelAtEveryRound(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := graph.ForestUnion(800, 4, rng)
	ids := NewNetworkPermuted(g, rand.New(rand.NewSource(99))).IDs()

	type mode struct {
		name  string
		view  func(t *testing.T) *Network
		opts  RunOptions
		fresh func(t *testing.T) *Network
	}
	build := func(t *testing.T, d Delivery, workers, shards int) *Network {
		t.Helper()
		net, err := NewNetworkWithIDs(g, ids)
		if err != nil {
			t.Fatal(err)
		}
		net = net.WithDelivery(d)
		if workers > 0 {
			net = net.WithWorkers(workers)
		}
		if shards > 1 {
			sh, err := graph.NewSharding(g.N(), shards)
			if err != nil {
				t.Fatal(err)
			}
			if net, err = net.Sharded(sh); err != nil {
				t.Fatal(err)
			}
		}
		return net
	}
	var modes []mode
	for _, d := range []Delivery{DeliveryBoxed, DeliveryBatch} {
		for _, w := range []int{1, 4, 0} {
			d, w := d, w
			modes = append(modes, mode{
				name:  fmt.Sprintf("%v/workers=%d", d, w),
				view:  func(t *testing.T) *Network { return build(t, d, w, 1) },
				fresh: func(t *testing.T) *Network { return build(t, d, w, 1) },
			})
		}
	}
	for _, w := range []int{1, 0} {
		w := w
		modes = append(modes, mode{
			name:  fmt.Sprintf("sharded/workers=%d", w),
			view:  func(t *testing.T) *Network { return build(t, DeliveryBatch, w, 4) },
			fresh: func(t *testing.T) *Network { return build(t, DeliveryBatch, w, 4) },
		})
	}

	for _, m := range modes {
		m := m
		t.Run(m.name, func(t *testing.T) {
			net := m.view(t)
			ref := runFull(t, m.fresh(t), RunOptions{})
			for k := 0; k <= ref.Rounds; k++ {
				res, err := net.Run(wordGossip{rounds: 6}, RunOptions{Context: cancelAtRound(k)})
				if k == ref.Rounds {
					// The run finishes before poll k+1 fires mid-run; whether
					// the final boundary polls depends on live-set emptiness,
					// so only the error-free completion is pinned here.
					if err != nil && !errors.Is(err, ErrCanceled) {
						t.Fatalf("cancel@%d: %v", k, err)
					}
					continue
				}
				if !errors.Is(err, ErrCanceled) {
					t.Fatalf("cancel@%d: err=%v, want ErrCanceled", k, err)
				}
				if res == nil {
					t.Fatalf("cancel@%d: no partial result", k)
				}
				if res.Rounds != k {
					t.Fatalf("cancel@%d: partial result reports %d rounds", k, res.Rounds)
				}
				// Session reuse after the abort: bit-for-bit normal.
				sameRun(t, fmt.Sprintf("after cancel@%d", k), runFull(t, net, RunOptions{}), ref)
			}
		})
	}
}

// TestWithContextView pins the Network-level context plumbing: a view's
// context cancels runs that pass none of their own, and an explicit
// RunOptions.Context wins over the view's.
func TestWithContextView(t *testing.T) {
	net := NewNetwork(graph.Path(64))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := net.WithContext(ctx).Run(wordGossip{rounds: 4}, RunOptions{}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("view context ignored: %v", err)
	}
	// An explicit run context overrides the (canceled) view context.
	if _, err := net.WithContext(ctx).Run(wordGossip{rounds: 4}, RunOptions{Context: context.Background()}); err != nil {
		t.Fatalf("run context did not override view context: %v", err)
	}
}

// TestWallBudget pins the deadline source: an already-exhausted wall
// budget aborts at the first boundary with ErrDeadline; a generous one
// does not abort at all. A context deadline also maps to ErrDeadline.
func TestWallBudget(t *testing.T) {
	net := NewNetwork(graph.Path(64))
	res, err := net.Run(wordGossip{rounds: 4}, RunOptions{WallBudget: time.Nanosecond})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("exhausted wall budget: err=%v, want ErrDeadline", err)
	}
	if res == nil || res.Rounds != 0 {
		t.Fatalf("exhausted wall budget: partial result %+v", res)
	}
	if _, err := net.Run(wordGossip{rounds: 4}, RunOptions{WallBudget: time.Hour}); err != nil {
		t.Fatalf("generous wall budget aborted: %v", err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := net.Run(wordGossip{rounds: 4}, RunOptions{Context: ctx}); !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired context deadline: err=%v, want ErrDeadline", err)
	}
	if _, err := net.Run(wordGossip{rounds: 4}, RunOptions{WallBudget: -time.Second}); err == nil {
		t.Fatal("negative wall budget accepted")
	}
}

// panicProg panics at (vertex from, round); every vertex >= from panics
// there, so the smallest-vertex-wins report is observable at every
// worker count. Other rounds gossip normally.
type panicProg struct {
	from, round, rounds int
}

func (p panicProg) trip(n *Node) {
	if n.Round() == p.round && n.Vertex() >= p.from {
		panic(fmt.Sprintf("chaos trip at vertex %d", n.Vertex()))
	}
}

func (p panicProg) Init(n *Node) {
	p.trip(n)
	n.SendAll(1)
}

func (p panicProg) Step(n *Node, inbox []Message) {
	p.trip(n)
	if n.Round() >= p.rounds {
		n.Output = n.Round()
		n.Halt()
		return
	}
	n.SendAll(1)
}

// TestPanicContainment pins panic recovery into the deterministic
// Node.Fail path: the error wraps ErrVertexPanic, names the globally
// smallest panicking vertex, the round, and the recovered value - at
// every worker count, on the boxed and batch-free (boxed-only program)
// paths, and the session stays reusable afterwards.
func TestPanicContainment(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.ForestUnion(700, 3, rng)
	ids := NewNetworkPermuted(g, rand.New(rand.NewSource(7))).IDs()
	for _, workers := range []int{1, 2, 3, 4, 8, 0} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			net, err := NewNetworkWithIDs(g, ids)
			if err != nil {
				t.Fatal(err)
			}
			if workers > 0 {
				net = net.WithWorkers(workers)
			}
			for _, round := range []int{0, 2} {
				res, err := net.Run(panicProg{from: 137, round: round, rounds: 5}, RunOptions{})
				if !errors.Is(err, ErrVertexPanic) {
					t.Fatalf("round %d: err=%v, want ErrVertexPanic", round, err)
				}
				for _, want := range []string{
					"vertex 137",
					fmt.Sprintf("round %d", round),
					"chaos trip at vertex 137",
				} {
					if !strings.Contains(err.Error(), want) {
						t.Errorf("round %d: error %q does not mention %q", round, err, want)
					}
				}
				if res == nil {
					t.Fatalf("round %d: no partial result", round)
				}
			}
			// Session reuse after containment.
			ref := runFull(t, NewNetwork(g), RunOptions{})
			net2, _ := NewNetworkWithIDs(g, NewNetwork(g).IDs())
			_ = net2
			after, err := net.Run(wordGossip{rounds: 6}, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := NewNetworkWithIDs(g, ids)
			if err != nil {
				t.Fatal(err)
			}
			want := runFull(t, fresh, RunOptions{})
			sameRun(t, "after panic", after, want)
			_ = ref
		})
	}
}

// TestPanicContainmentSharded runs the same containment checks under
// the shard-structured engine.
func TestPanicContainmentSharded(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graph.ForestUnion(900, 3, rng)
	sh, err := graph.NewSharding(g.N(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 0} {
		net, err := NewNetwork(g).Sharded(sh)
		if err != nil {
			t.Fatal(err)
		}
		if workers > 0 {
			net = net.WithWorkers(workers)
		}
		res, err := net.Run(panicWords{from: 211, round: 1, rounds: 5}, RunOptions{Delivery: DeliveryBatch})
		if !errors.Is(err, ErrVertexPanic) {
			t.Fatalf("workers=%d: err=%v, want ErrVertexPanic", workers, err)
		}
		if !strings.Contains(err.Error(), "vertex 211") {
			t.Errorf("workers=%d: error %q does not name vertex 211", workers, err)
		}
		if res == nil {
			t.Fatalf("workers=%d: no partial result", workers)
		}
		// The sharded session still runs clean afterwards.
		after, err := net.Run(wordGossip{rounds: 6}, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want := runFull(t, NewNetwork(g), RunOptions{Delivery: DeliveryBatch})
		sameRun(t, fmt.Sprintf("sharded workers=%d after panic", workers), after, want)
	}
}

// panicWords is panicProg for the batch transport.
type panicWords struct {
	from, round, rounds int
}

func (panicWords) MessageWords() int { return 1 }

func (p panicWords) trip(n *Node) {
	if n.Round() == p.round && n.Vertex() >= p.from {
		panic(fmt.Sprintf("chaos trip at vertex %d", n.Vertex()))
	}
}

func (p panicWords) Init(n *Node)      { p.trip(n); n.SendAll(1) }
func (p panicWords) InitWords(n *Node) { p.trip(n); n.SendAllWord(1) }

func (p panicWords) Step(n *Node, inbox []Message) {
	p.trip(n)
	if n.Round() >= p.rounds {
		n.Halt()
		return
	}
	n.SendAll(1)
}

func (p panicWords) StepWords(n *Node, inbox WordInbox) {
	p.trip(n)
	if n.Round() >= p.rounds {
		n.Halt()
		return
	}
	n.SendAllWord(1)
}

// waveWords is a multi-round word-I/O program whose per-node state
// lives ENTIRELY in the input column (scratch) - the snapshot
// contract's qualifying shape. in[0] is the rolling digest, in[1] the
// round budget; output is the final digest.
type waveWords struct{}

func (waveWords) MessageWords() int { return 1 }
func (waveWords) InputWidth() int   { return 2 }
func (waveWords) OutputWidth() int  { return 1 }

func (waveWords) InitWords(n *Node) {
	in := n.InputWords()
	in[0] = in[0]*1000003 + int64(n.ID())
	n.SendAllWord(in[0] % 99991)
}

func (waveWords) StepWords(n *Node, inbox WordInbox) {
	in := n.InputWords()
	acc := in[0]
	for p := 0; p < n.Degree(); p++ {
		if inbox.Has(p) {
			acc = acc*31 + inbox.Word(p) + int64(p)
		}
	}
	in[0] = acc
	if int64(n.Round()) >= in[1]+int64(n.ID()%3) {
		n.SetOutputWord(acc)
		n.Halt()
		return
	}
	n.SendAllWord(acc % 99991)
}

// The boxed plane is unused by the snapshot tests; a program that keeps
// state in columns has no boxed twin.
func (waveWords) Init(n *Node)                { n.Failf("waveWords has no boxed plane") }
func (waveWords) Step(n *Node, inbox []Message) {}

func waveInputs(n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	words := make([]int64, 2*n)
	for v := 0; v < n; v++ {
		words[2*v] = int64(rng.Intn(1000))
		words[2*v+1] = int64(4 + rng.Intn(3))
	}
	return words
}

// TestSnapshotResumeEveryRound is the checkpoint gate: abort a word-I/O
// run at every round boundary with SnapshotOnAbort, push the snapshot
// through the full DSN1 serialize/parse round trip, resume on a FRESH
// network, and require outputs, absolute rounds and absolute messages
// to match the uninterrupted run bit for bit. Shard counts vary between
// capture and resume: snapshots are flat-layout portable.
func TestSnapshotResumeEveryRound(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := graph.ForestUnion(900, 4, rng)
	ids := NewNetworkPermuted(g, rand.New(rand.NewSource(12))).IDs()
	n := g.N()

	build := func(t *testing.T, shards int) *Network {
		t.Helper()
		net, err := NewNetworkWithIDs(g, ids)
		if err != nil {
			t.Fatal(err)
		}
		if shards > 1 {
			sh, err := graph.NewSharding(n, shards)
			if err != nil {
				t.Fatal(err)
			}
			if net, err = net.Sharded(sh); err != nil {
				t.Fatal(err)
			}
		}
		return net
	}
	run := func(t *testing.T, net *Network, opts RunOptions) (*Result, error) {
		t.Helper()
		opts.InputWords = waveInputs(n, 12)
		return net.RunWords(waveWords{}, opts)
	}

	ref, err := run(t, build(t, 1), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Rounds < 5 {
		t.Fatalf("reference run too short (%d rounds) to exercise boundaries", ref.Rounds)
	}

	for _, shape := range []struct {
		name             string
		capture, restore int // shard counts
	}{
		{"flat-to-flat", 1, 1},
		{"flat-to-sharded", 1, 4},
		{"sharded-to-flat", 4, 1},
		{"sharded-to-sharded", 4, 3},
	} {
		shape := shape
		t.Run(shape.name, func(t *testing.T) {
			for k := 0; k < ref.Rounds; k++ {
				net := build(t, shape.capture)
				res, err := run(t, net, RunOptions{Context: cancelAtRound(k), SnapshotOnAbort: true})
				if !errors.Is(err, ErrCanceled) {
					t.Fatalf("cancel@%d: err=%v", k, err)
				}
				if res.Snapshot == nil {
					t.Fatalf("cancel@%d: no snapshot", k)
				}
				if res.Snapshot.Round() != k {
					t.Fatalf("cancel@%d: snapshot at round %d", k, res.Snapshot.Round())
				}
				var blob bytes.Buffer
				if _, err := res.Snapshot.WriteTo(&blob); err != nil {
					t.Fatal(err)
				}
				sn, err := ReadSnapshot(bytes.NewReader(blob.Bytes()))
				if err != nil {
					t.Fatalf("cancel@%d: reparse: %v", k, err)
				}
				resumed, err := build(t, shape.restore).Resume(waveWords{}, RunOptions{InputWords: waveInputs(n, 12)}, sn)
				if err != nil {
					t.Fatalf("resume@%d: %v", k, err)
				}
				if resumed.Rounds != ref.Rounds || resumed.Messages != ref.Messages {
					t.Fatalf("resume@%d: rounds/messages %d/%d, want %d/%d",
						k, resumed.Rounds, resumed.Messages, ref.Rounds, ref.Messages)
				}
				if !reflect.DeepEqual(resumed.OutputWords, ref.OutputWords) {
					t.Fatalf("resume@%d: outputs diverge", k)
				}
			}
		})
	}
}

// TestSnapshotContractRejections pins the refusal paths: snapshots
// require the word-I/O batch plane with column-only state, and resumes
// validate dimensions.
func TestSnapshotContractRejections(t *testing.T) {
	g := graph.Path(32)
	net := NewNetwork(g)
	// Boxed-state program: capture must refuse.
	_, err := net.Run(wordGossip{rounds: 4}, RunOptions{
		Context: cancelAtRound(1), SnapshotOnAbort: true, Delivery: DeliveryBatch,
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err=%v, want ErrCanceled with snapshot failure note", err)
	}
	if !strings.Contains(err.Error(), "snapshot not captured") {
		t.Fatalf("boxed-state capture not refused: %v", err)
	}

	// A valid snapshot refuses to resume on a different graph.
	words := waveInputs(g.N(), 3)
	res, err := net.RunWords(waveWords{}, RunOptions{
		InputWords: words, Context: cancelAtRound(1), SnapshotOnAbort: true,
	})
	if !errors.Is(err, ErrCanceled) || res.Snapshot == nil {
		t.Fatalf("capture failed: %v", err)
	}
	other := NewNetwork(graph.Path(33))
	if _, err := other.Resume(waveWords{}, RunOptions{InputWords: waveInputs(33, 3)}, res.Snapshot); err == nil {
		t.Fatal("resume on a different graph accepted")
	}
	if _, err := other.Resume(waveWords{}, RunOptions{InputWords: waveInputs(33, 3)}, nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
}

// TestSnapshotTruncation pins the parser: every strict prefix of a
// serialized snapshot errors cleanly (never a partial snapshot, never a
// panic), and trailing garbage is rejected.
func TestSnapshotTruncation(t *testing.T) {
	g := graph.Path(48)
	net := NewNetwork(g)
	res, err := net.RunWords(waveWords{}, RunOptions{
		InputWords: waveInputs(g.N(), 5), Context: cancelAtRound(2), SnapshotOnAbort: true,
	})
	if !errors.Is(err, ErrCanceled) || res.Snapshot == nil {
		t.Fatalf("capture failed: %v", err)
	}
	var blob bytes.Buffer
	if _, err := res.Snapshot.WriteTo(&blob); err != nil {
		t.Fatal(err)
	}
	full := blob.Bytes()
	if _, err := ReadSnapshot(bytes.NewReader(full)); err != nil {
		t.Fatalf("full blob rejected: %v", err)
	}
	// Strides keep the quadratic prefix scan cheap; boundaries near the
	// header and each section edge are still covered by the stride-1 run
	// over the first 256 bytes.
	for cut := 0; cut < len(full); cut += max(1, min(257, len(full)-cut-1)/7) {
		if _, err := ReadSnapshot(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted", cut, len(full))
		}
	}
	if _, err := ReadSnapshot(bytes.NewReader(append(append([]byte(nil), full...), 0))); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// A hostile header declaring huge sections must fail on the short
	// payload, not allocate the declared sizes.
	hostile := append([]byte(nil), full[:84]...)
	for _, off := range []int{56, 64, 72} {
		h := append([]byte(nil), hostile...)
		for i := 0; i < 8; i++ {
			h[off+i] = 0x7f
		}
		if _, err := ReadSnapshot(bytes.NewReader(h)); err == nil {
			t.Fatalf("hostile header (offset %d) accepted", off)
		}
	}
}
