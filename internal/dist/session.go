package dist

import (
	"runtime"
	"slices"
	"sort"
	"sync"

	"repro/internal/graph"
)

// This file implements the persistent per-Network session: the simulation
// state that depends only on the (graph, filter) pair - visible port
// lists, live sets, columnar slot bases and the batch delivery table - is
// built once (in parallel) and cached, so the dozens of phase runs a
// coloring pipeline performs on one network stop re-sweeping the graph.
// The session also pools the per-run mutable state (node array, halt
// marks, live list, message columns), which makes the setup of a repeated
// run allocation-free; see the ownership notes in doc.go.
//
// Cache structure. The unfiltered topology (nil Labels/Active - or
// filters equivalent to it: uniform labels, all-true active) is cached
// unconditionally, since every pipeline's heaviest runs use it. Filtered
// topologies are cached in a small LRU keyed by the (Labels, Active)
// signature, because orchestrators revisit the same filter several times
// per pipeline (an H-partition, an orientation exchange and a
// wait-for-parents run all restrict to the same z-labels) with other
// filters in between. Lookups compare content, not slice identity, so
// callers that compose labels in place still hit.

// maxFilteredTopologies caps the filtered-topology LRU. Pipelines revisit
// a filter within a few runs (see above); deep recursions that cycle
// through more distinct filters than this simply rebuild on reuse, which
// bounds the cache at O(maxFilteredTopologies * (n+m)) words.
const maxFilteredTopologies = 4

// topology is the immutable per-(graph, filter) simulation wiring shared
// by runs: it is built once, never mutated afterwards, and may be read
// concurrently by overlapping runs.
type topology struct {
	// ports[v] lists v's visible neighbors in ascending order; nil marks
	// an inactive vertex (filtered topologies share one flat backing).
	ports [][]int
	// live lists the active vertices in ascending order.
	live []int
	// base[v] is the first columnar slot of v: slot ranges
	// [base[v], base[v]+deg(v)) partition the visible directed edges in
	// ascending (vertex, port) order - the batch-column and PerPort
	// layout of batch.go / wordio.go.
	base []int
	// inSlots[base[v]+p] is the slot neighbor u = ports[v][p] writes for
	// v. On a flat topology it is global - u's base plus v's position in
	// u's port list - serving batch delivery directly and giving the
	// boxed path its peer index as inSlots[base[v]+p] - base[u]. On a
	// sharded topology (shard != nil) it is SHARD-LOCAL: the same slot
	// relative to the sending shard's slot range, with shard.inShard
	// naming the shard (see shard.go).
	inSlots    []int32
	totalPorts int
	// shard is the per-topology shard structure of a sharded session
	// (nil on flat sessions); see shard.go.
	shard *shardTopo
}

// slots returns v's per-port delivery-slot view.
func (t *topology) slots(v int) []int32 {
	b := t.base[v]
	return t.inSlots[b : b+len(t.ports[v]) : b+len(t.ports[v])]
}

// emptyPorts marks active degree-0 vertices in filtered topologies
// (ports[v] == nil means inactive).
var emptyPorts = make([]int, 0)

// buildUnfiltered assembles the whole-graph topology. The port lists are
// the graph's own adjacency slices; only the slot table is computed, in
// parallel.
func (sc *session) buildUnfiltered(g *graph.Graph, workers int) *topology {
	n := g.N()
	t := &topology{
		ports: make([][]int, n),
		live:  make([]int, n),
		base:  make([]int, n),
	}
	next := 0
	for v := 0; v < n; v++ {
		t.live[v] = v
		nbrs := g.Neighbors(v)
		if nbrs == nil {
			// ports[v] == nil marks inactivity; an isolated vertex of the
			// unfiltered topology is live with zero ports.
			nbrs = emptyPorts
		}
		t.ports[v] = nbrs
		t.base[v] = next
		next += len(nbrs)
	}
	t.totalPorts = next
	t.inSlots = make([]int32, next)
	sc.attachShardTopo(t)
	fillSlots(t, workers)
	return t
}

// buildFiltered assembles the topology of a label/active-filtered run.
// The per-vertex passes (visibility counting, port filling, slot
// ranking) run in parallel; only the O(n) prefix sums are serial.
func (sc *session) buildFiltered(g *graph.Graph, labels []int, active []bool, workers int) *topology {
	n := g.N()
	t := &topology{
		ports: make([][]int, n),
		base:  make([]int, n),
	}
	deg := make([]int, n)
	parfor(n, workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if active != nil && !active[v] {
				deg[v] = -1 // inactive marker
				continue
			}
			deg[v] = countVisible(g, labels, active, v)
		}
	})
	next, liveN := 0, 0
	for v := 0; v < n; v++ {
		if deg[v] < 0 {
			continue
		}
		t.base[v] = next
		next += deg[v]
		liveN++
	}
	t.totalPorts = next
	t.live = make([]int, 0, liveN)
	for v := 0; v < n; v++ {
		if deg[v] >= 0 {
			t.live = append(t.live, v)
		}
	}
	portsFlat := make([]int, next)
	parfor(n, workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if deg[v] < 0 {
				continue
			}
			if deg[v] == 0 {
				t.ports[v] = emptyPorts
				continue
			}
			b := t.base[v]
			t.ports[v] = appendVisible(portsFlat[b:b:b+deg[v]], g, labels, active, v)
		}
	})
	t.inSlots = make([]int32, next)
	sc.attachShardTopo(t)
	fillSlots(t, workers)
	return t
}

// fillSlots computes the delivery-slot table: visibility is symmetric, so
// v always appears in its visible neighbors' port lists and the rank
// lookup is a binary search in the neighbor's sorted ports. On a sharded
// topology the recorded slot is shard-local and the boundary table
// (shard.inShard) names the sending shard per slot. A single-worker
// build takes the counting sweep instead, which replaces every binary
// search with one increment.
func fillSlots(t *topology, workers int) {
	n := len(t.ports)
	st := t.shard
	if workers <= 1 || n <= 1 {
		fillSlotsCounting(t)
		return
	}
	parfor(n, workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			ports := t.ports[v]
			if len(ports) == 0 {
				continue
			}
			b := t.base[v]
			slots := t.inSlots[b:]
			if st == nil {
				for p, u := range ports {
					slots[p] = int32(t.base[u] + sort.SearchInts(t.ports[u], v))
				}
				continue
			}
			inShard := st.inShard[b:]
			for p, u := range ports {
				k := st.vshard[u]
				slots[p] = int32(t.base[u] - st.slotCuts[k] + sort.SearchInts(t.ports[u], v))
				inShard[p] = k
			}
		}
	})
}

// fillSlotsCounting is the sequential delivery-slot fill: one ascending
// sweep over the senders. Port lists are sorted ascending and visibility
// is symmetric, so when vertices are visited in ascending order, v is
// the cnt[u]-th visible neighbor u has been reached by and its rank in
// u's sorted port list is exactly cnt[u] - every binary search of the
// parallel fill becomes a counter increment. Identical output to the
// parfor path (both compute sender ranks); only the work per port
// differs.
func fillSlotsCounting(t *topology) {
	st := t.shard
	cnt := make([]int32, len(t.ports))
	for v, ports := range t.ports {
		if len(ports) == 0 {
			continue
		}
		b := t.base[v]
		slots := t.inSlots[b:]
		if st == nil {
			for p, u := range ports {
				slots[p] = int32(t.base[u]) + cnt[u]
				cnt[u]++
			}
			continue
		}
		inShard := st.inShard[b:]
		for p, u := range ports {
			k := st.vshard[u]
			slots[p] = int32(t.base[u]-st.slotCuts[k]) + cnt[u]
			cnt[u]++
			inShard[p] = k
		}
	}
}

// uniformInts reports whether all values are equal (a uniform label
// vector induces the unfiltered topology). The empty vector - a non-nil
// zero-length Labels slice on an empty graph - is uniform.
func uniformInts(xs []int) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] != xs[0] {
			return false
		}
	}
	return true
}

func allTrue(bs []bool) bool {
	for _, b := range bs {
		if !b {
			return false
		}
	}
	return true
}

// filterHash is a 64-bit content signature of the (labels, active) pair,
// used to skip the full comparison for non-matching cache entries. Hits
// are always verified by comparing content, so collisions cost time, not
// correctness.
func filterHash(labels []int, active []bool) uint64 {
	h := uint64(len(labels))*0x9e3779b97f4a7c15 + uint64(len(active))
	mix := func(x uint64) {
		h ^= x
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 29
	}
	for _, l := range labels {
		mix(uint64(l))
	}
	var acc uint64
	for i, b := range active {
		if b {
			acc |= 1 << (i & 63)
		}
		if i&63 == 63 {
			mix(acc)
			acc = 0
		}
	}
	mix(acc)
	return h
}

// topoEntry is one filtered-topology cache slot; labels/active are owned
// copies of the filter signature (callers mutate theirs between runs).
type topoEntry struct {
	hash   uint64
	labels []int
	active []bool
	topo   *topology
	tick   uint64
}

// session is the per-Network persistent state. All WithDelivery /
// WithWorkers views of a network share one session, so any view's runs
// warm the caches for all of them. Every method is safe for concurrent
// use; overlapping runs fall back to fresh allocations for the pooled
// per-run state and build (then race to publish) topologies.
type session struct {
	mu         sync.Mutex
	unfiltered *topology
	filtered   []*topoEntry
	tick       uint64
	// run is the pooled per-run scratch (nil while borrowed or never
	// built); out is the pooled word-I/O output column of wordio.go.
	run *runScratch
	out []int64
	// values is the keyed session-scratch store of SessionValue: hot
	// state orchestrators keep resident across the runs of one network
	// (e.g. the recoloring hot-row cache). Entries live for the
	// session's lifetime; the stored values themselves must be safe for
	// concurrent use by overlapping runs.
	values map[any]any
	// sh/vshard describe the vertex sharding of this session's network
	// view (zero/nil = flat engine). They are set once when the sharded
	// view is created (Network.Sharded gives the view a FRESH session, so
	// one session never caches topologies of two shard layouts) and are
	// read-only afterwards; every topology built here inherits them.
	sh     graph.Sharding
	vshard []uint8
}

// topology returns the cached wiring for the given filters, building and
// publishing it on a miss. Filters equivalent to no filter (uniform
// labels, all-true active) are normalized to the unfiltered topology.
// hit reports whether the wiring came out of the cache (the session
// event RunRecord.TopoCached surfaces); a build that loses a publish
// race still counts as a miss - the sweep was paid.
func (sc *session) topology(g *graph.Graph, labels []int, active []bool, workers int) (t *topology, hit bool) {
	if labels != nil && uniformInts(labels) {
		labels = nil
	}
	if active != nil && allTrue(active) {
		active = nil
	}
	if labels == nil && active == nil {
		sc.mu.Lock()
		t = sc.unfiltered
		sc.mu.Unlock()
		if t != nil {
			return t, true
		}
		t = sc.buildUnfiltered(g, workers)
		sc.mu.Lock()
		if sc.unfiltered == nil {
			sc.unfiltered = t
		} else {
			t = sc.unfiltered // a concurrent build won the race
		}
		sc.mu.Unlock()
		return t, false
	}
	h := filterHash(labels, active)
	sc.mu.Lock()
	sc.tick++
	tick := sc.tick
	for _, e := range sc.filtered {
		if e.hash == h && slices.Equal(e.labels, labels) && slices.Equal(e.active, active) {
			e.tick = tick
			t = e.topo
			sc.mu.Unlock()
			return t, true
		}
	}
	sc.mu.Unlock()
	t = sc.buildFiltered(g, labels, active, workers)
	e := &topoEntry{
		hash:   h,
		labels: slices.Clone(labels),
		active: slices.Clone(active),
		topo:   t,
		tick:   tick,
	}
	sc.mu.Lock()
	// A concurrent miss on the same filter may have inserted while we
	// were building; keep the existing entry instead of wasting an LRU
	// slot on a duplicate.
	for _, x := range sc.filtered {
		if x.hash == h && slices.Equal(x.labels, labels) && slices.Equal(x.active, active) {
			x.tick = tick
			t = x.topo
			sc.mu.Unlock()
			return t, false
		}
	}
	if len(sc.filtered) < maxFilteredTopologies {
		sc.filtered = append(sc.filtered, e)
	} else {
		oldest := 0
		for i, x := range sc.filtered {
			if x.tick < sc.filtered[oldest].tick {
				oldest = i
			}
		}
		sc.filtered[oldest] = e
	}
	sc.mu.Unlock()
	return t, false
}

// runScratch is the pooled mutable state of one run. One run borrows the
// bundle for its whole lifetime and releases it on completion; a run that
// finds the pool busy (concurrent runs on one network) simply allocates a
// fresh bundle, which is then the one released back. The embedded
// simulation keeps the per-run header itself off the heap on reuse.
type runScratch struct {
	sim       simulation
	nodes     []*Node
	arr       []Node
	haltedAt  []int
	live      []int
	liveSpare []int
	clearQ    []int
	wwords    [2][]int64
	wsent     [2][]uint8
	// wshardWords/wshardSent are the pooled per-shard round-parity
	// message columns of sharded batch runs, indexed [parity][shard]
	// (nil and unused on flat sessions); see shard.go.
	wshardWords [2][][]int64
	wshardSent  [2][][]uint8
	// shardSegs/shardNS/shardCum/shardPrev are the per-shard telemetry
	// buffers of probed sharded runs (live-list segmentation, step wall,
	// cumulative and previous-round send counters).
	shardSegs []int
	shardNS   []int64
	shardCum  []int64
	shardPrev []int64
	// counts/starts are the per-chunk counters of the parallel
	// collect/collection sweeps.
	counts []int
	starts []int
	sums   []int64
	// curV holds one live-list cursor per step chunk: stepSlice records
	// the index it is stepping so the panic guard (stepSliceGuarded) can
	// attribute a recovered vertex-program panic to the exact vertex.
	curV []int
	// chunkNS holds the per-chunk step timings of a probed run
	// (probe.go); unused and nil on unprobed runs.
	chunkNS []int64
}

// borrowRun returns the pooled scratch bundle (pooled=true) or a fresh
// one when the pool is busy or cold - the session event
// RunRecord.ScratchPooled surfaces the distinction.
func (sc *session) borrowRun() (rs *runScratch, pooled bool) {
	sc.mu.Lock()
	rs = sc.run
	sc.run = nil
	sc.mu.Unlock()
	if rs == nil {
		return new(runScratch), false
	}
	return rs, true
}

func (sc *session) releaseRun(rs *runScratch) {
	sc.mu.Lock()
	sc.run = rs
	sc.mu.Unlock()
}

// borrowOut returns a zeroed word column of the given length, reusing
// (and re-zeroing, in parallel) the pooled backing array when it is large
// enough. The column is re-published by the run's completion, so the NEXT
// word-I/O run's borrow is what reclaims Result.OutputWords.
func (sc *session) borrowOut(n, workers int) []int64 {
	sc.mu.Lock()
	col := sc.out
	sc.out = nil
	sc.mu.Unlock()
	if cap(col) < n {
		return make([]int64, n)
	}
	col = col[:n]
	parfor(n, workers, func(lo, hi int) {
		clear(col[lo:hi])
	})
	return col
}

func (sc *session) publishOut(col []int64) {
	sc.mu.Lock()
	if cap(col) > cap(sc.out) {
		sc.out = col
	}
	sc.mu.Unlock()
}

// grown returns s resized to length n, reallocating only on capacity
// growth. Contents are unspecified; callers overwrite what they read.
func grown[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// grownKeep is grown preserving the existing prefix on reallocation.
func grownKeep(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	c := 2 * cap(s)
	if c < n {
		c = n
	}
	t := make([]int, n, c)
	copy(t, s)
	return t
}

// parfor splits [0, n) into one contiguous chunk per worker and runs fn
// on all of them concurrently (inline when a single worker suffices).
// fn must touch disjoint state per index range.
func parfor(n, workers int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ParallelFor runs fn over the contiguous chunks of [0, n) on worker
// goroutines: a positive workers count is honored exactly (capped at
// one index per goroutine) - pinned counts fan out even on tiny sweeps,
// exactly like the engine's round loop - while workers <= 0 resolves to
// the auto heuristic (GOMAXPROCS, inline below 512 indices, at least 64
// indices per goroutine). Orchestrators pass Network.SweepWorkers so a
// pipeline's pinned worker count governs their setup and decode sweeps
// too; fn must touch disjoint state per index range. The split is
// deterministic, so any fn whose chunks are independent yields
// identical results at every worker count.
func ParallelFor(n, workers int, fn func(lo, hi int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if n < autoParallelThreshold {
			workers = 1
		}
		if max := (n + minChunk - 1) / minChunk; workers > max {
			workers = max
		}
	}
	parfor(n, workers, fn)
}

// SessionValue returns the session-scoped singleton for key, building
// it with build on first use. The value lives for the lifetime of the
// network's session and is shared by every WithDelivery / WithWorkers /
// WithProbe view (a Sharded view has a session - and hence a store - of
// its own), so orchestrators use it to keep hot state resident across
// the dozens of phase runs of one pipeline: the recoloring hot-row
// cache keys per-(step, family) row-table snapshots here, turning the
// per-candidate atomic table load into a per-run slice resolve.
//
// Keys follow the comparable-key conventions of context values: use an
// unexported struct type so independent packages cannot collide. build
// runs at most once per key under the session lock - it must not call
// back into the network - and the stored value must itself be safe for
// concurrent use, since overlapping runs share it.
func (net *Network) SessionValue(key any, build func() any) any {
	sc := net.sess
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if v, ok := sc.values[key]; ok {
		return v
	}
	if sc.values == nil {
		sc.values = make(map[any]any)
	}
	v := build()
	sc.values[key] = v
	return v
}

// Workers returns the worker count this network's runs resolve
// RunOptions.Workers == 0 to: the WithWorkers override when set, else
// GOMAXPROCS.
func (net *Network) Workers() int {
	if net.workers > 0 {
		return net.workers
	}
	return runtime.GOMAXPROCS(0)
}

// SweepWorkers resolves the fan-out of a sweep over n items under this
// network's worker configuration, with the same semantics as the
// engine's own sweeps: a pinned count (WithWorkers) is honored exactly,
// the auto default applies the participant-count heuristic. It is the
// value orchestrators hand to ParallelFor.
func (net *Network) SweepWorkers(n int) int {
	w, explicit := net.resolveWorkers(0)
	return sweepWorkersFor(n, w, explicit)
}

// WithWorkers returns a view of the network sharing the graph, identifier
// assignment and session whose Runs resolve RunOptions.Workers == 0 to
// the given count (0 restores the auto heuristic). Like WithDelivery, the
// view lets a harness pin the fan-out of every phase of a multi-phase
// pipeline without threading an option through every signature; results
// are bit-for-bit identical at every setting.
func (net *Network) WithWorkers(w int) *Network {
	if w < 0 {
		w = 0
	}
	c := *net
	c.workers = w
	return &c
}

// resolveWorkers resolves a Run's worker count: the explicit option, else
// the network default, else (auto) GOMAXPROCS. explicit reports whether
// the count was pinned by either - pinned counts always fan out (so tests
// and benchmarks exercise exactly the requested pool), while auto counts
// are gated by the participant-count heuristic of sweepWorkers.
func (net *Network) resolveWorkers(optWorkers int) (workers int, explicit bool) {
	if optWorkers > 0 {
		return optWorkers, true
	}
	if net.workers > 0 {
		return net.workers, true
	}
	return runtime.GOMAXPROCS(0), false
}

// sweepWorkers returns the fan-out for a sweep over m items: a pinned
// count is honored as-is (capped at one item per goroutine), the auto
// heuristic parallelizes only beyond autoParallelThreshold participants
// with at least minChunk items per goroutine.
func (s *simulation) sweepWorkers(m int) int {
	w := s.workers
	if w <= 1 || m <= 1 {
		return 1
	}
	if !s.explicit {
		if m < autoParallelThreshold {
			return 1
		}
		if max := (m + minChunk - 1) / minChunk; w > max {
			w = max
		}
	}
	if w > m {
		w = m
	}
	return w
}
