package dist

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
)

// wordGossip is a gossip program implemented for both transports: nodes
// flood mixed digests, halt at staggered rounds (id mod 3) with a final
// halting send, and output the digest. Any divergence between the boxed
// and batch paths (delivery, silence order, halting sends, port
// numbering) changes some output, so DeepEqual over the two results is a
// sharp equivalence check.
type wordGossip struct{ rounds int }

func (wordGossip) MessageWords() int { return 1 }

func (g wordGossip) open(n *Node) int64 {
	v := int64(n.ID())*100003 + 7
	n.State = v
	return v
}

func (g wordGossip) Init(n *Node)      { n.SendAll(int(g.open(n))) }
func (g wordGossip) InitWords(n *Node) { n.SendAllWord(g.open(n)) }

// advance mixes the received values into the digest and decides the
// (always present, possibly halting) broadcast value.
func (g wordGossip) advance(n *Node, read func(p int) (int64, bool)) int64 {
	acc := n.State.(int64)
	for p := 0; p < n.Degree(); p++ {
		if v, ok := read(p); ok {
			acc = acc*31 + v + int64(p)
		}
	}
	n.State = acc
	if n.Round() >= g.rounds+n.ID()%3 {
		n.Output = acc
		n.Halt()
	}
	out := acc % 1000003
	if out < 0 {
		out = -out
	}
	return out + 1
}

func (g wordGossip) Step(n *Node, inbox []Message) {
	n.SendAll(int(g.advance(n, func(p int) (int64, bool) {
		if inbox[p] == nil {
			return 0, false
		}
		return int64(inbox[p].(int)), true
	})))
}

func (g wordGossip) StepWords(n *Node, inbox WordInbox) {
	n.SendAllWord(g.advance(n, func(p int) (int64, bool) {
		if !inbox.Has(p) {
			return 0, false
		}
		return inbox.Word(p), true
	}))
}

// tripleTag exchanges 3-word messages (id, round, id^round) for a fixed
// number of rounds; the digest folds all three words with distinct
// weights, so a word ordering or width bug diverges immediately.
type tripleTag struct{ rounds int }

type tripleMsg struct{ A, B, C int64 }

func (tripleTag) MessageWords() int { return 3 }

func (t tripleTag) fill(n *Node) tripleMsg {
	r := int64(n.Round())
	return tripleMsg{A: int64(n.ID()), B: r, C: int64(n.ID()) ^ r}
}

func (t tripleTag) Init(n *Node) {
	n.State = int64(1)
	n.SendAll(t.fill(n))
}

func (t tripleTag) InitWords(n *Node) {
	n.State = int64(1)
	m := t.fill(n)
	for p := 0; p < n.Degree(); p++ {
		w := n.SendWords(p)
		w[0], w[1], w[2] = m.A, m.B, m.C
	}
}

func (t tripleTag) advance(n *Node, read func(p int) (tripleMsg, bool)) bool {
	acc := n.State.(int64)
	for p := 0; p < n.Degree(); p++ {
		if m, ok := read(p); ok {
			acc = acc*1099511628211 + 3*m.A + 5*m.B + 7*m.C + int64(p)
		}
	}
	n.State = acc
	if n.Round() >= t.rounds {
		n.Output = acc
		n.Halt()
		return false
	}
	return true
}

func (t tripleTag) Step(n *Node, inbox []Message) {
	send := t.advance(n, func(p int) (tripleMsg, bool) {
		if inbox[p] == nil {
			return tripleMsg{}, false
		}
		return inbox[p].(tripleMsg), true
	})
	if send {
		n.SendAll(t.fill(n))
	}
}

func (t tripleTag) StepWords(n *Node, inbox WordInbox) {
	send := t.advance(n, func(p int) (tripleMsg, bool) {
		if !inbox.Has(p) {
			return tripleMsg{}, false
		}
		w := inbox.Words(p)
		return tripleMsg{A: w[0], B: w[1], C: w[2]}, true
	})
	if send {
		m := t.fill(n)
		for p := 0; p < n.Degree(); p++ {
			w := n.SendWords(p)
			w[0], w[1], w[2] = m.A, m.B, m.C
		}
	}
}

// runBoth runs the same fixed-width program over both transports and
// fails unless the results are bit-for-bit identical.
func runBoth(t *testing.T, net *Network, algo FixedWidthAlgorithm, opts RunOptions) *Result {
	t.Helper()
	opts.Delivery = DeliveryBoxed
	boxed, err := net.Run(algo, opts)
	if err != nil {
		t.Fatalf("boxed run: %v", err)
	}
	opts.Delivery = DeliveryBatch
	batch, err := net.Run(algo, opts)
	if err != nil {
		t.Fatalf("batch run: %v", err)
	}
	boxed.Wall, batch.Wall = 0, 0 // host wall time, not deterministic
	if !reflect.DeepEqual(boxed, batch) {
		t.Fatalf("transports diverged:\nboxed: rounds=%d messages=%d\nbatch: rounds=%d messages=%d",
			boxed.Rounds, boxed.Messages, batch.Rounds, batch.Messages)
	}
	return batch
}

func TestBatchMatchesBoxedOnRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(500 + seed))
		g := graph.Gnp(200, 0.04, rng)
		net := NewNetworkPermuted(g, rng)
		runBoth(t, net, wordGossip{rounds: 6}, RunOptions{})
	}
}

func TestBatchMatchesBoxedUnderFilters(t *testing.T) {
	rng := rand.New(rand.NewSource(510))
	g := graph.ForestUnion(300, 4, rng)
	net := NewNetworkPermuted(g, rng)
	labels := make([]int, g.N())
	active := make([]bool, g.N())
	for v := range labels {
		labels[v] = rng.Intn(3)
		active[v] = rng.Intn(5) > 0
	}
	res := runBoth(t, net, wordGossip{rounds: 5}, RunOptions{Labels: labels, Active: active})
	for v, o := range res.Outputs {
		if (o == nil) != !active[v] {
			t.Fatalf("vertex %d active=%v but output %v", v, active[v], o)
		}
	}
}

func TestBatchMatchesBoxedMultiWord(t *testing.T) {
	rng := rand.New(rand.NewSource(520))
	g := graph.Grid(12, 12)
	net := NewNetworkPermuted(g, rng)
	runBoth(t, net, tripleTag{rounds: 5}, RunOptions{})
}

func TestBatchParallelMatchesSequential(t *testing.T) {
	run := func(workers int) *Result {
		rng := rand.New(rand.NewSource(530))
		g := graph.ForestUnion(600, 4, rng)
		net := NewNetworkPermuted(g, rng)
		res, err := net.Run(wordGossip{rounds: 8}, RunOptions{Delivery: DeliveryBatch, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		res.Wall = 0 // host wall time, not deterministic
		return res
	}
	seq := run(1) // force sequential
	par := run(4) // pin the worker pool (pinned counts always fan out)
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("batch worker-pool execution diverged from sequential execution")
	}
}

// wordHaltSender reproduces the halting-send test on the batch path: the
// sender transmits once while halting in Init; the listener records the
// rounds in which it heard anything through round 5. Both round parities
// recur twice after the send, so a stale sent flag (the clear-on-halt
// path) would re-deliver in round 3 or 5.
type wordHaltSender struct{}

func (wordHaltSender) MessageWords() int { return 1 }

func (wordHaltSender) Init(n *Node) {
	if n.ID() == 1 {
		n.SendAll(999)
		n.Output = 0
		n.Halt()
	}
}

func (wordHaltSender) InitWords(n *Node) {
	if n.ID() == 1 {
		n.SendAllWord(999)
		n.Output = 0
		n.Halt()
	}
}

func (wordHaltSender) listen(n *Node, heardNow bool) {
	var heard []int
	if n.State != nil {
		heard = n.State.([]int)
	}
	if heardNow {
		heard = append(heard, n.Round())
	}
	n.State = heard
	if n.Round() == 5 {
		n.Output = heard
		n.Halt()
	}
}

func (a wordHaltSender) Step(n *Node, inbox []Message) {
	heard := false
	for _, m := range inbox {
		if m != nil {
			heard = true
		}
	}
	a.listen(n, heard)
}

func (a wordHaltSender) StepWords(n *Node, inbox WordInbox) {
	heard := false
	for p := 0; p < inbox.Ports(); p++ {
		if inbox.Has(p) {
			heard = true
		}
	}
	a.listen(n, heard)
}

func TestBatchHaltingSendDeliveredExactlyOnce(t *testing.T) {
	net := NewNetwork(graph.Path(2))
	res := runBoth(t, net, wordHaltSender{}, RunOptions{})
	if got := res.Outputs[1].([]int); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("vertex 1 heard in rounds %v, want [1] only", got)
	}
}

// transportProbe reports which transport ran it.
type transportProbe struct{}

func (transportProbe) MessageWords() int              { return 1 }
func (transportProbe) Init(n *Node)                   { n.Output = "boxed"; n.Halt() }
func (transportProbe) InitWords(n *Node)              { n.Output = "batch"; n.Halt() }
func (transportProbe) Step(n *Node, inbox []Message)  {}
func (transportProbe) StepWords(n *Node, i WordInbox) {}

func TestDeliveryResolution(t *testing.T) {
	g := graph.Path(2)
	probe := func(net *Network, opts RunOptions) string {
		res, err := net.Run(transportProbe{}, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Outputs[0].(string)
	}
	net := NewNetwork(g)
	if got := probe(net, RunOptions{}); got != "batch" {
		t.Errorf("auto on fixed-width algorithm ran %q, want batch", got)
	}
	if got := probe(net, RunOptions{Delivery: DeliveryBoxed}); got != "boxed" {
		t.Errorf("explicit boxed ran %q", got)
	}
	boxedNet := net.WithDelivery(DeliveryBoxed)
	if got := probe(boxedNet, RunOptions{}); got != "boxed" {
		t.Errorf("network preference boxed ran %q", got)
	}
	if got := probe(boxedNet, RunOptions{Delivery: DeliveryBatch}); got != "batch" {
		t.Errorf("options must override the network preference, ran %q", got)
	}
	// Plain algorithms are unaffected by an auto/batch-leaning network.
	res, err := net.Run(idler{}, RunOptions{MaxRounds: 1})
	if err == nil || res != nil {
		t.Error("idler should trip the budget regardless of transport")
	}
}

func TestDeliveryValidation(t *testing.T) {
	net := NewNetwork(graph.Path(2))
	if _, err := net.Run(idler{}, RunOptions{Delivery: DeliveryBatch}); err == nil {
		t.Error("DeliveryBatch accepted a non-fixed-width algorithm")
	}
	if _, err := net.Run(idler{}, RunOptions{Delivery: Delivery(99)}); err == nil {
		t.Error("unknown delivery mode accepted")
	}
	if _, err := net.Run(zeroWidth{}, RunOptions{}); err == nil {
		t.Error("zero-word algorithm accepted")
	}
}

type zeroWidth struct{}

func (zeroWidth) MessageWords() int              { return 0 }
func (zeroWidth) Init(n *Node)                   {}
func (zeroWidth) InitWords(n *Node)              {}
func (zeroWidth) Step(n *Node, inbox []Message)  {}
func (zeroWidth) StepWords(n *Node, i WordInbox) {}

// crossSender calls the wrong transport's send; the engine must reject it
// loudly instead of corrupting buffers.
type crossSender struct{ useBoxedSend bool }

func (crossSender) MessageWords() int { return 2 }
func (c crossSender) Init(n *Node) {
	n.SendWords(0) // boxed transport: must panic
}
func (c crossSender) InitWords(n *Node) {
	if c.useBoxedSend {
		n.Send(0, 1) // batch transport: must panic
	} else {
		n.SendWord(0, 1) // width is 2: must panic
	}
}
func (crossSender) Step(n *Node, inbox []Message)  {}
func (crossSender) StepWords(n *Node, i WordInbox) {}

// wantContained drives a run whose vertex program misuses the engine
// (the engine panics inside the program's Init/Step). The run-control
// plane must contain that panic into the deterministic Node.Fail path:
// an error wrapping ErrVertexPanic that still quotes the engine's own
// misuse message, plus a partial Result - never a crash.
func wantContained(t *testing.T, substr string, f func() (*Result, error)) {
	t.Helper()
	res, err := f()
	if err == nil {
		t.Errorf("no error, want contained panic mentioning %q", substr)
		return
	}
	if !errors.Is(err, ErrVertexPanic) {
		t.Errorf("error %v does not wrap ErrVertexPanic", err)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Errorf("error %v, want mention of %q", err, substr)
	}
	if res == nil {
		t.Errorf("contained panic for %q returned no partial result", substr)
	}
}

func TestTransportMisusePanics(t *testing.T) {
	net := NewNetwork(graph.Path(2))
	wantContained(t, "SendWords outside the batch transport", func() (*Result, error) {
		return net.Run(crossSender{}, RunOptions{Delivery: DeliveryBoxed})
	})
	wantContained(t, "Send on the batch transport", func() (*Result, error) {
		return net.Run(crossSender{useBoxedSend: true}, RunOptions{Delivery: DeliveryBatch})
	})
	wantContained(t, "SendWord with 2-word messages", func() (*Result, error) {
		return net.Run(crossSender{}, RunOptions{Delivery: DeliveryBatch})
	})
}

func TestBatchNetworkReusableAcrossRuns(t *testing.T) {
	net := NewNetworkPermuted(graph.Grid(8, 8), rand.New(rand.NewSource(12)))
	first, err := net.Run(wordGossip{rounds: 4}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := net.Run(wordGossip{rounds: 4}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	first.Wall, second.Wall = 0, 0 // host wall time, not deterministic
	if !reflect.DeepEqual(first, second) {
		t.Fatal("re-running on the same network changed the result")
	}
}

// flood is the delivery-path benchmark program: one word per message,
// per-node state held behind a pointer so neither transport boxes state,
// leaving message delivery as the only difference between the paths.
type flood struct{ rounds int }

func (flood) MessageWords() int { return 1 }

func (f flood) Init(n *Node) {
	acc := new(int64)
	*acc = int64(n.ID())
	n.State = acc
	n.SendAll(n.ID() + 100000)
}

func (f flood) InitWords(n *Node) {
	acc := new(int64)
	*acc = int64(n.ID())
	n.State = acc
	n.SendAllWord(int64(n.ID() + 100000))
}

func (f flood) Step(n *Node, inbox []Message) {
	acc := n.State.(*int64)
	for _, m := range inbox {
		if m != nil {
			*acc += int64(m.(int))
		}
	}
	if n.Round() >= f.rounds {
		n.Output = acc
		n.Halt()
		return
	}
	n.SendAll(int(*acc%1000003) + 100000)
}

func (f flood) StepWords(n *Node, inbox WordInbox) {
	acc := n.State.(*int64)
	for p := 0; p < inbox.Ports(); p++ {
		if inbox.Has(p) {
			*acc += inbox.Word(p)
		}
	}
	if n.Round() >= f.rounds {
		n.Output = acc
		n.Halt()
		return
	}
	n.SendAllWord(*acc%1000003 + 100000)
}

func benchmarkDelivery(b *testing.B, d Delivery) {
	rng := rand.New(rand.NewSource(9))
	g := graph.ForestUnion(4096, 4, rng)
	net := NewNetworkPermuted(g, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Run(flood{rounds: 16}, RunOptions{Delivery: d}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeliveryBoxed measures one Run of a 16-round one-word flood on
// the []any path; BenchmarkDeliveryBatch is the same program on the
// columnar path. The alloc delta is the per-message boxing plus the
// per-node inbox/outbox buffers the batch transport eliminates.
func BenchmarkDeliveryBoxed(b *testing.B) { benchmarkDelivery(b, DeliveryBoxed) }
func BenchmarkDeliveryBatch(b *testing.B) { benchmarkDelivery(b, DeliveryBatch) }
