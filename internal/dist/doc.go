// Package dist is a deterministic simulator for the synchronous LOCAL
// model of distributed computing, the model in which the paper states
// every running-time bound.
//
// An Algorithm is a vertex program in the Pregel style: Init runs once on
// every node (round 0), then Step runs once per node per round until every
// node has called Halt. Messages sent in round r (including from Init) are
// delivered at the start of round r+1, one inbox slot per port; a port
// whose neighbor sent nothing that round holds nil. Ports are positions in
// the node's list of visible neighbors, which is the full sorted adjacency
// list of the underlying graph unless RunOptions.Labels/Active restrict
// the run to label-induced subgraphs or an active subset - the mechanism
// by which the paper's procedures recurse "on all subgraphs in parallel"
// within a single simulated network.
//
// Nodes are identified by LOCAL-model identifiers id(v) in {1..n}, either
// canonical (NewNetwork) or randomly permuted (NewNetworkPermuted) to
// stress identifier-dependent symmetry breaking. For a fixed rng seed the
// whole simulation is bit-for-bit deterministic: node steps touch only
// their own Node, so the engine may execute each round on a worker pool
// without affecting results.
//
// Cost accounting follows the paper: Result reports the number of
// communication rounds (the LOCAL measure) and messages sent; Tally
// accumulates both across the phases of a multi-stage pipeline.
//
// # Data planes
//
// The engine has two per-vertex data planes. The boxed plane is the
// reference: RunOptions.Inputs ([]any) in, Node.Output (any) out, with
// []any message buffers. The typed plane extends the columnar batch
// transport (batch.go) to inputs and outputs: a WordIOAlgorithm
// declares fixed per-vertex word widths (or one word per visible port),
// reads Node.InputWords and writes Node.SetOutputWord(s) against flat
// []int64 columns, and a Run boxes nothing per vertex - see wordio.go
// for the layout and ownership contract. Vertex programs report input
// or palette errors through Node.Fail, which aborts the run with a
// deterministic per-run error instead of smuggling errors through
// Node.Output. Shadow tests pin the two planes bit-for-bit equal at the
// engine, phase, pipeline and scale-harness levels.
package dist
