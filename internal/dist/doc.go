// Package dist is a deterministic simulator for the synchronous LOCAL
// model of distributed computing, the model in which the paper states
// every running-time bound.
//
// An Algorithm is a vertex program in the Pregel style: Init runs once on
// every node (round 0), then Step runs once per node per round until every
// node has called Halt. Messages sent in round r (including from Init) are
// delivered at the start of round r+1, one inbox slot per port; a port
// whose neighbor sent nothing that round holds nil. Ports are positions in
// the node's list of visible neighbors, which is the full sorted adjacency
// list of the underlying graph unless RunOptions.Labels/Active restrict
// the run to label-induced subgraphs or an active subset - the mechanism
// by which the paper's procedures recurse "on all subgraphs in parallel"
// within a single simulated network.
//
// Nodes are identified by LOCAL-model identifiers id(v) in {1..n}, either
// canonical (NewNetwork) or randomly permuted (NewNetworkPermuted) to
// stress identifier-dependent symmetry breaking. For a fixed rng seed the
// whole simulation is bit-for-bit deterministic: node steps touch only
// their own Node, so the engine may execute each round on a worker pool
// without affecting results.
//
// Cost accounting follows the paper: Result reports the number of
// communication rounds (the LOCAL measure) and messages sent; Tally
// accumulates both across the phases of a multi-stage pipeline.
package dist
