// Package dist is a deterministic simulator for the synchronous LOCAL
// model of distributed computing, the model in which the paper states
// every running-time bound.
//
// An Algorithm is a vertex program in the Pregel style: Init runs once on
// every node (round 0), then Step runs once per node per round until every
// node has called Halt. Messages sent in round r (including from Init) are
// delivered at the start of round r+1, one inbox slot per port; a port
// whose neighbor sent nothing that round holds nil. Ports are positions in
// the node's list of visible neighbors, which is the full sorted adjacency
// list of the underlying graph unless RunOptions.Labels/Active restrict
// the run to label-induced subgraphs or an active subset - the mechanism
// by which the paper's procedures recurse "on all subgraphs in parallel"
// within a single simulated network.
//
// Nodes are identified by LOCAL-model identifiers id(v) in {1..n}, either
// canonical (NewNetwork) or randomly permuted (NewNetworkPermuted) to
// stress identifier-dependent symmetry breaking. For a fixed rng seed the
// whole simulation is bit-for-bit deterministic: node steps touch only
// their own Node, so the engine may execute each round on a worker pool
// without affecting results.
//
// Cost accounting follows the paper: Result reports the number of
// communication rounds (the LOCAL measure) and messages sent; Tally
// accumulates both across the phases of a multi-stage pipeline.
//
// # Data planes
//
// The engine has two per-vertex data planes. The boxed plane is the
// reference: RunOptions.Inputs ([]any) in, Node.Output (any) out, with
// []any message buffers. The typed plane extends the columnar batch
// transport (batch.go) to inputs and outputs: a WordIOAlgorithm
// declares fixed per-vertex word widths (or one word per visible port),
// reads Node.InputWords and writes Node.SetOutputWord(s) against flat
// []int64 columns, and a Run boxes nothing per vertex - see wordio.go
// for the layout and ownership contract. Vertex programs report input
// or palette errors through Node.Fail, which aborts the run with a
// deterministic per-run error instead of smuggling errors through
// Node.Output. Shadow tests pin the two planes bit-for-bit equal at the
// engine, phase, pipeline and scale-harness levels.
//
// # Sessions and parallelism
//
// A Network owns a persistent session (session.go) living as long as the
// Network itself and shared by all WithDelivery/WithWorkers views of it:
//
//   - Topology caches. The simulation wiring that depends only on the
//     (graph, Labels, Active) triple - visible port lists, live set,
//     columnar slot bases, the delivery-slot table - is built once, in
//     parallel, and reused by every later run with the same filters.
//     The unfiltered topology (including filters equivalent to none:
//     uniform labels, all-true active) is cached unconditionally;
//     filtered topologies live in a small content-keyed LRU, sized for
//     orchestrators that revisit one filter a few runs apart. Cached
//     tables are immutable and engine-owned; callers never see them.
//   - Run scratch. The mutable per-run state (node array, halt marks,
//     live list, message columns, the word output column) is pooled:
//     a repeated unfiltered word-I/O run performs no setup allocations
//     at all (a regression test pins this). Concurrent runs on one
//     network are safe - whoever finds the pool busy falls back to
//     fresh allocations - but the Result.OutputWords reclamation
//     contract (wordio.go) still requires the caller to decode a word
//     column before STARTING the next word run on that network.
//   - Session values. Algorithm layers pin small cross-run state on the
//     session through Network.SessionValue, keyed by unexported types -
//     e.g. recolor's per-(step, family) hot-row cache of resolved
//     row-table snapshots. Ownership contract: a value lives as long as
//     the Network, is shared by WithDelivery/WithWorkers/WithProbe
//     views (a Sharded view starts a fresh session and therefore a
//     fresh value store), and must be safe for concurrent use by
//     overlapping runs. Invalidation is the owning layer's concern; the
//     hot-row cache needs none, because its snapshots only ever advance
//     to larger prefixes of the same monotone (append-only) tables, so
//     a stale entry is never wrong, only smaller.
//
// Rounds, engine setup/collection sweeps, and the orchestrator helpers
// (Network.PortColumn, ParallelFor) fan out over a worker pool paced by
// RunOptions.Workers / Network.WithWorkers: 0 means the auto heuristic
// (GOMAXPROCS, gated by participant count), an explicit count always
// fans out exactly that wide. Nodes touch only their own state and
// delivery reads only previous-round data, so results are bit-for-bit
// identical at every worker count - the speedup sweeps in CI assert
// exactly that.
//
// # Sharded execution
//
// Network.Sharded(sh) returns a view running the shard-structured
// engine: the vertex space is partitioned into graph.Sharding's
// contiguous shards and the batch transport's message columns become
// shard-local (shard.go). Ownership and delivery contract:
//
//   - Column ownership is by SENDER shard: the word a vertex u sends on
//     a port lives in the column of u's shard, at the shard-local slot
//     base[u] - slotCuts[shard(u)] + rank. A step writes only its own
//     vertex's slots in its own shard's column, so shard segments can
//     step concurrently without sharing cache lines across shards.
//   - Cross-shard delivery is by boundary table: for each visible port
//     the topology stores the shard-local slot plus a one-byte sending-
//     shard index (inShard), and a receiver resolves a word by indexing
//     the sender shard's previous-parity column directly. There is no
//     copy step - "exchange" between shards is the read itself, which
//     touches only previous-round columns.
//   - Previous-parity columns are immutable during a step (the same
//     double-buffered round-parity rule as the flat transport), which
//     is what makes the cross-shard read safe under any worker count.
//   - Sharding is observationally inert: colors, rounds and message
//     counts are bit-for-bit identical at every shard count (golden and
//     shadow tests pin this); only WHERE a message word lives changes.
//     Probed sharded runs additionally record per-shard live counts,
//     message counts and step wall time per round (ShardRoundStat).
//
// A Sharded view gets a fresh session, so one session never caches two
// shard layouts; count 1 (or a zero Sharding) normalizes to the flat
// engine. The streaming loader graph.OpenBinaryShards pairs with this:
// it materializes the CSR per shard so peak load memory is bounded by
// one shard's adjacency instead of the whole edge list.
//
// # Observability
//
// A Probe (probe.go) streams one RoundRecord per communication round
// and one RunRecord per engine run to a ProbeSink, for round-level
// tracing without touching results. Lifetime and ownership rules:
//
//   - Construct with NewProbe(sink), attach with Network.WithProbe
//     (a view, like WithDelivery/WithWorkers), label upcoming runs
//     with Probe.SetPhase, and Close the probe after the last run -
//     Close flushes buffered records and stops the flusher; writing
//     sinks (obs.TraceWriter) are closed after the probe.
//   - Sink callbacks receive slices that the probe reuses after the
//     callback returns; a sink that retains records must copy them.
//     Callbacks run off the round loop (a background flusher drains
//     a chunked ring), so a slow sink back-pressures the flusher, not
//     the simulation.
//   - Probes are purely observational: a probed run produces
//     bit-for-bit identical colors, rounds and messages, and every
//     record field except the wall-clock timings (WallNS, chunk
//     times, SetupNS/ComputeNS) is deterministic across worker
//     counts. A nil or absent probe costs the round loop one nil
//     check (BenchmarkRunProbeOff/On pins this).
//   - Records only cover rounds 1..Result.Rounds; Init's messages
//     fold into the first round's record, and a run that halts at
//     Init emits a RunRecord but no RoundRecords.
//
// RunRecords also expose the session telemetry above (TopoCached,
// ScratchPooled, setup vs. compute time), which is how cache behavior
// is asserted in tests and surfaced in traces.
//
// # Run control: cancellation, deadlines, panic containment, snapshots
//
// Every abort the engine performs lands on a round boundary - after the
// current round's steps, delivery bookkeeping and halt flushes have
// completed, never mid-round. That single invariant is what makes the
// rest of the contract cheap to state:
//
//   - Cancellation and deadlines. RunOptions.Context is polled (ctx.Err,
//     exactly once) at each round boundary; RunOptions.WallBudget bounds
//     the run's wall time the same way and composes with any context
//     deadline (whichever expires first wins). An aborted run returns a
//     non-nil partial Result (rounds completed, messages so far, outputs
//     as of the boundary) with an error wrapping ErrCanceled or
//     ErrDeadline. Network.WithContext attaches a context as a view, so
//     orchestrator pipelines inherit it across phases. The unprobed fast
//     path pays one nil check when no context is set (the probe-overhead
//     benchmark gates this).
//   - Panic containment. A panic raised by a vertex program during
//     Init/Step (any plane, any worker count, sharded or flat) is
//     recovered by the engine and converted to the deterministic Node.Fail
//     path: the run aborts at the end of the round with an error wrapping
//     ErrVertexPanic that names the smallest panicking vertex, its round,
//     phase and the recovered value. Worker goroutines never die; the
//     session stays reusable.
//   - Session safety. After ANY abort - cancel, deadline, contained panic,
//     Node.Fail - the same Network's next run is bit-for-bit identical to
//     a fresh network's (the pooled scratch is re-prepared, and message
//     flags follow the same parity discipline as normal completion). The
//     cancel-at-every-round and chaos matrices assert this under -race.
//   - Snapshots. RunOptions.SnapshotOnAbort captures a Snapshot in the
//     partial Result at the abort boundary; Network.Resume(alg, opts, sn)
//     continues it to an end state bit-for-bit identical to the
//     uninterrupted run. Snapshots are only offered for word-I/O batch
//     runs whose state lives entirely in the engine's columns (Node.State
//     and Output unset - the capture verifies this and refuses
//     otherwise), they serialize to a versioned binary framing (WriteTo /
//     ReadSnapshot, "DSN1") that rejects truncation and trailing bytes,
//     and they are portable across shard counts: columns are normalized
//     to the flat global slot layout on capture and re-localized on
//     resume. A Snapshot is owned by the caller; the engine never retains
//     it after Resume.
//
// The deterministic fault-injection matrix over these guarantees lives in
// internal/chaos: seeded panics at chosen (vertex, round) steps, cancels
// at chosen boundaries, expired deadlines, failing and slow probe sinks,
// and snapshot truncation, each injected into the paper's real pipelines.
//
// # Static-analysis annotations
//
// The invariants above are machine-checked by the distvet suite
// (internal/analysis/distvet, run by cmd/distvet and the CI lint job).
// Engine code declares its sanctioned exceptions in source with
// //distvet: directives:
//
//   - //distvet:wallclock <why> - on a site line or in a function's doc
//     comment: a sanctioned wall-clock read. Only the probe/tally
//     timing paths and the Result.Wall/SetupNS attribution qualify;
//     everything those reads feed is documented non-deterministic.
//   - //distvet:noalloc - in a function's doc comment: the function is
//     on the per-vertex hot path and must contain no allocating
//     constructs. The round loops (stepSlice and its batch/sharded
//     twins, flushHaltClears), the word-plane Node accessors, and every
//     InitWords/StepWords implementation carry it. cmd/escapecheck
//     additionally pins the compiler's escape picture of these
//     functions against ESCAPES.baseline.
//   - //distvet:alloc-ok <why> - on a site line inside a noalloc
//     function: a justified allocation, in practice only the amortized
//     one-time growth of pooled scratch buffers.
//   - //distvet:unordered <why> - on a map-range line in an engine
//     package: the iteration is provably order-free (e.g. the result is
//     sorted before anything observes it).
//
// Site directives attach to their own line or the line directly above;
// every directive except noalloc requires a justification text, and a
// missing justification is itself a diagnostic - `git grep distvet:`
// therefore audits the complete exception list with reasons.
package dist
