package dist

import (
	"math/rand"
	"reflect"
	"slices"
	"sync"
	"testing"

	"repro/internal/graph"
)

// This file covers the persistent per-Network session (session.go): runs
// that reuse cached topologies and pooled per-run state must stay
// bit-for-bit identical to runs on a fresh network, the filtered-
// topology cache must key on content (and normalize filters equivalent
// to no filter), repeated unfiltered word runs must perform no setup
// allocations, and back-to-back or concurrent pipelines on one network
// must not interfere.

// wordSum is a minimal word-I/O program: flood the identifier for a few
// rounds, output the running digest. Steady-state steps allocate
// nothing, so it doubles as the zero-setup-allocation probe.
type wordSum struct{ rounds int }

func (wordSum) MessageWords() int { return 1 }
func (wordSum) InputWidth() int   { return 0 }
func (wordSum) OutputWidth() int  { return 1 }

func (wordSum) Init(n *Node)      { n.SendAll(n.ID()) }
func (wordSum) InitWords(n *Node) { n.SendAllWord(int64(n.ID())) }

func (a wordSum) Step(n *Node, inbox []Message) {
	acc := int64(0)
	if n.State != nil {
		acc = n.State.(int64)
	}
	for p, m := range inbox {
		if m != nil {
			acc = acc*31 + int64(m.(int)) + int64(p)
		}
	}
	n.State = acc
	if n.Round() >= a.rounds {
		n.Output = int(acc)
		n.Halt()
		return
	}
	n.SendAll(n.ID())
}

func (a wordSum) StepWords(n *Node, inbox WordInbox) {
	acc := n.OutputWords()[0]
	for p := 0; p < inbox.Ports(); p++ {
		if inbox.Has(p) {
			acc = acc*31 + inbox.Word(p) + int64(p)
		}
	}
	n.SetOutputWord(acc)
	if n.Round() >= a.rounds {
		n.Halt()
		return
	}
	n.SendAllWord(int64(n.ID()))
}

// sessionGraph is a graph that exercises the session edge cases: an
// isolated vertex (degree 0 in the unfiltered topology) plus a random
// forest union.
func sessionGraph(t *testing.T, seed int64) (*graph.Graph, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(401)
	g0 := graph.ForestUnion(400, 3, rng)
	for v := 0; v < g0.N(); v++ {
		for _, u := range g0.Neighbors(v) {
			if u > v {
				if err := b.AddEdge(v, u); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	// Vertex 400 stays isolated.
	return b.Build(), rng
}

// snapshotResult deep-copies a Result so later runs on the same network
// (which reclaim the pooled output column) cannot disturb it.
func snapshotResult(res *Result) *Result {
	c := *res
	c.Wall = 0 // host wall time, not deterministic
	if res.OutputWords != nil {
		c.OutputWords = append([]int64(nil), res.OutputWords...)
	}
	if res.Outputs != nil {
		c.Outputs = append([]any(nil), res.Outputs...)
	}
	return &c
}

// TestSessionReuseMatchesFreshNetwork drives one shared network through a
// pipeline-shaped sequence of runs - word and boxed planes, repeated
// filters (cache hits), changed label contents in a reused slice, and
// both worker modes - and requires every result to equal the same run on
// a freshly built network.
func TestSessionReuseMatchesFreshNetwork(t *testing.T) {
	g, _ := sessionGraph(t, 610)
	n := g.N()
	labels := make([]int, n)
	active := make([]bool, n)
	for v := 0; v < n; v++ {
		labels[v] = v % 3
		active[v] = v%7 != 0
	}
	type step struct {
		name string
		opts RunOptions
	}
	steps := []step{
		{"unfiltered-word", RunOptions{}},
		{"filtered-word", RunOptions{Labels: labels, Active: active}},
		{"filtered-word-repeat", RunOptions{Labels: labels, Active: active}}, // cache hit
		{"labels-only", RunOptions{Labels: labels}},
		{"unfiltered-boxed", RunOptions{Delivery: DeliveryBoxed}},
		{"filtered-boxed", RunOptions{Labels: labels, Active: active, Delivery: DeliveryBoxed}},
		{"unfiltered-word-again", RunOptions{}},
		{"filtered-word-workers", RunOptions{Labels: labels, Active: active, Workers: 4}},
		{"unfiltered-sequential", RunOptions{Workers: 1}},
	}
	shared := NewNetwork(g)
	for _, st := range steps {
		got, err := shared.Run(wordSum{rounds: 4}, st.opts)
		if err != nil {
			t.Fatalf("%s (shared): %v", st.name, err)
		}
		got = snapshotResult(got)
		want, err := NewNetwork(g).Run(wordSum{rounds: 4}, st.opts)
		if err != nil {
			t.Fatalf("%s (fresh): %v", st.name, err)
		}
		if !reflect.DeepEqual(got, snapshotResult(want)) {
			t.Fatalf("%s: shared-session result diverges from fresh network", st.name)
		}
	}

	// Mutating the label contents of the SAME slice must miss the cache
	// (content keying) and change the result accordingly.
	for v := 0; v < n; v++ {
		labels[v] = v % 2
	}
	got, err := shared.Run(wordSum{rounds: 4}, RunOptions{Labels: labels})
	if err != nil {
		t.Fatal(err)
	}
	got = snapshotResult(got)
	want, err := NewNetwork(g).Run(wordSum{rounds: 4}, RunOptions{Labels: labels})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, snapshotResult(want)) {
		t.Fatal("mutated labels: shared-session result diverges from fresh network")
	}
}

// TestTopologyCacheReuseAndNormalization white-boxes the session cache:
// repeated filters return the same topology object, uniform labels and
// all-true active masks normalize to the unfiltered topology, and
// changed label contents in a reused slice produce a different topology.
func TestTopologyCacheReuseAndNormalization(t *testing.T) {
	g, rng := sessionGraph(t, 620)
	n := g.N()
	net := NewNetwork(g)
	sess := net.sess

	unf, hit := sess.topology(g, nil, nil, 1)
	if hit {
		t.Fatal("first unfiltered build reported a cache hit")
	}
	if got, hit := sess.topology(g, nil, nil, 1); got != unf || !hit {
		t.Fatal("unfiltered topology rebuilt on second use")
	}
	uniform := make([]int, n)
	for v := range uniform {
		uniform[v] = 9
	}
	if got, hit := sess.topology(g, uniform, nil, 1); got != unf || !hit {
		t.Fatal("uniform labels did not normalize to the unfiltered topology")
	}
	allOn := make([]bool, n)
	for v := range allOn {
		allOn[v] = true
	}
	if got, hit := sess.topology(g, nil, allOn, 1); got != unf || !hit {
		t.Fatal("all-true active mask did not normalize to the unfiltered topology")
	}

	labels := make([]int, n)
	for v := range labels {
		labels[v] = rng.Intn(3)
	}
	f1, hit := sess.topology(g, labels, nil, 1)
	if hit {
		t.Fatal("first filtered build reported a cache hit")
	}
	if f1 == unf {
		t.Fatal("filtered topology aliased the unfiltered one")
	}
	if got, hit := sess.topology(g, labels, nil, 1); got != f1 || !hit {
		t.Fatal("filtered topology rebuilt despite identical filters")
	}
	// Same slice, different content: must be a different topology.
	labels[0] += 17
	if got, _ := sess.topology(g, labels, nil, 1); got == f1 {
		t.Fatal("content change in a reused labels slice hit the stale cache entry")
	}
	labels[0] -= 17
	if got, hit := sess.topology(g, labels, nil, 1); got != f1 || !hit {
		t.Fatal("restored labels missed the cache")
	}

	// The cached wiring must agree with the reference helpers.
	for v := 0; v < n; v++ {
		want := VisiblePorts(g, labels, nil, v)
		if !reflect.DeepEqual(append([]int{}, f1.ports[v]...), append([]int{}, want...)) {
			t.Fatalf("vertex %d: cached ports %v, want %v", v, f1.ports[v], want)
		}
	}
}

// TestSecondUnfilteredRunZeroSetupAllocs pins the pooling contract: once
// a network has run a word-I/O program, repeating it reuses the cached
// topology, the pooled node array, the message columns and the output
// column, so a whole run performs only O(1) bookkeeping allocations -
// independent of n.
func TestSecondUnfilteredRunZeroSetupAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(630))
	g := graph.ForestUnion(3000, 3, rng)
	net := NewNetworkPermuted(g, rng)
	opts := RunOptions{Workers: 1} // no goroutine spawns in the count
	if _, err := net.RunWords(wordSum{rounds: 4}, opts); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := net.RunWords(wordSum{rounds: 4}, opts); err != nil {
			t.Fatal(err)
		}
	})
	// The Result header is the only per-run heap object left; leave
	// slack for test-harness noise but stay far below anything O(n).
	if allocs > 8 {
		t.Fatalf("second unfiltered word run allocates %.0f objects; setup reuse regressed", allocs)
	}
}

// TestBackToBackPipelinesOneNetwork runs two full multi-phase sequences
// (mixed filters and transports) back-to-back on one network; under
// -race this doubles as the detector pass over the session's borrow/
// publish lifecycle. The second pipeline must reproduce the first
// bit-for-bit.
func TestBackToBackPipelinesOneNetwork(t *testing.T) {
	g, rng := sessionGraph(t, 640)
	n := g.N()
	labels := make([]int, n)
	for v := 0; v < n; v++ {
		labels[v] = rng.Intn(4)
	}
	net := NewNetwork(g)
	pipeline := func() []*Result {
		var out []*Result
		for _, opts := range []RunOptions{
			{},
			{Labels: labels},
			{Labels: labels, Delivery: DeliveryBoxed},
			{Workers: 3},
		} {
			res, err := net.Run(wordSum{rounds: 3}, opts)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, snapshotResult(res))
		}
		return out
	}
	first := pipeline()
	second := pipeline()
	if !reflect.DeepEqual(first, second) {
		t.Fatal("second pipeline on the same network diverged from the first")
	}
}

// TestNewNetworkWithIDs pins the sweep-harness constructor: a network
// rebuilt from a captured identifier assignment reproduces the
// permuted original bit for bit, and non-permutations are rejected.
func TestNewNetworkWithIDs(t *testing.T) {
	g, rng := sessionGraph(t, 660)
	orig := NewNetworkPermuted(g, rng)
	want, err := orig.Run(wordSum{rounds: 4}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want = snapshotResult(want)
	rebuilt, err := NewNetworkWithIDs(g, orig.IDs())
	if err != nil {
		t.Fatal(err)
	}
	got, err := rebuilt.Run(wordSum{rounds: 4}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snapshotResult(got), want) {
		t.Fatal("network rebuilt from captured IDs diverges from the original")
	}
	bad := orig.IDs()
	bad[0] = bad[1] // duplicate
	if _, err := NewNetworkWithIDs(g, bad); err == nil {
		t.Fatal("duplicate identifiers accepted")
	}
	if _, err := NewNetworkWithIDs(g, bad[:10]); err == nil {
		t.Fatal("short identifier slice accepted")
	}
}

// TestConcurrentRunsOneNetwork overlaps runs on one shared network from
// several goroutines: the pooled scratch must degrade to fresh
// allocations without corrupting results (each goroutine compares
// against a reference result computed on a private network).
func TestConcurrentRunsOneNetwork(t *testing.T) {
	g, _ := sessionGraph(t, 650)
	net := NewNetwork(g)
	ref, err := NewNetwork(g).Run(wordSum{rounds: 4}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	refCopy := snapshotResult(ref)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	diverged := make([]bool, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 5; k++ {
				res, err := net.Run(wordSum{rounds: 4}, RunOptions{})
				if err != nil {
					errs[i] = err
					return
				}
				// OutputWords may be reclaimed by a concurrent run the
				// moment this one returns, so compare the scalar fields
				// only; TestSessionReuseMatchesFreshNetwork covers the
				// columns in the sequential setting.
				if res.Rounds != refCopy.Rounds || res.Messages != refCopy.Messages {
					diverged[i] = true
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if diverged[i] {
			t.Fatalf("goroutine %d: concurrent run diverged from the reference", i)
		}
	}
}

// TestSessionValueOwnership pins the session value store's contract:
// one build per key per session, the same value returned to every
// WithDelivery/WithWorkers/WithProbe view, a fresh store on a Sharded
// view (fresh session), and safe concurrent access.
func TestSessionValueOwnership(t *testing.T) {
	type keyA struct{}
	type keyB struct{}
	g, _ := sessionGraph(t, 64)
	net := NewNetwork(g)

	builds := 0
	build := func() any { builds++; return &builds }
	v1 := net.SessionValue(keyA{}, build)
	v2 := net.SessionValue(keyA{}, build)
	if v1 != v2 || builds != 1 {
		t.Fatalf("second lookup rebuilt: %d builds, %p vs %p", builds, v1, v2)
	}
	if v := net.WithWorkers(2).SessionValue(keyA{}, build); v != v1 {
		t.Fatal("WithWorkers view does not share the session value")
	}
	if v := net.WithDelivery(DeliveryBoxed).SessionValue(keyA{}, build); v != v1 {
		t.Fatal("WithDelivery view does not share the session value")
	}
	if net.SessionValue(keyB{}, func() any { return "b" }) == v1 {
		t.Fatal("distinct keys collide")
	}

	sh, err := graph.NewSharding(g.N(), 2)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := net.Sharded(sh)
	if err != nil {
		t.Fatal(err)
	}
	if v := sharded.SessionValue(keyA{}, func() any { return "fresh" }); v != "fresh" {
		t.Fatalf("Sharded view inherited the parent session value %v", v)
	}

	type keyC struct{}
	var wg sync.WaitGroup
	got := make([]any, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = net.SessionValue(keyC{}, func() any { return new(int) })
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			t.Fatalf("concurrent lookups returned distinct values")
		}
	}
}

// TestFillSlotsCountingMatchesParallel pins the two delivery-slot fill
// strategies against each other: the single-worker counting sweep and
// the parallel binary-search fill must produce identical slot tables
// (and boundary tables on sharded topologies) on flat, filtered and
// sharded builds.
func TestFillSlotsCountingMatchesParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	g := graph.Gnp(300, 0.03, rng)
	labels := make([]int, g.N())
	active := make([]bool, g.N())
	for v := range labels {
		labels[v] = v % 3
		active[v] = v%5 != 0
	}
	sh, err := graph.NewSharding(g.N(), 4)
	if err != nil {
		t.Fatal(err)
	}
	builds := []struct {
		name string
		make func(workers int) *topology
	}{
		{"flat", func(w int) *topology {
			return (&session{}).buildUnfiltered(g, w)
		}},
		{"filtered", func(w int) *topology {
			return (&session{}).buildFiltered(g, labels, active, w)
		}},
		{"sharded", func(w int) *topology {
			net, err := NewNetwork(g).Sharded(sh)
			if err != nil {
				t.Fatal(err)
			}
			return net.sess.buildUnfiltered(g, w)
		}},
	}
	for _, b := range builds {
		seq := b.make(1)
		par := b.make(4)
		if !slices.Equal(seq.inSlots, par.inSlots) {
			t.Errorf("%s: counting fill and parallel fill disagree on inSlots", b.name)
		}
		if (seq.shard == nil) != (par.shard == nil) {
			t.Fatalf("%s: shard structure diverges", b.name)
		}
		if seq.shard != nil && !slices.Equal(seq.shard.inShard, par.shard.inShard) {
			t.Errorf("%s: counting fill and parallel fill disagree on inShard", b.name)
		}
	}
}
