package dist

import (
	"errors"
	"fmt"
	"sync"
)

// This file implements the typed word-I/O plane: vertex programs whose
// per-vertex inputs and outputs are a fixed number of int64 words read
// and write flat columns instead of boxing one struct per vertex into
// []any. It extends the columnar batch transport of batch.go from
// messages to inputs and outputs, which is the last allocation source on
// the pipeline hot path (ROADMAP "typed input/output plumbing").
//
// Contract.
//
//   - A WordIOAlgorithm declares InputWidth and OutputWidth: the number
//     of int64 words per vertex, or PerPort for one word per visible
//     port (the layout used for per-port data such as parent flags or
//     edge directions).
//   - The word plane is bound to the batch transport: when a Run of a
//     WordIOAlgorithm resolves to batch delivery, InitWords/StepWords
//     read Node.InputWords() and write Node.SetOutputWord(s)/
//     OutputWords(), and the run takes RunOptions.InputWords instead of
//     RunOptions.Inputs (mixing the two is an error). When the run
//     resolves to boxed delivery, the boxed Init/Step methods run
//     against the classic Inputs/Node.Output plane; that []any path is
//     the reference fallback which shadow tests compare against.
//   - Input columns are CALLER-owned: the engine (and the vertex
//     program) read them during the Run only, but a program may also use
//     its own input slots as per-run scratch, so callers must not assume
//     the column is unchanged after the Run (see forest.WaitColorAlgo).
//   - Output columns are ENGINE-owned and reused: Result.OutputWords
//     aliases a column that the next word-I/O Run on the same Network
//     (or any of its WithDelivery views) reclaims and re-zeroes. Decode
//     or copy it before starting another run. The column is zeroed at
//     the start of each run, so vertices that never set an output - and
//     inactive vertices - read as zero words.
//
// Layouts. For a fixed width W >= 1, vertex v owns words
// [v*W, (v+1)*W) of the column, for all n vertices (inactive slots are
// simply unused). For PerPort, the column is the concatenation, over
// ACTIVE vertices in ascending vertex order, of one word per visible
// port in port order - exactly the slot layout of the batch message
// columns, so its total length is the number of visible directed edges.
// ForEachVisible iterates that order for callers filling or decoding
// per-port columns.

// PerPort is the sentinel width declaring one word per visible port
// instead of a fixed per-vertex word count.
const PerPort = -1

// WordIOAlgorithm is a fixed-width vertex program whose per-vertex
// inputs and outputs are typed word columns. On the batch transport the
// engine wires Node.InputWords/OutputWords to flat []int64 columns; the
// embedded boxed methods remain the []any fallback implementation of
// the same program, and the two planes must implement identical
// behavior (pinned by shadow tests).
type WordIOAlgorithm interface {
	FixedWidthAlgorithm
	// InputWidth returns the per-vertex input word count (>= 0), or
	// PerPort. Zero means the program takes no input column. The width
	// may depend on the algorithm value (e.g. a variant flag), but must
	// be constant across one Run.
	InputWidth() int
	// OutputWidth returns the per-vertex output word count (>= 0), or
	// PerPort. Zero means the program produces no output column.
	OutputWidth() int
}

// InputWords returns the node's view of the input column: InputWidth
// words (or one word per visible port when the width is PerPort). It
// panics outside a word-I/O run or when the algorithm declares no
// input. The program may overwrite its own slots and use them as
// per-run scratch; see the package contract.
//
//distvet:noalloc
func (n *Node) InputWords() []int64 {
	if n.win == nil {
		panic(fmt.Sprintf("dist: node id=%d calls InputWords outside a word-I/O run (or the algorithm declares no input words)", n.id))
	}
	return n.win
}

// OutputWords returns the node's writable view of the output column:
// OutputWidth words (or one per visible port when the width is
// PerPort), zeroed at the start of the run. It panics outside a
// word-I/O run or when the algorithm declares no output.
//
//distvet:noalloc
func (n *Node) OutputWords() []int64 {
	if n.wob == nil {
		panic(fmt.Sprintf("dist: node id=%d calls OutputWords outside a word-I/O run (or the algorithm declares no output words)", n.id))
	}
	return n.wob
}

// SetOutputWord sets the node's one-word output. The declared output
// width must be exactly 1.
//
//distvet:noalloc
func (n *Node) SetOutputWord(w int64) {
	out := n.OutputWords()
	if len(out) != 1 {
		panic(fmt.Sprintf("dist: node id=%d uses SetOutputWord with %d output words", n.id, len(out)))
	}
	out[0] = w
}

// SetOutputWords copies ws into the node's output slot; len(ws) must
// equal the output width.
//
//distvet:noalloc
func (n *Node) SetOutputWords(ws ...int64) {
	out := n.OutputWords()
	if len(ws) != len(out) {
		panic(fmt.Sprintf("dist: node id=%d sets %d of %d output words", n.id, len(ws), len(out)))
	}
	copy(out, ws)
}

// Vertex returns the node's vertex index in [0, n) - the engine's
// numbering, distinct from the permutable LOCAL identifier ID(). It
// exists so vertex programs can index caller-provided arenas
// deterministically; algorithms must not base decisions on it (use ID).
func (n *Node) Vertex() int { return n.vertex }

// Fail reports a vertex-program error - bad input, exhausted palette -
// and halts the node. The run aborts at the end of the current round
// and Run returns the error of the smallest failing vertex (wrapped
// with its vertex and identifier), regardless of worker scheduling.
// This replaces the legacy convention of smuggling errors through
// n.Output, which only the boxed []any plane can carry.
func (n *Node) Fail(err error) {
	if err == nil {
		panic(fmt.Sprintf("dist: node id=%d calls Fail with a nil error", n.id))
	}
	f := n.fail
	f.mu.Lock()
	if f.err == nil || n.vertex < f.vertex {
		f.vertex, f.id, f.err = n.vertex, n.id, err
	}
	f.mu.Unlock()
	n.Halt()
}

// Failf is Fail with fmt.Errorf formatting.
func (n *Node) Failf(format string, args ...any) {
	n.Fail(fmt.Errorf(format, args...))
}

// runFailure is the per-run error slot Fail records into. Workers may
// fail concurrently; the smallest vertex wins so the reported error is
// deterministic.
type runFailure struct {
	mu     sync.Mutex
	vertex int
	id     int
	err    error
}

// record is the non-Node entry into the failure slot (the panic guard's
// engine-bug fallback); the smallest-vertex-wins rule still applies.
func (f *runFailure) record(vertex, id int, err error) {
	f.mu.Lock()
	if f.err == nil || vertex < f.vertex {
		f.vertex, f.id, f.err = vertex, id, err
	}
	f.mu.Unlock()
}

func (f *runFailure) take() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err == nil {
		return nil
	}
	return fmt.Errorf("dist: vertex %d (id %d): %w", f.vertex, f.id, f.err)
}

// WordIO reports whether a default-options Run of algo on this network
// resolves to the batch transport with the typed word-I/O plane.
// Orchestrators branch on it: word columns via RunWords when true, the
// boxed []any fallback otherwise (e.g. under a WithDelivery(
// DeliveryBoxed) shadow view).
func (net *Network) WordIO(algo Algorithm) bool {
	batch, err := net.resolveDelivery(algo, RunOptions{})
	if err != nil || !batch {
		return false
	}
	_, ok := algo.(WordIOAlgorithm)
	return ok
}

// RunWords is the word-plane entry point: Run restricted to word-I/O
// algorithms on the batch transport. It fails rather than falling back
// when the network or options force boxed delivery, so orchestrators
// that support the fallback check Network.WordIO first.
func (net *Network) RunWords(algo WordIOAlgorithm, opts RunOptions) (*Result, error) {
	batch, err := net.resolveDelivery(algo, opts)
	if err != nil {
		return nil, err
	}
	if !batch {
		return nil, errors.New("dist: RunWords requires the batch transport (the network or options force boxed delivery)")
	}
	return net.Run(algo, opts)
}

// wireWordIO binds one live node's input/output column views. The widths
// and column lengths were validated by newSimulation, which calls this
// from the parallel setup sweep; the slot base comes from the cached
// topology.
//
//distvet:noalloc
func wireWordIO(nd *Node, s *simulation, iw, ow int, inCol []int64, v int) {
	deg := len(nd.ports)
	switch iw {
	case 0:
		// no input plane
	case PerPort:
		if deg == 0 {
			// A canonical non-nil empty view: degree-0 vertices have
			// no slots, but InputWords must still work for them.
			nd.win = emptyWords
		} else {
			b := s.topo.base[v]
			nd.win = inCol[b : b+deg : b+deg]
		}
	default:
		o := v * iw
		nd.win = inCol[o : o+iw : o+iw]
	}
	switch ow {
	case 0:
		// no output plane
	case PerPort:
		if deg == 0 {
			nd.wob = emptyWords
		} else {
			b := s.topo.base[v]
			nd.wob = s.outCol[b : b+deg : b+deg]
		}
	default:
		o := v * ow
		nd.wob = s.outCol[o : o+ow : o+ow]
	}
}

// emptyWords is the shared non-nil zero-length column view of degree-0
// vertices under PerPort widths (and of empty input columns).
var emptyWords = make([]int64, 0)
