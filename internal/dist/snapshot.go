package dist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// This file implements checkpoint/resume for the round-structured engine
// state. The batch transport's state between two rounds is, by
// construction, exactly the current-parity message columns plus the live
// set and a handful of counters: the engine is RNG-free, the word-I/O
// plane keeps inputs/outputs in flat columns, and the flag-hygiene
// invariant means the OTHER parity's content is dead (its flags are
// about to be overwritten or were flushed). A Snapshot captures that
// state - copied, never aliased - so a run aborted at a round boundary
// (RunOptions.SnapshotOnAbort) can be serialized, the process killed,
// and the run resumed bit-for-bit on a fresh Network.
//
// Contract: snapshots cover word-I/O batch runs whose per-node state
// lives ENTIRELY in the word columns (input/output/message words) -
// Node.State and Node.Output must stay nil on the batch plane. The
// capture verifies this and refuses otherwise; programs that keep
// algorithm-side arenas (e.g. reduce.Algo) are not snapshotable
// mid-run, while column-state programs (e.g. forest.WaitColorAlgo) are
// by design. Sharded runs snapshot fine: the columns are normalized to
// the flat global slot layout (global slot = shard-local + slot cut),
// so a snapshot taken at one shard count resumes at any other.

// snapMagic/snapVersion frame the serialized form. The version bumps on
// any layout change; ReadSnapshot rejects unknown versions.
const snapMagic = "DSN1"

const snapVersion = 1

// maxSnapWidth bounds the per-message word count a snapshot header may
// declare (far above any real program; a hostile header cannot multiply
// totalPorts into an overflowing allocation).
const maxSnapWidth = 1 << 16

// Snapshot is the captured engine state of a word-I/O batch run at a
// round boundary. It owns all of its memory: nothing aliases the
// session's pooled columns or the caller's input column, so it remains
// valid across later runs and process boundaries (WriteTo/ReadSnapshot).
type Snapshot struct {
	// Dimensions, used to validate a Resume against the target run.
	n          int
	totalPorts int
	width      int
	iw, ow     int

	// round is the last completed round; Resume continues at round+1.
	round int
	// live is the live set entering round round+1 (ascending vertices).
	live []int
	// clearQ lists the nodes that halted during round `round`: their
	// final sends sit in the current-parity column (delivered at
	// round+1) and their flags are flushed right after - dropping this
	// queue would leave stale flags that misdeliver two rounds later.
	clearQ []int
	// sent holds every vertex's cumulative send counter (index = vertex;
	// zero for inactive vertices), so resumed Results report the same
	// absolute message totals.
	sent []int64
	// words/flags are the current-parity (round%2) message column and
	// sent flags in the FLAT global slot layout, regardless of the
	// captured run's shard count.
	words []int64
	flags []uint8
	// inWords/outWords are the word-I/O input and output column contents
	// (programs may use input slots as scratch, so the live contents -
	// not the caller's originals - are what resumes need).
	inWords  []int64
	outWords []int64
}

// Round returns the last completed round; a Resume continues at Round+1.
func (sn *Snapshot) Round() int { return sn.round }

// captureSnapshot copies the engine state after completed round `rounds`
// into an owned Snapshot. Called at a round boundary (abortResult) while
// the pooled columns are still bound.
func (s *simulation) captureSnapshot(rounds int) (*Snapshot, error) {
	if s.wio == nil || s.fw == nil {
		return nil, fmt.Errorf("dist: snapshot requires a word-I/O batch run, got %T", s.algo)
	}
	// Verify the column-state contract: a program that stashed anything
	// in the boxed per-node slots cannot be rebuilt from columns alone.
	for _, nd := range s.nodes {
		if nd != nil && (nd.State != nil || nd.Output != nil) {
			return nil, fmt.Errorf("dist: snapshot requires column-only state, but vertex %d holds boxed State/Output", nd.vertex)
		}
	}
	n := s.net.g.N()
	tp := s.topo.totalPorts
	sn := &Snapshot{
		n:          n,
		totalPorts: tp,
		width:      s.width,
		iw:         s.wio.InputWidth(),
		ow:         s.wio.OutputWidth(),
		round:      rounds,
		live:       append([]int(nil), s.live...),
		clearQ:     append([]int(nil), s.clearQ...),
		sent:       make([]int64, n),
		words:      make([]int64, tp*s.width),
		flags:      make([]uint8, tp),
		inWords:    append([]int64(nil), s.opts.InputWords...),
		outWords:   append([]int64(nil), s.outCol...),
	}
	for v, nd := range s.nodes {
		if nd != nil {
			sn.sent[v] = nd.sent
		}
	}
	par := rounds % 2
	if st := s.topo.shard; st != nil {
		// Normalize shard-local segments into the flat layout.
		for k := 0; k < st.k(); k++ {
			cut, seg := st.slotCuts[k], st.segLen(k)
			copy(sn.words[cut*s.width:(cut+seg)*s.width], s.shWords[par][k])
			copy(sn.flags[cut:cut+seg], s.shSent[par][k])
		}
	} else {
		copy(sn.words, s.wwords[par][:tp*s.width])
		copy(sn.flags, s.wsent[par][:tp])
	}
	return sn, nil
}

// Resume continues a snapshotted run on this network: the same graph,
// identifier assignment, filters and algorithm shape as the captured
// run (validated against the snapshot's dimensions), with the round loop
// entering at snapshot round+1. The resumed run is bit-for-bit identical
// to the uninterrupted one: same outputs, same absolute Rounds and
// Messages. opts.InputWords must be a column of the captured length; its
// contents are overwritten with the snapshot's (programs use input slots
// as scratch, so the snapshot's copy is authoritative). The shard count
// of this network view need not match the captured run's.
func (net *Network) Resume(algo Algorithm, opts RunOptions, sn *Snapshot) (*Result, error) {
	if sn == nil {
		return nil, errors.New("dist: nil snapshot")
	}
	s, err := net.prepare(algo, opts)
	if err != nil {
		return nil, err
	}
	if err := s.restore(sn); err != nil {
		s.close()
		return nil, err
	}
	return s.run()
}

// restore overlays the snapshot onto a freshly prepared simulation.
func (s *simulation) restore(sn *Snapshot) error {
	if s.wio == nil || s.fw == nil {
		return fmt.Errorf("dist: resume requires a word-I/O batch run, got %T", s.algo)
	}
	if n := s.net.g.N(); n != sn.n {
		return fmt.Errorf("dist: snapshot of %d vertices resumed on %d", sn.n, n)
	}
	if tp := s.topo.totalPorts; tp != sn.totalPorts {
		return fmt.Errorf("dist: snapshot of %d delivery slots resumed on a topology with %d (different graph or filters)", sn.totalPorts, tp)
	}
	if s.width != sn.width || s.wio.InputWidth() != sn.iw || s.wio.OutputWidth() != sn.ow {
		return fmt.Errorf("dist: snapshot widths (W=%d, in=%d, out=%d) do not match algorithm %T (W=%d, in=%d, out=%d)",
			sn.width, sn.iw, sn.ow, s.algo, s.width, s.wio.InputWidth(), s.wio.OutputWidth())
	}
	if len(sn.inWords) != len(s.opts.InputWords) {
		return fmt.Errorf("dist: snapshot carries %d input words, options carry %d", len(sn.inWords), len(s.opts.InputWords))
	}
	for _, v := range sn.live {
		if v < 0 || v >= sn.n || s.nodes[v] == nil {
			return fmt.Errorf("dist: snapshot live vertex %d is not active here", v)
		}
	}
	for _, v := range sn.clearQ {
		if v < 0 || v >= sn.n || s.nodes[v] == nil {
			return fmt.Errorf("dist: snapshot clear-queue vertex %d is not active here", v)
		}
	}
	s.startRound = sn.round
	s.resumed = true
	s.live = s.live[:len(sn.live)]
	copy(s.live, sn.live)
	s.clearQ = append(s.clearQ[:0], sn.clearQ...)
	for v, nd := range s.nodes {
		if nd != nil {
			nd.sent = sn.sent[v]
		}
	}
	par := sn.round % 2
	if st := s.topo.shard; st != nil {
		// Scatter the flat columns into this view's shard segments; the
		// spent parity's flags hold pooled junk from earlier runs and are
		// bulk-zeroed (round round+1 writes it fresh, but flushHaltClears
		// and late-halting readers must find zeros, as they would in the
		// uninterrupted run).
		for k := 0; k < st.k(); k++ {
			cut, seg := st.slotCuts[k], st.segLen(k)
			copy(s.shWords[par][k], sn.words[cut*s.width:(cut+seg)*s.width])
			copy(s.shSent[par][k], sn.flags[cut:cut+seg])
			clear(s.shSent[1-par][k])
		}
	} else {
		copy(s.wwords[par], sn.words)
		copy(s.wsent[par], sn.flags)
		clear(s.wsent[1-par])
	}
	copy(s.opts.InputWords, sn.inWords)
	copy(s.outCol, sn.outWords)
	return nil
}

// WriteTo serializes the snapshot in the versioned DSN1 binary framing:
// a fixed header (magic, version, dimensions, round, section lengths)
// followed by the little-endian sections in order (live, clearQ, sent,
// flags, words, inWords, outWords). The format is self-contained and
// platform-independent.
func (sn *Snapshot) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var n int64
	put := func(p []byte) error {
		k, err := bw.Write(p)
		n += int64(k)
		return err
	}
	var hdr [84]byte
	copy(hdr[0:4], snapMagic)
	le := binary.LittleEndian
	le.PutUint32(hdr[4:8], snapVersion)
	le.PutUint64(hdr[8:16], uint64(sn.n))
	le.PutUint64(hdr[16:24], uint64(sn.totalPorts))
	le.PutUint64(hdr[24:32], uint64(sn.width))
	le.PutUint64(hdr[32:40], uint64(int64(sn.iw)))
	le.PutUint64(hdr[40:48], uint64(int64(sn.ow)))
	le.PutUint64(hdr[48:56], uint64(sn.round))
	le.PutUint64(hdr[56:64], uint64(len(sn.live)))
	le.PutUint64(hdr[64:72], uint64(len(sn.clearQ)))
	le.PutUint64(hdr[72:80], uint64(len(sn.inWords)))
	le.PutUint32(hdr[80:84], uint32(len(sn.outWords)))
	if err := put(hdr[:]); err != nil {
		return n, err
	}
	var buf [8]byte
	for _, v := range sn.live {
		le.PutUint32(buf[:4], uint32(v))
		if err := put(buf[:4]); err != nil {
			return n, err
		}
	}
	for _, v := range sn.clearQ {
		le.PutUint32(buf[:4], uint32(v))
		if err := put(buf[:4]); err != nil {
			return n, err
		}
	}
	for _, x := range sn.sent {
		le.PutUint64(buf[:], uint64(x))
		if err := put(buf[:]); err != nil {
			return n, err
		}
	}
	if err := put(sn.flags); err != nil {
		return n, err
	}
	for _, col := range [][]int64{sn.words, sn.inWords, sn.outWords} {
		for _, x := range col {
			le.PutUint64(buf[:], uint64(x))
			if err := put(buf[:]); err != nil {
				return n, err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	return n, nil
}

// ReadSnapshot parses a DSN1 snapshot. Any truncation or corruption -
// bad magic, unknown version, inconsistent section lengths, short
// payload, trailing bytes - is an error, never a partial snapshot. Large
// sections are read with chunked growth so a hostile header cannot force
// allocations beyond the bytes actually present.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [84]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("dist: snapshot header: %w", err)
	}
	if string(hdr[0:4]) != snapMagic {
		return nil, fmt.Errorf("dist: bad magic %q (not a %s snapshot)", hdr[0:4], snapMagic)
	}
	le := binary.LittleEndian
	if v := le.Uint32(hdr[4:8]); v != snapVersion {
		return nil, fmt.Errorf("dist: unsupported snapshot version %d (want %d)", v, snapVersion)
	}
	sn := &Snapshot{
		n:          int(le.Uint64(hdr[8:16])),
		totalPorts: int(le.Uint64(hdr[16:24])),
		width:      int(le.Uint64(hdr[24:32])),
		iw:         int(int64(le.Uint64(hdr[32:40]))),
		ow:         int(int64(le.Uint64(hdr[40:48]))),
		round:      int(le.Uint64(hdr[48:56])),
	}
	nLive := int(le.Uint64(hdr[56:64]))
	nClear := int(le.Uint64(hdr[64:72]))
	nIn := int(le.Uint64(hdr[72:80]))
	nOut := int(le.Uint32(hdr[80:84]))
	switch {
	case sn.n < 0 || sn.n >= maxSlots:
		return nil, fmt.Errorf("dist: snapshot declares %d vertices", sn.n)
	case sn.totalPorts < 0 || sn.totalPorts >= maxSlots:
		return nil, fmt.Errorf("dist: snapshot declares %d delivery slots", sn.totalPorts)
	case sn.width < 1 || sn.width > maxSnapWidth:
		return nil, fmt.Errorf("dist: snapshot declares %d message words", sn.width)
	case sn.iw < PerPort || sn.ow < PerPort:
		return nil, fmt.Errorf("dist: snapshot declares I/O widths (%d, %d)", sn.iw, sn.ow)
	case sn.round < 0 || sn.round > defaultMaxRounds:
		return nil, fmt.Errorf("dist: snapshot declares round %d", sn.round)
	case nLive < 0 || nLive > sn.n:
		return nil, fmt.Errorf("dist: snapshot declares %d live of %d vertices", nLive, sn.n)
	case nClear < 0 || nClear > sn.n:
		return nil, fmt.Errorf("dist: snapshot declares %d clear-queue entries of %d vertices", nClear, sn.n)
	case nIn < 0 || nIn >= maxSlots || nOut < 0 || nOut >= maxSlots:
		return nil, fmt.Errorf("dist: snapshot declares (%d, %d) I/O words", nIn, nOut)
	}
	var err error
	if sn.live, err = readVertexSec(br, nLive, sn.n, "live"); err != nil {
		return nil, err
	}
	if sn.clearQ, err = readVertexSec(br, nClear, sn.n, "clearQ"); err != nil {
		return nil, err
	}
	if sn.sent, err = readWordSec(br, sn.n, "sent"); err != nil {
		return nil, err
	}
	sn.flags, err = readFlagSec(br, sn.totalPorts)
	if err != nil {
		return nil, err
	}
	if sn.words, err = readWordSec(br, sn.totalPorts*sn.width, "words"); err != nil {
		return nil, err
	}
	if sn.inWords, err = readWordSec(br, nIn, "inWords"); err != nil {
		return nil, err
	}
	if sn.outWords, err = readWordSec(br, nOut, "outWords"); err != nil {
		return nil, err
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, errors.New("dist: trailing data after snapshot")
	}
	return sn, nil
}

// snapChunk bounds the per-step allocation of the chunk-grown section
// readers: a hostile header declaring a huge section only costs memory
// proportional to the bytes actually present in the stream.
const snapChunk = 1 << 16

// readVertexSec reads a vertex-list section (uint32 entries, validated
// against n) with chunked growth.
func readVertexSec(br *bufio.Reader, count, n int, sec string) ([]int, error) {
	out := make([]int, 0, min(count, snapChunk))
	var buf [4]byte
	for i := 0; i < count; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("dist: snapshot %s section: %w", sec, err)
		}
		v := int(binary.LittleEndian.Uint32(buf[:]))
		if v >= n {
			return nil, fmt.Errorf("dist: snapshot %s section: vertex %d out of range [0,%d)", sec, v, n)
		}
		out = append(out, v)
	}
	return out, nil
}

// readWordSec reads an int64 column section with chunked growth.
func readWordSec(br *bufio.Reader, count int, sec string) ([]int64, error) {
	out := make([]int64, 0, min(count, snapChunk))
	var buf [8]byte
	for i := 0; i < count; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("dist: snapshot %s section: %w", sec, err)
		}
		out = append(out, int64(binary.LittleEndian.Uint64(buf[:])))
	}
	return out, nil
}

// readFlagSec reads the sent-flag section with chunked growth.
func readFlagSec(br *bufio.Reader, count int) ([]uint8, error) {
	out := make([]uint8, 0, min(count, snapChunk))
	for len(out) < count {
		k := min(count-len(out), snapChunk)
		start := len(out)
		out = append(out, make([]uint8, k)...)
		if _, err := io.ReadFull(br, out[start:]); err != nil {
			return nil, fmt.Errorf("dist: snapshot flags section: %w", err)
		}
	}
	return out, nil
}
