package dist

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
)

// chainColor 2-colors a path: the head (no predecessor port) outputs 0 in
// Init; every other node waits for its predecessor's color c and outputs
// 1-c. Input is the port leading to the predecessor, or -1 for the head.
type chainColor struct{}

func (chainColor) Init(n *Node) {
	if n.Input.(int) < 0 {
		n.Output = 0
		n.SendAll(0)
		n.Halt()
	}
}

func (chainColor) Step(n *Node, inbox []Message) {
	p := n.Input.(int)
	if inbox[p] == nil {
		return
	}
	c := 1 - inbox[p].(int)
	n.Output = c
	n.SendAll(c)
	n.Halt()
}

func pathInputs(n int) []any {
	inputs := make([]any, n)
	inputs[0] = -1
	for v := 1; v < n; v++ {
		inputs[v] = 0 // predecessor v-1 is the smaller neighbor: port 0
	}
	return inputs
}

func TestPathTwoColoringEndToEnd(t *testing.T) {
	const n = 17
	net := NewNetwork(graph.Path(n))
	res, err := net.Run(chainColor{}, RunOptions{Inputs: pathInputs(n)})
	if err != nil {
		t.Fatal(err)
	}
	colors, err := IntOutputs(res, -1)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		if colors[v] != v%2 {
			t.Fatalf("vertex %d colored %d, want %d", v, colors[v], v%2)
		}
	}
	// The color wave takes one round per edge; every node sends to every
	// neighbor once, so 2m - (n-1) = n-1 messages reach unhalted nodes,
	// but all 2m sends are counted.
	if res.Rounds != n-1 {
		t.Errorf("rounds = %d, want %d", res.Rounds, n-1)
	}
	if want := int64(2 * (n - 1)); res.Messages != want {
		t.Errorf("messages = %d, want %d", res.Messages, want)
	}
}

func TestErrMaxRoundsSurfaces(t *testing.T) {
	const n = 9
	net := NewNetwork(graph.Path(n))
	// Budget too small for the wave to reach the tail.
	_, err := net.Run(chainColor{}, RunOptions{Inputs: pathInputs(n), MaxRounds: n / 2})
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}
	// Exactly enough rounds: no error.
	if _, err := net.Run(chainColor{}, RunOptions{Inputs: pathInputs(n), MaxRounds: n - 1}); err != nil {
		t.Fatalf("tight budget failed: %v", err)
	}
}

// gossip floods identifiers for a fixed number of rounds and outputs a
// digest of everything heard - enough mixing that any engine divergence
// (ordering, delivery, halting) changes some output.
type gossip struct{ rounds int }

func (g gossip) Init(n *Node) {
	n.State = n.ID()
	n.SendAll(n.ID())
}

func (g gossip) Step(n *Node, inbox []Message) {
	acc := n.State.(int)
	for p, m := range inbox {
		if m != nil {
			acc = acc*31 + m.(int) + p
		}
	}
	n.State = acc
	if n.Round() >= g.rounds {
		n.Output = acc
		n.Halt()
		return
	}
	n.SendAll(acc % 1000003)
}

func runGossip(t *testing.T, seed int64, workers int) *Result {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.ForestUnion(600, 4, rng)
	net := NewNetworkPermuted(g, rng)
	res, err := net.Run(gossip{rounds: 8}, RunOptions{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	res.Wall = 0 // host wall time, not deterministic
	return res
}

func TestDeterministicForIdenticalSeeds(t *testing.T) {
	a := runGossip(t, 42, 0)
	b := runGossip(t, 42, 0)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical seeds produced different results")
	}
	c := runGossip(t, 43, 0)
	if reflect.DeepEqual(a.Outputs, c.Outputs) {
		t.Fatal("different seeds produced identical outputs (permutation ignored?)")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	seq := runGossip(t, 7, 1) // force sequential
	par := runGossip(t, 7, 4) // pin the worker pool (pinned counts always fan out)
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("worker-pool execution diverged from sequential execution")
	}
}

// portEcho records, per round, which ports were audible; used to verify
// label/active visibility and one-shot delivery of a halting node's last
// messages.
type portEcho struct{ rounds int }

func (e portEcho) Init(n *Node) {
	n.State = []int{}
	n.SendAll(n.ID())
}

func (e portEcho) Step(n *Node, inbox []Message) {
	heard := n.State.([]int)
	for p, m := range inbox {
		if m != nil {
			heard = append(heard, p)
		}
	}
	n.State = heard
	if n.Round() >= e.rounds {
		n.Output = heard
		n.Halt()
		return
	}
	n.SendAll(n.ID())
}

func TestLabelAndActiveFiltering(t *testing.T) {
	// K4: every pair adjacent. Labels split {0,1} vs {2,3}; vertex 3 is
	// inactive. Then 0 and 1 hear exactly each other; 2 hears nobody.
	g := graph.Complete(4)
	labels := []int{0, 0, 1, 1}
	active := []bool{true, true, true, false}
	net := NewNetwork(g)
	res, err := net.Run(portEcho{rounds: 2}, RunOptions{Labels: labels, Active: active})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[3] != nil {
		t.Errorf("inactive vertex has output %v", res.Outputs[3])
	}
	if got := res.Outputs[0].([]int); !reflect.DeepEqual(got, []int{0, 0}) {
		t.Errorf("vertex 0 heard ports %v, want [0 0]", got)
	}
	if got := res.Outputs[2].([]int); len(got) != 0 {
		t.Errorf("vertex 2 heard ports %v, want none", got)
	}
	// Engine port numbering must agree with VisiblePorts.
	if ports := VisiblePorts(g, labels, active, 0); !reflect.DeepEqual(ports, []int{1}) {
		t.Errorf("VisiblePorts(0) = %v, want [1]", ports)
	}
}

// haltSender halts in Init after one send; its neighbor keeps listening.
// The message must arrive exactly once - in round 1, and never again.
type haltSender struct{}

func (haltSender) Init(n *Node) {
	if n.ID() == 1 {
		n.SendAll(99)
		n.Output = 0
		n.Halt()
	}
}

func (haltSender) Step(n *Node, inbox []Message) {
	var heard []int
	if n.State != nil {
		heard = n.State.([]int)
	}
	for _, m := range inbox {
		if m != nil {
			heard = append(heard, n.Round())
		}
	}
	n.State = heard
	if n.Round() == 3 {
		n.Output = heard
		n.Halt()
	}
}

func TestHaltingSendDeliveredExactlyOnce(t *testing.T) {
	net := NewNetwork(graph.Path(2))
	res, err := net.Run(haltSender{}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Outputs[1].([]int); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("vertex 1 heard in rounds %v, want [1] only", got)
	}
}

// idler never halts; exercises the engine's default budget error path
// cheaply via an explicit small cap.
type idler struct{}

func (idler) Init(n *Node)                  {}
func (idler) Step(n *Node, inbox []Message) {}

func TestRunOptionValidation(t *testing.T) {
	net := NewNetwork(graph.Path(3))
	if _, err := net.Run(nil, RunOptions{}); err == nil {
		t.Error("nil algorithm accepted")
	}
	if _, err := net.Run(idler{}, RunOptions{Inputs: make([]any, 2)}); err == nil {
		t.Error("short inputs accepted")
	}
	if _, err := net.Run(idler{}, RunOptions{Labels: []int{0}}); err == nil {
		t.Error("short labels accepted")
	}
	if _, err := net.Run(idler{}, RunOptions{Active: []bool{true}}); err == nil {
		t.Error("short active mask accepted")
	}
	if _, err := net.Run(idler{}, RunOptions{MaxRounds: -1}); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := net.Run(idler{}, RunOptions{MaxRounds: 4}); !errors.Is(err, ErrMaxRounds) {
		t.Error("non-halting program did not trip the budget")
	}
}

func TestInitOnlyRunCostsZeroRounds(t *testing.T) {
	algo := algoFuncs{
		init: func(n *Node) { n.Output = n.ID(); n.Halt() },
	}
	net := NewNetworkPermuted(graph.Star(6), rand.New(rand.NewSource(3)))
	res, err := net.Run(algo, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 || res.Messages != 0 {
		t.Fatalf("rounds=%d messages=%d, want 0/0", res.Rounds, res.Messages)
	}
	ids := net.IDs()
	for v, o := range res.Outputs {
		if o.(int) != ids[v] {
			t.Fatalf("vertex %d output %v, want id %d", v, o, ids[v])
		}
	}
}

// algoFuncs adapts closures to Algorithm for small test programs.
type algoFuncs struct {
	init func(n *Node)
	step func(n *Node, inbox []Message)
}

func (a algoFuncs) Init(n *Node) {
	if a.init != nil {
		a.init(n)
	}
}

func (a algoFuncs) Step(n *Node, inbox []Message) {
	if a.step != nil {
		a.step(n, inbox)
	}
}

func TestNetworkReusableAcrossRuns(t *testing.T) {
	net := NewNetworkPermuted(graph.Grid(6, 6), rand.New(rand.NewSource(11)))
	first, err := net.Run(gossip{rounds: 4}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := net.Run(gossip{rounds: 4}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	first.Wall, second.Wall = 0, 0 // host wall time, not deterministic
	if !reflect.DeepEqual(first, second) {
		t.Fatal("re-running on the same network changed the result")
	}
}
