package dist

import (
	"fmt"

	"repro/internal/graph"
)

// IntInputs boxes an int-per-vertex slice as RunOptions.Inputs.
func IntInputs(vals []int) []any {
	out := make([]any, len(vals))
	for i, v := range vals {
		out[i] = v
	}
	return out
}

// IntOutputs unboxes a run's outputs as ints. Vertices with no output
// (inactive, or never assigned one) report def; an error output - the
// convention vertex programs use to surface bad inputs - aborts with
// that error.
func IntOutputs(res *Result, def int) ([]int, error) {
	out := make([]int, len(res.Outputs))
	for v, o := range res.Outputs {
		switch x := o.(type) {
		case int:
			out[v] = x
		case nil:
			out[v] = def
		case error:
			return nil, fmt.Errorf("dist: vertex %d: %w", v, x)
		default:
			return nil, fmt.Errorf("dist: vertex %d has non-int output %T", v, o)
		}
	}
	return out, nil
}

// ComposeLabels refines labels a by labels b: vertices land in the same
// class iff they agree on both. Classes are renumbered densely from 0 in
// order of first appearance by vertex index, so the result is
// deterministic and directly usable as RunOptions.Labels. The slices
// must have equal length.
func ComposeLabels(a, b []int) []int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("dist: composing %d labels with %d", len(a), len(b)))
	}
	out := make([]int, len(a))
	ids := make(map[[2]int]int, len(a))
	for v := range a {
		pair := [2]int{a[v], b[v]}
		id, ok := ids[pair]
		if !ok {
			id = len(ids)
			ids[pair] = id
		}
		out[v] = id
	}
	return out
}

// VisiblePorts returns the neighbors of v visible under the given
// label/active filters, in ascending vertex order - the port numbering a
// Run with the same filters uses for v's inbox and Send ports. Both
// filters may be nil. With no filters the returned slice is the graph's
// own adjacency list and must not be modified.
func VisiblePorts(g *graph.Graph, labels []int, active []bool, v int) []int {
	nbrs := g.Neighbors(v)
	if labels == nil && active == nil {
		return nbrs
	}
	ports := make([]int, 0, len(nbrs))
	for _, u := range nbrs {
		if labels != nil && labels[u] != labels[v] {
			continue
		}
		if active != nil && !active[u] {
			continue
		}
		ports = append(ports, u)
	}
	return ports
}
