package dist

import (
	"fmt"

	"repro/internal/graph"
)

// IntInputs boxes an int-per-vertex slice as RunOptions.Inputs.
func IntInputs(vals []int) []any {
	out := make([]any, len(vals))
	for i, v := range vals {
		out[i] = v
	}
	return out
}

// IntOutputs unboxes a boxed run's outputs as ints. Vertices with no
// output (inactive, or never assigned one) report def. The error-value
// case survives only for the boxed fallback path: legacy boxed programs
// may still smuggle an error through Node.Output, which aborts with
// that error. Word-I/O programs report errors through Node.Fail and
// never reach this path (their Result.Outputs is nil).
func IntOutputs(res *Result, def int) ([]int, error) {
	if res.Outputs == nil && res.OutputWords != nil {
		return nil, fmt.Errorf("dist: IntOutputs on a word-I/O result (use IntsFromWords)")
	}
	out := make([]int, len(res.Outputs))
	for v, o := range res.Outputs {
		switch x := o.(type) {
		case int:
			out[v] = x
		case nil:
			out[v] = def
		case error:
			return nil, fmt.Errorf("dist: vertex %d: %w", v, x)
		default:
			return nil, fmt.Errorf("dist: vertex %d has non-int output %T", v, o)
		}
	}
	return out, nil
}

// IntsFromWords decodes a word-I/O run's output column into dst (one
// word per vertex; the output width must be 1, so len(dst) must equal
// the column length). It is the word-plane counterpart of IntOutputs
// and the step that discharges the ownership contract: after the copy,
// the engine-owned column may be reclaimed by the next word run.
func IntsFromWords(res *Result, dst []int) error {
	if res.OutputWords == nil {
		return fmt.Errorf("dist: IntsFromWords on a result without an output column")
	}
	if len(dst) != len(res.OutputWords) {
		return fmt.Errorf("dist: decoding %d output words into %d ints", len(res.OutputWords), len(dst))
	}
	for v, w := range res.OutputWords {
		dst[v] = int(w)
	}
	return nil
}

// ComposeLabels refines labels a by labels b: vertices land in the same
// class iff they agree on both. Classes are renumbered densely from 0 in
// order of first appearance by vertex index, so the result is
// deterministic and directly usable as RunOptions.Labels. The slices
// must have equal length.
func ComposeLabels(a, b []int) []int {
	return ComposeLabelsInto(make([]int, len(a)), a, b, make(map[[2]int]int, len(a)))
}

// ComposeLabelsInto is ComposeLabels writing the composition into dst
// and renumbering through the caller-provided scratch map, which it
// clears first - orchestrators that compact labels once per level reuse
// both across levels instead of reallocating them. dst may alias a (in-
// place refinement); it must not alias b. Returns dst.
func ComposeLabelsInto(dst, a, b []int, ids map[[2]int]int) []int {
	if len(a) != len(b) || len(dst) != len(a) {
		panic(fmt.Sprintf("dist: composing %d labels with %d into %d", len(a), len(b), len(dst)))
	}
	clear(ids)
	for v := range a {
		pair := [2]int{a[v], b[v]}
		id, ok := ids[pair]
		if !ok {
			id = len(ids)
			ids[pair] = id
		}
		dst[v] = id
	}
	return dst
}

// VisiblePorts returns the neighbors of v visible under the given
// label/active filters, in ascending vertex order - the port numbering a
// Run with the same filters uses for v's inbox and Send ports. Both
// filters may be nil. With no filters the returned slice is the graph's
// own adjacency list and must not be modified.
func VisiblePorts(g *graph.Graph, labels []int, active []bool, v int) []int {
	if labels == nil && active == nil {
		return g.Neighbors(v)
	}
	return appendVisible(make([]int, 0, len(g.Neighbors(v))), g, labels, active, v)
}

// countVisible counts v's visible neighbors without allocating.
func countVisible(g *graph.Graph, labels []int, active []bool, v int) int {
	n := 0
	for _, u := range g.Neighbors(v) {
		if labels != nil && labels[u] != labels[v] {
			continue
		}
		if active != nil && !active[u] {
			continue
		}
		n++
	}
	return n
}

// appendVisible appends v's visible neighbors to ports.
func appendVisible(ports []int, g *graph.Graph, labels []int, active []bool, v int) []int {
	for _, u := range g.Neighbors(v) {
		if labels != nil && labels[u] != labels[v] {
			continue
		}
		if active != nil && !active[u] {
			continue
		}
		ports = append(ports, u)
	}
	return ports
}

// PortColumn builds a per-port []int64 column in the engine's visible-
// port layout for the given filters (wordio.go): fill runs for every
// active vertex with its visible ports and the column slice the vertex
// owns, in parallel on the network's worker pool, reusing (and warming)
// the session's cached topology - so a Run with the same filters that
// follows pays no topology sweep. fill must only write its own out slice
// and read shared state; the returned column is caller-owned.
func (net *Network) PortColumn(labels []int, active []bool, fill func(v int, ports []int, out []int64)) []int64 {
	w, explicit := net.resolveWorkers(0)
	topo, _ := net.sess.topology(net.g, labels, active, sweepWorkersFor(net.g.N(), w, explicit))
	col := make([]int64, topo.totalPorts)
	live := topo.live
	parfor(len(live), sweepWorkersFor(len(live), w, explicit), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v := live[i]
			ports := topo.ports[v]
			b := topo.base[v]
			fill(v, ports, col[b:b+len(ports):b+len(ports)])
		}
	})
	return col
}

// ForEachVisible is the package function ForEachVisible bound to the
// network's session: it serves the port lists from the cached topology
// (building and caching it on first use) instead of re-filtering the
// adjacency lists, which is what makes repeated per-port column decodes
// on the same filters O(visible edges) with no per-vertex scan. The
// ports slices are views into cached state and must not be modified.
func (net *Network) ForEachVisible(labels []int, active []bool, fn func(v int, ports []int)) {
	w, explicit := net.resolveWorkers(0)
	topo, _ := net.sess.topology(net.g, labels, active, sweepWorkersFor(net.g.N(), w, explicit))
	for _, v := range topo.live {
		fn(v, topo.ports[v])
	}
}

// ForEachVisible calls fn(v, ports) for every active vertex in ascending
// vertex order with its visible ports - the exact iteration order of the
// engine's per-port column layout (wordio.go), so orchestrators filling
// or decoding PerPort columns track a running offset across calls. The
// ports slice is reused between calls and must not be retained.
func ForEachVisible(g *graph.Graph, labels []int, active []bool, fn func(v int, ports []int)) {
	if labels == nil && active == nil {
		for v := 0; v < g.N(); v++ {
			fn(v, g.Neighbors(v))
		}
		return
	}
	var buf []int
	for v := 0; v < g.N(); v++ {
		if active != nil && !active[v] {
			continue
		}
		buf = appendVisible(buf[:0], g, labels, active, v)
		fn(v, buf)
	}
}
