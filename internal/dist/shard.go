package dist

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
)

// This file implements the shard-structured data plane: a Network view
// created with Sharded partitions the vertex space into the contiguous
// ranges of a graph.Sharding, and the engine then keeps topology slots
// and batch message columns shard-local. Each shard owns the column
// segment of its own vertices' outgoing slots, so a worker sweeping one
// shard's vertices writes only that shard's cache lines; cross-shard
// delivery goes through the boundary table (shardTopo.inShard), which
// names, per delivery slot, the shard whose column holds the message.
//
// Results are bit-for-bit identical to the flat engine at every shard
// count: sharding changes only WHERE a message word lives (which column
// segment), never which value is delivered to which port in which round,
// and the live-list worker chunking is untouched. Shadow tests pin the
// equivalence exactly as PR 5's worker-count tests do.

// shardTopo is the per-topology shard structure of a sharded session.
// Like the rest of the topology it is immutable after construction.
type shardTopo struct {
	// sh is the vertex partition (NumShards >= 2 here; flat layouts
	// never build a shardTopo).
	sh graph.Sharding
	// vshard[v] is the shard owning vertex v. It aliases the session's
	// table: the partition is a property of the network view, not of the
	// (labels, active) filter.
	vshard []uint8
	// slotCuts[k] is the global columnar slot where shard k's range
	// begins; slotCuts[K] == totalPorts. Shard k's message column covers
	// exactly the slots [slotCuts[k], slotCuts[k+1]) of the flat layout,
	// so global slot = shard-local slot + slotCuts[shard].
	slotCuts []int
	// inShard is the boundary table: inShard[base[v]+p] is the shard of
	// the neighbor writing v's port-p message, i.e. the shard whose
	// column topology.inSlots[base[v]+p] (shard-local there) indexes.
	// Within-shard edges and cross-shard edges use the same two reads;
	// "boundary" refers to what the table encodes, not a special path.
	inShard []uint8
}

// k returns the shard count.
func (st *shardTopo) k() int { return len(st.slotCuts) - 1 }

// segLen returns the slot count of shard k's column segment.
func (st *shardTopo) segLen(k int) int { return st.slotCuts[k+1] - st.slotCuts[k] }

// attachShardTopo computes the shard structure of a freshly built
// topology on a sharded session (no-op on flat sessions). It runs after
// the port lists and bases are final and before fillSlots, which fills
// the boundary table alongside the shard-local slot values.
func (sc *session) attachShardTopo(t *topology) {
	k := sc.sh.NumShards()
	if k <= 1 {
		return
	}
	st := &shardTopo{sh: sc.sh, vshard: sc.vshard, slotCuts: make([]int, k+1)}
	// Slot cuts are degree prefix sums over the vertex partition. base[]
	// cannot serve here: filtered topologies leave inactive vertices'
	// bases at zero, so the cut must re-walk the visible degrees.
	cut := 0
	for j := 0; j < k; j++ {
		st.slotCuts[j] = cut
		lo, hi := sc.sh.Bounds(j)
		for v := lo; v < hi; v++ {
			cut += len(t.ports[v])
		}
	}
	st.slotCuts[k] = cut // == t.totalPorts
	st.inShard = make([]uint8, t.totalPorts)
	t.shard = st
}

// Sharded returns a view of the network running the shard-structured
// engine over the given vertex partition. The view shares the graph and
// identifier assignment but gets a FRESH session: cached topologies and
// pooled columns are laid out per shard structure, so a session never
// mixes layouts. A zero-value or single-shard Sharding yields the flat
// engine (itself a fresh session, so shard sweeps get cold caches at
// every point including k=1). Runs on the view produce bit-for-bit the
// results of the flat engine.
func (net *Network) Sharded(sh graph.Sharding) (*Network, error) {
	if k := sh.NumShards(); k > 0 && sh.N() != net.g.N() {
		return nil, fmt.Errorf("dist: sharding partitions %d vertices, graph has %d", sh.N(), net.g.N())
	}
	c := *net
	c.sharding = sh
	c.sess = &session{}
	if sh.NumShards() > 1 {
		vshard := make([]uint8, net.g.N())
		for k := 0; k < sh.NumShards(); k++ {
			lo, hi := sh.Bounds(k)
			for v := lo; v < hi; v++ {
				vshard[v] = uint8(k)
			}
		}
		c.sess.sh = sh
		c.sess.vshard = vshard
	}
	return &c, nil
}

// NewNetworkSharded is NewNetwork followed by Sharded.
func NewNetworkSharded(g *graph.Graph, sh graph.Sharding) (*Network, error) {
	return NewNetwork(g).Sharded(sh)
}

// Sharding returns the vertex partition this view was created with (the
// zero value on flat networks).
func (net *Network) Sharding() graph.Sharding { return net.sharding }

// Shards returns the effective shard count of this view's engine: the
// partition's count, or 1 on flat (and single-shard) views.
func (net *Network) Shards() int {
	if k := net.sharding.NumShards(); k > 1 {
		return k
	}
	return 1
}

// growShardColumns sizes the per-shard round-parity message columns of a
// sharded batch run from the pooled scratch. Like the flat columns the
// segments are NOT zeroed between runs; the flag-hygiene argument of
// newSimulation carries over per segment, because a shard-local slot
// belongs to exactly one sender of the current topology and that sender
// clears its own flags when it steps (or flushHaltClears does).
func (s *simulation) growShardColumns(rs *runScratch, st *shardTopo, width int) {
	k := st.k()
	for i := 0; i < 2; i++ {
		rs.wshardWords[i] = growSlices(rs.wshardWords[i], k)
		rs.wshardSent[i] = growSlices(rs.wshardSent[i], k)
		for j := 0; j < k; j++ {
			seg := st.segLen(j)
			rs.wshardWords[i][j] = grown(rs.wshardWords[i][j], seg*width)
			rs.wshardSent[i][j] = grown(rs.wshardSent[i][j], seg)
		}
		s.shWords[i], s.shSent[i] = rs.wshardWords[i], rs.wshardSent[i]
		s.shIn[i] = shardCols{inShard: st.inShard, wordsBy: s.shWords[i], sentBy: s.shSent[i]}
	}
}

// growSlices resizes an outer slice-of-slices to length k, preserving
// the inner slices (whose pooled capacity is the point) on reallocation.
func growSlices[T any](s [][]T, k int) [][]T {
	if cap(s) >= k {
		return s[:k]
	}
	t := make([][]T, k)
	copy(t, s[:cap(s)])
	return t
}

// stepSliceBatchSharded is stepSliceBatch against shard-local columns:
// the node's outbox binds into its own shard's current-parity segment,
// and the inbox view carries the previous parity's per-shard columns
// plus the boundary table so delivery resolves cross-shard slots with
// one extra byte read. The flat path keeps its own loop untouched.
//
//distvet:noalloc
func (s *simulation) stepSliceBatchSharded(r, lo, hi int, cur *int) {
	w := s.width
	par := r % 2
	st := s.topo.shard
	base := s.topo.base
	vshard := st.vshard
	cuts := st.slotCuts
	words := s.shWords[par]
	sent := s.shSent[par]
	in := WordInbox{width: w, shard: &s.shIn[1-par]}
	for i := lo; i < hi; i++ {
		*cur = i
		v := s.live[i]
		nd := s.nodes[v]
		nd.round = r
		k := vshard[v]
		gb := base[v]
		b := gb - cuts[k]
		deg := len(nd.ports)
		col := words[k]
		nd.wout = col[b*w : (b+deg)*w : (b+deg)*w]
		nd.wmark = sent[k][b : b+deg : b+deg]
		clear(nd.wmark)
		if r == 0 {
			s.fw.InitWords(nd)
			continue
		}
		in.slots = s.topo.slots(v)
		in.inBase = int32(gb)
		s.fw.StepWords(nd, in)
	}
}

// flushHaltClearsSharded is flushHaltClears against shard-local columns.
//
//distvet:noalloc
func (s *simulation) flushHaltClearsSharded(st *shardTopo) {
	for _, v := range s.clearQ {
		k := st.vshard[v]
		b := s.topo.base[v] - st.slotCuts[k]
		deg := len(s.nodes[v].ports)
		clear(s.shSent[0][k][b : b+deg])
		clear(s.shSent[1][k][b : b+deg])
	}
	s.clearQ = s.clearQ[:0]
}

// liveShardSegs writes the shard segmentation of the (ascending) live
// list into segs: shard j's live nodes are live[segs[j]:segs[j+1]].
func (s *simulation) liveShardSegs(st *shardTopo, segs []int) {
	live := s.live
	segs[0] = 0
	for j := 1; j <= st.k(); j++ {
		_, hi := st.sh.Bounds(j - 1)
		segs[j] = segs[j-1] + sort.SearchInts(live[segs[j-1]:], hi)
	}
}

// stepRoundShardTimed is the probed step of a sharded round: shard-
// aligned timing, one measurement per nonempty shard segment (the
// ISSUE's per-shard chunk wall). Only wall fields - documented as
// non-deterministic - depend on this chunking; stepSlice is safe under
// any partition of the live list, so results are unchanged.
//
//distvet:wallclock per-shard step timing is this function's purpose; only non-deterministic wall telemetry depends on it
func (s *simulation) stepRoundShardTimed(r int, st *shardTopo, segs []int, ns []int64) (workers int, maxNS, meanNS int64) {
	m := len(s.live)
	w := s.sweepWorkers(m)
	k := st.k()
	s.rs.curV = grown(s.rs.curV, k)
	cur := s.rs.curV
	if w <= 1 {
		for j := 0; j < k; j++ {
			lo, hi := segs[j], segs[j+1]
			if lo == hi {
				ns[j] = 0
				continue
			}
			t := time.Now()
			s.stepSliceGuarded(r, lo, hi, &cur[j])
			ns[j] = time.Since(t).Nanoseconds()
		}
		workers = 1
	} else {
		var wg sync.WaitGroup
		for j := 0; j < k; j++ {
			lo, hi := segs[j], segs[j+1]
			if lo == hi {
				ns[j] = 0
				continue
			}
			wg.Add(1)
			go func(j, lo, hi int) {
				defer wg.Done()
				t := time.Now()
				s.stepSliceGuarded(r, lo, hi, &cur[j])
				ns[j] = time.Since(t).Nanoseconds()
			}(j, lo, hi)
		}
		wg.Wait()
		workers = w
	}
	var sum int64
	nonempty := 0
	for j := 0; j < k; j++ {
		if segs[j] == segs[j+1] {
			continue
		}
		nonempty++
		if ns[j] > maxNS {
			maxNS = ns[j]
		}
		sum += ns[j]
	}
	if nonempty > 0 {
		meanNS = sum / int64(nonempty)
	}
	return workers, maxNS, meanNS
}

// sentTotalShards is sentTotal with per-shard subtotals: out[j] receives
// the cumulative sends of shard j's vertices, and the global total is
// returned. Probed sharded rounds diff successive calls for the
// per-shard message counts.
func (s *simulation) sentTotalShards(st *shardTopo, out []int64) int64 {
	var total int64
	for j := 0; j < st.k(); j++ {
		lo, hi := st.sh.Bounds(j)
		var t int64
		for v := lo; v < hi; v++ {
			if nd := s.nodes[v]; nd != nil {
				t += nd.sent
			}
		}
		out[j] = t
		total += t
	}
	return total
}
