package dist

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
)

// The shard shadow suite pins the shard-structured engine (shard.go) to
// the flat engine bit-for-bit, the way PR 5's worker-count tests pinned
// parallel execution: the same program over the same network must yield
// identical Results at every shard count, on both transports, under
// filters, and across pooled-scratch reuse.

// shardCounts are the partitions every shadow case sweeps: flat baseline
// (1), small counts, a count that does not divide n, and "auto".
func shardCounts(t *testing.T, n int) []graph.Sharding {
	t.Helper()
	var out []graph.Sharding
	for _, k := range []int{1, 2, 4, 7} {
		sh, err := graph.NewSharding(n, k)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, sh)
	}
	return append(out, graph.AutoSharding(n))
}

// runSharded runs algo on a Sharded view of net and strips wall time.
func runSharded(t *testing.T, net *Network, sh graph.Sharding, algo Algorithm, opts RunOptions) *Result {
	t.Helper()
	view, err := net.Sharded(sh)
	if err != nil {
		t.Fatal(err)
	}
	res, err := view.Run(algo, opts)
	if err != nil {
		t.Fatalf("sharded run (%d shards): %v", sh.NumShards(), err)
	}
	res.Wall = 0
	return res
}

// shadowShards runs algo flat, then at every shard count on both
// transports, demanding bit-for-bit identical Results throughout.
func shadowShards(t *testing.T, net *Network, algo FixedWidthAlgorithm, opts RunOptions) {
	t.Helper()
	flat, err := net.Run(algo, opts)
	if err != nil {
		t.Fatalf("flat run: %v", err)
	}
	flat.Wall = 0
	for _, sh := range shardCounts(t, net.Graph().N()) {
		for _, d := range []Delivery{DeliveryBatch, DeliveryBoxed} {
			o := opts
			o.Delivery = d
			got := runSharded(t, net, sh, algo, o)
			if !reflect.DeepEqual(flat, got) {
				t.Fatalf("%d shards (%s) diverged from flat: rounds %d/%d messages %d/%d",
					sh.NumShards(), d, got.Rounds, flat.Rounds, got.Messages, flat.Messages)
			}
		}
	}
}

func TestShardedMatchesFlatOnRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(800 + seed))
		g := graph.Gnp(200, 0.04, rng)
		net := NewNetworkPermuted(g, rng)
		shadowShards(t, net, wordGossip{rounds: 6}, RunOptions{})
	}
}

func TestShardedMatchesFlatMultiWord(t *testing.T) {
	rng := rand.New(rand.NewSource(810))
	net := NewNetworkPermuted(graph.Grid(12, 12), rng)
	shadowShards(t, net, tripleTag{rounds: 5}, RunOptions{})
}

func TestShardedMatchesFlatUnderFilters(t *testing.T) {
	rng := rand.New(rand.NewSource(820))
	g := graph.ForestUnion(300, 4, rng)
	net := NewNetworkPermuted(g, rng)
	labels := make([]int, g.N())
	active := make([]bool, g.N())
	for v := range labels {
		labels[v] = rng.Intn(3)
		active[v] = rng.Intn(5) > 0
	}
	shadowShards(t, net, wordGossip{rounds: 5}, RunOptions{Labels: labels, Active: active})
}

// More shards than vertices: the trailing shards are empty, their column
// segments zero-length.
func TestShardedEmptyShards(t *testing.T) {
	rng := rand.New(rand.NewSource(830))
	g := graph.Path(9)
	net := NewNetworkPermuted(g, rng)
	flat, err := net.Run(wordGossip{rounds: 4}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	flat.Wall = 0
	sh, err := graph.NewSharding(g.N(), 30)
	if err != nil {
		t.Fatal(err)
	}
	got := runSharded(t, net, sh, wordGossip{rounds: 4}, RunOptions{})
	if !reflect.DeepEqual(flat, got) {
		t.Fatal("30 shards over 9 vertices diverged from flat")
	}
}

func TestShardedParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(840))
	g := graph.ForestUnion(600, 4, rng)
	net := NewNetworkPermuted(g, rng)
	sh, err := graph.NewSharding(g.N(), 4)
	if err != nil {
		t.Fatal(err)
	}
	view, err := net.Sharded(sh)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *Result {
		res, err := view.Run(wordGossip{rounds: 8}, RunOptions{Delivery: DeliveryBatch, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		res.Wall = 0
		return res
	}
	if !reflect.DeepEqual(run(1), run(4)) {
		t.Fatal("sharded worker-pool execution diverged from sequential execution")
	}
}

// One sharded view across repeated runs and alternating filters: the
// pooled per-shard columns and the topology cache must reproduce the
// fresh-session results exactly.
func TestShardedNetworkReusableAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(850))
	g := graph.ForestUnion(400, 3, rng)
	net := NewNetworkPermuted(g, rng)
	labels := make([]int, g.N())
	for v := range labels {
		labels[v] = rng.Intn(2)
	}
	sh, err := graph.NewSharding(g.N(), 3)
	if err != nil {
		t.Fatal(err)
	}
	view, err := net.Sharded(sh)
	if err != nil {
		t.Fatal(err)
	}
	cases := []RunOptions{{}, {Labels: labels}, {}, {Labels: labels}}
	var first []*Result
	for round := 0; round < 2; round++ {
		for i, opts := range cases {
			res, err := view.Run(wordGossip{rounds: 5}, opts)
			if err != nil {
				t.Fatal(err)
			}
			res.Wall = 0
			if round == 0 {
				first = append(first, res)
			} else if !reflect.DeepEqual(first[i], res) {
				t.Fatalf("sharded rerun %d diverged after scratch reuse", i)
			}
		}
	}
}

// The word-I/O plane on a sharded view: typed columns against boxed
// structs, both through shard-local message columns.
func TestShardedWordIO(t *testing.T) {
	rng := rand.New(rand.NewSource(860))
	g := graph.Gnp(150, 0.05, rng)
	net := NewNetworkPermuted(g, rng)
	boxed, words := seedMixCase(g, rng)
	for _, sh := range shardCounts(t, g.N()) {
		view, err := net.Sharded(sh)
		if err != nil {
			t.Fatal(err)
		}
		runWordShadow(t, view, seedMix{}, boxed, words, RunOptions{}, decodeInts)
	}
}

// Halting sends must deliver exactly once through shard-local columns
// too (the flush-clear path of shard.go).
func TestShardedHaltingSendDeliveredExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(870))
	g := graph.Star(6)
	net := NewNetworkPermuted(g, rng)
	sh, err := graph.NewSharding(g.N(), 3)
	if err != nil {
		t.Fatal(err)
	}
	view, err := net.Sharded(sh)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := net.Run(wordHaltSender{}, RunOptions{Delivery: DeliveryBatch})
	if err != nil {
		t.Fatal(err)
	}
	got, err := view.Run(wordHaltSender{}, RunOptions{Delivery: DeliveryBatch})
	if err != nil {
		t.Fatal(err)
	}
	flat.Wall, got.Wall = 0, 0
	if !reflect.DeepEqual(flat, got) {
		t.Fatal("sharded halting-send delivery diverged from flat")
	}
}

func TestShardedValidationAndAccessors(t *testing.T) {
	g := graph.Path(10)
	net := NewNetwork(g)
	if net.Shards() != 1 || net.Sharding().NumShards() != 0 {
		t.Fatalf("flat network reports %d shards", net.Shards())
	}
	wrong, err := graph.NewSharding(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Sharded(wrong); err == nil {
		t.Fatal("mismatched sharding accepted")
	}
	sh, err := graph.NewSharding(g.N(), 4)
	if err != nil {
		t.Fatal(err)
	}
	view, err := net.Sharded(sh)
	if err != nil {
		t.Fatal(err)
	}
	if view.Shards() != 4 || view.Sharding().NumShards() != 4 {
		t.Fatalf("sharded view reports %d shards", view.Shards())
	}
	// Single-shard and zero-value shardings normalize to the flat engine.
	one, err := graph.NewSharding(g.N(), 1)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := net.Sharded(one)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Shards() != 1 {
		t.Fatalf("single-shard view reports %d shards", v1.Shards())
	}
	v0, err := net.Sharded(graph.Sharding{})
	if err != nil {
		t.Fatal(err)
	}
	if v0.Shards() != 1 {
		t.Fatalf("zero-sharding view reports %d shards", v0.Shards())
	}
	if _, err := NewNetworkSharded(g, sh); err != nil {
		t.Fatal(err)
	}
}

// Per-shard probe telemetry: shard stats must be internally consistent
// (live and messages summing to the record's own fields, RunRecord
// carrying the shard count) and must not perturb results.
func TestShardedProbeTelemetry(t *testing.T) {
	rng := rand.New(rand.NewSource(880))
	g := graph.ForestUnion(600, 4, rng)
	net := NewNetworkPermuted(g, rng)
	sh, err := graph.NewSharding(g.N(), 4)
	if err != nil {
		t.Fatal(err)
	}
	view, err := net.Sharded(sh)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := view.Run(wordGossip{rounds: 8}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sink := &memSink{}
	p := NewProbe(sink)
	probed, err := view.WithProbe(p).Run(wordGossip{rounds: 8}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	plain.Wall, probed.Wall = 0, 0
	if !reflect.DeepEqual(plain, probed) {
		t.Fatal("probed sharded run diverged from unprobed")
	}
	if len(sink.runs) != 1 || sink.runs[0].Shards != 4 {
		t.Fatalf("run record shards = %d, want 4", sink.runs[0].Shards)
	}
	if len(sink.rounds) != probed.Rounds {
		t.Fatalf("%d round records for %d rounds", len(sink.rounds), probed.Rounds)
	}
	var msgSum int64
	for _, r := range sink.rounds {
		if len(r.Shards) != 4 {
			t.Fatalf("round %d carries %d shard stats", r.Round, len(r.Shards))
		}
		live, msgs := 0, int64(0)
		for _, ss := range r.Shards {
			live += ss.Live
			msgs += ss.Messages
		}
		if live != r.Live {
			t.Fatalf("round %d: shard live sums to %d, record says %d", r.Round, live, r.Live)
		}
		if msgs != r.Messages {
			t.Fatalf("round %d: shard messages sum to %d, record says %d", r.Round, msgs, r.Messages)
		}
		msgSum += msgs
	}
	if msgSum != probed.Messages {
		t.Fatalf("shard messages sum to %d over the run, result says %d", msgSum, probed.Messages)
	}
	// Flat runs carry no shard stats.
	sink2 := &memSink{}
	p2 := NewProbe(sink2)
	if _, err := net.WithProbe(p2).Run(wordGossip{rounds: 8}, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	p2.Close()
	if sink2.runs[0].Shards != 0 {
		t.Fatalf("flat run record shards = %d", sink2.runs[0].Shards)
	}
	for _, r := range sink2.rounds {
		if r.Shards != nil {
			t.Fatal("flat round record carries shard stats")
		}
	}
}

// A sharded view still rejects misuse with the engine's own messages.
func TestShardedSendValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(890))
	g := graph.Path(20)
	net := NewNetworkPermuted(g, rng)
	sh, err := graph.NewSharding(g.N(), 3)
	if err != nil {
		t.Fatal(err)
	}
	view, err := net.Sharded(sh)
	if err != nil {
		t.Fatal(err)
	}
	wantContained(t, "dist: node", func() (*Result, error) {
		return view.Run(crossSender{}, RunOptions{Delivery: DeliveryBatch})
	})
}
