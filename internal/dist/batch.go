package dist

import "fmt"

// This file implements the columnar batch transport: vertex programs whose
// messages are a fixed number of int64 words exchange them through two
// process-wide word columns (one per round parity) indexed by the engine's
// port tables, instead of boxing every message into the per-node []any
// buffers. The []any path remains the compatible fallback; the two
// transports are observationally identical (same outputs, rounds and
// message counts) and the equivalence is pinned by shadow tests.
//
// Layout. Every active vertex v owns the contiguous slot range
// [base[v], base[v]+deg(v)) of the columnar port space, one slot per
// visible port, deg summed over the label/active-filtered subgraph. A
// round-parity column holds W = MessageWords() int64 words per slot plus
// one sent flag per slot. Sending writes the node's own slots; delivery
// reads the neighbor's slot for the previous parity through the
// precomputed inSlots table (the columnar analogue of the peer table), so
// a round performs no per-message allocation and no pointer chasing
// beyond two flat arrays.

// Delivery selects the message transport of a Run.
type Delivery int

const (
	// DeliveryAuto (the default) uses the batch transport exactly when
	// the algorithm implements FixedWidthAlgorithm, and the []any
	// fallback otherwise. A Network-level preference set with
	// WithDelivery resolves Auto first.
	DeliveryAuto Delivery = iota
	// DeliveryBoxed forces the []any fallback path (the algorithm's
	// Init/Step methods), even for fixed-width algorithms. Shadow tests
	// use it as the reference transport.
	DeliveryBoxed
	// DeliveryBatch requires the batch transport; Run fails if the
	// algorithm is not fixed-width.
	DeliveryBatch
)

func (d Delivery) String() string {
	switch d {
	case DeliveryAuto:
		return "auto"
	case DeliveryBoxed:
		return "boxed"
	case DeliveryBatch:
		return "batch"
	default:
		return fmt.Sprintf("delivery(%d)", int(d))
	}
}

// FixedWidthAlgorithm is a vertex program whose messages all consist of
// exactly MessageWords() int64 words, letting the engine deliver them
// through the columnar batch transport. The embedded Algorithm methods
// are the boxed fallback implementation of the same program: both views
// must implement identical behavior (send on the same ports in the same
// rounds, halt at the same time, produce the same outputs), which shadow
// tests verify bit-for-bit by running one transport against the other.
type FixedWidthAlgorithm interface {
	Algorithm
	// MessageWords returns the fixed per-message word count W >= 1.
	// It must be constant across the run.
	MessageWords() int
	// InitWords is Init on the batch transport: send with SendWord /
	// SendWords / SendAllWord instead of Send / SendAll.
	InitWords(n *Node)
	// StepWords is Step on the batch transport; inbox is the columnar
	// view of the words received this round.
	StepWords(n *Node, inbox WordInbox)
}

// WordInbox is the batch-transport inbox: a by-value view of the previous
// round's word column restricted to one node's visible ports. Port p of
// the inbox corresponds to the same visible neighbor as inbox[p] on the
// boxed path.
type WordInbox struct {
	width int
	words []int64 // previous parity's full word column
	sent  []uint8 // previous parity's sent flags, one per slot
	slots []int32 // per-port slot of the sending neighbor
	// Sharded delivery (shard.go; both stay zero on flat runs): slots
	// then hold SHARD-LOCAL indices, shard points at the previous
	// parity's per-shard column set (one simulation-owned instance per
	// parity), and inBase positions the node's ports in the boundary
	// table: shard.inShard[inBase+p] names the shard sending on port p.
	// Bundling the sharded state behind one pointer keeps the by-value
	// inbox copy every StepWords call receives at five words.
	shard  *shardCols
	inBase int32
}

// shardCols is one round parity's per-shard delivery state: the
// per-shard word/flag column segments plus the full boundary table.
// The simulation owns two instances (one per parity), bound at column
// setup; WordInbox carries a pointer to the previous parity's instance
// instead of three inline slice headers.
type shardCols struct {
	inShard []uint8
	wordsBy [][]int64
	sentBy  [][]uint8
}

// Ports returns the number of visible ports (the node's degree).
func (in WordInbox) Ports() int { return len(in.slots) }

// Has reports whether the neighbor on port p sent a message last round
// (the boxed path's inbox[p] != nil).
func (in WordInbox) Has(p int) bool {
	if in.shard == nil {
		return in.sent[in.slots[p]] != 0
	}
	return in.shard.sentBy[in.shard.inShard[int(in.inBase)+p]][in.slots[p]] != 0
}

// Word returns the first word of port p's message. Meaningful only when
// Has(p); the value is unspecified otherwise.
func (in WordInbox) Word(p int) int64 {
	if in.shard == nil {
		return in.words[int(in.slots[p])*in.width]
	}
	return in.shard.wordsBy[in.shard.inShard[int(in.inBase)+p]][int(in.slots[p])*in.width]
}

// Words returns the full W-word message on port p as a view into the
// engine's column. The slice is valid only during the current StepWords
// call and must not be retained or written.
func (in WordInbox) Words(p int) []int64 {
	s := int(in.slots[p]) * in.width
	if in.shard == nil {
		return in.words[s : s+in.width : s+in.width]
	}
	col := in.shard.wordsBy[in.shard.inShard[int(in.inBase)+p]]
	return col[s : s+in.width : s+in.width]
}

// SendWords marks the given visible port as sending this round and
// returns its W-word outbox slot, zeroed at the first mark of the round;
// the caller fills in the words. Subsequent calls in the same round
// return the same slot (overwrite semantics, like Send).
//
//distvet:noalloc
func (n *Node) SendWords(port int) []int64 {
	if port < 0 || port >= len(n.ports) {
		panic(fmt.Sprintf("dist: node id=%d sends on port %d of %d", n.id, port, len(n.ports)))
	}
	if n.wout == nil {
		panic(fmt.Sprintf("dist: node id=%d calls SendWords outside the batch transport (use Send)", n.id))
	}
	s := port * n.width
	out := n.wout[s : s+n.width : s+n.width]
	if n.wmark[port] == 0 {
		n.wmark[port] = 1
		n.sent++
		for i := range out {
			out[i] = 0
		}
	}
	return out
}

// SendWord sends the one-word message w on the given visible port. The
// algorithm's width must be 1 (use SendWords for wider messages).
//
//distvet:noalloc
func (n *Node) SendWord(port int, w int64) {
	if n.width != 1 {
		panic(fmt.Sprintf("dist: node id=%d uses SendWord with %d-word messages", n.id, n.width))
	}
	if port < 0 || port >= len(n.ports) {
		panic(fmt.Sprintf("dist: node id=%d sends on port %d of %d", n.id, port, len(n.ports)))
	}
	if n.wout == nil {
		panic(fmt.Sprintf("dist: node id=%d calls SendWord outside the batch transport (use Send)", n.id))
	}
	if n.wmark[port] == 0 {
		n.wmark[port] = 1
		n.sent++
	}
	n.wout[port] = w
}

// SendAllWord sends the one-word message w on every visible port.
//
//distvet:noalloc
func (n *Node) SendAllWord(w int64) {
	for p := range n.ports {
		n.SendWord(p, w)
	}
}

// stepSliceBatch is stepSlice on the batch transport. The slot bases and
// the inSlots delivery table come from the session-cached topology
// (session.go); the round-parity columns are the pooled, intentionally
// non-zeroed arrays of the run scratch - every flag a WordInbox reads was
// cleared this run by its owner's step (clear(nd.wmark) below) or by
// flushHaltClears, so stale content from earlier runs is never observed.
//
//distvet:noalloc
func (s *simulation) stepSliceBatch(r, lo, hi int, cur *int) {
	w := s.width
	par := r % 2
	words := s.wwords[par]
	sent := s.wsent[par]
	base := s.topo.base
	in := WordInbox{width: w, words: s.wwords[1-par], sent: s.wsent[1-par]}
	for i := lo; i < hi; i++ {
		*cur = i
		v := s.live[i]
		nd := s.nodes[v]
		nd.round = r
		b := base[v]
		deg := len(nd.ports)
		nd.wout = words[b*w : (b+deg)*w : (b+deg)*w]
		nd.wmark = sent[b : b+deg : b+deg]
		clear(nd.wmark)
		if r == 0 {
			s.fw.InitWords(nd)
			continue
		}
		in.slots = s.topo.slots(v)
		s.fw.StepWords(nd, in)
	}
}

// flushHaltClears zeroes the sent flags of nodes that halted in the
// previous round, in both parities. It runs between rounds, after the
// halting sends have been delivered: a halted node no longer steps, so
// nothing else clears the stale flags its final rounds left behind.
//
//distvet:noalloc
func (s *simulation) flushHaltClears() {
	if st := s.topo.shard; st != nil {
		s.flushHaltClearsSharded(st)
		return
	}
	for _, v := range s.clearQ {
		b := s.topo.base[v]
		deg := len(s.nodes[v].ports)
		clear(s.wsent[0][b : b+deg])
		clear(s.wsent[1][b : b+deg])
	}
	s.clearQ = s.clearQ[:0]
}
