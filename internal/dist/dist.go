package dist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"repro/internal/graph"
)

// ErrMaxRounds is returned (wrapped) by Run when nodes are still running
// after RunOptions.MaxRounds rounds. Callers that probe for a property -
// e.g. the H-partition testing an arboricity guess - detect the overrun
// with errors.Is.
var ErrMaxRounds = errors.New("dist: round budget exhausted")

// defaultMaxRounds caps runs that set no explicit budget, so a buggy
// vertex program deadlocks the simulation instead of the process. Every
// legitimate run in this repository finishes orders of magnitude earlier.
const defaultMaxRounds = 1 << 20

// Message is the unit of communication. Any non-nil value can be sent;
// nil marks a silent port in inboxes.
type Message = any

// Algorithm is a vertex program. Init runs once per node at round 0 and
// typically stores per-node state in Node.State and sends opening
// messages. Step runs once per round on every node that has not halted;
// inbox[p] holds the message the neighbor on visible port p sent in the
// previous round, or nil if it sent nothing. The inbox slice is reused by
// the engine and must not be retained across calls.
type Algorithm interface {
	Init(n *Node)
	Step(n *Node, inbox []Message)
}

// RunOptions configures a single Run.
type RunOptions struct {
	// Inputs holds per-vertex inputs, exposed as Node.Input (nil = no
	// inputs). Length must be the vertex count when non-nil.
	Inputs []any
	// Labels restricts communication to the label-induced subgraphs: only
	// same-label neighbors are visible (nil = one subgraph).
	Labels []int
	// Active masks the run to a vertex subset: inactive vertices do not
	// run at all, are invisible to their neighbors, and report a nil
	// Output (nil = all active).
	Active []bool
	// MaxRounds bounds the number of Step rounds; exceeding it aborts the
	// run with ErrMaxRounds. Zero means the (very large) engine default.
	MaxRounds int
	// Delivery selects the message transport (see the Delivery constants).
	// The zero value resolves to the batch transport exactly when the
	// algorithm implements FixedWidthAlgorithm.
	Delivery Delivery
	// InputWords is the flat input column of a word-I/O run (see
	// wordio.go for the layout). Only valid when the algorithm is a
	// WordIOAlgorithm running on the batch transport; mutually exclusive
	// with Inputs. The engine reads it during the Run only, but the
	// vertex program may reuse its own slots as scratch.
	InputWords []int64
}

// Result reports a completed run.
type Result struct {
	// Outputs holds each vertex's Node.Output (nil for inactive
	// vertices). It is nil on word-I/O runs, which report through
	// OutputWords instead of boxing n values.
	Outputs []any
	// OutputWords is the flat output column of a word-I/O run (nil
	// otherwise). It aliases an engine-owned column that the next
	// word-I/O Run on the same Network reclaims and re-zeroes: decode or
	// copy it before starting another run.
	OutputWords []int64
	// Rounds is the number of Step rounds executed - the LOCAL running
	// time. A run in which every node halts during Init costs 0 rounds.
	Rounds int
	// Messages is the total number of messages sent.
	Messages int64
}

// Node is the per-vertex view an Algorithm operates on. Input, State and
// Output are the program-visible slots; everything else is engine state.
type Node struct {
	// Input is the per-vertex input from RunOptions.Inputs.
	Input any
	// State holds arbitrary per-node algorithm state across rounds.
	State any
	// Output is the node's result, read by the caller after the run.
	Output any

	id     int
	vertex int
	total  int
	round  int
	ports  []int
	// bufs are the double-buffered per-port outboxes; out aliases the
	// buffer for the round currently executing. Both stay nil on the
	// batch transport, which aliases wout/wmark into the engine's word
	// columns instead (see batch.go).
	bufs  [2][]Message
	out   []Message
	width int
	wout  []int64
	wmark []uint8
	// win/wob are the word-I/O input and output views (wordio.go); both
	// stay nil outside word-I/O runs.
	win    []int64
	wob    []int64
	fail   *runFailure
	sent   int64
	halted bool
}

// ID returns the node's LOCAL-model identifier in {1..n}.
func (n *Node) ID() int { return n.id }

// Round returns the current round: 0 during Init, then 1, 2, ... for
// successive Step calls.
func (n *Node) Round() int { return n.round }

// Degree returns the number of visible ports (the degree within the
// simulated subgraph).
func (n *Node) Degree() int { return len(n.ports) }

// N returns the number of vertices of the whole underlying graph, the
// globally known quantity n of the LOCAL model.
func (n *Node) N() int { return n.total }

// Send queues msg on the given visible port for delivery next round.
// Sending again on the same port in one round overwrites. msg must be
// non-nil (nil encodes silence).
func (n *Node) Send(port int, msg Message) {
	if port < 0 || port >= len(n.ports) {
		panic(fmt.Sprintf("dist: node id=%d sends on port %d of %d", n.id, port, len(n.ports)))
	}
	if msg == nil {
		panic(fmt.Sprintf("dist: node id=%d sends nil message", n.id))
	}
	if n.out == nil {
		panic(fmt.Sprintf("dist: node id=%d calls Send on the batch transport (use SendWord/SendWords)", n.id))
	}
	if n.out[port] == nil {
		n.sent++
	}
	n.out[port] = msg
}

// SendAll sends msg on every visible port.
func (n *Node) SendAll(msg Message) {
	for p := range n.ports {
		n.Send(p, msg)
	}
}

// Halt marks the node finished: it takes no further steps and sends
// nothing after the current call. Messages sent in the same call are
// still delivered next round.
func (n *Node) Halt() { n.halted = true }

// Network binds a graph to an identifier assignment and runs vertex
// programs over it. A Network is immutable and reusable: successive Run
// calls are independent.
type Network struct {
	g   *graph.Graph
	ids []int
	// delivery is the transport preference RunOptions.Delivery == Auto
	// resolves to (itself Auto by default); see WithDelivery.
	delivery Delivery
	// scratch pools the engine-owned word-I/O columns across runs. It is
	// a pointer so WithDelivery views share the pool.
	scratch *netScratch
}

// NewNetwork returns a network with canonical identifiers id(v) = v+1.
func NewNetwork(g *graph.Graph) *Network {
	ids := make([]int, g.N())
	for v := range ids {
		ids[v] = v + 1
	}
	return &Network{g: g, ids: ids, scratch: &netScratch{}}
}

// NewNetworkPermuted returns a network whose identifiers {1..n} are
// assigned by a random permutation drawn from rng, stressing
// identifier-dependent symmetry breaking. A fixed rng seed yields a fixed
// assignment and hence bit-for-bit reproducible runs.
func NewNetworkPermuted(g *graph.Graph, rng *rand.Rand) *Network {
	ids := make([]int, g.N())
	for v, p := range rng.Perm(g.N()) {
		ids[v] = p + 1
	}
	return &Network{g: g, ids: ids, scratch: &netScratch{}}
}

// Graph returns the underlying graph.
func (net *Network) Graph() *graph.Graph { return net.g }

// IDs returns a copy of the identifier assignment, indexed by vertex.
func (net *Network) IDs() []int { return append([]int(nil), net.ids...) }

// WithDelivery returns a view of the network sharing the graph and
// identifier assignment whose Runs resolve RunOptions.Delivery ==
// DeliveryAuto to the given transport preference. Pipelines that call Run
// internally with default options inherit the preference, which is how
// shadow tests and the scale harness force the []any fallback (or require
// the batch path) across a whole multi-phase algorithm without threading
// an option through every signature.
func (net *Network) WithDelivery(d Delivery) *Network {
	c := *net
	c.delivery = d
	return &c
}

// parallelThreshold is the participant count above which rounds execute
// on a worker pool; below it the per-round synchronization costs more
// than it saves. Overridable in tests to force either path.
var parallelThreshold = 512

// minChunk is the smallest per-worker slice of nodes worth a goroutine.
const minChunk = 64

// Run executes the vertex program round-by-round until every active node
// has halted or the round budget trips.
func (net *Network) Run(algo Algorithm, opts RunOptions) (*Result, error) {
	if algo == nil {
		return nil, errors.New("dist: nil algorithm")
	}
	n := net.g.N()
	if opts.Inputs != nil && len(opts.Inputs) != n {
		return nil, fmt.Errorf("dist: %d inputs for %d vertices", len(opts.Inputs), n)
	}
	if opts.Labels != nil && len(opts.Labels) != n {
		return nil, fmt.Errorf("dist: %d labels for %d vertices", len(opts.Labels), n)
	}
	if opts.Active != nil && len(opts.Active) != n {
		return nil, fmt.Errorf("dist: %d active flags for %d vertices", len(opts.Active), n)
	}
	if opts.MaxRounds < 0 {
		return nil, fmt.Errorf("dist: negative round budget %d", opts.MaxRounds)
	}
	batch, err := net.resolveDelivery(algo, opts)
	if err != nil {
		return nil, err
	}
	var wio WordIOAlgorithm
	if batch {
		wio, _ = algo.(WordIOAlgorithm)
	}
	if wio == nil && opts.InputWords != nil {
		return nil, fmt.Errorf("dist: RunOptions.InputWords requires a WordIOAlgorithm on the batch transport, got %T (batch=%v)", algo, batch)
	}
	s := newSimulation(net, algo, opts, batch)
	if batch {
		if err := s.initBatch(algo.(FixedWidthAlgorithm)); err != nil {
			return nil, err
		}
		if wio != nil {
			if err := s.initWordIO(wio); err != nil {
				return nil, err
			}
		}
	}
	return s.run()
}

// resolveDelivery picks the transport of a Run: the explicit
// RunOptions.Delivery, else the Network preference, else (Auto) the batch
// transport exactly when the algorithm is fixed-width.
func (net *Network) resolveDelivery(algo Algorithm, opts RunOptions) (bool, error) {
	d := opts.Delivery
	if d == DeliveryAuto {
		d = net.delivery
	}
	_, isFW := algo.(FixedWidthAlgorithm)
	switch d {
	case DeliveryAuto:
		return isFW, nil
	case DeliveryBoxed:
		return false, nil
	case DeliveryBatch:
		if !isFW {
			return false, fmt.Errorf("dist: DeliveryBatch requires a FixedWidthAlgorithm, got %T", algo)
		}
		return true, nil
	default:
		return false, fmt.Errorf("dist: unknown delivery mode %d", int(d))
	}
}

// simulation is the per-Run state of the engine.
type simulation struct {
	net  *Network
	algo Algorithm
	opts RunOptions

	nodes []*Node // indexed by vertex; nil for inactive vertices
	inbox [][]Message
	// peer[v][p] is the port index of v within the port list of the
	// neighbor on v's port p, precomputed so delivery is O(1) per edge.
	peer [][]int
	// haltedAt[v] is the round at which v halted (math.MaxInt while
	// running). It is written only between rounds, so workers may read
	// neighbors' entries without synchronization.
	haltedAt []int
	live     []int
	workers  int

	// totalPorts is the visible directed edge count of the live set.
	totalPorts int
	// failSlot is the per-run error slot Node.Fail records into.
	failSlot runFailure

	// Batch-transport state (see batch.go); fw is nil on the boxed path.
	fw      FixedWidthAlgorithm
	width   int
	base    []int     // first columnar slot of each vertex
	inSlots [][]int32 // per vertex, per port: the sending neighbor's slot
	wwords  [2][]int64
	wsent   [2][]uint8
	clearQ  []int // nodes halted last round, flags pending a clear

	// Word-I/O state (see wordio.go); wio is nil outside word-I/O runs.
	wio    WordIOAlgorithm
	outCol []int64
}

func newSimulation(net *Network, algo Algorithm, opts RunOptions, batch bool) *simulation {
	n := net.g.N()
	s := &simulation{
		net:      net,
		algo:     algo,
		opts:     opts,
		nodes:    make([]*Node, n),
		peer:     make([][]int, n),
		haltedAt: make([]int, n),
	}
	if !batch {
		s.inbox = make([][]Message, n)
	}
	// Port lists live in one flat backing array: under label/active
	// filters the old per-vertex VisiblePorts allocation was one malloc
	// per vertex per run, which dominated filtered pipeline phases.
	filtered := opts.Labels != nil || opts.Active != nil
	totalPorts := 0
	if filtered {
		for v := 0; v < n; v++ {
			if opts.Active != nil && !opts.Active[v] {
				continue
			}
			totalPorts += countVisible(net.g, opts.Labels, opts.Active, v)
		}
	}
	portsFlat := make([]int, totalPorts)
	arr := make([]Node, n)
	totalPorts = 0
	for v := 0; v < n; v++ {
		s.haltedAt[v] = math.MaxInt
		if opts.Active != nil && !opts.Active[v] {
			continue
		}
		var ports []int
		if filtered {
			ports = appendVisible(portsFlat[totalPorts:totalPorts:len(portsFlat)], net.g, opts.Labels, opts.Active, v)
		} else {
			ports = net.g.Neighbors(v)
		}
		nd := &arr[v]
		nd.id, nd.vertex, nd.total, nd.ports = net.ids[v], v, n, ports
		nd.fail = &s.failSlot
		if !batch {
			nd.bufs[0] = make([]Message, len(ports))
			nd.bufs[1] = make([]Message, len(ports))
			s.inbox[v] = make([]Message, len(ports))
		}
		if opts.Inputs != nil {
			nd.Input = opts.Inputs[v]
		}
		s.nodes[v] = nd
		s.live = append(s.live, v)
		totalPorts += len(ports)
	}
	s.totalPorts = totalPorts
	// peer[v][p]: v's position in ports of u = ports[v][p]. Visibility is
	// symmetric, so v always appears in its visible neighbors' port lists.
	peerFlat := make([]int, totalPorts)
	for _, v := range s.live {
		ports := s.nodes[v].ports
		peers := peerFlat[:len(ports):len(ports)]
		peerFlat = peerFlat[len(ports):]
		for p, u := range ports {
			peers[p] = sort.SearchInts(s.nodes[u].ports, v)
		}
		s.peer[v] = peers
	}
	s.workers = 1
	if w := runtime.GOMAXPROCS(0); w > 1 && len(s.live) >= parallelThreshold {
		s.workers = w // stepRound caps the fan-out per round by minChunk
	}
	return s
}

func (s *simulation) run() (*Result, error) {
	if s.wio != nil {
		// Reclaimed by the next run's borrow; on error returns the column
		// simply goes back to the pool unread.
		defer s.net.scratch.publish(s.outCol)
	}
	s.stepRound(0)
	s.collectHalted(0)
	if err := s.failSlot.take(); err != nil {
		return nil, err
	}
	budget := s.opts.MaxRounds
	if budget == 0 {
		budget = defaultMaxRounds
	}
	rounds := 0
	for r := 1; len(s.live) > 0; r++ {
		if r > budget {
			return nil, fmt.Errorf("dist: %d nodes still running after %d rounds: %w",
				len(s.live), budget, ErrMaxRounds)
		}
		s.stepRound(r)
		if s.fw != nil {
			// Halting sends of round r-1 are delivered; drop the flags.
			s.flushHaltClears()
		}
		rounds = r
		s.collectHalted(r)
		if err := s.failSlot.take(); err != nil {
			return nil, err
		}
	}
	// Word-I/O runs report through the output column; boxing n outputs
	// into []any is exactly what the typed plane exists to avoid.
	var outs []any
	if s.wio == nil {
		outs = make([]any, s.net.g.N())
	}
	var msgs int64
	for v, nd := range s.nodes {
		if nd != nil {
			if outs != nil {
				outs[v] = nd.Output
			}
			msgs += nd.sent
		}
	}
	return &Result{Outputs: outs, OutputWords: s.outCol, Rounds: rounds, Messages: msgs}, nil
}

// stepRound executes round r (round 0 = Init) on every live node. Nodes
// touch only their own state, and message delivery reads the previous
// round's buffers and between-round haltedAt marks, so the live set can
// be split across workers without changing results.
func (s *simulation) stepRound(r int) {
	// Long-tail rounds of wave-style programs leave only a few live
	// nodes; below the threshold the fan-out costs more than the steps.
	if s.workers <= 1 || len(s.live) < parallelThreshold {
		s.stepSlice(r, 0, len(s.live))
		return
	}
	workers := s.workers
	if max := (len(s.live) + minChunk - 1) / minChunk; workers > max {
		workers = max
	}
	var wg sync.WaitGroup
	chunk := (len(s.live) + workers - 1) / workers
	for lo := 0; lo < len(s.live); lo += chunk {
		hi := lo + chunk
		if hi > len(s.live) {
			hi = len(s.live)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			s.stepSlice(r, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func (s *simulation) stepSlice(r, lo, hi int) {
	if s.fw != nil {
		s.stepSliceBatch(r, lo, hi)
		return
	}
	for i := lo; i < hi; i++ {
		v := s.live[i]
		nd := s.nodes[v]
		nd.round = r
		nd.out = nd.bufs[r%2]
		for p := range nd.out {
			nd.out[p] = nil
		}
		if r == 0 {
			s.algo.Init(nd)
			continue
		}
		in := s.inbox[v]
		prev := (r - 1) % 2
		for p, u := range nd.ports {
			// The neighbor's previous-round buffer is live exactly when
			// it stepped that round, i.e. halted no earlier.
			if s.haltedAt[u] >= r-1 {
				in[p] = s.nodes[u].bufs[prev][s.peer[v][p]]
			} else {
				in[p] = nil
			}
		}
		s.algo.Step(nd, in)
	}
}

// collectHalted prunes nodes that halted during round r from the live
// set, preserving order so later rounds process nodes deterministically.
func (s *simulation) collectHalted(r int) {
	kept := s.live[:0]
	for _, v := range s.live {
		if s.nodes[v].halted {
			s.haltedAt[v] = r
			if s.fw != nil {
				s.clearQ = append(s.clearQ, v)
			}
		} else {
			kept = append(kept, v)
		}
	}
	s.live = kept
}
