package dist

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/graph"
)

// ErrMaxRounds is returned (wrapped) by Run when nodes are still running
// after RunOptions.MaxRounds rounds. Callers that probe for a property -
// e.g. the H-partition testing an arboricity guess - detect the overrun
// with errors.Is.
var ErrMaxRounds = errors.New("dist: round budget exhausted")

// ErrCanceled is returned (wrapped) by Run when the run's context is
// canceled. The engine checks the context once per round boundary, so the
// returned partial Result reports a whole number of completed rounds and
// the session stays reusable: the next Run on the same Network is
// bit-for-bit identical to one on a fresh network.
var ErrCanceled = errors.New("dist: run canceled")

// ErrDeadline is returned (wrapped) by Run when the run's context
// deadline expires or RunOptions.WallBudget is exhausted, with the same
// round-boundary and partial-Result semantics as ErrCanceled.
var ErrDeadline = errors.New("dist: run deadline exceeded")

// ErrVertexPanic is returned (wrapped) by Run when a vertex program
// panics. The panic is recovered on the worker goroutine and converted
// into the deterministic Node.Fail path: the smallest panicking vertex is
// reported (identically at every worker and shard count), the run aborts
// at that round boundary with a partial Result, and the session stays
// reusable.
var ErrVertexPanic = errors.New("dist: vertex program panicked")

// defaultMaxRounds caps runs that set no explicit budget, so a buggy
// vertex program deadlocks the simulation instead of the process. Every
// legitimate run in this repository finishes orders of magnitude earlier.
const defaultMaxRounds = 1 << 20

// Message is the unit of communication. Any non-nil value can be sent;
// nil marks a silent port in inboxes.
type Message = any

// Algorithm is a vertex program. Init runs once per node at round 0 and
// typically stores per-node state in Node.State and sends opening
// messages. Step runs once per round on every node that has not halted;
// inbox[p] holds the message the neighbor on visible port p sent in the
// previous round, or nil if it sent nothing. The inbox slice is reused by
// the engine and must not be retained across calls.
type Algorithm interface {
	Init(n *Node)
	Step(n *Node, inbox []Message)
}

// RunOptions configures a single Run.
type RunOptions struct {
	// Inputs holds per-vertex inputs, exposed as Node.Input (nil = no
	// inputs). Length must be the vertex count when non-nil.
	Inputs []any
	// Labels restricts communication to the label-induced subgraphs: only
	// same-label neighbors are visible (nil = one subgraph).
	Labels []int
	// Active masks the run to a vertex subset: inactive vertices do not
	// run at all, are invisible to their neighbors, and report a nil
	// Output (nil = all active).
	Active []bool
	// MaxRounds bounds the number of Step rounds; exceeding it aborts the
	// run with ErrMaxRounds. Zero means the (very large) engine default.
	MaxRounds int
	// Delivery selects the message transport (see the Delivery constants).
	// The zero value resolves to the batch transport exactly when the
	// algorithm implements FixedWidthAlgorithm.
	Delivery Delivery
	// InputWords is the flat input column of a word-I/O run (see
	// wordio.go for the layout). Only valid when the algorithm is a
	// WordIOAlgorithm running on the batch transport; mutually exclusive
	// with Inputs. The engine reads it during the Run only, but the
	// vertex program may reuse its own slots as scratch.
	InputWords []int64
	// Workers paces the run's worker pool - the per-round step fan-out
	// and the engine's setup/collection sweeps. Zero resolves to the
	// Network default (WithWorkers), else to the auto heuristic:
	// GOMAXPROCS workers whenever at least 512 participants remain, at
	// least 64 nodes per goroutine. An explicitly pinned count (here or
	// via WithWorkers) always fans out exactly that many workers, which
	// is how tests force both engine paths and how benchmarks record a
	// speedup curve. Results are bit-for-bit identical at every setting;
	// only wall time changes. Negative counts are an error.
	Workers int
	// Context, when non-nil, aborts the run when it is canceled or its
	// deadline expires. The engine checks it exactly once per round
	// boundary (never mid-round), returning a partial Result wrapped in
	// ErrCanceled or ErrDeadline; the session's pooled state is returned
	// intact. Nil resolves to the Network's context (WithContext), else
	// to "never aborts". The unprobed fast path pays one boolean check.
	Context context.Context
	// WallBudget, when positive, aborts the run with ErrDeadline once
	// the run's wall time (setup through the current round boundary)
	// exceeds it - a convenience over Context for callers that want a
	// per-run budget without managing a context. Negative is an error.
	WallBudget time.Duration
	// SnapshotOnAbort captures a Snapshot of the round-structured engine
	// state into Result.Snapshot when the run aborts via Context or
	// WallBudget (not on vertex failure, whose mid-round state is not
	// snapshot-clean). Requires a word-I/O batch run whose state lives
	// entirely in the word columns (see Snapshot); the capture verifies
	// this and the abort error is annotated if the program does not
	// qualify.
	SnapshotOnAbort bool
}

// Result reports a completed run.
type Result struct {
	// Outputs holds each vertex's Node.Output (nil for inactive
	// vertices). It is nil on word-I/O runs, which report through
	// OutputWords instead of boxing n values.
	Outputs []any
	// OutputWords is the flat output column of a word-I/O run (nil
	// otherwise). It aliases an engine-owned column that the next
	// word-I/O Run on the same Network reclaims and re-zeroes: decode or
	// copy it before starting another run.
	OutputWords []int64
	// Rounds is the number of Step rounds executed - the LOCAL running
	// time. A run in which every node halts during Init costs 0 rounds.
	Rounds int
	// Messages is the total number of messages sent.
	Messages int64
	// Wall is the host-side wall time of the whole Run (setup through
	// result collection). Unlike everything else in a Result it is not
	// deterministic; orchestrators carry it into PhaseStat.Wall.
	Wall time.Duration
	// PeakLive is the number of live vertices the run started with (the
	// live set only shrinks).
	PeakLive int
	// Snapshot is the captured engine state of a run aborted with
	// RunOptions.SnapshotOnAbort (nil otherwise). It owns its memory -
	// nothing aliases the session's pooled columns - so it stays valid
	// across later runs and can be serialized (WriteTo) or resumed
	// (Network.Resume) at any time.
	Snapshot *Snapshot
}

// Node is the per-vertex view an Algorithm operates on. Input, State and
// Output are the program-visible slots; everything else is engine state.
type Node struct {
	// Input is the per-vertex input from RunOptions.Inputs.
	Input any
	// State holds arbitrary per-node algorithm state across rounds.
	State any
	// Output is the node's result, read by the caller after the run.
	Output any

	id     int
	vertex int
	total  int
	round  int
	ports  []int
	// bufs are the double-buffered per-port outboxes and inbox the
	// delivery view of the boxed transport; out aliases the buffer for
	// the round currently executing. All stay nil on the batch
	// transport, which aliases wout/wmark into the engine's word
	// columns instead (see batch.go).
	bufs  [2][]Message
	inbox []Message
	out   []Message
	width int
	wout  []int64
	wmark []uint8
	// win/wob are the word-I/O input and output views (wordio.go); both
	// stay nil outside word-I/O runs.
	win    []int64
	wob    []int64
	fail   *runFailure
	sent   int64
	halted bool
}

// ID returns the node's LOCAL-model identifier in {1..n}.
func (n *Node) ID() int { return n.id }

// Round returns the current round: 0 during Init, then 1, 2, ... for
// successive Step calls.
func (n *Node) Round() int { return n.round }

// Degree returns the number of visible ports (the degree within the
// simulated subgraph).
func (n *Node) Degree() int { return len(n.ports) }

// N returns the number of vertices of the whole underlying graph, the
// globally known quantity n of the LOCAL model.
func (n *Node) N() int { return n.total }

// Send queues msg on the given visible port for delivery next round.
// Sending again on the same port in one round overwrites. msg must be
// non-nil (nil encodes silence).
func (n *Node) Send(port int, msg Message) {
	if port < 0 || port >= len(n.ports) {
		panic(fmt.Sprintf("dist: node id=%d sends on port %d of %d", n.id, port, len(n.ports)))
	}
	if msg == nil {
		panic(fmt.Sprintf("dist: node id=%d sends nil message", n.id))
	}
	if n.out == nil {
		panic(fmt.Sprintf("dist: node id=%d calls Send on the batch transport (use SendWord/SendWords)", n.id))
	}
	if n.out[port] == nil {
		n.sent++
	}
	n.out[port] = msg
}

// SendAll sends msg on every visible port.
func (n *Node) SendAll(msg Message) {
	for p := range n.ports {
		n.Send(p, msg)
	}
}

// Halt marks the node finished: it takes no further steps and sends
// nothing after the current call. Messages sent in the same call are
// still delivered next round.
func (n *Node) Halt() { n.halted = true }

// Network binds a graph to an identifier assignment and runs vertex
// programs over it. A Network is immutable and reusable: successive Run
// calls are independent, and repeated runs reuse the session's cached
// topologies and pooled per-run state (session.go).
type Network struct {
	g   *graph.Graph
	ids []int
	// delivery is the transport preference RunOptions.Delivery == Auto
	// resolves to (itself Auto by default); see WithDelivery.
	delivery Delivery
	// workers is the pool size RunOptions.Workers == 0 resolves to
	// (0 = the auto heuristic); see WithWorkers.
	workers int
	// sharding is the vertex partition of a Sharded view (the zero value
	// on flat networks); the engine-facing copy lives in the session.
	sharding graph.Sharding
	// sess is the persistent per-network session: cached topologies and
	// pooled per-run state. It is a pointer so WithDelivery/WithWorkers
	// views share it.
	sess *session
	// probe, when non-nil, receives round- and run-level trace records
	// from every Run on this view; see WithProbe and probe.go.
	probe *Probe
	// ctx, when non-nil, is the run context RunOptions.Context == nil
	// resolves to; see WithContext.
	ctx context.Context
}

// NewNetwork returns a network with canonical identifiers id(v) = v+1.
func NewNetwork(g *graph.Graph) *Network {
	ids := make([]int, g.N())
	for v := range ids {
		ids[v] = v + 1
	}
	return &Network{g: g, ids: ids, sess: &session{}}
}

// NewNetworkPermuted returns a network whose identifiers {1..n} are
// assigned by a random permutation drawn from rng, stressing
// identifier-dependent symmetry breaking. A fixed rng seed yields a fixed
// assignment and hence bit-for-bit reproducible runs.
func NewNetworkPermuted(g *graph.Graph, rng *rand.Rand) *Network {
	ids := make([]int, g.N())
	for v, p := range rng.Perm(g.N()) {
		ids[v] = p + 1
	}
	return &Network{g: g, ids: ids, sess: &session{}}
}

// NewNetworkWithIDs returns a network with the given identifier
// assignment (ids[v] in {1..n}, each exactly once) and a fresh session.
// Harnesses use it to re-run the exact same instance - typically ids
// captured from NewNetworkPermuted via IDs - on independent sessions,
// e.g. one cold-cache network per point of a speedup sweep, without
// replaying the rng stream that generated the graph.
func NewNetworkWithIDs(g *graph.Graph, ids []int) (*Network, error) {
	n := g.N()
	if len(ids) != n {
		return nil, fmt.Errorf("dist: %d identifiers for %d vertices", len(ids), n)
	}
	seen := make([]bool, n+1)
	for v, id := range ids {
		if id < 1 || id > n || seen[id] {
			return nil, fmt.Errorf("dist: ids is not a permutation of 1..%d (ids[%d]=%d)", n, v, id)
		}
		seen[id] = true
	}
	return &Network{g: g, ids: append([]int(nil), ids...), sess: &session{}}, nil
}

// Graph returns the underlying graph.
func (net *Network) Graph() *graph.Graph { return net.g }

// IDs returns a copy of the identifier assignment, indexed by vertex.
func (net *Network) IDs() []int { return append([]int(nil), net.ids...) }

// WithDelivery returns a view of the network sharing the graph,
// identifier assignment and session whose Runs resolve
// RunOptions.Delivery == DeliveryAuto to the given transport preference.
// Pipelines that call Run internally with default options inherit the
// preference, which is how shadow tests and the scale harness force the
// []any fallback (or require the batch path) across a whole multi-phase
// algorithm without threading an option through every signature.
func (net *Network) WithDelivery(d Delivery) *Network {
	c := *net
	c.delivery = d
	return &c
}

// WithContext returns a view of the network sharing the graph,
// identifier assignment and session whose Runs resolve
// RunOptions.Context == nil to ctx. Pipelines that call Run internally
// with default options inherit the context, which is how a whole
// multi-phase algorithm (LegalColoring and friends) becomes cancelable
// without threading a context through every signature. A canceled run
// aborts at the next round boundary with a partial Result wrapped in
// ErrCanceled (or ErrDeadline); the session stays reusable.
func (net *Network) WithContext(ctx context.Context) *Network {
	c := *net
	c.ctx = ctx
	return &c
}

// autoParallelThreshold is the participant count above which the auto
// worker heuristic fans a sweep out; below it the per-round
// synchronization costs more than it saves. Explicitly pinned worker
// counts (RunOptions.Workers / WithWorkers) bypass the threshold.
const autoParallelThreshold = 512

// minChunk is the smallest per-worker slice of nodes the auto heuristic
// considers worth a goroutine.
const minChunk = 64

// Run executes the vertex program round-by-round until every active node
// has halted or the round budget trips.
func (net *Network) Run(algo Algorithm, opts RunOptions) (*Result, error) {
	s, err := net.prepare(algo, opts)
	if err != nil {
		return nil, err
	}
	return s.run()
}

// prepare validates a run's options, assembles the pooled simulation and
// resolves its abort sources - everything Run does before entering the
// round loop. Resume (snapshot.go) shares it.
func (net *Network) prepare(algo Algorithm, opts RunOptions) (*simulation, error) {
	if algo == nil {
		return nil, errors.New("dist: nil algorithm")
	}
	n := net.g.N()
	if opts.Inputs != nil && len(opts.Inputs) != n {
		return nil, fmt.Errorf("dist: %d inputs for %d vertices", len(opts.Inputs), n)
	}
	if opts.Labels != nil && len(opts.Labels) != n {
		return nil, fmt.Errorf("dist: %d labels for %d vertices", len(opts.Labels), n)
	}
	if opts.Active != nil && len(opts.Active) != n {
		return nil, fmt.Errorf("dist: %d active flags for %d vertices", len(opts.Active), n)
	}
	if opts.MaxRounds < 0 {
		return nil, fmt.Errorf("dist: negative round budget %d", opts.MaxRounds)
	}
	if opts.Workers < 0 {
		return nil, fmt.Errorf("dist: negative worker count %d", opts.Workers)
	}
	if opts.WallBudget < 0 {
		return nil, fmt.Errorf("dist: negative wall budget %v", opts.WallBudget)
	}
	batch, err := net.resolveDelivery(algo, opts)
	if err != nil {
		return nil, err
	}
	start := time.Now() //distvet:wallclock setup-vs-compute attribution (Result.Wall, RunRecord.SetupNS); wall figures are documented non-deterministic
	s, err := newSimulation(net, algo, opts, batch)
	if err != nil {
		return nil, err
	}
	s.start = start
	s.setupNS = time.Since(start).Nanoseconds() //distvet:wallclock same setup-vs-compute attribution
	s.initAbort()
	return s, nil
}

// resolveDelivery picks the transport of a Run: the explicit
// RunOptions.Delivery, else the Network preference, else (Auto) the batch
// transport exactly when the algorithm is fixed-width.
func (net *Network) resolveDelivery(algo Algorithm, opts RunOptions) (bool, error) {
	d := opts.Delivery
	if d == DeliveryAuto {
		d = net.delivery
	}
	_, isFW := algo.(FixedWidthAlgorithm)
	switch d {
	case DeliveryAuto:
		return isFW, nil
	case DeliveryBoxed:
		return false, nil
	case DeliveryBatch:
		if !isFW {
			return false, fmt.Errorf("dist: DeliveryBatch requires a FixedWidthAlgorithm, got %T", algo)
		}
		return true, nil
	default:
		return false, fmt.Errorf("dist: unknown delivery mode %d", int(d))
	}
}

// simulation is the per-Run state of the engine. It is pooled inside the
// session's runScratch; newSimulation re-initializes every field.
type simulation struct {
	net  *Network
	algo Algorithm
	opts RunOptions

	// topo is the cached immutable wiring (port lists, live set, slot
	// bases, delivery table) shared with other runs; see session.go.
	topo *topology
	// rs is the borrowed per-run scratch bundle, released on completion.
	rs *runScratch

	nodes []*Node // indexed by vertex; nil for inactive vertices
	// haltedAt[v] is the round at which v halted (math.MaxInt while
	// running). It is written only between rounds, so workers may read
	// neighbors' entries without synchronization.
	haltedAt []int
	// live is the mutable live list (collectHalted prunes it);
	// liveSpare is the equal-capacity double buffer the parallel
	// compaction writes into before the two swap.
	live      []int
	liveSpare []int

	// workers/explicit are the resolved pool size and whether it was
	// pinned (see resolveWorkers); sweepWorkers applies them per sweep.
	workers  int
	explicit bool

	// start/setupNS time the run for Result.Wall and the probe's
	// setup-vs-compute split; topoCached/scratchPooled are the session
	// events the run record reports (probe.go).
	start         time.Time
	setupNS       int64
	topoCached    bool
	scratchPooled bool

	// failSlot is the per-run error slot Node.Fail records into.
	failSlot runFailure

	// Run-control state. ctx/deadline are the resolved abort sources,
	// checked once per round boundary (checkAbort); hasAbort folds both
	// into the single boolean branch the fast path pays. phase is the
	// probe phase label panic reports carry (empty unprobed). resumed is
	// set by restore (snapshot.go): the loop starts at startRound+1 and
	// Init is skipped (a snapshot captured at round 0 already holds
	// Init's sends, so startRound alone cannot distinguish the cases).
	ctx        context.Context
	deadline   time.Time
	hasAbort   bool
	phase      string
	startRound int
	resumed    bool

	// Batch-transport state (see batch.go); fw is nil on the boxed path.
	fw     FixedWidthAlgorithm
	width  int
	wwords [2][]int64
	wsent  [2][]uint8
	// shWords/shSent are the per-shard column views of a sharded batch
	// run (shard.go); nil on flat runs, where wwords/wsent serve.
	shWords [2][][]int64
	shSent  [2][][]uint8
	// shIn is the per-parity sharded delivery bundle WordInbox points
	// at (one pointer per inbox instead of three slice headers); bound
	// alongside shWords/shSent in growShardColumns.
	shIn   [2]shardCols
	clearQ []int // nodes halted last round, flags pending a clear

	// Word-I/O state (see wordio.go); wio is nil outside word-I/O runs.
	wio    WordIOAlgorithm
	outCol []int64
}

// maxSlots bounds the columnar slot space of a batch run.
const maxSlots = 1 << 31

// newSimulation assembles a run: resolve the (cached) topology, validate
// the algorithm's declared shape against it, borrow the pooled per-run
// state and wire every live node in one parallel sweep.
func newSimulation(net *Network, algo Algorithm, opts RunOptions, batch bool) (*simulation, error) {
	n := net.g.N()
	// The topology's delivery-slot table is int32: guard the whole-graph
	// directed edge count (which bounds every filtered run's visible port
	// count) BEFORE building anything, on both transports, so an
	// oversized graph can never leave a wrapped table in the cache.
	if 2*net.g.M() >= maxSlots {
		return nil, fmt.Errorf("dist: graph has %d directed edges (max %d)", 2*net.g.M(), maxSlots-1)
	}
	workers, explicit := net.resolveWorkers(opts.Workers)
	setupW := sweepWorkersFor(n, workers, explicit)
	topo, topoHit := net.sess.topology(net.g, opts.Labels, opts.Active, setupW)

	var fw FixedWidthAlgorithm
	var wio WordIOAlgorithm
	width := 0
	iw, ow := 0, 0
	if batch {
		fw = algo.(FixedWidthAlgorithm)
		width = fw.MessageWords()
		if width < 1 {
			return nil, fmt.Errorf("dist: fixed-width algorithm declares %d message words", width)
		}
		if topo.totalPorts >= maxSlots/width {
			return nil, fmt.Errorf("dist: batch transport needs %d word slots (max %d)", topo.totalPorts, maxSlots/width)
		}
		wio, _ = algo.(WordIOAlgorithm)
	}
	if wio == nil && opts.InputWords != nil {
		return nil, fmt.Errorf("dist: RunOptions.InputWords requires a WordIOAlgorithm on the batch transport, got %T (batch=%v)", algo, batch)
	}
	inCol := opts.InputWords
	outLen := 0
	if wio != nil {
		iw, ow = wio.InputWidth(), wio.OutputWidth()
		if iw < PerPort || ow < PerPort {
			return nil, fmt.Errorf("dist: word-I/O algorithm declares widths (%d, %d)", iw, ow)
		}
		if opts.Inputs != nil {
			return nil, fmt.Errorf("dist: word-I/O algorithm %T takes RunOptions.InputWords, not Inputs", wio)
		}
		want := 0
		switch iw {
		case PerPort:
			want = topo.totalPorts
		default:
			want = n * iw
		}
		if len(inCol) != want {
			return nil, fmt.Errorf("dist: %d input words for width %d (want %d)", len(inCol), iw, want)
		}
		if inCol == nil {
			inCol = emptyWords
		}
		switch ow {
		case PerPort:
			outLen = topo.totalPorts
		default:
			outLen = n * ow
		}
	}

	rs, pooled := net.sess.borrowRun()
	s := &rs.sim
	*s = simulation{
		net:           net,
		algo:          algo,
		opts:          opts,
		topo:          topo,
		rs:            rs,
		workers:       workers,
		explicit:      explicit,
		topoCached:    topoHit,
		scratchPooled: pooled,
		fw:            fw,
		width:         width,
		wio:           wio,
	}
	rs.nodes = grown(rs.nodes, n)
	rs.arr = grown(rs.arr, n)
	rs.haltedAt = grown(rs.haltedAt, n)
	rs.live = grown(rs.live, len(topo.live))
	rs.liveSpare = grown(rs.liveSpare, len(topo.live))
	s.nodes, s.haltedAt = rs.nodes, rs.haltedAt
	s.live, s.liveSpare = rs.live, rs.liveSpare
	copy(s.live, topo.live)
	if batch {
		// The pooled message columns are NOT zeroed between runs: a
		// WordInbox only reads slots whose sent flag is set, and every
		// flag read at round r belongs to a sender that either stepped
		// round r-1 (clearing its flags at step start) or halted earlier
		// and had them flushed (flushHaltClears) - so stale content from
		// a previous run, even one with a different topology, is never
		// observed.
		if st := topo.shard; st != nil {
			s.growShardColumns(rs, st, width)
		} else {
			for i := 0; i < 2; i++ {
				rs.wwords[i] = grown(rs.wwords[i], topo.totalPorts*width)
				rs.wsent[i] = grown(rs.wsent[i], topo.totalPorts)
				s.wwords[i], s.wsent[i] = rs.wwords[i], rs.wsent[i]
			}
		}
		s.clearQ = rs.clearQ[:0]
	}
	if wio != nil && ow != 0 {
		s.outCol = net.sess.borrowOut(outLen, setupW)
	}

	// One parallel sweep wires every vertex: node reset, input binding,
	// boxed buffers, and the word-I/O column views.
	inputs := opts.Inputs
	parfor(n, setupW, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			ports := topo.ports[v]
			if ports == nil { // inactive under the Active mask
				s.nodes[v] = nil
				s.haltedAt[v] = math.MaxInt
				continue
			}
			nd := &rs.arr[v]
			// Recycle the boxed buffers across runs; stale contents are
			// never read (delivery is guarded by haltedAt / sent flags).
			b0, b1, ibx := nd.bufs[0], nd.bufs[1], nd.inbox
			*nd = Node{id: net.ids[v], vertex: v, total: n, ports: ports, fail: &s.failSlot, width: width}
			if inputs != nil {
				nd.Input = inputs[v]
			}
			if !batch {
				nd.bufs[0] = grown(b0, len(ports))
				nd.bufs[1] = grown(b1, len(ports))
				nd.inbox = grown(ibx, len(ports))
			}
			if wio != nil {
				wireWordIO(nd, s, iw, ow, inCol, v)
			}
			s.haltedAt[v] = math.MaxInt
			s.nodes[v] = nd
		}
	})
	return s, nil
}

// close releases the pooled per-run state: the word output column goes
// back to the session (the NEXT word-I/O run's borrow reclaims it, which
// is why Result.OutputWords may alias it until then) and the scratch
// bundle becomes available to the next run.
func (s *simulation) close() {
	if s.wio != nil {
		s.net.sess.publishOut(s.outCol)
	}
	// Slices the run grew in place flow back into the scratch so their
	// capacity survives into the next run. clearQ is batch-only state:
	// boxed runs leave the pooled queue (and its capacity) untouched.
	if s.fw != nil {
		s.rs.clearQ = s.clearQ[:0]
	}
	s.net.sess.releaseRun(s.rs)
}

func (s *simulation) run() (*Result, error) {
	// The probed twin (probe.go) carries the per-round timing and record
	// emission; this single nil check is the disabled path's entire cost.
	if s.net.probe != nil {
		return s.runProbed()
	}
	defer s.close()
	rounds := s.startRound
	if rounds == 0 && !s.resumed {
		s.stepRound(0)
		s.collectHalted(0)
		if err := s.failSlot.take(); err != nil {
			return s.partial(0), err
		}
		if s.hasAbort {
			if err := s.checkAbort(); err != nil {
				return s.abortResult(0, err)
			}
		}
	}
	budget := s.opts.MaxRounds
	if budget == 0 {
		budget = defaultMaxRounds
	}
	for r := rounds + 1; len(s.live) > 0; r++ {
		if r > budget {
			return nil, fmt.Errorf("dist: %d nodes still running after %d rounds: %w",
				len(s.live), budget, ErrMaxRounds)
		}
		s.stepRound(r)
		if s.fw != nil {
			// Halting sends of round r-1 are delivered; drop the flags.
			s.flushHaltClears()
		}
		rounds = r
		s.collectHalted(r)
		if err := s.failSlot.take(); err != nil {
			return s.partial(rounds), err
		}
		if s.hasAbort {
			if err := s.checkAbort(); err != nil {
				return s.abortResult(rounds, err)
			}
		}
	}
	outs, msgs := s.collectResults()
	return &Result{
		Outputs:     outs,
		OutputWords: s.outCol,
		Rounds:      rounds,
		Messages:    msgs,
		Wall:        time.Since(s.start), //distvet:wallclock Result.Wall is host-side observability, documented non-deterministic
		PeakLive:    len(s.topo.live),
	}, nil
}

// initAbort resolves the run's abort sources: the explicit
// RunOptions.Context, else the Network context (WithContext); the
// WallBudget deadline anchors at the run's start time. Called after
// s.start is set, on both fresh and resumed runs.
func (s *simulation) initAbort() {
	ctx := s.opts.Context
	if ctx == nil {
		ctx = s.net.ctx
	}
	s.ctx = ctx
	s.deadline = time.Time{}
	if wb := s.opts.WallBudget; wb > 0 {
		s.deadline = s.start.Add(wb)
	}
	s.hasAbort = s.ctx != nil || !s.deadline.IsZero()
}

// checkAbort reports the run's abort condition at a round boundary: a
// canceled or expired context maps to ErrCanceled/ErrDeadline, an
// exhausted WallBudget to ErrDeadline. Only called between rounds, so an
// abort never observes mid-round state.
func (s *simulation) checkAbort() error {
	if s.ctx != nil {
		if err := s.ctx.Err(); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				return fmt.Errorf("dist: run aborted at round boundary: %v: %w", err, ErrDeadline)
			}
			return fmt.Errorf("dist: run aborted at round boundary: %v: %w", err, ErrCanceled)
		}
	}
	if !s.deadline.IsZero() && time.Now().After(s.deadline) { //distvet:wallclock WallBudget enforcement is inherently wall-clock; documented non-deterministic
		return fmt.Errorf("dist: wall budget %v exhausted: %w", s.opts.WallBudget, ErrDeadline)
	}
	return nil
}

// partial assembles the Result of a run that stopped early - abort or
// vertex failure - at a round boundary: the outputs and message totals
// of the rounds completed so far, in the same shape as a completed run.
func (s *simulation) partial(rounds int) *Result {
	outs, msgs := s.collectResults()
	return &Result{
		Outputs:     outs,
		OutputWords: s.outCol,
		Rounds:      rounds,
		Messages:    msgs,
		Wall:        time.Since(s.start), //distvet:wallclock Result.Wall is host-side observability, documented non-deterministic
		PeakLive:    len(s.topo.live),
	}
}

// abortResult pairs the partial Result of a context/deadline abort with
// its error, capturing a Snapshot first when the run asked for one (the
// session's pooled columns are still bound at this point; close() runs
// after).
func (s *simulation) abortResult(rounds int, abortErr error) (*Result, error) {
	res := s.partial(rounds)
	if s.opts.SnapshotOnAbort {
		snap, err := s.captureSnapshot(rounds)
		if err != nil {
			return res, fmt.Errorf("%w; snapshot not captured: %v", abortErr, err)
		}
		res.Snapshot = snap
	}
	return res, abortErr
}

// collectResults gathers the boxed outputs and the message total in one
// parallel sweep (per-chunk partial sums, deterministically reduced).
// Word-I/O runs report through the output column; boxing n outputs into
// []any is exactly what the typed plane exists to avoid.
func (s *simulation) collectResults() ([]any, int64) {
	n := s.net.g.N()
	var outs []any
	if s.wio == nil {
		outs = make([]any, n)
	}
	w := s.sweepWorkers(n)
	if w <= 1 {
		var msgs int64
		for v := 0; v < n; v++ {
			if nd := s.nodes[v]; nd != nil {
				if outs != nil {
					outs[v] = nd.Output
				}
				msgs += nd.sent
			}
		}
		return outs, msgs
	}
	s.rs.sums = grown(s.rs.sums, w)
	sums := s.rs.sums
	chunk := (n + w - 1) / w
	parfor(n, w, func(lo, hi int) {
		var msgs int64
		for v := lo; v < hi; v++ {
			if nd := s.nodes[v]; nd != nil {
				if outs != nil {
					outs[v] = nd.Output
				}
				msgs += nd.sent
			}
		}
		sums[lo/chunk] = msgs
	})
	var msgs int64
	for _, m := range sums[:(n+chunk-1)/chunk] {
		msgs += m
	}
	return outs, msgs
}

// stepRound executes round r (round 0 = Init) on every live node. Nodes
// touch only their own state, and message delivery reads the previous
// round's buffers and between-round haltedAt marks, so the live set can
// be split across workers without changing results. Long-tail rounds of
// wave-style programs leave only a few live nodes; the auto heuristic
// then steps inline, where the fan-out would cost more than it saves.
func (s *simulation) stepRound(r int) {
	m := len(s.live)
	w := s.sweepWorkers(m)
	if w <= 1 {
		s.rs.curV = grown(s.rs.curV, 1)
		s.stepSliceGuarded(r, 0, m, &s.rs.curV[0])
		return
	}
	chunk := (m + w - 1) / w
	s.rs.curV = grown(s.rs.curV, (m+chunk-1)/chunk)
	cur := s.rs.curV
	parfor(m, w, func(lo, hi int) {
		s.stepSliceGuarded(r, lo, hi, &cur[lo/chunk])
	})
}

// stepSliceGuarded runs stepSlice under the panic guard: a panic out of
// a vertex program (or an engine misuse panic raised inside one, e.g. a
// bad Send port) is recovered on this worker goroutine and converted
// into the Node.Fail path so the run degrades to a deterministic failed
// run instead of a crashed process. cur points at this chunk's pooled
// cursor slot; stepSlice keeps it on the live-list index being stepped.
//
// Determinism: the live list ascends and a panic only skips the REST of
// its own chunk, so the globally smallest panicking vertex always gets
// stepped, and runFailure keeps the smallest vertex across chunks - the
// reported failure is identical at every worker and shard count. (The
// sends of vertices after a panic in one chunk are skipped, so message
// totals of panicked runs are not pinned across worker counts.)
//
//distvet:noalloc
func (s *simulation) stepSliceGuarded(r, lo, hi int, cur *int) {
	*cur = lo
	defer s.recoverStep(r, lo, hi, cur)
	s.stepSlice(r, lo, hi, cur)
}

// recoverStep is stepSliceGuarded's deferred recovery: it attributes the
// panic to the vertex under the chunk cursor and records it into the
// run's failure slot wrapped in ErrVertexPanic.
func (s *simulation) recoverStep(r, lo, hi int, cur *int) {
	rec := recover()
	if rec == nil {
		return
	}
	err := fmt.Errorf("vertex program panic at round %d phase %q: %v: %w", r, s.phase, rec, ErrVertexPanic)
	if i := *cur; i >= lo && i < hi && i < len(s.live) {
		if nd := s.nodes[s.live[i]]; nd != nil {
			nd.Fail(err)
			return
		}
	}
	// A panic outside any node iteration would be an engine bug; record
	// it without a vertex attribution rather than crash the process.
	s.failSlot.record(-1, -1, err)
}

// stepSlice steps the live nodes in [lo, hi): per-round buffer rebinding,
// inbox wiring and the Init/Step dispatch. This is the per-node round
// loop; the only allocations on a steady-state round are the vertex
// program's own.
//
//distvet:noalloc
func (s *simulation) stepSlice(r, lo, hi int, cur *int) {
	if s.fw != nil {
		if s.topo.shard != nil {
			s.stepSliceBatchSharded(r, lo, hi, cur)
		} else {
			s.stepSliceBatch(r, lo, hi, cur)
		}
		return
	}
	base := s.topo.base
	inSlots := s.topo.inSlots
	st := s.topo.shard
	for i := lo; i < hi; i++ {
		*cur = i
		v := s.live[i]
		nd := s.nodes[v]
		nd.round = r
		nd.out = nd.bufs[r%2]
		for p := range nd.out {
			nd.out[p] = nil
		}
		if r == 0 {
			s.algo.Init(nd)
			continue
		}
		in := nd.inbox
		prev := (r - 1) % 2
		b := base[v]
		for p, u := range nd.ports {
			// The neighbor's previous-round buffer is live exactly when
			// it stepped that round, i.e. halted no earlier. Its port
			// back to us is its delivery slot minus its slot base; on a
			// sharded topology the slot is shard-local and the boundary
			// table supplies the sending shard's slot offset.
			if s.haltedAt[u] >= r-1 {
				slot := int(inSlots[b+p])
				if st != nil {
					slot += st.slotCuts[st.inShard[b+p]]
				}
				in[p] = s.nodes[u].bufs[prev][slot-base[u]]
			} else {
				in[p] = nil
			}
		}
		s.algo.Step(nd, in)
	}
}

// collectHalted prunes nodes that halted during round r from the live
// set, preserving order so later rounds process nodes deterministically.
// Large live sets compact in parallel: per-chunk counts, a serial prefix
// sum, then an order-preserving parallel copy into the spare buffer.
func (s *simulation) collectHalted(r int) {
	m := len(s.live)
	w := s.sweepWorkers(m)
	if w <= 1 {
		kept := s.live[:0]
		for _, v := range s.live {
			if s.nodes[v].halted {
				s.haltedAt[v] = r
				if s.fw != nil {
					s.clearQ = append(s.clearQ, v)
				}
			} else {
				kept = append(kept, v)
			}
		}
		s.live = kept
		return
	}
	s.rs.counts = grown(s.rs.counts, w)
	s.rs.starts = grown(s.rs.starts, w+1)
	counts, starts := s.rs.counts, s.rs.starts
	chunk := (m + w - 1) / w
	chunks := (m + chunk - 1) / chunk
	parfor(m, w, func(lo, hi int) {
		kept := 0
		for i := lo; i < hi; i++ {
			v := s.live[i]
			if s.nodes[v].halted {
				s.haltedAt[v] = r
			} else {
				kept++
			}
		}
		counts[lo/chunk] = kept
	})
	keptTotal := 0
	for c := 0; c < chunks; c++ {
		starts[c] = keptTotal
		keptTotal += counts[c]
	}
	starts[chunks] = keptTotal
	clearBase := len(s.clearQ)
	if s.fw != nil {
		s.clearQ = grownKeep(s.clearQ, clearBase+(m-keptTotal))
	}
	dst := s.liveSpare
	parfor(m, w, func(lo, hi int) {
		c := lo / chunk
		ko := starts[c]
		// Halted nodes of chunk c land after the halted nodes of earlier
		// chunks: chunk c dropped (lo - starts[c]) of its predecessors'
		// entries... i.e. lo-starts[c] halted so far before this chunk.
		ho := clearBase + (lo - starts[c])
		for i := lo; i < hi; i++ {
			v := s.live[i]
			if s.nodes[v].halted {
				if s.fw != nil {
					s.clearQ[ho] = v
					ho++
				}
			} else {
				dst[ko] = v
				ko++
			}
		}
	})
	// Swap the buffers: the pruned list becomes live, the old backing
	// becomes the next compaction's destination.
	s.live, s.liveSpare = dst[:keptTotal], s.live[:cap(s.live)]
}

// sweepWorkersFor is sweepWorkers for code running before the simulation
// exists (topology builds, the setup sweep).
func sweepWorkersFor(m, workers int, explicit bool) int {
	s := simulation{workers: workers, explicit: explicit}
	return s.sweepWorkers(m)
}
