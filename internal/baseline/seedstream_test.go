package baseline

import (
	"math/rand"
	"testing"
)

// TestNodeSeedDecorrelatesLowBits is the regression for the seed ^ id*C
// derivation: there, bit 0 of consecutive node seeds alternated exactly
// with the node id (and generally bit k depended only on bits <= k of
// id). The finalized derivation must keep every low bit near balance and
// uncorrelated with the id's parity.
func TestNodeSeedDecorrelatesLowBits(t *testing.T) {
	const nodes = 1 << 12
	for bit := 0; bit < 8; bit++ {
		ones, matchIDParity := 0, 0
		for id := 1; id <= nodes; id++ {
			b := int(nodeSeed(1, id, tagLuby)>>uint(bit)) & 1
			ones += b
			if b == id&1 {
				matchIDParity++
			}
		}
		// The old scheme scores ones = nodes/2 but matchIDParity = 0 or
		// nodes at bit 0. Require both statistics within 6 sigma of n/2.
		slack := 6 * 32 // 6 * sqrt(4096)/... ~ 6*64/2; generous band: n/2 +- 384
		if ones < nodes/2-slack || ones > nodes/2+slack {
			t.Errorf("bit %d: %d/%d ones", bit, ones, nodes)
		}
		if matchIDParity < nodes/2-slack || matchIDParity > nodes/2+slack {
			t.Errorf("bit %d: correlates with id parity %d/%d", bit, matchIDParity, nodes)
		}
	}
}

func TestNodeSeedDistinctAcrossNodesAndAlgorithms(t *testing.T) {
	seen := make(map[int64]bool)
	for id := 1; id <= 10000; id++ {
		for _, tag := range []uint64{tagLuby, tagRandColor} {
			s := nodeSeed(42, id, tag)
			if seen[s] {
				t.Fatalf("seed collision at id=%d tag=%#x", id, tag)
			}
			seen[s] = true
		}
	}
}

// TestAlgorithmStreamsIndependent is the cross-algorithm half of the
// fix: with the same base seed, a node's first draws for Luby and for
// the randomized coloring must not track each other.
func TestAlgorithmStreamsIndependent(t *testing.T) {
	agree := 0
	const nodes = 2048
	for id := 1; id <= nodes; id++ {
		a := rand.New(rand.NewSource(nodeSeed(7, id, tagLuby))).Int63()
		b := rand.New(rand.NewSource(nodeSeed(7, id, tagRandColor))).Int63()
		if a&1 == b&1 {
			agree++
		}
	}
	if agree < nodes/2-300 || agree > nodes/2+300 {
		t.Errorf("first-draw parity agreement %d/%d, want near half", agree, nodes)
	}
}
