package baseline

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestProductGraphShape(t *testing.T) {
	g := graph.Path(3) // Delta = 2, k = 3
	product, idx, k := ProductGraph(g)
	if k != 3 {
		t.Fatalf("k = %d, want 3", k)
	}
	if product.N() != 9 {
		t.Fatalf("product has %d vertices, want 9", product.N())
	}
	// Per-vertex cliques: 3 * C(3,2) = 9 edges; same-color edges: 2 edges * 3 colors = 6.
	if product.M() != 9+6 {
		t.Fatalf("product has %d edges, want 15", product.M())
	}
	if !product.HasEdge(idx(0, 0), idx(0, 1)) {
		t.Error("clone clique edge missing")
	}
	if !product.HasEdge(idx(0, 2), idx(1, 2)) {
		t.Error("same-color conflict edge missing")
	}
	if product.HasEdge(idx(0, 0), idx(1, 1)) {
		t.Error("cross-color edge present")
	}
}

func TestLinialReductionColoring(t *testing.T) {
	rng := rand.New(rand.NewSource(810))
	for trial := 0; trial < 3; trial++ {
		g := graph.Gnp(80, 0.05, rng)
		res, err := LinialReductionColoring(g, int64(trial)+1)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := g.CheckLegalColoring(res.Colors); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if mc := graph.MaxColor(res.Colors); mc > g.MaxDegree() {
			t.Errorf("trial %d: color %d > Delta = %d", trial, mc, g.MaxDegree())
		}
	}
}

func TestLinialReductionOnStructured(t *testing.T) {
	cyc, err := graph.Cycle(9)
	if err != nil {
		t.Fatal(err)
	}
	for name, g := range map[string]*graph.Graph{
		"cycle":    cyc,
		"star":     graph.Star(12),
		"complete": graph.Complete(6),
		"single":   graph.NewBuilder(1).Build(),
	} {
		res, err := LinialReductionColoring(g, 5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := g.CheckLegalColoring(res.Colors); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if mc := graph.MaxColor(res.Colors); mc > g.MaxDegree() {
			t.Errorf("%s: color %d > Delta", name, mc)
		}
	}
}
