// Package baseline implements the comparison algorithms of the paper's
// Section 1 (related work): Luby's randomized MIS [22, 1], a randomized
// (Delta+1)-coloring in the style of Johansson [15], Cole-Vishkin
// 3-coloring of rooted forests [8], and the previous deterministic state
// of the art for bounded arboricity, the Barenboim-Elkin PODC'08 coloring
// (Lemma 2.2(1)) that the paper's own algorithms are measured against.
package baseline

import (
	"fmt"
	"math/rand"

	"repro/internal/dist"
)

// lubyAlgo implements Luby's MIS: in each two-round iteration every alive
// vertex draws a random value; strict local maxima (ties by identifier)
// join the MIS and announce it; vertices hearing an announcement drop out.
// O(log n) iterations with high probability.
type lubyAlgo struct {
	seed int64
}

type lubyValue struct {
	X  int64
	ID int
}

type lubyJoin struct{}

type lubyState struct {
	rng    *rand.Rand
	myVal  lubyValue
	joined bool
}

func (a lubyAlgo) Init(n *dist.Node) {
	st := &lubyState{rng: rand.New(rand.NewSource(nodeSeed(a.seed, n.ID(), tagLuby)))}
	n.State = st
	st.myVal = lubyValue{X: st.rng.Int63(), ID: n.ID()}
	n.SendAll(st.myVal)
}

func (a lubyAlgo) Step(n *dist.Node, inbox []dist.Message) {
	st := n.State.(*lubyState)
	if n.Round()%2 == 0 {
		// Even rounds carry JOIN announcements (and nothing else).
		for _, m := range inbox {
			if m == nil {
				continue
			}
			if _, isJoin := m.(lubyJoin); isJoin {
				n.Output = false
				n.Halt()
				return
			}
		}
		// Survived: draw a fresh value for the next iteration.
		st.myVal = lubyValue{X: st.rng.Int63(), ID: n.ID()}
		n.SendAll(st.myVal)
		return
	}
	// Odd rounds carry values: check local maximality among alive
	// neighbors (silent ports mean dead neighbors).
	win := true
	for _, m := range inbox {
		if m == nil {
			continue
		}
		v, ok := m.(lubyValue)
		if !ok {
			continue
		}
		if v.X > st.myVal.X || (v.X == st.myVal.X && v.ID > st.myVal.ID) {
			win = false
			break
		}
	}
	if win {
		st.joined = true
		n.Output = true
		n.SendAll(lubyJoin{})
		n.Halt()
	}
}

// LubyResult reports a Luby MIS run.
type LubyResult struct {
	InMIS    []bool
	Rounds   int
	Messages int64
}

// LubyMIS runs Luby's randomized MIS. The seed makes runs reproducible;
// per-node randomness is derived from (seed, id, algorithm tag) through
// a splitmix64 finalizer, so streams are independent across nodes and
// across the randomized baselines sharing a seed.
func LubyMIS(net *dist.Network, seed int64) (*LubyResult, error) {
	res, err := net.Run(lubyAlgo{seed: seed}, dist.RunOptions{})
	if err != nil {
		return nil, err
	}
	inMIS := make([]bool, net.Graph().N())
	for v, o := range res.Outputs {
		b, ok := o.(bool)
		if !ok {
			return nil, fmt.Errorf("baseline: vertex %d output %T", v, o)
		}
		inMIS[v] = b
	}
	return &LubyResult{InMIS: inMIS, Rounds: res.Rounds, Messages: res.Messages}, nil
}
