package baseline

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/graph"
)

// Linial's classical reduction (Section 1.1 of the paper, [20]): an MIS
// algorithm yields a (Delta+1)-coloring in the same running time. Build the
// product graph G x K_{Delta+1} - one clone (v, c) per vertex and candidate
// color, with clone cliques per vertex and edges between same-color clones
// of adjacent vertices - and compute an MIS on it. Maximality forces
// exactly one chosen clone per vertex (a vertex has at most Delta
// neighbors, so at most Delta of its Delta+1 clones are blocked), and
// independence makes the chosen colors legal.
//
// Each real node simulates its Delta+1 clones, so the distributed running
// time equals the MIS time on the product (whose size is n*(Delta+1)).

// ProductGraph returns G x K_{Delta+1} and the clone indexer.
func ProductGraph(g *graph.Graph) (*graph.Graph, func(v, c int) int, int) {
	delta := g.MaxDegree()
	k := delta + 1
	idx := func(v, c int) int { return v*k + c }
	b := graph.NewBuilder(g.N() * k)
	for v := 0; v < g.N(); v++ {
		// Clone clique of v.
		for c1 := 0; c1 < k; c1++ {
			for c2 := c1 + 1; c2 < k; c2++ {
				_ = b.AddEdge(idx(v, c1), idx(v, c2))
			}
		}
		// Same-color conflicts with neighbors.
		for _, u := range g.Neighbors(v) {
			if u > v {
				for c := 0; c < k; c++ {
					_ = b.AddEdge(idx(v, c), idx(u, c))
				}
			}
		}
	}
	return b.Build(), idx, k
}

// LinialReductionColoring computes a (Delta+1)-coloring of g by running
// Luby's MIS on the product graph (the reduction composes with any MIS
// algorithm; Luby keeps the demonstration fast). Rounds reported are the
// MIS rounds on the product - the reduction's running time.
func LinialReductionColoring(g *graph.Graph, seed int64) (*RandColorResult, error) {
	product, idx, k := ProductGraph(g)
	pnet := dist.NewNetwork(product)
	mis, err := LubyMIS(pnet, seed)
	if err != nil {
		return nil, err
	}
	colors := make([]int, g.N())
	for v := range colors {
		colors[v] = -1
		for c := 0; c < k; c++ {
			if mis.InMIS[idx(v, c)] {
				if colors[v] >= 0 {
					return nil, fmt.Errorf("baseline: vertex %d chose two colors", v)
				}
				colors[v] = c
			}
		}
		if colors[v] < 0 {
			return nil, fmt.Errorf("baseline: vertex %d chose no color (MIS not maximal?)", v)
		}
	}
	return &RandColorResult{Colors: colors, Rounds: mis.Rounds, Messages: mis.Messages}, nil
}
