package baseline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/forest"
	"repro/internal/graph"
)

func TestLubyMISCorrectAndFast(t *testing.T) {
	rng := rand.New(rand.NewSource(800))
	for trial := 0; trial < 5; trial++ {
		g := graph.Gnp(300, 0.03, rng)
		net := dist.NewNetworkPermuted(g, rng)
		res, err := LubyMIS(net, int64(trial)+1)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.CheckMIS(res.InMIS); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// O(log n) w.h.p.; generous constant.
		if lim := 20 * int(math.Log2(float64(g.N()))); res.Rounds > lim {
			t.Errorf("trial %d: %d rounds > %d", trial, res.Rounds, lim)
		}
	}
}

func TestLubyMISEdgeCases(t *testing.T) {
	// Singleton, empty graph, complete graph.
	for name, g := range map[string]*graph.Graph{
		"single":   graph.NewBuilder(1).Build(),
		"empty":    graph.NewBuilder(5).Build(),
		"complete": graph.Complete(7),
		"star":     graph.Star(20),
	} {
		net := dist.NewNetwork(g)
		res, err := LubyMIS(net, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := g.CheckMIS(res.InMIS); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestLubyDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(801))
	g := graph.Gnp(100, 0.05, rng)
	net := dist.NewNetwork(g)
	a, err := LubyMIS(net, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LubyMIS(net, 42)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.InMIS {
		if a.InMIS[v] != b.InMIS[v] {
			t.Fatal("same seed, different MIS")
		}
	}
}

func TestRandomizedColoring(t *testing.T) {
	rng := rand.New(rand.NewSource(802))
	for trial := 0; trial < 5; trial++ {
		g := graph.Gnp(250, 0.04, rng)
		net := dist.NewNetworkPermuted(g, rng)
		res, err := RandomizedColoring(net, int64(trial)+7)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.CheckLegalColoring(res.Colors); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if mc := graph.MaxColor(res.Colors); mc > g.MaxDegree() {
			t.Errorf("trial %d: color %d > Delta", trial, mc)
		}
		if lim := 24 * int(math.Log2(float64(g.N()))); res.Rounds > lim {
			t.Errorf("trial %d: %d rounds > %d", trial, res.Rounds, lim)
		}
	}
}

// randomRootedTree returns a random tree plus its parentOf array.
func randomRootedTree(n int, rng *rand.Rand) (*graph.Graph, []int) {
	parentOf := make([]int, n)
	parentOf[0] = -1
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		p := rng.Intn(v)
		parentOf[v] = p
		_ = b.AddEdge(v, p)
	}
	return b.Build(), parentOf
}

func TestColeVishkinForest(t *testing.T) {
	rng := rand.New(rand.NewSource(803))
	for _, n := range []int{1, 2, 6, 7, 50, 500, 5000} {
		g, parentOf := randomRootedTree(n, rng)
		net := dist.NewNetworkPermuted(g, rng)
		res, err := ColeVishkinForest(net, parentOf)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := g.CheckLegalColoring(res.Colors); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if mc := graph.MaxColor(res.Colors); mc > 2 {
			t.Errorf("n=%d: max color %d > 2", n, mc)
		}
		if lim := graph.LogStar(n) + 12; res.Rounds > lim {
			t.Errorf("n=%d: %d rounds > log* + 12 = %d", n, res.Rounds, lim)
		}
	}
}

func TestColeVishkinPath(t *testing.T) {
	// A path rooted at one end: the paper's canonical oriented-ring-like
	// case.
	n := 1000
	g := graph.Path(n)
	parentOf := make([]int, n)
	parentOf[0] = -1
	for v := 1; v < n; v++ {
		parentOf[v] = v - 1
	}
	net := dist.NewNetwork(g)
	res, err := ColeVishkinForest(net, parentOf)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckLegalColoring(res.Colors); err != nil {
		t.Fatal(err)
	}
	if graph.MaxColor(res.Colors) > 2 {
		t.Error("more than 3 colors on a path")
	}
}

func TestColeVishkinValidation(t *testing.T) {
	g := graph.Path(3)
	net := dist.NewNetwork(g)
	if _, err := ColeVishkinForest(net, []int{-1, 0}); err == nil {
		t.Error("short parentOf accepted")
	}
	if _, err := ColeVishkinForest(net, []int{-1, 0, 0}); err == nil {
		t.Error("non-neighbor parent accepted")
	}
}

func TestCVIterationsMonotone(t *testing.T) {
	if cvIterations(5) != 0 {
		t.Error("small n should need 0 reduction rounds")
	}
	prev := 0
	for _, n := range []int{10, 100, 10000, 1 << 30} {
		it := cvIterations(n)
		if it < prev {
			t.Errorf("cvIterations not monotone at %d", n)
		}
		prev = it
	}
	if it := cvIterations(1 << 30); it > graph.LogStar(1<<30)+4 {
		t.Errorf("cvIterations(2^30) = %d too large", it)
	}
}

func TestBE08Coloring(t *testing.T) {
	rng := rand.New(rand.NewSource(804))
	for _, a := range []int{2, 5} {
		g := graph.ForestUnion(400, a, rng)
		net := dist.NewNetworkPermuted(g, rng)
		res, err := BE08Coloring(net, a, forest.DefaultEps)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.CheckLegalColoring(res.Colors); err != nil {
			t.Fatalf("a=%d: %v", a, err)
		}
		if mc := graph.MaxColor(res.Colors); mc >= res.Palette {
			t.Errorf("a=%d: color %d outside palette %d", a, mc, res.Palette)
		}
		if res.Palette != forest.DefaultEps.Threshold(a)+1 {
			t.Errorf("a=%d: palette %d", a, res.Palette)
		}
	}
}
