package baseline

// Per-node RNG stream derivation shared by the randomized baselines.
//
// The seed implementations derived node streams as seed ^ id*C with a
// different odd constant C per algorithm. That leaves the low bits
// correlated across nodes (bit k of id*C depends only on bits <= k of
// id, so e.g. bit 0 simply alternates with the node id) and couples the
// streams of different algorithms run with the same base seed. Instead,
// every (seed, algorithm, id) triple now passes through a splitmix64
// finalizer chain, whose output bits are uniformly mixed functions of
// the whole input.

// Distinct per-algorithm tags keep streams independent across algorithms
// sharing a base seed.
const (
	tagLuby      = 0x4c7562794d495331 // "LubyMIS1"
	tagRandColor = 0x52616e64436f6c31 // "RandCol1"
)

// mix64 is the splitmix64 finalizer (Steele, Lea, Flood, "Fast
// Splittable Pseudorandom Number Generators", OOPSLA'14).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// nodeSeed derives the RNG seed of the node with the given LOCAL-model
// identifier for one algorithm run.
func nodeSeed(seed int64, id int, tag uint64) int64 {
	return int64(mix64(mix64(uint64(seed)^tag) + uint64(id)))
}
