package baseline

import (
	"fmt"
	"math/bits"

	"repro/internal/dist"
)

// Cole-Vishkin 3-coloring of rooted forests [8]: starting from identifier
// colors, every iteration replaces a vertex's color by (2i + b) where i is
// the lowest bit position at which its color differs from its parent's and
// b is the vertex's bit there; the color-space size K shrinks to
// 2*ceil(log2 K) per round, reaching 6 after log* n + O(1) rounds. Three
// shift-down/recolor iterations then eliminate colors 5, 4 and 3.

// cvIterations returns the number of bit-reduction rounds needed to bring
// identifier colors in [0, n] down to [0, 6), identically computable by
// every node from n.
func cvIterations(n int) int {
	k := n + 1
	if k < 7 {
		return 0
	}
	count := 0
	for k > 6 {
		k = 2 * bits.Len(uint(k-1))
		count++
		if count > 64 {
			break
		}
	}
	return count
}

type cvInput struct {
	ParentPort int // -1 for roots
}

type cvState struct {
	color   int
	reduceT int
	// elimination bookkeeping
	oldColor int // color sent in the current elimination's first round
	shifted  int
}

type cvAlgo struct{}

func (cvAlgo) Init(n *dist.Node) {
	in, ok := n.Input.(cvInput)
	if !ok {
		n.Failf("baseline: bad cole-vishkin input %T", n.Input)
		return
	}
	if in.ParentPort >= n.Degree() {
		n.Failf("baseline: parent port %d out of range", in.ParentPort)
		return
	}
	st := &cvState{color: n.ID() - 1, reduceT: cvIterations(n.N())}
	n.State = st
	n.SendAll(st.color)
}

// fakeParentColor gives roots an imaginary parent color differing from
// their own.
func fakeParentColor(c int) int {
	if c == 0 {
		return 1
	}
	return 0
}

func (cvAlgo) Step(n *dist.Node, inbox []dist.Message) {
	in := n.Input.(cvInput)
	st := n.State.(*cvState)

	parentColor := func() int {
		if in.ParentPort >= 0 && inbox[in.ParentPort] != nil {
			return inbox[in.ParentPort].(int)
		}
		return fakeParentColor(st.color)
	}

	r := n.Round()
	if r <= st.reduceT {
		// Bit-reduction round.
		pc := parentColor()
		diff := st.color ^ pc
		i := bits.TrailingZeros(uint(diff))
		st.color = 2*i + (st.color>>i)&1
		n.SendAll(st.color)
		return
	}

	// Elimination iterations for target colors 5, 4, 3: two rounds each.
	elim := r - st.reduceT - 1 // 0-based round index within eliminations
	target := 5 - elim/2
	if elim%2 == 0 {
		// Shift-down: adopt the parent's announced color; roots pick a
		// fresh color differing from their own (hence from their
		// children's new color).
		st.oldColor = st.color
		if in.ParentPort >= 0 {
			st.shifted = parentColor()
		} else {
			// Roots pick a fresh color from {0,1,2} differing from their
			// current one, so no eliminated color is ever reintroduced.
			st.shifted = 0
			if st.color == 0 {
				st.shifted = 1
			}
		}
		st.color = st.shifted
		n.SendAll(st.color)
		return
	}
	// Recolor round: vertices holding the target color choose from
	// {0,1,2} avoiding the parent's shifted color and the children's
	// shifted color (= own pre-shift color).
	if st.color == target {
		pc := parentColor()
		for c := 0; c < 3; c++ {
			if c != pc && c != st.oldColor {
				st.color = c
				break
			}
		}
	}
	if target == 3 {
		n.Output = st.color
		n.Halt()
		return
	}
	n.SendAll(st.color)
}

// CVResult reports a Cole-Vishkin run.
type CVResult struct {
	Colors []int
	Rounds int
}

// ColeVishkinForest 3-colors a rooted forest in O(log* n) rounds.
// parentOf[v] is v's parent vertex or -1 for roots; every (v, parentOf[v])
// pair must be an edge, and the parent relation must be acyclic with
// out-degree one (a rooted forest). Non-forest edges must not exist.
func ColeVishkinForest(net *dist.Network, parentOf []int) (*CVResult, error) {
	g := net.Graph()
	if len(parentOf) != g.N() {
		return nil, fmt.Errorf("baseline: parentOf has %d entries for %d vertices", len(parentOf), g.N())
	}
	inputs := make([]any, g.N())
	for v := 0; v < g.N(); v++ {
		port := -1
		if p := parentOf[v]; p >= 0 {
			port = g.PortOf(v, p)
			if port < 0 {
				return nil, fmt.Errorf("baseline: parent %d of %d is not a neighbor", p, v)
			}
		}
		inputs[v] = cvInput{ParentPort: port}
	}
	res, err := net.Run(cvAlgo{}, dist.RunOptions{Inputs: inputs})
	if err != nil {
		return nil, err
	}
	colors := make([]int, g.N())
	for v, o := range res.Outputs {
		switch x := o.(type) {
		case int:
			colors[v] = x
		case error:
			return nil, fmt.Errorf("baseline: vertex %d: %w", v, x)
		default:
			return nil, fmt.Errorf("baseline: vertex %d output %T", v, o)
		}
	}
	return &CVResult{Colors: colors, Rounds: res.Rounds}, nil
}
