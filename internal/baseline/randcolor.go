package baseline

import (
	"fmt"
	"math/rand"

	"repro/internal/dist"
)

// randColorAlgo is the randomized (Delta+1)-coloring in the style of
// Johansson [15] / the folklore trial-based algorithm: every undecided
// vertex proposes a uniformly random color from its remaining palette;
// a proposal is kept when no undecided neighbor proposed the same color
// (identifier priority breaks ties). Decided colors are announced and
// removed from neighbors' palettes. O(log n) iterations w.h.p.
type randColorAlgo struct {
	seed    int64
	palette int
}

type rcPropose struct {
	C  int
	ID int
}

type rcFinal struct {
	C int
}

type rcState struct {
	rng      *rand.Rand
	taken    map[int]bool
	proposal int
}

func (a randColorAlgo) Init(n *dist.Node) {
	st := &rcState{
		rng:   rand.New(rand.NewSource(nodeSeed(a.seed, n.ID(), tagRandColor))),
		taken: make(map[int]bool),
	}
	n.State = st
	st.propose(a, n)
}

func (st *rcState) propose(a randColorAlgo, n *dist.Node) {
	// Draw uniformly from the free palette.
	free := make([]int, 0, a.palette)
	for c := 0; c < a.palette; c++ {
		if !st.taken[c] {
			free = append(free, c)
		}
	}
	if len(free) == 0 {
		// Impossible when palette > degree; defensive.
		n.Failf("baseline: palette exhausted")
		return
	}
	st.proposal = free[st.rng.Intn(len(free))]
	n.SendAll(rcPropose{C: st.proposal, ID: n.ID()})
}

func (a randColorAlgo) Step(n *dist.Node, inbox []dist.Message) {
	st := n.State.(*rcState)
	if n.Round()%2 == 1 {
		// Proposal round results: keep the color unless an undecided
		// neighbor with priority proposed the same one.
		keep := true
		for _, m := range inbox {
			if m == nil {
				continue
			}
			if p, ok := m.(rcPropose); ok && p.C == st.proposal && p.ID > n.ID() {
				keep = false
			}
		}
		if keep {
			n.Output = st.proposal
			n.SendAll(rcFinal{C: st.proposal})
			n.Halt()
		}
		return
	}
	// Announcement round: record finalized neighbor colors, then repropose.
	for _, m := range inbox {
		if m == nil {
			continue
		}
		if f, ok := m.(rcFinal); ok {
			st.taken[f.C] = true
		}
	}
	st.propose(a, n)
}

// RandColorResult reports a randomized coloring run.
type RandColorResult struct {
	Colors   []int
	Rounds   int
	Messages int64
}

// RandomizedColoring runs the trial-based (Delta+1)-coloring.
func RandomizedColoring(net *dist.Network, seed int64) (*RandColorResult, error) {
	palette := net.Graph().MaxDegree() + 1
	res, err := net.Run(randColorAlgo{seed: seed, palette: palette}, dist.RunOptions{})
	if err != nil {
		return nil, err
	}
	colors := make([]int, net.Graph().N())
	for v, o := range res.Outputs {
		switch x := o.(type) {
		case int:
			colors[v] = x
		case error:
			return nil, fmt.Errorf("baseline: vertex %d: %w", v, x)
		default:
			return nil, fmt.Errorf("baseline: vertex %d output %T", v, o)
		}
	}
	return &RandColorResult{Colors: colors, Rounds: res.Rounds, Messages: res.Messages}, nil
}
