package baseline

import (
	"repro/internal/dist"
	"repro/internal/forest"
	"repro/internal/orient"
)

// BE08Result reports a run of the PODC'08 coloring baseline.
type BE08Result struct {
	Colors  []int
	Palette int
	Tally   *dist.Tally
}

// BE08Coloring is the previous deterministic state of the art for graphs
// of bounded arboricity (Lemma 2.2(1), Barenboim-Elkin PODC'08): a legal
// (floor((2+eps)a)+1)-coloring in O(a log n) rounds, realized as Procedure
// Complete-Orientation (with (Delta+1)-colored levels, so the orientation
// length is O(a log n)) followed by the wait-for-parents greedy coloring.
//
// This is the baseline the paper's Legal-Coloring is measured against:
// same O(a) color count, but Theta(a log n) rounds instead of
// O(a^mu log n).
func BE08Coloring(net *dist.Network, a int, eps forest.Eps) (*BE08Result, error) {
	if eps == (forest.Eps{}) {
		eps = forest.DefaultEps
	}
	var tally dist.Tally
	co, err := orient.Complete(net, a, eps, orient.LevelDeltaPlusOne, nil, nil)
	if err != nil {
		return nil, err
	}
	tally.Merge(co.Tally)
	palette := eps.Threshold(a) + 1
	net.Probe().SetPhase("be08/greedy")
	wc, err := forest.WaitColor(net, co.Sigma, palette, forest.RuleFirstFree, nil, nil)
	if err != nil {
		return nil, err
	}
	tally.AddStats("greedy", wc.Stats())
	return &BE08Result{Colors: wc.Colors, Palette: palette, Tally: &tally}, nil
}
