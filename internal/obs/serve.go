package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"repro/internal/dist"
	"repro/internal/field"
)

// The live-introspection endpoint: a private mux (the default
// http.DefaultServeMux stays untouched) exposing
//
//	/debug/vars        - expvar JSON, including the published probe
//	                     totals and eval-stat snapshot below
//	/debug/pprof/...   - the standard runtime profiles
//
// Publish* register into the process-global expvar namespace, which
// forbids duplicate names; a sync.Once per name keeps repeated pipeline
// invocations in one process safe.

var (
	publishEvalOnce  sync.Once
	publishProbeOnce sync.Once
	probeMu          sync.Mutex
	probeVar         *dist.Probe
)

// PublishEvalStats exposes the field-evaluation counters as the expvar
// "coloring.evals": a JSON array snapshot recomputed per scrape.
func PublishEvalStats() {
	publishEvalOnce.Do(func() {
		expvar.Publish("coloring.evals", expvar.Func(func() any {
			return field.EvalStatsSnapshot()
		}))
	})
}

// PublishProbe exposes p's running totals as the expvar
// "coloring.probe". Later calls swap the probe being scraped (the
// expvar name persists process-wide).
func PublishProbe(p *dist.Probe) {
	probeMu.Lock()
	probeVar = p
	probeMu.Unlock()
	publishProbeOnce.Do(func() {
		expvar.Publish("coloring.probe", expvar.Func(func() any {
			probeMu.Lock()
			cur := probeVar
			probeMu.Unlock()
			if cur == nil {
				return nil
			}
			return cur.Totals()
		}))
	})
}

// Serve starts the introspection endpoint on addr (e.g. ":6060" or
// "127.0.0.1:0"), returning the bound listener address. The server runs
// on a background goroutine for the life of the process; it exists for
// -serve runs that want live scraping, not graceful shutdown.
func Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: serve: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{
			"vars":  "/debug/vars",
			"pprof": "/debug/pprof/",
		})
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
