package obs

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/field"
	"repro/internal/graph"
)

// flood is a minimal multi-round algorithm for driving the probe.
type flood struct{ rounds int }

func (f flood) Init(n *dist.Node) { n.SendAll(0) }
func (f flood) Step(n *dist.Node, inbox []dist.Message) {
	if n.Round() >= f.rounds {
		n.Output = n.Round()
		n.Halt()
		return
	}
	n.SendAll(n.Round())
}

// TestTraceRoundTrip drives a probed run through the JSONL writer and
// back through the reader, checking the decoded records match the
// engine's result and the evals snapshot survives.
func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	p := dist.NewProbe(tw)

	rng := rand.New(rand.NewSource(17))
	g := graph.ForestUnion(200, 3, rng)
	net := dist.NewNetworkPermuted(g, rng).WithProbe(p)
	p.SetPhase("test/flood")
	res, err := net.Run(flood{rounds: 5}, dist.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	evals := []field.EvalStat{{Step: 0, Q: 11, D: 2, Hits: 100, Fallbacks: 3}}
	tw.WriteEvalStats(evals)
	rounds, runs := tw.Counts()
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if rounds != int64(res.Rounds) || runs != 1 {
		t.Fatalf("writer counted %d rounds / %d runs, want %d / 1", rounds, runs, res.Rounds)
	}

	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Rounds) != res.Rounds || len(tr.Runs) != 1 {
		t.Fatalf("decoded %d rounds / %d runs, want %d / 1", len(tr.Rounds), len(tr.Runs), res.Rounds)
	}
	var sum int64
	for _, r := range tr.Rounds {
		sum += r.Messages
	}
	if sum != res.Messages {
		t.Fatalf("decoded messages sum to %d, want %d", sum, res.Messages)
	}
	run := tr.Runs[0]
	if run.Phase != "test/flood" || run.Rounds != res.Rounds || run.Messages != res.Messages {
		t.Fatalf("decoded run record %+v disagrees with result", run)
	}
	if len(tr.Evals) != 1 || tr.Evals[0] != evals[0] {
		t.Fatalf("evals snapshot did not round-trip: %+v", tr.Evals)
	}
}

// TestSummarize pins the per-phase aggregation: runs joined to rounds by
// sequence number, message and wall totals, cache-hit counts.
func TestSummarize(t *testing.T) {
	tr := &Trace{
		Runs: []dist.RunRecord{
			{Run: 1, Phase: "a", Rounds: 2, Messages: 10, PeakLive: 100, ComputeNS: 1000, SetupNS: 100},
			{Run: 2, Phase: "b", Rounds: 1, Messages: 5, PeakLive: 50, TopoCached: true, ScratchPooled: true},
			{Run: 3, Phase: "a", Rounds: 1, Messages: 2, PeakLive: 80, TopoCached: true, Err: "boom"},
		},
		Rounds: []dist.RoundRecord{
			{Run: 1, Round: 1, Live: 100, Messages: 7, MaxChunkNS: 30, MeanChunkNS: 10},
			{Run: 1, Round: 2, Live: 40, Messages: 3, MaxChunkNS: 10, MeanChunkNS: 10},
			{Run: 2, Round: 1, Live: 50, Messages: 5},
			{Run: 3, Round: 1, Live: 80, Messages: 2},
		},
	}
	phases := Summarize(tr)
	if len(phases) != 2 {
		t.Fatalf("%d phases, want 2", len(phases))
	}
	a, b := phases[0], phases[1]
	if a.Phase != "a" || b.Phase != "b" {
		t.Fatalf("phase order %q, %q; want a, b", a.Phase, b.Phase)
	}
	if a.Runs != 2 || a.Rounds != 3 || a.Messages != 12 {
		t.Fatalf("phase a totals %+v", a)
	}
	if a.PeakLive != 100 || a.LastLive != 80 {
		t.Fatalf("phase a live figures %+v", a)
	}
	if a.MaxImbalance != 3.0 {
		t.Fatalf("phase a imbalance %v, want 3.0", a.MaxImbalance)
	}
	if a.TopoHits != 1 || a.Errs != 1 {
		t.Fatalf("phase a cache/err counts %+v", a)
	}
	if b.ScratchHits != 1 || b.MsgsPerRound != 5 {
		t.Fatalf("phase b %+v", b)
	}

	var out strings.Builder
	if err := Table(&out, phases); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "a") || !strings.Contains(out.String(), "PHASE") {
		t.Fatalf("table output missing content:\n%s", out.String())
	}
}

// TestSummarizeShards pins the per-shard aggregation and its round trip
// through the JSONL envelope: a sharded probed run's shard stats must
// survive encode/decode and sum consistently per shard index.
func TestSummarizeShards(t *testing.T) {
	tr := &Trace{
		Rounds: []dist.RoundRecord{
			{Run: 1, Round: 1, Live: 5, Messages: 9, Shards: []dist.ShardRoundStat{
				{Live: 3, Messages: 6, WallNS: 300},
				{Live: 2, Messages: 3, WallNS: 100},
			}},
			{Run: 1, Round: 2, Live: 2, Messages: 4, Shards: []dist.ShardRoundStat{
				{Live: 2, Messages: 4, WallNS: 200},
				{Live: 0, Messages: 0, WallNS: 0},
			}},
		},
	}
	shards := SummarizeShards(tr)
	if len(shards) != 2 {
		t.Fatalf("%d shard summaries, want 2", len(shards))
	}
	s0, s1 := shards[0], shards[1]
	if s0.Rounds != 2 || s0.PeakLive != 3 || s0.Messages != 10 || s0.Wall != 500 {
		t.Fatalf("shard 0 summary %+v", s0)
	}
	if s1.Rounds != 1 || s1.PeakLive != 2 || s1.Messages != 3 || s1.Wall != 100 {
		t.Fatalf("shard 1 summary %+v", s1)
	}
	if want := 500.0 / 600.0; s0.WallShare != want {
		t.Fatalf("shard 0 wall share %v, want %v", s0.WallShare, want)
	}
	var out strings.Builder
	if err := ShardTable(&out, shards); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "SHARD") || !strings.Contains(out.String(), "WALL-SHARE") {
		t.Fatalf("shard table missing content:\n%s", out.String())
	}
	// Flat traces summarize to nothing.
	if got := SummarizeShards(&Trace{Rounds: []dist.RoundRecord{{Run: 1, Round: 1}}}); got != nil {
		t.Fatalf("flat trace produced shard summaries: %+v", got)
	}
}

// TestShardStatsRoundTrip drives a sharded probed run through the JSONL
// writer and reader, checking the per-shard round stats survive.
func TestShardStatsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	p := dist.NewProbe(tw)

	rng := rand.New(rand.NewSource(23))
	g := graph.ForestUnion(200, 3, rng)
	sh, err := graph.NewSharding(g.N(), 4)
	if err != nil {
		t.Fatal(err)
	}
	net, err := dist.NewNetworkPermuted(g, rng).Sharded(sh)
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.WithProbe(p).Run(flood{rounds: 5}, dist.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Runs) != 1 || tr.Runs[0].Shards != 4 {
		t.Fatalf("decoded run shards %+v", tr.Runs)
	}
	var total int64
	for _, r := range tr.Rounds {
		if len(r.Shards) != 4 {
			t.Fatalf("round %d decoded %d shard stats", r.Round, len(r.Shards))
		}
		var live int
		var msgs int64
		for _, ss := range r.Shards {
			live += ss.Live
			msgs += ss.Messages
		}
		if live != r.Live || msgs != r.Messages {
			t.Fatalf("round %d shard stats inconsistent after decode", r.Round)
		}
		total += msgs
	}
	if total != res.Messages {
		t.Fatalf("decoded shard messages sum to %d, want %d", total, res.Messages)
	}
}

// TestReadTraceSkipsUnknownTypes pins forward compatibility.
func TestReadTraceSkipsUnknownTypes(t *testing.T) {
	in := strings.NewReader(
		`{"t":"future","x":1}` + "\n" +
			`{"t":"round","run":1,"round":1,"live":2,"messages":4}` + "\n")
	tr, err := ReadTrace(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Rounds) != 1 || tr.Rounds[0].Messages != 4 {
		t.Fatalf("decoded %+v", tr)
	}
}
