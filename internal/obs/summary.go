package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"repro/internal/dist"
	"repro/internal/field"
)

// Trace is a fully decoded JSONL trace.
type Trace struct {
	Rounds []dist.RoundRecord
	Runs   []dist.RunRecord
	Evals  []field.EvalStat
}

// ReadTrace decodes a JSONL trace stream. Unknown record types are
// skipped (forward compatibility); malformed lines are errors.
func ReadTrace(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var tag struct {
			T string `json:"t"`
		}
		if err := json.Unmarshal(line, &tag); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", lineNo, err)
		}
		switch tag.T {
		case "round":
			var rl roundLine
			if err := json.Unmarshal(line, &rl); err != nil {
				return nil, fmt.Errorf("obs: trace line %d: %w", lineNo, err)
			}
			tr.Rounds = append(tr.Rounds, rl.RoundRecord)
		case "run":
			var rl runLine
			if err := json.Unmarshal(line, &rl); err != nil {
				return nil, fmt.Errorf("obs: trace line %d: %w", lineNo, err)
			}
			tr.Runs = append(tr.Runs, rl.RunRecord)
		case "evals":
			var el evalsLine
			if err := json.Unmarshal(line, &el); err != nil {
				return nil, fmt.Errorf("obs: trace line %d: %w", lineNo, err)
			}
			tr.Evals = append(tr.Evals, el.Evals...)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: read trace: %w", err)
	}
	return tr, nil
}

// ReadTraceFile decodes the JSONL trace at path.
func ReadTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}

// PhaseSummary aggregates every run and round of one orchestrator phase.
type PhaseSummary struct {
	// Phase is the orchestrator label ("" groups unlabeled runs).
	Phase string
	// Runs / Rounds / Messages are totals over the phase's engine runs.
	Runs     int
	Rounds   int
	Messages int64
	// Wall is the summed compute wall of the phase's runs; Setup the
	// summed simulation-assembly wall.
	Wall  time.Duration
	Setup time.Duration
	// PeakLive is the largest live-set any run started with; LastLive the
	// live count of the phase's final recorded round - together they show
	// the live-set decay the trace captured.
	PeakLive int
	LastLive int
	// MsgsPerRound is Messages / Rounds (0 when roundless).
	MsgsPerRound float64
	// MaxImbalance is the worst per-round max/mean chunk-time ratio
	// observed in the phase (1 = perfectly balanced, 0 = no multi-worker
	// rounds recorded).
	MaxImbalance float64
	// TopoHits / ScratchHits count runs that reused the session topology
	// cache / pooled scratch.
	TopoHits    int
	ScratchHits int
	// Errs counts aborted runs.
	Errs int
}

// Summarize joins round records to their runs by probe sequence number
// and aggregates per phase, in order of first appearance.
func Summarize(tr *Trace) []PhaseSummary {
	phaseOf := make(map[int64]string, len(tr.Runs))
	for _, r := range tr.Runs {
		phaseOf[r.Run] = r.Phase
	}
	idx := make(map[string]int)
	var out []PhaseSummary
	get := func(phase string) *PhaseSummary {
		i, ok := idx[phase]
		if !ok {
			i = len(out)
			idx[phase] = i
			out = append(out, PhaseSummary{Phase: phase})
		}
		return &out[i]
	}
	for _, r := range tr.Runs {
		s := get(r.Phase)
		s.Runs++
		s.Rounds += r.Rounds
		s.Messages += r.Messages
		s.Wall += time.Duration(r.ComputeNS)
		s.Setup += time.Duration(r.SetupNS)
		if r.PeakLive > s.PeakLive {
			s.PeakLive = r.PeakLive
		}
		if r.TopoCached {
			s.TopoHits++
		}
		if r.ScratchPooled {
			s.ScratchHits++
		}
		if r.Err != "" {
			s.Errs++
		}
	}
	for _, r := range tr.Rounds {
		s := get(phaseOf[r.Run])
		s.LastLive = r.Live
		if r.MeanChunkNS > 0 {
			if ratio := float64(r.MaxChunkNS) / float64(r.MeanChunkNS); ratio > s.MaxImbalance {
				s.MaxImbalance = ratio
			}
		}
	}
	for i := range out {
		if out[i].Rounds > 0 {
			out[i].MsgsPerRound = float64(out[i].Messages) / float64(out[i].Rounds)
		}
	}
	return out
}

// Table renders the phase summaries as an aligned text table.
func Table(w io.Writer, phases []PhaseSummary) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "PHASE\tRUNS\tROUNDS\tMESSAGES\tMSGS/ROUND\tWALL\tSETUP\tPEAK-LIVE\tLAST-LIVE\tIMBAL\tCACHE\tERRS")
	for _, p := range phases {
		name := p.Phase
		if name == "" {
			name = "(unlabeled)"
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.1f\t%s\t%s\t%d\t%d\t%.2f\t%d/%d\t%d\n",
			name, p.Runs, p.Rounds, p.Messages, p.MsgsPerRound,
			p.Wall.Round(time.Microsecond), p.Setup.Round(time.Microsecond),
			p.PeakLive, p.LastLive, p.MaxImbalance, p.TopoHits, p.Runs, p.Errs)
	}
	return tw.Flush()
}

// ShardSummary aggregates one shard's slice of every sharded round in a
// trace: peak live nodes, total messages, and summed step wall. Shards
// are joined by index, so a trace mixing runs of different shard counts
// aggregates per position; the WallShare column is the shard's fraction
// of the summed step wall, the number to scan for imbalance.
type ShardSummary struct {
	Shard    int
	Rounds   int // rounds in which the shard held live nodes
	PeakLive int
	Messages int64
	Wall     time.Duration
	// WallShare is Wall divided by the total over all shards (0 when no
	// wall was recorded).
	WallShare float64
}

// SummarizeShards aggregates the per-shard round stats of a trace,
// returning nil when the trace carries none (flat runs).
func SummarizeShards(tr *Trace) []ShardSummary {
	var out []ShardSummary
	for _, r := range tr.Rounds {
		for j, ss := range r.Shards {
			for j >= len(out) {
				out = append(out, ShardSummary{Shard: len(out)})
			}
			s := &out[j]
			if ss.Live > 0 {
				s.Rounds++
			}
			if ss.Live > s.PeakLive {
				s.PeakLive = ss.Live
			}
			s.Messages += ss.Messages
			s.Wall += time.Duration(ss.WallNS)
		}
	}
	var total time.Duration
	for i := range out {
		total += out[i].Wall
	}
	if total > 0 {
		for i := range out {
			out[i].WallShare = float64(out[i].Wall) / float64(total)
		}
	}
	return out
}

// ShardTable renders the per-shard aggregates as an aligned text table.
func ShardTable(w io.Writer, shards []ShardSummary) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SHARD\tROUNDS\tPEAK-LIVE\tMESSAGES\tSTEP-WALL\tWALL-SHARE")
	for _, s := range shards {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%s\t%.3f\n",
			s.Shard, s.Rounds, s.PeakLive, s.Messages,
			s.Wall.Round(time.Microsecond), s.WallShare)
	}
	return tw.Flush()
}

// EvalTable renders the field-evaluation snapshot as an aligned table,
// sorted by total evaluations descending.
func EvalTable(w io.Writer, stats []field.EvalStat) error {
	sorted := append([]field.EvalStat(nil), stats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Total() > sorted[j].Total() })
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "STEP\tQ\tD\tEVALS\tROW-HITS\tBATCHED\tFALLBACKS\tHIT-RATE")
	for _, s := range sorted {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.4f\n",
			s.Step, s.Q, s.D, s.Total(), s.Hits, s.Batched, s.Fallbacks, s.HitRate())
	}
	return tw.Flush()
}
