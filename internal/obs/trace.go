// Package obs is the host-side observability surface of the coloring
// pipeline: a JSONL trace sink for the engine's dist.Probe records, a
// trace reader/summarizer for offline analysis (cmd/colortrace), and a
// live introspection endpoint (expvar + pprof) for long runs.
//
// The package deliberately sits outside internal/dist: the engine emits
// fixed-width records through the narrow dist.ProbeSink interface and
// never learns about JSON, files or HTTP.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/dist"
	"repro/internal/field"
)

// Line envelopes: every trace line is one JSON object whose "t" field
// names the record type, so readers can dispatch without trial decoding
// and the format can grow new record types without breaking old readers.
type roundLine struct {
	T string `json:"t"`
	dist.RoundRecord
}

type runLine struct {
	T string `json:"t"`
	dist.RunRecord
}

type evalsLine struct {
	T     string           `json:"t"`
	Evals []field.EvalStat `json:"evals"`
}

// TraceWriter is a dist.ProbeSink writing one JSON object per line:
// {"t":"round",...} per engine round, {"t":"run",...} per engine run,
// and optionally one {"t":"evals",...} snapshot of the field-evaluation
// counters. Writes are buffered and mutexed; the probe's single flusher
// goroutine and the owner's WriteEvalStats/Close may interleave safely.
type TraceWriter struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	c      io.Closer // non-nil when the writer owns the underlying file
	err    error
	rounds int64
	runs   int64
}

// NewTraceWriter wraps w. The caller keeps ownership of w; Close only
// flushes.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{bw: bufio.NewWriterSize(w, 1<<16)}
}

// CreateTrace creates (truncating) the trace file at path. Close flushes
// and closes the file.
func CreateTrace(path string) (*TraceWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: create trace: %w", err)
	}
	tw := NewTraceWriter(f)
	tw.c = f
	return tw, nil
}

// writeLine encodes one record under the mutex, remembering (and
// returning) the first error; once failed the writer stays failed.
func (t *TraceWriter) writeLine(v any) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	b, err := json.Marshal(v)
	if err != nil {
		t.err = err
		return t.err
	}
	if _, err := t.bw.Write(b); err != nil {
		t.err = err
		return t.err
	}
	t.err = t.bw.WriteByte('\n')
	return t.err
}

// FlushRounds implements dist.ProbeSink. The slice is reused by the
// probe after return; records are encoded before returning. The first
// write error is returned (the probe then stops flushing and surfaces it
// from its own Close) and sticks for Close here too.
func (t *TraceWriter) FlushRounds(recs []dist.RoundRecord) error {
	for _, r := range recs {
		if err := t.writeLine(roundLine{T: "round", RoundRecord: r}); err != nil {
			return err
		}
	}
	t.mu.Lock()
	t.rounds += int64(len(recs))
	t.mu.Unlock()
	return nil
}

// FlushRuns implements dist.ProbeSink.
func (t *TraceWriter) FlushRuns(recs []dist.RunRecord) error {
	for _, r := range recs {
		if err := t.writeLine(runLine{T: "run", RunRecord: r}); err != nil {
			return err
		}
	}
	t.mu.Lock()
	t.runs += int64(len(recs))
	t.mu.Unlock()
	return nil
}

// WriteEvalStats appends a field-evaluation snapshot line. Call it after
// the probe is Closed so the snapshot lands after every run it covers.
func (t *TraceWriter) WriteEvalStats(stats []field.EvalStat) {
	if len(stats) == 0 {
		return
	}
	t.writeLine(evalsLine{T: "evals", Evals: stats})
}

// Counts reports the number of round and run records written so far.
func (t *TraceWriter) Counts() (rounds, runs int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rounds, t.runs
}

// Close flushes the buffer (and closes the file when the writer owns
// one), returning the first error encountered anywhere in the writer's
// lifetime. Close the attached probe first: the probe's Close blocks
// until its flusher has delivered every record.
func (t *TraceWriter) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ferr := t.bw.Flush(); t.err == nil {
		t.err = ferr
	}
	if t.c != nil {
		if cerr := t.c.Close(); t.err == nil {
			t.err = cerr
		}
		t.c = nil
	}
	return t.err
}
