package distvet

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// enginePackages are the import-path suffixes of the packages whose
// execution must be deterministic and clock-free: the LOCAL-model engine
// and the pipeline phases that run inside it. The harness (cmd/*,
// internal/experiments, internal/obs) injects clocks and seeds from the
// outside; these packages may only receive them as values.
var enginePackages = []string{
	"internal/dist",
	"internal/recolor",
	"internal/forest",
	"internal/reduce",
	"internal/deltacolor",
	"internal/orient",
	"internal/field",
}

func isEnginePackage(path string) bool {
	for _, suffix := range enginePackages {
		if path == suffix || strings.HasSuffix(path, "/"+suffix) {
			return true
		}
	}
	return false
}

// DeterminismAnalyzer enforces the engine's determinism contract: results
// must be a pure function of (graph, identifiers, inputs), independent of
// wall clock, ambient randomness, worker count and map iteration order.
var DeterminismAnalyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: `forbid nondeterminism sources in engine packages

Inside the engine packages (internal/dist, recolor, forest, reduce,
deltacolor, orient, field) this analyzer flags:

  - calls to time.Now / time.Since, unless the site or its enclosing
    function carries //distvet:wallclock <why> (the sanctioned probe and
    tally timing sites; Result.Wall is explicitly non-deterministic);
  - any package-level use of math/rand or math/rand/v2 (using an
    injected *rand.Rand value is fine - the caller owns the seed; naming
    the package is not);
  - range over a map whose body feeds ordered output: message sends,
    appends to variables declared outside the loop, or writes through a
    positional index not derived from the iteration key. Annotate truly
    order-free iterations with //distvet:unordered <why>.`,
	Run: runDeterminism,
}

func runDeterminism(pass *analysis.Pass) error {
	if !isEnginePackage(pass.Pkg.Path()) {
		return nil
	}
	an := gatherAnnots(pass)
	for _, file := range pass.Files {
		// Walk per declaration so every node knows its enclosing function
		// (for function-level wallclock annotations).
		for _, decl := range file.Decls {
			fn, _ := decl.(*ast.FuncDecl)
			ast.Inspect(decl, func(node ast.Node) bool {
				switch n := node.(type) {
				case *ast.SelectorExpr:
					checkClockAndRand(pass, an, fn, n)
				case *ast.RangeStmt:
					checkMapRange(pass, an, n)
				}
				return true
			})
		}
	}
	return nil
}

// pkgQualified reports whether sel is a package-qualified reference
// pkg.Name to the package with the given import path, returning the
// referenced object.
func pkgQualified(pass *analysis.Pass, sel *ast.SelectorExpr, path string) (types.Object, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil, false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != path {
		return nil, false
	}
	return pass.TypesInfo.Uses[sel.Sel], true
}

func checkClockAndRand(pass *analysis.Pass, an *annots, fn *ast.FuncDecl, sel *ast.SelectorExpr) {
	if obj, ok := pkgQualified(pass, sel, "time"); ok {
		name := sel.Sel.Name
		if name != "Now" && name != "Since" {
			return
		}
		if a, ok := an.at(sel.Pos(), "wallclock"); ok {
			checkReason(pass, a)
			return
		}
		if fn != nil {
			if a, ok := funcAnnot(fn, "wallclock"); ok {
				checkReason(pass, a)
				return
			}
		}
		_ = obj
		pass.Reportf(sel.Pos(), "engine code reads the wall clock (time.%s); the harness injects the clock - annotate sanctioned probe/tally timing with //distvet:wallclock <why>", name)
		return
	}
	for _, randPath := range []string{"math/rand", "math/rand/v2"} {
		if obj, ok := pkgQualified(pass, sel, randPath); ok {
			if _, isType := obj.(*types.TypeName); isType {
				return // naming the rand.Rand type (an injected value) is fine
			}
			pass.Reportf(sel.Pos(), "engine code uses ambient randomness (%s.%s); randomness must be injected by the harness as a value", randPath, sel.Sel.Name)
			return
		}
	}
}

// sendNames are the Node methods that emit ordered output: messages and
// positional output-column writes.
var sendNames = map[string]bool{
	"Send": true, "SendAll": true,
	"SendWord": true, "SendWords": true, "SendAllWord": true,
	"SetOutputWord": true, "SetOutputWords": true,
}

func checkMapRange(pass *analysis.Pass, an *annots, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if a, ok := an.at(rng.Pos(), "unordered"); ok {
		checkReason(pass, a)
		return
	}
	// The iteration variables: writes indexed (only) by them are
	// per-key slots, hence order-independent.
	iterVars := make(map[types.Object]bool)
	for _, e := range [2]ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				iterVars[obj] = true
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				iterVars[obj] = true
			}
		}
	}
	declaredInside := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		if !ok {
			return false // selectors, indexes: conservatively outer state
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = pass.TypesInfo.Defs[id]
		}
		if obj == nil {
			return true
		}
		return obj.Pos() >= rng.Pos() && obj.Pos() < rng.End()
	}
	usesOnlyIterVars := func(e ast.Expr) bool {
		pure := true
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				obj := pass.TypesInfo.Uses[id]
				if obj == nil {
					return true
				}
				switch obj.(type) {
				case *types.Var:
					if !iterVars[obj] && !(obj.Pos() >= rng.Pos() && obj.Pos() < rng.End()) {
						pure = false
					}
				}
			}
			return true
		})
		return pure
	}

	ast.Inspect(rng.Body, func(node ast.Node) bool {
		switch n := node.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sendNames[sel.Sel.Name] {
				if _, isMethod := pass.TypesInfo.Selections[sel]; isMethod {
					pass.Reportf(n.Pos(), "map iteration feeds %s: message order would depend on map order; iterate a deterministic index instead", sel.Sel.Name)
				}
			}
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && len(n.Args) > 0 {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
					if root := rootExpr(n.Args[0]); root == nil || !declaredInside(root) {
						pass.Reportf(n.Pos(), "map iteration appends to a slice declared outside the loop: element order would depend on map order")
					}
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				ix, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				tv, ok := pass.TypesInfo.Types[ix.X]
				if !ok {
					continue
				}
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Array:
				default:
					continue // map/per-key writes are order-free
				}
				if root := rootExpr(ix.X); root != nil && declaredInside(root) {
					continue
				}
				if usesOnlyIterVars(ix.Index) {
					continue // out[k] = ...: each key owns its slot
				}
				pass.Reportf(n.Pos(), "map iteration writes through a positional index not derived from the key: slot contents would depend on map order")
			}
		}
		return true
	})
}

// rootExpr returns the root identifier of a chain of selector/index
// expressions, or nil when the base is not an identifier.
func rootExpr(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
