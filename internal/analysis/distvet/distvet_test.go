package distvet

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func testdata(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, testdata(t), DeterminismAnalyzer, "a/internal/recolor")
}

func TestDeterminismIgnoresNonEnginePackages(t *testing.T) {
	// The hotalloc fixture allocates and converts freely, but its path is
	// not an engine package: determinism must stay silent there (its want
	// comments belong to the hotalloc analyzer, so assert directly).
	pkgs, err := analysis.LoadFixture(testdata(t), "hotalloc")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	findings, err := analysis.Run(pkgs, []*analysis.Analyzer{DeterminismAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("determinism fired outside an engine package: %s", f)
	}
}

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, testdata(t), HotAllocAnalyzer, "hotalloc")
}

func TestWordIO(t *testing.T) {
	analysistest.Run(t, testdata(t), WordIOAnalyzer, "wordio")
}

func TestFailPath(t *testing.T) {
	analysistest.Run(t, testdata(t), FailPathAnalyzer, "failpath")
}

// TestRepoClean is the self-test the CI lint job mirrors: the module's
// own packages must carry zero diagnostics from the full suite.
func TestRepoClean(t *testing.T) {
	pkgs, err := analysis.Load("../../..", "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	findings, err := analysis.Run(pkgs, Analyzers())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Errorf("distvet: %d finding(s) in the repo; fix or annotate with a justification", len(findings))
	}
}
