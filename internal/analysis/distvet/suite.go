package distvet

import "repro/internal/analysis"

// Analyzers returns the full distvet suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		DeterminismAnalyzer,
		HotAllocAnalyzer,
		WordIOAnalyzer,
		FailPathAnalyzer,
	}
}
