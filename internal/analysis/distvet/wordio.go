package distvet

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// WordIOAnalyzer enforces the fixed-width message contract of the batch
// transport: a vertex program's declared widths (MessageWords,
// InputWidth, OutputWidth - the dist.FixedWidthAlgorithm /
// dist.WordIOAlgorithm shape) must be compile-time constants, and the
// width-bound dist.Node calls inside the program's methods must agree
// with the declaration:
//
//   - SendWord / SendAllWord require MessageWords() == 1;
//   - SetOutputWord requires OutputWidth() == 1;
//   - SetOutputWords(a, b, ...) with k explicit arguments requires
//     OutputWidth() == k.
//
// "Compile-time constant" means every return expression of a width
// method has a constant value (distinct constants per variant - e.g.
// PerPort for one flavor, 0 for another - are fine; the engine requires
// only that the width not depend on run-time state). Width methods whose
// variants disagree are excluded from call-site checking.
var WordIOAnalyzer = &analysis.Analyzer{
	Name: "wordio",
	Doc:  "check fixed-width vertex programs declare constant widths and use them consistently",
	Run:  runWordIO,
}

// widthMethods maps declared width method names to a short role label.
var widthMethods = map[string]string{
	"MessageWords": "message",
	"InputWidth":   "input",
	"OutputWidth":  "output",
}

func runWordIO(pass *analysis.Pass) error {
	// Pass 1: find width methods, check constancy, record the unique
	// constant width per (receiver type, method).
	type widthKey struct {
		recv   types.Object
		method string
	}
	widths := make(map[widthKey]int64)
	known := make(map[widthKey]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil {
				continue
			}
			if _, ok := widthMethods[fn.Name.Name]; !ok {
				continue
			}
			if !isWidthSignature(pass, fn) {
				continue
			}
			recv := recvTypeObj(pass, fn)
			if recv == nil {
				continue
			}
			uniform := true
			var value int64
			seen := false
			ast.Inspect(fn.Body, func(node ast.Node) bool {
				if _, ok := node.(*ast.FuncLit); ok {
					return false
				}
				ret, ok := node.(*ast.ReturnStmt)
				if !ok || len(ret.Results) != 1 {
					return true
				}
				tv, ok := pass.TypesInfo.Types[ret.Results[0]]
				if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
					pass.Reportf(ret.Pos(), "%s must return a compile-time constant width (the engine sizes columns from it before the run)", fn.Name.Name)
					uniform = false
					return true
				}
				v, _ := constant.Int64Val(tv.Value)
				if seen && v != value {
					uniform = false // per-variant constants: constant, but not call-site checkable
				}
				value, seen = v, true
				return true
			})
			if seen && uniform {
				k := widthKey{recv, fn.Name.Name}
				widths[k] = value
				known[k] = true
			}
		}
	}

	// Pass 2: check width-bound dist.Node call sites inside methods of
	// types with known widths.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil {
				continue
			}
			recv := recvTypeObj(pass, fn)
			if recv == nil {
				continue
			}
			msgW, hasMsgW := widths[widthKey{recv, "MessageWords"}], known[widthKey{recv, "MessageWords"}]
			outW, hasOutW := widths[widthKey{recv, "OutputWidth"}], known[widthKey{recv, "OutputWidth"}]
			if !hasMsgW && !hasOutW {
				continue
			}
			ast.Inspect(fn.Body, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !isNodeMethod(pass, sel) {
					return true
				}
				switch sel.Sel.Name {
				case "SendWord", "SendAllWord":
					if hasMsgW && msgW != 1 {
						pass.Reportf(call.Pos(), "%s sends a 1-word message but %s declares MessageWords() == %d (use SendWords)", sel.Sel.Name, recv.Name(), msgW)
					}
				case "SetOutputWord":
					if hasOutW && outW != 1 {
						pass.Reportf(call.Pos(), "SetOutputWord writes 1 word but %s declares OutputWidth() == %d (use SetOutputWords)", recv.Name(), outW)
					}
				case "SetOutputWords":
					if hasOutW && outW >= 0 && call.Ellipsis == 0 && int64(len(call.Args)) != outW {
						pass.Reportf(call.Pos(), "SetOutputWords writes %d words but %s declares OutputWidth() == %d", len(call.Args), recv.Name(), outW)
					}
				}
				return true
			})
		}
	}
	return nil
}

// isWidthSignature reports whether fn is `func() int`.
func isWidthSignature(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	obj, ok := pass.TypesInfo.Defs[fn.Name]
	if !ok {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	b, ok := sig.Results().At(0).Type().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int
}

// recvTypeObj returns the type object of a method's receiver base type.
func recvTypeObj(pass *analysis.Pass, fn *ast.FuncDecl) types.Object {
	if len(fn.Recv.List) != 1 {
		return nil
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Strip generic instantiations (T[P]).
	if ix, ok := t.(*ast.IndexExpr); ok {
		t = ix.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.TypesInfo.Uses[id]
}

// isNodeMethod reports whether sel selects a method on dist.Node (the
// engine's per-vertex handle), identified structurally: a named type
// Node from a package whose path ends in "internal/dist".
func isNodeMethod(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return false
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Node" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "internal/dist" || strings.HasSuffix(path, "/internal/dist")
}
