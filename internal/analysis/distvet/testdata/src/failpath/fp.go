// Package failpath exercises the failpath analyzer.
package failpath

import (
	"errors"
	"fmt"

	"internal/dist"
)

type algo struct{}

func (algo) Init(n *dist.Node) {
	n.Output = errors.New("boom") // want `error smuggled through Node\.Output`
}

func (algo) Step(n *dist.Node, inbox []dist.Message) {
	err := fmt.Errorf("vertex broke")
	n.Output = err // want `error smuggled through Node\.Output`
	n.Output = 3   // a non-error output is the normal result path
	n.Output = nil // clearing the slot is fine
	n.Fail(err)    // the first-class error path
	n.Failf("vertex %d broke", n.ID())
}

// notNode has an Output field too; assigning an error to it is fine -
// only dist.Node's slot feeds the engine's result decoding.
type notNode struct{ Output any }

func otherOutput(x *notNode) {
	x.Output = errors.New("unrelated")
}
