// Package failpath exercises the failpath analyzer.
package failpath

import (
	"errors"
	"fmt"

	"internal/dist"
)

type algo struct{}

func (algo) Init(n *dist.Node) {
	n.Output = errors.New("boom") // want `error smuggled through Node\.Output`
}

func (algo) Step(n *dist.Node, inbox []dist.Message) {
	err := fmt.Errorf("vertex broke")
	n.Output = err // want `error smuggled through Node\.Output`
	n.Output = 3   // a non-error output is the normal result path
	n.Output = nil // clearing the slot is fine
	n.Fail(err)    // the first-class error path
	n.Failf("vertex %d broke", n.ID())
}

func (algo) StepWords(n *dist.Node, inbox []int64) {
	if n.ID() < 0 {
		panic("impossible id") // want `raw panic in vertex program StepWords`
	}
	func() {
		panic("closures still run inside the step") // want `raw panic in vertex program StepWords`
	}()
	//distvet:panic-ok engine-misuse guard; the program itself is broken here
	panic("sanctioned")
	panic("sanctioned inline") //distvet:panic-ok same-line directive
	panic("no reason given")   /* want "annotation requires a justification" */ //distvet:panic-ok
}

// step is not a vertex-program entry point (wrong name): raw panics are
// its own business.
func (algo) step(n *dist.Node) {
	panic("helper panic, out of scope")
}

// Step without a *dist.Node parameter is some other Step entirely.
type walker struct{}

func (walker) Step(depth int) {
	panic("not a vertex program")
}

// notNode has an Output field too; assigning an error to it is fine -
// only dist.Node's slot feeds the engine's result decoding.
type notNode struct{ Output any }

func otherOutput(x *notNode) {
	x.Output = errors.New("unrelated")
}
