// Package recolor exercises the determinism analyzer: its fixture path
// ends in internal/recolor, so it counts as an engine package.
package recolor

import (
	"math/rand"
	"time"

	"internal/dist"
)

func clocks() {
	t := time.Now()   // want `engine code reads the wall clock \(time.Now\)`
	_ = time.Since(t) // want `engine code reads the wall clock \(time.Since\)`
}

// sanctioned is a whole-function timing site.
//
//distvet:wallclock fixture: this function exists to time a probe
func sanctioned() int64 {
	start := time.Now()
	return time.Since(start).Nanoseconds()
}

func sanctionedSite() {
	_ = time.Now() //distvet:wallclock fixture: a justified per-site exception
}

func unjustified() {
	_ = time.Now() /* want "annotation requires a justification" */ //distvet:wallclock
}

func ambient() int {
	return rand.Intn(3) // want `engine code uses ambient randomness \(math/rand\.Intn\)`
}

// injected randomness is fine: the caller owns the seed, the engine only
// calls methods on the value. Naming the rand.Rand TYPE is also fine.
func injected(r *rand.Rand) int {
	return r.Intn(3)
}

func mapSend(n *dist.Node, m map[int]int) {
	for k := range m {
		n.SendWord(0, int64(k)) // want `map iteration feeds SendWord`
	}
}

func mapAppend(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k) // want `map iteration appends to a slice declared outside the loop`
	}
	return out
}

func mapIndexWrite(m map[int]int, out []int) {
	i := 0
	for _, v := range m {
		out[i] = v // want `map iteration writes through a positional index not derived from the key`
		i++
	}
}

// perKeyWrite is order-free: each key owns its slot.
func perKeyWrite(m map[int]int, counts []int) {
	for k, v := range m {
		counts[k] += v
	}
}

// insideAppend is order-free: the slice dies inside the iteration.
func insideAppend(m map[int][]int) int {
	total := 0
	for _, vs := range m {
		local := []int{}
		for _, v := range vs {
			local = append(local, v)
		}
		total += len(local)
	}
	return total
}

func annotatedUnordered(m map[int]int) []int {
	out := make([]int, 0, len(m))
	//distvet:unordered fixture: the caller sorts the result
	for k := range m {
		out = append(out, k)
	}
	return out
}

func unorderedNoReason(m map[int]int) []int {
	var out []int
	for k := range m { /* want "annotation requires a justification" */ //distvet:unordered
		out = append(out, k)
	}
	return out
}
