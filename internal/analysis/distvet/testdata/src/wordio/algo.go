// Package wordio exercises the wordio analyzer against the fixture dist
// package's structurally-matched Node.
package wordio

import "internal/dist"

// Good declares constant widths and uses them consistently.
type Good struct{}

func (Good) MessageWords() int { return 1 }
func (Good) InputWidth() int   { return 0 }
func (Good) OutputWidth() int  { return 1 }

func (Good) StepWords(n *dist.Node, in dist.WordInbox) {
	n.SendAllWord(1)
	n.SendWord(0, 2)
	n.SetOutputWord(3)
}

// Wide declares 2-word messages and outputs; the 1-word helpers disagree.
type Wide struct{}

func (Wide) MessageWords() int { return 2 }
func (Wide) OutputWidth() int  { return 2 }

func (Wide) StepWords(n *dist.Node, in dist.WordInbox) {
	n.SendWord(0, 1)    // want `SendWord sends a 1-word message but Wide declares MessageWords\(\) == 2`
	n.SendAllWord(1)    // want `SendAllWord sends a 1-word message but Wide declares MessageWords\(\) == 2`
	n.SetOutputWord(3)  // want `SetOutputWord writes 1 word but Wide declares OutputWidth\(\) == 2`
	n.SetOutputWords(1) // want `SetOutputWords writes 1 words but Wide declares OutputWidth\(\) == 2`
	n.SetOutputWords(1, 2)
	w := n.SendWords(0)
	w[0], w[1] = 4, 5
}

// Runtime returns a width that depends on run-time state: the engine
// sizes columns before the run, so this cannot work.
type Runtime struct{ w int }

func (r Runtime) MessageWords() int {
	return r.w // want `MessageWords must return a compile-time constant width`
}

// Variant widths differ per variant but each return is constant: legal,
// and excluded from call-site checking.
type Variant struct{ arb bool }

func (v Variant) MessageWords() int { return 1 }

func (v Variant) InputWidth() int {
	if v.arb {
		return dist.PerPort
	}
	return 0
}

func (v Variant) StepWords(n *dist.Node, in dist.WordInbox) {
	n.SendWord(0, 7)
}
