// Package hotalloc exercises the hotalloc analyzer. The analyzer is not
// engine-path-gated: any //distvet:noalloc function anywhere is checked.
package hotalloc

import "fmt"

type point struct{ x, y int }

type scratch struct{ buf []int }

//distvet:noalloc
func hot(buf []int, n int) int {
	s := make([]int, n)          // want `noalloc function calls make`
	buf = append(buf, n)         // want `noalloc function calls append`
	p := &point{1, 2}            // want `takes the address of a composite literal`
	f := func() int { return n } // want `contains a function literal`
	lit := []int{1, 2, 3}        // want `contains a slice literal`
	m := map[int]int{}           // want `contains a map literal`
	msg := fmt.Sprintf("%d", n)  // want `calls allocating helper fmt\.Sprintf`
	b := []byte(msg)             // want `converts string to \[\]byte`
	var iface any
	iface = n // want `boxes a int into an interface-typed location`
	var v point
	v = point{n, n} // value struct literal: stack state, legal
	_, _, _, _, _, _, _ = s, p, f, lit, m, b, iface
	return buf[0] + v.x
}

//distvet:noalloc
func pooled(sc *scratch, n int) {
	if cap(sc.buf) < n {
		sc.buf = make([]int, n) //distvet:alloc-ok fixture: one-time pooled growth
	}
	sc.buf = sc.buf[:n]
}

//distvet:noalloc
func pooledNoReason(sc *scratch, n int) {
	if cap(sc.buf) < n {
		sc.buf = make([]int, n) /* want "annotation requires a justification" */ //distvet:alloc-ok
	}
}

//distvet:noalloc
func guarded(n int) int {
	if n < 0 {
		// Panic-terminated blocks are cold guard paths: the Sprintf is
		// legal here.
		panic(fmt.Sprintf("bad n %d", n))
	}
	return n * 2
}

// batchKernel mirrors the field batch-eval kernel shape: digit decode
// and forward-difference advance into caller-owned scratch, all stack
// state and conditional-subtract arithmetic. Everything here is legal
// under noalloc - the case pins that the analyzer does not misread
// branch-free index arithmetic or scratch reslicing as allocation.
//
//distvet:noalloc
func batchKernel(dst, w []int64, q, d int) {
	for j := 0; j <= d; j++ {
		dst[j] = w[j]
	}
	for x := d + 1; x < len(dst); x++ {
		for j := 0; j < d; j++ {
			t := w[j+1] + w[j] - int64(q)
			t += int64(q) & (t >> 63)
			w[j+1] = t
		}
		dst[x] = w[d]
	}
}

// batchKernelRowCopy is the anti-pattern the kernel replaced: a fresh
// row allocation per candidate inside an annotated hot function.
//
//distvet:noalloc
func batchKernelRowCopy(src []int64) []int64 {
	row := make([]int64, len(src)) // want `noalloc function calls make`
	copy(row, src)
	return row
}

// cold is not annotated: allocation is unremarkable.
func cold(n int) []int {
	return make([]int, n)
}
