// Package dist is a minimal stand-in for the engine's dist package: the
// analyzers identify dist.Node structurally (a named type Node in a
// package whose import path ends in "internal/dist"), so this fixture
// satisfies the same match without importing the real engine.
package dist

// Message is a boxed inter-node message.
type Message any

// Node is the fixture vertex handle.
type Node struct {
	State  any
	Input  any
	Output any
}

func (n *Node) ID() int                          { return 0 }
func (n *Node) Degree() int                      { return 0 }
func (n *Node) Round() int                       { return 0 }
func (n *Node) Halt()                            {}
func (n *Node) Send(port int, m Message)         {}
func (n *Node) SendAll(m Message)                {}
func (n *Node) SendWord(port int, w int64)       {}
func (n *Node) SendWords(port int) []int64       { return nil }
func (n *Node) SendAllWord(w int64)              {}
func (n *Node) SetOutputWord(w int64)            {}
func (n *Node) SetOutputWords(ws ...int64)       {}
func (n *Node) Fail(err error)                   {}
func (n *Node) Failf(format string, args ...any) {}
func (n *Node) InputWords() []int64              { return nil }
func (n *Node) OutputWords() []int64             { return nil }

// WordInbox is the fixture word-plane inbox view.
type WordInbox struct{}

func (in WordInbox) Ports() int          { return 0 }
func (in WordInbox) Has(p int) bool      { return false }
func (in WordInbox) Word(p int) int64    { return 0 }
func (in WordInbox) Words(p int) []int64 { return nil }

// PerPort mirrors the engine's per-port width sentinel.
const PerPort = -1
