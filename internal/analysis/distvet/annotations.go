// Package distvet implements the four analyzers that enforce the coloring
// engine's compile-time-invisible invariants:
//
//   - determinism: engine packages must not read the wall clock or ambient
//     randomness, and must not let map iteration order reach ordered
//     outputs (sends, appends, positional column writes).
//   - hotalloc: functions annotated //distvet:noalloc must contain no
//     allocating constructs.
//   - wordio: fixed-width vertex programs must declare compile-time
//     constant word widths, and width-bound send/output calls must agree
//     with the declaration.
//   - failpath: vertex programs must report errors through Node.Fail, not
//     by smuggling error values through the Output slot or raising raw
//     panics from Step/StepWords bodies.
//
// Annotations. Sanctioned exceptions are declared in source:
//
//	//distvet:wallclock <why>  - function doc or site line: sanctioned
//	                             wall-clock read (probe/tally timing).
//	//distvet:noalloc          - function doc: the hotalloc contract.
//	//distvet:alloc-ok <why>   - site line: sanctioned allocation inside
//	                             a noalloc function (e.g. pooled growth).
//	//distvet:unordered <why>  - site line: map iteration whose ordered-
//	                             looking sink is in fact order-free.
//	//distvet:panic-ok <why>   - site line: sanctioned raw panic inside a
//	                             vertex-program Step/StepWords body.
//
// Site-line annotations attach to constructs on the same line or the line
// directly below (a directive comment of its own). Every suppression
// except noalloc must carry a justification; an empty reason is itself a
// diagnostic, so `git grep distvet:` audits every exception with its why.
package distvet

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/analysis"
)

const directivePrefix = "//distvet:"

// annot is one parsed //distvet: directive.
type annot struct {
	name   string
	reason string
	pos    token.Pos
}

// parseAnnot parses a comment's directive, if any.
func parseAnnot(c *ast.Comment) (annot, bool) {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return annot{}, false
	}
	rest := c.Text[len(directivePrefix):]
	name := rest
	reason := ""
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		name, reason = rest[:i], strings.TrimSpace(rest[i+1:])
	}
	return annot{name: name, reason: reason, pos: c.Pos()}, true
}

// annots indexes every //distvet: directive of one package by file line.
type annots struct {
	fset   *token.FileSet
	byLine map[string]map[int][]annot
}

func gatherAnnots(pass *analysis.Pass) *annots {
	a := &annots{fset: pass.Fset, byLine: make(map[string]map[int][]annot)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				an, ok := parseAnnot(c)
				if !ok {
					continue
				}
				posn := pass.Fset.Position(c.Pos())
				m := a.byLine[posn.Filename]
				if m == nil {
					m = make(map[int][]annot)
					a.byLine[posn.Filename] = m
				}
				m[posn.Line] = append(m[posn.Line], an)
			}
		}
	}
	return a
}

// at returns the named directive covering pos: on the same source line, or
// on the line directly above (a standalone directive comment).
func (a *annots) at(pos token.Pos, name string) (annot, bool) {
	posn := a.fset.Position(pos)
	m := a.byLine[posn.Filename]
	for _, line := range [2]int{posn.Line, posn.Line - 1} {
		for _, an := range m[line] {
			if an.name == name {
				return an, true
			}
		}
	}
	return annot{}, false
}

// funcAnnot returns the named directive from a function's doc comment.
func funcAnnot(decl *ast.FuncDecl, name string) (annot, bool) {
	if decl.Doc == nil {
		return annot{}, false
	}
	for _, c := range decl.Doc.List {
		if an, ok := parseAnnot(c); ok && an.name == name {
			return an, true
		}
	}
	return annot{}, false
}

// checkReason reports a suppression that carries no justification and
// returns whether the suppression stands (it does either way - the
// missing reason is its own diagnostic, the original finding stays
// silenced so one fix produces one diagnostic).
func checkReason(pass *analysis.Pass, an annot) {
	if an.reason == "" {
		pass.Reportf(an.pos, "distvet:%s annotation requires a justification", an.name)
	}
}
