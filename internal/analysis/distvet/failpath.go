package distvet

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// FailPathAnalyzer flags the pre-word-plane error idiom of assigning an
// error value to dist.Node.Output ("n.Output = err"). Only the boxed
// []any plane can carry it, the word plane silently drops it, and the
// engine has a first-class replacement: Node.Fail records the error in
// the per-run slot (smallest failing vertex wins, deterministically) and
// aborts the run at the end of the round on every transport.
var FailPathAnalyzer = &analysis.Analyzer{
	Name: "failpath",
	Doc:  "flag error values smuggled through dist.Node.Output instead of Node.Fail",
	Run:  runFailPath,
}

func runFailPath(pass *analysis.Pass) error {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, file := range pass.Files {
		ast.Inspect(file, func(node ast.Node) bool {
			assign, ok := node.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range assign.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Output" || !isNodeField(pass, sel) {
					continue
				}
				if i >= len(assign.Rhs) {
					continue
				}
				tv, ok := pass.TypesInfo.Types[assign.Rhs[i]]
				if !ok || tv.IsNil() {
					continue
				}
				if types.Implements(tv.Type, errType) {
					pass.Reportf(assign.Pos(), "error smuggled through Node.Output (only the boxed plane carries it); use n.Fail(err) / n.Failf - the run aborts deterministically on every transport")
				}
			}
			return true
		})
	}
	return nil
}

// isNodeField reports whether sel selects a field of dist.Node.
func isNodeField(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Node" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "internal/dist" || isSuffix(path, "/internal/dist")
}

func isSuffix(s, suffix string) bool {
	return len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix
}
