package distvet

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// FailPathAnalyzer enforces the first-class error path of vertex
// programs, two ways:
//
//   - it flags the pre-word-plane error idiom of assigning an error value
//     to dist.Node.Output ("n.Output = err"): only the boxed []any plane
//     can carry it, the word plane silently drops it;
//   - it flags raw panic(...) calls in Step/StepWords bodies: the engine
//     contains a vertex-program panic, but the report is an engine abort
//     (ErrVertexPanic) rather than the program's own diagnosis.
//
// The replacement for both is Node.Fail/Failf, which records the error in
// the per-run slot (smallest failing vertex wins, deterministically) and
// aborts the run at the end of the round on every transport. A panic that
// is genuinely the right tool (an invariant whose violation means the
// program itself is broken) is sanctioned in place:
//
//	//distvet:panic-ok <why>
//
// on the panic's line or the line above.
var FailPathAnalyzer = &analysis.Analyzer{
	Name: "failpath",
	Doc:  "flag error values smuggled through dist.Node.Output and raw panics in vertex-program steps instead of Node.Fail",
	Run:  runFailPath,
}

func runFailPath(pass *analysis.Pass) error {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	ann := gatherAnnots(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(node ast.Node) bool {
			assign, ok := node.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range assign.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Output" || !isNodeField(pass, sel) {
					continue
				}
				if i >= len(assign.Rhs) {
					continue
				}
				tv, ok := pass.TypesInfo.Types[assign.Rhs[i]]
				if !ok || tv.IsNil() {
					continue
				}
				if types.Implements(tv.Type, errType) {
					pass.Reportf(assign.Pos(), "error smuggled through Node.Output (only the boxed plane carries it); use n.Fail(err) / n.Failf - the run aborts deterministically on every transport")
				}
			}
			return true
		})
		for _, d := range file.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			if name := decl.Name.Name; name != "Step" && name != "StepWords" {
				continue
			}
			if !hasNodeParam(pass, decl) {
				continue
			}
			checkStepPanics(pass, ann, decl)
		}
	}
	return nil
}

// checkStepPanics flags raw panic calls in one vertex-program step body
// (closures included - they still run inside the step).
func checkStepPanics(pass *analysis.Pass, ann *annots, decl *ast.FuncDecl) {
	ast.Inspect(decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "panic" {
			return true
		}
		if obj, ok := pass.TypesInfo.Uses[id]; !ok || obj != types.Universe.Lookup("panic") {
			return true // a shadowed panic is someone else's problem
		}
		if an, ok := ann.at(call.Pos(), "panic-ok"); ok {
			checkReason(pass, an)
			return true
		}
		pass.Reportf(call.Pos(), "raw panic in vertex program %s (the engine contains it, but the run reports an engine abort, not your diagnosis); use n.Fail(err) / n.Failf, or sanction with //distvet:panic-ok <why>", decl.Name.Name)
		return true
	})
}

// hasNodeParam reports whether decl takes a *dist.Node parameter - the
// signature shape marking it a vertex-program entry point.
func hasNodeParam(pass *analysis.Pass, decl *ast.FuncDecl) bool {
	for _, field := range decl.Type.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if ok && isNodeType(tv.Type) {
			return true
		}
	}
	return false
}

// isNodeField reports whether sel selects a field of dist.Node.
func isNodeField(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	return isNodeType(tv.Type)
}

// isNodeType reports whether t is dist.Node or a pointer to it.
func isNodeType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Node" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "internal/dist" || isSuffix(path, "/internal/dist")
}

func isSuffix(s, suffix string) bool {
	return len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix
}
