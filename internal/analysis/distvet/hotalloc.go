package distvet

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// HotAllocAnalyzer enforces the zero-allocation contract of functions
// annotated //distvet:noalloc: the engine's round loop, recolorOnce and
// every WordIOAlgorithm step implementation. It is a syntactic gate - the
// escape-analysis companion (cmd/escapecheck) verifies the compiler
// agrees - so it flags allocating CONSTRUCTS rather than proven heap
// allocations:
//
//   - make, new, append and slice/map composite literals (a value struct
//     literal is stack state and stays legal);
//   - &composite{} (heap once it escapes - which escapecheck decides;
//     here it is flagged so the escape question is answered explicitly);
//   - function literals (closure environments allocate once captured);
//   - allocating conversions: interface conversions and the
//     string <-> []byte/[]rune family;
//   - assignments that box a concrete value into an interface-typed
//     location (the pre-word-plane []any idiom);
//   - calls into known allocators (fmt.Sprintf/Sprint/Sprintln/Errorf,
//     errors.New, strconv.Itoa/FormatInt/Quote).
//
// Blocks that unconditionally end in panic are exempt: the engine's
// guard panics format their message on the way out of a broken program,
// which is not a hot path. Individual sanctioned sites (pooled growth,
// amortized append into reusable scratch) carry //distvet:alloc-ok <why>.
var HotAllocAnalyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocating constructs inside //distvet:noalloc functions",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *analysis.Pass) error {
	an := gatherAnnots(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, ok := funcAnnot(fn, "noalloc"); !ok {
				continue
			}
			ha := &hotAllocCheck{pass: pass, an: an}
			ha.stmt(fn.Body)
		}
	}
	return nil
}

type hotAllocCheck struct {
	pass *analysis.Pass
	an   *annots
}

// flag reports an allocating construct unless an alloc-ok annotation
// covers its line.
func (h *hotAllocCheck) flag(n ast.Node, format string, args ...any) {
	if a, ok := h.an.at(n.Pos(), "alloc-ok"); ok {
		checkReason(h.pass, a)
		return
	}
	h.pass.Reportf(n.Pos(), "noalloc function "+format, args...)
}

// endsInPanic reports whether a block's last statement is a panic call:
// such blocks are cold guard paths and exempt from the contract.
func endsInPanic(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	es, ok := b.List[len(b.List)-1].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// stmt walks statements, skipping panic-terminated blocks.
func (h *hotAllocCheck) stmt(s ast.Stmt) {
	if b, ok := s.(*ast.BlockStmt); ok && endsInPanic(b) {
		return
	}
	ast.Inspect(s, func(node ast.Node) bool {
		switch n := node.(type) {
		case *ast.BlockStmt:
			if endsInPanic(n) {
				return false
			}
		case *ast.AssignStmt:
			h.assign(n)
		case *ast.CallExpr:
			h.call(n)
		case *ast.CompositeLit:
			h.composite(n, false)
			return false // inner literals are part of this one
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if cl, ok := n.X.(*ast.CompositeLit); ok {
					h.composite(cl, true)
					return false
				}
			}
		case *ast.FuncLit:
			h.flag(n, "contains a function literal (closures allocate their environment once captured)")
			return false // the literal's body lives on another stack
		}
		return true
	})
}

func (h *hotAllocCheck) assign(n *ast.AssignStmt) {
	if n.Tok.String() == ":=" {
		return // a definition's type is the RHS type; no boxing happens
	}
	for i, lhs := range n.Lhs {
		if i >= len(n.Rhs) {
			break // x, y = f() - conversions happen inside f
		}
		lt, ok := h.pass.TypesInfo.Types[lhs]
		if !ok {
			continue
		}
		if _, isIface := lt.Type.Underlying().(*types.Interface); !isIface {
			continue
		}
		rt, ok := h.pass.TypesInfo.Types[n.Rhs[i]]
		if !ok {
			continue
		}
		if rt.IsNil() {
			continue
		}
		if _, rIface := rt.Type.Underlying().(*types.Interface); rIface {
			continue
		}
		if isPointerLike(rt.Type) {
			continue // pointer-shaped values box without heap allocation
		}
		h.flag(n, "boxes a %s into an interface-typed location", rt.Type)
	}
}

// isPointerLike reports types whose interface representation stores the
// value directly in the data word - boxing them performs no allocation.
func isPointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}

func (h *hotAllocCheck) call(n *ast.CallExpr) {
	switch fun := n.Fun.(type) {
	case *ast.Ident:
		if b, ok := h.pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				h.flag(n, "calls make")
			case "new":
				h.flag(n, "calls new")
			case "append":
				h.flag(n, "calls append (growth allocates; pre-size the buffer or annotate amortized growth with //distvet:alloc-ok <why>)")
			}
			return
		}
	case *ast.SelectorExpr:
		if h.knownAllocator(fun) {
			h.flag(n, "calls allocating helper %s.%s", exprString(fun.X), fun.Sel.Name)
			return
		}
	}
	// Conversions: T(x) where T is a type.
	if tv, ok := h.pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() && len(n.Args) == 1 {
		h.conversion(n, tv.Type)
	}
}

var allocatorFuncs = map[string]map[string]bool{
	"fmt":     {"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true, "Appendf": true},
	"errors":  {"New": true},
	"strconv": {"Itoa": true, "FormatInt": true, "Quote": true, "FormatFloat": true},
}

func (h *hotAllocCheck) knownAllocator(sel *ast.SelectorExpr) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := h.pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	return allocatorFuncs[pn.Imported().Path()][sel.Sel.Name]
}

func (h *hotAllocCheck) conversion(n *ast.CallExpr, to types.Type) {
	fromTV, ok := h.pass.TypesInfo.Types[n.Args[0]]
	if !ok {
		return
	}
	from := fromTV.Type
	if _, isIface := to.Underlying().(*types.Interface); isIface {
		if _, fromIface := from.Underlying().(*types.Interface); !fromIface && !fromTV.IsNil() && !isPointerLike(from) {
			h.flag(n, "converts %s to interface %s (boxing)", from, to)
		}
		return
	}
	toB, toIsBasic := to.Underlying().(*types.Basic)
	fromB, fromIsBasic := from.Underlying().(*types.Basic)
	toSlice, toIsSlice := to.Underlying().(*types.Slice)
	fromSlice, fromIsSlice := from.Underlying().(*types.Slice)
	isStr := func(b *types.Basic, ok bool) bool { return ok && b.Info()&types.IsString != 0 }
	isByteOrRune := func(s *types.Slice, ok bool) bool {
		if !ok {
			return false
		}
		b, bok := s.Elem().Underlying().(*types.Basic)
		return bok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	switch {
	case isStr(toB, toIsBasic) && isByteOrRune(fromSlice, fromIsSlice):
		h.flag(n, "converts %s to string (copies and allocates)", from)
	case isByteOrRune(toSlice, toIsSlice) && isStr(fromB, fromIsBasic):
		h.flag(n, "converts string to %s (copies and allocates)", to)
	case isStr(toB, toIsBasic) && fromIsBasic && fromB.Info()&types.IsInteger != 0 && fromTV.Value == nil:
		h.flag(n, "converts %s to string (allocates a rune string)", from)
	}
}

func (h *hotAllocCheck) composite(n *ast.CompositeLit, addressed bool) {
	tv, ok := h.pass.TypesInfo.Types[n]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		h.flag(n, "contains a slice literal (allocates backing storage)")
	case *types.Map:
		h.flag(n, "contains a map literal")
	default:
		if addressed {
			h.flag(n, "takes the address of a composite literal (heap-allocates once it escapes)")
		}
		// A plain value struct/array literal is stack state: legal.
	}
	// Still check nested expressions (element values may allocate).
	for _, elt := range n.Elts {
		ast.Inspect(elt, func(node ast.Node) bool {
			switch e := node.(type) {
			case *ast.CallExpr:
				h.call(e)
			case *ast.CompositeLit:
				h.composite(e, false)
				return false
			case *ast.FuncLit:
				h.flag(e, "contains a function literal (closures allocate their environment once captured)")
				return false
			}
			return true
		})
	}
}

// exprString renders simple expressions for messages.
func exprString(e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return "?"
}
