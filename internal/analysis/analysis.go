// Package analysis is a self-contained, dependency-free re-implementation
// of the core golang.org/x/tools/go/analysis surface: Analyzer, Pass and
// Diagnostic, plus a loader that type-checks the packages of the current
// module against the gc export data produced by `go list -export`.
//
// The repository vendors no third-party modules and builds offline, so the
// real x/tools module is not available; this package keeps the same shape
// (an Analyzer owns a Run function over a Pass; a Pass carries the
// package's syntax, type information and a Report sink) so the distvet
// analyzers (internal/analysis/distvet) read like standard vet analyzers
// and could be ported to the upstream driver by swapping one import.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check. Name appears in diagnostics; Doc is
// the one-paragraph help text; Run performs the check on a single package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass is the interface between one Analyzer and one package. The driver
// constructs a fresh Pass per (analyzer, package) pair.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// report collects diagnostics; use Report/Reportf.
	report func(Diagnostic)
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf emits a diagnostic at pos with Sprintf formatting.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message. Analyzer is filled
// in by the driver.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Finding is a positioned diagnostic ready for printing or comparison.
type Finding struct {
	Posn     token.Position
	Message  string
	Analyzer string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Posn, f.Message, f.Analyzer)
}

// Run applies every analyzer to every package and returns the findings
// sorted by file, line, column, then analyzer name. Analyzer errors (not
// diagnostics) abort the run.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.report = func(d Diagnostic) {
				out = append(out, Finding{
					Posn:     pkg.Fset.Position(d.Pos),
					Message:  d.Message,
					Analyzer: a.Name,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Posn.Filename != b.Posn.Filename {
			return a.Posn.Filename < b.Posn.Filename
		}
		if a.Posn.Line != b.Posn.Line {
			return a.Posn.Line < b.Posn.Line
		}
		if a.Posn.Column != b.Posn.Column {
			return a.Posn.Column < b.Posn.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}
