// Package analysistest runs analyzers over testdata fixture packages and
// checks their diagnostics against `// want` comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract: a comment
//
//	code() // want `regexp` `another`
//
// on a source line asserts that each listed pattern matches exactly one
// diagnostic reported on that line, and every diagnostic must be claimed
// by a pattern. Patterns are backquoted or double-quoted Go strings. The
// block form `/* want "re" */` asserts the same thing; it exists for
// lines that already end in a //distvet: directive, which a second line
// comment could not follow.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads the fixture packages under dir (an analysistest source root:
// dir/<path>/*.go) and applies the analyzer, failing t on any mismatch
// between reported diagnostics and the fixtures' want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	pkgs, err := analysis.LoadFixture(dir, paths...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	findings, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type wantKey struct {
		file string
		line int
	}
	wants := make(map[wantKey][]*regexp.Regexp)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					posn := pkg.Fset.Position(c.Pos())
					pats, perr := parseWant(c.Text)
					if perr != nil {
						t.Fatalf("%s: %v", posn, perr)
					}
					if len(pats) == 0 {
						continue
					}
					k := wantKey{posn.Filename, posn.Line}
					wants[k] = append(wants[k], pats...)
				}
			}
		}
	}

	matched := make(map[*regexp.Regexp]int)
	for _, f := range findings {
		k := wantKey{f.Posn.Filename, f.Posn.Line}
		var hit *regexp.Regexp
		for _, pat := range wants[k] {
			if matched[pat] == 0 && pat.MatchString(f.Message) {
				hit = pat
				break
			}
		}
		if hit == nil {
			t.Errorf("%s: unexpected diagnostic: %s", f.Posn, f.Message)
			continue
		}
		matched[hit]++
	}
	for k, pats := range wants {
		for _, pat := range pats {
			if matched[pat] == 0 {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, pat)
			}
		}
	}
}

// parseWant extracts the patterns of a `// want` comment; a comment
// without the directive yields no patterns.
func parseWant(text string) ([]*regexp.Regexp, error) {
	if strings.HasPrefix(text, "/*") {
		text = strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
	} else {
		text = strings.TrimPrefix(text, "//")
	}
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "want ") {
		return nil, nil
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, "want "))
	var pats []*regexp.Regexp
	for rest != "" {
		var lit string
		switch rest[0] {
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated want pattern %q", rest)
			}
			lit = rest[1 : 1+end]
			rest = strings.TrimSpace(rest[2+end:])
		case '"':
			// Find the closing quote respecting escapes via strconv.
			q, err := quotedPrefix(rest)
			if err != nil {
				return nil, fmt.Errorf("bad want pattern %q: %v", rest, err)
			}
			unq, err := strconv.Unquote(q)
			if err != nil {
				return nil, fmt.Errorf("bad want pattern %q: %v", q, err)
			}
			lit = unq
			rest = strings.TrimSpace(rest[len(q):])
		default:
			return nil, fmt.Errorf("bad want pattern start %q", rest)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, fmt.Errorf("compiling want pattern %q: %v", lit, err)
		}
		pats = append(pats, re)
	}
	return pats, nil
}

// quotedPrefix returns the leading double-quoted Go string literal of s.
func quotedPrefix(s string) (string, error) {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return s[:i+1], nil
		}
	}
	return "", fmt.Errorf("unterminated string")
}
