package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package of the module under
// analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listEntry is the subset of `go list -json` output the loader reads.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path string }
}

// Load type-checks the module packages matched by patterns (relative to
// dir, e.g. "./...") and returns them ready for analysis. Dependencies -
// both standard-library and intra-module - are imported from the gc
// export data the go command produces, so loading a package costs one
// parse and one type-check of its own files only.
//
// Test files are NOT loaded: the distvet invariants govern the engine
// proper, and test helpers legitimately use wall clocks, randomness and
// allocation-heavy idioms.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,Module"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if !e.Standard && e.Module != nil {
			targets = append(targets, e)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, e := range targets {
		p, err := checkPackage(fset, imp, e.ImportPath, e.Dir, e.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// checkPackage parses and type-checks one package from source.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// LoadFixture loads the fixture packages named by paths from a testdata
// source root laid out like x/tools analysistest: root/<path>/*.go is the
// package with import path <path>. Fixture packages may import each other
// (resolved from source, recursively) and the standard library (resolved
// from gc export data via one `go list` call for the closure of imports).
func LoadFixture(root string, paths ...string) ([]*Package, error) {
	fset := token.NewFileSet()
	parsed := make(map[string][]*ast.File)
	var parseDir func(path string) error
	stdImports := make(map[string]bool)
	parseDir = func(path string) error {
		if _, ok := parsed[path]; ok {
			return nil
		}
		dir := filepath.Join(root, filepath.FromSlash(path))
		entries, err := os.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("analysis: fixture %s: %w", path, err)
		}
		var files []*ast.File
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
			if err != nil {
				return fmt.Errorf("analysis: fixture %s: %w", path, err)
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			return fmt.Errorf("analysis: fixture %s: no go files in %s", path, dir)
		}
		parsed[path] = files
		for _, f := range files {
			for _, spec := range f.Imports {
				ip := strings.Trim(spec.Path.Value, `"`)
				if _, err := os.Stat(filepath.Join(root, filepath.FromSlash(ip))); err == nil {
					if err := parseDir(ip); err != nil {
						return err
					}
				} else {
					stdImports[ip] = true
				}
			}
		}
		return nil
	}
	for _, p := range paths {
		if err := parseDir(p); err != nil {
			return nil, err
		}
	}

	exports, err := exportData(stdImports)
	if err != nil {
		return nil, err
	}
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})

	checked := make(map[string]*Package)
	var check func(path string) (*Package, error)
	fixImp := importerFunc(func(path string) (*types.Package, error) {
		if _, ok := parsed[path]; ok {
			p, err := check(path)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}
		return gc.Import(path)
	})
	check = func(path string) (*Package, error) {
		if p, ok := checked[path]; ok {
			return p, nil
		}
		files := parsed[path]
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: fixImp}
		tpkg, err := conf.Check(path, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking fixture %s: %w", path, err)
		}
		p := &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}
		checked[path] = p
		return p, nil
	}

	var pkgs []*Package
	for _, p := range paths {
		pkg, err := check(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// exportData resolves gc export data files for the given import paths and
// their transitive dependencies with one `go list -deps -export` call.
func exportData(imports map[string]bool) (map[string]string, error) {
	exports := make(map[string]string)
	if len(imports) == 0 {
		return exports, nil
	}
	args := []string{"list", "-deps", "-export", "-json=ImportPath,Export"}
	for p := range imports {
		args = append(args, p)
	}
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list (std deps): %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	return exports, nil
}
