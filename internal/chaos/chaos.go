// Package chaos is the deterministic fault-injection harness of the
// run-control plane. Every fault is seeded and lands at an exact,
// reproducible point - a chosen round boundary, a chosen (vertex,
// round) step, a chosen probe flush - so a failing chaos case replays
// bit-for-bit from its seed. The package provides the fault sources
// (round-deterministic cancel contexts, panic-injecting programs,
// failing and slow probe sinks, snapshot truncation) and a JSONL
// record channel (CHAOS_JSONL) for archiving what was injected and
// what the engine did about it; the matrix lives in the package tests
// and runs small on every push and in full (CHAOS_FULL=1) nightly
// under the race detector.
package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/dist"
)

// RoundCancel returns a context whose Err trips at the k'th round-
// boundary poll. The engine polls ctx.Err() exactly once per round
// boundary, so the returned context cancels a run after exactly k
// completed rounds - no timers, no goroutines, fully deterministic.
// Pipelines poll across all their engine runs, so on a multi-phase
// pipeline (attached via dist.Network.WithContext) the k'th boundary
// may land mid-phase - which is the point.
func RoundCancel(k int) context.Context { return &roundCtx{after: k} }

type roundCtx struct {
	mu    sync.Mutex
	calls int
	after int
}

func (c *roundCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *roundCtx) Done() <-chan struct{}       { return nil }
func (c *roundCtx) Value(any) any               { return nil }
func (c *roundCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.calls > c.after {
		return context.Canceled
	}
	return nil
}

// ExpiredDeadline returns a context whose deadline has already passed:
// the engine's first round-boundary poll maps it to dist.ErrDeadline.
func ExpiredDeadline() context.Context {
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	_ = cancel // the context is born expired; nothing to release early
	return ctx
}

// Wave is a multi-round word-I/O gossip program with column-only state
// (the dist.Snapshot contract's qualifying shape): in[0] is the rolling
// digest, in[1] the per-vertex round budget, the output the final
// digest. It is the chaos harness's workload for panic and
// checkpoint/resume faults.
type Wave struct {
	// PanicVertex/PanicRound inject a vertex-program panic at that step
	// for every vertex >= PanicVertex (so the engine's smallest-vertex-
	// wins report is observable at any worker count). PanicRound < 0
	// disables injection.
	PanicVertex int
	PanicRound  int
}

// CleanWave is a Wave with panic injection disabled.
func CleanWave() Wave { return Wave{PanicRound: -1} }

func (Wave) MessageWords() int { return 1 }
func (Wave) InputWidth() int   { return 2 }
func (Wave) OutputWidth() int  { return 1 }

func (w Wave) trip(n *dist.Node) {
	if n.Round() == w.PanicRound && n.Vertex() >= w.PanicVertex {
		panic(fmt.Sprintf("chaos: injected panic at vertex %d round %d", n.Vertex(), n.Round()))
	}
}

func (w Wave) InitWords(n *dist.Node) {
	w.trip(n)
	in := n.InputWords()
	in[0] = in[0]*1000003 + int64(n.ID())
	n.SendAllWord(in[0] % 99991)
}

func (w Wave) StepWords(n *dist.Node, inbox dist.WordInbox) {
	w.trip(n)
	in := n.InputWords()
	acc := in[0]
	for p := 0; p < n.Degree(); p++ {
		if inbox.Has(p) {
			acc = acc*31 + inbox.Word(p) + int64(p)
		}
	}
	in[0] = acc
	if int64(n.Round()) >= in[1]+int64(n.ID()%3) {
		n.SetOutputWord(acc)
		n.Halt()
		return
	}
	n.SendAllWord(acc % 99991)
}

// The boxed plane is deliberately absent: Wave keeps its state in the
// input column, which has no boxed twin.
func (Wave) Init(n *dist.Node)                      { n.Failf("chaos: Wave has no boxed plane") }
func (Wave) Step(n *dist.Node, inbox []dist.Message) {}

// WaveInputs builds a seeded input column for an n-vertex Wave run:
// deterministic per-vertex digests and round budgets.
func WaveInputs(n int, seed int64) []int64 {
	words := make([]int64, 2*n)
	x := uint64(seed)*2862933555777941757 + 3037000493
	for v := 0; v < n; v++ {
		x = x*2862933555777941757 + 3037000493
		words[2*v] = int64(x % 1000)
		words[2*v+1] = int64(4 + x%3)
	}
	return words
}

// FailingSink is a dist.ProbeSink that accepts the first Accept flush
// calls (rounds and runs pooled) and fails every one after that,
// modelling a trace disk filling up mid-run. It tallies what it saw so
// tests can assert the probe's sticky-error contract: the run itself is
// unaffected, Probe.Close surfaces the first error, the sink keeps
// receiving (and rejecting) later batches, and run records staged after
// the failure carry SinkErr.
type FailingSink struct {
	Accept int

	mu          sync.Mutex
	calls       int
	rounds      int
	runs        int
	sinkErrRuns int
}

// ErrSinkFault is the error injected by FailingSink.
var ErrSinkFault = fmt.Errorf("chaos: injected sink fault")

func (s *FailingSink) fail() error {
	s.calls++
	if s.calls > s.Accept {
		return ErrSinkFault
	}
	return nil
}

func (s *FailingSink) FlushRounds(recs []dist.RoundRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.fail(); err != nil {
		return err
	}
	s.rounds += len(recs)
	return nil
}

func (s *FailingSink) FlushRuns(recs []dist.RunRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// The probe keeps delivering batches after the first error, so even
	// a failed sink observes the SinkErr marks on records it rejects.
	for _, r := range recs {
		if r.SinkErr {
			s.sinkErrRuns++
		}
	}
	if err := s.fail(); err != nil {
		return err
	}
	s.runs += len(recs)
	return nil
}

// Counts reports the records accepted before the fault and how many
// accepted run records were marked SinkErr.
func (s *FailingSink) Counts() (rounds, runs, sinkErrRuns int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rounds, s.runs, s.sinkErrRuns
}

// SlowSink delays every flush by Delay before delegating to Inner (nil
// Inner discards), modelling a slow trace disk. The probe's ring must
// absorb the backpressure by stalling producers, never by dropping
// records or deadlocking.
type SlowSink struct {
	Delay time.Duration
	Inner dist.ProbeSink

	mu     sync.Mutex
	rounds int
	runs   int
}

func (s *SlowSink) FlushRounds(recs []dist.RoundRecord) error {
	time.Sleep(s.Delay)
	s.mu.Lock()
	s.rounds += len(recs)
	s.mu.Unlock()
	if s.Inner != nil {
		return s.Inner.FlushRounds(recs)
	}
	return nil
}

func (s *SlowSink) FlushRuns(recs []dist.RunRecord) error {
	time.Sleep(s.Delay)
	s.mu.Lock()
	s.runs += len(recs)
	s.mu.Unlock()
	if s.Inner != nil {
		return s.Inner.FlushRuns(recs)
	}
	return nil
}

// Counts reports the records that reached the slow sink.
func (s *SlowSink) Counts() (rounds, runs int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rounds, s.runs
}

// Record is one injected fault and its observed outcome, archived as a
// JSONL line when CHAOS_JSONL names a file.
type Record struct {
	Case    string `json:"case"`
	Fault   string `json:"fault"`
	Seed    int64  `json:"seed,omitempty"`
	Round   int    `json:"round,omitempty"`
	Vertex  int    `json:"vertex,omitempty"`
	Err     string `json:"err,omitempty"`
	Outcome string `json:"outcome"`
}

var (
	logMu   sync.Mutex
	logFile *os.File
	logInit bool
)

// Log appends rec to the CHAOS_JSONL file (a no-op when the variable
// is unset). Failures to open or write are silently dropped: the
// archive is diagnostics, never a gate.
func Log(rec Record) {
	logMu.Lock()
	defer logMu.Unlock()
	if !logInit {
		logInit = true
		if path := os.Getenv("CHAOS_JSONL"); path != "" {
			logFile, _ = os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		}
	}
	if logFile == nil {
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	logFile.Write(append(b, '\n'))
}

// Full reports whether the full chaos matrix was requested
// (CHAOS_FULL=1); the default is the small push-CI matrix.
func Full() bool { return os.Getenv("CHAOS_FULL") == "1" }
