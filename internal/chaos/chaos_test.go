package chaos

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"testing"
	"time"

	"repro/internal/arbdefect"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/forest"
	"repro/internal/graph"
	"repro/internal/recolor"
)

// The chaos matrix: inject every fault class into the paper's real
// pipelines (E04 Linial, E05 Defective, E14 Arb-Kuhn, the Legal-
// Coloring core) and into the harness's own Wave workload, and assert
// the run-control plane's three guarantees every time:
//
//  1. clean abort - a wrapped sentinel (ErrCanceled / ErrDeadline /
//     ErrVertexPanic), never a crash, hang or corrupted result;
//  2. session safety - the SAME network's next run is bit-for-bit the
//     run a fresh network produces (the shadow equality check);
//  3. resumability - a snapshot captured at the fault point resumes to
//     the uninterrupted run's exact outputs and totals.
//
// The default matrix is small enough for push CI; CHAOS_FULL=1 (the
// nightly job, under -race) widens every axis.

// sig is the deterministic signature of a pipeline run.
type sig struct {
	colors   []int
	rounds   int
	messages int64
}

func (s sig) equal(o sig) bool {
	return s.rounds == o.rounds && s.messages == o.messages && slices.Equal(s.colors, o.colors)
}

type pipelineCase struct {
	name string
	mk   func() *dist.Network
	run  func(net *dist.Network) (sig, error)
}

func matrix(full bool) []pipelineCase {
	n := 400
	ds, ps, ts := []int{4}, []int{2}, []int{2}
	if full {
		n = 1500
		ds, ps, ts = []int{4, 8, 16}, []int{2, 4, 8}, []int{2, 4, 8}
	}
	var cs []pipelineCase
	for _, d := range ds {
		d := d
		cs = append(cs, pipelineCase{
			name: fmt.Sprintf("E04-linial-d%d", d),
			mk: func() *dist.Network {
				rng := rand.New(rand.NewSource(1 + 300 + int64(d)))
				return dist.NewNetworkPermuted(graph.RandomRegularish(n, d, rng), rng)
			},
			run: func(net *dist.Network) (sig, error) {
				res, err := recolor.Linial(net)
				if err != nil {
					return sig{}, err
				}
				return sig{res.Colors, res.Rounds, res.Messages}, nil
			},
		})
	}
	for _, p := range ps {
		p := p
		cs = append(cs, pipelineCase{
			name: fmt.Sprintf("E05-defective-p%d", p),
			mk: func() *dist.Network {
				rng := rand.New(rand.NewSource(1 + 400 + int64(p)))
				return dist.NewNetworkPermuted(graph.RandomRegularish(n, 24, rng), rng)
			},
			run: func(net *dist.Network) (sig, error) {
				res, err := recolor.Defective(net, p)
				if err != nil {
					return sig{}, err
				}
				return sig{res.Colors, res.Rounds, res.Messages}, nil
			},
		})
	}
	for _, t := range ts {
		t := t
		cs = append(cs, pipelineCase{
			name: fmt.Sprintf("E14-arbkuhn-t%d", t),
			mk: func() *dist.Network {
				rng := rand.New(rand.NewSource(1 + 1300 + int64(t)))
				return dist.NewNetworkPermuted(graph.ForestUnion(n, 16, rng), rng)
			},
			run: func(net *dist.Network) (sig, error) {
				res, err := arbdefect.Kuhn(net, 16, t, forest.DefaultEps)
				if err != nil {
					return sig{}, err
				}
				return sig{res.Colors, res.Tally.Rounds(), res.Tally.Messages()}, nil
			},
		})
	}
	cs = append(cs, pipelineCase{
		name: "CORE-legalcoloring",
		mk: func() *dist.Network {
			rng := rand.New(rand.NewSource(1 + 7))
			return dist.NewNetworkPermuted(graph.ForestUnion(n, 8, rng), rng)
		},
		run: func(net *dist.Network) (sig, error) {
			res, err := core.LegalColoring(net, core.Config{Arboricity: 8, P: 4})
			if err != nil {
				return sig{}, err
			}
			return sig{res.Colors, res.Tally.Rounds(), res.Tally.Messages()}, nil
		},
	})
	return cs
}

// TestChaosCancelMatrix injects round-boundary cancels (landing inside
// whatever phase the k'th cumulative boundary falls in) and an expired
// deadline into every pipeline of the matrix.
func TestChaosCancelMatrix(t *testing.T) {
	full := Full()
	cancels := []int{0, 3, 11}
	if full {
		cancels = []int{0, 1, 2, 3, 5, 8, 13, 21, 34}
	}
	for _, c := range matrix(full) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			ref, err := c.run(c.mk())
			if err != nil {
				t.Fatal(err)
			}
			type fault struct {
				name string
				ctx  context.Context
				want error
			}
			faults := []fault{{"deadline-expired", ExpiredDeadline(), dist.ErrDeadline}}
			for _, k := range cancels {
				faults = append(faults, fault{fmt.Sprintf("cancel-round-%d", k), RoundCancel(k), dist.ErrCanceled})
			}
			for _, f := range faults {
				net := c.mk()
				_, err := c.run(net.WithContext(f.ctx))
				outcome := "clean-abort"
				if !errors.Is(err, f.want) {
					// A cancel landing past the pipeline's total boundary
					// count lets it complete; anything else is a failure.
					if f.want == dist.ErrCanceled && err == nil {
						outcome = "completed"
					} else {
						t.Fatalf("%s: err=%v, want %v", f.name, err, f.want)
					}
				}
				Log(Record{Case: c.name, Fault: f.name, Err: fmt.Sprint(err), Outcome: outcome})
				// Shadow equality: the faulted session reruns bit-for-bit.
				after, err := c.run(net)
				if err != nil {
					t.Fatalf("%s: rerun after fault: %v", f.name, err)
				}
				if !after.equal(ref) {
					t.Fatalf("%s: shadow run diverges after fault (rounds/messages %d/%d, want %d/%d)",
						f.name, after.rounds, after.messages, ref.rounds, ref.messages)
				}
			}
		})
	}
}

// waveNet builds the Wave workload's network; ids are pinned so fresh
// networks are bit-for-bit comparable.
func waveNet(t *testing.T, n int) func() *dist.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	g := graph.ForestUnion(n, 4, rng)
	ids := dist.NewNetworkPermuted(g, rand.New(rand.NewSource(42))).IDs()
	return func() *dist.Network {
		net, err := dist.NewNetworkWithIDs(g, ids)
		if err != nil {
			t.Fatal(err)
		}
		return net
	}
}

// TestChaosPanicMatrix injects seeded (vertex, round) panics into the
// Wave workload at several worker counts and under sharding: clean
// abort with ErrVertexPanic naming the smallest injected vertex, then
// shadow equality on the same session.
func TestChaosPanicMatrix(t *testing.T) {
	full := Full()
	n := 600
	seeds := []int64{1, 2}
	if full {
		n = 2000
		seeds = []int64{1, 2, 3, 4, 5, 6, 7, 8}
	}
	mk := waveNet(t, n)
	ref, err := mk().RunWords(CleanWave(), dist.RunOptions{InputWords: WaveInputs(n, 7)})
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range seeds {
		rng := rand.New(rand.NewSource(seed))
		vertex := rng.Intn(n)
		round := rng.Intn(4)
		for _, workers := range []int{1, 4, 0} {
			for _, shards := range []int{1, 3} {
				net := mk()
				if workers > 0 {
					net = net.WithWorkers(workers)
				}
				if shards > 1 {
					sh, err := graph.NewSharding(n, shards)
					if err != nil {
						t.Fatal(err)
					}
					if net, err = net.Sharded(sh); err != nil {
						t.Fatal(err)
					}
				}
				w := Wave{PanicVertex: vertex, PanicRound: round}
				_, err := net.RunWords(w, dist.RunOptions{InputWords: WaveInputs(n, 7)})
				label := fmt.Sprintf("seed=%d vertex=%d round=%d workers=%d shards=%d", seed, vertex, round, workers, shards)
				if !errors.Is(err, dist.ErrVertexPanic) {
					t.Fatalf("%s: err=%v, want ErrVertexPanic", label, err)
				}
				want := fmt.Sprintf("vertex %d", vertex)
				if !errors.Is(err, dist.ErrVertexPanic) || !bytes.Contains([]byte(err.Error()), []byte(want)) {
					t.Fatalf("%s: error %q does not name the smallest panicking vertex", label, err)
				}
				Log(Record{Case: "wave", Fault: "panic", Seed: seed, Vertex: vertex, Round: round, Err: err.Error(), Outcome: "clean-abort"})
				after, err := net.RunWords(CleanWave(), dist.RunOptions{InputWords: WaveInputs(n, 7)})
				if err != nil {
					t.Fatalf("%s: rerun after panic: %v", label, err)
				}
				if after.Rounds != ref.Rounds || after.Messages != ref.Messages ||
					!slices.Equal(after.OutputWords, ref.OutputWords) {
					t.Fatalf("%s: shadow run diverges after panic", label)
				}
			}
		}
	}
}

// TestChaosSnapshotResume cancels the Wave workload at seeded round
// boundaries with SnapshotOnAbort, injects the truncated-snapshot fault
// against the serialized blob, then resumes the intact blob on a fresh
// network and requires the uninterrupted run's exact outputs and
// totals - including across a shard-count change and under a probe.
func TestChaosSnapshotResume(t *testing.T) {
	full := Full()
	n := 600
	cancels := []int{0, 2, 5}
	if full {
		n = 2000
		cancels = []int{0, 1, 2, 3, 4, 5, 6, 7}
	}
	mk := waveNet(t, n)
	ref, err := mk().RunWords(CleanWave(), dist.RunOptions{InputWords: WaveInputs(n, 7)})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range cancels {
		if k >= ref.Rounds {
			continue
		}
		for _, shards := range []int{1, 3} {
			label := fmt.Sprintf("cancel@%d shards=%d", k, shards)
			net := mk()
			res, err := net.RunWords(CleanWave(), dist.RunOptions{
				InputWords: WaveInputs(n, 7), Context: RoundCancel(k), SnapshotOnAbort: true,
			})
			if !errors.Is(err, dist.ErrCanceled) || res == nil || res.Snapshot == nil {
				t.Fatalf("%s: capture failed: %v", label, err)
			}
			var blob bytes.Buffer
			if _, err := res.Snapshot.WriteTo(&blob); err != nil {
				t.Fatal(err)
			}
			raw := blob.Bytes()
			// The truncated-snapshot fault: a blob missing its tail must be
			// rejected outright, never resumed partially.
			if _, err := dist.ReadSnapshot(bytes.NewReader(raw[:len(raw)-1])); err == nil {
				t.Fatalf("%s: truncated snapshot accepted", label)
			}
			Log(Record{Case: "wave", Fault: "snapshot-truncated", Round: k, Outcome: "rejected"})
			sn, err := dist.ReadSnapshot(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("%s: reparse: %v", label, err)
			}
			target := mk()
			if shards > 1 {
				sh, err := graph.NewSharding(n, shards)
				if err != nil {
					t.Fatal(err)
				}
				if target, err = target.Sharded(sh); err != nil {
					t.Fatal(err)
				}
			}
			resumed, err := target.Resume(CleanWave(), dist.RunOptions{InputWords: WaveInputs(n, 7)}, sn)
			if err != nil {
				t.Fatalf("%s: resume: %v", label, err)
			}
			if resumed.Rounds != ref.Rounds || resumed.Messages != ref.Messages ||
				!slices.Equal(resumed.OutputWords, ref.OutputWords) {
				t.Fatalf("%s: resumed run diverges (rounds/messages %d/%d, want %d/%d)",
					label, resumed.Rounds, resumed.Messages, ref.Rounds, ref.Messages)
			}
			Log(Record{Case: "wave", Fault: "kill-resume", Round: k, Outcome: "exact"})
		}
	}
}

// TestChaosProbedResume pins the probed twin's resume accounting: with
// a probe attached, a resumed run's round records carry message deltas
// relative to the restored counters, and the per-round deltas of the
// pre-kill and post-resume runs tile the uninterrupted totals exactly.
func TestChaosProbedResume(t *testing.T) {
	n := 500
	mk := waveNet(t, n)
	ref, err := mk().RunWords(CleanWave(), dist.RunOptions{InputWords: WaveInputs(n, 7)})
	if err != nil {
		t.Fatal(err)
	}
	k := 2
	net := mk()
	res, err := net.RunWords(CleanWave(), dist.RunOptions{
		InputWords: WaveInputs(n, 7), Context: RoundCancel(k), SnapshotOnAbort: true,
	})
	if !errors.Is(err, dist.ErrCanceled) || res.Snapshot == nil {
		t.Fatalf("capture failed: %v", err)
	}
	sink := &FailingSink{Accept: 1 << 30} // never fails; pure counter
	p := dist.NewProbe(sink)
	resumed, err := mk().WithProbe(p).Resume(CleanWave(), dist.RunOptions{InputWords: WaveInputs(n, 7)}, res.Snapshot)
	if err != nil {
		t.Fatalf("probed resume: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if resumed.Rounds != ref.Rounds || resumed.Messages != ref.Messages {
		t.Fatalf("probed resume diverges: rounds/messages %d/%d, want %d/%d",
			resumed.Rounds, resumed.Messages, ref.Rounds, ref.Messages)
	}
	rounds, runs, _ := sink.Counts()
	if runs != 1 {
		t.Fatalf("%d run records, want 1", runs)
	}
	if rounds != ref.Rounds-k {
		t.Fatalf("%d round records for a resume of rounds %d..%d", rounds, k+1, ref.Rounds)
	}
}

// TestChaosFailingSink injects a sink fault mid-trace: the run itself
// must finish untouched, Probe.Close must surface the injected error,
// and run records staged after the fault must carry SinkErr.
func TestChaosFailingSink(t *testing.T) {
	n := 500
	mk := waveNet(t, n)
	ref, err := mk().RunWords(CleanWave(), dist.RunOptions{InputWords: WaveInputs(n, 7)})
	if err != nil {
		t.Fatal(err)
	}
	sink := &FailingSink{Accept: 1} // first flush lands, everything after faults
	p := dist.NewProbe(sink)
	net := mk().WithProbe(p)
	var last *dist.Result
	for i := 0; i < 3; i++ {
		last, err = net.RunWords(CleanWave(), dist.RunOptions{InputWords: WaveInputs(n, 7)})
		if err != nil {
			t.Fatalf("run %d under failing sink: %v", i, err)
		}
		if i == 0 {
			// SinkErr marking is by staging order, so make the fault
			// land before the next run is staged: wait for the flusher
			// to deliver run 0's record and hit the injected fault.
			for deadline := time.Now().Add(5 * time.Second); p.SinkErr() == nil; {
				if time.Now().After(deadline) {
					t.Fatal("probe never noted the injected sink fault")
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
	if last.Rounds != ref.Rounds || last.Messages != ref.Messages ||
		!slices.Equal(last.OutputWords, ref.OutputWords) {
		t.Fatal("failing sink perturbed the run")
	}
	if err := p.Close(); !errors.Is(err, ErrSinkFault) {
		t.Fatalf("Close: err=%v, want the injected sink fault", err)
	}
	if err := p.Close(); !errors.Is(err, ErrSinkFault) {
		t.Fatalf("idempotent Close lost the sink fault: %v", err)
	}
	_, _, marked := sink.Counts()
	if marked == 0 {
		t.Fatal("no run record carried SinkErr after the fault")
	}
	Log(Record{Case: "wave", Fault: "sink-fail", Outcome: "surfaced"})
}

// TestChaosSlowSink injects sink latency larger than the round time:
// the probe's bounded ring must stall producers rather than drop
// records or deadlock, and every record must arrive.
func TestChaosSlowSink(t *testing.T) {
	n := 400
	mk := waveNet(t, n)
	sink := &SlowSink{Delay: 2_000_000} // 2ms per flush
	p := dist.NewProbe(sink)
	res, err := mk().WithProbe(p).RunWords(CleanWave(), dist.RunOptions{InputWords: WaveInputs(n, 7)})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	rounds, runs := sink.Counts()
	if rounds != res.Rounds || runs != 1 {
		t.Fatalf("slow sink received %d/%d records, want %d/1", rounds, runs, res.Rounds)
	}
	Log(Record{Case: "wave", Fault: "sink-slow", Outcome: "backpressure-absorbed"})
}
