package orient

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/forest"
	"repro/internal/graph"
)

func TestPartialOrientationTheorem35(t *testing.T) {
	rng := rand.New(rand.NewSource(500))
	eps := forest.DefaultEps
	for _, a := range []int{2, 4, 8} {
		for _, tt := range []int{1, 2, 4} {
			g := graph.ForestUnion(400, a, rng)
			net := dist.NewNetworkPermuted(g, rng)
			res, err := Partial(net, a, tt, eps, nil, nil)
			if err != nil {
				t.Fatalf("a=%d t=%d: %v", a, tt, err)
			}
			s := MeasureWithin(res.Sigma, nil, nil)
			if !s.Acyclic {
				t.Fatalf("a=%d t=%d: cyclic orientation", a, tt)
			}
			if s.OutDegree > eps.Threshold(a) {
				t.Errorf("a=%d t=%d: out-degree %d > %d", a, tt, s.OutDegree, eps.Threshold(a))
			}
			if s.Deficit > a/tt {
				t.Errorf("a=%d t=%d: deficit %d > floor(a/t)=%d", a, tt, s.Deficit, a/tt)
			}
			// Length <= numLevels * (palette + 1).
			if lim := res.HP.NumLevels * (res.LevelPalette + 1); s.Length > lim {
				t.Errorf("a=%d t=%d: length %d > levels*palette = %d", a, tt, s.Length, lim)
			}
			// O(log n) rounds: H-partition levels dominate.
			if lim := 6*int(math.Log2(float64(g.N()))) + 20; res.Tally.Rounds() > lim {
				t.Errorf("a=%d t=%d: %d rounds > %d", a, tt, res.Tally.Rounds(), lim)
			}
		}
	}
}

func TestPartialRejectsBadT(t *testing.T) {
	net := dist.NewNetwork(graph.Path(4))
	if _, err := Partial(net, 1, 0, forest.DefaultEps, nil, nil); err == nil {
		t.Error("t=0 accepted")
	}
}

func TestCompleteOrientationLemma33(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	eps := forest.DefaultEps
	for _, method := range []LevelColoring{LevelLinial, LevelDeltaPlusOne} {
		a := 4
		g := graph.ForestUnion(300, a, rng)
		net := dist.NewNetworkPermuted(g, rng)
		res, err := Complete(net, a, eps, method, nil, nil)
		if err != nil {
			t.Fatalf("method %d: %v", method, err)
		}
		s := MeasureWithin(res.Sigma, nil, nil)
		if !s.Acyclic {
			t.Fatal("cyclic orientation (Lemma 3.3 violated)")
		}
		if s.Deficit != 0 {
			t.Errorf("method %d: complete orientation has deficit %d", method, s.Deficit)
		}
		if s.OutDegree > eps.Threshold(a) {
			t.Errorf("method %d: out-degree %d > %d", method, s.OutDegree, eps.Threshold(a))
		}
		if lim := res.HP.NumLevels * (res.LevelPalette + 1); s.Length > lim {
			t.Errorf("method %d: length %d > %d", method, s.Length, lim)
		}
	}
}

func TestCompleteDeltaPlusOneShorterThanLinial(t *testing.T) {
	// Lemma 3.3's point: theta+1 level colors give length O(a log n),
	// whereas Linial's theta^2 level colors allow longer paths. The
	// palette comparison must reflect this.
	rng := rand.New(rand.NewSource(502))
	a := 6
	g := graph.ForestUnion(500, a, rng)
	net := dist.NewNetworkPermuted(g, rng)
	rLin, err := Complete(net, a, forest.DefaultEps, LevelLinial, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rDpo, err := Complete(net, a, forest.DefaultEps, LevelDeltaPlusOne, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rDpo.LevelPalette >= rLin.LevelPalette {
		t.Errorf("Delta+1 palette %d not smaller than Linial palette %d",
			rDpo.LevelPalette, rLin.LevelPalette)
	}
	if rDpo.LevelPalette != forest.DefaultEps.Threshold(a)+1 {
		t.Errorf("Delta+1 level palette %d != theta+1 = %d",
			rDpo.LevelPalette, forest.DefaultEps.Threshold(a)+1)
	}
}

func TestCompleteUnknownMethod(t *testing.T) {
	net := dist.NewNetwork(graph.Path(4))
	if _, err := Complete(net, 1, forest.DefaultEps, LevelColoring(99), nil, nil); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestPartialWithinLabels(t *testing.T) {
	// Two subgraphs (even/odd hubs of a forest union) oriented in
	// parallel; deficit measured within labels must obey Theorem 3.5 and
	// cross-label edges must stay unoriented.
	rng := rand.New(rand.NewSource(503))
	a := 4
	g := graph.ForestUnion(300, a, rng)
	labels := make([]int, g.N())
	for v := range labels {
		labels[v] = v % 2
	}
	net := dist.NewNetworkPermuted(g, rng)
	res, err := Partial(net, a, 2, forest.DefaultEps, labels, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := MeasureWithin(res.Sigma, labels, nil)
	if s.OutDegree > forest.DefaultEps.Threshold(a) {
		t.Errorf("out-degree %d too large", s.OutDegree)
	}
	if s.Deficit > a/2 {
		t.Errorf("within-label deficit %d > %d", s.Deficit, a/2)
	}
	for _, e := range g.Edges() {
		if labels[e[0]] != labels[e[1]] && res.Sigma.DirOf(e[0], e[1]) != graph.Unoriented {
			t.Fatalf("cross-label edge %v oriented", e)
		}
	}
}

func TestMeasureWithinIgnoresInactive(t *testing.T) {
	g := graph.Path(4)
	sigma := graph.NewOrientation(g)
	_ = sigma.Orient(0, 1)
	_ = sigma.Orient(1, 2)
	_ = sigma.Orient(2, 3)
	active := []bool{true, true, false, false}
	s := MeasureWithin(sigma, nil, active)
	if s.OutDegree != 1 || s.Deficit != 0 {
		t.Errorf("stats with inactive vertices wrong: %+v", s)
	}
}

func TestPartialLengthScalesWithT(t *testing.T) {
	// Theorem 3.5: length O(t^2 log n). Larger t should allow longer
	// paths via bigger per-level palettes; verify palette grows with t.
	rng := rand.New(rand.NewSource(504))
	a := 16
	g := graph.ForestUnion(400, a, rng)
	net := dist.NewNetworkPermuted(g, rng)
	var prevPalette int
	for _, tt := range []int{1, 2, 4, 8} {
		res, err := Partial(net, a, tt, forest.DefaultEps, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.LevelPalette < prevPalette {
			t.Errorf("t=%d: palette %d shrank from %d", tt, res.LevelPalette, prevPalette)
		}
		prevPalette = res.LevelPalette
	}
}
