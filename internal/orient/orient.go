// Package orient implements Section 3's orientation procedures:
//
//   - Procedure Partial-Orientation (Algorithm 1, Theorem 3.5): an acyclic
//     partial orientation with out-degree floor((2+eps)a), deficit at most
//     floor(a/t) and length O(t^2 log n), computed in O(log n) rounds by
//     combining an H-partition with per-level defective colorings.
//   - Procedure Complete-Orientation (Lemma 3.3): an acyclic complete
//     orientation with out-degree floor((2+eps)a) and length O(a log n)
//     (with per-level (Delta+1)-coloring) or O(a^2 log n) (with the faster
//     per-level Linial coloring), computed in O(a + log n) rounds.
//
// Both run within label-filtered subgraphs so that Procedure Legal-Coloring
// (Algorithm 2) can recurse on all subgraphs in parallel.
package orient

import (
	"fmt"
	"sync"

	"repro/internal/deltacolor"
	"repro/internal/dist"
	"repro/internal/forest"
	"repro/internal/graph"
	"repro/internal/recolor"
)

// LevelColoring selects how Procedure Complete-Orientation colors the
// levels of the H-partition.
type LevelColoring int

const (
	// LevelLinial colors levels with Linial's O(theta^2)-coloring in
	// O(log* n) rounds; orientation length grows to O(a^2 log n).
	LevelLinial LevelColoring = iota + 1
	// LevelDeltaPlusOne colors levels with the linear-in-Delta
	// (theta+1)-coloring of [5, 17]; orientation length is O(a log n) as
	// in Lemma 3.3, at an O(theta) round cost.
	LevelDeltaPlusOne
)

// Result bundles an orientation with the partition that produced it and
// the accumulated cost.
type Result struct {
	Sigma *graph.Orientation
	HP    *forest.HPartition
	// LevelColors is the per-level coloring used as the orientation key.
	LevelColors []int
	// LevelPalette is the number of colors used within each level; the
	// orientation length is at most NumLevels * (LevelPalette + 1).
	LevelPalette int
	Tally        *dist.Tally
}

// Partial computes Procedure Partial-Orientation(G, t) with arboricity
// bound a (Theorem 3.5): out-degree <= floor((2+eps)a), deficit <=
// floor(a/t), length O(t^2 log n), in O(log n) rounds. labels/active
// restrict to subgraphs (each of arboricity <= a); cross-label edges are
// left untouched and do not count towards the deficit.
func Partial(net *dist.Network, a, t int, eps forest.Eps, labels []int, active []bool) (*Result, error) {
	if t < 1 {
		return nil, fmt.Errorf("orient: t must be >= 1, got %d", t)
	}
	return run(net, a, eps, labels, active, func(levelLabels []int) ([]int, int, dist.RunStats, error) {
		// Step 2 of Algorithm 1: floor(a/t)-defective O(t^2)-coloring of
		// each G(H_i) in parallel.
		g := net.Graph()
		n := g.N()
		degBound := eps.Threshold(a)
		target := a / t
		plan := recolor.Plan(n, degBound, target)
		colors := make([]int, n)
		p := recolor.Params{Color: -1, M0: n, DegBound: degBound, TargetDefect: target}
		st, err := recolor.RunUniform(net, p, nil, levelLabels, active, colors)
		if err != nil {
			return nil, 0, dist.RunStats{}, err
		}
		return colors, plan.FinalColors(), st, nil
	})
}

// Complete computes Procedure Complete-Orientation with arboricity bound a
// (Lemma 3.3): a complete acyclic orientation of out-degree
// floor((2+eps)a). The method selects the per-level coloring (see
// LevelColoring). labels/active restrict to subgraphs.
func Complete(net *dist.Network, a int, eps forest.Eps, method LevelColoring, labels []int, active []bool) (*Result, error) {
	return run(net, a, eps, labels, active, func(levelLabels []int) ([]int, int, dist.RunStats, error) {
		g := net.Graph()
		n := g.N()
		degBound := eps.Threshold(a)
		switch method {
		case LevelLinial:
			plan := recolor.Plan(n, degBound, 0)
			colors := make([]int, n)
			p := recolor.Params{Color: -1, M0: n, DegBound: degBound, TargetDefect: 0}
			st, err := recolor.RunUniform(net, p, nil, levelLabels, active, colors)
			if err != nil {
				return nil, 0, dist.RunStats{}, err
			}
			return colors, plan.FinalColors(), st, nil
		case LevelDeltaPlusOne:
			dres, err := deltacolor.ColorWithin(net, levelLabels, active, degBound)
			if err != nil {
				return nil, 0, dist.RunStats{}, err
			}
			st := dist.RunStats{
				Rounds:   dres.Tally.Rounds(),
				Messages: dres.Tally.Messages(),
				Wall:     dres.Tally.Wall(),
				PeakLive: dres.Tally.PeakLive(),
			}
			return dres.Colors, dres.Palette, st, nil
		default:
			return nil, 0, dist.RunStats{}, fmt.Errorf("orient: unknown level coloring %d", method)
		}
	})
}

// run factors the common three-step structure: H-partition, per-level
// coloring within (label x level) classes, then the (level, color)
// orientation exchange.
func run(net *dist.Network, a int, eps forest.Eps, labels []int, active []bool,
	colorLevels func(levelLabels []int) (colors []int, palette int, st dist.RunStats, err error),
) (*Result, error) {
	var tally dist.Tally

	net.Probe().SetPhase("orient/h-partition")
	hp, err := forest.ComputeHPartition(net, a, eps, labels, active)
	if err != nil {
		return nil, err
	}
	tally.AddPhase("h-partition", hp.Rounds, hp.Messages, hp.Wall, hp.PeakLive)

	levelLabels := hp.Level
	if labels != nil {
		levelLabels = dist.ComposeLabels(labels, hp.Level)
	}
	net.Probe().SetPhase("orient/level-coloring")
	colors, palette, st, err := colorLevels(levelLabels)
	if err != nil {
		return nil, err
	}
	tally.AddStats("level-coloring", st)

	net.Probe().SetPhase("orient/orientation")
	or, err := forest.OrientByLevelKey(net, hp.Level, colors, labels, active)
	if err != nil {
		return nil, err
	}
	tally.AddStats("orientation", or.Stats())

	return &Result{
		Sigma:        or.Sigma,
		HP:           hp,
		LevelColors:  colors,
		LevelPalette: palette,
		Tally:        &tally,
	}, nil
}

// Stats are the measured parameters of a (partial) orientation restricted
// to a subgraph family (Section 2.1 definitions).
type Stats struct {
	OutDegree int
	Deficit   int
	Length    int
	Acyclic   bool
}

// MeasureWithin measures out-degree, deficit and length of sigma counting
// only intra-label edges between active vertices. With nil labels/active
// it measures the whole graph. The O(m) per-vertex sweep fans out over
// the available cores under the auto heuristic; pipelines that pin a
// worker count use MeasureWithinWorkers so the knob paces this sweep too.
func MeasureWithin(sigma *graph.Orientation, labels []int, active []bool) Stats {
	return MeasureWithinWorkers(sigma, labels, active, 0)
}

// MeasureWithinWorkers is MeasureWithin on an explicit worker pool: a
// positive count is honored exactly (callers pass
// dist.Network.SweepWorkers), <= 0 means the auto heuristic. Per-chunk
// maxima merge deterministically and each vertex's figures depend only
// on read-only orientation state, so the result is identical at every
// worker count.
func MeasureWithinWorkers(sigma *graph.Orientation, labels []int, active []bool, workers int) Stats {
	g := sigma.Graph()
	var s Stats
	visible := func(v, u int) bool {
		if active != nil && (!active[v] || !active[u]) {
			return false
		}
		return labels == nil || labels[v] == labels[u]
	}
	n := g.N()
	var mu sync.Mutex
	dist.ParallelFor(n, workers, func(lo, hi int) {
		maxOut, maxDef := 0, 0
		for v := lo; v < hi; v++ {
			if active != nil && !active[v] {
				continue
			}
			out, def := 0, 0
			dirs := sigma.PortDirs(v)
			for p, u := range g.Neighbors(v) {
				if !visible(v, u) {
					continue
				}
				switch {
				case dirs[p] == graph.Unoriented:
					def++
				case sigma.IsParentPort(v, p):
					out++
				default:
					// incoming
				}
			}
			if out > maxOut {
				maxOut = out
			}
			if def > maxDef {
				maxDef = def
			}
		}
		mu.Lock()
		if maxOut > s.OutDegree {
			s.OutDegree = maxOut
		}
		if maxDef > s.Deficit {
			s.Deficit = maxDef
		}
		mu.Unlock()
	})
	length, err := sigma.Length()
	s.Acyclic = err == nil
	if s.Acyclic {
		s.Length = length
	}
	return s
}
