package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDegeneracyKnownValues(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{"path", Path(10), 1},
		{"star", Star(10), 1},
		{"grid", Grid(5, 5), 2},
		{"complete", Complete(6), 5},
		{"bipartite", CompleteBipartite(3, 7), 3},
		{"empty", NewBuilder(5).Build(), 0},
	}
	cyc, err := Cycle(7)
	if err != nil {
		t.Fatal(err)
	}
	tests = append(tests, struct {
		name string
		g    *Graph
		want int
	}{"cycle", cyc, 2})
	for _, tc := range tests {
		if d, _ := tc.g.Degeneracy(); d != tc.want {
			t.Errorf("%s: degeneracy = %d, want %d", tc.name, d, tc.want)
		}
	}
}

func TestDegeneracyOrderingProperty(t *testing.T) {
	// Each vertex must have at most d neighbors later in the order.
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 10; trial++ {
		g := Gnp(80, 0.1, rng)
		d, order := g.Degeneracy()
		if len(order) != g.N() {
			t.Fatalf("order has %d entries", len(order))
		}
		pos := make([]int, g.N())
		for i, v := range order {
			pos[v] = i
		}
		for v := 0; v < g.N(); v++ {
			later := 0
			for _, u := range g.Neighbors(v) {
				if pos[u] > pos[v] {
					later++
				}
			}
			if later > d {
				t.Fatalf("vertex %d has %d later neighbors, degeneracy %d", v, later, d)
			}
		}
	}
}

func TestArboricityBoundsBracket(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		g := Gnp(60, 0.15, rng)
		lb, ub := g.ArboricityLowerBound(), g.ArboricityUpperBound()
		if lb > ub {
			t.Fatalf("lower bound %d > upper bound %d", lb, ub)
		}
		// degeneracy <= 2a-1 and a <= degeneracy imply ub <= 2*lb'... we can
		// only check consistency: ub >= lb and ub <= 2*ub trivial; check
		// Nash-Williams density against degeneracy: ceil(m/(n-1)) <= ub.
		if g.N() >= 2 {
			density := (g.M() + g.N() - 2) / (g.N() - 1)
			if density > ub {
				t.Fatalf("density bound %d exceeds degeneracy %d", density, ub)
			}
		}
	}
}

func TestGreedyColorByOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := Gnp(100, 0.1, rng)
	d, order := g.Degeneracy()
	// Reverse degeneracy ordering: color in reverse peel order.
	rev := make([]int, len(order))
	for i, v := range order {
		rev[len(order)-1-i] = v
	}
	colors := g.GreedyColorByOrder(rev)
	if err := g.CheckLegalColoring(colors); err != nil {
		t.Fatal(err)
	}
	if mc := MaxColor(colors); mc > d {
		t.Errorf("greedy used max color %d > degeneracy %d", mc, d)
	}
}

func TestLogStar(t *testing.T) {
	tests := []struct{ n, want int }{
		{1, 0}, {2, 0}, {3, 1}, {4, 1}, {5, 2}, {16, 2}, {17, 3}, {65536, 3}, {65537, 4}, {1 << 30, 4},
	}
	for _, tc := range tests {
		if got := LogStar(tc.n); got != tc.want {
			t.Errorf("LogStar(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestDegeneracyMonotoneQuick(t *testing.T) {
	// Property: adding edges never decreases degeneracy.
	rng := rand.New(rand.NewSource(13))
	prop := func(seed uint32) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		g := Gnp(30, 0.1, r)
		d1, _ := g.Degeneracy()
		// add 5 random edges
		b := NewBuilder(g.N())
		for _, e := range g.Edges() {
			_ = b.AddEdge(e[0], e[1])
		}
		for i := 0; i < 5; i++ {
			u, v := r.Intn(30), r.Intn(30)
			if u != v {
				_ = b.AddEdge(u, v)
			}
		}
		d2, _ := b.Build().Degeneracy()
		return d2 >= d1
	}
	_ = rng
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
