package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
)

// Vertex sharding: a partition of [0, n) into contiguous ranges, the unit
// in which the shard-structured engine (internal/dist) owns topology and
// message columns and in which ReadBinaryShards materializes CSR storage.
// Contiguity is load-bearing twice over: the engine maps a vertex to its
// shard with one table read and a slot to its column with one precomputed
// byte, and the streaming loader fills each shard's backing array with
// plain appends because adjacency entries of one shard never interleave
// with another's allocation.

// MaxShards caps the shard count so per-slot shard indices fit in a byte
// (the engine's boundary tables store one uint8 per delivery slot).
const MaxShards = 256

// Sharding partitions the vertices [0, n) into NumShards contiguous
// ranges. The zero value has no shards and means "unsharded"; consumers
// treat it as one flat range.
type Sharding struct {
	// cuts[k] is the first vertex of shard k; cuts[NumShards] == n.
	cuts []int
}

// NewSharding returns the balanced sharding of n vertices into k
// contiguous ranges: shard i is [i*n/k, (i+1)*n/k), so range sizes differ
// by at most one. k may exceed n (trailing shards are empty).
func NewSharding(n, k int) (Sharding, error) {
	if n < 0 {
		return Sharding{}, fmt.Errorf("graph: sharding %d vertices", n)
	}
	if k < 1 || k > MaxShards {
		return Sharding{}, fmt.Errorf("graph: shard count %d outside [1, %d]", k, MaxShards)
	}
	cuts := make([]int, k+1)
	for i := 0; i <= k; i++ {
		cuts[i] = i * n / k
	}
	return Sharding{cuts: cuts}, nil
}

// autoShardTarget is the vertex count AutoSharding aims to put in one
// shard: large enough that per-shard overheads vanish, small enough that
// a shard's message columns stay cache- and RSS-friendly.
const autoShardTarget = 1 << 18

// AutoSharding returns the deterministic default sharding for n vertices:
// balanced shards of about autoShardTarget vertices, at least 1 and at
// most MaxShards. It depends only on n, so every loader and harness that
// says "auto" agrees on the layout.
func AutoSharding(n int) Sharding {
	if n < 0 {
		n = 0
	}
	k := (n + autoShardTarget - 1) / autoShardTarget
	if k < 1 {
		k = 1
	}
	if k > MaxShards {
		k = MaxShards
	}
	s, err := NewSharding(n, k)
	if err != nil { // unreachable: k is in range by construction
		panic(err)
	}
	return s
}

// NumShards returns the number of shards (0 for the zero value).
func (s Sharding) NumShards() int {
	if len(s.cuts) == 0 {
		return 0
	}
	return len(s.cuts) - 1
}

// N returns the number of vertices partitioned (0 for the zero value).
func (s Sharding) N() int {
	if len(s.cuts) == 0 {
		return 0
	}
	return s.cuts[len(s.cuts)-1]
}

// Bounds returns shard k's vertex range [lo, hi).
func (s Sharding) Bounds(k int) (lo, hi int) { return s.cuts[k], s.cuts[k+1] }

// Len returns the number of vertices in shard k.
func (s Sharding) Len(k int) int { return s.cuts[k+1] - s.cuts[k] }

// ShardOf returns the shard owning vertex v.
func (s Sharding) ShardOf(v int) int {
	// The first cut strictly past v, minus one range start.
	return sort.SearchInts(s.cuts, v+1) - 1
}

// BinStat is the DCG1 header of a binary graph file: the declared sizes
// and the on-disk shard layout, readable without loading the graph.
type BinStat struct {
	N         int // vertex count
	M         int // edge count
	ShardSize int // edges per on-disk shard
	Shards    int // ceil(M / ShardSize); 0 when M == 0
}

// StatBinary reads and validates a DCG1 header from r without loading any
// edges. It performs the same header checks as ReadBinary, so a non-error
// result means the sizes are plausible (the edge payload is not checked).
func StatBinary(r io.Reader) (BinStat, error) {
	var hdr [28]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return BinStat{}, fmt.Errorf("graph: binary header: %w", err)
	}
	n64, m64, shard, err := parseBinHeader(hdr)
	if err != nil {
		return BinStat{}, err
	}
	st := BinStat{N: int(n64), M: int(m64), ShardSize: int(shard)}
	if st.M > 0 {
		st.Shards = (st.M + st.ShardSize - 1) / st.ShardSize
	}
	return st, nil
}

// StatBinaryFile reads the DCG1 header of the file at path.
func StatBinaryFile(path string) (BinStat, error) {
	f, err := os.Open(path)
	if err != nil {
		return BinStat{}, err
	}
	defer f.Close()
	st, err := StatBinary(f)
	if err != nil {
		return BinStat{}, fmt.Errorf("%s: %w", path, err)
	}
	return st, nil
}

// parseBinHeader validates a DCG1 header and returns the declared sizes.
func parseBinHeader(hdr [28]byte) (n64, m64 uint64, shard uint32, err error) {
	if string(hdr[0:4]) != binMagic {
		return 0, 0, 0, fmt.Errorf("graph: bad magic %q (not a %s binary graph)", hdr[0:4], binMagic)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != binVersion {
		return 0, 0, 0, fmt.Errorf("graph: unsupported binary version %d (want %d)", v, binVersion)
	}
	n64 = binary.LittleEndian.Uint64(hdr[8:16])
	m64 = binary.LittleEndian.Uint64(hdr[16:24])
	shard = binary.LittleEndian.Uint32(hdr[24:28])
	if n64 > maxBinVertices {
		return 0, 0, 0, fmt.Errorf("graph: header declares %d vertices (max %d)", n64, maxBinVertices)
	}
	if m64 > maxBinEdges {
		return 0, 0, 0, fmt.Errorf("graph: header declares %d edges (max %d)", m64, maxBinEdges)
	}
	if max := n64 * (n64 - 1) / 2; m64 > max {
		return 0, 0, 0, fmt.Errorf("graph: header declares %d edges but n=%d admits at most %d", m64, n64, max)
	}
	// Isolated vertices cost no payload bytes, so n is otherwise
	// uncorroborated by the input: without this clamp a 28-byte header
	// could demand O(n) adjacency allocations for n up to maxBinVertices.
	if n64 > 2*m64+maxBinFreeVertices {
		return 0, 0, 0, fmt.Errorf("graph: header declares %d vertices with only %d edges (isolated-vertex allowance is 2m+%d)", n64, m64, maxBinFreeVertices)
	}
	if shard < 1 || shard > maxBinShard {
		return 0, 0, 0, fmt.Errorf("graph: shard size %d outside [1, %d]", shard, maxBinShard)
	}
	return n64, m64, shard, nil
}

// OpenBinaryShards loads a DCG1 binary graph file through the streaming
// per-shard path (ReadBinaryShards) with the balanced sharding into the
// given number of vertex shards; shards < 1 selects AutoSharding.
func OpenBinaryShards(path string, shards int) (*Graph, Sharding, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, Sharding{}, err
	}
	defer f.Close()
	g, sh, err := ReadBinaryShards(f, shards)
	if err != nil {
		return nil, Sharding{}, fmt.Errorf("%s: %w", path, err)
	}
	return g, sh, nil
}

// ReadBinaryShards parses the DCG1 binary format in two streaming passes
// and materializes the CSR adjacency one vertex shard at a time. It
// accepts exactly the inputs ReadBinary accepts and builds the identical
// graph (same sorted adjacency, hence identical engine port numbering);
// a fuzz target pins the equivalence.
//
// The point is peak memory. ReadBinary stages every endpoint pair in a
// flat array (8 bytes per edge) before carving the CSR, so its load peak
// is the CSR plus a whole-graph staging copy. This reader streams the
// file once to count degrees (4 bytes per vertex), seeks back, and
// streams again filling one backing allocation per vertex shard - no
// whole-graph staging exists at any point, and the transient working set
// beyond the CSR itself is the degree array plus one I/O buffer. shards
// < 1 selects AutoSharding(n).
func ReadBinaryShards(rs io.ReadSeeker, shards int) (*Graph, Sharding, error) {
	start, err := rs.Seek(0, io.SeekCurrent)
	if err != nil {
		return nil, Sharding{}, fmt.Errorf("graph: sharded reader needs a seekable input: %w", err)
	}
	var hdr [28]byte
	if _, err := io.ReadFull(rs, hdr[:]); err != nil {
		return nil, Sharding{}, fmt.Errorf("graph: binary header: %w", err)
	}
	n64, m64, shardSize, err := parseBinHeader(hdr)
	if err != nil {
		return nil, Sharding{}, err
	}
	n, m := int(n64), int(m64)
	var sh Sharding
	if shards < 1 {
		sh = AutoSharding(n)
	} else if sh, err = NewSharding(n, shards); err != nil {
		return nil, Sharding{}, err
	}
	// The input is a seeker by contract, so a byte-size hint is always
	// available here: reject a forged edge count before the O(n) degree
	// allocation below (parseBinHeader's isolated-vertex clamp already
	// ties n to m, so this bounds both by the input size).
	if end, serr := rs.Seek(0, io.SeekEnd); serr == nil {
		if _, serr = rs.Seek(start+28, io.SeekStart); serr != nil {
			return nil, Sharding{}, fmt.Errorf("graph: rewinding after the size probe: %w", serr)
		}
		if need := binMinPayload(m64, shardSize); end-start-28 < need {
			return nil, Sharding{}, fmt.Errorf("graph: header declares %d edges needing %d payload bytes, input holds %d", m, need, end-start-28)
		}
	}

	// Pass 1: stream the edge payload, validate every record, count
	// degrees. The only O(graph) allocation is the int32 degree array.
	deg := make([]int32, n)
	buf := make([]byte, 8*min(int(shardSize), 1<<13))
	err = scanBinEdges(bufio.NewReaderSize(rs, 1<<20), m, int(shardSize), buf, func(u, v uint32) error {
		if u >= uint32(n) || v >= uint32(n) {
			return fmt.Errorf("edge (%d,%d) out of range [0,%d)", u, v, n)
		}
		if u == v {
			return fmt.Errorf("edge is a self-loop at %d", u)
		}
		deg[u]++
		deg[v]++
		return nil
	})
	if err != nil {
		return nil, Sharding{}, err
	}

	// Carve per-shard CSR backings: adjacency slices of shard k point
	// into backing allocation k only, giving the engine's per-shard
	// sweeps disjoint cache-line territory.
	adj := make([][]int, n)
	for k := 0; k < sh.NumShards(); k++ {
		lo, hi := sh.Bounds(k)
		total := 0
		for v := lo; v < hi; v++ {
			total += int(deg[v])
		}
		backing := make([]int, total)
		off := 0
		for v := lo; v < hi; v++ {
			adj[v] = backing[off:off : off+int(deg[v])]
			off += int(deg[v])
		}
	}

	// Pass 2: seek back and stream again, appending endpoints into the
	// shard backings. The capacity check guards the only way pass 2 can
	// diverge from pass 1 - the underlying file changing between passes -
	// so a concurrent writer cannot make an append silently reallocate a
	// vertex's list outside its shard backing.
	if _, err := rs.Seek(start+28, io.SeekStart); err != nil {
		return nil, Sharding{}, fmt.Errorf("graph: rewinding for the fill pass: %w", err)
	}
	err = scanBinEdges(bufio.NewReaderSize(rs, 1<<20), m, int(shardSize), buf, func(u32, v32 uint32) error {
		u, v := int(u32), int(v32)
		if u >= n || v >= n || len(adj[u]) == cap(adj[u]) || len(adj[v]) == cap(adj[v]) {
			return fmt.Errorf("input changed between the count and fill passes")
		}
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
		return nil
	})
	if err != nil {
		return nil, Sharding{}, err
	}
	for v := 0; v < n; v++ {
		l := adj[v]
		sort.Ints(l)
		for i := 1; i < len(l); i++ {
			if l[i] == l[i-1] {
				return nil, Sharding{}, fmt.Errorf("graph: duplicate edge (%d,%d)", min(v, l[i]), max(v, l[i]))
			}
		}
	}
	return &Graph{n: n, m: m, adj: adj}, sh, nil
}

// scanBinEdges streams the shard-framed edge payload of a DCG1 file,
// validating the framing (shard counts, edge totals, trailing bytes) and
// handing every (u, v) record to visit. buf is the caller-provided record
// buffer; its length bounds the working set.
func scanBinEdges(br *bufio.Reader, m, shardSize int, buf []byte, visit func(u, v uint32) error) error {
	remaining := m
	for si := 0; remaining > 0; si++ {
		var cb [4]byte
		if _, err := io.ReadFull(br, cb[:]); err != nil {
			return fmt.Errorf("graph: shard %d header: %w", si, err)
		}
		count := int(binary.LittleEndian.Uint32(cb[:]))
		if count < 1 || count > shardSize {
			return fmt.Errorf("graph: shard %d declares %d edges (shard size %d)", si, count, shardSize)
		}
		if count > remaining {
			return fmt.Errorf("graph: shard %d declares %d edges, only %d remain of m=%d", si, count, remaining, m)
		}
		for count > 0 {
			k := min(count, len(buf)/8)
			if _, err := io.ReadFull(br, buf[:k*8]); err != nil {
				return fmt.Errorf("graph: shard %d records: %w", si, err)
			}
			for i := 0; i < k; i++ {
				u := binary.LittleEndian.Uint32(buf[i*8:])
				v := binary.LittleEndian.Uint32(buf[i*8+4:])
				if err := visit(u, v); err != nil {
					return fmt.Errorf("graph: edge %d: %w", m-remaining+i, err)
				}
			}
			count -= k
			remaining -= k
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return fmt.Errorf("graph: trailing data after %d edges", m)
	}
	return nil
}
