package graph

import "fmt"

// This file contains verifiers for the coloring notions of Section 2:
// legal colorings, m-defective p-colorings, and r-arbdefective k-colorings
// (Definition 2.1), plus independent-set / MIS checks.

// CheckColoringShape validates that colors assigns a color to every vertex
// (colors[v] >= 0) and len(colors) == n.
func (g *Graph) CheckColoringShape(colors []int) error {
	if len(colors) != g.n {
		return fmt.Errorf("graph: coloring has %d entries for %d vertices", len(colors), g.n)
	}
	for v, c := range colors {
		if c < 0 {
			return fmt.Errorf("graph: vertex %d is uncolored (color %d)", v, c)
		}
	}
	return nil
}

// NumColors returns the number of distinct colors used.
func NumColors(colors []int) int {
	seen := make(map[int]struct{}, len(colors))
	for _, c := range colors {
		seen[c] = struct{}{}
	}
	return len(seen)
}

// MaxColor returns the largest color value used (-1 for empty input).
func MaxColor(colors []int) int {
	m := -1
	for _, c := range colors {
		if c > m {
			m = c
		}
	}
	return m
}

// CheckLegalColoring verifies that no edge is monochromatic.
func (g *Graph) CheckLegalColoring(colors []int) error {
	if err := g.CheckColoringShape(colors); err != nil {
		return err
	}
	for v := 0; v < g.n; v++ {
		for _, u := range g.adj[v] {
			if v < u && colors[v] == colors[u] {
				return fmt.Errorf("graph: edge (%d,%d) is monochromatic with color %d", v, u, colors[v])
			}
		}
	}
	return nil
}

// Defect returns the defect of the coloring: the maximum, over vertices v,
// of the number of neighbors of v sharing v's color.
func (g *Graph) Defect(colors []int) int {
	maxDef := 0
	for v := 0; v < g.n; v++ {
		d := 0
		for _, u := range g.adj[v] {
			if colors[u] == colors[v] {
				d++
			}
		}
		if d > maxDef {
			maxDef = d
		}
	}
	return maxDef
}

// CheckDefectiveColoring verifies an m-defective coloring: every vertex has
// at most maxDefect same-colored neighbors.
func (g *Graph) CheckDefectiveColoring(colors []int, maxDefect int) error {
	if err := g.CheckColoringShape(colors); err != nil {
		return err
	}
	if d := g.Defect(colors); d > maxDefect {
		return fmt.Errorf("graph: coloring has defect %d > %d", d, maxDefect)
	}
	return nil
}

// ColorClasses groups vertices by color.
func ColorClasses(colors []int) map[int][]int {
	classes := make(map[int][]int)
	for v, c := range colors {
		classes[c] = append(classes[c], v)
	}
	return classes
}

// ArbDefect returns an upper bound on the arbdefect of the coloring: the
// maximum degeneracy over color classes. Since arboricity <= degeneracy,
// a return value of r certifies an r-arbdefective coloring (Definition 2.1).
func (g *Graph) ArbDefect(colors []int) int {
	maxArb := 0
	for _, class := range ColorClasses(colors) {
		sub, _, err := g.InducedSubgraph(class)
		if err != nil {
			continue // unreachable: classes are valid vertex sets
		}
		d, _ := sub.Degeneracy()
		if d > maxArb {
			maxArb = d
		}
	}
	return maxArb
}

// CheckArbdefectiveColoring verifies an r-arbdefective coloring using the
// degeneracy certificate: each color class must induce a subgraph of
// degeneracy (hence arboricity) at most r.
func (g *Graph) CheckArbdefectiveColoring(colors []int, r int) error {
	if err := g.CheckColoringShape(colors); err != nil {
		return err
	}
	if a := g.ArbDefect(colors); a > r {
		return fmt.Errorf("graph: coloring has arbdefect (degeneracy bound) %d > %d", a, r)
	}
	return nil
}

// CheckArbdefectWitness verifies an r-arbdefective coloring via an
// orientation witness (Lemma 2.5): within every color class, the witness
// orientation must be acyclic and have out-degree at most r on edges
// internal to the class. This is the exact certificate produced by the
// paper's procedures.
func (g *Graph) CheckArbdefectWitness(colors []int, o *Orientation, r int) error {
	if err := g.CheckColoringShape(colors); err != nil {
		return err
	}
	for c, class := range ColorClasses(colors) {
		sub, orig, err := g.InducedSubgraph(class)
		if err != nil {
			return err
		}
		so := o.InducedOn(sub, orig)
		complete, err := so.Complete()
		if err != nil {
			return fmt.Errorf("graph: color class %d witness: %w", c, err)
		}
		// Out-degree of the completed orientation certifies arboricity
		// <= out-degree (Lemma 2.5); the completion adds at most the
		// deficit to each vertex's out-degree.
		if od := complete.MaxOutDegree(); od > r {
			return fmt.Errorf("graph: color class %d witness out-degree %d > %d", c, od, r)
		}
	}
	return nil
}

// CheckIndependentSet verifies that inSet (indexed by vertex) is an
// independent set.
func (g *Graph) CheckIndependentSet(inSet []bool) error {
	if len(inSet) != g.n {
		return fmt.Errorf("graph: set has %d entries for %d vertices", len(inSet), g.n)
	}
	for v := 0; v < g.n; v++ {
		if !inSet[v] {
			continue
		}
		for _, u := range g.adj[v] {
			if v < u && inSet[u] {
				return fmt.Errorf("graph: edge (%d,%d) inside independent set", v, u)
			}
		}
	}
	return nil
}

// CheckMIS verifies that inSet is a maximal independent set: independent,
// and every vertex outside has a neighbor inside.
func (g *Graph) CheckMIS(inSet []bool) error {
	if err := g.CheckIndependentSet(inSet); err != nil {
		return err
	}
	for v := 0; v < g.n; v++ {
		if inSet[v] {
			continue
		}
		dominated := false
		for _, u := range g.adj[v] {
			if inSet[u] {
				dominated = true
				break
			}
		}
		if !dominated {
			return fmt.Errorf("graph: vertex %d not in MIS and not dominated", v)
		}
	}
	return nil
}
