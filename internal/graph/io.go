package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph in a plain edge-list format:
// first line "n m", then one "u v" line per edge (0-based).
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.n, g.m); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e[0], e[1]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format written by WriteEdgeList. Blank lines and
// lines starting with '#' are ignored. The first non-comment line MUST be
// the "n m" header; because a headerless file's first edge is
// syntactically indistinguishable from a header, the parser validates the
// header's plausibility up front and names the header line in every
// downstream inconsistency, instead of silently sizing the builder from
// an edge. All errors carry 1-based line numbers.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var b *Builder
	declaredN, declaredM := 0, -1
	headerLine := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if b == nil {
			// Header line.
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: malformed \"n m\" header %q (want two integers)", lineNo, line)
			}
			nv, err := strconv.Atoi(fields[0])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: header vertex count %q: %v", lineNo, fields[0], err)
			}
			mv, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: header edge count %q: %v", lineNo, fields[1], err)
			}
			if nv < 0 || mv < 0 {
				return nil, fmt.Errorf("graph: line %d: header %q declares negative sizes", lineNo, line)
			}
			if nv <= maxBinVertices && int64(mv) > int64(nv)*int64(nv-1)/2 {
				return nil, fmt.Errorf("graph: line %d: header declares m=%d edges but n=%d admits at most %d; missing \"n m\" header line?",
					lineNo, mv, nv, int64(nv)*int64(nv-1)/2)
			}
			b = NewBuilder(nv)
			declaredN, declaredM, headerLine = nv, mv, lineNo
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: malformed edge %q (want \"u v\")", lineNo, line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: edge endpoint %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: edge endpoint %q: %v", lineNo, fields[1], err)
		}
		if err := b.AddEdge(u, v); err != nil {
			return nil, fmt.Errorf("graph: line %d: %v (header at line %d declared n=%d; a missing header would make the first edge act as one)",
				lineNo, err, headerLine, declaredN)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: line %d: %w", lineNo+1, err)
	}
	if b == nil {
		return nil, fmt.Errorf("graph: empty input (no \"n m\" header line)")
	}
	g := b.Build()
	if g.M() != declaredM {
		return nil, fmt.Errorf("graph: header at line %d declares m=%d edges, found %d (duplicate edges, truncated file, or missing \"n m\" header?)",
			headerLine, declaredM, g.M())
	}
	return g, nil
}
