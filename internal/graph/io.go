package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph in a plain edge-list format:
// first line "n m", then one "u v" line per edge (0-based).
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.n, g.m); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e[0], e[1]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format written by WriteEdgeList. Blank lines and
// lines starting with '#' are ignored.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var b *Builder
	declared := -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: malformed line %q", line)
		}
		a, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: malformed line %q: %v", line, err)
		}
		c, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: malformed line %q: %v", line, err)
		}
		if b == nil {
			b = NewBuilder(a)
			declared = c
			continue
		}
		if err := b.AddEdge(a, c); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("graph: empty input")
	}
	g := b.Build()
	if declared >= 0 && g.M() != declared {
		return nil, fmt.Errorf("graph: header declares %d edges, found %d", declared, g.M())
	}
	return g, nil
}
