package graph

import (
	"math/rand"
	"testing"
)

// benchOrientation builds a complete towards-larger orientation of a
// Gnp graph, the shape WaitColor/Arb-Kuhn phases query heavily.
func benchOrientation(b *testing.B) (*Graph, *Orientation) {
	b.Helper()
	rng := rand.New(rand.NewSource(5))
	g := Gnp(1000, 0.01, rng)
	o := NewOrientation(g)
	for _, e := range g.Edges() {
		if err := o.Orient(e[0], e[1]); err != nil {
			b.Fatal(err)
		}
	}
	return g, o
}

func BenchmarkOrientationIsParent(b *testing.B) {
	g, o := benchOrientation(b)
	b.ReportAllocs()
	b.ResetTimer()
	sum := 0
	for i := 0; i < b.N; i++ {
		for v := 0; v < g.N(); v++ {
			for _, u := range g.Neighbors(v) {
				if o.IsParent(v, u) {
					sum++
				}
			}
		}
	}
	_ = sum
}

func BenchmarkOrientationIsParentPort(b *testing.B) {
	g, o := benchOrientation(b)
	b.ReportAllocs()
	b.ResetTimer()
	sum := 0
	for i := 0; i < b.N; i++ {
		for v := 0; v < g.N(); v++ {
			for p := range g.Neighbors(v) {
				if o.IsParentPort(v, p) {
					sum++
				}
			}
		}
	}
	_ = sum
}

func BenchmarkOrientationOutDegree(b *testing.B) {
	g, o := benchOrientation(b)
	b.ReportAllocs()
	b.ResetTimer()
	sum := 0
	for i := 0; i < b.N; i++ {
		for v := 0; v < g.N(); v++ {
			sum += o.OutDegree(v)
		}
	}
	_ = sum
}

func BenchmarkOrientationDeficit(b *testing.B) {
	g, o := benchOrientation(b)
	b.ReportAllocs()
	b.ResetTimer()
	sum := 0
	for i := 0; i < b.N; i++ {
		for v := 0; v < g.N(); v++ {
			sum += o.Deficit(v)
		}
	}
	_ = sum
}

func BenchmarkOrientationOrientUnorient(b *testing.B) {
	g, o := benchOrientation(b)
	edges := g.Edges()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := edges[i%len(edges)]
		o.Unorient(e[0], e[1])
		if err := o.Orient(e[0], e[1]); err != nil {
			b.Fatal(err)
		}
	}
}
