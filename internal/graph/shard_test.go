package graph

import (
	"bytes"
	"math/rand"
	"os"
	"reflect"
	"testing"
)

func TestNewShardingBalanced(t *testing.T) {
	cases := []struct{ n, k int }{
		{0, 1}, {0, 4}, {1, 1}, {1, 3}, {10, 1}, {10, 3}, {10, 10},
		{10, 16}, {1000, 7}, {1 << 18, 4}, {5, MaxShards},
	}
	for _, c := range cases {
		sh, err := NewSharding(c.n, c.k)
		if err != nil {
			t.Fatalf("NewSharding(%d,%d): %v", c.n, c.k, err)
		}
		if sh.NumShards() != c.k || sh.N() != c.n {
			t.Fatalf("NewSharding(%d,%d): got %d shards over %d vertices", c.n, c.k, sh.NumShards(), sh.N())
		}
		total, minLen, maxLen := 0, c.n, 0
		prev := 0
		for s := 0; s < sh.NumShards(); s++ {
			lo, hi := sh.Bounds(s)
			if lo != prev || hi < lo {
				t.Fatalf("NewSharding(%d,%d): shard %d bounds [%d,%d) after %d", c.n, c.k, s, lo, hi, prev)
			}
			prev = hi
			l := sh.Len(s)
			total += l
			minLen = min(minLen, l)
			maxLen = max(maxLen, l)
			for v := lo; v < hi; v++ {
				if sh.ShardOf(v) != s {
					t.Fatalf("NewSharding(%d,%d): ShardOf(%d)=%d, want %d", c.n, c.k, v, sh.ShardOf(v), s)
				}
			}
		}
		if total != c.n {
			t.Fatalf("NewSharding(%d,%d): shard lengths sum to %d", c.n, c.k, total)
		}
		if c.n > 0 && maxLen-minLen > 1 {
			t.Fatalf("NewSharding(%d,%d): unbalanced lengths [%d,%d]", c.n, c.k, minLen, maxLen)
		}
	}
}

func TestNewShardingRejectsBadCounts(t *testing.T) {
	for _, k := range []int{0, -1, MaxShards + 1} {
		if _, err := NewSharding(10, k); err == nil {
			t.Fatalf("NewSharding(10,%d) accepted", k)
		}
	}
	if _, err := NewSharding(-1, 2); err == nil {
		t.Fatal("NewSharding(-1,2) accepted")
	}
}

func TestShardingZeroValue(t *testing.T) {
	var sh Sharding
	if sh.NumShards() != 0 || sh.N() != 0 {
		t.Fatalf("zero Sharding reports %d shards over %d vertices", sh.NumShards(), sh.N())
	}
}

func TestAutoShardingDeterministicAndBounded(t *testing.T) {
	for _, n := range []int{0, 1, 100, autoShardTarget - 1, autoShardTarget, autoShardTarget + 1, 10_000_000, 1 << 30} {
		sh := AutoSharding(n)
		if !reflect.DeepEqual(sh, AutoSharding(n)) {
			t.Fatalf("AutoSharding(%d) not deterministic", n)
		}
		k := sh.NumShards()
		if k < 1 || k > MaxShards || sh.N() != n {
			t.Fatalf("AutoSharding(%d): %d shards over %d vertices", n, k, sh.N())
		}
		want := (n + autoShardTarget - 1) / autoShardTarget
		want = max(1, min(want, MaxShards))
		if k != want {
			t.Fatalf("AutoSharding(%d): %d shards, want %d", n, k, want)
		}
	}
}

// shardedEqualsFlat loads enc through both readers and demands identical
// graphs (same adjacency, hence identical engine port numbering).
func shardedEqualsFlat(t *testing.T, enc []byte, shards int) (*Graph, Sharding) {
	t.Helper()
	flat, err := ReadBinary(bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	g, sh, err := ReadBinaryShards(bytes.NewReader(enc), shards)
	if err != nil {
		t.Fatalf("ReadBinaryShards(%d): %v", shards, err)
	}
	if g.N() != flat.N() || g.M() != flat.M() {
		t.Fatalf("ReadBinaryShards(%d): sizes %d/%d, flat %d/%d", shards, g.N(), g.M(), flat.N(), flat.M())
	}
	for v := 0; v < g.N(); v++ {
		if !reflect.DeepEqual(g.Neighbors(v), flat.Neighbors(v)) {
			t.Fatalf("ReadBinaryShards(%d): vertex %d adjacency %v, flat %v", shards, v, g.Neighbors(v), flat.Neighbors(v))
		}
	}
	return g, sh
}

func TestReadBinaryShardsMatchesFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	graphs := map[string]*Graph{
		"empty":     NewBuilder(0).Build(),
		"isolated":  NewBuilder(9).Build(),
		"path":      Path(40),
		"grid":      Grid(7, 9),
		"gnp":       Gnp(200, 0.05, rng),
		"regularly": RandomRegularish(300, 8, rng),
	}
	for name, g := range graphs {
		for _, shardSize := range []int{1, 3, DefaultBinaryShard} {
			var buf bytes.Buffer
			if err := g.WriteBinarySharded(&buf, shardSize); err != nil {
				t.Fatal(err)
			}
			// Shard counts below, at, and above n; 0 selects auto.
			for _, k := range []int{0, 1, 2, 4, 7, g.N() + 3} {
				if k > MaxShards {
					continue
				}
				got, sh := shardedEqualsFlat(t, buf.Bytes(), k)
				if k >= 1 && sh.NumShards() != k {
					t.Fatalf("%s: asked for %d shards, got %d", name, k, sh.NumShards())
				}
				if sh.N() != got.N() {
					t.Fatalf("%s: sharding covers %d of %d vertices", name, sh.N(), got.N())
				}
			}
		}
	}
}

// Cross-shard edges sitting exactly on shard boundaries must land in
// both endpoint shards' backings.
func TestReadBinaryShardsBoundaryEdges(t *testing.T) {
	sh, err := NewSharding(12, 4) // cuts at 0,3,6,9,12
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(12)
	for k := 0; k < sh.NumShards()-1; k++ {
		_, hi := sh.Bounds(k)
		// last vertex of shard k <-> first vertex of shard k+1
		if err := b.AddEdge(hi-1, hi); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := b.Build().WriteBinarySharded(&buf, 2); err != nil {
		t.Fatal(err)
	}
	g, _ := shardedEqualsFlat(t, buf.Bytes(), 4)
	if g.M() != 3 {
		t.Fatalf("boundary chain has %d edges, want 3", g.M())
	}
}

func TestReadBinaryShardsTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := Grid(6, 6).WriteBinarySharded(&buf, 5); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	// Truncations inside the header, at a shard-count boundary, and
	// mid-record must all error, never panic, in both passes.
	for _, cut := range []int{0, 4, 27, 28, 30, 32, 35, len(enc) - 1} {
		if _, _, err := ReadBinaryShards(bytes.NewReader(enc[:cut]), 3); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Trailing garbage must error too.
	if _, _, err := ReadBinaryShards(bytes.NewReader(append(append([]byte{}, enc...), 0)), 3); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestReadBinaryShardsRejectsBadCounts(t *testing.T) {
	var buf bytes.Buffer
	if err := Path(4).WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadBinaryShards(bytes.NewReader(buf.Bytes()), MaxShards+1); err == nil {
		t.Fatalf("shard count %d accepted", MaxShards+1)
	}
}

func TestOpenBinaryShards(t *testing.T) {
	g := Grid(5, 8)
	path := t.TempDir() + "/g.bin"
	var buf bytes.Buffer
	if err := g.WriteBinarySharded(&buf, 7); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, sh, err := OpenBinaryShards(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != g.N() || got.M() != g.M() || sh.NumShards() != 4 {
		t.Fatalf("OpenBinaryShards: n=%d m=%d shards=%d", got.N(), got.M(), sh.NumShards())
	}
	if _, _, err := OpenBinaryShards(path+".missing", 2); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestStatBinary(t *testing.T) {
	g := Grid(6, 6) // n=36, m=60
	var buf bytes.Buffer
	if err := g.WriteBinarySharded(&buf, 7); err != nil {
		t.Fatal(err)
	}
	st, err := StatBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := BinStat{N: 36, M: 60, ShardSize: 7, Shards: 9}
	if st != want {
		t.Fatalf("StatBinary = %+v, want %+v", st, want)
	}
	if _, err := StatBinary(bytes.NewReader([]byte("not a graph file at all, tooshort"))); err == nil {
		t.Fatal("garbage header accepted")
	}

	path := t.TempDir() + "/g.bin"
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := StatBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if st2 != want {
		t.Fatalf("StatBinaryFile = %+v, want %+v", st2, want)
	}
	if _, err := StatBinaryFile(path + ".missing"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestStatBinaryEmptyGraph(t *testing.T) {
	var buf bytes.Buffer
	if err := NewBuilder(5).Build().WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := StatBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 5 || st.M != 0 || st.Shards != 0 {
		t.Fatalf("StatBinary = %+v", st)
	}
}
