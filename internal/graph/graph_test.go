package graph

import (
	"math/rand"
	"testing"
)

func TestBuilderRejectsBadEdges(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(1, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := b.AddEdge(0, 3); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if err := b.AddEdge(-1, 0); err == nil {
		t.Error("negative endpoint accepted")
	}
}

func TestBuilderDeduplicates(t *testing.T) {
	b := NewBuilder(3)
	for i := 0; i < 5; i++ {
		if err := b.AddEdge(0, 1); err != nil {
			t.Fatal(err)
		}
		if err := b.AddEdge(1, 0); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
}

func TestBasicAccessors(t *testing.T) {
	g, err := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 5 {
		t.Fatalf("N,M = %d,%d want 4,5", g.N(), g.M())
	}
	if g.Degree(0) != 3 || g.Degree(1) != 2 {
		t.Errorf("degrees wrong: %d, %d", g.Degree(0), g.Degree(1))
	}
	if g.MaxDegree() != 3 {
		t.Errorf("MaxDegree = %d, want 3", g.MaxDegree())
	}
	if !g.HasEdge(0, 2) || g.HasEdge(1, 3) {
		t.Error("HasEdge wrong")
	}
	if g.PortOf(0, 2) != 1 { // neighbors of 0 sorted: 1,2,3
		t.Errorf("PortOf(0,2) = %d, want 1", g.PortOf(0, 2))
	}
	if g.PortOf(1, 3) != -1 {
		t.Error("PortOf on non-edge should be -1")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := Gnp(50, 0.1, rng)
	edges := g.Edges()
	if len(edges) != g.M() {
		t.Fatalf("Edges() returned %d, M = %d", len(edges), g.M())
	}
	g2, err := FromEdges(g.N(), edges)
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != g.M() {
		t.Fatalf("round trip lost edges: %d vs %d", g2.M(), g.M())
	}
	for _, e := range edges {
		if !g2.HasEdge(e[0], e[1]) {
			t.Fatalf("edge %v lost", e)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g, _ := FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	sub, orig, err := g.InducedSubgraph([]int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 || sub.M() != 1 {
		t.Fatalf("sub N,M = %d,%d want 3,1", sub.N(), sub.M())
	}
	if !sub.HasEdge(0, 1) { // maps to original (1,2)
		t.Error("expected edge between mapped 1 and 2")
	}
	if orig[0] != 1 || orig[1] != 2 || orig[2] != 4 {
		t.Errorf("orig mapping wrong: %v", orig)
	}
	if _, _, err := g.InducedSubgraph([]int{1, 1}); err == nil {
		t.Error("duplicate vertex accepted")
	}
	if _, _, err := g.InducedSubgraph([]int{7}); err == nil {
		t.Error("out-of-range vertex accepted")
	}
}

func TestConnectedComponents(t *testing.T) {
	g, _ := FromEdges(6, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[len(c)]++
	}
	if sizes[3] != 1 || sizes[2] != 1 || sizes[1] != 1 {
		t.Errorf("component sizes wrong: %v", sizes)
	}
}

func TestIsForest(t *testing.T) {
	if !Path(10).IsForest() {
		t.Error("path should be a forest")
	}
	cyc, err := Cycle(5)
	if err != nil {
		t.Fatal(err)
	}
	if cyc.IsForest() {
		t.Error("cycle should not be a forest")
	}
	rng := rand.New(rand.NewSource(2))
	if !RandomTree(100, rng).IsForest() {
		t.Error("random tree should be a forest")
	}
}

func TestGeneratorShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if g := Star(10); g.MaxDegree() != 9 || g.M() != 9 {
		t.Error("star shape wrong")
	}
	if g := Complete(6); g.M() != 15 || g.MaxDegree() != 5 {
		t.Error("complete shape wrong")
	}
	if g := CompleteBipartite(3, 4); g.M() != 12 || g.MaxDegree() != 4 {
		t.Error("bipartite shape wrong")
	}
	if g := Grid(4, 5); g.N() != 20 || g.M() != 4*4+3*5 {
		t.Error("grid shape wrong")
	}
	if _, err := Cycle(2); err == nil {
		t.Error("Cycle(2) accepted")
	}
	g := RandomRegularish(100, 4, rng)
	if g.MaxDegree() > 4 {
		t.Errorf("regularish max degree %d > 4", g.MaxDegree())
	}
}

func TestGnpDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, p := 300, 0.05
	g := Gnp(n, p, rng)
	expect := float64(n*(n-1)/2) * p
	if got := float64(g.M()); got < 0.7*expect || got > 1.3*expect {
		t.Errorf("Gnp edge count %v far from expectation %v", got, expect)
	}
	if Gnp(10, 0, rng).M() != 0 {
		t.Error("Gnp p=0 has edges")
	}
	if Gnp(10, 1, rng).M() != 45 {
		t.Error("Gnp p=1 not complete")
	}
}

func TestForestUnionArboricity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, k := range []int{1, 2, 4, 8} {
		g := ForestUnion(200, k, rng)
		if ub := g.ArboricityUpperBound(); ub > 2*k {
			t.Errorf("ForestUnion k=%d degeneracy %d > 2k", k, ub)
		}
		// True arboricity <= k; Nash-Williams lower bound must respect it.
		if lb := g.ArboricityLowerBound(); lb > k {
			t.Errorf("ForestUnion k=%d lower bound %d > k", k, lb)
		}
	}
}

func TestStarForestRegime(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := StarForest(2000, 2, 3, 500, rng)
	if g.MaxDegree() < 400 {
		t.Errorf("StarForest Delta = %d, want large", g.MaxDegree())
	}
	if ub := g.ArboricityUpperBound(); ub > 8 {
		t.Errorf("StarForest degeneracy %d, want small", ub)
	}
}

func TestPowerLawishDegeneracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := PowerLawish(500, 3, rng)
	if d, _ := g.Degeneracy(); d > 3 {
		t.Errorf("PowerLawish degeneracy %d > k=3", d)
	}
}

func TestUnitDiskish(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := UnitDiskish(100, 10, 1.5, rng)
	if g.N() != 100 {
		t.Fatal("wrong size")
	}
	// Just sanity: some edges, not complete.
	if g.M() == 0 || g.M() == 100*99/2 {
		t.Errorf("suspicious edge count %d", g.M())
	}
}
