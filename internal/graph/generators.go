package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// Generators for the workload families used by the experiments. All take an
// explicit *rand.Rand so runs are reproducible from a seed.

// Path returns the path on n vertices.
func Path(n int) *Graph {
	b := NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		_ = b.AddEdge(v, v+1)
	}
	return b.Build()
}

// Cycle returns the cycle on n >= 3 vertices.
func Cycle(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: cycle needs n >= 3, got %d", n)
	}
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		_ = b.AddEdge(v, (v+1)%n)
	}
	return b.Build(), nil
}

// Star returns the star K_{1,n-1} with center 0.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		_ = b.AddEdge(0, v)
	}
	return b.Build()
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			_ = b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// CompleteBipartite returns K_{l,r}: vertices 0..l-1 on the left,
// l..l+r-1 on the right.
func CompleteBipartite(l, r int) *Graph {
	b := NewBuilder(l + r)
	for u := 0; u < l; u++ {
		for v := 0; v < r; v++ {
			_ = b.AddEdge(u, l+v)
		}
	}
	return b.Build()
}

// Grid returns the rows x cols grid graph (arboricity <= 2).
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	at := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				_ = b.AddEdge(at(r, c), at(r, c+1))
			}
			if r+1 < rows {
				_ = b.AddEdge(at(r, c), at(r+1, c))
			}
		}
	}
	return b.Build()
}

// RandomTree returns a uniformly random labelled tree on n vertices
// (random attachment: vertex i attaches to a uniform earlier vertex; this is
// a random recursive tree, adequate for benchmarking).
func RandomTree(n int, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		_ = b.AddEdge(v, rng.Intn(v))
	}
	return b.Build()
}

// Gnp returns an Erdos-Renyi G(n, p) graph, using geometric skipping so
// sparse graphs are generated in O(n + m) expected time.
func Gnp(n int, p float64, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	if p <= 0 || n < 2 {
		return b.Build()
	}
	if p >= 1 {
		return Complete(n)
	}
	logq := math.Log(1 - p)
	// Enumerate pairs (u,v), u<v, as a flat index and jump geometrically.
	total := n * (n - 1) / 2
	pos := -1
	for {
		u01 := rng.Float64()
		if u01 >= 1 {
			u01 = math.Nextafter(1, 0)
		}
		pos += 1 + int(math.Log(1-u01)/logq)
		if pos >= total || pos < 0 {
			return b.Build()
		}
		// Decode pos into (u, v).
		u := 0
		rem := pos
		rowLen := n - 1
		for rem >= rowLen {
			rem -= rowLen
			u++
			rowLen--
		}
		_ = b.AddEdge(u, u+1+rem)
	}
}

// ForestUnion returns a graph that is the union of k random spanning-ish
// forests on n vertices, so its arboricity is at most k by construction.
// Each forest is a random recursive tree over a random permutation of the
// vertices; overlapping edges are deduplicated (arboricity only drops).
func ForestUnion(n, k int, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	perm := make([]int, n)
	for f := 0; f < k; f++ {
		copy(perm, rng.Perm(n))
		for i := 1; i < n; i++ {
			_ = b.AddEdge(perm[i], perm[rng.Intn(i)])
		}
	}
	return b.Build()
}

// StarForest returns a graph of small arboricity but huge maximum degree:
// the union of `arb` random forests (arboricity <= arb+1) plus `hubs`
// high-degree star centers each connected to a random sample of
// `hubDegree` vertices. Stars form one extra forest, so arboricity <= arb+1,
// while Delta >= hubDegree. This is the paper's favourable regime
// (a polynomially smaller than Delta), used by experiments E13 and E18.
func StarForest(n, arb, hubs, hubDegree int, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	perm := make([]int, n)
	for f := 0; f < arb; f++ {
		copy(perm, rng.Perm(n))
		for i := 1; i < n; i++ {
			_ = b.AddEdge(perm[i], perm[rng.Intn(i)])
		}
	}
	if hubDegree >= n {
		hubDegree = n - 1
	}
	for h := 0; h < hubs && h < n; h++ {
		// Hub h connects to hubDegree distinct random non-hub vertices.
		for _, off := range rng.Perm(n - hubs)[:min(hubDegree, n-hubs)] {
			_ = b.AddEdge(h, hubs+off)
		}
	}
	return b.Build()
}

// PowerLawish returns a preferential-attachment graph where each new vertex
// attaches to k earlier vertices chosen proportionally to degree+1.
// Such graphs have degeneracy <= k (hence arboricity <= k) and a heavy
// degree tail, mimicking social-network workloads.
func PowerLawish(n, k int, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	// Repeated-endpoint list for proportional sampling.
	endpoints := make([]int, 0, 2*n*k)
	endpoints = append(endpoints, 0)
	for v := 1; v < n; v++ {
		attach := k
		if v < k {
			attach = v
		}
		chosen := make(map[int]struct{}, attach)
		for len(chosen) < attach {
			u := endpoints[rng.Intn(len(endpoints))]
			if u != v {
				chosen[u] = struct{}{}
			}
		}
		for u := range chosen {
			_ = b.AddEdge(v, u)
			endpoints = append(endpoints, u)
		}
		endpoints = append(endpoints, v)
	}
	return b.Build()
}

// RandomRegularish returns a graph where every vertex has degree ~d, built
// by the pairing model with collision retries (simple graph, near-regular).
func RandomRegularish(n, d int, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	stubs := make([]int, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	for i := 0; i+1 < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u != v {
			_ = b.AddEdge(u, v) // duplicates silently dropped
		}
	}
	return b.Build()
}

// UnitDiskish returns a random geometric ("unit disk") graph on an
// r x r torus grid: n points placed uniformly, edges between points at
// grid distance <= radius. Models wireless sensor networks (example app).
func UnitDiskish(n int, side, radius float64, rng *rand.Rand) *Graph {
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * side
		ys[i] = rng.Float64() * side
	}
	b := NewBuilder(n)
	r2 := radius * radius
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dx, dy := xs[u]-xs[v], ys[u]-ys[v]
			if dx*dx+dy*dy <= r2 {
				_ = b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}
