package graph

import "math"

// Degeneracy returns the degeneracy d of the graph together with a
// degeneracy ordering (an ordering in which every vertex has at most d
// neighbors appearing later). Computed by the standard smallest-last
// peeling in O(n + m).
//
// Degeneracy brackets arboricity: a(G) <= degeneracy(G) <= 2*a(G) - 1
// (for graphs with at least one edge), so it is the workhorse for
// verifying arbdefective colorings without solving matroid union.
func (g *Graph) Degeneracy() (d int, order []int) {
	n := g.n
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = len(g.adj[v])
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket queue over current degrees.
	buckets := make([][]int, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], v)
	}
	removed := make([]bool, n)
	order = make([]int, 0, n)
	cur := 0
	for len(order) < n {
		if cur > maxDeg {
			break
		}
		if len(buckets[cur]) == 0 {
			cur++
			continue
		}
		v := buckets[cur][len(buckets[cur])-1]
		buckets[cur] = buckets[cur][:len(buckets[cur])-1]
		if removed[v] || deg[v] != cur {
			continue // stale bucket entry
		}
		removed[v] = true
		order = append(order, v)
		if cur > d {
			d = cur
		}
		for _, u := range g.adj[v] {
			if !removed[u] {
				deg[u]--
				buckets[deg[u]] = append(buckets[deg[u]], u)
				if deg[u] < cur {
					cur = deg[u]
				}
			}
		}
	}
	return d, order
}

// ArboricityUpperBound returns degeneracy(G), an upper bound on a(G).
func (g *Graph) ArboricityUpperBound() int {
	d, _ := g.Degeneracy()
	return d
}

// ArboricityLowerBound returns ceil(m / (n-1)) for the whole graph
// (the Nash-Williams density bound applied to the trivial subgraph),
// and at least ceil((degeneracy+1)/2), both valid lower bounds on a(G).
func (g *Graph) ArboricityLowerBound() int {
	lb := 0
	if g.n >= 2 {
		lb = (g.m + g.n - 2) / (g.n - 1) // ceil(m/(n-1))
	}
	d, _ := g.Degeneracy()
	if dl := (d + 1) / 2; dl > lb {
		lb = dl
	}
	if g.m > 0 && lb < 1 {
		lb = 1
	}
	return lb
}

// GreedyColorByOrder colors vertices greedily in the given order, each
// vertex taking the smallest color (0-based) unused by already-colored
// neighbors. With a reverse degeneracy ordering it uses at most
// degeneracy+1 colors. This is the centralized reference used by tests
// and by the MIS/coloring verifiers.
func (g *Graph) GreedyColorByOrder(order []int) []int {
	colors := make([]int, g.n)
	for i := range colors {
		colors[i] = -1
	}
	taken := make(map[int]struct{})
	for _, v := range order {
		clear(taken)
		for _, u := range g.adj[v] {
			if colors[u] >= 0 {
				taken[colors[u]] = struct{}{}
			}
		}
		c := 0
		for {
			if _, used := taken[c]; !used {
				break
			}
			c++
		}
		colors[v] = c
	}
	return colors
}

// LogStar returns log* n: the number of times log2 must be iterated,
// starting from n, before the value drops to at most 2.
func LogStar(n int) int {
	count := 0
	x := float64(n)
	for x > 2 {
		x = math.Log2(x)
		count++
	}
	return count
}
