package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
)

// Binary graph format ("DCG1"), the large-instance companion of the text
// edge list. Everything is little-endian:
//
//	magic   [4]byte "DCG1"
//	version uint32  (currently 1)
//	n       uint64  vertex count
//	m       uint64  edge count
//	shard   uint32  edges per shard
//
// followed by ceil(m/shard) shards, each
//
//	count uint32            edges in this shard (== shard except the last)
//	count x (u, v) uint32   edge endpoints, u < v
//
// Shards bound the reader's working set (the chunked reader never buffers
// more than one shard's worth of records at a time) and give loaders a
// natural unit for future parallel or partial ingestion. An n=10^6,
// m=8*10^6 instance is a 64 MB file that loads in a single pass with no
// per-edge allocation, where the text format needs ~120 MB and a
// strconv round trip per edge.

const (
	binMagic   = "DCG1"
	binVersion = 1

	// DefaultBinaryShard is the shard granularity WriteBinary uses.
	DefaultBinaryShard = 1 << 16

	maxBinVertices = 1<<31 - 1
	maxBinEdges    = 1<<31 - 1
	maxBinShard    = 1 << 24

	// maxBinFreeVertices bounds the vertices a header may declare beyond
	// the edge-backed ones (2m endpoints). Isolated vertices cost zero
	// payload bytes, so without this clamp a 28-byte file could demand
	// O(n) adjacency allocations for any n up to maxBinVertices - an
	// allocation bomb on untrusted input. With it, the readers' O(n+m)
	// working set is bounded by a constant multiple of the input size
	// plus this fixed slack. The writer enforces the same bound so every
	// written file loads back.
	maxBinFreeVertices = 1 << 21
)

// binMinPayload is the smallest possible byte size of the edge payload
// for m declared edges at the given on-disk shard size: one 4-byte count
// per maximally-packed shard plus 8 bytes per edge. (Sparser framings
// are legal and larger, so this is a floor, not the exact size.)
func binMinPayload(m64 uint64, shard uint32) int64 {
	if m64 == 0 {
		return 0
	}
	shards := (m64 + uint64(shard) - 1) / uint64(shard)
	return int64(4*shards + 8*m64)
}

// byteSizeHint reports the bytes remaining in r when it is seekable, or
// -1 when it is not (position is restored either way). Readers use it to
// reject forged headers whose declared sizes could not possibly fit the
// input, before any size-proportional allocation.
func byteSizeHint(r io.Reader) int64 {
	s, ok := r.(io.Seeker)
	if !ok {
		return -1
	}
	cur, err := s.Seek(0, io.SeekCurrent)
	if err != nil {
		return -1
	}
	end, err := s.Seek(0, io.SeekEnd)
	if err != nil {
		return -1
	}
	if _, err := s.Seek(cur, io.SeekStart); err != nil {
		return -1
	}
	return end - cur
}

// WriteBinary writes the graph in the DCG1 binary format with the default
// shard size.
func (g *Graph) WriteBinary(w io.Writer) error {
	return g.WriteBinarySharded(w, DefaultBinaryShard)
}

// WriteBinarySharded writes the DCG1 format with an explicit shard size.
func (g *Graph) WriteBinarySharded(w io.Writer, shardSize int) error {
	if shardSize < 1 || shardSize > maxBinShard {
		return fmt.Errorf("graph: binary shard size %d outside [1, %d]", shardSize, maxBinShard)
	}
	if g.n > maxBinVertices {
		return fmt.Errorf("graph: %d vertices exceed the binary format's %d", g.n, maxBinVertices)
	}
	if g.m > maxBinEdges {
		return fmt.Errorf("graph: %d edges exceed the binary format's %d", g.m, maxBinEdges)
	}
	if uint64(g.n) > 2*uint64(g.m)+maxBinFreeVertices {
		return fmt.Errorf("graph: %d vertices with only %d edges exceed the binary format's isolated-vertex allowance (2m+%d)", g.n, g.m, maxBinFreeVertices)
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	var hdr [28]byte
	copy(hdr[0:4], binMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], binVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(g.n))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(g.m))
	binary.LittleEndian.PutUint32(hdr[24:28], uint32(shardSize))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [8]byte
	written, pending := 0, 0
	for v := 0; v < g.n; v++ {
		for _, u := range g.adj[v] {
			if u < v {
				continue // each edge once, from its smaller endpoint
			}
			if pending == 0 {
				pending = g.m - written
				if pending > shardSize {
					pending = shardSize
				}
				binary.LittleEndian.PutUint32(rec[:4], uint32(pending))
				if _, err := bw.Write(rec[:4]); err != nil {
					return err
				}
			}
			binary.LittleEndian.PutUint32(rec[0:4], uint32(v))
			binary.LittleEndian.PutUint32(rec[4:8], uint32(u))
			if _, err := bw.Write(rec[:]); err != nil {
				return err
			}
			written++
			pending--
		}
	}
	return bw.Flush()
}

// OpenBinary loads a DCG1 binary graph file (see WriteBinary).
func OpenBinary(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := ReadBinary(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// ReadBinary parses the DCG1 binary format through a chunked single-pass
// reader: shards stream through a fixed-size record buffer into a flat
// endpoint array, and the adjacency structure is carved out of one
// backing allocation. It validates magic, version, declared sizes, edge
// endpoints, self-loops, duplicates and trailing garbage, and bounds its
// allocations by the input size (a seekable r is probed for a byte-size
// hint; otherwise edge storage grows only as records actually arrive),
// so it is safe on untrusted input (see FuzzReadBinary).
func ReadBinary(r io.Reader) (*Graph, error) {
	hint := byteSizeHint(r)
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [28]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: binary header: %w", err)
	}
	n64, m64, shard, err := parseBinHeader(hdr)
	if err != nil {
		return nil, err
	}
	if need := binMinPayload(m64, shard); hint >= 0 && hint < 28+need {
		return nil, fmt.Errorf("graph: header declares %d edges needing %d payload bytes, input holds %d", m64, need, hint-28)
	}
	n, m := int(n64), int(m64)

	// Endpoint array, grown as shards arrive so a forged header cannot
	// force a huge allocation up front.
	ends := make([]uint32, 0, min(2*m, 1<<20))
	buf := make([]byte, 8*min(int(shard), 1<<13))
	remaining := m
	for si := 0; remaining > 0; si++ {
		var cb [4]byte
		if _, err := io.ReadFull(br, cb[:]); err != nil {
			return nil, fmt.Errorf("graph: shard %d header: %w", si, err)
		}
		count := int(binary.LittleEndian.Uint32(cb[:]))
		if count < 1 || count > int(shard) {
			return nil, fmt.Errorf("graph: shard %d declares %d edges (shard size %d)", si, count, shard)
		}
		if count > remaining {
			return nil, fmt.Errorf("graph: shard %d declares %d edges, only %d remain of m=%d", si, count, remaining, m)
		}
		for count > 0 {
			k := min(count, len(buf)/8)
			if _, err := io.ReadFull(br, buf[:k*8]); err != nil {
				return nil, fmt.Errorf("graph: shard %d records: %w", si, err)
			}
			for i := 0; i < k; i++ {
				u := binary.LittleEndian.Uint32(buf[i*8:])
				v := binary.LittleEndian.Uint32(buf[i*8+4:])
				if u >= uint32(n) || v >= uint32(n) {
					return nil, fmt.Errorf("graph: edge %d (%d,%d) out of range [0,%d)", m-remaining+i, u, v, n)
				}
				if u == v {
					return nil, fmt.Errorf("graph: edge %d is a self-loop at %d", m-remaining+i, u)
				}
				ends = append(ends, u, v)
			}
			count -= k
			remaining -= k
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("graph: trailing data after %d edges", m)
	}

	// Carve the adjacency lists out of one backing array (CSR layout).
	deg := make([]int32, n)
	for i := 0; i < len(ends); i += 2 {
		deg[ends[i]]++
		deg[ends[i+1]]++
	}
	backing := make([]int, 2*m)
	adj := make([][]int, n)
	off := 0
	for v := 0; v < n; v++ {
		adj[v] = backing[off : off : off+int(deg[v])]
		off += int(deg[v])
	}
	for i := 0; i < len(ends); i += 2 {
		u, v := int(ends[i]), int(ends[i+1])
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	for v := 0; v < n; v++ {
		l := adj[v]
		sort.Ints(l)
		for i := 1; i < len(l); i++ {
			if l[i] == l[i-1] {
				return nil, fmt.Errorf("graph: duplicate edge (%d,%d)", min(v, l[i]), max(v, l[i]))
			}
		}
	}
	return &Graph{n: n, m: m, adj: adj}, nil
}

// Load reads a graph from r in either supported format, sniffing the
// DCG1 magic to pick the binary or the text edge-list parser.
func Load(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	head, err := br.Peek(4)
	if err == nil && string(head) == binMagic {
		return ReadBinary(br)
	}
	return ReadEdgeList(br)
}

// LoadFile reads a graph file in either supported format.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}
