package graph

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// The fuzz targets assert the parser contract on arbitrary bytes: never
// panic, allocate only O(n + m) of the *declared* graph (edge storage
// grows as records actually arrive, so a forged edge count cannot force
// a large up-front allocation), and on success return a graph whose
// invariants hold and which round-trips through its own writer. CI runs
// the seed corpus as ordinary tests; `go test -fuzz FuzzReadBinary
// ./internal/graph/` explores further.

func checkParsedGraph(t *testing.T, g *Graph) {
	t.Helper()
	if g == nil {
		t.Fatal("nil graph without error")
	}
	m2 := 0
	for v := 0; v < g.N(); v++ {
		prev := -1
		for _, u := range g.Neighbors(v) {
			if u < 0 || u >= g.N() || u == v {
				t.Fatalf("vertex %d has invalid neighbor %d", v, u)
			}
			if u <= prev {
				t.Fatalf("vertex %d adjacency not sorted-unique: %v", v, g.Neighbors(v))
			}
			prev = u
			m2++
		}
	}
	if m2 != 2*g.M() {
		t.Fatalf("adjacency holds %d entries, want 2m=%d", m2, 2*g.M())
	}
}

// hostileHeader forges a well-formed DCG1 header with the given declared
// sizes and no payload - the allocation-bomb shape the readers' clamps
// must reject before any size-proportional allocation.
func hostileHeader(n, m uint64, shard uint32) []byte {
	hdr := make([]byte, 28)
	copy(hdr, "DCG1")
	binary.LittleEndian.PutUint32(hdr[4:8], 1)
	binary.LittleEndian.PutUint64(hdr[8:16], n)
	binary.LittleEndian.PutUint64(hdr[16:24], m)
	binary.LittleEndian.PutUint32(hdr[24:28], shard)
	return hdr
}

func FuzzReadBinary(f *testing.F) {
	rng := rand.New(rand.NewSource(99))
	for _, g := range []*Graph{NewBuilder(0).Build(), Path(3), Gnp(60, 0.1, rng)} {
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	var shardy bytes.Buffer
	if err := Grid(6, 6).WriteBinarySharded(&shardy, 5); err != nil {
		f.Fatal(err)
	}
	f.Add(shardy.Bytes())
	f.Add([]byte("DCG1"))
	f.Add([]byte{})
	f.Add(hostileHeader(1<<30, 0, 1<<16))     // n bomb: no edges back the vertices
	f.Add(hostileHeader(1<<20, 1<<28, 1<<16)) // m bomb: payload bytes absent
	f.Add(hostileHeader(1<<22, 1<<8, 1<<16))  // n past the isolated-vertex slack

	f.Fuzz(func(t *testing.T, data []byte) {
		// The isolated-vertex clamp caps accepted n at 2m + 2^21, but a
		// near-slack header still costs ~60 MB of adjacency per exec;
		// keep the fuzzer exploring parse logic instead of allocators.
		if len(data) >= 16 && binary.LittleEndian.Uint64(data[8:16]) > 1<<21 {
			t.Skip("oversized declared n")
		}
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		checkParsedGraph(t, g)
		var out bytes.Buffer
		if err := g.WriteBinary(&out); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		g2, err := ReadBinary(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("round trip changed sizes: %d/%d -> %d/%d", g.N(), g.M(), g2.N(), g2.M())
		}
	})
}

// FuzzReadBinaryShards pins the streaming per-shard reader to the flat
// reader: on every input the two must agree error-or-graph, and on
// success produce identical adjacency (the engine's port numbering).
// The shard count is fuzzed alongside the bytes so boundary conditions
// (empty vertex shards, k > n, cross-shard edges at cut points) fall out
// of exploration rather than hand-picked cases.
func FuzzReadBinaryShards(f *testing.F) {
	rng := rand.New(rand.NewSource(99))
	for _, g := range []*Graph{NewBuilder(0).Build(), Path(3), Gnp(60, 0.1, rng)} {
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes(), 4)
	}
	var shardy bytes.Buffer
	if err := Grid(6, 6).WriteBinarySharded(&shardy, 5); err != nil {
		f.Fatal(err)
	}
	f.Add(shardy.Bytes(), 1)
	f.Add(shardy.Bytes(), 0) // auto
	f.Add(shardy.Bytes(), 100)
	f.Add(shardy.Bytes()[:len(shardy.Bytes())-3], 2) // truncated mid-record
	f.Add([]byte("DCG1"), 2)
	f.Add([]byte{}, 3)
	f.Add(hostileHeader(1<<30, 0, 1<<16), 4)     // n bomb
	f.Add(hostileHeader(1<<20, 1<<28, 1<<16), 4) // m bomb
	f.Add(hostileHeader(1<<22, 1<<8, 1<<16), 4)  // n past the slack

	f.Fuzz(func(t *testing.T, data []byte, shards int) {
		if shards > MaxShards {
			shards = MaxShards
		}
		if len(data) >= 16 && binary.LittleEndian.Uint64(data[8:16]) > 1<<21 {
			t.Skip("oversized declared n")
		}
		flat, flatErr := ReadBinary(bytes.NewReader(data))
		g, sh, err := ReadBinaryShards(bytes.NewReader(data), shards)
		if (err == nil) != (flatErr == nil) {
			t.Fatalf("readers disagree: sharded err=%v, flat err=%v", err, flatErr)
		}
		if err != nil {
			return
		}
		checkParsedGraph(t, g)
		if g.N() != flat.N() || g.M() != flat.M() {
			t.Fatalf("sharded %d/%d vs flat %d/%d", g.N(), g.M(), flat.N(), flat.M())
		}
		for v := 0; v < g.N(); v++ {
			a, b := g.Neighbors(v), flat.Neighbors(v)
			if len(a) != len(b) {
				t.Fatalf("vertex %d: sharded degree %d, flat %d", v, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("vertex %d adjacency diverges at %d: %d vs %d", v, i, a[i], b[i])
				}
			}
		}
		if sh.N() != g.N() || sh.NumShards() < 1 {
			t.Fatalf("sharding %d vertices in %d shards for n=%d", sh.N(), sh.NumShards(), g.N())
		}
	})
}

func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("4 3\n0 1\n1 2\n2 3\n"))
	f.Add([]byte("0 0\n"))
	f.Add([]byte("# comment\n\n2 1\n0 1\n"))
	f.Add([]byte("0 1\n1 2\n"))  // headerless
	f.Add([]byte("3 17\n"))      // impossible header
	f.Add([]byte("5 1\n1 1\n"))  // self-loop
	f.Add([]byte("1000000 0\n")) // big but legal
	f.Add([]byte("9 9 9\n"))     // three fields

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			return
		}
		checkParsedGraph(t, g)
		var out bytes.Buffer
		if err := g.WriteEdgeList(&out); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if _, err := ReadEdgeList(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
	})
}
