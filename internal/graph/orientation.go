package graph

import (
	"errors"
	"fmt"
)

// Dir is the direction assigned to an edge by a (partial) orientation,
// relative to the edge's endpoint pair (u, v) with u < v.
type Dir int8

const (
	// Unoriented means the orientation leaves the edge undirected.
	Unoriented Dir = iota
	// Forward orients u -> v (towards the larger endpoint).
	Forward
	// Backward orients v -> u (towards the smaller endpoint).
	Backward
)

// ErrCyclic is returned when an operation requires an acyclic orientation.
var ErrCyclic = errors.New("graph: orientation contains a directed cycle")

// Orientation is a partial orientation sigma of a graph's edge set
// (Section 2.1 of the paper): every edge is oriented towards one endpoint
// or left unoriented. The key parameters are its out-degree, its deficit
// (max number of unoriented edges at a vertex) and its length (longest
// consistently-directed path).
//
// The representation is dense and port-indexed: each vertex stores one
// Dir per port, aligned with Neighbors(v), and out-degrees and oriented
// counts are maintained incrementally. The stored Dir is the edge's
// canonical direction relative to its (min,max) endpoint order and is
// kept identical at both endpoints, so the representation is canonical:
// a port holding Unoriented IS the unoriented state (there is no
// "explicit Unoriented entry" distinct from an absent one, which the old
// map-backed representation allowed and IsComplete miscounted).
type Orientation struct {
	g     *Graph
	flat  []Dir   // backing storage, one entry per (vertex, port)
	ports [][]Dir // ports[v][p] = canonical Dir of edge {v, Neighbors(v)[p]}
	// Cached aggregates, maintained by Orient/Unorient.
	outDeg     []int // outDeg[v] = #edges oriented away from v
	orientedAt []int // orientedAt[v] = #oriented edges incident to v
	oriented   int   // #oriented edges overall
}

// NewOrientation returns the empty (fully unoriented) orientation of g.
func NewOrientation(g *Graph) *Orientation {
	flat := make([]Dir, 2*g.M())
	ports := make([][]Dir, g.N())
	off := 0
	for v := 0; v < g.N(); v++ {
		d := g.Degree(v)
		ports[v] = flat[off : off+d : off+d]
		off += d
	}
	return &Orientation{
		g:          g,
		flat:       flat,
		ports:      ports,
		outDeg:     make([]int, g.N()),
		orientedAt: make([]int, g.N()),
	}
}

// Graph returns the underlying graph.
func (o *Orientation) Graph() *Graph { return o.g }

// edgeTail returns the endpoint the edge {u,v} is oriented away from,
// given its canonical direction d (which must not be Unoriented).
func edgeTail(u, v int, d Dir) int {
	lo, hi := u, v
	if lo > hi {
		lo, hi = hi, lo
	}
	if d == Forward {
		return lo
	}
	return hi
}

// Orient directs the edge {u,v} from u towards v (v becomes a parent of u).
// It returns an error if {u,v} is not an edge.
func (o *Orientation) Orient(from, to int) error {
	pf := o.g.PortOf(from, to)
	if pf < 0 {
		return fmt.Errorf("graph: (%d,%d) is not an edge", from, to)
	}
	pt := o.g.PortOf(to, from)
	d := Forward
	if from > to {
		d = Backward
	}
	old := o.ports[from][pf]
	if old == d {
		return nil
	}
	if old == Unoriented {
		o.oriented++
		o.orientedAt[from]++
		o.orientedAt[to]++
	} else {
		o.outDeg[edgeTail(from, to, old)]--
	}
	o.outDeg[from]++
	o.ports[from][pf] = d
	o.ports[to][pt] = d
	return nil
}

// Unorient removes any direction from the edge {u,v}.
func (o *Orientation) Unorient(u, v int) {
	pu := o.g.PortOf(u, v)
	if pu < 0 {
		return
	}
	old := o.ports[u][pu]
	if old == Unoriented {
		return
	}
	o.outDeg[edgeTail(u, v, old)]--
	o.oriented--
	o.orientedAt[u]--
	o.orientedAt[v]--
	o.ports[u][pu] = Unoriented
	o.ports[v][o.g.PortOf(v, u)] = Unoriented
}

// DirOf returns the direction of edge {u,v} relative to (min,max) order.
func (o *Orientation) DirOf(u, v int) Dir {
	p := o.g.PortOf(u, v)
	if p < 0 {
		return Unoriented
	}
	return o.ports[u][p]
}

// IsParent reports whether p is a parent of c, i.e. edge {c,p} is oriented
// from c towards p.
func (o *Orientation) IsParent(c, p int) bool {
	port := o.g.PortOf(c, p)
	if port < 0 {
		return false
	}
	return o.isParentPort(c, p, port)
}

// IsParentPort reports whether the neighbor on port p of c is a parent of
// c. It is the port-indexed fast path of IsParent: O(1), no lookups.
func (o *Orientation) IsParentPort(c, p int) bool {
	return o.isParentPort(c, o.g.adj[c][p], p)
}

func (o *Orientation) isParentPort(c, u, port int) bool {
	d := o.ports[c][port]
	if d == Unoriented {
		return false
	}
	return (c < u) == (d == Forward)
}

// PortDirs returns v's per-port canonical edge directions, aligned with
// Neighbors(v). The returned slice is owned by the orientation and must
// not be modified.
func (o *Orientation) PortDirs(v int) []Dir { return o.ports[v] }

// Parents returns the parents of v (heads of v's outgoing edges), sorted.
func (o *Orientation) Parents(v int) []int {
	var out []int
	for p, u := range o.g.adj[v] {
		if o.isParentPort(v, u, p) {
			out = append(out, u)
		}
	}
	return out
}

// Children returns the children of v (tails of v's incoming edges), sorted.
func (o *Orientation) Children(v int) []int {
	var out []int
	for p, u := range o.g.adj[v] {
		if o.ports[v][p] != Unoriented && !o.isParentPort(v, u, p) {
			out = append(out, u)
		}
	}
	return out
}

// OutDegree returns the out-degree of v under the orientation. O(1).
func (o *Orientation) OutDegree(v int) int { return o.outDeg[v] }

// MaxOutDegree returns the out-degree of the orientation (Section 2.1).
func (o *Orientation) MaxOutDegree() int {
	m := 0
	for _, d := range o.outDeg {
		if d > m {
			m = d
		}
	}
	return m
}

// Deficit returns the deficit of v: the number of incident unoriented
// edges. O(1).
func (o *Orientation) Deficit(v int) int {
	return o.g.Degree(v) - o.orientedAt[v]
}

// MaxDeficit returns the deficit of the orientation (Section 2.1).
func (o *Orientation) MaxDeficit() int {
	m := 0
	for v := 0; v < o.g.N(); v++ {
		if d := o.Deficit(v); d > m {
			m = d
		}
	}
	return m
}

// IsComplete reports whether every edge is oriented. Because the dense
// representation is canonical (a port is Unoriented iff the edge is),
// counting oriented edges is exact.
func (o *Orientation) IsComplete() bool {
	return o.oriented == o.g.M()
}

// Lengths returns len_sigma(v) for every vertex: the length of the longest
// directed path emanating from v, following edges oriented away from v
// (child -> parent direction). Returns ErrCyclic if the oriented part has a
// directed cycle.
func (o *Orientation) Lengths() ([]int, error) {
	n := o.g.N()
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := make([]int8, n)
	lens := make([]int, n)

	// Iterative DFS with explicit stack to avoid recursion depth limits.
	// Frames walk the adjacency ports directly instead of materializing a
	// Parents slice per vertex: Length() sits on the pipeline hot path
	// (every wait-for-parents phase derives its round budget from it) and
	// the per-vertex parent slices dominated its allocation profile.
	type frame struct {
		v    int
		next int // next adjacency port to examine
	}
	var stack []frame
	for s := 0; s < n; s++ {
		if state[s] != unvisited {
			continue
		}
		stack = append(stack[:0], frame{v: s})
		state[s] = inStack
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			adj := o.g.adj[f.v]
			pushed := false
			for f.next < len(adj) {
				p := f.next
				u := adj[p]
				f.next++
				if !o.isParentPort(f.v, u, p) {
					continue
				}
				switch state[u] {
				case inStack:
					return nil, ErrCyclic
				case unvisited:
					state[u] = inStack
					stack = append(stack, frame{v: u})
					pushed = true
				}
				// done parents are folded at pop time below.
				if pushed {
					break
				}
			}
			if pushed {
				continue
			}
			// All parents resolved; fold their lengths and pop.
			v := f.v
			for p, u := range adj {
				if o.isParentPort(v, u, p) && lens[u]+1 > lens[v] {
					lens[v] = lens[u] + 1
				}
			}
			state[v] = done
			stack = stack[:len(stack)-1]
		}
	}
	return lens, nil
}

// Length returns len(sigma), the maximum vertex length (Section 2.1),
// or ErrCyclic if the orientation is not acyclic.
func (o *Orientation) Length() (int, error) {
	lens, err := o.Lengths()
	if err != nil {
		return 0, err
	}
	m := 0
	for _, l := range lens {
		if l > m {
			m = l
		}
	}
	return m, nil
}

// IsAcyclic reports whether the oriented part of the graph is a DAG.
func (o *Orientation) IsAcyclic() bool {
	_, err := o.Lengths()
	return err == nil
}

// TopologicalOrder returns a topological order of the vertices with respect
// to the oriented edges (children before parents), or ErrCyclic.
func (o *Orientation) TopologicalOrder() ([]int, error) {
	lens, err := o.Lengths()
	if err != nil {
		return nil, err
	}
	// Sorting by len(v) descending is NOT a topological order; instead sort
	// ascending by len: a child has len >= parent's len + 1, so parents have
	// strictly smaller len and must come later. Children-first order = sort
	// by len ascending puts parents (small len) first - wrong direction.
	// We want children before parents: children have larger len, so sort by
	// len descending.
	n := o.g.N()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Counting sort by length, descending.
	maxLen := 0
	for _, l := range lens {
		if l > maxLen {
			maxLen = l
		}
	}
	buckets := make([][]int, maxLen+1)
	for v, l := range lens {
		buckets[l] = append(buckets[l], v)
	}
	order = order[:0]
	for l := maxLen; l >= 0; l-- {
		order = append(order, buckets[l]...)
	}
	return order, nil
}

// Complete returns a new complete acyclic orientation that agrees with o on
// all oriented edges, directing each unoriented edge towards the endpoint
// that appears later in a topological sort of the oriented part
// (Lemma 3.1 of the paper). Returns ErrCyclic if o is not acyclic.
func (o *Orientation) Complete() (*Orientation, error) {
	lens, err := o.Lengths()
	if err != nil {
		return nil, err
	}
	// Position in topological order: children (larger len) earlier. For the
	// unoriented edge (w,z), orient towards the endpoint later in the order,
	// i.e. towards the smaller len; ties broken by vertex index, matching a
	// fixed topological sort.
	out := NewOrientation(o.g)
	copy(out.flat, o.flat)
	copy(out.outDeg, o.outDeg)
	copy(out.orientedAt, o.orientedAt)
	out.oriented = o.oriented
	for v := 0; v < o.g.N(); v++ {
		for p, u := range o.g.adj[v] {
			if v > u || out.ports[v][p] != Unoriented {
				continue // visit each edge once, from its smaller endpoint
			}
			// Later in topological order = smaller length; tie-break on
			// larger index (consistent with sorting (len desc, index asc)):
			// with v < u here, ties go towards u.
			if lens[v] < lens[u] {
				_ = out.Orient(u, v)
			} else {
				_ = out.Orient(v, u)
			}
		}
	}
	return out, nil
}

// InducedOn returns the orientation induced on a subgraph sub, where
// origOf maps sub's vertices to o's vertices (as returned by
// Graph.InducedSubgraph). Edges of sub inherit their direction from o.
func (o *Orientation) InducedOn(sub *Graph, origOf []int) *Orientation {
	out := NewOrientation(sub)
	for _, e := range sub.Edges() {
		u, v := origOf[e[0]], origOf[e[1]]
		switch {
		case o.IsParent(u, v):
			_ = out.Orient(e[0], e[1])
		case o.IsParent(v, u):
			_ = out.Orient(e[1], e[0])
		}
	}
	return out
}
