package graph

import (
	"errors"
	"fmt"
)

// Dir is the direction assigned to an edge by a (partial) orientation,
// relative to the edge's endpoint pair (u, v) with u < v.
type Dir int8

const (
	// Unoriented means the orientation leaves the edge undirected.
	Unoriented Dir = iota
	// Forward orients u -> v (towards the larger endpoint).
	Forward
	// Backward orients v -> u (towards the smaller endpoint).
	Backward
)

// ErrCyclic is returned when an operation requires an acyclic orientation.
var ErrCyclic = errors.New("graph: orientation contains a directed cycle")

// Orientation is a partial orientation sigma of a graph's edge set
// (Section 2.1 of the paper): every edge is oriented towards one endpoint
// or left unoriented. The key parameters are its out-degree, its deficit
// (max number of unoriented edges at a vertex) and its length (longest
// consistently-directed path).
type Orientation struct {
	g    *Graph
	dirs map[[2]int]Dir // keyed by (min,max) endpoint pair; absent = Unoriented
}

// NewOrientation returns the empty (fully unoriented) orientation of g.
func NewOrientation(g *Graph) *Orientation {
	return &Orientation{g: g, dirs: make(map[[2]int]Dir, g.M())}
}

// Graph returns the underlying graph.
func (o *Orientation) Graph() *Graph { return o.g }

// Orient directs the edge {u,v} from u towards v (v becomes a parent of u).
// It returns an error if {u,v} is not an edge.
func (o *Orientation) Orient(from, to int) error {
	if !o.g.HasEdge(from, to) {
		return fmt.Errorf("graph: (%d,%d) is not an edge", from, to)
	}
	if from < to {
		o.dirs[[2]int{from, to}] = Forward
	} else {
		o.dirs[[2]int{to, from}] = Backward
	}
	return nil
}

// Unorient removes any direction from the edge {u,v}.
func (o *Orientation) Unorient(u, v int) {
	if u > v {
		u, v = v, u
	}
	delete(o.dirs, [2]int{u, v})
}

// DirOf returns the direction of edge {u,v} relative to (min,max) order.
func (o *Orientation) DirOf(u, v int) Dir {
	if u > v {
		u, v = v, u
	}
	return o.dirs[[2]int{u, v}]
}

// IsParent reports whether p is a parent of c, i.e. edge {c,p} is oriented
// from c towards p.
func (o *Orientation) IsParent(c, p int) bool {
	if c < p {
		return o.dirs[[2]int{c, p}] == Forward
	}
	return o.dirs[[2]int{p, c}] == Backward
}

// Parents returns the parents of v (heads of v's outgoing edges), sorted.
func (o *Orientation) Parents(v int) []int {
	var out []int
	for _, u := range o.g.Neighbors(v) {
		if o.IsParent(v, u) {
			out = append(out, u)
		}
	}
	return out
}

// Children returns the children of v (tails of v's incoming edges), sorted.
func (o *Orientation) Children(v int) []int {
	var out []int
	for _, u := range o.g.Neighbors(v) {
		if o.IsParent(u, v) {
			out = append(out, u)
		}
	}
	return out
}

// OutDegree returns the out-degree of v under the orientation.
func (o *Orientation) OutDegree(v int) int {
	d := 0
	for _, u := range o.g.Neighbors(v) {
		if o.IsParent(v, u) {
			d++
		}
	}
	return d
}

// MaxOutDegree returns the out-degree of the orientation (Section 2.1).
func (o *Orientation) MaxOutDegree() int {
	m := 0
	for v := 0; v < o.g.N(); v++ {
		if d := o.OutDegree(v); d > m {
			m = d
		}
	}
	return m
}

// Deficit returns the deficit of v: the number of incident unoriented edges.
func (o *Orientation) Deficit(v int) int {
	d := 0
	for _, u := range o.g.Neighbors(v) {
		if o.DirOf(v, u) == Unoriented {
			d++
		}
	}
	return d
}

// MaxDeficit returns the deficit of the orientation (Section 2.1).
func (o *Orientation) MaxDeficit() int {
	m := 0
	for v := 0; v < o.g.N(); v++ {
		if d := o.Deficit(v); d > m {
			m = d
		}
	}
	return m
}

// IsComplete reports whether every edge is oriented.
func (o *Orientation) IsComplete() bool {
	return len(o.dirs) == o.g.M() && o.MaxDeficit() == 0
}

// Lengths returns len_sigma(v) for every vertex: the length of the longest
// directed path emanating from v, following edges oriented away from v
// (child -> parent direction). Returns ErrCyclic if the oriented part has a
// directed cycle.
func (o *Orientation) Lengths() ([]int, error) {
	n := o.g.N()
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := make([]int8, n)
	lens := make([]int, n)

	// Iterative DFS with explicit stack to avoid recursion depth limits.
	type frame struct {
		v       int
		parents []int
		next    int
	}
	for s := 0; s < n; s++ {
		if state[s] != unvisited {
			continue
		}
		stack := []frame{{v: s, parents: o.Parents(s)}}
		state[s] = inStack
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(f.parents) {
				p := f.parents[f.next]
				f.next++
				switch state[p] {
				case inStack:
					return nil, ErrCyclic
				case unvisited:
					state[p] = inStack
					stack = append(stack, frame{v: p, parents: o.Parents(p)})
				case done:
					if lens[p]+1 > lens[f.v] {
						lens[f.v] = lens[p] + 1
					}
				}
				continue
			}
			// All parents resolved; fold into our own length and pop.
			for _, p := range f.parents {
				if lens[p]+1 > lens[f.v] {
					lens[f.v] = lens[p] + 1
				}
			}
			state[f.v] = done
			stack = stack[:len(stack)-1]
		}
	}
	return lens, nil
}

// Length returns len(sigma), the maximum vertex length (Section 2.1),
// or ErrCyclic if the orientation is not acyclic.
func (o *Orientation) Length() (int, error) {
	lens, err := o.Lengths()
	if err != nil {
		return 0, err
	}
	m := 0
	for _, l := range lens {
		if l > m {
			m = l
		}
	}
	return m, nil
}

// IsAcyclic reports whether the oriented part of the graph is a DAG.
func (o *Orientation) IsAcyclic() bool {
	_, err := o.Lengths()
	return err == nil
}

// TopologicalOrder returns a topological order of the vertices with respect
// to the oriented edges (children before parents), or ErrCyclic.
func (o *Orientation) TopologicalOrder() ([]int, error) {
	lens, err := o.Lengths()
	if err != nil {
		return nil, err
	}
	// Sorting by len(v) descending is NOT a topological order; instead sort
	// ascending by len: a child has len >= parent's len + 1, so parents have
	// strictly smaller len and must come later. Children-first order = sort
	// by len ascending puts parents (small len) first - wrong direction.
	// We want children before parents: children have larger len, so sort by
	// len descending.
	n := o.g.N()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Counting sort by length, descending.
	maxLen := 0
	for _, l := range lens {
		if l > maxLen {
			maxLen = l
		}
	}
	buckets := make([][]int, maxLen+1)
	for v, l := range lens {
		buckets[l] = append(buckets[l], v)
	}
	order = order[:0]
	for l := maxLen; l >= 0; l-- {
		order = append(order, buckets[l]...)
	}
	return order, nil
}

// Complete returns a new complete acyclic orientation that agrees with o on
// all oriented edges, directing each unoriented edge towards the endpoint
// that appears later in a topological sort of the oriented part
// (Lemma 3.1 of the paper). Returns ErrCyclic if o is not acyclic.
func (o *Orientation) Complete() (*Orientation, error) {
	lens, err := o.Lengths()
	if err != nil {
		return nil, err
	}
	// Position in topological order: children (larger len) earlier. For the
	// unoriented edge (w,z), orient towards the endpoint later in the order,
	// i.e. towards the smaller len; ties broken by vertex index, matching a
	// fixed topological sort.
	out := NewOrientation(o.g)
	for e, d := range o.dirs {
		if d != Unoriented {
			out.dirs[e] = d
		}
	}
	for _, e := range o.g.Edges() {
		u, v := e[0], e[1]
		if o.DirOf(u, v) != Unoriented {
			continue
		}
		// Later in topological order = smaller length; tie-break on larger
		// index (consistent with sorting (len desc, index asc)).
		towardsV := lens[v] < lens[u] || (lens[v] == lens[u] && v > u)
		if towardsV {
			out.dirs[[2]int{u, v}] = Forward
		} else {
			out.dirs[[2]int{u, v}] = Backward
		}
	}
	return out, nil
}

// InducedOn returns the orientation induced on a subgraph sub, where
// origOf maps sub's vertices to o's vertices (as returned by
// Graph.InducedSubgraph). Edges of sub inherit their direction from o.
func (o *Orientation) InducedOn(sub *Graph, origOf []int) *Orientation {
	out := NewOrientation(sub)
	for _, e := range sub.Edges() {
		u, v := origOf[e[0]], origOf[e[1]]
		switch {
		case o.IsParent(u, v):
			_ = out.Orient(e[0], e[1])
		case o.IsParent(v, u):
			_ = out.Orient(e[1], e[0])
		}
	}
	return out
}
