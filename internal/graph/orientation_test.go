package graph

import (
	"errors"
	"math/rand"
	"testing"
)

func buildPathOrientation(t *testing.T, n int) (*Graph, *Orientation) {
	t.Helper()
	g := Path(n)
	o := NewOrientation(g)
	for v := 0; v+1 < n; v++ {
		if err := o.Orient(v, v+1); err != nil {
			t.Fatal(err)
		}
	}
	return g, o
}

func TestOrientationBasics(t *testing.T) {
	g, o := buildPathOrientation(t, 5)
	_ = g
	if !o.IsParent(0, 1) || o.IsParent(1, 0) {
		t.Error("parent relation wrong")
	}
	if got := o.Parents(2); len(got) != 1 || got[0] != 3 {
		t.Errorf("Parents(2) = %v", got)
	}
	if got := o.Children(2); len(got) != 1 || got[0] != 1 {
		t.Errorf("Children(2) = %v", got)
	}
	if o.OutDegree(0) != 1 || o.OutDegree(4) != 0 {
		t.Error("out-degrees wrong")
	}
	if o.MaxOutDegree() != 1 {
		t.Error("max out-degree wrong")
	}
	if !o.IsComplete() {
		t.Error("fully oriented path should be complete")
	}
	l, err := o.Length()
	if err != nil {
		t.Fatal(err)
	}
	if l != 4 {
		t.Errorf("Length = %d, want 4", l)
	}
}

func TestOrientErrorsOnNonEdge(t *testing.T) {
	g := Path(3)
	o := NewOrientation(g)
	if err := o.Orient(0, 2); err == nil {
		t.Error("orienting non-edge succeeded")
	}
}

func TestUnorientAndDeficit(t *testing.T) {
	_, o := buildPathOrientation(t, 4)
	o.Unorient(1, 2)
	if o.DirOf(1, 2) != Unoriented {
		t.Error("edge still oriented after Unorient")
	}
	if o.Deficit(1) != 1 || o.Deficit(2) != 1 || o.Deficit(0) != 0 {
		t.Error("deficits wrong")
	}
	if o.MaxDeficit() != 1 {
		t.Error("max deficit wrong")
	}
	if o.IsComplete() {
		t.Error("orientation with unoriented edge is complete")
	}
}

func TestCycleDetection(t *testing.T) {
	cyc, err := Cycle(4)
	if err != nil {
		t.Fatal(err)
	}
	o := NewOrientation(cyc)
	for v := 0; v < 4; v++ {
		if err := o.Orient(v, (v+1)%4); err != nil {
			t.Fatal(err)
		}
	}
	if o.IsAcyclic() {
		t.Error("directed 4-cycle reported acyclic")
	}
	if _, err := o.Length(); !errors.Is(err, ErrCyclic) {
		t.Errorf("Length error = %v, want ErrCyclic", err)
	}
	if _, err := o.Complete(); !errors.Is(err, ErrCyclic) {
		t.Errorf("Complete error = %v, want ErrCyclic", err)
	}
}

func TestLengthsOnDAG(t *testing.T) {
	// Diamond: 0->1, 0->2, 1->3, 2->3.
	g, _ := FromEdges(4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	o := NewOrientation(g)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if err := o.Orient(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	lens, err := o.Lengths()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 1, 1, 0}
	for v, w := range want {
		if lens[v] != w {
			t.Errorf("len(%d) = %d, want %d", v, lens[v], w)
		}
	}
}

func TestTopologicalOrderChildrenFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	g := Gnp(50, 0.1, rng)
	o := NewOrientation(g)
	// Orient every edge towards the larger index: acyclic.
	for _, e := range g.Edges() {
		if err := o.Orient(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	order, err := o.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, g.N())
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		// e[0] -> e[1], so child e[0] must come before parent e[1].
		if pos[e[0]] > pos[e[1]] {
			t.Fatalf("edge %v: child after parent in topological order", e)
		}
	}
}

func TestCompletePreservesAndIsAcyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		g := Gnp(40, 0.15, rng)
		o := NewOrientation(g)
		// Orient a random subset of edges towards the larger endpoint
		// (always acyclic), leave the rest unoriented.
		for _, e := range g.Edges() {
			if rng.Intn(2) == 0 {
				if err := o.Orient(e[0], e[1]); err != nil {
					t.Fatal(err)
				}
			}
		}
		c, err := o.Complete()
		if err != nil {
			t.Fatal(err)
		}
		if !c.IsComplete() {
			t.Fatal("Complete() returned incomplete orientation")
		}
		if !c.IsAcyclic() {
			t.Fatal("Complete() returned cyclic orientation (Lemma 3.1 violated)")
		}
		// Originally oriented edges must keep their direction.
		for _, e := range g.Edges() {
			if d := o.DirOf(e[0], e[1]); d != Unoriented && c.DirOf(e[0], e[1]) != d {
				t.Fatalf("Complete() changed direction of edge %v", e)
			}
		}
	}
}

func TestCompletionOutDegreeBound(t *testing.T) {
	// Out-degree of completion <= original out-degree + deficit, per vertex.
	rng := rand.New(rand.NewSource(22))
	g := Gnp(40, 0.2, rng)
	o := NewOrientation(g)
	for _, e := range g.Edges() {
		if rng.Intn(3) > 0 {
			_ = o.Orient(e[0], e[1])
		}
	}
	c, err := o.Complete()
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if c.OutDegree(v) > o.OutDegree(v)+o.Deficit(v) {
			t.Fatalf("vertex %d: completed out-degree %d > %d + %d",
				v, c.OutDegree(v), o.OutDegree(v), o.Deficit(v))
		}
	}
}

func TestInducedOrientation(t *testing.T) {
	g, _ := FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	o := NewOrientation(g)
	_ = o.Orient(0, 1)
	_ = o.Orient(2, 1)
	_ = o.Orient(2, 3)
	sub, orig, err := g.InducedSubgraph([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	so := o.InducedOn(sub, orig)
	// In sub: vertices 0,1,2 map to 1,2,3. Edge (0,1)=orig(1,2) oriented 2->1
	// so sub 1->0; edge (1,2)=orig(2,3) oriented 2->3 so sub 1->2.
	if !so.IsParent(1, 0) {
		t.Error("induced orientation lost 2->1")
	}
	if !so.IsParent(1, 2) {
		t.Error("induced orientation lost 2->3")
	}
	if so.OutDegree(1) != 2 {
		t.Error("induced out-degree wrong")
	}
}

func TestLengthDeepPathNoStackOverflow(t *testing.T) {
	// 200k-vertex directed path: iterative DFS must handle it.
	n := 200000
	_, o := buildPathOrientation(t, n)
	l, err := o.Length()
	if err != nil {
		t.Fatal(err)
	}
	if l != n-1 {
		t.Fatalf("Length = %d, want %d", l, n-1)
	}
}
