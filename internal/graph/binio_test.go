package graph

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sameGraph compares two graphs semantically (nil and empty adjacency
// lists are both "no neighbors").
func sameGraph(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatalf("graphs differ: n=%d/%d m=%d/%d", a.N(), b.N(), a.M(), b.M())
	}
	for v := 0; v < a.N(); v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			t.Fatalf("vertex %d: degree %d vs %d", v, len(na), len(nb))
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("vertex %d: neighbors %v vs %v", v, na, nb)
			}
		}
	}
}

func testCorpus(t *testing.T) []*Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(71))
	cyc, err := Cycle(9)
	if err != nil {
		t.Fatal(err)
	}
	return []*Graph{
		NewBuilder(0).Build(),
		NewBuilder(1).Build(),
		NewBuilder(5).Build(), // isolated vertices only
		Path(2),
		cyc,
		Star(33),
		Complete(12),
		Grid(7, 9),
		ForestUnion(500, 3, rng),
		Gnp(300, 0.05, rng),
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for i, g := range testCorpus(t) {
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			t.Fatalf("graph %d: write: %v", i, err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("graph %d: read: %v", i, err)
		}
		sameGraph(t, g, got)
	}
}

func TestBinaryRoundTripSmallShards(t *testing.T) {
	// Shard size 7 forces many shards including a short trailing one.
	rng := rand.New(rand.NewSource(72))
	g := Gnp(80, 0.1, rng)
	var buf bytes.Buffer
	if err := g.WriteBinarySharded(&buf, 7); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g, got)
}

func TestTextBinaryCrossRoundTrip(t *testing.T) {
	// text -> graph -> binary -> graph -> text must be a fixed point.
	for i, g := range testCorpus(t) {
		var text1 bytes.Buffer
		if err := g.WriteEdgeList(&text1); err != nil {
			t.Fatal(err)
		}
		fromText, err := ReadEdgeList(bytes.NewReader(text1.Bytes()))
		if err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
		var bin bytes.Buffer
		if err := fromText.WriteBinary(&bin); err != nil {
			t.Fatal(err)
		}
		fromBin, err := ReadBinary(&bin)
		if err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
		sameGraph(t, g, fromBin)
		var text2 bytes.Buffer
		if err := fromBin.WriteEdgeList(&text2); err != nil {
			t.Fatal(err)
		}
		if text1.String() != text2.String() {
			t.Fatalf("graph %d: text round trip not a fixed point", i)
		}
	}
}

func TestOpenBinaryAndLoadFile(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	g := ForestUnion(200, 2, rng)
	dir := t.TempDir()

	binPath := filepath.Join(dir, "g.bin")
	f, err := os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := OpenBinary(binPath)
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g, got)

	// LoadFile sniffs both formats.
	got, err = LoadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g, got)

	textPath := filepath.Join(dir, "g.txt")
	tf, err := os.Create(textPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteEdgeList(tf); err != nil {
		t.Fatal(err)
	}
	if err := tf.Close(); err != nil {
		t.Fatal(err)
	}
	got, err = LoadFile(textPath)
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g, got)

	if _, err := OpenBinary(textPath); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("OpenBinary on a text file: %v, want magic error", err)
	}
}

func TestReadBinaryRejectsCorruption(t *testing.T) {
	g := Grid(5, 5)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	reject := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		data := append([]byte(nil), good...)
		data = mutate(data)
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}
	reject("bad magic", func(d []byte) []byte { d[0] = 'X'; return d })
	reject("bad version", func(d []byte) []byte { d[4] = 9; return d })
	reject("truncated header", func(d []byte) []byte { return d[:20] })
	reject("truncated records", func(d []byte) []byte { return d[:len(d)-5] })
	reject("trailing garbage", func(d []byte) []byte { return append(d, 0xff) })
	reject("impossible m", func(d []byte) []byte { d[16] = 0xff; return d })
	reject("zero shard size", func(d []byte) []byte { d[24], d[25], d[26], d[27] = 0, 0, 0, 0; return d })
	reject("self-loop", func(d []byte) []byte {
		// First record starts after the 28-byte header + 4-byte count.
		copy(d[32:40], d[36:40]) // u = v (hits the self-loop check before dedup)
		return d
	})
	reject("out-of-range endpoint", func(d []byte) []byte { d[35] = 0x7f; return d })
	reject("duplicate edge", func(d []byte) []byte {
		copy(d[40:48], d[32:40]) // second record repeats the first
		return d
	})
}

func TestReadEdgeListErrorsCarryLineNumbers(t *testing.T) {
	cases := []struct {
		name, input, want string
	}{
		{"empty", "", `empty input (no "n m" header line)`},
		{"comment only", "# nothing\n\n", `empty input`},
		{"header one field", "5\n", "line 1: malformed \"n m\" header"},
		{"header non-integer", "five 4\n", "line 1: header vertex count"},
		{"header negative", "5 -1\n", "line 1: header"},
		{"header impossible m", "3 17\n", "missing \"n m\" header line?"},
		{"edge three fields", "# c\n3 2\n0 1 9\n", "line 3: malformed edge"},
		{"edge non-integer", "3 2\n0 x\n", "line 2: edge endpoint"},
		{"edge out of range", "2 1\n0 5\n", "line 2: graph: edge (0,5) out of range"},
		{"headerless file", "0 1\n1 2\n2 3\n", "missing \"n m\" header"},
		{"self-loop", "3 1\n1 1\n", "line 2: graph: self-loop"},
		{"count mismatch", "4 3\n0 1\n", "declares m=3 edges, found 1"},
		{"duplicate collapses", "3 2\n0 1\n1 0\n", "found 1 (duplicate edges"},
	}
	for _, tc := range cases {
		_, err := ReadEdgeList(strings.NewReader(tc.input))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestReadEdgeListStillAcceptsValidInput(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("# comment\n\n4 3\n0 1\n# mid comment\n1 2\n2 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	sameGraph(t, g, Path(4))
}

// TestBinaryAllocClamps pins the allocation-bomb defenses: a forged
// header whose declared sizes could not fit the input is rejected before
// any size-proportional allocation, on both readers, seekable or not.
func TestBinaryAllocClamps(t *testing.T) {
	hdr := func(n, m uint64, shard uint32) []byte {
		b := make([]byte, 28)
		copy(b, binMagic)
		binary.LittleEndian.PutUint32(b[4:8], binVersion)
		binary.LittleEndian.PutUint64(b[8:16], n)
		binary.LittleEndian.PutUint64(b[16:24], m)
		binary.LittleEndian.PutUint32(b[24:28], shard)
		return b
	}
	rejectBoth := func(name string, data []byte, substr string) {
		t.Helper()
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), substr) {
			t.Errorf("%s: ReadBinary err=%v, want mention of %q", name, err, substr)
		}
		if _, _, err := ReadBinaryShards(bytes.NewReader(data), 2); err == nil || !strings.Contains(err.Error(), substr) {
			t.Errorf("%s: ReadBinaryShards err=%v, want mention of %q", name, err, substr)
		}
	}
	// n bomb: 28 bytes demanding gigabytes of adjacency.
	rejectBoth("unbacked n", hdr(1<<30, 0, 1<<16), "isolated-vertex allowance")
	rejectBoth("n past the slack", hdr(1<<22, 1<<8, 1<<16), "isolated-vertex allowance")
	// m bomb on a seekable input: the byte-size hint fires before the
	// payload is touched.
	rejectBoth("unbacked m", hdr(1<<20, 1<<28, 1<<16), "input holds")
	// The same forged m through a non-seekable stream still errors (the
	// chunked reader runs dry), just without the hint's message.
	if _, err := ReadBinary(bufio.NewReader(bytes.NewReader(hdr(1<<20, 1<<28, 1<<16)))); err == nil {
		t.Error("unbacked m accepted through a non-seekable stream")
	}
	// StatBinary shares the header clamps.
	if _, err := StatBinary(bytes.NewReader(hdr(1<<30, 0, 1<<16))); err == nil {
		t.Error("StatBinary accepted an unbacked n")
	}
	// At the boundary: the full slack of isolated vertices is legal and
	// round-trips.
	legal := hdr(maxBinFreeVertices, 0, 1<<16)
	g, err := ReadBinary(bytes.NewReader(legal))
	if err != nil || g.N() != maxBinFreeVertices || g.M() != 0 {
		t.Fatalf("slack-sized empty graph rejected: %v", err)
	}
	// The writer refuses graphs the readers would: no written file is
	// unloadable.
	tooSparse := NewBuilder(maxBinFreeVertices + 1).Build()
	var buf bytes.Buffer
	if err := tooSparse.WriteBinary(&buf); err == nil || !strings.Contains(err.Error(), "isolated-vertex allowance") {
		t.Errorf("WriteBinary err=%v, want isolated-vertex allowance rejection", err)
	}
}
