// Package graph provides the undirected-graph substrate for the coloring
// library: construction, generators for the workload families used in the
// experiments, structural properties (degrees, degeneracy, arboricity
// bounds), orientations (complete and partial, Section 2.1 of the paper),
// and verifiers for legal, defective and arbdefective colorings.
//
// Vertices are 0-based ints. The distributed runtime assigns the LOCAL-model
// identifiers id(v) in {1..n} separately (possibly permuted), so the graph
// package is agnostic of identifiers.
package graph

import (
	"fmt"
	"sort"
)

// Graph is a finite simple undirected graph with adjacency lists.
// Adjacency lists are sorted; the position of a neighbor in the list is the
// "port number" used by the distributed runtime.
//
// Construct with NewBuilder/AddEdge/Build (deduplicates, rejects loops) or
// FromEdges. A built Graph is immutable.
type Graph struct {
	n   int
	m   int
	adj [][]int
}

// Builder accumulates edges for a Graph.
type Builder struct {
	n     int
	edges map[[2]int]struct{}
}

// NewBuilder returns a Builder for a graph on n vertices (0..n-1).
func NewBuilder(n int) *Builder {
	return &Builder{n: n, edges: make(map[[2]int]struct{})}
}

// AddEdge records the undirected edge {u,v}. Duplicate edges are ignored.
// It returns an error for loops or out-of-range endpoints.
func (b *Builder) AddEdge(u, v int) error {
	if u == v {
		return fmt.Errorf("graph: self-loop at vertex %d", u)
	}
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	if u > v {
		u, v = v, u
	}
	b.edges[[2]int{u, v}] = struct{}{}
	return nil
}

// Build finalizes the graph.
func (b *Builder) Build() *Graph {
	adj := make([][]int, b.n)
	for e := range b.edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	for _, l := range adj {
		sort.Ints(l)
	}
	return &Graph{n: b.n, m: len(b.edges), adj: adj}
}

// FromEdges builds a graph on n vertices from an edge list.
func FromEdges(n int, edges [][2]int) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the sorted adjacency list of v. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	l := g.adj[u]
	i := sort.SearchInts(l, v)
	return i < len(l) && l[i] == v
}

// PortOf returns the port index of neighbor u in v's adjacency list,
// or -1 if u is not a neighbor of v.
func (g *Graph) PortOf(v, u int) int {
	l := g.adj[v]
	i := sort.SearchInts(l, u)
	if i < len(l) && l[i] == u {
		return i
	}
	return -1
}

// MaxDegree returns Delta(G), the maximum degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	d := 0
	for v := 0; v < g.n; v++ {
		if len(g.adj[v]) > d {
			d = len(g.adj[v])
		}
	}
	return d
}

// Edges returns all edges as (u,v) pairs with u < v, sorted.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.m)
	for v := 0; v < g.n; v++ {
		for _, u := range g.adj[v] {
			if v < u {
				out = append(out, [2]int{v, u})
			}
		}
	}
	return out
}

// InducedSubgraph returns the subgraph induced by the given vertex set,
// together with the mapping newIndex -> originalVertex. Vertices keep the
// relative order of the input set (duplicates are an error).
func (g *Graph) InducedSubgraph(vertices []int) (*Graph, []int, error) {
	idx := make(map[int]int, len(vertices))
	orig := make([]int, len(vertices))
	for i, v := range vertices {
		if v < 0 || v >= g.n {
			return nil, nil, fmt.Errorf("graph: vertex %d out of range", v)
		}
		if _, dup := idx[v]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate vertex %d", v)
		}
		idx[v] = i
		orig[i] = v
	}
	b := NewBuilder(len(vertices))
	for i, v := range vertices {
		for _, u := range g.adj[v] {
			if j, ok := idx[u]; ok && i < j {
				if err := b.AddEdge(i, j); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	return b.Build(), orig, nil
}

// ConnectedComponents returns the vertex sets of the connected components.
func (g *Graph) ConnectedComponents() [][]int {
	comp := make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int
	queue := make([]int, 0, g.n)
	for s := 0; s < g.n; s++ {
		if comp[s] >= 0 {
			continue
		}
		c := len(comps)
		comp[s] = c
		queue = queue[:0]
		queue = append(queue, s)
		members := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.adj[v] {
				if comp[u] < 0 {
					comp[u] = c
					queue = append(queue, u)
					members = append(members, u)
				}
			}
		}
		comps = append(comps, members)
	}
	return comps
}

// IsForest reports whether the graph is acyclic.
func (g *Graph) IsForest() bool {
	// A graph is a forest iff every component has |E| = |V| - 1,
	// equivalently m = n - #components.
	return g.m == g.n-len(g.ConnectedComponents())
}
