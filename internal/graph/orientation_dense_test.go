package graph

import (
	"math/rand"
	"testing"
)

// refOrientation is the seed map-backed representation, kept as the
// reference the dense port-indexed rewrite is checked against.
type refOrientation struct {
	g    *Graph
	dirs map[[2]int]Dir
}

func newRefOrientation(g *Graph) *refOrientation {
	return &refOrientation{g: g, dirs: make(map[[2]int]Dir, g.M())}
}

func (o *refOrientation) orient(from, to int) {
	if from < to {
		o.dirs[[2]int{from, to}] = Forward
	} else {
		o.dirs[[2]int{to, from}] = Backward
	}
}

func (o *refOrientation) unorient(u, v int) {
	if u > v {
		u, v = v, u
	}
	delete(o.dirs, [2]int{u, v})
}

func (o *refOrientation) dirOf(u, v int) Dir {
	if u > v {
		u, v = v, u
	}
	return o.dirs[[2]int{u, v}]
}

func (o *refOrientation) isParent(c, p int) bool {
	if c < p {
		return o.dirs[[2]int{c, p}] == Forward
	}
	return o.dirs[[2]int{p, c}] == Backward
}

func (o *refOrientation) outDegree(v int) int {
	d := 0
	for _, u := range o.g.Neighbors(v) {
		if o.isParent(v, u) {
			d++
		}
	}
	return d
}

func (o *refOrientation) deficit(v int) int {
	d := 0
	for _, u := range o.g.Neighbors(v) {
		if o.dirOf(v, u) == Unoriented {
			d++
		}
	}
	return d
}

func checkAgainstRef(t *testing.T, o *Orientation, ref *refOrientation, opIdx int) {
	t.Helper()
	g := o.Graph()
	oriented := 0
	for v := 0; v < g.N(); v++ {
		if got, want := o.OutDegree(v), ref.outDegree(v); got != want {
			t.Fatalf("op %d: OutDegree(%d) = %d, ref %d", opIdx, v, got, want)
		}
		if got, want := o.Deficit(v), ref.deficit(v); got != want {
			t.Fatalf("op %d: Deficit(%d) = %d, ref %d", opIdx, v, got, want)
		}
		for p, u := range g.Neighbors(v) {
			if got, want := o.DirOf(v, u), ref.dirOf(v, u); got != want {
				t.Fatalf("op %d: DirOf(%d,%d) = %v, ref %v", opIdx, v, u, got, want)
			}
			if got, want := o.IsParent(v, u), ref.isParent(v, u); got != want {
				t.Fatalf("op %d: IsParent(%d,%d) = %v, ref %v", opIdx, v, u, got, want)
			}
			if got, want := o.IsParentPort(v, p), ref.isParent(v, u); got != want {
				t.Fatalf("op %d: IsParentPort(%d,%d) = %v, ref %v", opIdx, v, p, got, want)
			}
			if got, want := o.PortDirs(v)[p], ref.dirOf(v, u); got != want {
				t.Fatalf("op %d: PortDirs(%d)[%d] = %v, ref %v", opIdx, v, p, got, want)
			}
			if v < u && ref.dirOf(v, u) != Unoriented {
				oriented++
			}
		}
	}
	if got, want := o.IsComplete(), oriented == g.M(); got != want {
		t.Fatalf("op %d: IsComplete = %v, ref %v", opIdx, got, want)
	}
}

// TestOrientationMatchesMapReference drives random orient / re-orient /
// flip / unorient sequences through the dense representation and the
// seed map-backed one, comparing every query after every operation.
func TestOrientationMatchesMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	graphs := []*Graph{
		Path(12),
		Grid(5, 5),
		Complete(8),
		Gnp(40, 0.15, rng),
		NewBuilder(3).Build(), // edgeless
	}
	for gi, g := range graphs {
		o := NewOrientation(g)
		ref := newRefOrientation(g)
		edges := g.Edges()
		if len(edges) == 0 {
			checkAgainstRef(t, o, ref, -1)
			continue
		}
		for op := 0; op < 400; op++ {
			e := edges[rng.Intn(len(edges))]
			u, v := e[0], e[1]
			if rng.Intn(2) == 0 {
				u, v = v, u
			}
			switch rng.Intn(4) {
			case 0, 1: // orient (possibly re-orienting or flipping)
				if err := o.Orient(u, v); err != nil {
					t.Fatalf("graph %d op %d: %v", gi, op, err)
				}
				ref.orient(u, v)
			case 2:
				o.Unorient(u, v)
				ref.unorient(u, v)
			case 3: // same-direction repeat must be idempotent
				if err := o.Orient(u, v); err != nil {
					t.Fatalf("graph %d op %d: %v", gi, op, err)
				}
				ref.orient(u, v)
				if err := o.Orient(u, v); err != nil {
					t.Fatalf("graph %d op %d repeat: %v", gi, op, err)
				}
			}
			checkAgainstRef(t, o, ref, op)
		}
	}
}

// TestOrientUnorientReorient covers the canonical-representation bug the
// seed IsComplete had: explicit unoriented state must be
// indistinguishable from never-oriented state, through full
// orient -> unorient -> re-orient cycles.
func TestOrientUnorientReorient(t *testing.T) {
	g := Grid(4, 4)
	o := NewOrientation(g)
	for _, e := range g.Edges() {
		if err := o.Orient(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if !o.IsComplete() {
		t.Fatal("fully oriented grid not complete")
	}
	// Unorient every edge again: back to the empty orientation.
	for _, e := range g.Edges() {
		o.Unorient(e[0], e[1])
	}
	if o.IsComplete() {
		t.Fatal("fully unoriented grid reported complete")
	}
	if o.MaxOutDegree() != 0 {
		t.Fatalf("MaxOutDegree = %d after unorienting everything", o.MaxOutDegree())
	}
	for v := 0; v < g.N(); v++ {
		if o.Deficit(v) != g.Degree(v) {
			t.Fatalf("Deficit(%d) = %d, want full degree %d", v, o.Deficit(v), g.Degree(v))
		}
	}
	// Re-orient in the opposite direction.
	for _, e := range g.Edges() {
		if err := o.Orient(e[1], e[0]); err != nil {
			t.Fatal(err)
		}
	}
	if !o.IsComplete() {
		t.Fatal("re-oriented grid not complete")
	}
	for _, e := range g.Edges() {
		if !o.IsParent(e[1], e[0]) || o.IsParent(e[0], e[1]) {
			t.Fatalf("edge %v not re-oriented towards %d", e, e[0])
		}
	}
	// Flip a single edge in place (no unorient): counts must follow.
	e := g.Edges()[0]
	before0, before1 := o.OutDegree(e[0]), o.OutDegree(e[1])
	if err := o.Orient(e[0], e[1]); err != nil {
		t.Fatal(err)
	}
	if o.OutDegree(e[0]) != before0+1 || o.OutDegree(e[1]) != before1-1 {
		t.Fatalf("flip did not move out-degree: (%d,%d) -> (%d,%d)",
			before0, before1, o.OutDegree(e[0]), o.OutDegree(e[1]))
	}
	if !o.IsComplete() {
		t.Fatal("flip broke completeness accounting")
	}
	// Unorient of a non-edge and of an already-unoriented edge are no-ops.
	o.Unorient(e[0], e[1])
	o.Unorient(e[0], e[1])
	o.Unorient(0, g.N()-1)
	if o.IsComplete() {
		t.Fatal("complete after unorienting an edge")
	}
	if err := o.Orient(e[0], e[1]); err != nil {
		t.Fatal(err)
	}
	if !o.IsComplete() {
		t.Fatal("not complete after re-orienting the last edge")
	}
}
