package graph

import (
	"math/rand"
	"strings"
	"testing"
)

func TestCheckLegalColoring(t *testing.T) {
	g := Path(4)
	if err := g.CheckLegalColoring([]int{0, 1, 0, 1}); err != nil {
		t.Errorf("proper 2-coloring rejected: %v", err)
	}
	if err := g.CheckLegalColoring([]int{0, 0, 1, 0}); err == nil {
		t.Error("monochromatic edge accepted")
	}
	if err := g.CheckLegalColoring([]int{0, 1, 0}); err == nil {
		t.Error("short coloring accepted")
	}
	if err := g.CheckLegalColoring([]int{0, 1, -1, 1}); err == nil {
		t.Error("uncolored vertex accepted")
	}
}

func TestDefect(t *testing.T) {
	g := Complete(4)
	if d := g.Defect([]int{0, 0, 1, 1}); d != 1 {
		t.Errorf("Defect = %d, want 1", d)
	}
	if d := g.Defect([]int{0, 0, 0, 1}); d != 2 {
		t.Errorf("Defect = %d, want 2", d)
	}
	if err := g.CheckDefectiveColoring([]int{0, 0, 1, 1}, 1); err != nil {
		t.Error(err)
	}
	if err := g.CheckDefectiveColoring([]int{0, 0, 0, 1}, 1); err == nil {
		t.Error("defect 2 accepted as 1-defective")
	}
}

func TestArbDefect(t *testing.T) {
	// One color class = 5-cycle: degeneracy 2, arboricity 2.
	cyc, err := Cycle(5)
	if err != nil {
		t.Fatal(err)
	}
	all0 := []int{0, 0, 0, 0, 0}
	if a := cyc.ArbDefect(all0); a != 2 {
		t.Errorf("ArbDefect = %d, want 2", a)
	}
	if err := cyc.CheckArbdefectiveColoring(all0, 2); err != nil {
		t.Error(err)
	}
	if err := cyc.CheckArbdefectiveColoring(all0, 1); err == nil {
		t.Error("cycle accepted as 1-arbdefective")
	}
	// Legal coloring has arbdefect 0.
	if a := cyc.ArbDefect([]int{0, 1, 0, 1, 2}); a != 0 {
		t.Errorf("legal coloring arbdefect = %d, want 0", a)
	}
}

func TestArbdefectWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	g := Gnp(40, 0.2, rng)
	o := NewOrientation(g)
	for _, e := range g.Edges() {
		_ = o.Orient(e[0], e[1]) // towards larger: acyclic, arbitrary out-deg
	}
	// Color everything one color: witness bound = max out-degree.
	colors := make([]int, g.N())
	od := o.MaxOutDegree()
	if err := g.CheckArbdefectWitness(colors, o, od); err != nil {
		t.Errorf("witness at out-degree bound rejected: %v", err)
	}
	if err := g.CheckArbdefectWitness(colors, o, 0); err == nil && g.M() > 0 {
		t.Error("witness with impossible bound accepted")
	}
}

func TestNumColorsMaxColor(t *testing.T) {
	c := []int{3, 1, 3, 7}
	if NumColors(c) != 3 {
		t.Error("NumColors wrong")
	}
	if MaxColor(c) != 7 {
		t.Error("MaxColor wrong")
	}
	if MaxColor(nil) != -1 {
		t.Error("MaxColor(nil) should be -1")
	}
}

func TestCheckIndependentSetAndMIS(t *testing.T) {
	g := Path(5)
	mis := []bool{true, false, true, false, true}
	if err := g.CheckMIS(mis); err != nil {
		t.Errorf("valid MIS rejected: %v", err)
	}
	notMaximal := []bool{true, false, false, false, true}
	if err := g.CheckIndependentSet(notMaximal); err != nil {
		t.Errorf("valid IS rejected: %v", err)
	}
	if err := g.CheckMIS(notMaximal); err == nil {
		t.Error("non-maximal set accepted as MIS")
	}
	notIndep := []bool{true, true, false, false, true}
	if err := g.CheckIndependentSet(notIndep); err == nil {
		t.Error("dependent set accepted")
	}
	if err := g.CheckMIS([]bool{true}); err == nil {
		t.Error("wrong-length set accepted")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := Gnp(30, 0.2, rng)
	var sb strings.Builder
	if err := g.WriteEdgeList(&sb); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip mismatch: %d/%d vs %d/%d", g2.N(), g2.M(), g.N(), g.M())
	}
	for _, e := range g.Edges() {
		if !g2.HasEdge(e[0], e[1]) {
			t.Fatalf("edge %v lost", e)
		}
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",
		"3 1\n0 0\n",
		"3 2\n0 1\n",
		"junk\n",
		"3 1\n0 x\n",
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
	// Comments and blank lines fine.
	if _, err := ReadEdgeList(strings.NewReader("# hi\n\n2 1\n0 1\n")); err != nil {
		t.Errorf("comment/blank input rejected: %v", err)
	}
}
