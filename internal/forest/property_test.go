package forest

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/graph"
)

// Property (the pigeonhole behind Theorem 3.2): RuleLeastUsed never picks
// a color used by more than floor(total/k) parents.
func TestLeastUsedPigeonholeQuick(t *testing.T) {
	prop := func(seed uint32, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		k := 1 + int(kRaw)%10
		counts := make([]int, k)
		total := 0
		for i := range counts {
			counts[i] = rng.Intn(20)
			total += counts[i]
		}
		c, err := RuleLeastUsed.choose(counts)
		if err != nil {
			return false
		}
		return counts[c] <= total/k
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: RuleFirstFree picks an unused color whenever one exists, and
// the smallest such.
func TestFirstFreeQuick(t *testing.T) {
	prop := func(seed uint32, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		k := 2 + int(kRaw)%10
		counts := make([]int, k)
		// Fill at most k-1 slots so a free one remains.
		for i := 0; i < k-1; i++ {
			if rng.Intn(2) == 0 {
				counts[rng.Intn(k)]++
			}
		}
		c, err := RuleFirstFree.choose(counts)
		if err != nil {
			return false
		}
		if counts[c] != 0 {
			return false
		}
		for i := 0; i < c; i++ {
			if counts[i] == 0 {
				return false // not the smallest free color
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the H-partition level assignment equals the centralized
// peeling computed directly on the graph.
func TestHPartitionMatchesCentralizedPeeling(t *testing.T) {
	prop := func(seed uint32, aRaw uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		a := 1 + int(aRaw)%6
		g := graph.ForestUnion(120, a, rng)
		net := dist.NewNetworkPermuted(g, rng)
		hp, err := ComputeHPartition(net, a, DefaultEps, nil, nil)
		if err != nil {
			return false
		}
		// Centralized peeling.
		threshold := DefaultEps.Threshold(a)
		level := make([]int, g.N())
		deg := make([]int, g.N())
		remaining := g.N()
		for v := 0; v < g.N(); v++ {
			deg[v] = g.Degree(v)
		}
		for l := 1; remaining > 0; l++ {
			var peel []int
			for v := 0; v < g.N(); v++ {
				if level[v] == 0 && deg[v] <= threshold {
					peel = append(peel, v)
				}
			}
			if len(peel) == 0 {
				return false // stalled: distributed version must have errored
			}
			for _, v := range peel {
				level[v] = l
			}
			for _, v := range peel {
				for _, u := range g.Neighbors(v) {
					if level[u] == 0 {
						deg[u]--
					}
				}
			}
			remaining -= len(peel)
		}
		for v := 0; v < g.N(); v++ {
			if hp.Level[v] != level[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: WaitColor with RuleFirstFree on a complete acyclic orientation
// is legal for every random workload (Lemma 2.2(1) correctness).
func TestWaitColorLegalQuick(t *testing.T) {
	prop := func(seed uint32, aRaw uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		a := 1 + int(aRaw)%5
		g := graph.ForestUnion(100, a, rng)
		net := dist.NewNetworkPermuted(g, rng)
		or, hp, err := CompleteAcyclicOrientation(net, a, DefaultEps)
		if err != nil {
			return false
		}
		wc, err := WaitColor(net, or.Sigma, hp.Degree+1, RuleFirstFree, nil, nil)
		if err != nil {
			return false
		}
		return g.CheckLegalColoring(wc.Colors) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
