package forest

import (
	"fmt"
	"time"

	"repro/internal/dist"
	"repro/internal/graph"
)

// This file implements the orientation step shared by Lemma 2.4 and by
// Procedures Complete-Orientation / Partial-Orientation (Section 3): given
// an H-partition and a per-vertex key, orient each edge towards the
// endpoint with the lexicographically larger (level, key) pair; edges whose
// endpoints tie on both are left unoriented.
//
// With key = id, no ties occur and the result is the complete acyclic
// orientation of Lemma 2.4 (out-degree <= floor((2+eps)a), unbounded
// length). With key = a legal per-level coloring it is Procedure
// Complete-Orientation (length O(#colors * #levels)); with key = a
// defective per-level coloring it is Procedure Partial-Orientation
// (deficit <= per-level defect, length O(#colors * #levels)).

// orientExchange is the one-round exchange in which every vertex learns
// its neighbors' (level, key) pairs and derives parent-port flags locally.
type orientExchange struct{}

type orientMsg struct {
	Level int
	Key   int
}

type orientInput struct {
	Level int
	Key   int
}

// orientOutput reports, for each visible port: +1 parent, -1 child,
// 0 unoriented.
type orientOutput struct {
	PortDir []int8
}

func (orientExchange) Init(n *dist.Node) {
	in := n.Input.(orientInput)
	n.SendAll(orientMsg{Level: in.Level, Key: in.Key})
}

func (orientExchange) Step(n *dist.Node, inbox []dist.Message) {
	in := n.Input.(orientInput)
	dirs := make([]int8, len(inbox))
	for p, m := range inbox {
		if m == nil {
			continue
		}
		om := m.(orientMsg)
		dirs[p] = orientDir(in, om.Level, om.Key)
	}
	n.Output = orientOutput{PortDir: dirs}
	n.Halt()
}

// orientDir compares a neighbor's (level, key) with ours: +1 parent,
// -1 child, 0 tie (unoriented).
func orientDir(in orientInput, level, key int) int8 {
	switch {
	case level > in.Level || (level == in.Level && key > in.Key):
		return +1 // neighbor is our parent
	case level < in.Level || (level == in.Level && key < in.Key):
		return -1 // neighbor is our child
	default:
		return 0
	}
}

// MessageWords implements dist.FixedWidthAlgorithm: a message carries the
// sender's level and key.
func (orientExchange) MessageWords() int { return 2 }

// InputWidth and OutputWidth implement dist.WordIOAlgorithm: two input
// words per vertex (level, key) and one direction word per visible port
// (+1 parent, -1 child, 0 unoriented/silent).
func (orientExchange) InputWidth() int  { return 2 }
func (orientExchange) OutputWidth() int { return dist.PerPort }

//distvet:noalloc
func (orientExchange) InitWords(n *dist.Node) {
	in := n.InputWords()
	for p := 0; p < n.Degree(); p++ {
		w := n.SendWords(p)
		w[0] = in[0]
		w[1] = in[1]
	}
}

//distvet:noalloc
func (orientExchange) StepWords(n *dist.Node, inbox dist.WordInbox) {
	in := orientInput{Level: int(n.InputWords()[0]), Key: int(n.InputWords()[1])}
	out := n.OutputWords()
	for p := range out {
		if !inbox.Has(p) {
			continue
		}
		w := inbox.Words(p)
		out[p] = int64(orientDir(in, int(w[0]), int(w[1])))
	}
	n.Halt()
}

// OrientResult bundles the distributed orientation with its cost.
type OrientResult struct {
	Sigma    *graph.Orientation
	Rounds   int
	Messages int64
	// Wall and PeakLive are host-side observability figures; see
	// HPartition.
	Wall     time.Duration
	PeakLive int
}

// Stats returns the run-stat view of the orientation cost.
func (r *OrientResult) Stats() dist.RunStats {
	return dist.RunStats{Rounds: r.Rounds, Messages: r.Messages, Wall: r.Wall, PeakLive: r.PeakLive}
}

// OrientByLevelKey runs the one-round orientation exchange. levels and keys
// are per-vertex; labels/active optionally restrict to subgraphs (edges
// across labels are not oriented). The orientation is assembled centrally
// from the per-node outputs for verification and later phases; each node
// only ever used its own (level, key) and its neighbors' messages.
func OrientByLevelKey(net *dist.Network, levels, keys []int, labels []int, active []bool) (*OrientResult, error) {
	g := net.Graph()
	n := g.N()
	if len(levels) != n || len(keys) != n {
		return nil, fmt.Errorf("forest: levels/keys length mismatch")
	}
	sigma := graph.NewOrientation(g)
	if net.WordIO(orientExchange{}) {
		col := make([]int64, 2*n)
		dist.ParallelFor(n, net.SweepWorkers(n), func(lo, hi int) {
			for v := lo; v < hi; v++ {
				col[2*v] = int64(levels[v])
				col[2*v+1] = int64(keys[v])
			}
		})
		res, err := net.RunWords(orientExchange{}, dist.RunOptions{InputWords: col, Labels: labels, Active: active})
		if err != nil {
			return nil, err
		}
		// Decode the per-port direction column in the engine's layout
		// order (active vertices ascending, visible ports ascending),
		// served from the session's cached topology. The central sigma
		// assembly stays serial: Orient mutates both endpoints' entries.
		out, off := res.OutputWords, 0
		var orientErr error
		net.ForEachVisible(labels, active, func(v int, ports []int) {
			dirs := out[off : off+len(ports)]
			off += len(ports)
			for p, d := range dirs {
				if d == +1 && orientErr == nil {
					orientErr = sigma.Orient(v, ports[p])
				}
			}
		})
		if orientErr != nil {
			return nil, orientErr
		}
		return &OrientResult{Sigma: sigma, Rounds: res.Rounds, Messages: res.Messages, Wall: res.Wall, PeakLive: res.PeakLive}, nil
	}
	inputs := make([]any, n)
	for v := 0; v < n; v++ {
		inputs[v] = orientInput{Level: levels[v], Key: keys[v]}
	}
	res, err := net.Run(orientExchange{}, dist.RunOptions{Inputs: inputs, Labels: labels, Active: active})
	if err != nil {
		return nil, err
	}
	for v := 0; v < n; v++ {
		out, ok := res.Outputs[v].(orientOutput)
		if !ok {
			continue // inactive vertex
		}
		ports := dist.VisiblePorts(g, labels, active, v)
		for p, d := range out.PortDir {
			if d == +1 {
				if err := sigma.Orient(v, ports[p]); err != nil {
					return nil, err
				}
			}
		}
	}
	return &OrientResult{Sigma: sigma, Rounds: res.Rounds, Messages: res.Messages}, nil
}

// CompleteAcyclicOrientation implements Lemma 2.4: an acyclic complete
// orientation with out-degree floor((2+eps)a) in O(log n) time, via an
// H-partition followed by the (level, id) orientation exchange.
func CompleteAcyclicOrientation(net *dist.Network, a int, eps Eps) (*OrientResult, *HPartition, error) {
	hp, err := ComputeHPartition(net, a, eps, nil, nil)
	if err != nil {
		return nil, nil, err
	}
	ids := net.IDs()
	or, err := OrientByLevelKey(net, hp.Level, ids, nil, nil)
	if err != nil {
		return nil, nil, err
	}
	or.Rounds += hp.Rounds
	or.Wall += hp.Wall
	if hp.PeakLive > or.PeakLive {
		or.PeakLive = hp.PeakLive
	}
	return or, hp, nil
}
