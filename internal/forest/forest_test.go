package forest

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
)

func TestEpsThreshold(t *testing.T) {
	if got := DefaultEps.Threshold(4); got != 9 {
		t.Errorf("Threshold(4) = %d, want 9", got)
	}
	if got := (Eps{Num: 1, Den: 2}).Threshold(10); got != 25 {
		t.Errorf("Threshold(10) = %d, want 25", got)
	}
}

func TestHPartitionOnForestUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	for _, a := range []int{1, 2, 4, 8} {
		g := graph.ForestUnion(400, a, rng)
		net := dist.NewNetworkPermuted(g, rng)
		hp, err := ComputeHPartition(net, a, DefaultEps, nil, nil)
		if err != nil {
			t.Fatalf("a=%d: %v", a, err)
		}
		// Lemma 2.3: every vertex has at most floor((2+eps)a) neighbors in
		// its own or higher levels.
		for v := 0; v < g.N(); v++ {
			cnt := 0
			for _, u := range g.Neighbors(v) {
				if hp.Level[u] >= hp.Level[v] {
					cnt++
				}
			}
			if cnt > hp.Degree {
				t.Fatalf("a=%d vertex %d: %d same-or-higher neighbors > %d", a, v, cnt, hp.Degree)
			}
		}
		// O(log n) levels.
		if limit := 4*int(math.Log2(float64(g.N()))) + 8; hp.NumLevels > limit {
			t.Errorf("a=%d: %d levels > %d", a, hp.NumLevels, limit)
		}
		if hp.Rounds != hp.NumLevels {
			t.Errorf("a=%d: rounds %d != levels %d", a, hp.Rounds, hp.NumLevels)
		}
	}
}

func TestHPartitionTooSmallBound(t *testing.T) {
	// A clique has arboricity ~n/2; bound 1 must stall.
	net := dist.NewNetwork(graph.Complete(24))
	_, err := ComputeHPartition(net, 1, DefaultEps, nil, nil)
	if !errors.Is(err, ErrArboricityTooSmall) {
		t.Fatalf("err = %v, want ErrArboricityTooSmall", err)
	}
}

func TestHPartitionValidation(t *testing.T) {
	net := dist.NewNetwork(graph.Path(4))
	if _, err := ComputeHPartition(net, 0, DefaultEps, nil, nil); err == nil {
		t.Error("a=0 accepted")
	}
	if _, err := ComputeHPartition(net, 1, Eps{}, nil, nil); err == nil {
		t.Error("zero eps accepted")
	}
}

func TestEstimateArboricity(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	g := graph.ForestUnion(300, 5, rng)
	net := dist.NewNetworkPermuted(g, rng)
	a, hp, tally, err := EstimateArboricity(net, DefaultEps)
	if err != nil {
		t.Fatal(err)
	}
	if a < 1 || a > 16 {
		t.Errorf("estimated a = %d for true arboricity <= 5", a)
	}
	if hp == nil || tally == nil || tally.Rounds() == 0 {
		t.Error("missing partition or tally")
	}
}

func TestCompleteAcyclicOrientation(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for _, a := range []int{2, 5} {
		g := graph.ForestUnion(300, a, rng)
		net := dist.NewNetworkPermuted(g, rng)
		or, hp, err := CompleteAcyclicOrientation(net, a, DefaultEps)
		if err != nil {
			t.Fatal(err)
		}
		sigma := or.Sigma
		if !sigma.IsComplete() {
			t.Fatal("orientation incomplete (ids are unique; no ties possible)")
		}
		if !sigma.IsAcyclic() {
			t.Fatal("orientation cyclic (Lemma 2.4 violated)")
		}
		if od := sigma.MaxOutDegree(); od > hp.Degree {
			t.Errorf("a=%d: out-degree %d > %d", a, od, hp.Degree)
		}
	}
}

func TestOrientByLevelKeyTiesUnoriented(t *testing.T) {
	// Same level, same key everywhere: nothing is oriented.
	g := graph.Path(5)
	net := dist.NewNetwork(g)
	levels := []int{1, 1, 1, 1, 1}
	keys := []int{7, 7, 7, 7, 7}
	or, err := OrientByLevelKey(net, levels, keys, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if or.Sigma.MaxDeficit() != 2 { // middle vertices have both edges unoriented
		t.Errorf("deficit = %d, want 2", or.Sigma.MaxDeficit())
	}
	if or.Sigma.MaxOutDegree() != 0 {
		t.Error("tied edges were oriented")
	}
}

func TestOrientRespectsLabels(t *testing.T) {
	g := graph.Path(4) // edges (0,1),(1,2),(2,3)
	net := dist.NewNetwork(g)
	labels := []int{0, 0, 1, 1}
	levels := []int{1, 2, 1, 2}
	keys := []int{0, 0, 0, 0}
	or, err := OrientByLevelKey(net, levels, keys, labels, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !or.Sigma.IsParent(0, 1) || !or.Sigma.IsParent(2, 3) {
		t.Error("intra-label edges not oriented")
	}
	if or.Sigma.DirOf(1, 2) != graph.Unoriented {
		t.Error("cross-label edge was oriented")
	}
}

func TestDecomposeForests(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	for _, a := range []int{1, 3, 6} {
		g := graph.ForestUnion(250, a, rng)
		net := dist.NewNetworkPermuted(g, rng)
		fd, err := Decompose(net, a, DefaultEps)
		if err != nil {
			t.Fatal(err)
		}
		if err := fd.Validate(); err != nil {
			t.Fatalf("a=%d: %v", a, err)
		}
		if fd.NumForests > DefaultEps.Threshold(a) {
			t.Errorf("a=%d: %d forests > %d (Lemma 2.2(2))", a, fd.NumForests, DefaultEps.Threshold(a))
		}
	}
}

func TestForestIndexOutOfRange(t *testing.T) {
	rng := rand.New(rand.NewSource(204))
	g := graph.ForestUnion(50, 2, rng)
	net := dist.NewNetwork(g)
	fd, err := Decompose(net, 2, DefaultEps)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fd.Forest(-1); err == nil {
		t.Error("negative forest index accepted")
	}
	if _, err := fd.Forest(fd.NumForests); err == nil {
		t.Error("out-of-range forest index accepted")
	}
}

func TestWaitColorFirstFreeIsLegal(t *testing.T) {
	// Appendix A / Lemma 2.2(1): greedy coloring along a complete acyclic
	// orientation with palette out-degree+1 is legal.
	rng := rand.New(rand.NewSource(205))
	g := graph.ForestUnion(300, 4, rng)
	net := dist.NewNetworkPermuted(g, rng)
	or, hp, err := CompleteAcyclicOrientation(net, 4, DefaultEps)
	if err != nil {
		t.Fatal(err)
	}
	wc, err := WaitColor(net, or.Sigma, hp.Degree+1, RuleFirstFree, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckLegalColoring(wc.Colors); err != nil {
		t.Fatal(err)
	}
	if mc := graph.MaxColor(wc.Colors); mc > hp.Degree {
		t.Errorf("max color %d > %d", mc, hp.Degree)
	}
	length, err := or.Sigma.Length()
	if err != nil {
		t.Fatal(err)
	}
	if wc.Rounds > length+1 {
		t.Errorf("rounds %d > len+1 = %d (Theorem 3.2)", wc.Rounds, length+1)
	}
}

func TestWaitColorLeastUsedPigeonhole(t *testing.T) {
	// Theorem 3.2 core: with k colors, at most floor(m/k) parents share the
	// chosen color, so each color class has out-degree <= floor(m/k).
	rng := rand.New(rand.NewSource(206))
	g := graph.ForestUnion(300, 6, rng)
	net := dist.NewNetworkPermuted(g, rng)
	or, _, err := CompleteAcyclicOrientation(net, 6, DefaultEps)
	if err != nil {
		t.Fatal(err)
	}
	m := or.Sigma.MaxOutDegree()
	for _, k := range []int{2, 3, 5} {
		wc, err := WaitColor(net, or.Sigma, k, RuleLeastUsed, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Verify per-vertex: same-colored parents <= floor(m/k).
		for v := 0; v < g.N(); v++ {
			same := 0
			for _, u := range or.Sigma.Parents(v) {
				if wc.Colors[u] == wc.Colors[v] {
					same++
				}
			}
			if same > m/k {
				t.Fatalf("k=%d vertex %d: %d same-colored parents > %d", k, v, same, m/k)
			}
		}
		if err := g.CheckArbdefectWitness(wc.Colors, or.Sigma, m/k); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

func TestWaitColorPaletteExhaustion(t *testing.T) {
	// Star oriented leaf->center... center has 0 parents; orient edges
	// from center towards leaves instead so center has many parents and a
	// palette of 1 must fail under RuleFirstFree once any parent uses it.
	g := graph.Star(5)
	sigma := graph.NewOrientation(g)
	for v := 1; v < 5; v++ {
		if err := sigma.Orient(0, v); err != nil { // leaves are parents of center
			t.Fatal(err)
		}
	}
	net := dist.NewNetwork(g)
	if _, err := WaitColor(net, sigma, 1, RuleFirstFree, nil, nil); err == nil {
		t.Error("palette exhaustion not reported")
	}
}

func TestWaitColorRejectsCyclicOrientation(t *testing.T) {
	cyc, err := graph.Cycle(4)
	if err != nil {
		t.Fatal(err)
	}
	sigma := graph.NewOrientation(cyc)
	for v := 0; v < 4; v++ {
		_ = sigma.Orient(v, (v+1)%4)
	}
	net := dist.NewNetwork(cyc)
	if _, err := WaitColor(net, sigma, 3, RuleFirstFree, nil, nil); err == nil {
		t.Error("cyclic orientation accepted")
	}
}

func TestChoiceRuleUnknown(t *testing.T) {
	if _, err := ChoiceRule(99).choose([]int{0}); err == nil {
		t.Error("unknown rule accepted")
	}
}
