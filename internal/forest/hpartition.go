// Package forest implements the forests-decomposition machinery of
// Barenboim-Elkin PODC'08, which the paper imports as Lemmas 2.2-2.5:
// H-partitions, acyclic bounded-out-degree orientations, O(a)-forests
// decompositions, and the wait-for-parents coloring engine behind
// Procedure Simple-Arbdefective and Appendix A.
package forest

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/dist"
)

// Eps is the rational epsilon of the H-partition threshold
// floor((2+eps)*a). The zero value is invalid; use DefaultEps.
type Eps struct {
	Num, Den int
}

// DefaultEps is eps = 1/4, giving threshold floor(9a/4).
var DefaultEps = Eps{Num: 1, Den: 4}

// Threshold returns floor((2+eps)*a).
func (e Eps) Threshold(a int) int {
	return (2*e.Den + e.Num) * a / e.Den
}

// MaxLevels bounds the number of H-partition levels for an n-vertex graph
// of arboricity at most a: each peeling round removes at least an
// eps/(2+eps) fraction of the remaining vertices.
func (e Eps) MaxLevels(n int) int {
	if n <= 1 {
		return 1
	}
	shrink := float64(2*e.Den+e.Num) / float64(2*e.Den) // (2+eps)/2 > 1
	return int(math.Ceil(math.Log(float64(n))/math.Log(shrink))) + 2
}

// ErrArboricityTooSmall is returned when the H-partition stalls, which
// happens exactly when the supplied arboricity bound is below the true
// arboricity of the graph.
var ErrArboricityTooSmall = errors.New("forest: H-partition stalled; arboricity bound too small")

// HPartition is the result of the peeling decomposition (Lemma 2.3):
// Level[v] in {1..NumLevels} is the H-index of v, and every vertex has at
// most Degree neighbors in its own or higher levels.
type HPartition struct {
	Level     []int
	NumLevels int
	// Degree is the guaranteed bound floor((2+eps)*a) on the number of
	// same-or-higher-level neighbors of any vertex.
	Degree   int
	Rounds   int
	Messages int64
	// Wall and PeakLive are host-side observability figures (engine wall
	// time of the peeling run and its initial live-set size); they are not
	// deterministic and not part of the algorithmic result.
	Wall     time.Duration
	PeakLive int
}

// hpartitionAlgo implements the peeling: every active vertex beacons each
// round; a vertex whose active-neighbor count drops to the threshold joins
// the current level and goes silent.
type hpartitionAlgo struct {
	threshold int
}

func (a hpartitionAlgo) Init(n *dist.Node) {
	n.SendAll(struct{}{})
}

func (a hpartitionAlgo) Step(n *dist.Node, inbox []dist.Message) {
	activeNbrs := 0
	for _, m := range inbox {
		if m != nil {
			activeNbrs++
		}
	}
	if activeNbrs <= a.threshold {
		n.Output = n.Round()
		n.Halt()
		return
	}
	n.SendAll(struct{}{})
}

// MessageWords implements dist.FixedWidthAlgorithm: the beacon is a
// single (ignored) word; presence is the signal.
func (hpartitionAlgo) MessageWords() int { return 1 }

// InputWidth and OutputWidth implement dist.WordIOAlgorithm: the peeling
// takes no input and reports one level word per vertex.
func (hpartitionAlgo) InputWidth() int  { return 0 }
func (hpartitionAlgo) OutputWidth() int { return 1 }

//distvet:noalloc
func (hpartitionAlgo) InitWords(n *dist.Node) {
	n.SendAllWord(1)
}

//distvet:noalloc
func (a hpartitionAlgo) StepWords(n *dist.Node, inbox dist.WordInbox) {
	activeNbrs := 0
	for p := 0; p < inbox.Ports(); p++ {
		if inbox.Has(p) {
			activeNbrs++
		}
	}
	if activeNbrs <= a.threshold {
		n.SetOutputWord(int64(n.Round()))
		n.Halt()
		return
	}
	n.SendAllWord(1)
}

// ComputeHPartition runs the distributed peeling with arboricity bound a.
// Time O(log n) when a is a valid bound (Lemma 2.3); returns
// ErrArboricityTooSmall otherwise.
//
// labels/active optionally restrict the computation to labelled subgraphs,
// in which case a must bound the arboricity of every subgraph and level
// indices are per-subgraph.
func ComputeHPartition(net *dist.Network, a int, eps Eps, labels []int, active []bool) (*HPartition, error) {
	if a < 1 {
		return nil, fmt.Errorf("forest: arboricity bound must be >= 1, got %d", a)
	}
	if eps.Num <= 0 || eps.Den <= 0 {
		return nil, fmt.Errorf("forest: invalid eps %d/%d", eps.Num, eps.Den)
	}
	g := net.Graph()
	threshold := eps.Threshold(a)
	budget := eps.MaxLevels(g.N()) + 2
	algo := hpartitionAlgo{threshold: threshold}
	opts := dist.RunOptions{MaxRounds: budget, Labels: labels, Active: active}
	var res *dist.Result
	var err error
	wordIO := net.WordIO(algo)
	if wordIO {
		res, err = net.RunWords(algo, opts)
	} else {
		res, err = net.Run(algo, opts)
	}
	if err != nil {
		if errors.Is(err, dist.ErrMaxRounds) {
			return nil, fmt.Errorf("%w (bound a=%d, threshold=%d)", ErrArboricityTooSmall, a, threshold)
		}
		return nil, err
	}
	var levels []int
	if wordIO {
		levels = make([]int, g.N())
		if err := dist.IntsFromWords(res, levels); err != nil {
			return nil, err
		}
	} else {
		if levels, err = dist.IntOutputs(res, 0); err != nil {
			return nil, err
		}
	}
	numLevels := 0
	for _, l := range levels {
		if l > numLevels {
			numLevels = l
		}
	}
	return &HPartition{
		Level:     levels,
		NumLevels: numLevels,
		Degree:    threshold,
		Rounds:    res.Rounds,
		Messages:  res.Messages,
		Wall:      res.Wall,
		PeakLive:  res.PeakLive,
	}, nil
}

// EstimateArboricity runs H-partitions with doubling arboricity guesses
// until one succeeds, returning the first admissible guess (at most twice
// the degeneracy) and the partition it produced. Total time O(log a log n).
func EstimateArboricity(net *dist.Network, eps Eps) (int, *HPartition, *dist.Tally, error) {
	var tally dist.Tally
	for a := 1; a <= net.Graph().N(); a *= 2 {
		hp, err := ComputeHPartition(net, a, eps, nil, nil)
		if err == nil {
			tally.AddRounds(fmt.Sprintf("hpartition(a=%d)", a), hp.Rounds, 0)
			return a, hp, &tally, nil
		}
		if !errors.Is(err, ErrArboricityTooSmall) {
			return 0, nil, nil, err
		}
		tally.AddRounds(fmt.Sprintf("hpartition(a=%d,failed)", a), eps.MaxLevels(net.Graph().N())+2, 0)
	}
	return 0, nil, nil, fmt.Errorf("forest: estimation failed up to n")
}
