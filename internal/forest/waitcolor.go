package forest

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/graph"
)

// This file implements the wait-for-parents coloring engine: given an
// acyclic (partial) orientation, every vertex waits until all its parents
// have selected colors, then selects its own according to a local rule and
// announces it. Running time is len(sigma)+1 rounds (Theorem 3.2 /
// Appendix A induction).
//
// Two rules are used in the paper:
//   - RuleFirstFree: smallest palette color unused by any parent; with
//     palette size > out-degree this yields a LEGAL coloring of the edges
//     oriented by sigma (Appendix A; and Lemma 2.2(1) when sigma is a
//     Complete-Orientation).
//   - RuleLeastUsed: palette color selected by the fewest parents; by
//     pigeonhole at most floor(outdeg/k) parents share the chosen color,
//     which is the core of Procedure Simple-Arbdefective (Theorem 3.2).

// ChoiceRule selects a color in [0, palette) given the multiset of parent
// colors (parentColors[c] = number of parents colored c).
type ChoiceRule int

const (
	// RuleFirstFree picks the smallest color used by no parent.
	RuleFirstFree ChoiceRule = iota + 1
	// RuleLeastUsed picks the color used by the fewest parents
	// (smallest index on ties).
	RuleLeastUsed
)

func (r ChoiceRule) choose(counts []int) (int, error) {
	switch r {
	case RuleFirstFree:
		for c, k := range counts {
			if k == 0 {
				return c, nil
			}
		}
		return 0, fmt.Errorf("forest: palette of size %d exhausted", len(counts))
	case RuleLeastUsed:
		best := 0
		for c := 1; c < len(counts); c++ {
			if counts[c] < counts[best] {
				best = c
			}
		}
		return best, nil
	default:
		return 0, fmt.Errorf("forest: unknown choice rule %d", r)
	}
}

// WaitColorInput is the per-node input of the boxed fallback plane. The
// typed word plane carries Palette and Rule in the algorithm value and
// the parent flags in the per-port input column.
type WaitColorInput struct {
	// ParentPort flags which visible ports lead to parents under sigma.
	ParentPort []bool
	// Palette is the number of available colors k.
	Palette int
	// Rule selects the color choice rule.
	Rule ChoiceRule
}

type waitColorState struct {
	parentColors []int // counts per palette color
	pending      int   // parents not yet heard from
}

// WaitColorAlgo is the vertex program of the engine.
//
// On the boxed []any plane the zero value is ready to use and reads
// per-vertex WaitColorInput structs (the reference fallback). On the
// typed word plane, construct it with newWordWaitColor. Word layout: the
// input column holds one word per visible port and doubles as the
// node's per-run state - 0 marks a non-parent port, 1 a parent not yet
// heard from, and c+2 a parent that announced color c (so callers must
// not reuse the column expecting the original flags). The output column
// is one word per vertex, the chosen color. With the waiting state
// folded into the input column the word path allocates nothing per
// vertex.
type WaitColorAlgo struct {
	// Palette and Rule are the uniform globally known parameters of the
	// word plane; the boxed fallback ignores them.
	Palette int
	Rule    ChoiceRule

	// pool recycles the transient parent-color count buffer used when a
	// node finishes.
	pool *sync.Pool
}

// newWordWaitColor prepares the word-I/O form of the engine.
func newWordWaitColor(palette int, rule ChoiceRule) WaitColorAlgo {
	return WaitColorAlgo{
		Palette: palette,
		Rule:    rule,
		pool:    &sync.Pool{New: func() any { return new(countScratch) }},
	}
}

type countScratch struct{ counts []int }

// MessageWords implements dist.FixedWidthAlgorithm: a message is the
// sender's chosen color.
func (WaitColorAlgo) MessageWords() int { return 1 }

// InputWidth and OutputWidth implement dist.WordIOAlgorithm: one
// parent-flag word per visible port in, one color word per vertex out.
func (WaitColorAlgo) InputWidth() int  { return dist.PerPort }
func (WaitColorAlgo) OutputWidth() int { return 1 }

func (WaitColorAlgo) Init(n *dist.Node) {
	if c, announce := waitColorInit(n); announce {
		n.SendAll(c)
	}
}

// InitWords is Init on the typed word plane.
//
//distvet:noalloc
func (a WaitColorAlgo) InitWords(n *dist.Node) {
	if a.Palette < 1 {
		n.Failf("forest: bad wait-color palette %d", a.Palette)
		return
	}
	pending := 0
	for _, w := range n.InputWords() {
		if w == 1 {
			pending++
		}
	}
	if pending == 0 {
		a.finishWords(n)
	}
}

// waitColorInit is the transport-independent Init; when announce is true
// the node picked color c (parent-free case) and the caller broadcasts it.
func waitColorInit(n *dist.Node) (int, bool) {
	in, ok := n.Input.(WaitColorInput)
	if !ok || in.Palette < 1 {
		n.Failf("forest: bad wait-color input %T", n.Input)
		return 0, false
	}
	pending := 0
	for _, p := range in.ParentPort {
		if p {
			pending++
		}
	}
	st := &waitColorState{parentColors: make([]int, in.Palette), pending: pending}
	n.State = st
	if pending == 0 {
		return finishWaitColor(n, in, st)
	}
	return 0, false
}

func (WaitColorAlgo) Step(n *dist.Node, inbox []dist.Message) {
	in := n.Input.(WaitColorInput)
	st := n.State.(*waitColorState)
	for p, m := range inbox {
		if m == nil || p >= len(in.ParentPort) || !in.ParentPort[p] {
			continue
		}
		st.record(m.(int))
	}
	if st.pending <= 0 {
		if c, announce := finishWaitColor(n, in, st); announce {
			n.SendAll(c)
		}
	}
}

// StepWords is Step on the typed word plane: announced parent colors are
// recorded into the node's own input slots (flag 1 -> color+2), so the
// only remaining state is the words themselves.
//
//distvet:noalloc
func (a WaitColorAlgo) StepWords(n *dist.Node, inbox dist.WordInbox) {
	ports := n.InputWords()
	pending := 0
	for p := range ports {
		if ports[p] != 1 {
			continue // non-parent, or parent already recorded
		}
		if inbox.Has(p) {
			ports[p] = inbox.Word(p) + 2
		} else {
			pending++
		}
	}
	if pending == 0 {
		a.finishWords(n)
	}
}

func (st *waitColorState) record(c int) {
	if c >= 0 && c < len(st.parentColors) {
		st.parentColors[c]++
	}
	st.pending--
}

// finishWaitColor chooses the node's color, publishes it as the output
// and halts; when announce is true the caller broadcasts c to children.
func finishWaitColor(n *dist.Node, in WaitColorInput, st *waitColorState) (int, bool) {
	c, err := in.Rule.choose(st.parentColors)
	if err != nil {
		n.Fail(err)
		return 0, false
	}
	n.Output = c
	n.Halt()
	return c, true
}

// finishWords is finishWaitColor on the word plane: parent counts are
// rebuilt from the recorded input words into pooled scratch.
//
//distvet:noalloc
func (a WaitColorAlgo) finishWords(n *dist.Node) {
	sc := a.pool.Get().(*countScratch)
	if cap(sc.counts) < a.Palette {
		sc.counts = make([]int, a.Palette) //distvet:alloc-ok one-time growth of the pooled counts buffer to the palette size
	}
	counts := sc.counts[:a.Palette]
	clear(counts)
	for _, w := range n.InputWords() {
		if c := int(w) - 2; c >= 0 && c < a.Palette {
			counts[c]++
		}
	}
	c, err := a.Rule.choose(counts)
	a.pool.Put(sc)
	if err != nil {
		n.Fail(err)
		return
	}
	n.SetOutputWord(int64(c))
	n.Halt()
	n.SendAllWord(int64(c))
}

// WaitColorResult reports a wait-for-parents run.
type WaitColorResult struct {
	Colors   []int
	Rounds   int
	Messages int64
	// Wall and PeakLive are host-side observability figures; see
	// HPartition.
	Wall     time.Duration
	PeakLive int
}

// Stats returns the run-stat view of the wait-color cost.
func (r *WaitColorResult) Stats() dist.RunStats {
	return dist.RunStats{Rounds: r.Rounds, Messages: r.Messages, Wall: r.Wall, PeakLive: r.PeakLive}
}

// WaitColor runs the engine over an orientation. palette is the number of
// colors k; rule selects the per-vertex choice. labels/active optionally
// restrict to subgraphs (sigma must then orient only intra-subgraph edges,
// as produced by OrientByLevelKey with the same filters). Running time is
// len(sigma)+1 rounds. It takes the typed word path when the network
// resolves to the batch transport and the boxed []any fallback otherwise.
func WaitColor(net *dist.Network, sigma *graph.Orientation, palette int, rule ChoiceRule, labels []int, active []bool) (*WaitColorResult, error) {
	g := net.Graph()
	n := g.N()
	length, err := sigma.Length()
	if err != nil {
		return nil, fmt.Errorf("forest: wait-color needs acyclic orientation: %w", err)
	}
	colors := make([]int, n)
	if net.WordIO(WaitColorAlgo{}) {
		// Parent flags in the engine's per-port column order, filled in
		// parallel against the session's cached topology. Note: these
		// are VISIBLE ports (label/active-filtered), so they do not align
		// with sigma's graph ports; query by neighbor vertex.
		col := net.PortColumn(labels, active, func(v int, ports []int, out []int64) {
			for p, u := range ports {
				if sigma.IsParent(v, u) {
					out[p] = 1
				}
			}
		})
		res, err := net.RunWords(newWordWaitColor(palette, rule), dist.RunOptions{
			InputWords: col,
			Labels:     labels,
			Active:     active,
			MaxRounds:  length + 2,
		})
		if err != nil {
			return nil, err
		}
		if err := dist.IntsFromWords(res, colors); err != nil {
			return nil, err
		}
		return &WaitColorResult{Colors: colors, Rounds: res.Rounds, Messages: res.Messages, Wall: res.Wall, PeakLive: res.PeakLive}, nil
	}
	inputs := make([]any, n)
	for v := 0; v < n; v++ {
		// Note: these are VISIBLE ports (label/active-filtered), so they do
		// not align with sigma's graph ports; query by neighbor vertex.
		ports := dist.VisiblePorts(g, labels, active, v)
		flags := make([]bool, len(ports))
		for p, u := range ports {
			flags[p] = sigma.IsParent(v, u)
		}
		inputs[v] = WaitColorInput{ParentPort: flags, Palette: palette, Rule: rule}
	}
	res, err := net.Run(WaitColorAlgo{}, dist.RunOptions{
		Inputs:    inputs,
		Labels:    labels,
		Active:    active,
		MaxRounds: length + 2,
	})
	if err != nil {
		return nil, err
	}
	for v, o := range res.Outputs {
		switch x := o.(type) {
		case int:
			colors[v] = x
		case error:
			// Legacy boxed-plane error smuggling; kept defensively for the
			// fallback only (the engine's Fail path reports errors now).
			return nil, fmt.Errorf("forest: vertex %d: %w", v, x)
		case nil:
			colors[v] = 0 // inactive
		default:
			return nil, fmt.Errorf("forest: vertex %d unexpected output %T", v, o)
		}
	}
	return &WaitColorResult{Colors: colors, Rounds: res.Rounds, Messages: res.Messages, Wall: res.Wall, PeakLive: res.PeakLive}, nil
}
