package forest

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/graph"
)

// This file implements the wait-for-parents coloring engine: given an
// acyclic (partial) orientation, every vertex waits until all its parents
// have selected colors, then selects its own according to a local rule and
// announces it. Running time is len(sigma)+1 rounds (Theorem 3.2 /
// Appendix A induction).
//
// Two rules are used in the paper:
//   - RuleFirstFree: smallest palette color unused by any parent; with
//     palette size > out-degree this yields a LEGAL coloring of the edges
//     oriented by sigma (Appendix A; and Lemma 2.2(1) when sigma is a
//     Complete-Orientation).
//   - RuleLeastUsed: palette color selected by the fewest parents; by
//     pigeonhole at most floor(outdeg/k) parents share the chosen color,
//     which is the core of Procedure Simple-Arbdefective (Theorem 3.2).

// ChoiceRule selects a color in [0, palette) given the multiset of parent
// colors (parentColors[c] = number of parents colored c).
type ChoiceRule int

const (
	// RuleFirstFree picks the smallest color used by no parent.
	RuleFirstFree ChoiceRule = iota + 1
	// RuleLeastUsed picks the color used by the fewest parents
	// (smallest index on ties).
	RuleLeastUsed
)

func (r ChoiceRule) choose(counts []int) (int, error) {
	switch r {
	case RuleFirstFree:
		for c, k := range counts {
			if k == 0 {
				return c, nil
			}
		}
		return 0, fmt.Errorf("forest: palette of size %d exhausted", len(counts))
	case RuleLeastUsed:
		best := 0
		for c := 1; c < len(counts); c++ {
			if counts[c] < counts[best] {
				best = c
			}
		}
		return best, nil
	default:
		return 0, fmt.Errorf("forest: unknown choice rule %d", r)
	}
}

// WaitColorInput is the per-node input of the wait-for-parents engine.
type WaitColorInput struct {
	// ParentPort flags which visible ports lead to parents under sigma.
	ParentPort []bool
	// Palette is the number of available colors k.
	Palette int
	// Rule selects the color choice rule.
	Rule ChoiceRule
}

type waitColorState struct {
	parentColors []int // counts per palette color
	pending      int   // parents not yet heard from
	errMsg       string
}

// WaitColorAlgo is the dist.Algorithm for the engine.
type WaitColorAlgo struct{}

func (WaitColorAlgo) Init(n *dist.Node) {
	if c, announce := waitColorInit(n); announce {
		n.SendAll(c)
	}
}

// InitWords is Init on the batch transport.
func (WaitColorAlgo) InitWords(n *dist.Node) {
	if c, announce := waitColorInit(n); announce {
		n.SendAllWord(int64(c))
	}
}

// waitColorInit is the transport-independent Init; when announce is true
// the node picked color c (parent-free case) and the caller broadcasts it.
func waitColorInit(n *dist.Node) (int, bool) {
	in, ok := n.Input.(WaitColorInput)
	if !ok || in.Palette < 1 {
		n.Output = fmt.Errorf("forest: bad wait-color input %T", n.Input)
		n.Halt()
		return 0, false
	}
	pending := 0
	for _, p := range in.ParentPort {
		if p {
			pending++
		}
	}
	st := &waitColorState{parentColors: make([]int, in.Palette), pending: pending}
	n.State = st
	if pending == 0 {
		return finishWaitColor(n, in, st)
	}
	return 0, false
}

// MessageWords implements dist.FixedWidthAlgorithm: a message is the
// sender's chosen color.
func (WaitColorAlgo) MessageWords() int { return 1 }

func (WaitColorAlgo) Step(n *dist.Node, inbox []dist.Message) {
	in := n.Input.(WaitColorInput)
	st := n.State.(*waitColorState)
	for p, m := range inbox {
		if m == nil || p >= len(in.ParentPort) || !in.ParentPort[p] {
			continue
		}
		st.record(m.(int))
	}
	if st.pending <= 0 {
		if c, announce := finishWaitColor(n, in, st); announce {
			n.SendAll(c)
		}
	}
}

// StepWords is Step on the batch transport.
func (WaitColorAlgo) StepWords(n *dist.Node, inbox dist.WordInbox) {
	in := n.Input.(WaitColorInput)
	st := n.State.(*waitColorState)
	for p := 0; p < inbox.Ports(); p++ {
		if !inbox.Has(p) || p >= len(in.ParentPort) || !in.ParentPort[p] {
			continue
		}
		st.record(int(inbox.Word(p)))
	}
	if st.pending <= 0 {
		if c, announce := finishWaitColor(n, in, st); announce {
			n.SendAllWord(int64(c))
		}
	}
}

func (st *waitColorState) record(c int) {
	if c >= 0 && c < len(st.parentColors) {
		st.parentColors[c]++
	}
	st.pending--
}

// finishWaitColor chooses the node's color, publishes it as the output
// and halts; when announce is true the caller broadcasts c to children.
func finishWaitColor(n *dist.Node, in WaitColorInput, st *waitColorState) (int, bool) {
	c, err := in.Rule.choose(st.parentColors)
	if err != nil {
		n.Output = err
		n.Halt()
		return 0, false
	}
	n.Output = c
	n.Halt()
	return c, true
}

// WaitColorResult reports a wait-for-parents run.
type WaitColorResult struct {
	Colors   []int
	Rounds   int
	Messages int64
}

// WaitColor runs the engine over an orientation. palette is the number of
// colors k; rule selects the per-vertex choice. labels/active optionally
// restrict to subgraphs (sigma must then orient only intra-subgraph edges,
// as produced by OrientByLevelKey with the same filters). Running time is
// len(sigma)+1 rounds.
func WaitColor(net *dist.Network, sigma *graph.Orientation, palette int, rule ChoiceRule, labels []int, active []bool) (*WaitColorResult, error) {
	g := net.Graph()
	n := g.N()
	inputs := make([]any, n)
	for v := 0; v < n; v++ {
		// Note: these are VISIBLE ports (label/active-filtered), so they do
		// not align with sigma's graph ports; query by neighbor vertex.
		ports := dist.VisiblePorts(g, labels, active, v)
		flags := make([]bool, len(ports))
		for p, u := range ports {
			flags[p] = sigma.IsParent(v, u)
		}
		inputs[v] = WaitColorInput{ParentPort: flags, Palette: palette, Rule: rule}
	}
	length, err := sigma.Length()
	if err != nil {
		return nil, fmt.Errorf("forest: wait-color needs acyclic orientation: %w", err)
	}
	res, err := net.Run(WaitColorAlgo{}, dist.RunOptions{
		Inputs:    inputs,
		Labels:    labels,
		Active:    active,
		MaxRounds: length + 2,
	})
	if err != nil {
		return nil, err
	}
	colors := make([]int, n)
	for v, o := range res.Outputs {
		switch x := o.(type) {
		case int:
			colors[v] = x
		case error:
			return nil, fmt.Errorf("forest: vertex %d: %w", v, x)
		case nil:
			colors[v] = 0 // inactive
		default:
			return nil, fmt.Errorf("forest: vertex %d unexpected output %T", v, o)
		}
	}
	return &WaitColorResult{Colors: colors, Rounds: res.Rounds, Messages: res.Messages}, nil
}
