package forest

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/graph"
)

// ForestsDecomposition partitions the edge set into forests (Lemma 2.2(2)):
// ForestOf maps each edge (keyed by its (min,max) endpoints) to a forest
// index in [0, NumForests). Each forest is an edge-disjoint acyclic
// subgraph, and NumForests <= floor((2+eps)a).
type ForestsDecomposition struct {
	Sigma      *graph.Orientation
	ForestOf   map[[2]int]int
	NumForests int
	Rounds     int
	Messages   int64
}

// forestAssign: each vertex locally labels its outgoing (parent) edges with
// distinct forest indices 0,1,2,... in port order. No communication needed
// beyond the orientation exchange; the assignment round is free.
type forestAssign struct{}

type forestAssignInput struct {
	ParentPort []bool
}

type forestAssignOutput struct {
	// ForestOfPort[p] is the forest index of the outgoing edge on port p,
	// or -1 when the port is not a parent edge.
	ForestOfPort []int
}

func (forestAssign) Init(n *dist.Node) {
	in := n.Input.(forestAssignInput)
	out := make([]int, len(in.ParentPort))
	next := 0
	for p, isParent := range in.ParentPort {
		if isParent {
			out[p] = next
			next++
		} else {
			out[p] = -1
		}
	}
	n.Output = forestAssignOutput{ForestOfPort: out}
	n.Halt()
}

func (forestAssign) Step(n *dist.Node, inbox []dist.Message) {}

// MessageWords implements dist.FixedWidthAlgorithm; the assignment is
// purely local, so no message is ever sent.
func (forestAssign) MessageWords() int { return 1 }

// InputWidth and OutputWidth implement dist.WordIOAlgorithm: one
// parent-flag word in and one forest-index word out per visible port
// (-1 marks a non-parent edge).
func (forestAssign) InputWidth() int  { return dist.PerPort }
func (forestAssign) OutputWidth() int { return dist.PerPort }

//distvet:noalloc
func (forestAssign) InitWords(n *dist.Node) {
	flags := n.InputWords()
	out := n.OutputWords()
	next := int64(0)
	for p, w := range flags {
		if w != 0 {
			out[p] = next
			next++
		} else {
			out[p] = -1
		}
	}
	n.Halt()
}

//distvet:noalloc
func (forestAssign) StepWords(n *dist.Node, inbox dist.WordInbox) {}

// Decompose computes an O(a)-forests decomposition in O(log n) time
// (Lemma 2.2(2)): H-partition, (level,id) orientation, then local forest
// assignment of each vertex's <= floor((2+eps)a) outgoing edges.
func Decompose(net *dist.Network, a int, eps Eps) (*ForestsDecomposition, error) {
	or, _, err := CompleteAcyclicOrientation(net, a, eps)
	if err != nil {
		return nil, err
	}
	return DecomposeWithOrientation(net, or.Sigma, or.Rounds, or.Messages)
}

// DecomposeWithOrientation derives the forests decomposition from an
// existing acyclic orientation; baseRounds/baseMessages are added to the
// reported cost.
func DecomposeWithOrientation(net *dist.Network, sigma *graph.Orientation, baseRounds int, baseMessages int64) (*ForestsDecomposition, error) {
	g := net.Graph()
	n := g.N()
	forestOf := make(map[[2]int]int, g.M())
	numForests := 0
	record := func(v, u, f int) {
		if f < 0 {
			return
		}
		key := [2]int{v, u}
		if u < v {
			key = [2]int{u, v}
		}
		forestOf[key] = f
		if f+1 > numForests {
			numForests = f + 1
		}
	}
	var res *dist.Result
	var err error
	if net.WordIO(forestAssign{}) {
		// Unfiltered run: visible ports coincide with the graph's port
		// numbering, so the parent flags can be read per port, in
		// parallel against the cached topology.
		col := net.PortColumn(nil, nil, func(v int, ports []int, out []int64) {
			for p := range ports {
				if sigma.IsParentPort(v, p) {
					out[p] = 1
				}
			}
		})
		res, err = net.RunWords(forestAssign{}, dist.RunOptions{InputWords: col})
		if err != nil {
			return nil, err
		}
		out, off := res.OutputWords, 0
		for v := 0; v < n; v++ {
			nbrs := g.Neighbors(v)
			for p, u := range nbrs {
				record(v, u, int(out[off+p]))
			}
			off += len(nbrs)
		}
	} else {
		inputs := make([]any, n)
		for v := 0; v < n; v++ {
			nbrs := g.Neighbors(v)
			flags := make([]bool, len(nbrs))
			for p := range flags {
				flags[p] = sigma.IsParentPort(v, p)
			}
			inputs[v] = forestAssignInput{ParentPort: flags}
		}
		res, err = net.Run(forestAssign{}, dist.RunOptions{Inputs: inputs})
		if err != nil {
			return nil, err
		}
		for v := 0; v < n; v++ {
			out, ok := res.Outputs[v].(forestAssignOutput)
			if !ok {
				return nil, fmt.Errorf("forest: vertex %d missing assignment", v)
			}
			nbrs := g.Neighbors(v)
			for p, f := range out.ForestOfPort {
				record(v, nbrs[p], f)
			}
		}
	}
	return &ForestsDecomposition{
		Sigma:      sigma,
		ForestOf:   forestOf,
		NumForests: numForests,
		Rounds:     baseRounds + res.Rounds,
		Messages:   baseMessages + res.Messages,
	}, nil
}

// Forest materializes forest f as a spanning subgraph of the original
// vertex set (so vertex indices are unchanged).
func (fd *ForestsDecomposition) Forest(f int) (*graph.Graph, error) {
	if f < 0 || f >= fd.NumForests {
		return nil, fmt.Errorf("forest: index %d out of range [0,%d)", f, fd.NumForests)
	}
	b := graph.NewBuilder(fd.Sigma.Graph().N())
	for e, fi := range fd.ForestOf {
		if fi == f {
			if err := b.AddEdge(e[0], e[1]); err != nil {
				return nil, err
			}
		}
	}
	return b.Build(), nil
}

// Validate checks the decomposition invariants: every edge is assigned to
// exactly one forest, and every forest is acyclic.
func (fd *ForestsDecomposition) Validate() error {
	g := fd.Sigma.Graph()
	if len(fd.ForestOf) != g.M() {
		return fmt.Errorf("forest: %d of %d edges assigned", len(fd.ForestOf), g.M())
	}
	for f := 0; f < fd.NumForests; f++ {
		fg, err := fd.Forest(f)
		if err != nil {
			return err
		}
		if !fg.IsForest() {
			return fmt.Errorf("forest: part %d contains a cycle", f)
		}
	}
	return nil
}
