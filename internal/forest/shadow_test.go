package forest

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
)

// The forest-phase shadow suite pins the typed word-I/O plane of every
// phase in this package - H-partition, orientation exchange,
// wait-for-parents, forest assignment - bit-for-bit against the boxed
// []any fallback, by running each orchestrator under both forced
// transports on the same permuted network.

func shadowNets(g *graph.Graph) (word, boxed *dist.Network) {
	base := dist.NewNetworkPermuted(g, rand.New(rand.NewSource(91)))
	return base.WithDelivery(dist.DeliveryBatch), base.WithDelivery(dist.DeliveryBoxed)
}

func TestHPartitionWordShadowsBoxed(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	g := graph.ForestUnion(500, 3, rng)
	word, boxed := shadowNets(g)
	labels := make([]int, g.N())
	for v := range labels {
		labels[v] = rng.Intn(2)
	}
	for _, lb := range [][]int{nil, labels} {
		hw, err := ComputeHPartition(word, 3, DefaultEps, lb, nil)
		if err != nil {
			t.Fatal(err)
		}
		hb, err := ComputeHPartition(boxed, 3, DefaultEps, lb, nil)
		if err != nil {
			t.Fatal(err)
		}
		hw.Wall, hb.Wall = 0, 0 // host wall time, not deterministic
		if !reflect.DeepEqual(hw, hb) {
			t.Fatalf("H-partitions diverged across planes (labels=%v)", lb != nil)
		}
	}
}

func TestOrientByLevelKeyWordShadowsBoxed(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	g := graph.Gnp(300, 0.02, rng)
	word, boxed := shadowNets(g)
	levels := make([]int, g.N())
	keys := make([]int, g.N())
	active := make([]bool, g.N())
	for v := range levels {
		levels[v] = rng.Intn(4)
		keys[v] = rng.Intn(50)
		active[v] = rng.Intn(10) > 0
	}
	for _, act := range [][]bool{nil, active} {
		ow, err := OrientByLevelKey(word, levels, keys, nil, act)
		if err != nil {
			t.Fatal(err)
		}
		ob, err := OrientByLevelKey(boxed, levels, keys, nil, act)
		if err != nil {
			t.Fatal(err)
		}
		if ow.Rounds != ob.Rounds || ow.Messages != ob.Messages {
			t.Fatalf("orientation counters diverged: word %d/%d boxed %d/%d",
				ow.Rounds, ow.Messages, ob.Rounds, ob.Messages)
		}
		for v := 0; v < g.N(); v++ {
			if !reflect.DeepEqual(ow.Sigma.PortDirs(v), ob.Sigma.PortDirs(v)) {
				t.Fatalf("vertex %d oriented differently across planes", v)
			}
		}
	}
}

func TestWaitColorWordShadowsBoxed(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	g := graph.ForestUnion(400, 4, rng)
	word, boxed := shadowNets(g)
	// Orient towards the larger endpoint: acyclic, bounded length.
	sigma := graph.NewOrientation(g)
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			if u > v {
				if err := sigma.Orient(v, u); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	palette := sigma.MaxOutDegree() + 1
	for _, rule := range []ChoiceRule{RuleFirstFree, RuleLeastUsed} {
		ww, err := WaitColor(word, sigma, palette, rule, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		wb, err := WaitColor(boxed, sigma, palette, rule, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		ww.Wall, wb.Wall = 0, 0 // host wall time, not deterministic
		if !reflect.DeepEqual(ww, wb) {
			t.Fatalf("rule %v: wait-color runs diverged across planes", rule)
		}
	}
}

// TestWaitColorPaletteExhaustedFailsOnBothPlanes pins the Node.Fail
// error path: with a one-color palette under RuleFirstFree, any vertex
// with a parent fails, the run aborts, and both planes report the same
// palette-exhausted error through the per-run error slot.
func TestWaitColorPaletteExhaustedFailsOnBothPlanes(t *testing.T) {
	g := graph.Path(3)
	word, boxed := shadowNets(g)
	sigma := graph.NewOrientation(g)
	if err := sigma.Orient(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := sigma.Orient(1, 2); err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, net := range []*dist.Network{word, boxed} {
		_, err := WaitColor(net, sigma, 1, RuleFirstFree, nil, nil)
		if err == nil || !strings.Contains(err.Error(), "palette of size 1 exhausted") {
			t.Fatalf("got %v, want palette-exhausted failure", err)
		}
		msgs = append(msgs, err.Error())
	}
	if msgs[0] != msgs[1] {
		t.Fatalf("planes report different failures:\nword  %q\nboxed %q", msgs[0], msgs[1])
	}
}

func TestDecomposeWordShadowsBoxed(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	g := graph.ForestUnion(300, 3, rng)
	word, boxed := shadowNets(g)
	dw, err := Decompose(word, 3, DefaultEps)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Decompose(boxed, 3, DefaultEps)
	if err != nil {
		t.Fatal(err)
	}
	if dw.NumForests != db.NumForests || dw.Rounds != db.Rounds || dw.Messages != db.Messages {
		t.Fatalf("decompositions diverged: word %d forests %d/%d, boxed %d forests %d/%d",
			dw.NumForests, dw.Rounds, dw.Messages, db.NumForests, db.Rounds, db.Messages)
	}
	if !reflect.DeepEqual(dw.ForestOf, db.ForestOf) {
		t.Fatal("forest assignments diverged across planes")
	}
	if err := dw.Validate(); err != nil {
		t.Fatal(err)
	}
}
