package arbdefect

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/forest"
	"repro/internal/graph"
	"repro/internal/orient"
)

func TestSimpleArbdefectiveTheorem32(t *testing.T) {
	rng := rand.New(rand.NewSource(600))
	a := 6
	g := graph.ForestUnion(400, a, rng)
	net := dist.NewNetworkPermuted(g, rng)
	po, err := orient.Partial(net, a, 2, forest.DefaultEps, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 4, 8} {
		sr, err := Simple(net, po.Sigma, k, nil, nil)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if nc := graph.NumColors(sr.Colors); nc > k {
			t.Errorf("k=%d: %d colors used", k, nc)
		}
		// Theorem 3.2: (tau + floor(m/k))-arbdefective, witnessed by sigma.
		if err := g.CheckArbdefectWitness(sr.Colors, po.Sigma, sr.Bound); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
		// Rounds <= length + 1.
		s := orient.MeasureWithin(po.Sigma, nil, nil)
		if sr.Rounds > s.Length+1 {
			t.Errorf("k=%d: rounds %d > len+1 = %d", k, sr.Rounds, s.Length+1)
		}
	}
}

func TestSimpleRejectsBadK(t *testing.T) {
	g := graph.Path(4)
	net := dist.NewNetwork(g)
	if _, err := Simple(net, graph.NewOrientation(g), 0, nil, nil); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestArbdefectiveColoringCorollary36(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	eps := forest.DefaultEps
	for _, a := range []int{4, 8} {
		for _, kt := range []struct{ k, t int }{{2, 2}, {4, 4}, {3, 2}} {
			g := graph.ForestUnion(350, a, rng)
			net := dist.NewNetworkPermuted(g, rng)
			res, err := Coloring(net, a, kt.k, kt.t, eps, nil, nil)
			if err != nil {
				t.Fatalf("a=%d k=%d t=%d: %v", a, kt.k, kt.t, err)
			}
			if nc := graph.NumColors(res.Colors); nc > kt.k {
				t.Errorf("a=%d k=%d t=%d: %d colors", a, kt.k, kt.t, nc)
			}
			if res.Bound != a/kt.t+eps.Threshold(a)/kt.k {
				t.Errorf("bound formula mismatch: %d", res.Bound)
			}
			if err := g.CheckArbdefectWitness(res.Colors, res.Sigma, res.Bound); err != nil {
				t.Errorf("a=%d k=%d t=%d: %v", a, kt.k, kt.t, err)
			}
			// Degeneracy-based check too (arboricity <= degeneracy <= 2*arb).
			if err := g.CheckArbdefectiveColoring(res.Colors, 2*res.Bound); err != nil {
				t.Errorf("a=%d k=%d t=%d degeneracy: %v", a, kt.k, kt.t, err)
			}
			// O(t^2 log n) rounds.
			logn := int(math.Log2(float64(g.N())))
			if lim := (kt.t*kt.t + 30) * (logn + 8); res.Tally.Rounds() > lim {
				t.Errorf("a=%d k=%d t=%d: %d rounds > %d", a, kt.k, kt.t, res.Tally.Rounds(), lim)
			}
		}
	}
}

func TestColoringDecomposesArboricity(t *testing.T) {
	// The headline use (k = t): the graph splits into k parts of
	// arboricity <= floor((3+eps)a/k)-ish; verify via per-class degeneracy.
	rng := rand.New(rand.NewSource(602))
	a, k := 8, 4
	g := graph.ForestUnion(400, a, rng)
	net := dist.NewNetworkPermuted(g, rng)
	res, err := Coloring(net, a, k, k, forest.DefaultEps, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for c, class := range graph.ColorClasses(res.Colors) {
		sub, _, err := g.InducedSubgraph(class)
		if err != nil {
			t.Fatal(err)
		}
		if d, _ := sub.Degeneracy(); d > 2*res.Bound {
			t.Errorf("class %d degeneracy %d > 2*bound=%d", c, d, 2*res.Bound)
		}
	}
}

func TestColoringValidation(t *testing.T) {
	net := dist.NewNetwork(graph.Path(4))
	if _, err := Coloring(net, 1, 0, 1, forest.DefaultEps, nil, nil); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Coloring(net, 1, 1, 0, forest.DefaultEps, nil, nil); err == nil {
		t.Error("t=0 accepted")
	}
}

func TestColoringWithinLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(603))
	a, k := 4, 3
	g := graph.ForestUnion(300, a, rng)
	labels := make([]int, g.N())
	for v := range labels {
		labels[v] = v % 2
	}
	net := dist.NewNetworkPermuted(g, rng)
	res, err := Coloring(net, a, k, k, forest.DefaultEps, labels, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Witness within labels: per (label,class) induced subgraph degeneracy.
	composed := dist.ComposeLabels(labels, res.Colors)
	for c, class := range graph.ColorClasses(composed) {
		sub, _, err := g.InducedSubgraph(class)
		if err != nil {
			t.Fatal(err)
		}
		if d, _ := sub.Degeneracy(); d > 2*res.Bound {
			t.Errorf("label-class %d degeneracy %d > %d", c, d, 2*res.Bound)
		}
	}
}

func TestKuhnSection5(t *testing.T) {
	rng := rand.New(rand.NewSource(604))
	a := 8
	g := graph.ForestUnion(400, a, rng)
	net := dist.NewNetworkPermuted(g, rng)
	for _, tt := range []int{2, 4} {
		res, err := Kuhn(net, a, tt, forest.DefaultEps)
		if err != nil {
			t.Fatalf("t=%d: %v", tt, err)
		}
		if res.Defect != a/tt {
			t.Errorf("t=%d: defect %d != %d", tt, res.Defect, a/tt)
		}
		if err := g.CheckArbdefectWitness(res.Colors, res.Sigma, res.Defect); err != nil {
			t.Errorf("t=%d: %v", tt, err)
		}
		// O(t^2)-ish colors: generous constant.
		ratio := forest.DefaultEps.Threshold(a)/max(res.Defect, 1) + 2
		if nc := graph.NumColors(res.Colors); nc > 16*ratio*ratio+26 {
			t.Errorf("t=%d: %d colors (ratio %d)", tt, nc, ratio)
		}
		// O(log n) rounds.
		if lim := 8*int(math.Log2(float64(g.N()))) + 30; res.Tally.Rounds() > lim {
			t.Errorf("t=%d: %d rounds > %d", tt, res.Tally.Rounds(), lim)
		}
	}
}

func TestKuhnRejectsBadT(t *testing.T) {
	net := dist.NewNetwork(graph.Path(4))
	if _, err := Kuhn(net, 1, 0, forest.DefaultEps); err == nil {
		t.Error("t=0 accepted")
	}
}
