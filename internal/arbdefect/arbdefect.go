// Package arbdefect implements the paper's arbdefective coloring
// procedures - the new concept the paper introduces (Definition 2.1):
//
//   - Procedure Simple-Arbdefective (Theorem 3.2): given an acyclic partial
//     orientation of length l, out-degree m and deficit tau, computes a
//     (tau + floor(m/k))-arbdefective k-coloring in O(l) rounds by having
//     each vertex wait for its parents and pick the color fewest parents
//     chose.
//   - Procedure Arbdefective-Coloring (Corollary 3.6): Partial-Orientation
//     followed by Simple-Arbdefective, producing a
//     floor(a/t + (2+eps)a/k)-arbdefective k-coloring in O(t^2 log n)
//     rounds. This is the engine of Procedure Legal-Coloring.
//   - Algorithm Arb-Kuhn (Section 5): a complete acyclic orientation
//     (Lemma 2.4) followed by iterated Arb-Recolor (Algorithm 3), giving a
//     d-arbdefective O((a/d)^2)-coloring in O(log n) rounds.
package arbdefect

import (
	"fmt"
	"time"

	"repro/internal/dist"
	"repro/internal/forest"
	"repro/internal/graph"
	"repro/internal/orient"
	"repro/internal/recolor"
)

// SimpleResult reports a Simple-Arbdefective run.
type SimpleResult struct {
	Colors []int
	// Bound is the guaranteed arbdefect tau + floor(m/k) derived from the
	// orientation's measured parameters (Theorem 3.2).
	Bound    int
	Rounds   int
	Messages int64
	// Wall and PeakLive are host-side observability figures (wait-color
	// engine wall plus the central measurement sweep); not deterministic.
	Wall     time.Duration
	PeakLive int
}

// Stats returns the run-stat view of the Simple-Arbdefective cost.
func (r *SimpleResult) Stats() dist.RunStats {
	return dist.RunStats{Rounds: r.Rounds, Messages: r.Messages, Wall: r.Wall, PeakLive: r.PeakLive}
}

// Simple runs Procedure Simple-Arbdefective on an acyclic (partial)
// orientation with k colors (Theorem 3.2). labels/active restrict to
// subgraphs; sigma must orient only intra-subgraph edges then.
func Simple(net *dist.Network, sigma *graph.Orientation, k int, labels []int, active []bool) (*SimpleResult, error) {
	if k < 1 {
		return nil, fmt.Errorf("arbdefect: k must be >= 1, got %d", k)
	}
	start := time.Now()
	wc, err := forest.WaitColor(net, sigma, k, forest.RuleLeastUsed, labels, active)
	if err != nil {
		return nil, err
	}
	s := orient.MeasureWithinWorkers(sigma, labels, active, net.SweepWorkers(net.Graph().N()))
	return &SimpleResult{
		Colors:   wc.Colors,
		Bound:    s.Deficit + s.OutDegree/k,
		Rounds:   wc.Rounds,
		Messages: wc.Messages,
		Wall:     time.Since(start),
		PeakLive: wc.PeakLive,
	}, nil
}

// ColoringResult reports a full Arbdefective-Coloring run.
type ColoringResult struct {
	// Colors is a k-coloring; every color class induces a subgraph of
	// arboricity at most Bound.
	Colors []int
	// Bound is the guaranteed arbdefect floor(a/t) + floor(theta(a)/k)
	// (Corollary 3.6; theta = floor((2+eps)a)).
	Bound int
	// Sigma is the partial orientation witnessing the bound (Lemma 2.5
	// after completing each color class's orientation).
	Sigma *graph.Orientation
	Tally *dist.Tally
}

// Coloring runs Procedure Arbdefective-Coloring(G, k, t) with arboricity
// bound a (Corollary 3.6): Partial-Orientation then Simple-Arbdefective.
// Rounds: O(t^2 log n). labels/active restrict to subgraphs of arboricity
// at most a each.
func Coloring(net *dist.Network, a, k, t int, eps forest.Eps, labels []int, active []bool) (*ColoringResult, error) {
	if k < 1 || t < 1 {
		return nil, fmt.Errorf("arbdefect: k=%d, t=%d must be >= 1", k, t)
	}
	po, err := orient.Partial(net, a, t, eps, labels, active)
	if err != nil {
		return nil, err
	}
	var tally dist.Tally
	tally.Merge(po.Tally)
	net.Probe().SetPhase("arbdefect/simple-arbdefective")
	sr, err := Simple(net, po.Sigma, k, labels, active)
	if err != nil {
		return nil, err
	}
	tally.AddStats("simple-arbdefective", sr.Stats())
	return &ColoringResult{
		Colors: sr.Colors,
		Bound:  a/t + eps.Threshold(a)/k,
		Sigma:  po.Sigma,
		Tally:  &tally,
	}, nil
}

// KuhnResult reports an Arb-Kuhn run (Section 5).
type KuhnResult struct {
	// Colors is an O((a/d)^2)-coloring with arbdefect at most Defect.
	Colors []int
	// Defect is the guaranteed arbdefect d.
	Defect int
	// Sigma is the complete acyclic orientation witnessing the bound.
	Sigma *graph.Orientation
	Tally *dist.Tally
}

// Kuhn runs the full Arb-Kuhn pipeline of Section 5 on the whole graph:
// Lemma 2.4's complete acyclic orientation (O(log n) rounds) followed by
// iterated Arb-Recolor (O(log* n) rounds), producing a
// floor(a/t)-arbdefective O(t^2)-coloring.
func Kuhn(net *dist.Network, a, t int, eps forest.Eps) (*KuhnResult, error) {
	if t < 1 {
		return nil, fmt.Errorf("arbdefect: t must be >= 1, got %d", t)
	}
	net.Probe().SetPhase("arbdefect/complete-orientation")
	or, _, err := forest.CompleteAcyclicOrientation(net, a, eps)
	if err != nil {
		return nil, err
	}
	var tally dist.Tally
	tally.AddStats("complete-orientation", or.Stats())
	d := a / t
	net.Probe().SetPhase("arbdefect/arb-recolor")
	res, err := recolor.ArbKuhn(net, or.Sigma, d)
	if err != nil {
		return nil, err
	}
	tally.AddPhase("arb-recolor", res.Rounds, res.Messages, res.Wall, res.PeakLive)
	return &KuhnResult{
		Colors: res.Colors,
		Defect: d,
		Sigma:  or.Sigma,
		Tally:  &tally,
	}, nil
}
