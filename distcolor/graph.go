package distcolor

import (
	"io"
	"math/rand"

	"repro/internal/graph"
)

// Graph is a finite simple undirected graph (see internal/graph for the
// full method set: Neighbors, Degree, MaxDegree, Degeneracy, coloring and
// MIS verifiers, edge-list I/O, ...).
type Graph = graph.Graph

// Orientation is a (partial) edge orientation with the paper's parameters:
// out-degree, deficit and length (Section 2.1).
type Orientation = graph.Orientation

// Builder accumulates edges for a Graph.
type Builder = graph.Builder

// NewBuilder returns a Builder for a graph on n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph on n vertices from an edge list.
func FromEdges(n int, edges [][2]int) (*Graph, error) { return graph.FromEdges(n, edges) }

// ReadEdgeList parses the "n m" + "u v" edge-list format. Parse errors
// carry 1-based line numbers, and a missing or implausible "n m" header
// is reported explicitly.
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// ReadBinary parses the sharded DCG1 binary graph format through a
// chunked streaming reader — the large-instance companion of the text
// edge list (see graphgen -binary).
func ReadBinary(r io.Reader) (*Graph, error) { return graph.ReadBinary(r) }

// OpenBinary loads a DCG1 binary graph file.
func OpenBinary(path string) (*Graph, error) { return graph.OpenBinary(path) }

// Sharding is a contiguous partition of the vertex space into shards,
// the unit of the shard-structured engine and of streaming binary loads.
type Sharding = graph.Sharding

// BinStat is the header summary of a DCG1 binary graph file.
type BinStat = graph.BinStat

// MaxShards is the largest supported shard count.
const MaxShards = graph.MaxShards

// NewSharding partitions n vertices into k near-equal contiguous shards.
func NewSharding(n, k int) (Sharding, error) { return graph.NewSharding(n, k) }

// AutoSharding picks a shard count for n vertices targeting ~256k
// vertices per shard, clamped to [1, MaxShards].
func AutoSharding(n int) Sharding { return graph.AutoSharding(n) }

// OpenBinaryShards loads a DCG1 binary graph file through the streaming
// per-shard reader: peak memory during the load is bounded by one
// shard's adjacency plus a degree pass, instead of the whole edge list.
// shards <= 0 selects AutoSharding.
func OpenBinaryShards(path string, shards int) (*Graph, Sharding, error) {
	return graph.OpenBinaryShards(path, shards)
}

// StatBinary reads just the DCG1 header: vertex/edge counts and the
// file's shard framing, without loading the graph.
func StatBinary(r io.Reader) (BinStat, error) { return graph.StatBinary(r) }

// StatBinaryFile reads the DCG1 header of a file.
func StatBinaryFile(path string) (BinStat, error) { return graph.StatBinaryFile(path) }

// Load reads a graph in either supported format, sniffing the DCG1 magic.
func Load(r io.Reader) (*Graph, error) { return graph.Load(r) }

// LoadFile reads a graph file in either supported format.
func LoadFile(path string) (*Graph, error) { return graph.LoadFile(path) }

// LogStar returns log* n.
func LogStar(n int) int { return graph.LogStar(n) }

// NumColors returns the number of distinct colors in a coloring.
func NumColors(colors []int) int { return graph.NumColors(colors) }

// MaxColor returns the largest color value used.
func MaxColor(colors []int) int { return graph.MaxColor(colors) }

// Deterministic graph generators for the paper's workload families.
// All take an explicit seed for reproducibility.

// GenPath returns the path on n vertices.
func GenPath(n int) *Graph { return graph.Path(n) }

// GenCycle returns the cycle on n >= 3 vertices.
func GenCycle(n int) (*Graph, error) { return graph.Cycle(n) }

// GenStar returns the star K_{1,n-1}.
func GenStar(n int) *Graph { return graph.Star(n) }

// GenComplete returns K_n.
func GenComplete(n int) *Graph { return graph.Complete(n) }

// GenGrid returns the rows x cols grid (arboricity <= 2).
func GenGrid(rows, cols int) *Graph { return graph.Grid(rows, cols) }

// GenTree returns a random recursive tree.
func GenTree(n int, seed int64) *Graph {
	return graph.RandomTree(n, rand.New(rand.NewSource(seed)))
}

// GenGnp returns an Erdos-Renyi G(n, p) graph.
func GenGnp(n int, p float64, seed int64) *Graph {
	return graph.Gnp(n, p, rand.New(rand.NewSource(seed)))
}

// GenForestUnion returns a union of k random forests: arboricity <= k by
// construction. The canonical bounded-arboricity workload.
func GenForestUnion(n, k int, seed int64) *Graph {
	return graph.ForestUnion(n, k, rand.New(rand.NewSource(seed)))
}

// GenStarForest returns a small-arboricity graph with huge maximum degree
// (the a << Delta regime of Corollary 4.7): arb forests plus `hubs` star
// centers of degree hubDegree.
func GenStarForest(n, arb, hubs, hubDegree int, seed int64) *Graph {
	return graph.StarForest(n, arb, hubs, hubDegree, rand.New(rand.NewSource(seed)))
}

// GenPowerLaw returns a preferential-attachment graph with degeneracy <= k
// and a heavy degree tail (social-network workload).
func GenPowerLaw(n, k int, seed int64) *Graph {
	return graph.PowerLawish(n, k, rand.New(rand.NewSource(seed)))
}

// GenRegular returns a near-d-regular graph.
func GenRegular(n, d int, seed int64) *Graph {
	return graph.RandomRegularish(n, d, rand.New(rand.NewSource(seed)))
}

// GenUnitDisk returns a random geometric graph on a side x side square
// with the given connection radius (wireless-network workload).
func GenUnitDisk(n int, side, radius float64, seed int64) *Graph {
	return graph.UnitDiskish(n, side, radius, rand.New(rand.NewSource(seed)))
}
