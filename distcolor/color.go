package distcolor

import (
	"fmt"
	"math/rand"

	"repro/internal/arbdefect"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/deltacolor"
	"repro/internal/dist"
	"repro/internal/forest"
	"repro/internal/graph"
	"repro/internal/orient"
	"repro/internal/recolor"
)

// Options control the simulated LOCAL execution.
type Options struct {
	// Seed drives identifier permutation (and nothing else for the
	// deterministic algorithms).
	Seed int64
	// PermuteIDs assigns identifiers by a random permutation instead of
	// the canonical id(v) = v+1, stressing ID-dependent symmetry breaking.
	PermuteIDs bool
	// EpsNum/EpsDen set the H-partition slack eps = EpsNum/EpsDen
	// (default 1/4).
	EpsNum, EpsDen int
	// FaithfulLemma33, when set, uses the (Delta+1) level coloring inside
	// the final Complete-Orientation (exact Lemma 3.3 length bound) at a
	// higher round cost; otherwise the Linial level coloring is used,
	// which preserves all theorem-level round bounds (DESIGN.md).
	FaithfulLemma33 bool
	// Shards runs the shard-structured engine with this many vertex
	// shards (clamped to [1, MaxShards]); 0 or 1 keeps the flat engine.
	// The knob never changes colors, rounds or message counts - sharding
	// only relocates message words into shard-local columns.
	Shards int
}

func (o Options) network(g *Graph) *dist.Network {
	net := dist.NewNetwork(g)
	if o.PermuteIDs {
		net = dist.NewNetworkPermuted(g, rand.New(rand.NewSource(o.Seed)))
	}
	if k := min(o.Shards, MaxShards); k > 1 {
		sh, err := graph.NewSharding(g.N(), k)
		if err != nil {
			// Unreachable: k is clamped to [2, MaxShards] and g.N() >= 0.
			panic(fmt.Sprintf("distcolor: sharding: %v", err))
		}
		net, err = net.Sharded(sh)
		if err != nil {
			// Unreachable: the sharding was built for this graph's n.
			panic(fmt.Sprintf("distcolor: sharding: %v", err))
		}
	}
	return net
}

func (o Options) eps() forest.Eps {
	if o.EpsNum > 0 && o.EpsDen > 0 {
		return forest.Eps{Num: o.EpsNum, Den: o.EpsDen}
	}
	return forest.DefaultEps
}

func (o Options) levelColoring() orient.LevelColoring {
	if o.FaithfulLemma33 {
		return orient.LevelDeltaPlusOne
	}
	return orient.LevelLinial
}

// Result reports a coloring computation.
type Result struct {
	// Colors assigns each vertex a color; the coloring is legal.
	Colors []int
	// NumColors is the number of distinct colors used.
	NumColors int
	// Palette bounds color values (colors lie in [0, Palette)).
	Palette int
	// Rounds is the total simulated LOCAL rounds (the paper's measure).
	Rounds int
	// Messages is the total number of messages delivered.
	Messages int64
	// Phases itemizes rounds per pipeline phase.
	Phases []dist.PhaseStat
}

func newResult(colors []int, palette int, tally *dist.Tally) *Result {
	return &Result{
		Colors:    colors,
		NumColors: NumColors(colors),
		Palette:   palette,
		Rounds:    tally.Rounds(),
		Messages:  tally.Messages(),
		Phases:    tally.Phases(),
	}
}

// ColorOA computes an O(a)-coloring of a graph with arboricity at most a
// in O(a^mu log n) rounds (Theorem 4.3). mu in (0, 1]; smaller mu means
// fewer rounds... larger p. Typical choice: mu = 2/3.
func ColorOA(g *Graph, a int, mu float64, opts Options) (*Result, error) {
	if err := guard(g); err != nil {
		return nil, err
	}
	net := opts.network(g)
	res, err := core.LegalColoring(net, core.Config{
		Arboricity:    a,
		P:             core.PForTheorem43(a, mu),
		Eps:           opts.eps(),
		LevelColoring: opts.levelColoring(),
	})
	if err != nil {
		return nil, err
	}
	return newResult(res.Colors, res.Palette, res.Tally), nil
}

// ColorTradeoff runs Procedure Legal-Coloring with an explicit refinement
// parameter p >= 4, exposing the full color/time tradeoff curve of
// Theorem 4.5 (small p: a^(1+o(1)) colors, more iterations) and
// Corollary 4.6 (p = 2^O(1/eta): O(a^(1+eta)) colors in O(log a log n)
// rounds).
func ColorTradeoff(g *Graph, a, p int, opts Options) (*Result, error) {
	if err := guard(g); err != nil {
		return nil, err
	}
	net := opts.network(g)
	res, err := core.LegalColoring(net, core.Config{
		Arboricity:    a,
		P:             p,
		Eps:           opts.eps(),
		LevelColoring: opts.levelColoring(),
	})
	if err != nil {
		return nil, err
	}
	return newResult(res.Colors, res.Palette, res.Tally), nil
}

// OneShot implements Lemma 4.1: O(a) colors in O(a^(2/3) log n) rounds via
// a single arbdefective refinement.
func OneShot(g *Graph, a int, opts Options) (*Result, error) {
	if err := guard(g); err != nil {
		return nil, err
	}
	net := opts.network(g)
	res, err := core.OneShot(net, a, opts.eps())
	if err != nil {
		return nil, err
	}
	return newResult(res.Colors, res.Palette, res.Tally), nil
}

// ColorFast implements Theorem 5.2: an O(a^2/gBudget)-coloring in
// O(log gBudget log n) rounds, trading colors for speed.
func ColorFast(g *Graph, a, gBudget int, opts Options) (*Result, error) {
	if err := guard(g); err != nil {
		return nil, err
	}
	net := opts.network(g)
	res, err := core.FastColoring(net, a, gBudget, opts.eps())
	if err != nil {
		return nil, err
	}
	return newResult(res.Colors, res.Palette, res.Tally), nil
}

// ColorAT implements Theorem 5.3: an O(a*t)-coloring in
// O((a/t)^mu log n) rounds.
func ColorAT(g *Graph, a, t int, mu float64, opts Options) (*Result, error) {
	if err := guard(g); err != nil {
		return nil, err
	}
	net := opts.network(g)
	res, err := core.ColorAT(net, a, t, mu, opts.eps())
	if err != nil {
		return nil, err
	}
	return newResult(res.Colors, res.Palette, res.Tally), nil
}

// MISResult reports a maximal-independent-set computation.
type MISResult struct {
	InMIS  []bool
	Size   int
	Rounds int
	Phases []dist.PhaseStat
}

// MIS computes a maximal independent set on a graph of arboricity at most
// a in O(a + a^mu log n) rounds (Section 1.2): Legal-Coloring followed by
// a class-by-class sweep.
func MIS(g *Graph, a int, mu float64, opts Options) (*MISResult, error) {
	if err := guard(g); err != nil {
		return nil, err
	}
	net := opts.network(g)
	// The MIS sweep costs one round per palette value, so apply the
	// paper's small-a rule (Theorem 4.3 proof: wlog p >= 16, otherwise
	// color directly via Lemma 2.2): clamping p keeps the palette near
	// theta(a)+1 instead of paying the (3+eps)^iterations value blow-up.
	p := core.PForTheorem43(a, mu)
	if p < 16 {
		p = 16
	}
	mres, tally, err := core.MIS(net, core.Config{
		Arboricity:    a,
		P:             p,
		Eps:           opts.eps(),
		LevelColoring: opts.levelColoring(),
	})
	if err != nil {
		return nil, err
	}
	size := 0
	for _, in := range mres.InMIS {
		if in {
			size++
		}
	}
	return &MISResult{InMIS: mres.InMIS, Size: size, Rounds: tally.Rounds(), Phases: tally.Phases()}, nil
}

// ArbDefectiveResult reports an arbdefective coloring (Definition 2.1).
type ArbDefectiveResult struct {
	Colors []int
	// Bound is the guaranteed arbdefect: every color class induces a
	// subgraph of arboricity at most Bound.
	Bound  int
	Rounds int
}

// ArbDefective computes a floor(a/t + (2+eps)a/k)-arbdefective k-coloring
// in O(t^2 log n) rounds (Corollary 3.6) - the paper's new decomposition
// primitive.
func ArbDefective(g *Graph, a, k, t int, opts Options) (*ArbDefectiveResult, error) {
	if err := guard(g); err != nil {
		return nil, err
	}
	net := opts.network(g)
	res, err := arbdefect.Coloring(net, a, k, t, opts.eps(), nil, nil)
	if err != nil {
		return nil, err
	}
	return &ArbDefectiveResult{Colors: res.Colors, Bound: res.Bound, Rounds: res.Tally.Rounds()}, nil
}

// OrientResult reports a (partial) orientation computation.
type OrientResult struct {
	Sigma     *Orientation
	OutDegree int
	Deficit   int
	Length    int
	Rounds    int
}

// PartialOrient computes Theorem 3.5's acyclic partial orientation:
// out-degree floor((2+eps)a), deficit <= floor(a/t), length O(t^2 log n),
// in O(log n) rounds.
func PartialOrient(g *Graph, a, t int, opts Options) (*OrientResult, error) {
	if err := guard(g); err != nil {
		return nil, err
	}
	net := opts.network(g)
	res, err := orient.Partial(net, a, t, opts.eps(), nil, nil)
	if err != nil {
		return nil, err
	}
	s := orient.MeasureWithin(res.Sigma, nil, nil)
	return &OrientResult{
		Sigma:     res.Sigma,
		OutDegree: s.OutDegree,
		Deficit:   s.Deficit,
		Length:    s.Length,
		Rounds:    res.Tally.Rounds(),
	}, nil
}

// CompleteOrient computes Lemma 3.3's complete acyclic orientation with
// out-degree floor((2+eps)a).
func CompleteOrient(g *Graph, a int, opts Options) (*OrientResult, error) {
	if err := guard(g); err != nil {
		return nil, err
	}
	net := opts.network(g)
	res, err := orient.Complete(net, a, opts.eps(), opts.levelColoring(), nil, nil)
	if err != nil {
		return nil, err
	}
	s := orient.MeasureWithin(res.Sigma, nil, nil)
	return &OrientResult{
		Sigma:     res.Sigma,
		OutDegree: s.OutDegree,
		Deficit:   s.Deficit,
		Length:    s.Length,
		Rounds:    res.Tally.Rounds(),
	}, nil
}

// HPartitionResult reports the Lemma 2.3 decomposition.
type HPartitionResult struct {
	Level     []int
	NumLevels int
	Degree    int
	Rounds    int
}

// HPartition computes the H-partition of Lemma 2.3 in O(log n) rounds.
func HPartition(g *Graph, a int, opts Options) (*HPartitionResult, error) {
	if err := guard(g); err != nil {
		return nil, err
	}
	net := opts.network(g)
	hp, err := forest.ComputeHPartition(net, a, opts.eps(), nil, nil)
	if err != nil {
		return nil, err
	}
	return &HPartitionResult{Level: hp.Level, NumLevels: hp.NumLevels, Degree: hp.Degree, Rounds: hp.Rounds}, nil
}

// ForestsResult reports the Lemma 2.2(2) decomposition.
type ForestsResult struct {
	// ForestOf maps each edge (min,max endpoints) to its forest index.
	ForestOf   map[[2]int]int
	NumForests int
	Rounds     int
}

// Forests computes an O(a)-forests decomposition in O(log n) rounds
// (Lemma 2.2(2)).
func Forests(g *Graph, a int, opts Options) (*ForestsResult, error) {
	if err := guard(g); err != nil {
		return nil, err
	}
	net := opts.network(g)
	fd, err := forest.Decompose(net, a, opts.eps())
	if err != nil {
		return nil, err
	}
	return &ForestsResult{ForestOf: fd.ForestOf, NumForests: fd.NumForests, Rounds: fd.Rounds}, nil
}

// EstimateArboricity returns an arboricity bound found by doubling search
// (at most ~2x the degeneracy), for callers without a priori knowledge.
func EstimateArboricity(g *Graph, opts Options) (int, error) {
	if err := guard(g); err != nil {
		return 0, err
	}
	net := opts.network(g)
	a, _, _, err := forest.EstimateArboricity(net, opts.eps())
	return a, err
}

// Baselines from the paper's related-work section.

// Linial computes the classical O(Delta^2)-coloring in O(log* n) rounds
// (Linial FOCS'87) - the bound the paper's main theorem beats.
func Linial(g *Graph, opts Options) (*Result, error) {
	if err := guard(g); err != nil {
		return nil, err
	}
	net := opts.network(g)
	res, err := recolor.Linial(net)
	if err != nil {
		return nil, err
	}
	var tally dist.Tally
	tally.AddRounds("linial", res.Rounds, res.Messages)
	return newResult(res.Colors, res.Schedule.FinalColors(), &tally), nil
}

// Defective computes a floor(Delta/p)-defective O(p^2)-coloring in
// O(log* n) rounds (Lemma 2.1 / Kuhn SPAA'09).
func Defective(g *Graph, p int, opts Options) (*Result, error) {
	if err := guard(g); err != nil {
		return nil, err
	}
	net := opts.network(g)
	res, err := recolor.Defective(net, p)
	if err != nil {
		return nil, err
	}
	var tally dist.Tally
	tally.AddRounds("defective", res.Rounds, res.Messages)
	return newResult(res.Colors, res.Schedule.FinalColors(), &tally), nil
}

// DeltaPlusOne computes a (Delta+1)-coloring in rounds linear in Delta
// (Barenboim-Elkin STOC'09 / Kuhn SPAA'09 [5, 17]).
func DeltaPlusOne(g *Graph, opts Options) (*Result, error) {
	if err := guard(g); err != nil {
		return nil, err
	}
	net := opts.network(g)
	res, err := deltacolor.ColorDeltaPlusOne(net)
	if err != nil {
		return nil, err
	}
	return newResult(res.Colors, res.Palette, res.Tally), nil
}

// BE08 computes the previous state-of-the-art O(a)-coloring in O(a log n)
// rounds (Barenboim-Elkin PODC'08, Lemma 2.2(1)).
func BE08(g *Graph, a int, opts Options) (*Result, error) {
	if err := guard(g); err != nil {
		return nil, err
	}
	net := opts.network(g)
	res, err := baseline.BE08Coloring(net, a, opts.eps())
	if err != nil {
		return nil, err
	}
	return newResult(res.Colors, res.Palette, res.Tally), nil
}

// LubyMIS computes a maximal independent set with Luby's randomized
// algorithm in O(log n) rounds w.h.p. (Luby'86 / Alon-Babai-Itai'86).
func LubyMIS(g *Graph, opts Options) (*MISResult, error) {
	if err := guard(g); err != nil {
		return nil, err
	}
	net := opts.network(g)
	res, err := baseline.LubyMIS(net, opts.Seed)
	if err != nil {
		return nil, err
	}
	size := 0
	for _, in := range res.InMIS {
		if in {
			size++
		}
	}
	return &MISResult{InMIS: res.InMIS, Size: size, Rounds: res.Rounds}, nil
}

// RandomizedColoring computes a (Delta+1)-coloring by random trials in
// O(log n) rounds w.h.p. (Johansson-style).
func RandomizedColoring(g *Graph, opts Options) (*Result, error) {
	if err := guard(g); err != nil {
		return nil, err
	}
	net := opts.network(g)
	res, err := baseline.RandomizedColoring(net, opts.Seed)
	if err != nil {
		return nil, err
	}
	var tally dist.Tally
	tally.AddRounds("randcolor", res.Rounds, 0)
	return newResult(res.Colors, g.MaxDegree()+1, &tally), nil
}

// ColeVishkinForest 3-colors a rooted forest in O(log* n) rounds
// (Cole-Vishkin'86). parentOf[v] is v's parent or -1 for roots.
func ColeVishkinForest(g *Graph, parentOf []int, opts Options) (*Result, error) {
	if err := guard(g); err != nil {
		return nil, err
	}
	net := opts.network(g)
	res, err := baseline.ColeVishkinForest(net, parentOf)
	if err != nil {
		return nil, err
	}
	var tally dist.Tally
	tally.AddRounds("cole-vishkin", res.Rounds, 0)
	return newResult(res.Colors, 3, &tally), nil
}

// VerifyLegal checks that colors is a legal coloring of g.
func VerifyLegal(g *Graph, colors []int) error { return g.CheckLegalColoring(colors) }

// VerifyMIS checks that inMIS is a maximal independent set of g.
func VerifyMIS(g *Graph, inMIS []bool) error { return g.CheckMIS(inMIS) }

// VerifyArbDefective checks an r-arbdefective coloring via per-class
// degeneracy (a sufficient certificate: arboricity <= degeneracy).
func VerifyArbDefective(g *Graph, colors []int, r int) error {
	return g.CheckArbdefectiveColoring(colors, r)
}

var errNil = fmt.Errorf("distcolor: nil graph")

// guard is shared validation for exported entry points.
func guard(g *Graph) error {
	if g == nil {
		return errNil
	}
	return nil
}
