package distcolor

import (
	"strings"
	"testing"
)

const seed = 12345

func workload(t *testing.T) *Graph {
	t.Helper()
	return GenForestUnion(300, 4, seed)
}

func TestColorOAFacade(t *testing.T) {
	g := workload(t)
	res, err := ColorOA(g, 4, 2.0/3.0, Options{Seed: seed, PermuteIDs: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyLegal(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.NumColors < 2 || res.Rounds < 1 || len(res.Phases) == 0 {
		t.Errorf("suspicious result: %d colors, %d rounds, %d phases",
			res.NumColors, res.Rounds, len(res.Phases))
	}
	if res.Messages <= 0 {
		t.Error("no messages counted")
	}
}

func TestTradeoffFacade(t *testing.T) {
	g := workload(t)
	for _, p := range []int{4, 8} {
		res, err := ColorTradeoff(g, 4, p, Options{Seed: seed})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if err := VerifyLegal(g, res.Colors); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
	if _, err := ColorTradeoff(g, 4, 3, Options{}); err == nil {
		t.Error("p=3 accepted")
	}
}

func TestOneShotColorFastColorATFacades(t *testing.T) {
	g := workload(t)
	if res, err := OneShot(g, 4, Options{}); err != nil {
		t.Fatal(err)
	} else if err := VerifyLegal(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if res, err := ColorFast(g, 4, 2, Options{}); err != nil {
		t.Fatal(err)
	} else if err := VerifyLegal(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if res, err := ColorAT(g, 4, 2, 0.5, Options{}); err != nil {
		t.Fatal(err)
	} else if err := VerifyLegal(g, res.Colors); err != nil {
		t.Fatal(err)
	}
}

func TestMISFacades(t *testing.T) {
	g := workload(t)
	res, err := MIS(g, 4, 0.5, Options{Seed: seed, PermuteIDs: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyMIS(g, res.InMIS); err != nil {
		t.Fatal(err)
	}
	if res.Size < 1 {
		t.Error("empty MIS")
	}
	luby, err := LubyMIS(g, Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyMIS(g, luby.InMIS); err != nil {
		t.Fatal(err)
	}
}

func TestDecompositionFacades(t *testing.T) {
	g := workload(t)
	hp, err := HPartition(g, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hp.NumLevels < 1 || hp.Degree != 9 {
		t.Errorf("hpartition: levels=%d degree=%d", hp.NumLevels, hp.Degree)
	}
	fo, err := Forests(g, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fo.ForestOf) != g.M() {
		t.Errorf("forests cover %d of %d edges", len(fo.ForestOf), g.M())
	}
	po, err := PartialOrient(g, 4, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if po.Deficit > 2 || po.OutDegree > 9 {
		t.Errorf("partial orientation deficit=%d outdeg=%d", po.Deficit, po.OutDegree)
	}
	co, err := CompleteOrient(g, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if co.Deficit != 0 {
		t.Errorf("complete orientation deficit=%d", co.Deficit)
	}
	ad, err := ArbDefective(g, 4, 2, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyArbDefective(g, ad.Colors, 2*ad.Bound); err != nil {
		t.Fatal(err)
	}
	a, err := EstimateArboricity(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a < 1 || a > 8 {
		t.Errorf("estimated arboricity %d for true <= 4", a)
	}
}

func TestBaselineFacades(t *testing.T) {
	g := workload(t)
	if res, err := Linial(g, Options{}); err != nil {
		t.Fatal(err)
	} else if err := VerifyLegal(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if res, err := Defective(g, 2, Options{}); err != nil {
		t.Fatal(err)
	} else if g.Defect(res.Colors) > g.MaxDegree()/2 {
		t.Error("defective bound violated")
	}
	if res, err := DeltaPlusOne(g, Options{}); err != nil {
		t.Fatal(err)
	} else if MaxColor(res.Colors) > g.MaxDegree() {
		t.Error("Delta+1 bound violated")
	}
	if res, err := BE08(g, 4, Options{}); err != nil {
		t.Fatal(err)
	} else if err := VerifyLegal(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if res, err := RandomizedColoring(g, Options{Seed: 9}); err != nil {
		t.Fatal(err)
	} else if err := VerifyLegal(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	tree := GenTree(200, seed)
	parentOf := make([]int, 200)
	parentOf[0] = -1
	// GenTree attaches v to a smaller index; recover parents from edges.
	for v := 1; v < 200; v++ {
		parentOf[v] = -1
		for _, u := range tree.Neighbors(v) {
			if u < v {
				parentOf[v] = u
				break
			}
		}
	}
	if res, err := ColeVishkinForest(tree, parentOf, Options{}); err != nil {
		t.Fatal(err)
	} else if err := VerifyLegal(tree, res.Colors); err != nil {
		t.Fatal(err)
	} else if res.NumColors > 3 {
		t.Error("Cole-Vishkin used more than 3 colors")
	}
}

func TestNilGraphRejected(t *testing.T) {
	if _, err := ColorOA(nil, 1, 0.5, Options{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := MIS(nil, 1, 0.5, Options{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := EstimateArboricity(nil, Options{}); err == nil {
		t.Error("nil graph accepted")
	}
}

func TestGeneratorsAndIO(t *testing.T) {
	g := GenGnp(60, 0.1, seed)
	var sb strings.Builder
	if err := g.WriteEdgeList(&sb); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Error("edge list round trip failed")
	}
	if GenStarForest(500, 2, 2, 100, seed).MaxDegree() < 80 {
		t.Error("star forest lacks hubs")
	}
	if GenPowerLaw(200, 3, seed).N() != 200 {
		t.Error("power law wrong size")
	}
	if GenRegular(100, 4, seed).MaxDegree() > 4 {
		t.Error("regular degree exceeded")
	}
	if GenUnitDisk(50, 10, 2, seed).N() != 50 {
		t.Error("unit disk wrong size")
	}
	if GenGrid(3, 4).N() != 12 || GenStar(5).M() != 4 || GenComplete(4).M() != 6 || GenPath(5).M() != 4 {
		t.Error("basic generators wrong")
	}
	if _, err := GenCycle(2); err == nil {
		t.Error("GenCycle(2) accepted")
	}
	if LogStar(65536) != 3 {
		t.Error("LogStar wrong")
	}
}
