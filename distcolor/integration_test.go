package distcolor

import (
	"fmt"
	"testing"
)

// Integration soak: every major entry point on every workload family, with
// verification after each run. This is the cross-module test matrix of
// DESIGN.md Section 6.

type family struct {
	name string
	gen  func(seed int64) *Graph
	arb  int // usable arboricity parameter
}

func families() []family {
	return []family{
		{"forest-union", func(s int64) *Graph { return GenForestUnion(400, 3, s) }, 3},
		{"tree", func(s int64) *Graph { return GenTree(400, s) }, 1},
		{"grid", func(s int64) *Graph { return GenGrid(20, 20) }, 2},
		{"powerlaw", func(s int64) *Graph { return GenPowerLaw(400, 3, s) }, 3},
		{"star-forest", func(s int64) *Graph { return GenStarForest(400, 2, 3, 80, s) }, 4},
		{"gnp-sparse", func(s int64) *Graph { return GenGnp(400, 0.008, s) }, 4},
		{"unit-disk", func(s int64) *Graph { return GenUnitDisk(300, 20, 1.6, s) }, 5},
		{"path", func(s int64) *Graph { return GenPath(400) }, 1},
	}
}

func TestIntegrationColoringAcrossFamilies(t *testing.T) {
	for _, f := range families() {
		for seed := int64(1); seed <= 2; seed++ {
			name := fmt.Sprintf("%s/seed=%d", f.name, seed)
			t.Run(name, func(t *testing.T) {
				g := f.gen(seed)
				// Guard: arboricity parameter must be workable (>= the
				// peeling requirement); bump until the H-partition accepts.
				a := f.arb
				for {
					if _, err := HPartition(g, a, Options{Seed: seed}); err == nil {
						break
					}
					a++
					if a > g.N() {
						t.Fatal("no workable arboricity bound")
					}
				}
				opts := Options{Seed: seed, PermuteIDs: true}

				res, err := ColorOA(g, a, 2.0/3.0, opts)
				if err != nil {
					t.Fatalf("ColorOA: %v", err)
				}
				if err := VerifyLegal(g, res.Colors); err != nil {
					t.Fatalf("ColorOA verify: %v", err)
				}
				one, err := OneShot(g, a, opts)
				if err != nil {
					t.Fatalf("OneShot: %v", err)
				}
				if err := VerifyLegal(g, one.Colors); err != nil {
					t.Fatalf("OneShot verify: %v", err)
				}
				mis, err := MIS(g, a, 0.5, opts)
				if err != nil {
					t.Fatalf("MIS: %v", err)
				}
				if err := VerifyMIS(g, mis.InMIS); err != nil {
					t.Fatalf("MIS verify: %v", err)
				}
				ad, err := ArbDefective(g, a, 2, 2, opts)
				if err != nil {
					t.Fatalf("ArbDefective: %v", err)
				}
				if err := VerifyArbDefective(g, ad.Colors, 2*ad.Bound); err != nil {
					t.Fatalf("ArbDefective verify: %v", err)
				}
				po, err := PartialOrient(g, a, 2, opts)
				if err != nil {
					t.Fatalf("PartialOrient: %v", err)
				}
				if po.Deficit > a/2 {
					t.Fatalf("PartialOrient deficit %d > %d", po.Deficit, a/2)
				}
			})
		}
	}
}

func TestIntegrationRoundsScaleWithLogN(t *testing.T) {
	// Theorem 4.3's n-dependence: rounds grow ~log n at fixed a. Compare
	// n and 4n; allow slack for constant phases.
	const a = 4
	rounds := map[int]int{}
	for _, n := range []int{300, 1200} {
		g := GenForestUnion(n, a, 77)
		res, err := ColorOA(g, a, 2.0/3.0, Options{Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyLegal(g, res.Colors); err != nil {
			t.Fatal(err)
		}
		rounds[n] = res.Rounds
	}
	// log(1200)/log(300) ~ 1.24; anything below 2.5x passes comfortably,
	// while a linear-in-n dependence (4x) fails.
	if rounds[1200] > rounds[300]*5/2 {
		t.Errorf("rounds scaled superlogarithmically: %v", rounds)
	}
}

func TestIntegrationColorsIndependentOfN(t *testing.T) {
	const a = 6
	var prev int
	for _, n := range []int{300, 600, 1200} {
		g := GenForestUnion(n, a, 99)
		res, err := ColorOA(g, a, 2.0/3.0, Options{Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		if prev > 0 && res.NumColors > prev*2 {
			t.Errorf("n=%d: colors %d doubled from %d (should be O(a), n-independent)",
				n, res.NumColors, prev)
		}
		prev = res.NumColors
	}
}

func TestIntegrationDisconnectedGraph(t *testing.T) {
	// Multiple components, including isolated vertices.
	b := NewBuilder(30)
	for v := 0; v < 10; v++ {
		_ = b.AddEdge(v, (v+1)%10) // a 10-cycle
	}
	for v := 10; v < 19; v++ {
		_ = b.AddEdge(v, v+1) // a path
	}
	g := b.Build() // vertices 20..29 isolated
	res, err := ColorOA(g, 2, 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyLegal(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	mis, err := MIS(g, 2, 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyMIS(g, mis.InMIS); err != nil {
		t.Fatal(err)
	}
	for v := 20; v < 30; v++ {
		if !mis.InMIS[v] {
			t.Errorf("isolated vertex %d not in MIS", v)
		}
	}
}

func TestIntegrationCompleteGraphExtreme(t *testing.T) {
	// K_n has arboricity ceil(n/2); the pipeline must still work when
	// a ~ n (no sparsity to exploit).
	g := GenComplete(20)
	a := 10
	res, err := ColorTradeoff(g, a, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyLegal(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.NumColors < 20 {
		t.Errorf("K_20 colored with %d < 20 colors (impossible)", res.NumColors)
	}
}
