// Package distcolor is the public API of the reproduction of
// Barenboim & Elkin, "Deterministic Distributed Vertex Coloring in
// Polylogarithmic Time" (PODC 2010).
//
// It colors graphs of bounded arboricity a with O(a) .. O(a^(1+eta)) colors
// in polylogarithmic simulated LOCAL-model time, answering Linial's open
// question of breaking the Delta^2 color barrier deterministically. All
// algorithms run on a synchronous message-passing simulator; reported
// "rounds" are LOCAL communication rounds, the paper's complexity measure.
//
// Entry points:
//
//   - ColorOA:       Theorem 4.3  - O(a) colors, O(a^mu log n) rounds.
//   - ColorTradeoff: Theorem 4.5 / Corollary 4.6 - explicit parameter p.
//   - ColorFast:     Theorem 5.2  - O(a^2/g) colors, O(log g log n) rounds.
//   - ColorAT:       Theorem 5.3  - O(a*t) colors, O((a/t)^mu log n) rounds.
//   - OneShot:       Lemma 4.1    - O(a) colors, O(a^(2/3) log n) rounds.
//   - MIS:           Section 1.2  - maximal independent set in
//     O(a + a^mu log n) rounds.
//   - ArbDefective:  Corollary 3.6 - the paper's new arbdefective coloring.
//   - PartialOrient: Theorem 3.5  - partial acyclic orientations.
//   - HPartition, Forests: the PODC'08 decompositions (Lemmas 2.2-2.4).
//   - Linial, Defective, DeltaPlusOne, BE08, LubyMIS, RandomizedColoring,
//     ColeVishkinForest: baselines from the paper's related work.
//
// Graphs are built with NewBuilder/FromEdges or the generators in this
// package; every algorithm takes a *Graph plus an Options struct
// controlling identifier assignment and decomposition slack.
package distcolor
