// Graphgen writes benchmark graphs in the text edge-list format consumed
// by colorcli, or (with -binary) in the sharded DCG1 binary format that
// the streaming loader and `colorbench -scale -graph` consume — the
// right choice for million-vertex instances. -shards picks the binary
// shard framing by target shard count (frames sized to ceil(m/N)), so a
// file written for an N-shard run streams in N pieces.
//
// Usage:
//
//	graphgen -family forest|gnp|star-forest|powerlaw|regular|unitdisk|tree|grid
//	         [-n vertices] [-k param] [-p prob] [-seed s]
//	         [-binary [-shards N]] [-o file]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/distcolor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	family := flag.String("family", "forest", "graph family")
	n := flag.Int("n", 1000, "vertex count")
	k := flag.Int("k", 4, "family parameter (forests, attachment degree, hub degree, ...)")
	p := flag.Float64("p", 0.01, "edge probability (gnp) or radius (unitdisk)")
	seed := flag.Int64("seed", 1, "RNG seed")
	binOut := flag.Bool("binary", false, "write the DCG1 binary format instead of the text edge list")
	shards := flag.Int("shards", 0, "with -binary: frame the file for this many streaming shards (0 keeps the default framing)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	if *shards < 0 || (*shards > 0 && !*binOut) {
		return fmt.Errorf("-shards requires -binary and a positive count")
	}

	var g *distcolor.Graph
	var err error
	switch *family {
	case "forest":
		g = distcolor.GenForestUnion(*n, *k, *seed)
	case "gnp":
		g = distcolor.GenGnp(*n, *p, *seed)
	case "star-forest":
		g = distcolor.GenStarForest(*n, 2, 4, *k, *seed)
	case "powerlaw":
		g = distcolor.GenPowerLaw(*n, *k, *seed)
	case "regular":
		g = distcolor.GenRegular(*n, *k, *seed)
	case "unitdisk":
		g = distcolor.GenUnitDisk(*n, 30, *p, *seed)
	case "tree":
		g = distcolor.GenTree(*n, *seed)
	case "grid":
		g = distcolor.GenGrid(*k, *n / *k)
	default:
		return fmt.Errorf("unknown family %q", *family)
	}
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch {
	case *binOut && *shards > 0:
		// Frame size = ceil(m/N), so the file splits into (about) the
		// requested number of streaming shards; the format caps frames at
		// 2^24 edges.
		size := (g.M() + *shards - 1) / *shards
		if size < 1 {
			size = 1
		}
		if size > 1<<24 {
			size = 1 << 24
		}
		err = g.WriteBinarySharded(w, size)
	case *binOut:
		err = g.WriteBinary(w)
	default:
		err = g.WriteEdgeList(w)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s: n=%d m=%d Delta=%d degeneracy=%d\n",
		*family, g.N(), g.M(), g.MaxDegree(), g.ArboricityUpperBound())
	return nil
}
