// Colortrace summarizes a round-level JSONL trace recorded by
// `colorbench -scale -trace out.jsonl`: a per-phase table (engine runs,
// rounds, messages per round, wall and setup time, live-set decay,
// step-sweep imbalance, session cache hits), a per-shard table when the
// trace carries sharded-run telemetry (peak live, messages and step-wall
// share per shard - the imbalance view of a sharded engine), and the
// field-evaluation hit-rate table when the trace carries an "evals"
// snapshot.
//
// Usage:
//
//	colortrace trace.jsonl
//	colortrace -runs trace.jsonl   # also dump every run record
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	dumpRuns := flag.Bool("runs", false, "also list every run record")
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: colortrace [-runs] trace.jsonl")
	}
	tr, err := obs.ReadTraceFile(flag.Arg(0))
	if err != nil {
		return err
	}

	var msgs int64
	for _, r := range tr.Rounds {
		msgs += r.Messages
	}
	fmt.Printf("trace: %d runs, %d round records, %d messages in traced rounds\n\n",
		len(tr.Runs), len(tr.Rounds), msgs)

	phases := obs.Summarize(tr)
	if err := obs.Table(os.Stdout, phases); err != nil {
		return err
	}

	if shards := obs.SummarizeShards(tr); len(shards) > 0 {
		fmt.Println()
		if err := obs.ShardTable(os.Stdout, shards); err != nil {
			return err
		}
	}

	if len(tr.Evals) > 0 {
		fmt.Println()
		if err := obs.EvalTable(os.Stdout, tr.Evals); err != nil {
			return err
		}
	}

	if *dumpRuns {
		fmt.Println()
		for _, r := range tr.Runs {
			fmt.Printf("run %d phase=%q rounds=%d messages=%d peak_live=%d workers=%d shards=%d batch=%v topo_cached=%v scratch_pooled=%v setup=%s compute=%s err=%q\n",
				r.Run, r.Phase, r.Rounds, r.Messages, r.PeakLive, r.Workers, r.Shards, r.Batch,
				r.TopoCached, r.ScratchPooled,
				time.Duration(r.SetupNS).Round(time.Microsecond),
				time.Duration(r.ComputeNS).Round(time.Microsecond), r.Err)
		}
	}
	return nil
}
