// Colorcli colors a graph read from an edge-list file (or stdin) and
// writes the per-vertex colors, verifying legality.
//
// Usage:
//
//	colorcli [-algo oa|tradeoff|fast|at|oneshot|linial|delta1|be08|mis|luby]
//	         [-a arboricity] [-p param] [-mu exponent] [-seed s]
//	         [-shards k] [file]
//
// The input is either the text edge list — "n m" on the first line then
// one "u v" edge per line (0-based), '#' comments allowed — or the DCG1
// binary format written by graphgen -binary; the loader sniffs the
// magic, and sharded DCG1 files are reported with their shard framing.
// -shards runs the shard-structured engine with that many vertex shards
// (identical results, shard-local message columns). Output: one
// "vertex color" line per vertex plus a summary on stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/distcolor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	algo := flag.String("algo", "oa", "algorithm: oa|tradeoff|fast|at|oneshot|linial|delta1|be08|mis|luby")
	aFlag := flag.Int("a", 0, "arboricity bound (0 = estimate)")
	param := flag.Int("p", 8, "parameter p (tradeoff), g (fast) or t (at)")
	mu := flag.Float64("mu", 2.0/3.0, "round exponent mu for oa/at/mis")
	seed := flag.Int64("seed", 1, "seed (ID permutation, randomized baselines)")
	shards := flag.Int("shards", 0, "run the shard-structured engine with this many vertex shards (0 = flat)")
	flag.Parse()
	if *shards < 0 {
		return fmt.Errorf("-shards must be non-negative, got %d", *shards)
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		path := flag.Arg(0)
		if st, err := distcolor.StatBinaryFile(path); err == nil {
			fmt.Fprintf(os.Stderr, "DCG1 input: n=%d m=%d, framed as %d streaming shards of <=%d edges\n",
				st.N, st.M, st.Shards, st.ShardSize)
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	g, err := distcolor.Load(in)
	if err != nil {
		return err
	}
	opts := distcolor.Options{Seed: *seed, PermuteIDs: true, Shards: *shards}
	if *shards > 1 {
		fmt.Fprintf(os.Stderr, "engine: %d vertex shards\n", *shards)
	}

	a := *aFlag
	if a == 0 {
		if a, err = distcolor.EstimateArboricity(g, opts); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "estimated arboricity bound: %d\n", a)
	}

	var (
		res    *distcolor.Result
		misRes *distcolor.MISResult
	)
	switch *algo {
	case "oa":
		res, err = distcolor.ColorOA(g, a, *mu, opts)
	case "tradeoff":
		res, err = distcolor.ColorTradeoff(g, a, *param, opts)
	case "fast":
		res, err = distcolor.ColorFast(g, a, *param, opts)
	case "at":
		res, err = distcolor.ColorAT(g, a, *param, *mu, opts)
	case "oneshot":
		res, err = distcolor.OneShot(g, a, opts)
	case "linial":
		res, err = distcolor.Linial(g, opts)
	case "delta1":
		res, err = distcolor.DeltaPlusOne(g, opts)
	case "be08":
		res, err = distcolor.BE08(g, a, opts)
	case "mis":
		misRes, err = distcolor.MIS(g, a, *mu, opts)
	case "luby":
		misRes, err = distcolor.LubyMIS(g, opts)
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	if err != nil {
		return err
	}

	if misRes != nil {
		if err := distcolor.VerifyMIS(g, misRes.InMIS); err != nil {
			return fmt.Errorf("verification: %w", err)
		}
		for v, in := range misRes.InMIS {
			b := 0
			if in {
				b = 1
			}
			fmt.Printf("%d %d\n", v, b)
		}
		fmt.Fprintf(os.Stderr, "MIS: size=%d rounds=%d (verified)\n", misRes.Size, misRes.Rounds)
		return nil
	}

	if err := distcolor.VerifyLegal(g, res.Colors); err != nil {
		return fmt.Errorf("verification: %w", err)
	}
	for v, c := range res.Colors {
		fmt.Printf("%d %d\n", v, c)
	}
	fmt.Fprintf(os.Stderr, "coloring: colors=%d rounds=%d messages=%d (verified)\n",
		res.NumColors, res.Rounds, res.Messages)
	return nil
}
