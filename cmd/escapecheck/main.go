// Command escapecheck verifies that the functions annotated
// //distvet:noalloc (the engine's declared hot paths; see
// internal/analysis/distvet) keep their compiler-observed heap behavior
// pinned. It runs the gc escape analysis over the packages that declare
// annotated functions, keeps the "escapes to heap" / "moved to heap"
// diagnostics whose position falls inside an annotated function, and
// diffs the normalized set against a checked-in baseline:
//
//	go run ./cmd/escapecheck            # diff against ESCAPES.baseline
//	go run ./cmd/escapecheck -update    # rewrite the baseline
//	go run ./cmd/escapecheck -gcflags='-m -l'   # nightly: no inlining
//
// The baseline records line-number-free entries of the form
//
//	<import path>.<function>: <diagnostic> (xN)
//
// so routine edits that only move code do not churn it; a NEW escape on
// a hot path (or one that disappears - also worth knowing) shows up as
// a one-line diff and fails the build. distvet's hotalloc analyzer
// rejects allocating constructs syntactically; escapecheck closes the
// gap the compiler controls: escapes introduced by inlining, captured
// variables, or parameter leaks that no syntax check can see.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	update := flag.Bool("update", false, "rewrite the baseline instead of diffing")
	gcflags := flag.String("gcflags", "-m -m", "flags passed to the compiler (nightly adds inlining-budget variants)")
	baseline := flag.String("baseline", "ESCAPES.baseline", "baseline file, relative to the module root")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if err := run(patterns, *gcflags, *baseline, *update); err != nil {
		fmt.Fprintln(os.Stderr, "escapecheck:", err)
		os.Exit(2)
	}
}

// span is the source extent of one annotated function.
type span struct {
	file       string // module-root-relative path, slash-separated
	start, end int    // line range, inclusive
	qualified  string // importpath.Recv.Func
}

func run(patterns []string, gcflags, baselineFile string, update bool) error {
	root, err := moduleRoot()
	if err != nil {
		return err
	}
	pkgs, err := listPackages(root, patterns)
	if err != nil {
		return err
	}
	var spans []span
	var buildPkgs []string
	for _, p := range pkgs {
		ss, err := annotatedSpans(root, p)
		if err != nil {
			return err
		}
		if len(ss) > 0 {
			spans = append(spans, ss...)
			buildPkgs = append(buildPkgs, p.ImportPath)
		}
	}
	if len(spans) == 0 {
		return fmt.Errorf("no //distvet:noalloc functions found in %v", patterns)
	}
	diags, err := escapeDiagnostics(root, gcflags, buildPkgs)
	if err != nil {
		return err
	}
	got := normalize(spans, diags)

	path := filepath.Join(root, baselineFile)
	if update {
		if err := os.WriteFile(path, []byte(render(got, gcflags)), 0o666); err != nil {
			return err
		}
		fmt.Printf("escapecheck: wrote %d entries to %s\n", len(got), baselineFile)
		return nil
	}
	wantData, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("%v (run with -update to create the baseline)", err)
	}
	want := parseBaseline(wantData)
	if diff := diffSets(want, got); len(diff) > 0 {
		for _, d := range diff {
			fmt.Println(d)
		}
		fmt.Fprintf(os.Stderr, "escapecheck: hot-path escape set differs from %s (%d line(s)); fix the escape or run -update with a justification in the commit\n", baselineFile, len(diff))
		os.Exit(1)
	}
	fmt.Printf("escapecheck: %d hot-path escape entries match %s\n", len(got), baselineFile)
	return nil
}

func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a module")
	}
	return filepath.Dir(gomod), nil
}

type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
}

func listPackages(root string, patterns []string) ([]listedPkg, error) {
	args := append([]string{"list", "-f", "{{.ImportPath}}\t{{.Dir}}\t{{range .GoFiles}}{{.}} {{end}}"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return nil, fmt.Errorf("go list: %v\n%s", err, ee.Stderr)
		}
		return nil, fmt.Errorf("go list: %v", err)
	}
	var pkgs []listedPkg
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		parts := strings.SplitN(sc.Text(), "\t", 3)
		if len(parts) != 3 {
			continue
		}
		pkgs = append(pkgs, listedPkg{
			ImportPath: parts[0],
			Dir:        parts[1],
			GoFiles:    strings.Fields(parts[2]),
		})
	}
	return pkgs, nil
}

// annotatedSpans parses the package's non-test files and returns the
// extent of every function whose doc comment carries //distvet:noalloc.
func annotatedSpans(root string, p listedPkg) ([]span, error) {
	var spans []span
	fset := token.NewFileSet()
	for _, name := range p.GoFiles {
		full := filepath.Join(p.Dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		if !bytes.Contains(src, []byte("//distvet:noalloc")) {
			continue
		}
		f, err := parser.ParseFile(fset, full, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, full)
		if err != nil {
			return nil, err
		}
		rel = filepath.ToSlash(rel)
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			marked := false
			for _, c := range fd.Doc.List {
				if strings.HasPrefix(c.Text, "//distvet:noalloc") {
					marked = true
					break
				}
			}
			if !marked {
				continue
			}
			spans = append(spans, span{
				file:      rel,
				start:     fset.Position(fd.Pos()).Line,
				end:       fset.Position(fd.End()).Line,
				qualified: p.ImportPath + "." + funcName(fd),
			})
		}
	}
	return spans, nil
}

func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if s, ok := t.(*ast.StarExpr); ok {
		t = s.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

type diag struct {
	file    string
	line    int
	message string
}

// diagRE matches the compiler's position-prefixed diagnostics. Indented
// continuation lines (-m -m explanations) deliberately do not match.
var diagRE = regexp.MustCompile(`^([^ \t:][^:]*\.go):(\d+):(\d+): (.*)$`)

// escapeDiagnostics compiles the packages with the requested -gcflags and
// returns every escape line. The gc driver replays cached diagnostics, so
// repeated runs are cheap; -o is discarded.
func escapeDiagnostics(root, gcflags string, pkgs []string) ([]diag, error) {
	args := append([]string{"build", "-gcflags=" + gcflags}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go build -gcflags=%s: %v\n%s", gcflags, err, out)
	}
	var diags []diag
	sc := bufio.NewScanner(bytes.NewReader(out))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := diagRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		// Under -m -m each escape appears twice: a plain line and an
		// explanation header ending in ":". Trim the colon so both
		// normalize to one entry (with multiplicity 2).
		msg := strings.TrimSuffix(m[4], ":")
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		line, _ := strconv.Atoi(m[2])
		diags = append(diags, diag{file: filepath.ToSlash(m[1]), line: line, message: msg})
	}
	return diags, nil
}

// normalize maps in-span diagnostics to stable, line-number-free entries
// "qualified: message" with multiplicity counts.
func normalize(spans []span, diags []diag) map[string]int {
	got := make(map[string]int)
	for _, d := range diags {
		for _, s := range spans {
			if d.file == s.file && d.line >= s.start && d.line <= s.end {
				got[s.qualified+": "+d.message]++
				break
			}
		}
	}
	return got
}

func render(set map[string]int, gcflags string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# escapecheck baseline: compiler-observed heap escapes inside //distvet:noalloc functions.\n")
	fmt.Fprintf(&b, "# Regenerate with: go run ./cmd/escapecheck -gcflags='%s' -update\n", gcflags)
	for _, k := range sortedKeys(set) {
		if n := set[k]; n > 1 {
			fmt.Fprintf(&b, "%s (x%d)\n", k, n)
		} else {
			fmt.Fprintf(&b, "%s\n", k)
		}
	}
	return b.String()
}

var countRE = regexp.MustCompile(` \(x(\d+)\)$`)

func parseBaseline(data []byte) map[string]int {
	want := make(map[string]int)
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		n := 1
		if m := countRE.FindStringSubmatch(line); m != nil {
			n, _ = strconv.Atoi(m[1])
			line = strings.TrimSuffix(line, m[0])
		}
		want[line] = n
	}
	return want
}

// diffSets renders the symmetric difference as +/- lines, sorted.
func diffSets(want, got map[string]int) []string {
	var out []string
	for _, k := range sortedKeys(got) {
		if want[k] != got[k] {
			out = append(out, fmt.Sprintf("+ %s (x%d, baseline x%d)", k, got[k], want[k]))
		}
	}
	for _, k := range sortedKeys(want) {
		if _, ok := got[k]; !ok {
			out = append(out, fmt.Sprintf("- %s (baseline x%d, now absent)", k, want[k]))
		}
	}
	return out
}

func sortedKeys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
