// Colorbench runs the full experiment suite of DESIGN.md (E01-E22),
// regenerating every theorem-level claim of the paper with measured
// values next to the predicted bounds. The output is the source of
// EXPERIMENTS.md; with -json it emits one machine-readable record per
// experiment row (JSON Lines: colors, rounds, messages, wall time) for
// CI trend tracking.
//
// With -scale it instead runs the large-graph experiment: generate (or
// load, see -graph) a forest-union instance through the DCG1 binary
// format and run Legal-Coloring end to end on the columnar batch
// transport, recording wall time and heap allocations. A nonzero
// -scale-shadow-n additionally runs both transports at that size and
// fails unless the colorings match bit for bit.
//
// With -scale-procs the full-size run becomes a speedup sweep: one run
// per listed core count (GOMAXPROCS and the engine worker pool are both
// pinned), one record each, and the sweep fails unless every point
// produces bit-for-bit identical colors, rounds and message counts.
// -scale-shards records the analogous shard-count curve: one run per
// listed shard count on the shard-structured engine (count 1 is the
// flat baseline), same bit-for-bit gate, and a cross-gate against the
// core-count runs when both sweeps are requested.
// -cpuprofile/-memprofile capture pprof profiles of any invocation.
//
// Usage:
//
//	colorbench [-n vertices] [-seed s] [-exp E07] [-json]
//	colorbench -scale [-scale-n 1000000] [-scale-a 8] [-scale-p 4]
//	           [-graph g.bin] [-scale-shadow-n 100000]
//	           [-scale-procs 1,2,4,8] [-scale-shards 1,2,4,8] [-json]
//	colorbench ... [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"slices"
	"strconv"
	"strings"
	"time"

	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/field"
	"repro/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	n := flag.Int("n", experiments.DefaultSizes.N, "vertex count per workload")
	seed := flag.Int64("seed", experiments.DefaultSizes.Seed, "base RNG seed")
	exp := flag.String("exp", "", "run a single experiment (e.g. E07)")
	jsonOut := flag.Bool("json", false, "emit one JSON record per row (JSON Lines) instead of the table")
	scale := flag.Bool("scale", false, "run the large-graph batch-delivery experiment instead of the suite")
	scaleN := flag.Int("scale-n", 1_000_000, "scale run: vertex count of the generated instance")
	scaleA := flag.Int("scale-a", 8, "scale run: arboricity (forests in the union and the Legal-Coloring bound)")
	scaleP := flag.Int("scale-p", 4, "scale run: Legal-Coloring refinement parameter p")
	graphPath := flag.String("graph", "", "scale run: prebuilt graph file (DCG1 binary or text edge list)")
	shadowN := flag.Int("scale-shadow-n", 100_000, "scale run: also cross-check batch vs boxed transports at this size (0 disables)")
	allocBudget := flag.Float64("scale-alloc-budget", 0, "scale run: fail if the full batch run exceeds this many heap allocations per vertex (0 disables)")
	wallBudget := flag.Float64("scale-wall-budget", 0, "scale run: fail if a full-size flat run's wall time exceeds this many seconds (0 disables; nightly derives it from the checked-in BENCH_scale.json baseline + 15%)")
	evalGate := flag.Bool("scale-eval-gate", false, "scale run: enable the field eval counters and fail if any pipeline step reports a scalar-Eval fallback")
	scaleKillResume := flag.Bool("scale-kill-resume", false, "scale run: instead of the measured run, gate checkpoint/resume - run uninterrupted, kill at every refinement iteration after persisting the pipeline checkpoint, resume each from the serialized blob on a fresh network, and fail unless colors/rounds/messages match bit for bit")
	scaleProcs := flag.String("scale-procs", "", "scale run: comma-separated core counts (e.g. 1,2,4,8); one full run per count with GOMAXPROCS and the worker pool pinned, asserting identical results")
	scaleShards := flag.String("scale-shards", "", "scale run: comma-separated shard counts (e.g. 1,2,4,8); one full run per count on the shard-structured engine, asserting identical results")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the whole invocation to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (post-GC) to this file on exit")
	tracePath := flag.String("trace", "", "scale run: write a round-level JSONL trace of the full-size coloring run to this file (see cmd/colortrace)")
	serveAddr := flag.String("serve", "", "serve live introspection (expvar + pprof) on this address (e.g. localhost:6060) for the life of the run")
	flag.Parse()

	if *serveAddr != "" {
		// Live introspection implies counting: the coloring.evals var is
		// only worth scraping if the field-eval counters are running.
		field.SetEvalStats(true)
		obs.PublishEvalStats()
		addr, err := obs.Serve(*serveAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "introspection: http://%s/debug/vars and /debug/pprof/\n", addr)
	}
	if *tracePath != "" && !*scale {
		return fmt.Errorf("-trace requires -scale (round-level tracing covers the scale run)")
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	if *scale {
		procs, err := parseCounts(*scaleProcs, "-scale-procs", "core")
		if err != nil {
			return err
		}
		shards, err := parseCounts(*scaleShards, "-scale-shards", "shard")
		if err != nil {
			return err
		}
		if *scaleKillResume {
			return runKillResume(*scaleN, *scaleA, *scaleP, *seed, *graphPath, shards)
		}
		return runScale(*scaleN, *scaleA, *scaleP, *seed, *graphPath, *shadowN, *allocBudget, *wallBudget, *evalGate, procs, shards, *jsonOut, *tracePath, *serveAddr != "")
	}

	sizes := experiments.Sizes{N: *n, Seed: *seed}
	suite := experiments.List()
	if *exp != "" {
		id := strings.ToUpper(*exp)
		var selected []experiments.Experiment
		for _, e := range suite {
			if e.ID == id {
				selected = append(selected, e)
			}
		}
		if len(selected) == 0 {
			return fmt.Errorf("unknown experiment %q", *exp)
		}
		suite = selected
	}

	var rows []experiments.Row
	var recs []experiments.Record
	for _, e := range suite {
		start := time.Now()
		expRows, err := e.Fn(sizes)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		wallMS := float64(time.Since(start).Microseconds()) / 1000.0
		rows = append(rows, expRows...)
		for _, r := range expRows {
			recs = append(recs, experiments.NewRecord(r, wallMS, sizes))
		}
	}

	bad := 0
	for _, r := range rows {
		if !r.OK {
			bad++
		}
	}
	if *jsonOut {
		if err := experiments.WriteJSON(os.Stdout, recs); err != nil {
			return err
		}
	} else {
		fmt.Printf("reproduction suite: n=%d seed=%d\n\n", sizes.N, sizes.Seed)
		fmt.Print(experiments.Table(rows))
		fmt.Printf("\n%d rows, %d bound violations\n", len(rows), bad)
	}
	if bad > 0 {
		return fmt.Errorf("%d experiments violated their bound", bad)
	}
	return nil
}

// runKillResume executes the checkpoint/resume gate: ScaleKillResume
// kills Legal-Coloring at every refinement iteration (persisting the
// pipeline checkpoint through the real serializer each time) and
// resumes each kill on a fresh network, failing unless the resumed
// coloring and the merged rounds/messages totals match the
// uninterrupted run bit for bit. With -scale-shards the gate runs once
// per listed shard count (the flat engine at count 1).
func runKillResume(n, a, p int, seed int64, graphPath string, shards []int) error {
	if len(shards) == 0 {
		shards = []int{1}
	}
	for _, k := range shards {
		opt := experiments.ScaleOptions{
			N: n, Arboricity: a, P: p, Seed: seed, GraphPath: graphPath,
			Delivery: dist.DeliveryBatch, Shards: k,
		}
		rep, err := experiments.ScaleKillResume(opt)
		if err != nil {
			return fmt.Errorf("kill-resume (shards=%d): %w", k, err)
		}
		fmt.Printf("kill-resume ok (shards=%d): %d iterations killed+resumed, colors/rounds/messages %d/%d/%d, checkpoint %d bytes\n",
			k, rep.Iterations, rep.Colors, rep.Rounds, rep.Messages, rep.Bytes)
	}
	return nil
}

// parseCounts parses a comma-separated positive-count list ("1,2,4,8")
// for the -scale-procs / -scale-shards sweep flags.
func parseCounts(s, flagName, what string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var counts []int
	for _, part := range strings.Split(s, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("%s: bad %s count %q", flagName, what, part)
		}
		counts = append(counts, w)
	}
	return counts, nil
}

// runScale executes the scale experiment: an optional batch-vs-boxed
// shadow pair at shadowN, then the full-size run on the batch transport -
// once with the auto worker heuristic, or (with -scale-procs) once per
// listed core count with GOMAXPROCS and the engine worker pool pinned,
// requiring bit-for-bit identical colorings and counters across the
// sweep - and (with -scale-shards) one run per listed shard count on
// the shard-structured engine with the same bit-for-bit gate, cross-
// gated against the core-count runs. All records go to the JSON-Lines
// stream (or a readable text line). A nonzero allocBudget gates the
// (flat) full runs' allocs/vertex - the CI regression check for the
// typed word-I/O plumbing - and a nonzero wallBudget gates their wall
// time the same way (the nightly wall-regression check). evalGate turns
// the field eval counters on for the whole invocation and fails it if
// any recoloring step reports a scalar-Eval fallback: the batch kernel
// is supposed to make that count structurally zero.
func runScale(n, a, p int, seed int64, graphPath string, shadowN int, allocBudget, wallBudget float64, evalGate bool, procs, shards []int, jsonOut bool, tracePath string, serving bool) error {
	if evalGate {
		field.SetEvalStats(true)
		field.ResetEvalStats()
	}
	// The trace covers the full-size run(s) only: the shadow pair is a
	// correctness cross-check, and giving it the probe would interleave
	// its records with the measured run's.
	var tw *obs.TraceWriter
	var probe *dist.Probe
	if tracePath != "" {
		var err error
		tw, err = obs.CreateTrace(tracePath)
		if err != nil {
			return err
		}
		probe = dist.NewProbe(tw)
		field.SetEvalStats(true)
		obs.PublishProbe(probe)
	} else if serving {
		// Metrics-only probe: nothing is written, but the -serve expvar
		// scrape (coloring.probe) sees live run/round/message totals.
		probe = dist.NewProbe(discardSink{})
		obs.PublishProbe(probe)
	}

	var recs []experiments.Record
	emit := func(res *experiments.ScaleResult) {
		recs = append(recs, res.Record)
		if !jsonOut {
			r := res.Record
			fmt.Printf("SCALE %-28s %-22s delivery=%-5s procs=%d workers=%d shards=%d colors=%d rounds=%d messages=%d palette=%.0f wall=%.0fms mallocs=%d alloc=%.1fMB allocs/vertex=%.2f ok=%v\n",
				r.Workload, r.Params, r.Delivery, r.GoMaxProcs, r.Workers, r.Shards, r.Colors, r.Rounds, r.Messages, r.Measured, r.WallMS, r.Mallocs, r.AllocMB, r.AllocsPerVertex, r.OK)
		}
	}

	if shadowN > 0 {
		// The shadow pair checks transport equivalence, so it always runs
		// on a generated instance of its own (manageable) size, even when
		// the full run loads a prebuilt graph.
		base := experiments.ScaleOptions{N: shadowN, Arboricity: a, P: p, Seed: seed}
		batchOpt, boxedOpt := base, base
		batchOpt.Delivery = dist.DeliveryBatch
		boxedOpt.Delivery = dist.DeliveryBoxed
		batch, err := experiments.ScaleRun(batchOpt)
		if err != nil {
			return fmt.Errorf("shadow batch run: %w", err)
		}
		emit(batch)
		boxed, err := experiments.ScaleRun(boxedOpt)
		if err != nil {
			return fmt.Errorf("shadow boxed run: %w", err)
		}
		emit(boxed)
		if !slices.Equal(batch.Colors, boxed.Colors) {
			return fmt.Errorf("shadow run at n=%d: batch and boxed colorings diverge", shadowN)
		}
		if batch.Record.Messages != boxed.Record.Messages || batch.Record.Rounds != boxed.Record.Rounds {
			return fmt.Errorf("shadow run at n=%d: counters diverge (rounds %d/%d, messages %d/%d)",
				shadowN, batch.Record.Rounds, boxed.Record.Rounds, batch.Record.Messages, boxed.Record.Messages)
		}
		if !jsonOut {
			fmt.Printf("shadow ok: batch == boxed bit-for-bit at n=%d\n", batch.Record.N)
		}
	}

	// The full-size run(s): a speedup sweep over the requested core
	// counts - the instance is prepared once, then each point pins
	// GOMAXPROCS (so GC and runtime assist work scale with the point
	// being measured) together with the engine worker pool and runs on
	// a fresh session - or a single auto-paced run when no sweep was
	// requested. ScaleSweep fails unless colors/rounds/messages are
	// bit-for-bit identical across the points; its partial results are
	// still emitted so the JSONL artifact keeps the diagnostics.
	opt := experiments.ScaleOptions{
		N: n, Arboricity: a, P: p, Seed: seed, GraphPath: graphPath,
		Delivery: dist.DeliveryBatch,
		Probe:    probe, TracePath: tracePath,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	var fulls []*experiments.ScaleResult
	var sweepErr error
	switch {
	case len(procs) > 0:
		fulls, sweepErr = experiments.ScaleSweep(opt, procs)
	case len(shards) > 0:
		// Shard-sweep-only invocation: the shard curve's count-1 point is
		// the flat baseline, no separate auto run needed.
	default:
		full, err := experiments.ScaleRun(opt)
		if err != nil {
			if probe != nil {
				probe.Close()
			}
			if tw != nil {
				tw.Close()
			}
			return err
		}
		fulls = []*experiments.ScaleResult{full}
	}
	for _, full := range fulls {
		emit(full)
	}

	// The shard-count curve: same instance and identifier permutation,
	// one run per shard count on the shard-structured engine, emitted
	// next to the core-count records.
	var shardFulls []*experiments.ScaleResult
	var shardErr error
	if len(shards) > 0 {
		shardFulls, shardErr = experiments.ScaleShardSweep(opt, shards)
		for _, full := range shardFulls {
			emit(full)
		}
	}

	// Seal the trace: flush the probe's ring, append the eval-stat
	// snapshot, close the file. Done before the gates below so a failing
	// gate still leaves a complete trace artifact. A sink write failure
	// surfaces here - the run's numbers are still printed, but the exit
	// is non-zero because the trace artifact is incomplete.
	if probe != nil {
		if err := probe.Close(); err != nil {
			return fmt.Errorf("probe sink: %w", err)
		}
	}
	if tw != nil {
		tw.WriteEvalStats(field.EvalStatsSnapshot())
		rounds, runs := tw.Counts()
		if err := tw.Close(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		if !jsonOut {
			fmt.Printf("trace: %d round records, %d run records -> %s\n", rounds, runs, tracePath)
		}
	}

	// Write the records before applying any gate, so a failing run still
	// leaves its diagnostics in the JSON-Lines artifact.
	if jsonOut {
		if err := experiments.WriteJSON(os.Stdout, recs); err != nil {
			return err
		}
	}
	if sweepErr != nil {
		return sweepErr
	}
	if shardErr != nil {
		return shardErr
	}
	// Cross-gate the two curves: a shard-sweep point must reproduce the
	// core-sweep coloring exactly (both gates already pinned their own
	// sweeps internally, so comparing the first of each suffices).
	if len(fulls) > 0 && len(shardFulls) > 0 {
		a, b := fulls[0].Record, shardFulls[0].Record
		if !slices.Equal(fulls[0].Colors, shardFulls[0].Colors) ||
			a.Rounds != b.Rounds || a.Messages != b.Messages {
			return fmt.Errorf(
				"scale shard sweep diverges from core sweep (colors/rounds/messages %d/%d/%d vs %d/%d/%d)",
				b.Colors, b.Rounds, b.Messages, a.Colors, a.Rounds, a.Messages)
		}
	}
	for _, r := range recs {
		if !r.OK {
			return fmt.Errorf("scale run %s %s produced an illegal coloring: %s", r.Workload, r.Params, r.Note)
		}
	}
	for _, full := range fulls {
		if allocBudget > 0 && full.Record.AllocsPerVertex > allocBudget {
			return fmt.Errorf("scale run %s %s (workers=%d) allocated %.2f allocs/vertex, over the %.2f budget",
				full.Record.Workload, full.Record.Params, full.Record.Workers, full.Record.AllocsPerVertex, allocBudget)
		}
		if wallBudget > 0 && full.Record.WallMS > wallBudget*1000 {
			return fmt.Errorf("scale run %s %s (workers=%d) took %.0f ms, over the %.1f s wall budget",
				full.Record.Workload, full.Record.Params, full.Record.Workers, full.Record.WallMS, wallBudget)
		}
	}
	if evalGate {
		snap := field.EvalStatsSnapshot()
		if len(snap) == 0 {
			return fmt.Errorf("-scale-eval-gate: no eval counters registered (counting did not reach the pipeline)")
		}
		var total int64
		for _, s := range snap {
			if s.Fallbacks != 0 {
				return fmt.Errorf("-scale-eval-gate: step %d (q=%d d=%d) took %d scalar-Eval fallbacks (hits=%d batched=%d)",
					s.Step, s.Q, s.D, s.Fallbacks, s.Hits, s.Batched)
			}
			total += s.Total()
		}
		if !jsonOut {
			fmt.Printf("eval gate ok: %d evaluations, 0 scalar-Eval fallbacks\n", total)
		}
	}
	return nil
}

// discardSink drops probe records; it backs the metrics-only probe the
// -serve endpoint scrapes when no -trace file was requested.
type discardSink struct{}

func (discardSink) FlushRounds([]dist.RoundRecord) error { return nil }
func (discardSink) FlushRuns([]dist.RunRecord) error     { return nil }
