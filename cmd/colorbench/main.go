// Colorbench runs the full experiment suite of DESIGN.md (E01-E22),
// regenerating every theorem-level claim of the paper with measured
// values next to the predicted bounds. The output is the source of
// EXPERIMENTS.md; with -json it emits one machine-readable record per
// experiment row (JSON Lines: colors, rounds, messages, wall time) for
// CI trend tracking.
//
// Usage:
//
//	colorbench [-n vertices] [-seed s] [-exp E07] [-json]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	n := flag.Int("n", experiments.DefaultSizes.N, "vertex count per workload")
	seed := flag.Int64("seed", experiments.DefaultSizes.Seed, "base RNG seed")
	exp := flag.String("exp", "", "run a single experiment (e.g. E07)")
	jsonOut := flag.Bool("json", false, "emit one JSON record per row (JSON Lines) instead of the table")
	flag.Parse()

	sizes := experiments.Sizes{N: *n, Seed: *seed}
	suite := experiments.List()
	if *exp != "" {
		id := strings.ToUpper(*exp)
		var selected []experiments.Experiment
		for _, e := range suite {
			if e.ID == id {
				selected = append(selected, e)
			}
		}
		if len(selected) == 0 {
			return fmt.Errorf("unknown experiment %q", *exp)
		}
		suite = selected
	}

	var rows []experiments.Row
	var recs []experiments.Record
	for _, e := range suite {
		start := time.Now()
		expRows, err := e.Fn(sizes)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		wallMS := float64(time.Since(start).Microseconds()) / 1000.0
		rows = append(rows, expRows...)
		for _, r := range expRows {
			recs = append(recs, experiments.NewRecord(r, wallMS, sizes))
		}
	}

	bad := 0
	for _, r := range rows {
		if !r.OK {
			bad++
		}
	}
	if *jsonOut {
		if err := experiments.WriteJSON(os.Stdout, recs); err != nil {
			return err
		}
	} else {
		fmt.Printf("reproduction suite: n=%d seed=%d\n\n", sizes.N, sizes.Seed)
		fmt.Print(experiments.Table(rows))
		fmt.Printf("\n%d rows, %d bound violations\n", len(rows), bad)
	}
	if bad > 0 {
		return fmt.Errorf("%d experiments violated their bound", bad)
	}
	return nil
}
