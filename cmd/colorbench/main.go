// Colorbench runs the full experiment suite of DESIGN.md (E01-E19),
// regenerating every theorem-level claim of the paper with measured
// values next to the predicted bounds. The output is the source of
// EXPERIMENTS.md.
//
// Usage:
//
//	colorbench [-n vertices] [-seed s] [-exp E07]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	n := flag.Int("n", experiments.DefaultSizes.N, "vertex count per workload")
	seed := flag.Int64("seed", experiments.DefaultSizes.Seed, "base RNG seed")
	exp := flag.String("exp", "", "run a single experiment (e.g. E07)")
	flag.Parse()

	sizes := experiments.Sizes{N: *n, Seed: *seed}
	fns := map[string]func(experiments.Sizes) ([]experiments.Row, error){
		"E01": experiments.E01HPartition,
		"E02": experiments.E02Forests,
		"E03": experiments.E03BE08,
		"E04": experiments.E04Linial,
		"E05": experiments.E05Defective,
		"E06": experiments.E06CompleteOrientation,
		"E07": experiments.E07PartialOrientation,
		"E08": experiments.E08SimpleArbdefective,
		"E09": experiments.E09ArbdefectiveColoring,
		"E10": experiments.E10OneShot,
		"E11": experiments.E11LegalColoring,
		"E12": experiments.E12Tradeoff,
		"E13": experiments.E13DeltaPlusOne,
		"E14": experiments.E14ArbKuhn,
		"E15": experiments.E15FastColoring,
		"E16": experiments.E16ColorAT,
		"E17": experiments.E17MIS,
		"E18": experiments.E18StateOfTheArt,
		"E19": experiments.E19OrientationColoring,
		"E20": experiments.E20AblationOrientation,
		"E21": experiments.E21LinialReduction,
		"E22": experiments.E22IDRobustness,
	}

	var rows []experiments.Row
	var err error
	if *exp != "" {
		fn, ok := fns[strings.ToUpper(*exp)]
		if !ok {
			return fmt.Errorf("unknown experiment %q", *exp)
		}
		rows, err = fn(sizes)
	} else {
		rows, err = experiments.All(sizes)
	}
	if err != nil {
		return err
	}
	fmt.Printf("reproduction suite: n=%d seed=%d\n\n", sizes.N, sizes.Seed)
	fmt.Print(experiments.Table(rows))
	bad := 0
	for _, r := range rows {
		if !r.OK {
			bad++
		}
	}
	fmt.Printf("\n%d rows, %d bound violations\n", len(rows), bad)
	if bad > 0 {
		return fmt.Errorf("%d experiments violated their bound", bad)
	}
	return nil
}
