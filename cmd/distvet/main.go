// Command distvet runs the engine-invariant analyzer suite
// (internal/analysis/distvet) over this module.
//
// Standalone mode (the CI entry point):
//
//	go run ./cmd/distvet ./...
//
// loads, type-checks and analyzes every module package (test files
// excluded) and prints findings as file:line:col: message (analyzer),
// exiting 1 when any are found.
//
// Vet-tool mode: the binary also speaks the `go vet -vettool` unit
// protocol (-V=full version fingerprint; a single *.cfg JSON argument
// describing one compilation unit), so
//
//	go build -o distvet ./cmd/distvet && go vet -vettool=$PWD/distvet ./...
//
// runs the same suite under the go command's caching and diagnostics
// plumbing.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/distvet"
)

func main() {
	versionFlag := flag.String("V", "", "print version (go vet protocol; -V=full)")
	jsonFlag := flag.Bool("json", false, "emit diagnostics as JSON (vet protocol)")
	flagsFlag := flag.Bool("flags", false, "describe flags as JSON (vet protocol)")
	flag.Parse()
	args := flag.Args()

	if *flagsFlag {
		// The go command asks for the tool's analyzer flags; distvet's
		// suite is not individually toggleable.
		fmt.Println("[]")
		return
	}

	if *versionFlag != "" {
		// The go command fingerprints vet tools by name and content hash.
		name := filepath.Base(os.Args[0])
		if *versionFlag == "full" {
			h := sha256.New()
			if exe, err := os.Executable(); err == nil {
				if f, err := os.Open(exe); err == nil {
					io.Copy(h, f)
					f.Close()
				}
			}
			fmt.Printf("%s version devel comments-go-here buildID=%02x\n", name, h.Sum(nil))
		} else {
			fmt.Printf("%s version devel\n", name)
		}
		return
	}

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0], *jsonFlag))
	}

	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	findings, err := analysis.Run(pkgs, distvet.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "distvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// unitConfig is the JSON configuration the go command hands a vet tool
// for one compilation unit (the x/tools unitchecker schema; unknown
// fields are ignored).
type unitConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one vet compilation unit and returns the process exit
// code: 0 clean, 2 findings (the go command surfaces stderr on exit 2).
func runUnit(cfgFile string, asJSON bool) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "distvet: parsing %s: %v\n", cfgFile, err)
		return 2
	}
	// distvet carries no cross-package facts, but the protocol requires a
	// facts file so the go command can cache the (empty) result.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("distvet: no package file for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	pkg := &analysis.Package{Path: cfg.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info}
	findings, err := analysis.Run([]*analysis.Package{pkg}, distvet.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if asJSON {
		out := map[string]map[string][]map[string]string{cfg.ImportPath: {}}
		for _, f := range findings {
			out[cfg.ImportPath][f.Analyzer] = append(out[cfg.ImportPath][f.Analyzer], map[string]string{
				"posn": f.Posn.String(), "message": f.Message,
			})
		}
		json.NewEncoder(os.Stdout).Encode(out)
		return 0
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s\n", f.Posn, f.Message)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
