// Benchmark harness: one benchmark per experiment of DESIGN.md Section 5
// (E01-E19). Each benchmark executes the experiment end to end on the
// LOCAL-model simulator and reports, besides wall-clock, the paper's
// metrics as custom benchmark outputs: simulated rounds and colors used.
//
// Run all of them with:
//
//	go test -bench=. -benchmem
//
// Absolute wall-clock numbers are properties of the simulator; the
// reproduced quantities are the rounds/colors metrics (see EXPERIMENTS.md).
package repro_test

import (
	"testing"

	"repro/internal/experiments"
)

// benchSizes keeps a single benchmark iteration around a second.
var benchSizes = experiments.Sizes{N: 800, Seed: 1}

func benchRows(b *testing.B, fn func(experiments.Sizes) ([]experiments.Row, error)) {
	b.Helper()
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = fn(benchSizes)
		if err != nil {
			b.Fatal(err)
		}
	}
	maxRounds, sumColors := 0, 0
	var sumMessages int64
	for _, r := range rows {
		if !r.OK {
			b.Fatalf("experiment row failed its bound: %+v", r)
		}
		if r.Rounds > maxRounds {
			maxRounds = r.Rounds
		}
		sumColors += r.Colors
		sumMessages += r.Messages
	}
	b.ReportMetric(float64(maxRounds), "rounds")
	if sumColors > 0 {
		b.ReportMetric(float64(sumColors)/float64(len(rows)), "colors/op")
	}
	if sumMessages > 0 {
		b.ReportMetric(float64(sumMessages)/float64(len(rows)), "msgs/op")
	}
}

func BenchmarkE01_HPartition(b *testing.B)           { benchRows(b, experiments.E01HPartition) }
func BenchmarkE02_ForestsDecomposition(b *testing.B) { benchRows(b, experiments.E02Forests) }
func BenchmarkE03_BE08Coloring(b *testing.B)         { benchRows(b, experiments.E03BE08) }
func BenchmarkE04_Linial(b *testing.B)               { benchRows(b, experiments.E04Linial) }
func BenchmarkE05_Defective(b *testing.B)            { benchRows(b, experiments.E05Defective) }
func BenchmarkE06_CompleteOrientation(b *testing.B)  { benchRows(b, experiments.E06CompleteOrientation) }
func BenchmarkE07_PartialOrientation(b *testing.B)   { benchRows(b, experiments.E07PartialOrientation) }
func BenchmarkE08_SimpleArbdefective(b *testing.B)   { benchRows(b, experiments.E08SimpleArbdefective) }
func BenchmarkE09_ArbdefectiveColoring(b *testing.B) {
	benchRows(b, experiments.E09ArbdefectiveColoring)
}
func BenchmarkE10_OneShot(b *testing.B)           { benchRows(b, experiments.E10OneShot) }
func BenchmarkE11_LegalColoring(b *testing.B)     { benchRows(b, experiments.E11LegalColoring) }
func BenchmarkE12_Tradeoff(b *testing.B)          { benchRows(b, experiments.E12Tradeoff) }
func BenchmarkE13_DeltaPlusOne(b *testing.B)      { benchRows(b, experiments.E13DeltaPlusOne) }
func BenchmarkE14_ArbKuhn(b *testing.B)           { benchRows(b, experiments.E14ArbKuhn) }
func BenchmarkE15_FastColoring(b *testing.B)      { benchRows(b, experiments.E15FastColoring) }
func BenchmarkE16_ColorTimeTradeoff(b *testing.B) { benchRows(b, experiments.E16ColorAT) }
func BenchmarkE17_MIS(b *testing.B)               { benchRows(b, experiments.E17MIS) }
func BenchmarkE18_StateOfTheArt(b *testing.B)     { benchRows(b, experiments.E18StateOfTheArt) }
func BenchmarkE19_OrientationColoring(b *testing.B) {
	benchRows(b, experiments.E19OrientationColoring)
}

func BenchmarkE20_AblationOrientation(b *testing.B) {
	benchRows(b, experiments.E20AblationOrientation)
}
func BenchmarkE21_LinialReduction(b *testing.B) { benchRows(b, experiments.E21LinialReduction) }
func BenchmarkE22_IDRobustness(b *testing.B)    { benchRows(b, experiments.E22IDRobustness) }
