// Quickstart: color a bounded-arboricity graph with the paper's main
// algorithm (Theorem 4.3) and verify the result.
package main

import (
	"fmt"
	"log"

	"repro/distcolor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A union of 4 random forests on 2000 vertices: arboricity <= 4 by
	// construction, but maximum degree much larger.
	const (
		n    = 5000
		arb  = 4
		seed = 7
	)
	g := distcolor.GenForestUnion(n, arb, seed)
	fmt.Printf("graph: n=%d m=%d Delta=%d arboricity<=%d\n",
		g.N(), g.M(), g.MaxDegree(), arb)

	// O(a)-coloring in O(a^mu log n) simulated LOCAL rounds (Theorem 4.3).
	res, err := distcolor.ColorOA(g, arb, 2.0/3.0, distcolor.Options{Seed: seed, PermuteIDs: true})
	if err != nil {
		return err
	}
	if err := distcolor.VerifyLegal(g, res.Colors); err != nil {
		return fmt.Errorf("verification failed: %w", err)
	}
	fmt.Printf("Legal-Coloring: %d colors in %d rounds (%d messages)\n",
		res.NumColors, res.Rounds, res.Messages)
	for _, ph := range res.Phases {
		fmt.Printf("  %-24s %5d rounds\n", ph.Name, ph.Rounds)
	}

	// Compare with Linial's classical O(Delta^2)-coloring: far more colors
	// on this workload, since Delta >> a.
	lin, err := distcolor.Linial(g, distcolor.Options{Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("Linial baseline: %d colors in %d rounds (Delta^2 regime)\n",
		lin.NumColors, lin.Rounds)
	fmt.Printf("=> the paper's algorithm used %.1fx fewer colors\n",
		float64(lin.NumColors)/float64(res.NumColors))
	return nil
}
