// Tradeoffs: sweep the paper's color/time knobs on one workload and print
// the resulting curves - the plot a reader of Sections 4 and 5 would draw.
package main

import (
	"fmt"
	"log"

	"repro/distcolor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n    = 1500
		a    = 16
		seed = 31
	)
	g := distcolor.GenForestUnion(n, a, seed)
	opts := distcolor.Options{Seed: seed, PermuteIDs: true}
	fmt.Printf("workload: forest union, n=%d m=%d a<=%d Delta=%d\n\n", g.N(), g.M(), a, g.MaxDegree())

	fmt.Println("Theorem 4.5 / Corollary 4.6 - Legal-Coloring(p): colors vs rounds")
	fmt.Printf("%6s %8s %8s %6s\n", "p", "colors", "rounds", "iters")
	for _, p := range []int{4, 6, 8, 12, 16} {
		res, err := distcolor.ColorTradeoff(g, a, p, opts)
		if err != nil {
			return err
		}
		if err := distcolor.VerifyLegal(g, res.Colors); err != nil {
			return err
		}
		iters := 0
		for _, ph := range res.Phases {
			if ph.Name == "simple-arbdefective" {
				iters++
			}
		}
		fmt.Printf("%6d %8d %8d %6d\n", p, res.NumColors, res.Rounds, iters)
	}

	fmt.Println("\nTheorem 5.3 - ColorAT(t): O(a*t) colors, O((a/t)^mu log n) rounds")
	fmt.Printf("%6s %8s %8s\n", "t", "colors", "rounds")
	for _, t := range []int{1, 2, 4, 8} {
		res, err := distcolor.ColorAT(g, a, t, 0.5, opts)
		if err != nil {
			return err
		}
		if err := distcolor.VerifyLegal(g, res.Colors); err != nil {
			return err
		}
		fmt.Printf("%6d %8d %8d\n", t, res.NumColors, res.Rounds)
	}

	fmt.Println("\nTheorem 5.2 - ColorFast(g): O(a^2/g) colors, O(log g log n) rounds")
	fmt.Printf("%6s %8s %8s\n", "g", "colors", "rounds")
	for _, gb := range []int{2, 4, 8, 16} {
		res, err := distcolor.ColorFast(g, a, gb, opts)
		if err != nil {
			return err
		}
		if err := distcolor.VerifyLegal(g, res.Colors); err != nil {
			return err
		}
		fmt.Printf("%6d %8d %8d\n", gb, res.NumColors, res.Rounds)
	}

	fmt.Println("\nbaselines")
	fmt.Printf("%-18s %8s %8s\n", "algorithm", "colors", "rounds")
	lin, err := distcolor.Linial(g, opts)
	if err != nil {
		return err
	}
	fmt.Printf("%-18s %8d %8d\n", "linial", lin.NumColors, lin.Rounds)
	be, err := distcolor.BE08(g, a, opts)
	if err != nil {
		return err
	}
	fmt.Printf("%-18s %8d %8d\n", "be08", be.NumColors, be.Rounds)
	rnd, err := distcolor.RandomizedColoring(g, opts)
	if err != nil {
		return err
	}
	fmt.Printf("%-18s %8d %8d (randomized)\n", "rand-delta+1", rnd.NumColors, rnd.Rounds)
	return nil
}
