// Sensornet: TDMA slot assignment for a wireless sensor network - the
// motivating application of the paper's Section 1.1 (Herman & Tixeuil
// [14]). Sensors within radio range share a channel; a legal vertex
// coloring of the conflict graph is a collision-free schedule, and the
// number of colors is the TDMA frame length. Geometric (unit-disk)
// conflict graphs have bounded density, hence bounded arboricity, so the
// paper's algorithms give short frames fast.
package main

import (
	"fmt"
	"log"

	"repro/distcolor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		sensors = 800
		side    = 30.0
		radius  = 1.6
		seed    = 11
	)
	g := distcolor.GenUnitDisk(sensors, side, radius, seed)
	fmt.Printf("sensor field: %d sensors, %d conflicting pairs, max conflicts per sensor %d\n",
		g.N(), g.M(), g.MaxDegree())

	// Radio networks have no global knowledge of arboricity; estimate it
	// with the doubling H-partition search (O(log a log n) rounds).
	a, err := distcolor.EstimateArboricity(g, distcolor.Options{Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("estimated arboricity bound: %d (degeneracy %d)\n", a, g.ArboricityUpperBound())

	// Frame length vs schedule-computation-time tradeoff (Theorem 4.5 /
	// Corollary 4.6 via the p knob).
	fmt.Println("\nTDMA schedules (frame length = #colors):")
	fmt.Printf("%-28s %8s %8s\n", "algorithm", "frame", "rounds")
	for _, p := range []int{4, 8, 16} {
		res, err := distcolor.ColorTradeoff(g, a, p, distcolor.Options{Seed: seed, PermuteIDs: true})
		if err != nil {
			return err
		}
		if err := distcolor.VerifyLegal(g, res.Colors); err != nil {
			return fmt.Errorf("schedule with p=%d collides: %w", p, err)
		}
		fmt.Printf("legal-coloring(p=%d)%9s %8d %8d\n", p, "", res.NumColors, res.Rounds)
	}

	// Baselines: Linial (frame ~Delta^2) and the randomized Delta+1.
	lin, err := distcolor.Linial(g, distcolor.Options{Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("%-28s %8d %8d\n", "linial (Delta^2)", lin.NumColors, lin.Rounds)
	rnd, err := distcolor.RandomizedColoring(g, distcolor.Options{Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("%-28s %8d %8d   (randomized)\n", "rand Delta+1", rnd.NumColors, rnd.Rounds)

	// A slot-0 backbone: an MIS gives a dominating set of cluster heads.
	mis, err := distcolor.MIS(g, a, 0.5, distcolor.Options{Seed: seed})
	if err != nil {
		return err
	}
	if err := distcolor.VerifyMIS(g, mis.InMIS); err != nil {
		return err
	}
	fmt.Printf("\ncluster heads (MIS): %d of %d sensors, computed in %d rounds\n",
		mis.Size, g.N(), mis.Rounds)
	return nil
}
