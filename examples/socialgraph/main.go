// Socialgraph: sparse networks with heavy-tailed degrees are exactly the
// regime where the paper wins (Section 1.2): arboricity a stays small
// while Delta explodes, so Delta-parameterized algorithms (Linial's
// Delta^2 colors, Delta+1 coloring in Delta rounds) pay for the hubs,
// while arboricity-parameterized ones do not. This example selects a
// moderation committee (an MIS) and a conflict-free posting schedule
// (a coloring) on a preferential-attachment graph.
package main

import (
	"fmt"
	"log"

	"repro/distcolor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		users = 3000
		k     = 3 // attachment edges per new user: degeneracy <= 3
		seed  = 23
	)
	g := distcolor.GenPowerLaw(users, k, seed)
	deg := g.ArboricityUpperBound()
	fmt.Printf("social graph: %d users, %d edges, Delta=%d, degeneracy=%d\n",
		g.N(), g.M(), g.MaxDegree(), deg)
	fmt.Printf("regime check: Delta/a = %d (the paper's favourable case)\n\n",
		g.MaxDegree()/deg)

	opts := distcolor.Options{Seed: seed, PermuteIDs: true}

	// Conflict-free posting schedule: neighbors never post simultaneously.
	res, err := distcolor.ColorOA(g, deg, 2.0/3.0, opts)
	if err != nil {
		return err
	}
	if err := distcolor.VerifyLegal(g, res.Colors); err != nil {
		return err
	}
	fmt.Printf("posting schedule: %d slots in %d rounds (ours, O(a) colors)\n",
		res.NumColors, res.Rounds)

	lin, err := distcolor.Linial(g, opts)
	if err != nil {
		return err
	}
	fmt.Printf("posting schedule: %d slots in %d rounds (Linial, O(Delta^2) colors)\n",
		lin.NumColors, lin.Rounds)

	dpo, err := distcolor.DeltaPlusOne(g, opts)
	if err != nil {
		return err
	}
	fmt.Printf("posting schedule: %d slots in %d rounds (Delta+1 baseline, Delta-bound rounds)\n\n",
		dpo.NumColors, dpo.Rounds)

	// Moderation committee: an MIS is an independent dominating set -
	// no two moderators are friends, every user has a moderator friend.
	mis, err := distcolor.MIS(g, deg, 0.5, opts)
	if err != nil {
		return err
	}
	if err := distcolor.VerifyMIS(g, mis.InMIS); err != nil {
		return err
	}
	fmt.Printf("moderation committee: %d members in %d rounds (ours)\n", mis.Size, mis.Rounds)

	luby, err := distcolor.LubyMIS(g, opts)
	if err != nil {
		return err
	}
	fmt.Printf("moderation committee: %d members in %d rounds (Luby, randomized)\n",
		luby.Size, luby.Rounds)
	return nil
}
